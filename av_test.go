package llamcat

import "testing"

// The AV extension workload must run end-to-end under every policy
// family and show the same GQA-sharing structure the Logit operator
// has (V rows shared across the group's query heads).
func TestAVEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2SizeBytes = 1 << 20
	op := AV(Llama3_70B, 256)

	tr, err := TraceAV(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) == 0 {
		t.Fatal("empty AV trace")
	}

	base, err := RunAV(cfg, op, PolicyUnopt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Raw.TBCompleted != int64(base.TraceBlocks) {
		t.Fatalf("completed %d of %d AV blocks", base.Raw.TBCompleted, base.TraceBlocks)
	}
	opt, err := RunAV(cfg, op, PolicyDynMGBMA)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	// The accumulator RMW pattern must produce store traffic.
	if base.Raw.VectorStores == 0 {
		t.Fatal("AV trace produced no stores (accumulator writeback missing)")
	}
	// V streaming dominates: most L2 traffic is reads.
	if base.Raw.VectorLoads <= base.Raw.VectorStores {
		t.Fatal("AV load/store balance wrong")
	}
}

// The req-resp arbitration flavours of Section 3.3 must both complete
// and land within a similar performance band (the paper reports
// "similar performance gains under both").
func TestReqRespFlavoursSimilar(t *testing.T) {
	if testing.Short() {
		t.Skip("flavour comparison is slow")
	}
	cfg := DefaultConfig()
	cfg.L2SizeBytes = 1 << 20
	op := Logit(Llama3_70B, 512)
	cfg.ReqRespArb = "resp-first"
	a, err := Run(cfg, op, PolicyDynMGBMA)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReqRespArb = "req-first"
	b, err := Run(cfg, op, PolicyDynMGBMA)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(a.Cycles) / float64(b.Cycles)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("flavours diverge: resp-first %d vs req-first %d cycles", a.Cycles, b.Cycles)
	}
}
