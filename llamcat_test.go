package llamcat

import (
	"testing"

	"repro/internal/arbiter"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in       string
		throttle string
		arb      arbiter.Kind
	}{
		{"unopt", "unopt", arbiter.FCFS},
		{"dynmg", "dynmg", arbiter.FCFS},
		{"dynmg+BMA", "dynmg", arbiter.BMA},
		{"dyncta+fcfs", "dyncta", arbiter.FCFS},
		{"none+cobrra", "none", arbiter.COBRRA},
		{"static:2+B", "static:2", arbiter.Balanced},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c.in, err)
			continue
		}
		if p.Throttle != c.throttle || p.Arbiter != c.arb {
			t.Errorf("ParsePolicy(%q) = %+v", c.in, p)
		}
	}
	for _, bad := range []string{"bogus", "dynmg+xyz", "static:x"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) succeeded", bad)
		}
	}
}

func TestTraceGeneration(t *testing.T) {
	op := Logit(Llama3_70B, 256)
	tr, err := Trace(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) == 0 {
		t.Fatal("empty trace")
	}
	// H*G*(L/16) blocks with the default one-output-line mapping.
	want := 8 * 8 * (256 / 16)
	if len(tr.Blocks) != want {
		t.Fatalf("blocks=%d want %d", len(tr.Blocks), want)
	}
}

func TestTraceWithMapping(t *testing.T) {
	op := Logit(Llama3_70B, 256)
	tr, err := TraceWithMapping(op, "mapping logit\ntb_out_lines 2\n")
	if err != nil {
		t.Fatal(err)
	}
	want := 8 * 8 * (256 / 32)
	if len(tr.Blocks) != want {
		t.Fatalf("blocks=%d want %d", len(tr.Blocks), want)
	}
	if _, err := TraceWithMapping(op, "garbage"); err == nil {
		t.Fatal("garbage mapping accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2SizeBytes = 1 << 20
	op := Logit(Llama3_70B, 256)
	base, err := Run(cfg, op, PolicyUnopt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles <= 0 || base.TraceBlocks == 0 {
		t.Fatalf("bad result: %+v", base)
	}
	opt, err := Run(cfg, op, PolicyDynMGBMA)
	if err != nil {
		t.Fatal(err)
	}
	s := Speedup(base, opt)
	if s <= 0 {
		t.Fatalf("speedup %v", s)
	}
	if base.Metrics.DRAMBandwidthGB <= 0 {
		t.Fatal("no DRAM bandwidth derived")
	}
	if base.Raw.TBCompleted != int64(base.TraceBlocks) {
		t.Fatalf("completed %d of %d blocks", base.Raw.TBCompleted, base.TraceBlocks)
	}
}
