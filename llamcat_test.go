package llamcat

import (
	"testing"

	"repro/internal/arbiter"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in       string
		throttle string
		arb      arbiter.Kind
	}{
		{"unopt", "unopt", arbiter.FCFS},
		{"dynmg", "dynmg", arbiter.FCFS},
		{"dynmg+BMA", "dynmg", arbiter.BMA},
		{"dyncta+fcfs", "dyncta", arbiter.FCFS},
		{"none+cobrra", "none", arbiter.COBRRA},
		{"static:2+B", "static:2", arbiter.Balanced},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c.in, err)
			continue
		}
		if p.Throttle != c.throttle || p.Arbiter != c.arb {
			t.Errorf("ParsePolicy(%q) = %+v", c.in, p)
		}
	}
	for _, bad := range []string{"bogus", "dynmg+xyz", "static:x"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) succeeded", bad)
		}
	}
}

func TestTraceGeneration(t *testing.T) {
	op := Logit(Llama3_70B, 256)
	tr, err := Trace(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) == 0 {
		t.Fatal("empty trace")
	}
	// H*G*(L/16) blocks with the default one-output-line mapping.
	want := 8 * 8 * (256 / 16)
	if len(tr.Blocks) != want {
		t.Fatalf("blocks=%d want %d", len(tr.Blocks), want)
	}
}

func TestTraceWithMapping(t *testing.T) {
	op := Logit(Llama3_70B, 256)
	tr, err := TraceWithMapping(op, "mapping logit\ntb_out_lines 2\n")
	if err != nil {
		t.Fatal(err)
	}
	want := 8 * 8 * (256 / 32)
	if len(tr.Blocks) != want {
		t.Fatalf("blocks=%d want %d", len(tr.Blocks), want)
	}
	if _, err := TraceWithMapping(op, "garbage"); err == nil {
		t.Fatal("garbage mapping accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2SizeBytes = 1 << 20
	op := Logit(Llama3_70B, 256)
	base, err := Run(cfg, op, PolicyUnopt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles <= 0 || base.TraceBlocks == 0 {
		t.Fatalf("bad result: %+v", base)
	}
	opt, err := Run(cfg, op, PolicyDynMGBMA)
	if err != nil {
		t.Fatal(err)
	}
	s := Speedup(base, opt)
	if s <= 0 {
		t.Fatalf("speedup %v", s)
	}
	if base.Metrics.DRAMBandwidthGB <= 0 {
		t.Fatal("no DRAM bandwidth derived")
	}
	if base.Raw.TBCompleted != int64(base.TraceBlocks) {
		t.Fatalf("completed %d of %d blocks", base.Raw.TBCompleted, base.TraceBlocks)
	}
}

// TestPrefillFacade exercises the prefill exports end to end: the
// operator builder, trace generation, a standalone pass simulation,
// and a chunked serving scenario through Serve.
func TestPrefillFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2SizeBytes = 1 << 20
	op := Prefill(Llama3_70B, 64, 32)
	tr, err := TracePrefill(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Blocks) == 0 {
		t.Fatal("empty prefill trace")
	}
	res, err := RunPrefill(cfg, op, PolicyDynMGBMA)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("bad prefill result: %+v", res)
	}
	if _, err := ParseSchedPolicy("chunked"); err != nil {
		t.Fatal(err)
	}
	scn, err := NewServeScenario(ServeScenarioConfig{
		Name: "facade-chunked", Seed: 4, NumRequests: 3,
		MinPromptLen: 16, MaxPromptLen: 32,
		MinDecode: 2, MaxDecode: 2, MaxBatch: 2,
		Sched: SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16, KVCapTokens: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Serve(cfg, scn, PolicyDynMGBMA)
	if err != nil {
		t.Fatal(err)
	}
	if m.PrefillTokens == 0 || m.TTFT.P50 <= 0 {
		t.Fatalf("chunked serve reported no prefill work or TTFT: prefill=%d ttft=%+v", m.PrefillTokens, m.TTFT)
	}
}
