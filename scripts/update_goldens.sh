#!/usr/bin/env bash
# Refresh the committed golden-metrics testdata files from the current
# engine output. Run this ONLY after an intentional metrics change —
# the golden suites exist to catch unintentional drift, and several of
# them pin bit-identity contracts (decode-only == pre-prefill engine,
# cache-off == pre-prefix fleet), so a refresh that changes values
# should be called out explicitly in review.
#
# Usage: ./scripts/update_goldens.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go test ./internal/serving -run 'TestDecodeOnlyGoldenEquivalence' -update -count=1
go test ./internal/cluster -run 'TestClusterDecodeOnlyGolden' -update -count=1
go test ./internal/telemetry -run 'TestWritePerfettoGolden|TestWriteJSONLGolden|TestWriteTimeseriesCSVGolden|TestWritePerfettoHWGolden|TestWriteJSONLHWGolden|TestWriteTimeseriesCSVHWGolden' -update -count=1

git --no-pager diff --stat -- '**/testdata/*.golden.*' || true
echo "goldens refreshed; inspect the diff above before committing"
