#!/usr/bin/env bash
# Run every native fuzz target as a short smoke (default 10s each):
# long enough for the engine to mutate past the seed corpus and catch
# shallow parser regressions, short enough for CI. Go runs one -fuzz
# pattern per invocation, so targets are looped explicitly.
#
# Usage: ./scripts/fuzz_smoke.sh [fuzztime]
set -euo pipefail
cd "$(dirname "$0")/.."

fuzztime="${1:-10s}"

run() { # run <package> <target>...
  local pkg="$1"
  shift
  for target in "$@"; do
    echo "=== fuzz $pkg $target ($fuzztime)"
    go test "$pkg" -run '^$' -fuzz "^${target}\$" -fuzztime "$fuzztime"
  done
}

run ./internal/serving FuzzParseArrival FuzzParseSchedPolicy FuzzParsePreemptPolicy
run ./internal/cluster FuzzParseOverload FuzzParsePolicy FuzzParseFaults
run ./internal/telemetry FuzzCellPath
run ./cmd/cluster FuzzParseRates
