#!/usr/bin/env bash
# check_bench_allocs.sh — the CI allocation-regression gate.
#
# Runs the serving and cluster benchmarks once (-benchtime=1x,
# -benchmem) at the standard scale and fails if allocs/op regresses
# above the committed ceilings. The step-cache fast path of ISSUE 4
# (op-trace cache + composition arena + resettable simulator) keeps
# BenchmarkServe_Default around 11k allocs/op and
# BenchmarkCluster_Smoke around 21k; the ceilings carry ~2x headroom
# and still sit an order of magnitude below the pre-cache values
# (87k / 255k), so losing the fast path fails loudly.
# BenchmarkServe_Chunked (ISSUE 5) runs the chunked-prefill scheduler
# through the same arena/memo pipeline at around 20k allocs/op; its
# ceiling guards the prefill path's participation in the step cache.
# BenchmarkCluster_Overload (ISSUE 6) runs the overload stack (bursty
# arrivals, preemption, shedding) at around 25k allocs/op; its
# ceiling guards the overload paths' participation in the fast path.
# BenchmarkServe_Traced (ISSUE 8) is BenchmarkServe_Default with a
# telemetry collector attached; its ceiling equals the default-path
# ceiling, pinning the contract that recording may never cost more
# allocations than an unrecorded run's budget (the disabled path needs
# no ceiling of its own — a nil recorder IS BenchmarkServe_Default).
# BenchmarkCluster_Faulty (ISSUE 9) runs a crash + straggler + recovery
# fleet at around 46k allocs/op; its ceiling guards the fault paths
# (crash eviction, resume re-prefill, health-aware retry) staying on
# the arena/memo fast path.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE_CEILING=25000
CLUSTER_CEILING=45000
CHUNKED_CEILING=40000
OVERLOAD_CEILING=50000
TRACED_CEILING=$SERVE_CEILING
FAULTY_CEILING=90000

out="$(LLAMCAT_SCALE=32 go test -run='^$' -bench='BenchmarkServe_Default$|BenchmarkServe_Chunked$|BenchmarkServe_Traced$|BenchmarkCluster_Smoke$|BenchmarkCluster_Overload$|BenchmarkCluster_Faulty$' -benchtime=1x -benchmem)"
echo "$out"

fail=0
check() {
  name="$1"
  ceiling="$2"
  allocs=$(echo "$out" | awk -v n="$name" '$1 ~ n { for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1) }')
  if [ -z "$allocs" ]; then
    echo "check_bench_allocs: no allocs/op reported for $name" >&2
    fail=1
    return
  fi
  if [ "$allocs" -gt "$ceiling" ]; then
    echo "check_bench_allocs: $name allocs/op $allocs exceeds ceiling $ceiling" >&2
    fail=1
    return
  fi
  echo "check_bench_allocs: $name allocs/op $allocs <= ceiling $ceiling"
}

check BenchmarkServe_Default "$SERVE_CEILING"
check BenchmarkServe_Chunked "$CHUNKED_CEILING"
check BenchmarkServe_Traced "$TRACED_CEILING"
check BenchmarkCluster_Smoke "$CLUSTER_CEILING"
check BenchmarkCluster_Overload "$OVERLOAD_CEILING"
check BenchmarkCluster_Faulty "$FAULTY_CEILING"

if [ "$fail" -ne 0 ]; then
  echo "bench allocs check failed" >&2
  exit 1
fi
echo "bench allocs check OK"
