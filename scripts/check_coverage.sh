#!/usr/bin/env bash
# Enforce the per-package statement-coverage floors committed in
# scripts/coverage_floors.txt (a ratchet: floors only move up). Run
# from anywhere; exits non-zero if any listed package falls below its
# floor, printing the measured value next to the floor.
#
# Usage: ./scripts/check_coverage.sh
set -euo pipefail
cd "$(dirname "$0")/.."

floors="scripts/coverage_floors.txt"
fail=0
while read -r pkg floor; do
  case "$pkg" in ''|'#'*) continue ;; esac
  out="$(go test -cover -count=1 "$pkg" | tail -1)"
  cov="$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')"
  if [ -z "$cov" ]; then
    echo "FAIL $pkg: no coverage figure in: $out" >&2
    fail=1
    continue
  fi
  if awk -v c="$cov" -v f="$floor" 'BEGIN { exit !(c < f) }'; then
    echo "FAIL $pkg: coverage ${cov}% below floor ${floor}%" >&2
    fail=1
  else
    echo "ok   $pkg: coverage ${cov}% (floor ${floor}%)"
  fi
done < "$floors"
exit "$fail"
