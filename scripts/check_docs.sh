#!/usr/bin/env bash
# check_docs.sh — the CI docs gate.
#
# Enforces three documentation invariants:
#   1. every package (internal/*, cmd/*, examples/*, the facade) has a
#      package doc comment (go list -f '{{.Doc}}');
#   2. every relative markdown link in README.md and docs/*.md
#      resolves to an existing file;
#   3. every flag registered by a cmd/ binary is documented in
#      docs/EXPERIMENTS.md (the CLI reference stays in sync with the
#      actual flag set).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# 1. Package doc comments.
missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./... | grep -v '^$' || true)
if [ -n "$missing" ]; then
  echo "packages missing a package doc comment:" >&2
  echo "$missing" >&2
  fail=1
fi

# 2. Relative markdown links resolve.
for f in README.md docs/*.md; do
  dir=$(dirname "$f")
  links=$(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//' || true)
  while read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://* | https://* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "$f: broken relative link: $target" >&2
      fail=1
    fi
  done <<<"$links"
done

# 3. CLI flags are documented. Matches both value forms
# (flag.String("name", ...)) and pointer forms
# (flag.StringVar(&x, "name", ...)), any flag-name charset.
for main in cmd/*/main.go; do
  flags=$(grep -oE 'flag\.[A-Z][A-Za-z0-9]*\((&[A-Za-z0-9_.]+, *)?"[^"]+"' "$main" |
    sed -E 's/.*"([^"]+)"$/\1/' | sort -u || true)
  for fl in $flags; do
    if ! grep -q -- "\`-$fl\`" docs/EXPERIMENTS.md; then
      echo "flag -$fl of $main is not documented in docs/EXPERIMENTS.md" >&2
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "docs check failed" >&2
  exit 1
fi
echo "docs check OK"
