// benchregress compares a fresh BENCH_results.json against the
// committed baseline and fails on regressions beyond tolerance.
//
// Usage: go run ./scripts/benchregress [flags] baseline.json fresh.json
//
// Only benchmarks present in BOTH files are compared — the baseline
// may trail the tree by a PR while a new benchmark lands. Sub-minwall
// entries are skipped for the time check: a microsecond-scale figure
// lookup is all measurement noise at -benchtime=1x. Allocations are
// deterministic and compared regardless of wall time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type record struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	Scale       int     `json:"scale"`
}

func load(path string) (map[string]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]record, len(recs))
	for _, r := range recs {
		m[r.Name] = r
	}
	return m, nil
}

func main() {
	timeRatio := flag.Float64("time-ratio", 2.0, "fail when ns/op exceeds baseline by this factor")
	allocsRatio := flag.Float64("allocs-ratio", 1.10, "fail when allocs/op exceeds baseline by this factor")
	minWall := flag.Float64("min-wall", 0.05, "skip the time check below this baseline wall-seconds")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchregress [flags] baseline.json fresh.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchregress:", err)
		os.Exit(2)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchregress:", err)
		os.Exit(2)
	}
	fail := 0
	compared := 0
	for name, f := range fresh {
		b, ok := base[name]
		if !ok {
			fmt.Printf("benchregress: %-32s new benchmark, no baseline — skipped\n", name)
			continue
		}
		if b.Scale != f.Scale {
			fmt.Printf("benchregress: %-32s scale changed %d -> %d — skipped\n", name, b.Scale, f.Scale)
			continue
		}
		compared++
		if b.WallSeconds >= *minWall && b.NsPerOp > 0 {
			r := f.NsPerOp / b.NsPerOp
			if r > *timeRatio {
				fmt.Printf("benchregress: %-32s ns/op %.0f vs baseline %.0f (%.2fx > %.2fx): REGRESSION\n",
					name, f.NsPerOp, b.NsPerOp, r, *timeRatio)
				fail = 1
			} else {
				fmt.Printf("benchregress: %-32s ns/op %.2fx of baseline: ok\n", name, r)
			}
		}
		if b.AllocsPerOp > 0 {
			r := float64(f.AllocsPerOp) / float64(b.AllocsPerOp)
			if r > *allocsRatio {
				fmt.Printf("benchregress: %-32s allocs/op %d vs baseline %d (%.2fx > %.2fx): REGRESSION\n",
					name, f.AllocsPerOp, b.AllocsPerOp, r, *allocsRatio)
				fail = 1
			}
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchregress: no benchmarks in common — wrong -bench pattern?")
		os.Exit(2)
	}
	if fail != 0 {
		os.Exit(1)
	}
	fmt.Printf("benchregress: %d benchmarks within tolerance\n", compared)
}
