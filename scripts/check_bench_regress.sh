#!/usr/bin/env bash
# check_bench_regress.sh — the CI wall-clock/allocation trend gate.
#
# Runs the serving and cluster benchmarks fresh (-benchtime=1x at the
# standard scale) and compares the measurements against the committed
# BENCH_results.json baseline: a benchmark may not slow down past 2x
# its committed ns/op nor allocate past 1.10x its committed allocs/op
# (wall clock carries co-scheduling noise at -benchtime=1x; the alloc
# rate is deterministic, so its tolerance is tight).
# Complementary to check_bench_allocs.sh, which pins absolute ceilings
# on the fast-path benchmarks; this gate catches gradual drift on
# everything the baseline tracks.
#
# The bench harness's TestMain OVERWRITES BENCH_results.json with the
# fresh run, so the committed baseline is saved first and restored on
# exit — running this script leaves the tree unchanged. Pass a -bench
# pattern as $1 to widen the run (default: the fast serving/cluster
# set; the full figure suite takes minutes).
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${1:-BenchmarkServe_|BenchmarkCluster_|BenchmarkEngineThroughput}"

baseline="$(mktemp)"
fresh="$(mktemp)"
cp BENCH_results.json "$baseline"
restore() {
  cp "$baseline" BENCH_results.json
  rm -f "$baseline" "$fresh"
}
trap restore EXIT

LLAMCAT_SCALE=32 go test -run='^$' -bench="$PATTERN" -benchtime=1x
cp BENCH_results.json "$fresh"

go run ./scripts/benchregress "$baseline" "$fresh"
echo "bench regression check OK"
