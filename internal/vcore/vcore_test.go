package vcore

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/memreq"
	"repro/internal/memtrace"
	"repro/internal/noc"
	"repro/internal/sched"
	"repro/internal/stats"
)

func testConfig() Config {
	return Config{
		ID:          0,
		NumWindows:  2,
		WindowDepth: 8,
		VectorBytes: 128,
		LineBytes:   64,
		EgressCap:   4,
		NumSlices:   2,
		L1: cache.Config{
			SizeBytes: 2 * 64 * 2, // 2 sets, 2 ways
			LineBytes: 64,
			Assoc:     2,
			Alloc:     cache.AllocOnFill,
			Write:     cache.WritePolicy{WriteAllocate: false, WriteBack: false},
			Streaming: true,
		},
	}
}

type coreRig struct {
	core *Core
	net  *noc.NoC
	pool *memreq.Pool
	ctr  *stats.Counters
	now  int64
}

func newCoreRig(t *testing.T, cfg Config) *coreRig {
	t.Helper()
	ctr := &stats.Counters{}
	net, err := noc.New(noc.Config{Latency: 1, SliceIngestPer: 8, SliceBufCap: 8}, 1, cfg.NumSlices, ctr)
	if err != nil {
		t.Fatal(err)
	}
	pool := &memreq.Pool{}
	c, err := New(cfg, net, pool, ctr)
	if err != nil {
		t.Fatal(err)
	}
	return &coreRig{core: c, net: net, pool: pool, ctr: ctr}
}

// collect drains requests arriving at the slices.
func (r *coreRig) collect() []*memreq.Request {
	var got []*memreq.Request
	for s := 0; s < 2; s++ {
		r.net.DeliverReqs(s, r.now, func(req *memreq.Request) bool {
			got = append(got, req)
			return true
		})
	}
	return got
}

func singleTB(insts ...memtrace.Inst) *memtrace.Trace {
	return &memtrace.Trace{Blocks: []*memtrace.ThreadBlock{{ID: 0, Insts: insts}}}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NumWindows = 0 },
		func(c *Config) { c.NumWindows = MaxWindows + 1 },
		func(c *Config) { c.WindowDepth = 0 },
		func(c *Config) { c.VectorBytes = 96 },
		func(c *Config) { c.EgressCap = 0 },
		func(c *Config) { c.NumSlices = 3 },
	}
	for i, mutate := range cases {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestVectorAccessSplitsIntoLines(t *testing.T) {
	r := newCoreRig(t, testConfig())
	// One 128-byte load at address 0: lines 0 and 1.
	pool := sched.NewGlobalPool(singleTB(memtrace.Inst{Kind: memtrace.KindLoad, Addr: 0, Width: 128}))
	var reqs []*memreq.Request
	for i := 0; i < 20; i++ {
		r.core.Tick(r.now, pool)
		reqs = append(reqs, r.collect()...)
		r.now++
	}
	if len(reqs) != 2 {
		t.Fatalf("requests=%d want 2", len(reqs))
	}
	if reqs[0].Line != 0 || reqs[1].Line != 1 {
		t.Fatalf("lines %d,%d", reqs[0].Line, reqs[1].Line)
	}
	// Lines route to slices by low bits.
	if r.ctr.VectorLoads != 1 {
		t.Fatalf("VectorLoads=%d want 1 (one vector instruction)", r.ctr.VectorLoads)
	}
	if r.core.Busy() == false {
		t.Fatal("core must wait for outstanding loads")
	}
	// Deliver the lines; block completes.
	r.core.OnDelivery(noc.Delivery{Line: 0, Core: 0, Window: 0})
	r.core.OnDelivery(noc.Delivery{Line: 1, Core: 0, Window: 0})
	r.core.Tick(r.now, pool)
	if r.core.ActiveTBs() != 0 {
		t.Fatal("thread block not retired after loads returned")
	}
	if r.ctr.TBCompleted != 1 {
		t.Fatalf("TBCompleted=%d", r.ctr.TBCompleted)
	}
}

func TestL1HitAvoidsTraffic(t *testing.T) {
	r := newCoreRig(t, testConfig())
	// The compute gap lets the first load's fill land in L1 before the
	// second access issues.
	pool := sched.NewGlobalPool(singleTB(
		memtrace.Inst{Kind: memtrace.KindLoad, Addr: 0, Width: 64},
		memtrace.Inst{Kind: memtrace.KindCompute, Cycles: 6},
		memtrace.Inst{Kind: memtrace.KindLoad, Addr: 0, Width: 64},
	))
	var reqs []*memreq.Request
	for i := 0; i < 30; i++ {
		r.core.Tick(r.now, pool)
		reqs = append(reqs, r.collect()...)
		for _, q := range reqs {
			if q != nil {
				r.core.OnDelivery(noc.Delivery{Line: q.Line, Core: 0, Window: q.Window})
			}
		}
		r.now++
	}
	// First access misses and fills L1; the second hits.
	if len(reqs) != 1 {
		t.Fatalf("requests=%d want 1 (second access is an L1 hit)", len(reqs))
	}
	if r.ctr.L1Hits != 1 {
		t.Fatalf("L1Hits=%d", r.ctr.L1Hits)
	}
}

func TestL1MergeSameLine(t *testing.T) {
	cfg := testConfig()
	r := newCoreRig(t, cfg)
	// Two windows each run a block loading the same line.
	tr := &memtrace.Trace{Blocks: []*memtrace.ThreadBlock{
		{ID: 0, Insts: []memtrace.Inst{{Kind: memtrace.KindLoad, Addr: 0, Width: 64}}},
		{ID: 1, Insts: []memtrace.Inst{{Kind: memtrace.KindLoad, Addr: 0, Width: 64}}},
	}}
	pool := sched.NewGlobalPool(tr)
	var reqs []*memreq.Request
	for i := 0; i < 10; i++ {
		r.core.Tick(r.now, pool)
		reqs = append(reqs, r.collect()...)
		r.now++
	}
	if len(reqs) != 1 {
		t.Fatalf("requests=%d want 1 (merged at L1 level)", len(reqs))
	}
	if r.ctr.L1Merges != 1 {
		t.Fatalf("L1Merges=%d", r.ctr.L1Merges)
	}
	// One delivery wakes both windows.
	r.core.OnDelivery(noc.Delivery{Line: 0, Core: 0, Window: 0})
	r.core.Tick(r.now, pool)
	if r.core.ActiveTBs() != 0 {
		t.Fatal("merged windows not both released")
	}
}

func TestComputeOccupiesWindow(t *testing.T) {
	r := newCoreRig(t, testConfig())
	pool := sched.NewGlobalPool(singleTB(
		memtrace.Inst{Kind: memtrace.KindCompute, Cycles: 5},
		memtrace.Inst{Kind: memtrace.KindCompute, Cycles: 1},
	))
	done := int64(-1)
	for i := int64(0); i < 30; i++ {
		r.core.Tick(i, pool)
		if r.ctr.TBCompleted == 1 && done < 0 {
			done = i
		}
	}
	if done < 6 {
		t.Fatalf("compute completed at %d, want >= 6 (5+1 busy cycles)", done)
	}
	if r.ctr.ComputeOps != 2 {
		t.Fatalf("ComputeOps=%d", r.ctr.ComputeOps)
	}
}

func TestStoresArePosted(t *testing.T) {
	r := newCoreRig(t, testConfig())
	pool := sched.NewGlobalPool(singleTB(memtrace.Inst{Kind: memtrace.KindStore, Addr: 0, Width: 64}))
	var reqs []*memreq.Request
	for i := 0; i < 10; i++ {
		r.core.Tick(r.now, pool)
		reqs = append(reqs, r.collect()...)
		r.now++
	}
	if len(reqs) != 1 || !reqs[0].Write || !reqs[0].Posted {
		t.Fatalf("store request wrong: %+v", reqs)
	}
	// Posted: the block retires without any delivery.
	if r.ctr.TBCompleted != 1 {
		t.Fatal("store block did not retire")
	}
}

func TestMaxTBThrottling(t *testing.T) {
	r := newCoreRig(t, testConfig())
	tr := &memtrace.Trace{Blocks: []*memtrace.ThreadBlock{
		{ID: 0, Insts: []memtrace.Inst{{Kind: memtrace.KindCompute, Cycles: 100}}},
		{ID: 1, Insts: []memtrace.Inst{{Kind: memtrace.KindCompute, Cycles: 100}}},
	}}
	pool := sched.NewGlobalPool(tr)
	r.core.SetMaxTB(1)
	r.core.Tick(0, pool)
	if r.core.ActiveTBs() != 1 {
		t.Fatalf("ActiveTBs=%d under maxTB=1", r.core.ActiveTBs())
	}
	// Raising the limit lets the second window fill.
	r.core.SetMaxTB(2)
	r.core.Tick(1, pool)
	if r.core.ActiveTBs() != 2 {
		t.Fatalf("ActiveTBs=%d under maxTB=2", r.core.ActiveTBs())
	}
	// SetMaxTB clamps.
	r.core.SetMaxTB(99)
	if r.core.MaxTB() != 2 {
		t.Fatalf("MaxTB=%d want clamp to windows", r.core.MaxTB())
	}
	r.core.SetMaxTB(0)
	if r.core.MaxTB() != 1 {
		t.Fatalf("MaxTB=%d want clamp to 1", r.core.MaxTB())
	}
}

func TestCmemCountsWhenBlocked(t *testing.T) {
	cfg := testConfig()
	cfg.EgressCap = 1
	r := newCoreRig(t, cfg)
	// A giant load: the egress and NoC clog and the core must record
	// memory-blocked cycles (nothing drains the NoC here).
	pool := sched.NewGlobalPool(singleTB(memtrace.Inst{Kind: memtrace.KindLoad, Addr: 0, Width: 4096}))
	for i := int64(0); i < 100; i++ {
		r.core.Tick(i, pool)
	}
	if r.core.CMem == 0 {
		t.Fatal("no memory-blocked cycles recorded under backpressure")
	}
}

func TestCidleWhenNoWork(t *testing.T) {
	r := newCoreRig(t, testConfig())
	pool := sched.NewGlobalPool(&memtrace.Trace{Blocks: []*memtrace.ThreadBlock{}})
	for i := int64(0); i < 10; i++ {
		r.core.Tick(i, pool)
	}
	if r.core.CIdle != 10 {
		t.Fatalf("CIdle=%d want 10", r.core.CIdle)
	}
}

func TestWindowDepthLimitsOutstanding(t *testing.T) {
	cfg := testConfig()
	cfg.WindowDepth = 2
	cfg.EgressCap = 16
	r := newCoreRig(t, cfg)
	pool := sched.NewGlobalPool(singleTB(memtrace.Inst{Kind: memtrace.KindLoad, Addr: 0, Width: 512}))
	var reqs []*memreq.Request
	for i := 0; i < 20; i++ {
		r.core.Tick(r.now, pool)
		reqs = append(reqs, r.collect()...)
		r.now++
	}
	// 8 lines wanted, but only WindowDepth=2 outstanding at once.
	if len(reqs) != 2 {
		t.Fatalf("requests=%d want 2 (window depth)", len(reqs))
	}
	// Returning one line lets the next issue.
	r.core.OnDelivery(noc.Delivery{Line: reqs[0].Line, Core: 0, Window: 0})
	for i := 0; i < 5; i++ {
		r.core.Tick(r.now, pool)
		reqs = append(reqs, r.collect()...)
		r.now++
	}
	if len(reqs) != 3 {
		t.Fatalf("requests=%d want 3 after one return", len(reqs))
	}
}

func TestLCSObservationData(t *testing.T) {
	r := newCoreRig(t, testConfig())
	pool := sched.NewGlobalPool(singleTB(memtrace.Inst{Kind: memtrace.KindCompute, Cycles: 10}))
	for i := int64(0); i < 20; i++ {
		r.core.Tick(i, pool)
	}
	done := r.core.DrainCompletions()
	if len(done) != 1 {
		t.Fatalf("completions=%d", len(done))
	}
	if done[0].BusyCycles != 10 {
		t.Fatalf("BusyCycles=%d want 10", done[0].BusyCycles)
	}
	if done[0].TotalCycles < 10 {
		t.Fatalf("TotalCycles=%d", done[0].TotalCycles)
	}
	// Drain clears.
	if len(r.core.DrainCompletions()) != 0 {
		t.Fatal("completions not cleared")
	}
}
