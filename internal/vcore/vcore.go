// Package vcore models the 128-element vector cores of Section 5: a
// core owns a private L1 cache, several instruction windows (each
// holding one thread block), and an egress queue toward the
// interconnect. When the current window cannot issue (outstanding
// memory, compute busy, backpressure) the core switches to another
// window — the warp-scheduler-like latency hiding of Section 3.1.
// Programmers (here: the dataflow) control only block sizes and
// counts, not the switching.
//
// The core exposes the performance counters the throttling
// controllers sample: C_idle (no thread block available to run) and
// C_mem (all resident blocks blocked on memory).
package vcore

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/memreq"
	"repro/internal/memtrace"
	"repro/internal/noc"
	"repro/internal/ring"
	"repro/internal/sched"
	"repro/internal/stats"
)

// MaxWindows bounds the instruction windows per core; the waiter
// bookkeeping uses fixed-size arrays of this width.
const MaxWindows = 8

// Config parameterises one core (Table 5 defaults come from the sim
// package).
type Config struct {
	ID          int
	NumWindows  int // instruction windows (4)
	WindowDepth int // max outstanding loads per window (128)
	VectorBytes int // bytes per vector access (128)
	LineBytes   int // cache line size (64)
	EgressCap   int // outbound request queue depth
	NumSlices   int // LLC slice count (for routing)
	L1          cache.Config
}

// Validate checks core parameters.
func (c Config) Validate() error {
	switch {
	case c.NumWindows <= 0 || c.NumWindows > MaxWindows:
		return fmt.Errorf("vcore: NumWindows must be in [1,%d], got %d", MaxWindows, c.NumWindows)
	case c.WindowDepth <= 0:
		return fmt.Errorf("vcore: WindowDepth must be positive, got %d", c.WindowDepth)
	case c.VectorBytes <= 0 || c.VectorBytes%c.LineBytes != 0:
		return fmt.Errorf("vcore: VectorBytes must be a positive multiple of LineBytes, got %d", c.VectorBytes)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("vcore: LineBytes must be a positive power of two, got %d", c.LineBytes)
	case c.EgressCap <= 0:
		return fmt.Errorf("vcore: EgressCap must be positive, got %d", c.EgressCap)
	case c.NumSlices <= 0 || c.NumSlices&(c.NumSlices-1) != 0:
		return fmt.Errorf("vcore: NumSlices must be a positive power of two, got %d", c.NumSlices)
	}
	return c.L1.Validate()
}

type window struct {
	tb          *memtrace.ThreadBlock
	pc          int
	outstanding int   // pending line loads
	busyUntil   int64 // compute occupancy
	// Expansion state of the current memory instruction into lines.
	expanding bool
	nextLine  uint64
	endLine   uint64
	isStore   bool
	// Thread-block timing for the LCS observer.
	startCycle int64
	busyCycles int64
	// Miss-probe memo: a line that probed as an unmerged L1 miss stays
	// one until that exact line is filled or merged (fills of other
	// lines only evict — they cannot make an absent line present), so
	// a blocked window's per-cycle re-probe needs no lookup. The core
	// invalidates matching memos on fills and new in-flight misses.
	probeLine  uint64
	probeValid bool
}

func (w *window) active() bool { return w.tb != nil }

func (w *window) finished() bool {
	return w.tb != nil && !w.expanding && w.pc >= len(w.tb.Insts)
}

// TBCompletion describes a retired thread block; controllers that
// implement throttle.TBObserver consume it.
type TBCompletion struct {
	Core        int
	BusyCycles  int64
	TotalCycles int64
}

// Core is one vector core.
type Core struct {
	cfg     Config
	l1      *cache.Cache
	windows []window
	egress  *ring.Ring[*memreq.Request]
	// pendingL1 merges same-line L1 misses: line → per-window waiter
	// counts (an idealised L1 MSHR with ample entries).
	pendingL1 map[uint64][MaxWindows]int16

	maxTB     int // thread-block limit published by the throttle controller
	lastWin   int // round-robin pointer
	doneTBs   []TBCompletion
	exhausted bool // the pool returned no work on the last refill

	net  *noc.NoC
	pool *memreq.Pool
	ctr  *stats.Counters

	// Per-core cumulative throttling signals (the controllers need
	// them per core; the global stats.Counters aggregate them).
	CMem  int64
	CIdle int64

	// Diagnostics.
	IssuedLines int64
	TBsRun      int64

	// stallProfile caches the per-cycle counter deltas of a blocked
	// tick so the engine can apply a skipped cycle in a handful of
	// adds; it is rebuilt lazily after every real tick.
	profileValid  bool
	profIdle      bool
	profMem       bool
	profProbes    int64
	profBackpress bool
}

// New builds a core.
func New(cfg Config, net *noc.NoC, pool *memreq.Pool, ctr *stats.Counters) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1, err := cache.New(cfg.L1)
	if err != nil {
		return nil, err
	}
	if ctr == nil {
		ctr = &stats.Counters{}
	}
	if pool == nil {
		pool = &memreq.Pool{}
	}
	return &Core{
		cfg:       cfg,
		l1:        l1,
		windows:   make([]window, cfg.NumWindows),
		egress:    ring.New[*memreq.Request](cfg.EgressCap),
		pendingL1: make(map[uint64][MaxWindows]int16),
		maxTB:     cfg.NumWindows,
		net:       net,
		pool:      pool,
		ctr:       ctr,
	}, nil
}

// L1 exposes the private cache (tests, diagnostics).
func (c *Core) L1() *cache.Cache { return c.l1 }

// Reset rewinds the core to its just-constructed state, reusing every
// allocation: the L1 storage, the window array, the egress ring (any
// leftover requests are recycled into the shared pool) and the
// in-flight miss table. Counters and the round-robin pointer rewind
// too, so a Reset core is indistinguishable from a fresh New.
func (c *Core) Reset() {
	c.l1.Reset()
	for i := range c.windows {
		c.windows[i] = window{}
	}
	for {
		r, ok := c.egress.Pop()
		if !ok {
			break
		}
		c.pool.Put(r)
	}
	clear(c.pendingL1)
	c.maxTB = c.cfg.NumWindows
	c.lastWin = 0
	c.doneTBs = c.doneTBs[:0]
	c.exhausted = false
	c.CMem = 0
	c.CIdle = 0
	c.IssuedLines = 0
	c.TBsRun = 0
	c.profileValid = false
}

// SetMaxTB publishes the throttle controller's thread-block limit.
func (c *Core) SetMaxTB(n int) {
	if n < 1 {
		n = 1
	}
	if n > c.cfg.NumWindows {
		n = c.cfg.NumWindows
	}
	c.maxTB = n
}

// MaxTB returns the current limit.
func (c *Core) MaxTB() int { return c.maxTB }

// ActiveTBs counts windows currently holding a thread block.
func (c *Core) ActiveTBs() int {
	n := 0
	for i := range c.windows {
		if c.windows[i].active() {
			n++
		}
	}
	return n
}

// Busy reports whether the core still holds work in flight.
func (c *Core) Busy() bool {
	if c.egress.Len() > 0 || len(c.pendingL1) > 0 {
		return true
	}
	return c.ActiveTBs() > 0
}

// OnDelivery accepts a returning line (L2 hit data or DRAM direct
// forward): wake the waiting windows and install into L1
// (allocate-on-fill, streaming insertion).
func (c *Core) OnDelivery(d noc.Delivery) {
	waiters, ok := c.pendingL1[d.Line]
	if !ok {
		return // store ack or duplicate; nothing waits
	}
	for wi := 0; wi < len(c.windows); wi++ {
		if cnt := waiters[wi]; cnt > 0 {
			c.windows[wi].outstanding -= int(cnt)
			if c.windows[wi].outstanding < 0 {
				c.windows[wi].outstanding = 0
			}
		}
	}
	delete(c.pendingL1, d.Line)
	c.l1.Fill(d.Line, false)
	c.invalidateProbes(d.Line)
}

// invalidateProbes drops miss-probe memos for line: it just became
// resident (fill) or merged (new in-flight miss), so "unmerged miss"
// no longer holds for it. Memos for other lines stay valid — fills
// only evict, and eviction cannot make an absent line present.
func (c *Core) invalidateProbes(line uint64) {
	for i := range c.windows {
		if c.windows[i].probeLine == line {
			c.windows[i].probeValid = false
		}
	}
}

// DrainCompletions returns and clears thread-block completion events.
// The returned slice aliases an internal buffer that the next Tick
// reuses; callers consume it before ticking the core again.
func (c *Core) DrainCompletions() []TBCompletion {
	out := c.doneTBs
	c.doneTBs = c.doneTBs[:0]
	return out
}

// Tick advances the core one cycle: retire finished blocks, refill
// windows from the dispatcher (respecting maxTB), issue at most one
// instruction/line, and drain the egress queue into the NoC.
func (c *Core) Tick(now int64, dispatch sched.Pool) {
	c.profileValid = false
	c.retireAndRefill(now, dispatch)
	c.issue(now)
	c.drainEgress(now)
}

func (c *Core) retireAndRefill(now int64, dispatch sched.Pool) {
	active := 0
	for i := range c.windows {
		w := &c.windows[i]
		if !w.active() {
			continue
		}
		if w.finished() && w.outstanding == 0 && w.busyUntil <= now {
			c.doneTBs = append(c.doneTBs, TBCompletion{
				Core:        c.cfg.ID,
				BusyCycles:  w.busyCycles,
				TotalCycles: now - w.startCycle,
			})
			c.ctr.TBCompleted++
			c.TBsRun++
			w.tb = nil
			continue
		}
		active++
	}
	c.exhausted = false
	for i := range c.windows {
		if active >= c.maxTB {
			return
		}
		w := &c.windows[i]
		if w.active() {
			continue
		}
		tb, ok := dispatch.Next(c.cfg.ID)
		if !ok {
			c.exhausted = true
			return
		}
		*w = window{tb: tb, startCycle: now}
		active++
	}
}

// issue finds one ready window round-robin and issues one line access
// or compute instruction; updates C_idle/C_mem when nothing can issue.
func (c *Core) issue(now int64) {
	n := len(c.windows)
	anyActive := false
	anyMemBlocked := false
	for off := 0; off < n; off++ {
		wi := (c.lastWin + 1 + off) % n
		w := &c.windows[wi]
		if !w.active() {
			continue
		}
		if w.finished() {
			// Block retired instruction-wise but waiting on loads:
			// the window is memory-blocked, not idle.
			if w.outstanding > 0 {
				anyActive = true
				anyMemBlocked = true
			}
			continue
		}
		anyActive = true
		if w.busyUntil > now {
			continue
		}
		if !w.expanding {
			inst := &w.tb.Insts[w.pc]
			if inst.Kind == memtrace.KindCompute {
				w.busyUntil = now + int64(inst.Cycles)
				w.pc++
				w.busyCycles += int64(inst.Cycles)
				c.ctr.InstIssued++
				c.ctr.ComputeOps++
				c.lastWin = wi
				return
			}
			// Begin expanding the vector access into line accesses.
			lb := uint64(c.cfg.LineBytes)
			w.expanding = true
			w.nextLine = inst.Addr / lb
			w.endLine = (inst.Addr + uint64(inst.Width) - 1) / lb
			w.isStore = inst.Kind == memtrace.KindStore
			c.ctr.InstIssued++
			if w.isStore {
				c.ctr.VectorStores++
			} else {
				c.ctr.VectorLoads++
			}
		}
		// Issue the next line of the expansion.
		if !w.isStore && w.outstanding >= c.cfg.WindowDepth {
			anyMemBlocked = true
			continue
		}
		if c.issueLine(w, wi, now) {
			w.busyCycles++
			if w.nextLine > w.endLine {
				w.expanding = false
				w.pc++
			}
			c.lastWin = wi
			return
		}
		anyMemBlocked = true
	}
	switch {
	case !anyActive:
		c.ctr.CoreIdle++
		c.CIdle++
	case anyMemBlocked:
		c.ctr.CoreMemStall++
		c.CMem++
	}
}

// issueLine performs the L1 access for one line of the current vector
// instruction; it reports false when backpressure blocks the issue.
func (c *Core) issueLine(w *window, wi int, now int64) bool {
	line := w.nextLine
	if w.isStore {
		// Write-through, write-no-allocate: probe L1 (update on hit),
		// always forward the write to L2 as a posted request.
		if c.egress.Full() {
			return false
		}
		c.ctr.L1Accesses++
		if c.l1.Access(line, true) {
			c.ctr.L1Hits++
		}
		r := c.pool.Get()
		r.Line = line
		r.Write = true
		r.Posted = true
		r.Core = c.cfg.ID
		r.Window = wi
		r.IssueCycle = now
		c.egress.Push(r)
		c.IssuedLines++
		w.nextLine++
		return true
	}
	c.ctr.L1Accesses++
	if w.probeValid && w.probeLine == line {
		// Memoized probe: with the core's memory state unchanged since
		// the last attempt, the line is still an unmerged L1 miss, so
		// only the egress queue gates the issue. Account the repeated
		// miss lookup without re-scanning the set.
		c.l1.AccountMisses(1)
		if c.egress.Full() {
			return false
		}
	} else {
		if c.l1.Access(line, false) {
			c.ctr.L1Hits++
			c.IssuedLines++
			w.nextLine++
			return true
		}
		if waiters, ok := c.pendingL1[line]; ok {
			// Merge with an in-flight miss for the same line.
			waiters[wi]++
			c.pendingL1[line] = waiters
			w.outstanding++
			c.ctr.L1Merges++
			c.IssuedLines++
			w.nextLine++
			return true
		}
		if c.egress.Full() {
			w.probeLine, w.probeValid = line, true
			return false
		}
	}
	r := c.pool.Get()
	r.Line = line
	r.Core = c.cfg.ID
	r.Window = wi
	r.IssueCycle = now
	c.egress.Push(r)
	var waiters [MaxWindows]int16
	waiters[wi] = 1
	c.pendingL1[line] = waiters
	c.invalidateProbes(line)
	w.outstanding++
	c.IssuedLines++
	w.nextLine++
	return true
}

// drainEgress moves up to one request per cycle into the NoC, subject
// to the per-slice buffer backpressure.
func (c *Core) drainEgress(now int64) {
	r, ok := c.egress.Peek()
	if !ok {
		return
	}
	slice := int(r.Line & uint64(c.cfg.NumSlices-1))
	if !c.net.CanSendReq(slice) {
		c.ctr.NoCBackpress++
		return
	}
	c.egress.Pop()
	c.net.SendReq(r, slice, now)
}

// NextEvent returns a lower bound on the earliest cycle after now at
// which the core's own tick can change state, assuming no external
// input (NoC delivery, controller update, backpressure release)
// arrives before then. Returning now+1 means the next tick may act;
// math.MaxInt64 means the core is entirely gated on external events.
// Called on post-tick state only.
func (c *Core) NextEvent(now int64) int64 {
	h := int64(math.MaxInt64)
	idle := 0
	for i := range c.windows {
		w := &c.windows[i]
		if !w.active() {
			idle++
			continue
		}
		if w.finished() {
			// Retires once outstanding loads return (external) and any
			// trailing compute occupancy elapses.
			if w.outstanding == 0 {
				t := w.busyUntil
				if t <= now {
					t = now + 1
				}
				if t < h {
					h = t
				}
			}
			continue
		}
		if w.busyUntil > now {
			if w.busyUntil < h {
				h = w.busyUntil
			}
			continue
		}
		if !w.expanding {
			// Next instruction issue (compute, or the start of a vector
			// expansion) always changes state.
			return now + 1
		}
		if !w.isStore && w.outstanding >= c.cfg.WindowDepth {
			continue // window-depth blocked: waits on a delivery
		}
		if w.isStore {
			if !c.egress.Full() {
				return now + 1
			}
			continue // store line blocked on a full egress queue
		}
		// Load line: an L1 hit or an in-flight-miss merge issues even
		// with a full egress queue.
		if w.probeValid && w.probeLine == w.nextLine {
			// Memoized unmerged miss: gated on the egress queue only.
			if !c.egress.Full() {
				return now + 1
			}
			continue
		}
		if c.l1.Probe(w.nextLine) {
			return now + 1
		}
		if _, merged := c.pendingL1[w.nextLine]; merged {
			return now + 1
		}
		if !c.egress.Full() {
			return now + 1
		}
		// L1 miss blocked on egress: gated on the NoC draining.
	}
	if idle > 0 && c.ActiveTBs() < c.maxTB && !c.exhausted {
		return now + 1 // a refill from the dispatcher can proceed
	}
	if r, ok := c.egress.Peek(); ok {
		if c.net.CanSendReq(int(r.Line & uint64(c.cfg.NumSlices-1))) {
			return now + 1 // egress drain can proceed
		}
	}
	return h
}

// rebuildProfile snapshots the per-cycle counter deltas of a blocked
// tick: the C_idle/C_mem classification the issue stage would record,
// the L1 probes of issue-blocked load windows, and egress
// backpressure. Valid for every cycle in which the engine skips the
// core, since its state (and therefore the classification) is frozen
// across such a window.
func (c *Core) rebuildProfile(now int64) {
	anyActive, anyMemBlocked := false, false
	probes := int64(0)
	for i := range c.windows {
		w := &c.windows[i]
		if !w.active() {
			continue
		}
		if w.finished() {
			if w.outstanding > 0 {
				anyActive = true
				anyMemBlocked = true
			}
			continue
		}
		anyActive = true
		if w.busyUntil > now {
			continue
		}
		// Ready but blocked (NextEvent ruled out a successful issue):
		// window-depth-blocked loads and egress-blocked stores fail
		// before touching the L1; egress-blocked load lines re-probe
		// the L1 (and miss) every cycle.
		anyMemBlocked = true
		if w.expanding && !w.isStore && w.outstanding < c.cfg.WindowDepth {
			probes++
		}
	}
	c.profIdle = !anyActive
	c.profMem = anyActive && anyMemBlocked
	c.profProbes = probes
	c.profBackpress = c.egress.Len() > 0
	c.profileValid = true
}

// ApplyStallTicks bulk-applies the per-cycle counter effects of
// `cycles` skipped dead cycles starting after now. The engine calls
// it only for cycles NextEvent proved dead, during which the core's
// state is frozen.
func (c *Core) ApplyStallTicks(now, cycles int64) {
	if !c.profileValid {
		c.rebuildProfile(now)
	}
	switch {
	case c.profIdle:
		c.ctr.CoreIdle += cycles
		c.CIdle += cycles
	case c.profMem:
		c.ctr.CoreMemStall += cycles
		c.CMem += cycles
	}
	if c.profProbes > 0 {
		c.ctr.L1Accesses += c.profProbes * cycles
		c.l1.AccountMisses(c.profProbes * cycles)
	}
	if c.profBackpress {
		c.ctr.NoCBackpress += cycles
	}
}

// EgressHeadSlice returns the LLC slice the egress queue's head
// request routes to, or -1 when the queue is empty. The engine uses
// it to wake a skipped core the moment that slice's ingress path
// gains buffer space.
func (c *Core) EgressHeadSlice() int {
	r, ok := c.egress.Peek()
	if !ok {
		return -1
	}
	return int(r.Line & uint64(c.cfg.NumSlices-1))
}
