// Trace generation for the prefill operator (see
// internal/workload/prefill.go). The loop structure reuses the Logit
// mapping machinery — thread blocks tile the (h, g, lTile) space of
// the key dimension under the same constrained Mapping — but each
// block serves the whole query CHUNK: the K tile is streamed once and
// reused across all ChunkLen chunk tokens, the dot-product work per K
// row is charged ChunkLen times, and ChunkLen score segments are
// stored per output line. Relative to the decode-stage Logit trace
// over the same prefix this multiplies compute and store traffic by
// the chunk length while keeping K read traffic constant — the
// compute-bound character of prefill that chunked schedulers exploit.

package dataflow

import (
	"fmt"

	"repro/internal/memtrace"
	"repro/internal/workload"
)

// logitEquivalent returns the Logit-shaped view of a prefill pass used
// for mapping legality and tiling: the key dimension plays SeqLen.
func logitEquivalent(op workload.PrefillOp) workload.LogitOp {
	return workload.LogitOp{Model: op.Model, SeqLen: op.KVLen}
}

// ValidatePrefill checks a mapping against the prefill operator's
// constraints — the Logit constraints over the key dimension (the
// chunk dimension adds none: chunk tokens share each block's K tile).
func (m Mapping) ValidatePrefill(op workload.PrefillOp, lineBytes int) error {
	if err := op.Validate(); err != nil {
		return err
	}
	return m.Validate(logitEquivalent(op), lineBytes)
}

// FindPrefillMapping selects the mapping for a prefill pass: the
// constrained mapper run on the Logit-equivalent shape, so prefill and
// decode passes over the same prefix tile the key dimension
// identically (and share LLC-resident K tiles across phases).
func FindPrefillMapping(op workload.PrefillOp, lineBytes int) (Mapping, Eval, error) {
	if err := op.Validate(); err != nil {
		return Mapping{}, Eval{}, err
	}
	return FindMapping(logitEquivalent(op), lineBytes)
}

// GeneratePrefill unrolls a mapping into the prefill thread-block
// trace. Each block (h, g, [l0,l1)) performs:
//
//	LD Q[c][h][g][:] for each chunk token c   (chunk activations)
//	for each l in [l0, l1):
//	    LD K[h][l][:]                         (VectorBytes-wide, read once)
//	    CP ChunkLen × ComputePerRow           (C dot products per row)
//	for each chunk token c, each output line:
//	    ST AttScore[h][g][c][line]            (C score segments)
//
// Blocks are emitted in TBOrder like Generate; the global dispatcher
// interleaves them with any concurrent decode streams' blocks.
func GeneratePrefill(op workload.PrefillOp, amap *workload.PrefillAddressMap, m Mapping, lineBytes int) (*memtrace.Trace, error) {
	if err := m.ValidatePrefill(op, lineBytes); err != nil {
		return nil, err
	}
	if amap.Op() != op {
		return nil, fmt.Errorf("dataflow: address map built for %s, not %s", amap.Op().Name(), op.Name())
	}
	logit := logitEquivalent(op)
	tileL := m.TileL(logit, lineBytes)
	numLTiles := (op.KVLen + tileL - 1) / tileL
	extent := func(a Axis) int {
		switch a {
		case AxisH:
			return op.Model.H
		case AxisG:
			return op.Model.G
		default:
			return numLTiles
		}
	}
	e0, e1, e2 := extent(m.TBOrder[0]), extent(m.TBOrder[1]), extent(m.TBOrder[2])
	numBlocks := e0 * e1 * e2
	trace := &memtrace.Trace{Name: op.Name() + "/" + orderString(m.TBOrder)}
	trace.Blocks = make([]*memtrace.ThreadBlock, 0, numBlocks)

	c := op.ChunkLen
	rowBytes := op.Model.D * op.Model.ElemBytes
	vecPerRow := (rowBytes + m.VectorBytes - 1) / m.VectorBytes
	qBytes := op.Model.D * op.Model.ElemBytes // one (c, h, g) query row
	vecPerQ := (qBytes + m.VectorBytes - 1) / m.VectorBytes
	outElemsPerLine := lineBytes / op.Model.OutBytes

	// Arena allocation like Generate: one block slab, one instruction
	// slab sized by the per-tile instruction bound.
	instPerTile := func(l0, l1 int) int {
		compute := 0
		if m.ComputePerRow > 0 {
			compute = l1 - l0
		}
		return c*vecPerQ + (l1-l0)*vecPerRow + compute + c*m.TBOutLines
	}
	instTotal := 0
	for lt := 0; lt < numLTiles; lt++ {
		l0 := lt * tileL
		l1 := l0 + tileL
		if l1 > op.KVLen {
			l1 = op.KVLen
		}
		instTotal += instPerTile(l0, l1) * op.Model.H * op.Model.G
	}
	blockArena := make([]memtrace.ThreadBlock, 0, numBlocks)
	instArena := make([]memtrace.Inst, 0, instTotal)

	id := 0
	for i0 := 0; i0 < e0; i0++ {
		for i1 := 0; i1 < e1; i1++ {
			for i2 := 0; i2 < e2; i2++ {
				var h, g, lt int
				assign := func(a Axis, v int) {
					switch a {
					case AxisH:
						h = v
					case AxisG:
						g = v
					default:
						lt = v
					}
				}
				assign(m.TBOrder[0], i0)
				assign(m.TBOrder[1], i1)
				assign(m.TBOrder[2], i2)

				l0 := lt * tileL
				l1 := l0 + tileL
				if l1 > op.KVLen {
					l1 = op.KVLen
				}
				blockArena = append(blockArena, memtrace.ThreadBlock{
					ID:   id,
					Meta: memtrace.Meta{Group: h, QHead: g, TileLo: l0, TileHi: l1},
				})
				tb := &blockArena[len(blockArena)-1]
				id++
				nInsts := instPerTile(l0, l1)
				base := len(instArena)
				instArena = instArena[:base+nInsts]
				tb.Insts = instArena[base : base : base+nInsts]

				// Load the chunk's query rows for this (h, g) pair.
				for q := 0; q < c; q++ {
					for v := 0; v < vecPerQ; v++ {
						w := m.VectorBytes
						if off := v * m.VectorBytes; off+w > qBytes {
							w = qBytes - off
						}
						tb.Insts = append(tb.Insts, memtrace.Inst{
							Kind:  memtrace.KindLoad,
							Addr:  amap.QAddr(q, h, g, 0) + uint64(v*m.VectorBytes),
							Width: uint32(w),
						})
					}
				}
				// Stream K rows once for the tile; every row feeds all C
				// chunk tokens, so the dot-product work per row is C×.
				for l := l0; l < l1; l++ {
					for v := 0; v < vecPerRow; v++ {
						w := m.VectorBytes
						if off := v * m.VectorBytes; off+w > rowBytes {
							w = rowBytes - off
						}
						tb.Insts = append(tb.Insts, memtrace.Inst{
							Kind:  memtrace.KindLoad,
							Addr:  amap.KAddr(h, l, 0) + uint64(v*m.VectorBytes),
							Width: uint32(w),
						})
					}
					if m.ComputePerRow > 0 {
						tb.Insts = append(tb.Insts, memtrace.Inst{
							Kind:   memtrace.KindCompute,
							Cycles: uint32(m.ComputePerRow * c),
						})
					}
				}
				// Store every chunk token's score segment for the tile.
				for q := 0; q < c; q++ {
					for l := l0; l < l1; l += outElemsPerLine {
						w := (l1 - l) * op.Model.OutBytes
						if w > lineBytes {
							w = lineBytes
						}
						tb.Insts = append(tb.Insts, memtrace.Inst{
							Kind:  memtrace.KindStore,
							Addr:  amap.OutAddr(h, g, q, l),
							Width: uint32(w),
						})
					}
				}
				trace.Blocks = append(trace.Blocks, tb)
			}
		}
	}
	return trace, nil
}
