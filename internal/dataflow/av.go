// Trace generation for the AV operator (see internal/workload/av.go).
// The loop structure mirrors the Logit operator — thread blocks tile
// the (h, g, l) space, V rows stream like K rows — with one extra
// pattern: the D-wide output accumulator is read-modify-written per
// tile (cache-resident accumulation), so the AV trace additionally
// exercises the write-allocate/write-back path of the LLC.

package dataflow

import (
	"fmt"

	"repro/internal/memtrace"
	"repro/internal/workload"
)

// ValidateAV checks a mapping against the AV operator's constraints
// (the same constraints as Logit; the accumulator RMW adds none).
func (m Mapping) ValidateAV(op workload.AVOp, lineBytes int) error {
	logitEquiv := workload.LogitOp{Model: op.Model, SeqLen: op.SeqLen}
	return m.Validate(logitEquiv, lineBytes)
}

// GenerateAV unrolls a mapping into the AV operator's thread-block
// trace. Each block (h, g, [l0,l1)) performs:
//
//	LD Out[h][g][:]              (accumulator read)
//	LD AttProb[h][g][l0..l1)     (one line per 16 positions)
//	for each l in [l0, l1):
//	    LD V[h][l][:]            (VectorBytes-wide accesses)
//	    CP ComputePerRow
//	ST Out[h][g][:]              (accumulator writeback)
func GenerateAV(op workload.AVOp, amap *workload.AVAddressMap, m Mapping, lineBytes int) (*memtrace.Trace, error) {
	if err := m.ValidateAV(op, lineBytes); err != nil {
		return nil, err
	}
	if amap.Op() != op {
		return nil, fmt.Errorf("dataflow: address map built for %s, not %s", amap.Op().Name(), op.Name())
	}
	logitEquiv := workload.LogitOp{Model: op.Model, SeqLen: op.SeqLen}
	tileL := m.TileL(logitEquiv, lineBytes)
	numLTiles := (op.SeqLen + tileL - 1) / tileL
	extent := func(a Axis) int {
		switch a {
		case AxisH:
			return op.Model.H
		case AxisG:
			return op.Model.G
		default:
			return numLTiles
		}
	}
	e0, e1, e2 := extent(m.TBOrder[0]), extent(m.TBOrder[1]), extent(m.TBOrder[2])
	numBlocks := e0 * e1 * e2
	trace := &memtrace.Trace{Name: op.Name() + "/" + orderString(m.TBOrder)}
	trace.Blocks = make([]*memtrace.ThreadBlock, 0, numBlocks)

	rowBytes := op.Model.D * op.Model.ElemBytes
	vecPerRow := (rowBytes + m.VectorBytes - 1) / m.VectorBytes
	accBytes := op.Model.D * op.Model.OutBytes
	vecPerAcc := (accBytes + m.VectorBytes - 1) / m.VectorBytes

	// Arena allocation, exactly like Generate: one block slab, one
	// instruction slab sized by the per-tile instruction bound.
	instTotal := 0
	for lt := 0; lt < numLTiles; lt++ {
		l0 := lt * tileL
		l1 := l0 + tileL
		if l1 > op.SeqLen {
			l1 = op.SeqLen
		}
		instTotal += (vecPerAcc + 1 + (l1-l0)*vecPerRow + (l1 - l0) + 1) * op.Model.H * op.Model.G
	}
	blockArena := make([]memtrace.ThreadBlock, 0, numBlocks)
	instArena := make([]memtrace.Inst, 0, instTotal)

	id := 0
	for i0 := 0; i0 < e0; i0++ {
		for i1 := 0; i1 < e1; i1++ {
			for i2 := 0; i2 < e2; i2++ {
				var h, g, lt int
				assign := func(a Axis, v int) {
					switch a {
					case AxisH:
						h = v
					case AxisG:
						g = v
					default:
						lt = v
					}
				}
				assign(m.TBOrder[0], i0)
				assign(m.TBOrder[1], i1)
				assign(m.TBOrder[2], i2)

				l0 := lt * tileL
				l1 := l0 + tileL
				if l1 > op.SeqLen {
					l1 = op.SeqLen
				}
				blockArena = append(blockArena, memtrace.ThreadBlock{
					ID:   id,
					Meta: memtrace.Meta{Group: h, QHead: g, TileLo: l0, TileHi: l1},
				})
				tb := &blockArena[len(blockArena)-1]
				id++
				nInsts := vecPerAcc + 1 + (l1-l0)*vecPerRow + (l1 - l0) + 1
				base := len(instArena)
				instArena = instArena[:base+nInsts]
				tb.Insts = instArena[base : base : base+nInsts]

				// Accumulator read.
				for v := 0; v < vecPerAcc; v++ {
					w := m.VectorBytes
					if off := v * m.VectorBytes; off+w > accBytes {
						w = accBytes - off
					}
					tb.Insts = append(tb.Insts, memtrace.Inst{
						Kind:  memtrace.KindLoad,
						Addr:  amap.OutAddr(h, g, 0) + uint64(v*m.VectorBytes),
						Width: uint32(w),
					})
				}
				// Probability tile: contiguous fp32 span.
				tb.Insts = append(tb.Insts, memtrace.Inst{
					Kind:  memtrace.KindLoad,
					Addr:  amap.ProbAddr(h, g, l0),
					Width: uint32((l1 - l0) * op.Model.OutBytes),
				})
				// Stream V rows.
				for l := l0; l < l1; l++ {
					for v := 0; v < vecPerRow; v++ {
						w := m.VectorBytes
						if off := v * m.VectorBytes; off+w > rowBytes {
							w = rowBytes - off
						}
						tb.Insts = append(tb.Insts, memtrace.Inst{
							Kind:  memtrace.KindLoad,
							Addr:  amap.VAddr(h, l, 0) + uint64(v*m.VectorBytes),
							Width: uint32(w),
						})
					}
					if m.ComputePerRow > 0 {
						tb.Insts = append(tb.Insts, memtrace.Inst{
							Kind:   memtrace.KindCompute,
							Cycles: uint32(m.ComputePerRow),
						})
					}
				}
				// Accumulator writeback.
				tb.Insts = append(tb.Insts, memtrace.Inst{
					Kind:  memtrace.KindStore,
					Addr:  amap.OutAddr(h, g, 0),
					Width: uint32(accBytes),
				})
				trace.Blocks = append(trace.Blocks, tb)
			}
		}
	}
	return trace, nil
}
