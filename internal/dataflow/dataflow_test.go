package dataflow

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/memtrace"
	"repro/internal/workload"
)

const lineBytes = 64

func op70b(seq int) workload.LogitOp {
	return workload.LogitOp{Model: workload.Llama3_70B, SeqLen: seq}
}

func TestDefaultMappingValid(t *testing.T) {
	m := DefaultMapping()
	if err := m.Validate(op70b(1024), lineBytes); err != nil {
		t.Fatalf("default mapping invalid: %v", err)
	}
	if m.TileL(op70b(1024), lineBytes) != 16 {
		t.Fatalf("TileL=%d want 16 (one 64B line of fp32 scores)", m.TileL(op70b(1024), lineBytes))
	}
}

func TestValidateConstraints(t *testing.T) {
	op := op70b(1024)
	cases := []struct {
		name   string
		mutate func(*Mapping)
	}{
		{"zero out lines", func(m *Mapping) { m.TBOutLines = 0 }},
		{"vector not multiple of line", func(m *Mapping) { m.VectorBytes = 96 }},
		{"L1 tile below line", func(m *Mapping) { m.L1LTileBytes = 32 }},
		{"negative compute", func(m *Mapping) { m.ComputePerRow = -1 }},
		{"repeated axis", func(m *Mapping) { m.TBOrder = [3]Axis{AxisH, AxisH, AxisG} }},
		{"block exceeds seq", func(m *Mapping) { m.TBOutLines = 1024 }},
	}
	for _, c := range cases {
		m := DefaultMapping()
		c.mutate(&m)
		if err := m.Validate(op, lineBytes); err == nil {
			t.Errorf("%s: validated, want error", c.name)
		}
	}
}

func TestEvaluateKShareDistance(t *testing.T) {
	op := op70b(1024)
	cases := []struct {
		order [3]Axis
		want  float64
	}{
		{[3]Axis{AxisH, AxisL, AxisG}, 1},  // g innermost: adjacent blocks share K
		{[3]Axis{AxisH, AxisG, AxisL}, 64}, // l innermost: G separated by numLTiles
		{[3]Axis{AxisL, AxisG, AxisH}, 8},  // h innermost: g separated by H
	}
	for _, c := range cases {
		m := DefaultMapping()
		m.TBOrder = c.order
		ev, err := Evaluate(m, op, lineBytes)
		if err != nil {
			t.Fatal(err)
		}
		if ev.KShareDistance != c.want {
			t.Errorf("order %v: distance %v want %v", c.order, ev.KShareDistance, c.want)
		}
	}
}

func TestFindMappingPicksGInnermost(t *testing.T) {
	m, ev, err := FindMapping(op70b(1024), lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	if m.TBOrder[2] != AxisG {
		t.Fatalf("mapper should put g innermost (GQA sharing), got %v", m.TBOrder)
	}
	if ev.KShareDistance != 1 {
		t.Fatalf("KShareDistance=%v want 1", ev.KShareDistance)
	}
	if m.TBOutLines != 1 {
		t.Fatalf("mapper should pick the smallest block (paper: 1-2 lines best), got %d", m.TBOutLines)
	}
}

func TestParseMappingRoundTrip(t *testing.T) {
	m := DefaultMapping()
	m.TBOutLines = 2
	m.ComputePerRow = 7
	back, err := ParseMapping(m.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", m, back)
	}
}

func TestParseMappingErrors(t *testing.T) {
	cases := []string{
		"tb_order h l g\n",                  // missing header
		"mapping logit\ntb_order h l\n",     // short order
		"mapping logit\ntb_order h l x\n",   // unknown axis
		"mapping logit\nbogus 3\n",          // unknown directive
		"mapping logit\ntb_out_lines xyz\n", // bad int
	}
	for _, c := range cases {
		if _, err := ParseMapping(c); err == nil {
			t.Errorf("ParseMapping(%q) succeeded, want error", c)
		}
	}
}

// collectCoverage sums, per (h, g), which sequence positions' outputs
// are produced, and which K rows are loaded.
func TestGenerateCoversIterationSpace(t *testing.T) {
	op := op70b(256)
	amap, err := workload.NewAddressMap(op, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMapping()
	tr, err := Generate(op, amap, m, lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	tileL := m.TileL(op, lineBytes)
	wantBlocks := op.Model.H * op.Model.G * (op.SeqLen / tileL)
	if len(tr.Blocks) != wantBlocks {
		t.Fatalf("blocks=%d want %d", len(tr.Blocks), wantBlocks)
	}

	covered := make(map[[3]int]bool) // (h, g, l) output coverage
	for _, tb := range tr.Blocks {
		meta := tb.Meta
		if meta.TileHi-meta.TileLo != tileL {
			t.Fatalf("block %d tile size %d want %d", tb.ID, meta.TileHi-meta.TileLo, tileL)
		}
		// K loads of the block must cover exactly rows [TileLo,TileHi).
		kLoads := 0
		var stores int
		for _, in := range tb.Insts {
			switch in.Kind {
			case memtrace.KindLoad:
				if amap.Region(in.Addr) == "K" {
					kLoads++
				}
			case memtrace.KindStore:
				if amap.Region(in.Addr) != "Out" {
					t.Fatalf("store outside Out region at %#x", in.Addr)
				}
				stores++
			}
		}
		rowVecs := (op.Model.D*op.Model.ElemBytes + m.VectorBytes - 1) / m.VectorBytes
		if kLoads != tileL*rowVecs {
			t.Fatalf("block %d: %d K loads want %d", tb.ID, kLoads, tileL*rowVecs)
		}
		if stores != m.TBOutLines {
			t.Fatalf("block %d: %d stores want %d", tb.ID, stores, m.TBOutLines)
		}
		for l := meta.TileLo; l < meta.TileHi; l++ {
			key := [3]int{meta.Group, meta.QHead, l}
			if covered[key] {
				t.Fatalf("output (%d,%d,%d) produced twice", meta.Group, meta.QHead, l)
			}
			covered[key] = true
		}
	}
	if len(covered) != op.Model.H*op.Model.G*op.SeqLen {
		t.Fatalf("coverage %d want %d", len(covered), op.Model.H*op.Model.G*op.SeqLen)
	}
}

// The trace footprint must equal the tensor working set regardless of
// the mapping parameters.
func TestFootprintInvariant(t *testing.T) {
	op := op70b(128)
	amap, err := workload.NewAddressMap(op, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same operator ⇒ same footprint for any legal mapping; compare
	// every generated variant against the first.
	ref := int64(-1)
	simple := func(orderIdx, outLines uint8) bool {
		orders := [][3]Axis{
			{AxisH, AxisL, AxisG}, {AxisH, AxisG, AxisL}, {AxisL, AxisG, AxisH},
		}
		m := DefaultMapping()
		m.TBOrder = orders[int(orderIdx)%len(orders)]
		m.TBOutLines = int(outLines)%4 + 1
		tr, err := Generate(op, amap, m, lineBytes)
		if err != nil {
			return false
		}
		fp := tr.Footprint(lineBytes)
		if ref < 0 {
			ref = fp
			return true
		}
		return fp == ref
	}
	if err := quick.Check(simple, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRoundRobin(t *testing.T) {
	op := op70b(128)
	amap, _ := workload.NewAddressMap(op, 0)
	tr, err := Generate(op, amap, DefaultMapping(), lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	parts := PartitionRoundRobin(tr, 4)
	total := 0
	for i, p := range parts {
		total += len(p.Blocks)
		for j, tb := range p.Blocks {
			if tb.ID != j*4+i {
				t.Fatalf("partition %d block %d has ID %d", i, j, tb.ID)
			}
		}
	}
	if total != len(tr.Blocks) {
		t.Fatalf("partitions hold %d blocks, trace has %d", total, len(tr.Blocks))
	}
}

func TestGenerateMismatchedMap(t *testing.T) {
	opA := op70b(128)
	opB := op70b(256)
	amap, _ := workload.NewAddressMap(opA, 0)
	if _, err := Generate(opB, amap, DefaultMapping(), lineBytes); err == nil {
		t.Fatal("generate with mismatched address map succeeded")
	}
}

func TestMappingString(t *testing.T) {
	s := DefaultMapping().String()
	for _, want := range []string{"mapping logit", "tb_order h l g", "tb_out_lines 1", "vector_bytes 128"} {
		if !strings.Contains(s, want) {
			t.Errorf("mapping string missing %q:\n%s", want, s)
		}
	}
}
