package dataflow

import (
	"testing"

	"repro/internal/memtrace"
	"repro/internal/workload"
)

func genPrefill(t *testing.T, op workload.PrefillOp) (*memtrace.Trace, *workload.PrefillAddressMap, Mapping) {
	t.Helper()
	amap, err := workload.NewPrefillAddressMap(op, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := FindPrefillMapping(op, lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GeneratePrefill(op, amap, m, lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	return tr, amap, m
}

// TestPrefillTraceShape checks block count, instruction mix and that
// every access lands in its tensor region.
func TestPrefillTraceShape(t *testing.T) {
	op := workload.PrefillOp{Model: workload.Llama3_70B, KVLen: 64, ChunkLen: 32}
	tr, amap, m := genPrefill(t, op)

	logit := workload.LogitOp{Model: op.Model, SeqLen: op.KVLen}
	tileL := m.TileL(logit, lineBytes)
	numLTiles := (op.KVLen + tileL - 1) / tileL
	wantBlocks := op.Model.H * op.Model.G * numLTiles
	if len(tr.Blocks) != wantBlocks {
		t.Fatalf("blocks = %d, want %d", len(tr.Blocks), wantBlocks)
	}
	var kLoads, qLoads, stores, computeCycles int64
	for _, tb := range tr.Blocks {
		for _, in := range tb.Insts {
			switch in.Kind {
			case memtrace.KindLoad:
				switch amap.Region(in.Addr) {
				case "K":
					kLoads++
				case "Q":
					qLoads++
				default:
					t.Fatalf("load at %#x outside K/Q regions", in.Addr)
				}
			case memtrace.KindStore:
				if amap.Region(in.Addr) != "Out" {
					t.Fatalf("store at %#x outside Out region", in.Addr)
				}
				stores++
			case memtrace.KindCompute:
				computeCycles += int64(in.Cycles)
			}
		}
	}
	// K is streamed once per block regardless of chunk length: the
	// chunk-reuse property that makes prefill compute-bound.
	rowBytes := op.Model.D * op.Model.ElemBytes
	vecPerRow := (rowBytes + m.VectorBytes - 1) / m.VectorBytes
	wantKLoads := int64(op.Model.H*op.Model.G) * int64(op.KVLen) * int64(vecPerRow)
	if kLoads != wantKLoads {
		t.Errorf("K loads = %d, want %d", kLoads, wantKLoads)
	}
	// Every (h, g, lTile) block stores ChunkLen score segments per
	// output line: C× the Logit store traffic over the same prefix.
	outElemsPerLine := lineBytes / op.Model.OutBytes
	linesPerTile := (tileL + outElemsPerLine - 1) / outElemsPerLine
	wantStores := int64(wantBlocks) * int64(op.ChunkLen) * int64(linesPerTile)
	if stores != wantStores {
		t.Errorf("stores = %d, want %d", stores, wantStores)
	}
	// Compute per K row is charged ChunkLen times.
	wantCompute := int64(m.ComputePerRow) * int64(op.ChunkLen) * int64(op.Model.H*op.Model.G) * int64(op.KVLen)
	if computeCycles != wantCompute {
		t.Errorf("compute cycles = %d, want %d", computeCycles, wantCompute)
	}
}

// TestPrefillVsLogitIntensity pins the arithmetic-intensity relation:
// over the same prefix, the prefill pass issues the same K load count
// as the Logit pass but ChunkLen× the compute.
func TestPrefillVsLogitIntensity(t *testing.T) {
	model := workload.Llama3_70B
	const kv, chunk = 64, 16
	pre, _, _ := genPrefill(t, workload.PrefillOp{Model: model, KVLen: kv, ChunkLen: chunk})

	logit := workload.LogitOp{Model: model, SeqLen: kv}
	lmap, err := workload.NewAddressMap(logit, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := FindMapping(logit, lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	ltr, err := Generate(logit, lmap, m, lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	count := func(tr *memtrace.Trace) (loads, computeCycles int64) {
		for _, tb := range tr.Blocks {
			for _, in := range tb.Insts {
				switch in.Kind {
				case memtrace.KindLoad:
					loads++
				case memtrace.KindCompute:
					computeCycles += int64(in.Cycles)
				}
			}
		}
		return
	}
	preLoads, preCompute := count(pre)
	logitLoads, logitCompute := count(ltr)
	if preCompute != int64(chunk)*logitCompute {
		t.Errorf("prefill compute %d != chunk %d × logit compute %d", preCompute, chunk, logitCompute)
	}
	if preLoads <= logitLoads {
		t.Errorf("prefill loads %d not above logit loads %d (chunk Q tile missing?)", preLoads, logitLoads)
	}
	// But the K-read traffic itself is identical, so the load excess is
	// bounded by the chunk's Q rows.
	if preLoads >= int64(chunk)*logitLoads {
		t.Errorf("prefill loads %d scale with chunk — K rows are being re-streamed per token", preLoads)
	}
}

// TestGeneratePrefillRejects checks mapping/shape validation.
func TestGeneratePrefillRejects(t *testing.T) {
	op := workload.PrefillOp{Model: workload.Llama3_70B, KVLen: 8, ChunkLen: 8}
	if _, _, err := FindPrefillMapping(op, lineBytes); err == nil {
		// KVLen 8 is under the 16-position mapping floor for fp32 scores.
		t.Error("FindPrefillMapping accepted a sub-floor prefix")
	}
	good := workload.PrefillOp{Model: workload.Llama3_70B, KVLen: 32, ChunkLen: 16}
	amap, err := workload.NewPrefillAddressMap(good, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := FindPrefillMapping(good, lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	other := workload.PrefillOp{Model: workload.Llama3_70B, KVLen: 32, ChunkLen: 8}
	if _, err := GeneratePrefill(other, amap, m, lineBytes); err == nil {
		t.Error("GeneratePrefill accepted a mismatched address map")
	}
}
