// Package dataflow is the analytical half of the paper's hybrid
// simulation framework (Fig. 6): it maps the Logit operator onto the
// simulated architecture as a tiled loop nest (the "dataflow") and
// unrolls the mapping into memory traces that drive the cycle-level
// simulator.
//
// The paper uses Timeloop for this step, optionally accepting
// handwritten mappings since a mapping is just a human-readable loop
// nest. This package plays the same role: Mapping is the loop nest,
// FindMapping is the constrained mapper, ParseMapping accepts
// handwritten mappings, and Generate unrolls a mapping into a
// memtrace.Trace.
package dataflow

import (
	"fmt"
	"strings"

	"repro/internal/memtrace"
	"repro/internal/workload"
)

// Axis names a loop dimension of the Logit operator.
type Axis uint8

// The Logit operator's loop axes.
const (
	AxisH Axis = iota // KV head group
	AxisG             // query head within group
	AxisL             // sequence position
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case AxisH:
		return "h"
	case AxisG:
		return "g"
	case AxisL:
		return "l"
	}
	return fmt.Sprintf("Axis(%d)", uint8(a))
}

func parseAxis(s string) (Axis, error) {
	switch strings.ToLower(s) {
	case "h":
		return AxisH, nil
	case "g":
		return AxisG, nil
	case "l":
		return AxisL, nil
	}
	return 0, fmt.Errorf("dataflow: unknown axis %q", s)
}

// Mapping is a dataflow: how the (h, g, l) iteration space of the
// Logit operator is tiled into thread blocks and how each block's
// inner loops are ordered. It captures exactly the degrees of freedom
// Section 6.2.2 of the paper exposes:
//
//   - TBOrder: outer→inner ordering of the thread-block-level loops.
//     The position of AxisL/AxisG controls how close in dispatch order
//     two blocks sharing the same K tile are — the GQA cross-core
//     reuse the CAT policies exploit.
//   - TBOutLines: output cache lines produced per thread block
//     (constraint: ≥ 1 to avoid false sharing of AttScore; empirically
//     1–2 is best, larger blocks reduce locality).
//   - VectorBytes: bytes per vector memory access (the 128-element
//     vector core ⇒ 128 B accesses, Table 5's vector-len).
//   - L1LTileBytes: bytes of the L dimension mapped to the innermost
//     L1 temporal level (constraint: ≥ 64 B so cache-line access is
//     complete and AttScore is not falsely shared).
//   - ComputePerRow: non-memory cycles charged per K row (the dot
//     product work, negligible in the memory-bound decode stage).
type Mapping struct {
	TBOrder       [3]Axis
	TBOutLines    int
	VectorBytes   int
	L1LTileBytes  int
	ComputePerRow int
}

// DefaultMapping is the mapping the constrained mapper selects for the
// paper's configuration: g innermost at the thread-block level (so
// blocks sharing a K tile are adjacent in dispatch order), one output
// line per block, 128-byte vector accesses.
func DefaultMapping() Mapping {
	return Mapping{
		TBOrder:       [3]Axis{AxisH, AxisL, AxisG},
		TBOutLines:    1,
		VectorBytes:   128,
		L1LTileBytes:  64,
		ComputePerRow: 2,
	}
}

// Validate checks the mapping against the paper's dataflow constraints.
func (m Mapping) Validate(op workload.LogitOp, lineBytes int) error {
	seen := [3]bool{}
	for _, a := range m.TBOrder {
		if int(a) > 2 {
			return fmt.Errorf("dataflow: invalid axis in TBOrder")
		}
		if seen[a] {
			return fmt.Errorf("dataflow: axis %v repeated in TBOrder", a)
		}
		seen[a] = true
	}
	if m.TBOutLines < 1 {
		return fmt.Errorf("dataflow: TBOutLines must be >= 1 (false-sharing constraint), got %d", m.TBOutLines)
	}
	if m.VectorBytes <= 0 || m.VectorBytes%lineBytes != 0 {
		return fmt.Errorf("dataflow: VectorBytes must be a positive multiple of the %d-byte line, got %d", lineBytes, m.VectorBytes)
	}
	if m.L1LTileBytes < lineBytes {
		return fmt.Errorf("dataflow: L1LTileBytes must be >= %d (constraint 2 of Section 6.2.2), got %d", lineBytes, m.L1LTileBytes)
	}
	if m.ComputePerRow < 0 {
		return fmt.Errorf("dataflow: ComputePerRow must be >= 0, got %d", m.ComputePerRow)
	}
	outElemsPerLine := lineBytes / op.Model.OutBytes
	if m.TBOutLines*outElemsPerLine > op.SeqLen {
		return fmt.Errorf("dataflow: thread block covers %d sequence positions but SeqLen is %d",
			m.TBOutLines*outElemsPerLine, op.SeqLen)
	}
	return nil
}

// TileL returns the number of sequence positions one thread block
// covers (TBOutLines output lines worth of fp32 scores).
func (m Mapping) TileL(op workload.LogitOp, lineBytes int) int {
	return m.TBOutLines * lineBytes / op.Model.OutBytes
}

// String renders the mapping in the handwritten-mapping format
// accepted by ParseMapping.
func (m Mapping) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mapping logit\n")
	fmt.Fprintf(&b, "tb_order %v %v %v\n", m.TBOrder[0], m.TBOrder[1], m.TBOrder[2])
	fmt.Fprintf(&b, "tb_out_lines %d\n", m.TBOutLines)
	fmt.Fprintf(&b, "vector_bytes %d\n", m.VectorBytes)
	fmt.Fprintf(&b, "l1_l_tile %d\n", m.L1LTileBytes)
	fmt.Fprintf(&b, "compute_per_row %d\n", m.ComputePerRow)
	return b.String()
}

// ParseMapping reads a handwritten mapping in the format produced by
// Mapping.String — the analogue of feeding Timeloop a hand-authored
// mapping file.
func ParseMapping(text string) (Mapping, error) {
	m := DefaultMapping()
	sawHeader := false
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "mapping":
			sawHeader = true
		case "tb_order":
			if len(fields) != 4 {
				return m, fmt.Errorf("dataflow: line %d: tb_order needs 3 axes", lineNo+1)
			}
			for i := 0; i < 3; i++ {
				a, err := parseAxis(fields[i+1])
				if err != nil {
					return m, fmt.Errorf("dataflow: line %d: %v", lineNo+1, err)
				}
				m.TBOrder[i] = a
			}
		case "tb_out_lines":
			if _, err := fmt.Sscanf(fields[1], "%d", &m.TBOutLines); err != nil {
				return m, fmt.Errorf("dataflow: line %d: %v", lineNo+1, err)
			}
		case "vector_bytes":
			if _, err := fmt.Sscanf(fields[1], "%d", &m.VectorBytes); err != nil {
				return m, fmt.Errorf("dataflow: line %d: %v", lineNo+1, err)
			}
		case "l1_l_tile":
			if _, err := fmt.Sscanf(fields[1], "%d", &m.L1LTileBytes); err != nil {
				return m, fmt.Errorf("dataflow: line %d: %v", lineNo+1, err)
			}
		case "compute_per_row":
			if _, err := fmt.Sscanf(fields[1], "%d", &m.ComputePerRow); err != nil {
				return m, fmt.Errorf("dataflow: line %d: %v", lineNo+1, err)
			}
		default:
			return m, fmt.Errorf("dataflow: line %d: unknown directive %q", lineNo+1, fields[0])
		}
	}
	if !sawHeader {
		return m, fmt.Errorf("dataflow: missing 'mapping' header")
	}
	return m, nil
}

// Eval holds the analytical cost-model metrics of a mapping, used by
// the mapper to rank candidates without simulation (the Timeloop-style
// fast evaluation).
type Eval struct {
	NumTBs int
	// KShareDistance is the mean dispatch-order distance between two
	// thread blocks that read the same K tile. Small distances mean
	// the GQA reuse arrives close together in time, which is what the
	// LLC (cache hits, MSHR merges) can capture.
	KShareDistance float64
	// TBKLines is the number of distinct K lines one block streams; a
	// proxy for per-block working set (larger blocks reduce locality).
	TBKLines int
}

// Evaluate computes the analytical metrics of a mapping for op.
func Evaluate(m Mapping, op workload.LogitOp, lineBytes int) (Eval, error) {
	if err := m.Validate(op, lineBytes); err != nil {
		return Eval{}, err
	}
	tileL := m.TileL(op, lineBytes)
	numLTiles := (op.SeqLen + tileL - 1) / tileL
	extent := func(a Axis) int {
		switch a {
		case AxisH:
			return op.Model.H
		case AxisG:
			return op.Model.G
		default:
			return numLTiles
		}
	}
	ev := Eval{NumTBs: op.Model.H * op.Model.G * numLTiles}
	// Two blocks share a K tile iff they agree on (h, lTile) and
	// differ in g. The dispatch distance between g and g+1 at the same
	// (h, l) equals the product of extents of axes strictly inside g
	// in the order.
	stride := 1
	for i := 2; i >= 0; i-- {
		if m.TBOrder[i] == AxisG {
			break
		}
		stride *= extent(m.TBOrder[i])
	}
	ev.KShareDistance = float64(stride)
	rowBytes := op.Model.D * op.Model.ElemBytes
	ev.TBKLines = tileL * rowBytes / lineBytes
	return ev, nil
}

// FindMapping searches the mapping space under the paper's constraints
// and returns the best mapping for op: the candidate minimising the
// K-share dispatch distance and, among ties, the per-block working set
// (favouring 1–2 output lines per block, matching the paper's
// empirical finding).
func FindMapping(op workload.LogitOp, lineBytes int) (Mapping, Eval, error) {
	if err := op.Validate(); err != nil {
		return Mapping{}, Eval{}, err
	}
	orders := [][3]Axis{
		{AxisH, AxisL, AxisG},
		{AxisH, AxisG, AxisL},
		{AxisL, AxisH, AxisG},
		{AxisG, AxisH, AxisL},
		{AxisG, AxisL, AxisH},
		{AxisL, AxisG, AxisH},
	}
	outLineChoices := []int{1, 2, 4, 8}
	var (
		best     Mapping
		bestEval Eval
		found    bool
	)
	for _, order := range orders {
		for _, ol := range outLineChoices {
			cand := DefaultMapping()
			cand.TBOrder = order
			cand.TBOutLines = ol
			ev, err := Evaluate(cand, op, lineBytes)
			if err != nil {
				continue // violates a constraint for this op size
			}
			if !found || better(ev, bestEval) {
				best, bestEval, found = cand, ev, true
			}
		}
	}
	if !found {
		return Mapping{}, Eval{}, fmt.Errorf("dataflow: no legal mapping for %s", op.Name())
	}
	return best, bestEval, nil
}

// better ranks a before b: smaller K-share distance first, then
// smaller per-block K footprint, then fewer blocks (less dispatch
// overhead) as the final tie-break.
func better(a, b Eval) bool {
	if a.KShareDistance != b.KShareDistance {
		return a.KShareDistance < b.KShareDistance
	}
	if a.TBKLines != b.TBKLines {
		return a.TBKLines < b.TBKLines
	}
	return a.NumTBs < b.NumTBs
}

// Generate unrolls a mapping into the thread-block trace that drives
// the cycle simulator. Each thread block (h, g, [l0,l1)) performs:
//
//	LD Q[h][g][:]                (reused from L1 within the block)
//	for each l in [l0, l1):
//	    LD K[h][l][:]            (VectorBytes-wide accesses)
//	    CP ComputePerRow         (dot-product work)
//	for each output line:
//	    ST AttScore[h][g][line]  (write-through to L2)
//
// Blocks are emitted in TBOrder; the global scheduler dispatches them
// in this order, so the order directly controls cross-core K reuse
// proximity.
func Generate(op workload.LogitOp, amap *workload.AddressMap, m Mapping, lineBytes int) (*memtrace.Trace, error) {
	if err := m.Validate(op, lineBytes); err != nil {
		return nil, err
	}
	if amap.Op() != op {
		return nil, fmt.Errorf("dataflow: address map built for %s, not %s", amap.Op().Name(), op.Name())
	}
	tileL := m.TileL(op, lineBytes)
	numLTiles := (op.SeqLen + tileL - 1) / tileL
	extent := func(a Axis) int {
		switch a {
		case AxisH:
			return op.Model.H
		case AxisG:
			return op.Model.G
		default:
			return numLTiles
		}
	}
	e0, e1, e2 := extent(m.TBOrder[0]), extent(m.TBOrder[1]), extent(m.TBOrder[2])
	numBlocks := e0 * e1 * e2
	trace := &memtrace.Trace{Name: op.Name() + "/" + orderString(m.TBOrder)}
	trace.Blocks = make([]*memtrace.ThreadBlock, 0, numBlocks)

	rowBytes := op.Model.D * op.Model.ElemBytes
	vecPerRow := (rowBytes + m.VectorBytes - 1) / m.VectorBytes
	qBytes := op.Model.D * op.Model.ElemBytes
	vecPerQ := (qBytes + m.VectorBytes - 1) / m.VectorBytes
	outElemsPerLine := lineBytes / op.Model.OutBytes

	// Arena allocation: every block header comes from one slab and
	// every instruction from one contiguous slab, sized exactly by
	// summing the per-tile instruction counts. Serving-regime callers
	// generate thousands of small per-token traces (one per stream per
	// kvLen), so 2×blocks+1 allocations per trace collapsing to 3
	// matters there.
	instTotal := 0
	// Upper bound per tile, matching the per-block capacity estimate
	// below (stores may come in under TBOutLines on the last tile).
	instPerTile := func(l0, l1 int) int {
		return vecPerQ + (l1-l0)*vecPerRow + (l1 - l0) + m.TBOutLines
	}
	for lt := 0; lt < numLTiles; lt++ {
		l0 := lt * tileL
		l1 := l0 + tileL
		if l1 > op.SeqLen {
			l1 = op.SeqLen
		}
		instTotal += instPerTile(l0, l1) * op.Model.H * op.Model.G
	}
	blockArena := make([]memtrace.ThreadBlock, 0, numBlocks)
	instArena := make([]memtrace.Inst, 0, instTotal)

	id := 0
	for i0 := 0; i0 < e0; i0++ {
		for i1 := 0; i1 < e1; i1++ {
			for i2 := 0; i2 < e2; i2++ {
				var h, g, lt int
				assign := func(a Axis, v int) {
					switch a {
					case AxisH:
						h = v
					case AxisG:
						g = v
					default:
						lt = v
					}
				}
				assign(m.TBOrder[0], i0)
				assign(m.TBOrder[1], i1)
				assign(m.TBOrder[2], i2)

				l0 := lt * tileL
				l1 := l0 + tileL
				if l1 > op.SeqLen {
					l1 = op.SeqLen
				}
				blockArena = append(blockArena, memtrace.ThreadBlock{
					ID:   id,
					Meta: memtrace.Meta{Group: h, QHead: g, TileLo: l0, TileHi: l1},
				})
				tb := &blockArena[len(blockArena)-1]
				id++
				nInsts := vecPerQ + (l1-l0)*vecPerRow + (l1 - l0) + m.TBOutLines
				// Carve the block's window out of the instruction slab;
				// appends below stay within its capacity.
				base := len(instArena)
				instArena = instArena[:base+nInsts]
				tb.Insts = instArena[base : base : base+nInsts]

				// Load the query head once per block.
				for v := 0; v < vecPerQ; v++ {
					w := m.VectorBytes
					if off := v * m.VectorBytes; off+w > qBytes {
						w = qBytes - off
					}
					tb.Insts = append(tb.Insts, memtrace.Inst{
						Kind:  memtrace.KindLoad,
						Addr:  amap.QAddr(h, g, 0) + uint64(v*m.VectorBytes),
						Width: uint32(w),
					})
				}
				// Stream K rows for the tile.
				for l := l0; l < l1; l++ {
					for v := 0; v < vecPerRow; v++ {
						w := m.VectorBytes
						if off := v * m.VectorBytes; off+w > rowBytes {
							w = rowBytes - off
						}
						tb.Insts = append(tb.Insts, memtrace.Inst{
							Kind:  memtrace.KindLoad,
							Addr:  amap.KAddr(h, l, 0) + uint64(v*m.VectorBytes),
							Width: uint32(w),
						})
					}
					if m.ComputePerRow > 0 {
						tb.Insts = append(tb.Insts, memtrace.Inst{
							Kind:   memtrace.KindCompute,
							Cycles: uint32(m.ComputePerRow),
						})
					}
				}
				// Store the produced output lines.
				for l := l0; l < l1; l += outElemsPerLine {
					w := (l1 - l) * op.Model.OutBytes
					if w > lineBytes {
						w = lineBytes
					}
					tb.Insts = append(tb.Insts, memtrace.Inst{
						Kind:  memtrace.KindStore,
						Addr:  amap.OutAddr(h, g, l),
						Width: uint32(w),
					})
				}
				trace.Blocks = append(trace.Blocks, tb)
			}
		}
	}
	return trace, nil
}

func orderString(o [3]Axis) string {
	return fmt.Sprintf("%v%v%v", o[0], o[1], o[2])
}

// PartitionRoundRobin splits a trace into n per-core traces by
// assigning blocks round-robin, modelling the *original* Ramulator2
// restriction that each core runs only its own trace file. The paper
// adds global dispatch precisely because this static partition
// under-estimates baselines; the function exists to reproduce that
// ablation.
func PartitionRoundRobin(t *memtrace.Trace, n int) []*memtrace.Trace {
	parts := make([]*memtrace.Trace, n)
	for i := range parts {
		parts[i] = &memtrace.Trace{Name: fmt.Sprintf("%s/part%d", t.Name, i)}
	}
	for i, tb := range t.Blocks {
		p := parts[i%n]
		p.Blocks = append(p.Blocks, tb)
	}
	return parts
}
