package dataflow

import (
	"testing"

	"repro/internal/memtrace"
	"repro/internal/workload"
)

func TestGenerateAVCoverage(t *testing.T) {
	op := workload.AVOp{Model: workload.Llama3_70B, SeqLen: 256}
	amap, err := workload.NewAVAddressMap(op, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMapping()
	tr, err := GenerateAV(op, amap, m, lineBytes)
	if err != nil {
		t.Fatal(err)
	}
	logitEquiv := workload.LogitOp{Model: op.Model, SeqLen: op.SeqLen}
	tileL := m.TileL(logitEquiv, lineBytes)
	wantBlocks := op.Model.H * op.Model.G * (op.SeqLen / tileL)
	if len(tr.Blocks) != wantBlocks {
		t.Fatalf("blocks=%d want %d", len(tr.Blocks), wantBlocks)
	}
	covered := map[[3]int]bool{}
	for _, tb := range tr.Blocks {
		var vLoads, probLoads, accLoads, accStores int
		for _, in := range tb.Insts {
			switch in.Kind {
			case memtrace.KindLoad:
				switch amap.Region(in.Addr) {
				case "V":
					vLoads++
				case "Prob":
					probLoads++
				case "Out":
					accLoads++
				default:
					t.Fatalf("load outside mapped regions at %#x", in.Addr)
				}
			case memtrace.KindStore:
				if amap.Region(in.Addr) != "Out" {
					t.Fatalf("store outside Out at %#x", in.Addr)
				}
				accStores++
			}
		}
		rowVecs := (op.Model.D*op.Model.ElemBytes + m.VectorBytes - 1) / m.VectorBytes
		if vLoads != tileL*rowVecs {
			t.Fatalf("block %d: %d V loads want %d", tb.ID, vLoads, tileL*rowVecs)
		}
		if probLoads != 1 {
			t.Fatalf("block %d: %d prob loads", tb.ID, probLoads)
		}
		// The accumulator is read and written exactly once per block.
		if accLoads == 0 || accStores != 1 {
			t.Fatalf("block %d: accumulator RMW missing (%d loads, %d stores)", tb.ID, accLoads, accStores)
		}
		for l := tb.Meta.TileLo; l < tb.Meta.TileHi; l++ {
			key := [3]int{tb.Meta.Group, tb.Meta.QHead, l}
			if covered[key] {
				t.Fatalf("position (%d,%d,%d) covered twice", tb.Meta.Group, tb.Meta.QHead, l)
			}
			covered[key] = true
		}
	}
	if len(covered) != op.Model.H*op.Model.G*op.SeqLen {
		t.Fatalf("coverage %d want %d", len(covered), op.Model.H*op.Model.G*op.SeqLen)
	}
}

func TestGenerateAVMismatchedMap(t *testing.T) {
	opA := workload.AVOp{Model: workload.Llama3_70B, SeqLen: 128}
	opB := workload.AVOp{Model: workload.Llama3_70B, SeqLen: 256}
	amap, _ := workload.NewAVAddressMap(opA, 0)
	if _, err := GenerateAV(opB, amap, DefaultMapping(), lineBytes); err == nil {
		t.Fatal("mismatched address map accepted")
	}
}

func TestAVSizes(t *testing.T) {
	op := workload.AVOp{Model: workload.Llama3_70B, SeqLen: 8192}
	if op.VBytes() != 16<<20 {
		t.Fatalf("VBytes=%d", op.VBytes())
	}
	if op.ProbBytes() != 8*8*8192*4 {
		t.Fatalf("ProbBytes=%d", op.ProbBytes())
	}
	if op.OutBytes() != 8*8*128*4 {
		t.Fatalf("OutBytes=%d", op.OutBytes())
	}
	if op.Name() != "av/llama3-70b/L8192" {
		t.Fatalf("Name=%q", op.Name())
	}
	if err := (workload.AVOp{Model: workload.Llama3_70B}).Validate(); err == nil {
		t.Fatal("zero SeqLen accepted")
	}
}
