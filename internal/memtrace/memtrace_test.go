package memtrace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		Blocks: []*ThreadBlock{
			{
				ID:   0,
				Meta: Meta{Group: 1, QHead: 2, TileLo: 0, TileHi: 16},
				Insts: []Inst{
					{Kind: KindLoad, Addr: 0x1000, Width: 128},
					{Kind: KindCompute, Cycles: 4},
					{Kind: KindStore, Addr: 0x2000, Width: 64},
				},
			},
			{
				ID:   1,
				Meta: Meta{Group: 1, QHead: 3, TileLo: 16, TileHi: 32},
				Insts: []Inst{
					{Kind: KindLoad, Addr: 0x1080, Width: 128},
				},
			},
		},
	}
}

func TestKindString(t *testing.T) {
	if KindLoad.String() != "LD" || KindStore.String() != "ST" || KindCompute.String() != "CP" {
		t.Fatal("kind strings wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind should include value")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo returned %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if back.Name != tr.Name {
		t.Fatalf("name %q != %q", back.Name, tr.Name)
	}
	if len(back.Blocks) != len(tr.Blocks) {
		t.Fatalf("blocks %d != %d", len(back.Blocks), len(tr.Blocks))
	}
	for i := range tr.Blocks {
		if !reflect.DeepEqual(tr.Blocks[i], back.Blocks[i]) {
			t.Fatalf("block %d mismatch:\n%+v\n%+v", i, tr.Blocks[i], back.Blocks[i])
		}
	}
}

// Round-trip property over randomly generated traces.
func TestRoundTripQuick(t *testing.T) {
	gen := func(r *rand.Rand) *Trace {
		tr := &Trace{Name: "q"}
		nb := r.Intn(5) + 1
		for b := 0; b < nb; b++ {
			tb := &ThreadBlock{
				ID:   b,
				Meta: Meta{Group: r.Intn(8), QHead: r.Intn(16), TileLo: r.Intn(100), TileHi: r.Intn(100) + 100},
			}
			ni := r.Intn(10) + 1
			for i := 0; i < ni; i++ {
				switch r.Intn(3) {
				case 0:
					tb.Insts = append(tb.Insts, Inst{Kind: KindLoad, Addr: uint64(r.Int63n(1 << 40)), Width: uint32(r.Intn(256) + 1)})
				case 1:
					tb.Insts = append(tb.Insts, Inst{Kind: KindStore, Addr: uint64(r.Int63n(1 << 40)), Width: uint32(r.Intn(256) + 1)})
				default:
					tb.Insts = append(tb.Insts, Inst{Kind: KindCompute, Cycles: uint32(r.Intn(100) + 1)})
				}
			}
			tr.Blocks = append(tr.Blocks, tb)
		}
		return tr
	}
	check := func(seed int64) bool {
		tr := gen(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(back.Blocks) != len(tr.Blocks) {
			return false
		}
		for i := range tr.Blocks {
			if !reflect.DeepEqual(tr.Blocks[i], back.Blocks[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"LD 1000 64\n",           // instruction before tb header
		"tb 1 2 3\n",             // short tb header
		"tb 0 0 0 0 16\nLD zz 4", // bad address
		"tb 0 0 0 0 16\nCP x",    // bad cycles
		"bogus 1 2 3\n",          // unknown record
		"tb 0 0 0 0 16\nLD 10\n", // malformed memory instruction
		"tb 0 0 0 0 16 -5\n",     // negative stream coordinate
		"tb 0 -1 0 0 16\nCP 1\n", // negative group coordinate
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("ReadTrace(%q) succeeded, want error", c)
		}
	}
}

func TestCounts(t *testing.T) {
	tr := sampleTrace()
	if got := tr.TotalInsts(); got != 4 {
		t.Fatalf("TotalInsts=%d", got)
	}
	if got := tr.TotalMemInsts(); got != 3 {
		t.Fatalf("TotalMemInsts=%d", got)
	}
	if got := tr.Blocks[0].MemInsts(); got != 2 {
		t.Fatalf("MemInsts=%d", got)
	}
}

func TestLinesAndFootprint(t *testing.T) {
	tb := &ThreadBlock{Insts: []Inst{
		{Kind: KindLoad, Addr: 0, Width: 128},   // lines 0,1
		{Kind: KindLoad, Addr: 64, Width: 64},   // line 1 (shared)
		{Kind: KindStore, Addr: 960, Width: 32}, // line 15
		{Kind: KindCompute, Cycles: 3},
	}}
	if got := tb.Lines(64); got != 3 {
		t.Fatalf("Lines=%d want 3", got)
	}
	tr := &Trace{Blocks: []*ThreadBlock{tb}}
	if got := tr.Footprint(64); got != 3*64 {
		t.Fatalf("Footprint=%d want %d", got, 3*64)
	}
}

// A memory access that straddles a line boundary counts both lines.
func TestLinesStraddleProperty(t *testing.T) {
	check := func(addrRaw uint32, widthRaw uint8) bool {
		addr := uint64(addrRaw)
		width := uint32(widthRaw%200) + 1
		tb := &ThreadBlock{Insts: []Inst{{Kind: KindLoad, Addr: addr, Width: width}}}
		first := addr / 64
		last := (addr + uint64(width) - 1) / 64
		return tb.Lines(64) == int(last-first+1)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
