// Package memtrace defines the memory-trace representation that links
// the analytical (Timeloop-like) half of the hybrid framework to the
// cycle-level simulator half, mirroring Fig. 6 of the LLaMCAT paper.
//
// A trace is a set of thread blocks; each thread block is an ordered
// list of instructions executed by one instruction window of a vector
// core. Instructions are either vector memory accesses (a contiguous
// span of bytes, split into cache-line requests when executed) or
// compute delays (a number of non-memory cycles).
package memtrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind discriminates instruction types.
type Kind uint8

// Instruction kinds.
const (
	KindLoad Kind = iota
	KindStore
	KindCompute
)

// String implements fmt.Stringer for Kind.
func (k Kind) String() string {
	switch k {
	case KindLoad:
		return "LD"
	case KindStore:
		return "ST"
	case KindCompute:
		return "CP"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Inst is one trace instruction. For memory kinds, Addr/Width describe
// the accessed byte span (the vector access). For compute, Cycles is
// the busy time of the issuing window.
type Inst struct {
	Kind   Kind
	Addr   uint64 // byte address of the first element (memory kinds)
	Width  uint32 // bytes touched by the vector access (memory kinds)
	Cycles uint32 // busy cycles (compute kind)
}

// Meta carries the loop-space coordinates a thread block covers; used
// for debugging, locality analysis and scheduling diagnostics.
//
// Stream identifies the decode stream (serving-scenario batch slot)
// the block belongs to. Single-operator traces leave it zero; the
// serving engine composes per-request traces into one multi-stream
// trace and stamps each block with its slot so the dispatcher can
// spread streams across cores and diagnostics can attribute traffic.
type Meta struct {
	Group  int // head group index h
	QHead  int // query head index g within the group
	TileLo int // first sequence position covered
	TileHi int // one past the last sequence position covered
	Stream int // decode stream (batch slot); 0 for single-stream traces
}

// ThreadBlock is the unit of work dispatched to an instruction window
// ("thread block" in GPU terms, per Section 3.1 of the paper).
type ThreadBlock struct {
	ID    int
	Meta  Meta
	Insts []Inst
}

// MemInsts counts the memory instructions in the block.
func (tb *ThreadBlock) MemInsts() int {
	n := 0
	for _, in := range tb.Insts {
		if in.Kind != KindCompute {
			n++
		}
	}
	return n
}

// Lines returns the number of distinct cache lines the block touches,
// assuming the given line size. Used by locality diagnostics.
func (tb *ThreadBlock) Lines(lineBytes int) int {
	seen := make(map[uint64]struct{})
	lb := uint64(lineBytes)
	for _, in := range tb.Insts {
		if in.Kind == KindCompute {
			continue
		}
		first := in.Addr / lb
		last := (in.Addr + uint64(in.Width) - 1) / lb
		for l := first; l <= last; l++ {
			seen[l] = struct{}{}
		}
	}
	return len(seen)
}

// Trace is an ordered pool of thread blocks for one operator
// execution. Order matters: the global scheduler dispatches blocks in
// this order, which encodes the dataflow's spatial proximity.
type Trace struct {
	Name   string
	Blocks []*ThreadBlock
}

// TotalInsts sums instruction counts over all blocks.
func (t *Trace) TotalInsts() int {
	n := 0
	for _, tb := range t.Blocks {
		n += len(tb.Insts)
	}
	return n
}

// TotalMemInsts sums memory instruction counts over all blocks.
func (t *Trace) TotalMemInsts() int {
	n := 0
	for _, tb := range t.Blocks {
		n += tb.MemInsts()
	}
	return n
}

// Footprint returns the number of distinct lines touched by the whole
// trace times the line size — the working set in bytes.
func (t *Trace) Footprint(lineBytes int) int64 {
	seen := make(map[uint64]struct{})
	lb := uint64(lineBytes)
	for _, tb := range t.Blocks {
		for _, in := range tb.Insts {
			if in.Kind == KindCompute {
				continue
			}
			first := in.Addr / lb
			last := (in.Addr + uint64(in.Width) - 1) / lb
			for l := first; l <= last; l++ {
				seen[l] = struct{}{}
			}
		}
	}
	return int64(len(seen)) * int64(lineBytes)
}

// WriteTo serialises the trace in a line-oriented text format:
//
//	# trace <name>
//	tb <id> <group> <qhead> <tilelo> <tilehi> <stream>
//	LD <addr-hex> <width>
//	ST <addr-hex> <width>
//	CP <cycles>
//
// The format is the analogue of the paper's trace files feeding
// Ramulator2 and is consumed by cmd/tracegen and ReadTrace. ReadTrace
// also accepts the pre-serving six-field tb header (stream column
// omitted, meaning stream 0).
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "# trace %s\n", t.Name)); err != nil {
		return n, err
	}
	for _, tb := range t.Blocks {
		if err := count(fmt.Fprintf(bw, "tb %d %d %d %d %d %d\n",
			tb.ID, tb.Meta.Group, tb.Meta.QHead, tb.Meta.TileLo, tb.Meta.TileHi, tb.Meta.Stream)); err != nil {
			return n, err
		}
		for _, in := range tb.Insts {
			var err error
			switch in.Kind {
			case KindCompute:
				err = count(fmt.Fprintf(bw, "CP %d\n", in.Cycles))
			default:
				err = count(fmt.Fprintf(bw, "%s %x %d\n", in.Kind, in.Addr, in.Width))
			}
			if err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadTrace parses the format produced by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	t := &Trace{}
	var cur *ThreadBlock
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "#":
			if len(fields) >= 3 && fields[1] == "trace" {
				t.Name = strings.Join(fields[2:], " ")
			}
		case "tb":
			// Six fields is the pre-serving header (no stream column).
			if len(fields) != 6 && len(fields) != 7 {
				return nil, fmt.Errorf("memtrace: line %d: malformed tb header", lineNo)
			}
			vals := make([]int, len(fields)-1)
			for i := range vals {
				v, err := strconv.Atoi(fields[i+1])
				if err != nil {
					return nil, fmt.Errorf("memtrace: line %d: %v", lineNo, err)
				}
				// All tb coordinates are non-negative by construction;
				// a negative value would corrupt the dispatcher's
				// core-home arithmetic downstream.
				if v < 0 {
					return nil, fmt.Errorf("memtrace: line %d: negative tb field %d", lineNo, v)
				}
				vals[i] = v
			}
			cur = &ThreadBlock{
				ID:   vals[0],
				Meta: Meta{Group: vals[1], QHead: vals[2], TileLo: vals[3], TileHi: vals[4]},
			}
			if len(vals) == 6 {
				cur.Meta.Stream = vals[5]
			}
			t.Blocks = append(t.Blocks, cur)
		case "LD", "ST":
			if cur == nil {
				return nil, fmt.Errorf("memtrace: line %d: instruction before tb header", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("memtrace: line %d: malformed memory instruction", lineNo)
			}
			addr, err := strconv.ParseUint(fields[1], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("memtrace: line %d: bad address: %v", lineNo, err)
			}
			width, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("memtrace: line %d: bad width: %v", lineNo, err)
			}
			kind := KindLoad
			if fields[0] == "ST" {
				kind = KindStore
			}
			cur.Insts = append(cur.Insts, Inst{Kind: kind, Addr: addr, Width: uint32(width)})
		case "CP":
			if cur == nil {
				return nil, fmt.Errorf("memtrace: line %d: instruction before tb header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("memtrace: line %d: malformed compute instruction", lineNo)
			}
			cycles, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("memtrace: line %d: bad cycle count: %v", lineNo, err)
			}
			cur.Insts = append(cur.Insts, Inst{Kind: KindCompute, Cycles: uint32(cycles)})
		default:
			return nil, fmt.Errorf("memtrace: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
