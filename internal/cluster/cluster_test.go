package cluster

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testScenario is the acceptance-shape fleet workload: sixteen
// requests over four sessions, Poisson arrivals, per-node batch
// capacity two, at test-sized prompts.
func testScenario(t *testing.T) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "test/16req", Seed: 7, NumRequests: 16,
			Models:       []workload.ModelConfig{workload.Llama3_70B},
			MinPromptLen: 16, MaxPromptLen: 48,
			MinDecode: 2, MaxDecode: 3,
			MeanInterArrival: 4000, MaxBatch: 2,
		},
		NumSessions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func testConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes = 1 << 20 // pressure the cache at test-sized prompts
	return cfg
}

// TestClusterParallelDeterminism is the acceptance test of ISSUE 3: a
// 4-node/16-request fleet produces bit-identical cluster metrics
// across worker-pool widths 1 and GOMAXPROCS, for every router
// policy — and repeated runs at the same width agree too.
func TestClusterParallelDeterminism(t *testing.T) {
	scn := testScenario(t)
	cfg := testConfig()
	wide := runtime.GOMAXPROCS(0)
	for _, pol := range Policies() {
		serial, err := Run(cfg, scn, 4, pol, Options{Parallel: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", pol, err)
		}
		parallel, err := Run(cfg, scn, 4, pol, Options{Parallel: wide})
		if err != nil {
			t.Fatalf("%s parallel: %v", pol, err)
		}
		// StepCache counters are diagnostics outside the bit-identity
		// contract: concurrently advancing nodes race to publish shared
		// step signatures, so the hit/miss split depends on timing.
		serial.StripStepCache()
		parallel.StripStepCache()
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("%s: metrics differ between -parallel 1 and %d:\n%v\n%v", pol, wide, serial, parallel)
		}
		again, err := Run(cfg, scn, 4, pol, Options{Parallel: wide})
		if err != nil {
			t.Fatalf("%s again: %v", pol, err)
		}
		again.StripStepCache()
		if !reflect.DeepEqual(parallel, again) {
			t.Fatalf("%s: repeated parallel runs disagree", pol)
		}

		// Fleet bookkeeping invariants.
		if serial.Tokens != scn.TotalTokens() {
			t.Fatalf("%s: fleet generated %d tokens, scenario has %d", pol, serial.Tokens, scn.TotalTokens())
		}
		var nodeTokens int64
		for _, nm := range serial.PerNode {
			nodeTokens += nm.Tokens
		}
		if nodeTokens != serial.Tokens {
			t.Fatalf("%s: per-node tokens sum %d != fleet %d", pol, nodeTokens, serial.Tokens)
		}
		for id, rs := range serial.PerRequest {
			if rs.ID != id {
				t.Fatalf("%s: PerRequest[%d] holds ID %d", pol, id, rs.ID)
			}
			if rs.Node < 0 || rs.Node >= 4 {
				t.Fatalf("%s: request %d routed to node %d", pol, id, rs.Node)
			}
			if rs.E2ELatency <= 0 || rs.FinishCycle <= rs.ArrivalCycle {
				t.Fatalf("%s: inconsistent request stats %+v", pol, rs)
			}
		}
		if serial.LoadImbalance < 1 || serial.LoadImbalance > 4 {
			t.Fatalf("%s: load imbalance %v outside [1, nodes]", pol, serial.LoadImbalance)
		}
		e2e, q := serial.E2ELatency, serial.QueueDelay
		if !(e2e.P50 > 0 && e2e.P50 <= e2e.P95 && e2e.P95 <= e2e.P99 && e2e.P99 <= e2e.Max) {
			t.Fatalf("%s: e2e percentiles unordered: %+v", pol, e2e)
		}
		if q.Max > e2e.Max {
			t.Fatalf("%s: queue delay max %v exceeds e2e max %v", pol, q.Max, e2e.Max)
		}
	}
}

// TestSingleNodeDegenerateEquivalence is the other acceptance test: a
// 1-node cluster under any router policy reproduces the single-node
// internal/serving result exactly — the node's serving metrics are
// bit-identical to serving.Run on the session-stripped scenario, and
// the fleet rollup agrees with them.
func TestSingleNodeDegenerateEquivalence(t *testing.T) {
	scn := testScenario(t)
	cfg := testConfig()
	want, err := serving.Run(cfg, scn.ServingScenario())
	if err != nil {
		t.Fatal(err)
	}
	want.StripStepCache()
	for _, pol := range Policies() {
		m, err := Run(cfg, scn, 1, pol, Options{})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		m.StripStepCache()
		if len(m.PerNode) != 1 {
			t.Fatalf("%s: %d node metrics, want 1", pol, len(m.PerNode))
		}
		if !reflect.DeepEqual(m.PerNode[0], want) {
			t.Fatalf("%s: 1-node cluster diverges from serving.Run:\n%v\n%v", pol, m.PerNode[0], want)
		}
		if m.Tokens != want.Tokens || m.Makespan != want.Makespan {
			t.Fatalf("%s: fleet rollup (tokens %d, makespan %d) != node (%d, %d)",
				pol, m.Tokens, m.Makespan, want.Tokens, want.Makespan)
		}
		if m.FleetTokensPerKCycle != want.TokensPerKCycle {
			t.Fatalf("%s: fleet throughput %v != node %v", pol, m.FleetTokensPerKCycle, want.TokensPerKCycle)
		}
		if m.MeanBatchOccupancy != want.MeanBatchOccupancy {
			t.Fatalf("%s: fleet occupancy %v != node %v", pol, m.MeanBatchOccupancy, want.MeanBatchOccupancy)
		}
		if m.LoadImbalance != 1 {
			t.Fatalf("%s: single-node imbalance %v, want exactly 1", pol, m.LoadImbalance)
		}
	}
}

// TestRouterPolicies unit-tests each policy's dispatch function
// directly.
func TestRouterPolicies(t *testing.T) {
	req := func(id, session int) Request {
		return Request{
			Request: serving.Request{ID: id, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 2},
			Session: session,
		}
	}
	t.Run("round-robin", func(t *testing.T) {
		rt := newRouter(Policy{Kind: RoundRobin}, 3)
		load := []int64{100, 0, 0} // ignored by design
		zeros := make([]int64, 3)
		for k := 0; k < 7; k++ {
			if got := rt.pick(req(k, 0), load, zeros, nil, nil); got != k%3 {
				t.Fatalf("dispatch %d went to node %d, want %d", k, got, k%3)
			}
		}
	})
	t.Run("least-outstanding", func(t *testing.T) {
		rt := newRouter(Policy{Kind: LeastOutstanding}, 4)
		if got := rt.pick(req(0, 0), []int64{5, 3, 9, 3}, make([]int64, 4), nil, nil); got != 1 {
			t.Fatalf("picked node %d, want the first minimum 1", got)
		}
	})
	t.Run("p2c", func(t *testing.T) {
		a := newRouter(Policy{Kind: PowerOfTwo, Seed: 9}, 4)
		b := newRouter(Policy{Kind: PowerOfTwo, Seed: 9}, 4)
		load := []int64{4, 1, 3, 2}
		zeros := make([]int64, 4)
		for k := 0; k < 32; k++ {
			x, y := a.pick(req(k, 0), load, zeros, nil, nil), b.pick(req(k, 0), load, zeros, nil, nil)
			if x != y {
				t.Fatalf("same seed diverged at dispatch %d: %d vs %d", k, x, y)
			}
		}
	})
	t.Run("ttft-pressure", func(t *testing.T) {
		rt := newRouter(Policy{Kind: LeastTTFTPressure}, 4)
		// Node 1 has the lowest decode load but a deep prefill backlog;
		// the pressure policy must look past it to node 2, while a pure
		// least-outstanding pick would take node 1.
		load := []int64{5, 1, 3, 6}
		backlog := []int64{0, 90, 0, 0}
		if got := rt.pick(req(0, 0), load, backlog, nil, nil); got != 2 {
			t.Fatalf("picked node %d, want the least-pressure node 2", got)
		}
		// Zero backlog everywhere (decode-only fleet): degenerates to
		// least-outstanding, ties to the lowest index.
		if got := rt.pick(req(1, 0), []int64{4, 2, 2, 9}, make([]int64, 4), nil, nil); got != 1 {
			t.Fatalf("picked node %d, want least-outstanding tie-break 1", got)
		}
	})
	t.Run("affinity", func(t *testing.T) {
		rt := newRouter(Policy{Kind: SessionAffinity}, 4)
		load := []int64{0, 0, 0, 0}
		zeros := make([]int64, 4)
		homes := map[int]int{}
		for k := 0; k < 40; k++ {
			session := k % 5
			got := rt.pick(req(k, session), load, zeros, nil, nil)
			if home, seen := homes[session]; seen && got != home {
				t.Fatalf("session %d moved from node %d to %d", session, home, got)
			}
			homes[session] = got
		}
	})
}

// TestAffinityImbalance: a single-session population under affinity
// lands entirely on one node of a 4-node fleet — the imbalance
// coefficient reaches its maximum (the node count) and every request
// reports the same node.
func TestAffinityImbalance(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "one-session", Seed: 3, NumRequests: 6,
			MinPromptLen: 16, MaxPromptLen: 32,
			MinDecode: 2, MaxDecode: 2,
			MeanInterArrival: 3000, MaxBatch: 2,
		},
		NumSessions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(testConfig(), scn, 4, Policy{Kind: SessionAffinity}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	home := m.PerRequest[0].Node
	for _, rs := range m.PerRequest {
		if rs.Node != home {
			t.Fatalf("request %d ran on node %d, want the session home %d", rs.ID, rs.Node, home)
		}
	}
	if m.LoadImbalance != 4 {
		t.Fatalf("one-session imbalance %v, want the full 4 (all load on one node)", m.LoadImbalance)
	}
	busy, idle := 0, 0
	for _, nm := range m.PerNode {
		if nm.Requests > 0 {
			busy++
		} else {
			idle++
			if nm.Tokens != 0 || nm.Steps != 0 {
				t.Fatalf("idle node did work: %+v", nm)
			}
		}
	}
	if busy != 1 || idle != 3 {
		t.Fatalf("%d busy / %d idle nodes, want 1/3", busy, idle)
	}
}

// TestLeastOutstandingSpreads: under the greedy policy a saturated
// closed batch spreads across the fleet — no node is left idle and
// the imbalance stays well below the affinity extreme.
func TestLeastOutstandingSpreads(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "closed", Seed: 5, NumRequests: 8,
			MinPromptLen: 16, MaxPromptLen: 32,
			MinDecode: 2, MaxDecode: 2,
			MeanInterArrival: 0, MaxBatch: 2,
		},
		NumSessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(testConfig(), scn, 4, Policy{Kind: LeastOutstanding}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, nm := range m.PerNode {
		if nm.Requests != 2 {
			t.Fatalf("node %d served %d requests, want an even 2", i, nm.Requests)
		}
	}
	// The load integral samples at every dispatch, so the first-filled
	// node carries slightly more than the mean even in a perfectly even
	// spread — but nowhere near the affinity extreme of 4.
	if m.LoadImbalance < 1 || m.LoadImbalance >= 2 {
		t.Fatalf("even closed-batch spread has imbalance %v, want [1, 2)", m.LoadImbalance)
	}
}

// TestScenarioGeneration: session assignment is deterministic, within
// range, and the session-stripped population matches the serving
// generator draw for the same seed.
func TestScenarioGeneration(t *testing.T) {
	cfg := ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Seed: 42, NumRequests: 64,
			MinPromptLen: 16, MaxPromptLen: 64,
			MinDecode: 1, MaxDecode: 4,
			MeanInterArrival: 2000, MaxBatch: 4,
		},
		NumSessions: 8,
	}
	a, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different cluster scenarios")
	}
	sessions := map[int]bool{}
	for _, r := range a.Requests {
		if r.Session < 0 || r.Session >= 8 {
			t.Fatalf("request %d assigned session %d outside [0, 8)", r.ID, r.Session)
		}
		sessions[r.Session] = true
	}
	if len(sessions) < 2 {
		t.Fatalf("64 requests over 8 sessions used only %d sessions", len(sessions))
	}
	// The embedded population is exactly the serving generator's draw
	// with the cluster session count forwarded — one assignment shared
	// by the router and the node-side prefix caches.
	inner := cfg.ScenarioConfig
	inner.NumSessions = cfg.NumSessions
	base, err := serving.NewScenario(inner)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.ServingScenario().Requests, base.Requests) {
		t.Fatal("embedded population diverges from the serving generator")
	}
	for _, r := range a.Requests {
		if r.Session != r.Request.Session {
			t.Fatalf("request %d: fleet session %d != embedded serving session %d", r.ID, r.Session, r.Request.Session)
		}
	}
	if _, err := NewScenario(ScenarioConfig{ScenarioConfig: inner, NumSessions: 3}); err == nil {
		t.Error("conflicting cluster/serving NumSessions accepted")
	}
}

// TestClusterValidation: bad inputs are rejected with errors, not
// panics or hangs.
func TestClusterValidation(t *testing.T) {
	scn := testScenario(t)
	if _, err := Run(testConfig(), scn, 0, Policy{}, Options{}); err == nil {
		t.Error("zero node count accepted")
	}
	if _, err := Run(testConfig(), scn, -3, Policy{}, Options{}); err == nil {
		t.Error("negative node count accepted")
	}
	if _, err := Run(testConfig(), Scenario{}, 2, Policy{}, Options{}); err == nil {
		t.Error("empty scenario accepted")
	}
	if _, err := NewScenario(ScenarioConfig{NumSessions: -1}); err == nil {
		t.Error("negative session count accepted")
	}
	bad := scn
	bad.Requests = append([]Request(nil), scn.Requests...)
	bad.Requests[0].Session = -2
	if err := bad.Validate(); err == nil {
		t.Error("negative request session validated")
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus router policy parsed")
	}
	for _, p := range Policies() {
		rt, err := ParsePolicy(p.Kind.String())
		if err != nil {
			t.Errorf("canonical name %q did not round-trip: %v", p.Kind, err)
		}
		if rt.Kind != p.Kind {
			t.Errorf("%q parsed to %v", p.Kind, rt.Kind)
		}
	}
	if !strings.Contains(Policy{Kind: PowerOfTwo, Seed: 7}.String(), "seed7") {
		t.Error("seeded p2c policy label omits the seed")
	}
}
