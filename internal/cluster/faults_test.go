package cluster

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/serving"
	"repro/internal/workload"
)

// TestParseFaults covers the -faults flag grammar: every clause kind,
// canonical round-tripping, and up-front rejection of malformed specs
// (including NaN/Inf/negative generator parameters).
func TestParseFaults(t *testing.T) {
	gen := &FaultGen{Seed: 9, MTBF: 250000, MTTR: 40000.5, Count: 3}
	cases := []struct {
		spec string
		want FaultConfig
	}{
		{"", FaultConfig{}},
		{"off", FaultConfig{}},
		{"crash:0:50000", FaultConfig{Crashes: []Crash{{Node: 0, At: 50000}}}},
		{"crash:1:50000:90000", FaultConfig{Crashes: []Crash{{Node: 1, At: 50000, Rejoin: 90000}}}},
		{"slow:2:10000:60000:3", FaultConfig{Stragglers: []Straggler{{Node: 2, From: 10000, To: 60000, Factor: 3}}}},
		{"gen:9:250000:40000.5:3", FaultConfig{Gen: gen}},
		{
			"crash:0:50000:90000,slow:1:0:20000:2,detect:5000,drop,blind",
			FaultConfig{
				Crashes:       []Crash{{Node: 0, At: 50000, Rejoin: 90000}},
				Stragglers:    []Straggler{{Node: 1, From: 0, To: 20000, Factor: 2}},
				DetectLatency: 5000, Drop: true, Blind: true,
			},
		},
		// The explicit defaults are accepted and normalise away.
		{"crash:0:100,redispatch,aware", FaultConfig{Crashes: []Crash{{Node: 0, At: 100}}}},
	}
	for _, c := range cases {
		got, err := ParseFaults(c.spec)
		if err != nil {
			t.Errorf("spec %q: %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("spec %q parsed to %+v, want %+v", c.spec, got, c.want)
		}
		// The canonical rendering round-trips.
		rt, err := ParseFaults(got.String())
		if err != nil || !reflect.DeepEqual(rt, got) {
			t.Errorf("spec %q rendering %q did not round-trip: %+v (%v)", c.spec, got, rt, err)
		}
	}
	for _, spec := range []string{
		"bogus", "crash", "crash:0", "crash:x:5", "crash:0:-5", "crash:0:100:100",
		"crash:0:100:50", "slow:0:0:100", "slow:0:100:50:2", "slow:0:0:100:1",
		"slow:0:0:100:-3", "gen:1:100:100", "gen:x:100:100:2", "gen:1:NaN:100:2",
		"gen:1:100:Inf:2", "gen:1:-100:100:2", "gen:1:100:100:0", "gen:1:1e400:100:2",
		"gen:1:100:100:2,gen:2:100:100:2", "detect:-1", "detect:x", "detect:5000",
		"drop", "blind", // detector/recovery params without a schedule
	} {
		if _, err := ParseFaults(spec); err == nil {
			t.Errorf("spec %q parsed, want error", spec)
		}
	}
}

// TestFaultValidationAndPlan: configuration rules, fleet-size checks,
// per-node crash overlap rejection, and the generator's determinism.
func TestFaultValidationAndPlan(t *testing.T) {
	bad := []FaultConfig{
		{Crashes: []Crash{{Node: -1, At: 100}}},
		{Crashes: []Crash{{Node: 0, At: -1}}},
		{Crashes: []Crash{{Node: 0, At: 100, Rejoin: 100}}},
		{Stragglers: []Straggler{{Node: 0, From: 0, To: 0, Factor: 2}}},
		{Stragglers: []Straggler{{Node: 0, From: 0, To: 100, Factor: 1}}},
		{Gen: &FaultGen{Seed: 1, MTBF: 0, MTTR: 100, Count: 1}},
		{Gen: &FaultGen{Seed: 1, MTBF: 100, MTTR: math.Inf(1), Count: 1}},
		{Gen: &FaultGen{Seed: 1, MTBF: math.NaN(), MTTR: 100, Count: 1}},
		{Gen: &FaultGen{Seed: 1, MTBF: 100, MTTR: 100, Count: 0}},
		{Crashes: []Crash{{Node: 0, At: 100}}, DetectLatency: -1},
		{DetectLatency: 5000}, // detector without a schedule
		{Drop: true},
		{Blind: true},
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("config %+v accepted, want error", f)
		}
	}
	if err := (FaultConfig{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}

	// Node indices are checked against the concrete fleet.
	if _, err := (FaultConfig{Crashes: []Crash{{Node: 3, At: 100}}}).plan(2); err == nil {
		t.Error("crash on node 3 of a 2-node fleet accepted")
	}
	if _, err := (FaultConfig{Stragglers: []Straggler{{Node: 2, From: 0, To: 100, Factor: 2}}}).plan(2); err == nil {
		t.Error("straggler on node 2 of a 2-node fleet accepted")
	}
	// A node cannot crash while already down.
	overlap := FaultConfig{Crashes: []Crash{{Node: 0, At: 100, Rejoin: 500}, {Node: 0, At: 300, Rejoin: 800}}}
	if _, err := overlap.plan(2); err == nil {
		t.Error("overlapping crashes on one node accepted")
	}
	permanent := FaultConfig{Crashes: []Crash{{Node: 0, At: 100}, {Node: 0, At: 1 << 30}}}
	if _, err := permanent.plan(2); err == nil {
		t.Error("crash after a permanent failure accepted")
	}
	// Back-to-back is legal: rejoin and the next crash on the same cycle.
	backToBack := FaultConfig{Crashes: []Crash{{Node: 0, At: 100, Rejoin: 500}, {Node: 0, At: 500, Rejoin: 900}}}
	if _, err := backToBack.plan(2); err != nil {
		t.Errorf("rejoin-then-immediate-crash rejected: %v", err)
	}

	// The generator is a pure function of (seed, params, fleet size).
	g := FaultConfig{Gen: &FaultGen{Seed: 42, MTBF: 50000, MTTR: 20000, Count: 8}}
	p1, err := g.plan(4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g.plan(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Error("generated fault plans differ between identical calls")
	}
	if len(p1) == 0 {
		t.Error("generator produced an empty plan")
	}
	other, err := FaultConfig{Gen: &FaultGen{Seed: 43, MTBF: 50000, MTTR: 20000, Count: 8}}.plan(4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1, other) {
		t.Error("different seeds produced identical fault plans")
	}
}

// faultFleetScenario is the committed fault-tolerance workload: a
// 20-request chunked-prefill population over five sessions against a
// four-node fleet, dense enough that a mid-run crash always has
// victims in flight.
func faultFleetScenario(t *testing.T) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "faults/fleet", Seed: 11, NumRequests: 20,
			Models:       []workload.ModelConfig{workload.Llama3_70B},
			MinPromptLen: 16, MaxPromptLen: 48,
			MinDecode: 2, MaxDecode: 5,
			MeanInterArrival: 10000, MaxBatch: 2,
			Sched: serving.SchedulerConfig{Policy: serving.SchedChunked, ChunkTokens: 16, KVCapTokens: 200},
		},
		NumSessions: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// faultCrash is the committed mid-run crash of the recovery tests:
// node 1 dies at cycle 80000 with several requests in flight and
// rejoins cold 80000 cycles later; the detector is blind for 5000
// cycles.
func faultCrash() FaultConfig {
	return FaultConfig{
		Crashes:       []Crash{{Node: 1, At: 80000, Rejoin: 160000}},
		DetectLatency: 5000,
	}
}

// TestRedispatchBeatsDropOnGoodput is the recovery-policy acceptance
// criterion: under the committed crash, redispatching in-flight
// requests strictly beats drop-on-failure on fleet SLO goodput. The
// population carries a long-tail anchor request on an uncrashed node,
// so both policies finish at the same makespan and the comparison
// isolates what recovery actually saves: the victims' tokens.
func TestRedispatchBeatsDropOnGoodput(t *testing.T) {
	scn := faultFleetScenario(t)
	scn.Requests[0].DecodeTokens = 70 // the anchor: pins the fleet makespan
	cfg := testConfig()
	slo := serving.SLO{TTFTCycles: 600000}
	run := func(drop bool) *Metrics {
		ft := faultCrash()
		ft.Drop = drop
		m, err := Run(cfg, scn, 4, Policy{Kind: LeastOutstanding}, Options{Faults: ft})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	re := run(false)
	if re.Redispatched == 0 {
		t.Fatal("committed crash recovered no in-flight requests — scenario not exercising redispatch")
	}
	if re.Dropped != 0 || re.Tokens != scn.TotalTokens() {
		t.Fatalf("redispatch lost work: dropped=%d tokens=%d/%d", re.Dropped, re.Tokens, scn.TotalTokens())
	}
	dr := run(true)
	if dr.Dropped == 0 || dr.Redispatched != 0 {
		t.Fatalf("drop-on-failure run: dropped=%d redispatched=%d, want >0/0", dr.Dropped, dr.Redispatched)
	}
	if dr.Tokens >= scn.TotalTokens() {
		t.Fatalf("drop-on-failure still served everything: %d tokens", dr.Tokens)
	}
	gRe, gDr := re.Goodput(slo), dr.Goodput(slo)
	if gDr.Unfinished != int(dr.Dropped) {
		t.Errorf("drop goodput unfinished %d != dropped %d", gDr.Unfinished, dr.Dropped)
	}
	if !(gRe.GoodputPerKCycle > gDr.GoodputPerKCycle) {
		t.Errorf("redispatch goodput %v not strictly above drop-on-failure %v",
			gRe.GoodputPerKCycle, gDr.GoodputPerKCycle)
	}
}

// TestHealthAwareBeatsBlindOnP95 is the routing acceptance criterion:
// with the detector's exclusions applied, the fleet's p95 end-to-end
// latency is strictly below blind routing's on the committed crash.
// Blind routing keeps dispatching to the dead node (its outstanding
// load reads zero — maximally attractive to least-outstanding) and
// every such dispatch burns a backoff wait; the retry budget is sized
// so no request drops — blind pays in latency, not in tombstones that
// would hide from the percentiles.
func TestHealthAwareBeatsBlindOnP95(t *testing.T) {
	scn := faultFleetScenario(t)
	cfg := testConfig()
	// Never-saturating overload config: supplies the enlarged retry
	// budget the dead-node losses draw on, sheds nothing.
	ov := OverloadConfig{SaturationTokens: 1 << 40, MaxRetries: 10, BackoffBase: 10000}
	run := func(blind bool) *Metrics {
		ft := FaultConfig{
			Crashes:       []Crash{{Node: 0, At: 80000, Rejoin: 160000}},
			DetectLatency: 5000,
			Blind:         blind,
		}
		m, err := Run(cfg, scn, 4, Policy{Kind: LeastOutstanding}, Options{Faults: ft, Overload: ov})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	aware, blind := run(false), run(true)
	if blind.Retries == 0 {
		t.Fatal("blind routing lost no dispatches to the dead node — scenario not exercising the blind window")
	}
	if aware.Dropped != 0 || blind.Dropped != 0 {
		t.Fatalf("dropped requests would bias the percentiles: aware=%d blind=%d", aware.Dropped, blind.Dropped)
	}
	if aware.Redispatched != blind.Redispatched {
		t.Errorf("recovery diverged: aware redispatched %d, blind %d", aware.Redispatched, blind.Redispatched)
	}
	// Health-aware routing loses dispatches only inside the 5000-cycle
	// blind window; blind routing loses them for the whole downtime.
	if aware.Retries >= blind.Retries {
		t.Errorf("aware run retried %d >= blind %d — exclusion not routing around the dead node", aware.Retries, blind.Retries)
	}
	if !(aware.E2ELatency.P95 < blind.E2ELatency.P95) {
		t.Errorf("health-aware p95 %v not strictly below blind %v", aware.E2ELatency.P95, blind.E2ELatency.P95)
	}
}

// TestFaultsNeverTriggeredBitIdentity: a fault schedule that never
// fires inside the run (a crash far beyond the makespan) leaves every
// simulated metric bit-identical to the fault-free fleet — the fault
// machinery itself never perturbs a run. Only the fault bookkeeping
// (the config echo and the scheduled-but-idle crash count) may differ.
func TestFaultsNeverTriggeredBitIdentity(t *testing.T) {
	scn := testScenario(t)
	cfg := testConfig()
	off, err := Run(cfg, scn, 3, Policy{Kind: LeastOutstanding}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(cfg, scn, 3, Policy{Kind: LeastOutstanding},
		Options{Faults: FaultConfig{Crashes: []Crash{{Node: 0, At: 1 << 40}}, DetectLatency: 5000}})
	if err != nil {
		t.Fatal(err)
	}
	if on.Redispatched != 0 || on.LostTokens != 0 || on.Dropped != 0 || on.DowntimeCycles != 0 {
		t.Fatalf("beyond-makespan crash still acted: %+v", on)
	}
	off.StripStepCache()
	on.StripStepCache()
	// The recorded configuration and the (idle) crash bookkeeping
	// legitimately differ; everything simulated must not.
	on.Faults = off.Faults
	on.Failures = 0
	on.PerNodeFaults = nil
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("never-triggered fault schedule changed the run:\n%v\n%v", off, on)
	}
}

// TestFaultRunWidthDeterminism: a run exercising the whole fault
// machinery — crash, straggler window, generated crashes, detection,
// redispatch — is bit-identical across worker-pool widths.
func TestFaultRunWidthDeterminism(t *testing.T) {
	scn := faultFleetScenario(t)
	cfg := testConfig()
	ft := FaultConfig{
		Crashes:       []Crash{{Node: 1, At: 80000, Rejoin: 160000}},
		Stragglers:    []Straggler{{Node: 2, From: 40000, To: 120000, Factor: 3}},
		Gen:           &FaultGen{Seed: 5, MTBF: 300000, MTTR: 50000, Count: 2},
		DetectLatency: 5000,
	}
	run := func(par int) *Metrics {
		m, err := Run(cfg, scn, 4, Policy{Kind: LeastOutstanding}, Options{Faults: ft, Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		m.StripStepCache()
		return m
	}
	serial, wide := run(1), run(runtime.GOMAXPROCS(0))
	if serial.Failures == 0 || serial.Redispatched == 0 {
		t.Fatalf("fault scenario idle: %d failures, %d redispatched", serial.Failures, serial.Redispatched)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Error("faulty run not bit-identical across worker widths")
	}
}

// TestCrashMidPrefillRecovers: a crash landing while victims are still
// prefilling (chunked scheduler, crash in the thick of the arrival
// burst) recovers cleanly — every request finishes its exact decode
// budget, decode tokens are never generated twice, and the recompute
// debt is visible as extra fleet prefill work.
func TestCrashMidPrefillRecovers(t *testing.T) {
	scn := faultFleetScenario(t)
	cfg := testConfig()
	m, err := Run(cfg, scn, 2, Policy{Kind: RoundRobin}, Options{
		Faults: FaultConfig{Crashes: []Crash{{Node: 0, At: 40000, Rejoin: 120000}}, DetectLatency: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Redispatched == 0 {
		t.Fatal("crash recovered nothing — not exercising redispatch")
	}
	if m.Dropped != 0 {
		t.Fatalf("redispatch dropped %d requests", m.Dropped)
	}
	// Decode work is conserved: the fleet generates every token exactly
	// once, whichever nodes a request bounced across.
	if m.Tokens != scn.TotalTokens() {
		t.Fatalf("fleet decoded %d tokens, want %d exactly once each", m.Tokens, scn.TotalTokens())
	}
	var promptTotal, prefillDone int64
	for _, r := range scn.Requests {
		promptTotal += int64(r.PromptLen)
	}
	for _, nm := range m.PerNode {
		prefillDone += nm.PrefillTokens
	}
	if prefillDone <= promptTotal {
		t.Errorf("fleet prefilled %d tokens over %d of prompts — no recompute debt, crash missed the prefill phase",
			prefillDone, promptTotal)
	}
	for _, rs := range m.PerRequest {
		if rs.Tokens != scn.Requests[rs.ID].DecodeTokens || rs.FinishCycle == 0 {
			t.Errorf("request %d tokens=%d finish=%d, want %d/finished",
				rs.ID, rs.Tokens, rs.FinishCycle, scn.Requests[rs.ID].DecodeTokens)
		}
		if rs.TTFT != rs.FirstTokenCycle-rs.ArrivalCycle {
			t.Errorf("request %d TTFT %d not measured from original arrival", rs.ID, rs.TTFT)
		}
	}
}

// TestDeadNodeRetriesExhausted: requests arriving against a
// permanently-dead sole node burn their whole retry budget and drop —
// tombstoned with Node -1 and excluded from the latency percentiles
// (which must summarise exactly the served population).
func TestDeadNodeRetriesExhausted(t *testing.T) {
	scn := faultFleetScenario(t)
	cfg := testConfig()
	m, err := Run(cfg, scn, 1, Policy{Kind: LeastOutstanding}, Options{
		Faults: FaultConfig{Crashes: []Crash{{Node: 0, At: 60000}}}, // never rejoins
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped == 0 {
		t.Fatal("permanent failure dropped nothing")
	}
	var e2e, qd, ttft []float64
	for _, rs := range m.PerRequest {
		if rs.Dropped {
			if rs.Node != -1 || rs.Tokens != 0 || rs.FinishCycle != 0 {
				t.Errorf("dropped request %d has served-looking stats: %+v", rs.ID, rs)
			}
			if rs.Retries != DefaultMaxRetries {
				t.Errorf("dropped request %d retried %d times, want the full default budget %d",
					rs.ID, rs.Retries, DefaultMaxRetries)
			}
			continue
		}
		e2e = append(e2e, float64(rs.E2ELatency))
		qd = append(qd, float64(rs.QueueDelay))
		ttft = append(ttft, float64(rs.TTFT))
	}
	if got, want := serving.Summarise(e2e), m.E2ELatency; got != want {
		t.Errorf("E2E percentiles include tombstones: %+v != %+v", want, got)
	}
	if got, want := serving.Summarise(qd), m.QueueDelay; got != want {
		t.Errorf("queue-delay percentiles include tombstones: %+v != %+v", want, got)
	}
	if got, want := serving.Summarise(ttft), m.TTFT; got != want {
		t.Errorf("TTFT percentiles include tombstones: %+v != %+v", want, got)
	}
	// The node is charged for its whole post-crash existence.
	if m.DowntimeCycles != m.Makespan-60000 {
		t.Errorf("downtime %d, want makespan %d - crash cycle 60000", m.DowntimeCycles, m.Makespan)
	}
}

// TestRejoinThenImmediateCrash: a node may crash again on the very
// cycle it rejoins (rejoin orders before crash within a cycle). Both
// incidents count, downtime is the exact union of the two windows, and
// the fleet still serves everything via redispatch.
func TestRejoinThenImmediateCrash(t *testing.T) {
	scn := faultFleetScenario(t)
	cfg := testConfig()
	m, err := Run(cfg, scn, 3, Policy{Kind: LeastOutstanding}, Options{
		Faults: FaultConfig{
			Crashes:       []Crash{{Node: 0, At: 50000, Rejoin: 120000}, {Node: 0, At: 120000, Rejoin: 200000}},
			DetectLatency: 2000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	nf := m.PerNodeFaults[0]
	if nf.Failures != 2 {
		t.Errorf("node 0 failures %d, want 2 (rejoin-then-immediate-crash)", nf.Failures)
	}
	if want := int64((120000 - 50000) + (200000 - 120000)); nf.DowntimeCycles != want {
		t.Errorf("node 0 downtime %d, want exactly %d (the union of both windows)", nf.DowntimeCycles, want)
	}
	if m.PerNodeFaults[1].Failures != 0 || m.PerNodeFaults[2].Failures != 0 {
		t.Errorf("healthy nodes report failures: %+v", m.PerNodeFaults)
	}
	if m.Failures != 2 || m.DowntimeCycles != nf.DowntimeCycles {
		t.Errorf("fleet counters %d/%d disagree with the per-node sum %d/%d",
			m.Failures, m.DowntimeCycles, nf.Failures, nf.DowntimeCycles)
	}
	if m.Dropped != 0 || m.Tokens != scn.TotalTokens() {
		t.Errorf("double crash lost work: dropped=%d tokens=%d/%d", m.Dropped, m.Tokens, scn.TotalTokens())
	}
}

// TestStragglerCoversWholeLifetime: a straggler window spanning a
// closed batch's entire service scales the makespan by exactly the
// slowdown factor — every step the node executes costs factor× its
// nominal cycles, with no unscaled edges (arrivals at cycle 0, no idle
// gaps, window open well past completion).
func TestStragglerCoversWholeLifetime(t *testing.T) {
	reqs := make([]Request, 4)
	for i := range reqs {
		reqs[i] = Request{
			Request: serving.Request{ID: i, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 3},
			Session: i,
		}
	}
	scn := Scenario{Name: "straggler/closed", Requests: reqs, MaxBatch: 2}
	cfg := testConfig()
	base, err := Run(cfg, scn, 1, Policy{Kind: RoundRobin}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const factor = 3
	slow, err := Run(cfg, scn, 1, Policy{Kind: RoundRobin}, Options{
		Faults: FaultConfig{Stragglers: []Straggler{{Node: 0, From: 0, To: 1 << 40, Factor: factor}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan == 0 || slow.Makespan != factor*base.Makespan {
		t.Errorf("straggled makespan %d, want exactly %d × %d", slow.Makespan, factor, base.Makespan)
	}
	if slow.Tokens != base.Tokens {
		t.Errorf("straggler changed the served tokens: %d vs %d", slow.Tokens, base.Tokens)
	}
	// Latencies scale with the steps they are made of.
	if slow.E2ELatency.Max != factor*base.E2ELatency.Max || slow.TTFT.Max != factor*base.TTFT.Max {
		t.Errorf("latencies not scaled by the factor: e2e max %v vs %v, ttft max %v vs %v",
			slow.E2ELatency.Max, base.E2ELatency.Max, slow.TTFT.Max, base.TTFT.Max)
	}
}

// TestRouterHealthExclusion unit-tests the detector's exclusion mask
// against every policy: excluded nodes never receive a dispatch, each
// policy's selection logic is preserved over the live subset, and an
// all-excluded mask is ignored (equivalent to nil).
func TestRouterHealthExclusion(t *testing.T) {
	req := func(id, session int) Request {
		return Request{
			Request: serving.Request{ID: id, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 2},
			Session: session,
		}
	}
	t.Run("round-robin", func(t *testing.T) {
		rt := newRouter(Policy{Kind: RoundRobin}, 3)
		excl := []bool{false, true, false}
		want := []int{0, 2, 0, 2, 0, 2} // node 1 skipped, cursor still advances
		zeros := make([]int64, 3)
		for k, w := range want {
			if got := rt.pick(req(k, 0), zeros, zeros, nil, excl); got != w {
				t.Fatalf("dispatch %d went to node %d, want %d", k, got, w)
			}
		}
	})
	t.Run("least-outstanding", func(t *testing.T) {
		rt := newRouter(Policy{Kind: LeastOutstanding}, 4)
		// The global minimum (node 1) is dead: the live minimum wins.
		if got := rt.pick(req(0, 0), []int64{5, 1, 9, 3}, make([]int64, 4), nil, []bool{false, true, false, false}); got != 3 {
			t.Fatalf("picked node %d, want the live minimum 3", got)
		}
	})
	t.Run("p2c", func(t *testing.T) {
		rt := newRouter(Policy{Kind: PowerOfTwo, Seed: 9}, 4)
		load := []int64{4, 1, 3, 2}
		zeros := make([]int64, 4)
		excl := []bool{true, false, true, false}
		for k := 0; k < 64; k++ {
			if got := rt.pick(req(k, 0), load, zeros, nil, excl); got != 1 && got != 3 {
				t.Fatalf("dispatch %d sampled dead node %d", k, got)
			}
		}
	})
	t.Run("ttft-pressure", func(t *testing.T) {
		rt := newRouter(Policy{Kind: LeastTTFTPressure}, 4)
		load := []int64{5, 1, 3, 6}
		backlog := []int64{0, 0, 0, 0}
		// The least-pressure node 1 is dead: next-lowest live pressure wins.
		if got := rt.pick(req(0, 0), load, backlog, nil, []bool{false, true, false, false}); got != 2 {
			t.Fatalf("picked node %d, want the live least-pressure node 2", got)
		}
	})
	t.Run("affinity", func(t *testing.T) {
		rt := newRouter(Policy{Kind: SessionAffinity}, 4)
		zeros := make([]int64, 4)
		const session = 7
		home := sessionNode(session, 4)
		excl := make([]bool, 4)
		excl[home] = true
		want := (home + 1) % 4
		for k := 0; k < 8; k++ {
			if got := rt.pick(req(k, session), zeros, zeros, nil, excl); got != want {
				t.Fatalf("dispatch %d went to node %d, want the stable fallback %d", k, got, want)
			}
		}
		// Home healthy again: the session snaps back.
		if got := rt.pick(req(8, session), zeros, zeros, nil, make([]bool, 4)); got != home {
			t.Fatalf("rejoined home ignored: got node %d, want %d", got, home)
		}
	})
	t.Run("prefix-affinity", func(t *testing.T) {
		rt := newRouter(Policy{Kind: PrefixAffinity}, 4)
		// The best-cached node 1 is dead: the next-best live cache wins.
		if got := rt.pick(req(0, 6), nil, nil, []int64{0, 120, 80, 0}, []bool{false, true, false, false}); got != 2 {
			t.Fatalf("picked node %d, want the live cache holder 2", got)
		}
		// Nothing cached anywhere and the home node dead: affinity fallback.
		home := sessionNode(6, 4)
		excl := make([]bool, 4)
		excl[home] = true
		if got := rt.pick(req(1, 6), nil, nil, make([]int64, 4), excl); got != (home+1)%4 {
			t.Fatalf("picked node %d, want the home fallback %d", got, (home+1)%4)
		}
	})
	t.Run("all-excluded-ignored", func(t *testing.T) {
		all := []bool{true, true, true, true}
		for _, pol := range Policies() {
			a := newRouter(Policy{Kind: pol.Kind, Seed: 9}, 4)
			b := newRouter(Policy{Kind: pol.Kind, Seed: 9}, 4)
			load := []int64{4, 1, 3, 2}
			zeros := make([]int64, 4)
			cached := []int64{0, 50, 0, 0}
			for k := 0; k < 16; k++ {
				x := a.pick(req(k, k%3), load, zeros, cached, all)
				y := b.pick(req(k, k%3), load, zeros, cached, nil)
				if x != y {
					t.Fatalf("%s: all-excluded mask changed dispatch %d: %d vs %d", pol, k, x, y)
				}
			}
		}
	})
}
