// Router-level overload control: admission shedding, node-to-node
// forwarding and deterministic retry/backoff. A per-node saturation
// signal — outstanding decode tokens plus prefill backlog against a
// configured capacity — lets the router refuse to bury a saturated
// node: the request is forwarded to the least-loaded peer instead, or
// shed and re-enqueued after an exponential backoff, or (once its
// retry budget is spent) dropped. Everything is deterministic: backoff
// delays are a fixed doubling schedule with no jitter, and retries
// re-enter the global arrival order through the same (cycle, ID)
// event ordering as fresh arrivals.

package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// Default retry/backoff parameters filled in by ParseOverload when the
// spec omits them.
const (
	// DefaultMaxRetries is the stock retry budget of a shed request.
	DefaultMaxRetries = 3
	// DefaultBackoffBase is the stock first-retry delay in cycles;
	// retry k waits DefaultBackoffBase << (k-1).
	DefaultBackoffBase = 10000
)

// OverloadConfig is the router's overload-control configuration. The
// zero value disables it entirely — no saturation checks, no
// shedding, bit-identical to the pre-overload router.
type OverloadConfig struct {
	// SaturationTokens is the per-node saturation threshold: a node
	// whose outstanding decode tokens plus prefill backlog is at or
	// above it refuses new work. 0 disables overload control.
	SaturationTokens int64
	// MaxRetries is how many times a shed request may re-enter the
	// arrival queue before the next rejection drops it. 0 means a
	// single rejection drops the request.
	MaxRetries int
	// BackoffBase is the first retry's backoff delay in cycles; the
	// k-th retry waits BackoffBase << (k-1) — deterministic exponential
	// backoff, no jitter.
	BackoffBase int64
	// Forward lets the router first try handing a rejected request to
	// the least-loaded peer (lowest outstanding+backlog, ties to the
	// lowest index); the request is shed only when every node is
	// saturated.
	Forward bool
}

// Enabled reports whether overload control is active.
func (o OverloadConfig) Enabled() bool { return o.SaturationTokens > 0 }

// Validate checks the overload configuration.
func (o OverloadConfig) Validate() error {
	if o.SaturationTokens < 0 {
		return fmt.Errorf("cluster: SaturationTokens must be non-negative, got %d", o.SaturationTokens)
	}
	if o.MaxRetries < 0 {
		return fmt.Errorf("cluster: MaxRetries must be non-negative, got %d", o.MaxRetries)
	}
	if o.BackoffBase < 0 {
		return fmt.Errorf("cluster: BackoffBase must be non-negative, got %d", o.BackoffBase)
	}
	if !o.Enabled() && (o.MaxRetries != 0 || o.BackoffBase != 0 || o.Forward) {
		return fmt.Errorf("cluster: overload control disabled (SaturationTokens 0) but retry/backoff/forward parameters set")
	}
	return nil
}

// backoff returns the delay before the retry following the given
// number of prior rejections (1-based: attempts=1 is the first retry).
func (o OverloadConfig) backoff(attempts int) int64 {
	d := o.BackoffBase
	for i := 1; i < attempts; i++ {
		d <<= 1
	}
	return d
}

// String renders the canonical spec ParseOverload accepts.
func (o OverloadConfig) String() string {
	if !o.Enabled() {
		return "off"
	}
	s := fmt.Sprintf("%d:%d:%d", o.SaturationTokens, o.MaxRetries, o.BackoffBase)
	if o.Forward {
		s += ":forward"
	}
	return s
}

// ParseOverload reads a -shed flag value:
//
//	off (or "")
//	SAT                         e.g. 2000
//	SAT:RETRIES                 e.g. 2000:3
//	SAT:RETRIES:BACKOFF         e.g. 2000:3:20000
//	SAT:RETRIES:BACKOFF:forward e.g. 2000:3:20000:forward
//
// SAT is the per-node saturation threshold in tokens, RETRIES the
// retry budget (default 3), BACKOFF the first retry's delay in cycles
// (default 10000, doubling per retry); the trailing "forward" enables
// least-loaded-peer forwarding before shedding.
func ParseOverload(s string) (OverloadConfig, error) {
	if s == "" || s == "off" {
		return OverloadConfig{}, nil
	}
	bad := func(reason string) (OverloadConfig, error) {
		return OverloadConfig{}, fmt.Errorf("cluster: bad shed spec %q: %s (want off or SAT[:RETRIES[:BACKOFF[:forward]]])", s, reason)
	}
	parts := strings.Split(s, ":")
	if len(parts) > 4 {
		return bad("too many fields")
	}
	cfg := OverloadConfig{MaxRetries: DefaultMaxRetries, BackoffBase: DefaultBackoffBase}
	sat, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return bad("saturation threshold is not an integer")
	}
	if sat <= 0 {
		return bad("saturation threshold must be positive (use \"off\" to disable)")
	}
	cfg.SaturationTokens = sat
	if len(parts) > 1 {
		r, err := strconv.Atoi(parts[1])
		if err != nil {
			return bad("retry cap is not an integer")
		}
		cfg.MaxRetries = r
	}
	if len(parts) > 2 {
		b, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return bad("backoff base is not an integer")
		}
		cfg.BackoffBase = b
	}
	if len(parts) > 3 {
		if parts[3] != "forward" {
			return bad("trailing field must be \"forward\"")
		}
		cfg.Forward = true
	}
	if err := cfg.Validate(); err != nil {
		return OverloadConfig{}, err
	}
	return cfg, nil
}

// event is one dispatch-loop occurrence: a fresh arrival (attempts 0),
// a backoff re-entry of a shed or crash-lost request, or the
// redispatch of a request recovered from a crashed node.
type event struct {
	at       int64
	id       int
	req      Request
	attempts int
	// resume is the decode tokens a crash-recovered request had already
	// generated when its node died: the dispatch submits via
	// SubmitResume so the new node re-prefills prompt+resume and decode
	// continues — tokens are never generated twice. 0 for every
	// fault-free event.
	resume int
}

// eventQueue is a binary min-heap of events ordered by (at, id) — the
// same order the pre-overload router processed its sorted arrival
// slice in, so a run that never pushes a retry pops events in exactly
// the old iteration order. A slice sorted by (at, id) is already a
// valid heap, so the initial arrival population needs no sift pass.
type eventQueue []event

func (q eventQueue) before(a, b int) bool {
	if q[a].at != q[b].at {
		return q[a].at < q[b].at
	}
	return q[a].id < q[b].id
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.before(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*q = h
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.before(l, least) {
			least = l
		}
		if r < n && h.before(r, least) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}
