// Cluster half of the ISSUE 4 step-cache acceptance: the fleet's
// simulated metrics are bit-identical with the token-step cache on vs
// off for every router policy, and a memo shared across the fleet's
// concurrently advancing nodes never changes a number at any
// worker-pool width.

package cluster

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/serving"
)

// TestClusterStepCacheEquivalence: for every router policy, the full
// fast path (explicit shared memo), the arena+reset path and the
// naive reference produce bit-identical fleet metrics.
func TestClusterStepCacheEquivalence(t *testing.T) {
	scn := testScenario(t)
	cfg := testConfig()
	for _, pol := range Policies() {
		naive, err := Run(cfg, scn, 4, pol, Options{StepCache: serving.StepCacheOff})
		if err != nil {
			t.Fatalf("%s naive: %v", pol, err)
		}
		naive.StripStepCache()

		nomemo, err := Run(cfg, scn, 4, pol, Options{StepCache: serving.StepCacheNoMemo})
		if err != nil {
			t.Fatalf("%s nomemo: %v", pol, err)
		}
		nomemo.StripStepCache()
		if !reflect.DeepEqual(nomemo, naive) {
			t.Fatalf("%s: arena+reset fleet diverges from naive:\n%v\n%v", pol, nomemo, naive)
		}

		memo := serving.NewStepMemo()
		fast, err := Run(cfg, scn, 4, pol, Options{Memo: memo})
		if err != nil {
			t.Fatalf("%s fast: %v", pol, err)
		}
		if fast.StepCache.MemoHits+fast.StepCache.MemoMisses == 0 {
			t.Fatalf("%s: fast path never consulted the memo", pol)
		}
		fast.StripStepCache()
		if !reflect.DeepEqual(fast, naive) {
			t.Fatalf("%s: memo fleet diverges from naive:\n%v\n%v", pol, fast, naive)
		}
	}
}

// TestClusterSharedMemoWidths: one memo shared by every node of the
// fleet yields bit-identical metrics at worker-pool widths 1 and
// GOMAXPROCS — concurrent nodes racing to publish overlapping step
// signatures never change a simulated number.
func TestClusterSharedMemoWidths(t *testing.T) {
	scn := testScenario(t)
	cfg := testConfig()
	wide := runtime.GOMAXPROCS(0)
	for _, pol := range Policies() {
		memoSerial := serving.NewStepMemo()
		serial, err := Run(cfg, scn, 4, pol, Options{Parallel: 1, Memo: memoSerial})
		if err != nil {
			t.Fatalf("%s serial: %v", pol, err)
		}
		memoWide := serving.NewStepMemo()
		parallel, err := Run(cfg, scn, 4, pol, Options{Parallel: wide, Memo: memoWide})
		if err != nil {
			t.Fatalf("%s parallel: %v", pol, err)
		}
		serial.StripStepCache()
		parallel.StripStepCache()
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("%s: shared-memo fleet differs between widths 1 and %d:\n%v\n%v",
				pol, wide, serial, parallel)
		}
		// Reusing the warm serial memo at full width agrees too — the
		// cross-run reuse the experiment grids rely on.
		rerun, err := Run(cfg, scn, 4, pol, Options{Parallel: wide, Memo: memoSerial})
		if err != nil {
			t.Fatalf("%s rerun: %v", pol, err)
		}
		rerun.StripStepCache()
		if !reflect.DeepEqual(rerun, serial) {
			t.Fatalf("%s: warm-memo rerun diverges:\n%v\n%v", pol, rerun, serial)
		}
	}
}
