package cluster

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/hwprof"
	"repro/internal/serving"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// hwFaultCrash layers the committed mid-run crash of the acceptance
// scenario onto the 2-node overload fleet: node 1 dies at cycle 80000
// with requests in flight and rejoins cold, so the profiler sees the
// recompute-redispatch phase alongside shedding and preemption.
func hwFaultCrash() FaultConfig {
	return FaultConfig{
		Crashes:       []Crash{{Node: 1, At: 80000, Rejoin: 160000}},
		DetectLatency: 5000,
	}
}

// hwFleetRun executes the committed 2-node overload+fault acceptance
// scenario — the bursty telemetry population under shedding, with the
// crash layered on — with the profiler attached.
func hwFleetRun(t *testing.T, parallel int, mode serving.StepCacheMode,
	memo *serving.StepMemo, col *telemetry.Collector) *Metrics {
	t.Helper()
	m, err := Run(testConfig(), telemetryFleetScenario(t), 2, Policy{Kind: PrefixAffinity},
		Options{
			Parallel: parallel, StepCache: mode, Memo: memo,
			Overload: shedConfig(), Faults: hwFaultCrash(), Telemetry: col,
			HWProf: hwprof.Spec{Enabled: true, SampleEvery: 20000},
		})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestClusterHWProfAcceptance is the PR's headline reconciliation: on
// the committed 2-node overload+fault scenario, every node's summed
// per-step counter deltas are bit-identical to its whole-run
// aggregate counters — with the step memo on AND off — and the two
// profiles serialize byte-identically. The scenario must actually
// exercise all four phases: shedding-era decode, chunked prefill,
// preemption recompute, and crash-redispatch recompute.
func TestClusterHWProfAcceptance(t *testing.T) {
	mOn := hwFleetRun(t, 0, serving.StepCacheOn, serving.NewStepMemo(), nil)
	mOff := hwFleetRun(t, 0, serving.StepCacheNoMemo, nil, nil)

	var preempts int64
	for _, check := range []struct {
		name string
		m    *Metrics
	}{{"memo-on", mOn}, {"memo-off", mOff}} {
		m := check.m
		if m.HW == nil {
			t.Fatalf("%s: HWProf enabled but fleet profile is nil", check.name)
		}
		var fleetCycles int64
		for i, nm := range m.PerNode {
			if nm.HW == nil {
				t.Fatalf("%s: node %d has no profile", check.name, i)
			}
			if nm.HW.Total != nm.Counters {
				t.Fatalf("%s: node %d summed per-step deltas diverge from whole-run counters:\nprofile: %+v\nengine:  %+v",
					check.name, i, nm.HW.Total, nm.Counters)
			}
			fleetCycles += nm.HW.Total.Cycles
			preempts += nm.Preemptions
		}
		if m.HW.Total.Cycles != fleetCycles {
			t.Fatalf("%s: fleet profile cycles %d != per-node sum %d",
				check.name, m.HW.Total.Cycles, fleetCycles)
		}
		// All four phases are live in the committed scenario.
		var red, rec int64
		for _, nm := range m.PerNode {
			red += nm.HW.Phases[hwprof.PhaseRecomputeRedispatch].Tokens
			rec += nm.HW.Phases[hwprof.PhaseRecomputePreempt].Tokens
		}
		if m.Redispatched == 0 || red == 0 {
			t.Fatalf("%s: crash redispatched %d requests, profile attributes %d redispatch-recompute tokens — scenario not exercising recovery",
				check.name, m.Redispatched, red)
		}
		if preempts == 0 || rec == 0 {
			t.Fatalf("%s: %d preemptions but %d recompute-preempt tokens", check.name, preempts, rec)
		}
	}

	jOn, err := json.Marshal(mOn.HW)
	if err != nil {
		t.Fatal(err)
	}
	jOff, err := json.Marshal(mOff.HW)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jOn, jOff) {
		t.Fatalf("fleet profiles diverge between memo on and off:\non:  %s\noff: %s", jOn, jOff)
	}
}

// TestClusterHWProfWidthDeterminism: the extended time-series CSV —
// gauges joined with hw bucket samples and the fleet rollup rows — is
// byte-identical between -parallel 1 and full fan-out, and so is the
// serialized fleet profile.
func TestClusterHWProfWidthDeterminism(t *testing.T) {
	wide := runtime.GOMAXPROCS(0)
	render := func(parallel int) (*Metrics, []byte) {
		col := telemetry.NewCollector(20000)
		m := hwFleetRun(t, parallel, serving.StepCacheNoMemo, nil, col)
		var buf bytes.Buffer
		if err := telemetry.WriteTimeseriesCSV(&buf, col.Events()); err != nil {
			t.Fatal(err)
		}
		return m, buf.Bytes()
	}
	mSerial, csvSerial := render(1)
	mWide, csvWide := render(wide)
	if !bytes.Equal(csvSerial, csvWide) {
		t.Fatalf("time-series CSV differs between -parallel 1 and %d:\n%s\nvs\n%s",
			wide, csvSerial, csvWide)
	}
	jSerial, _ := json.Marshal(mSerial.HW)
	jWide, _ := json.Marshal(mWide.HW)
	if !bytes.Equal(jSerial, jWide) {
		t.Fatalf("fleet profile differs between -parallel 1 and %d", wide)
	}
	// The CSV actually carries the extended schema and the rollup.
	if !bytes.Contains(csvSerial, []byte("hw_class")) || !bytes.Contains(csvSerial, []byte(",fleet,")) {
		t.Fatalf("extended time series missing hw columns or fleet rows:\n%s", csvSerial)
	}
}

// TestClusterHWProfClassifierLabels is the diagnosis acceptance
// criterion: a saturated-decode cell classifies memory-bound — the
// LLaMCAT result the profiler exists to surface — and a sparse
// idle-tail cell classifies idle, at fleet and node granularity.
func TestClusterHWProfClassifierLabels(t *testing.T) {
	saturated, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "hwprof/saturated", Seed: 3, NumRequests: 16,
			Models:       []workload.ModelConfig{workload.Llama3_70B},
			MinPromptLen: 16, MaxPromptLen: 48,
			MinDecode: 20, MaxDecode: 40,
			MeanInterArrival: 0, MaxBatch: 8, // all arrive at once
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(testConfig(), saturated, 2, Policy{Kind: LeastOutstanding},
		Options{HWProf: hwprof.Spec{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if m.HW.Class != hwprof.ClassMemory {
		t.Fatalf("saturated-decode fleet classified %s, want memory-bound", m.HW.Class)
	}
	for i, nm := range m.PerNode {
		if nm.HW.Class != hwprof.ClassMemory {
			t.Errorf("saturated node %d classified %s, want memory-bound", i, nm.HW.Class)
		}
	}

	idle, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "hwprof/idle", Seed: 3, NumRequests: 6,
			Models:       []workload.ModelConfig{workload.Llama3_70B},
			MinPromptLen: 16, MaxPromptLen: 32,
			MinDecode: 2, MaxDecode: 3,
			MeanInterArrival: 300000, MaxBatch: 2, // long idle gaps
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mi, err := Run(testConfig(), idle, 2, Policy{Kind: LeastOutstanding},
		Options{HWProf: hwprof.Spec{Enabled: true, SampleEvery: 50000}})
	if err != nil {
		t.Fatal(err)
	}
	if mi.HW.Class != hwprof.ClassIdle {
		t.Fatalf("idle-tail fleet classified %s, want idle", mi.HW.Class)
	}
}
