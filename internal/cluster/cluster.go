// Package cluster is the cluster-scale serving simulator: a routed
// fleet of N simulated nodes, each a full internal/serving
// continuous-batching engine with its own cycle-level simulator
// instance, behind a request router with pluggable load-balancing
// policies (round-robin, least-outstanding-tokens, power-of-two
// choices, session/prefix affinity).
//
// The run processes arrivals in global time order. For each arriving
// request the router first advances every node's engine concurrently
// (on the bounded worker pool of internal/pool) up to the arrival
// cycle, then reads each node's outstanding-token load, picks a node
// per policy, and dispatches. After the last dispatch the nodes drain
// concurrently. Every node evolves only under its own goroutine and
// all routing decisions happen sequentially between fan-outs, so a
// cluster run is bit-reproducible at any worker-pool width.
//
// Reported metrics are fleet-level: aggregate tokens per kilocycle,
// end-to-end latency percentiles (arrival at the router to last
// token, so router-side queueing is included), per-node batch
// occupancy, and a load-imbalance coefficient (max/mean over nodes of
// outstanding tokens sampled at every routing decision).
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hwprof"
	"repro/internal/pool"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Options controls cluster execution.
type Options struct {
	// Parallel bounds how many node engines advance concurrently
	// during a fleet fan-out (0 = as many workers as nodes). Results
	// are bit-identical at any setting.
	Parallel int
	// StepCache selects every node engine's token-step path (default
	// on: signature memo + arena + resettable simulator; off = the
	// naive reference). Simulated metrics are bit-identical either way.
	StepCache serving.StepCacheMode
	// Memo overrides the step memo shared by the fleet's node engines
	// (nil = the process-wide serving.SharedStepMemo()). The fleet's
	// nodes execute heavily overlapping step signatures, so sharing is
	// where the cluster fast path earns its speedup.
	Memo *serving.StepMemo
	// Overload is the router's overload-control configuration:
	// saturation shedding, retry/backoff and forwarding (see
	// OverloadConfig). Unlike the fields above it changes simulated
	// results — the zero value disables it and is bit-identical to the
	// pre-overload router.
	Overload OverloadConfig
	// Faults is the run's fault-injection and recovery configuration:
	// a deterministic schedule of node crashes and straggler windows,
	// the failure detector's blind window, and the recovery policy for
	// in-flight requests lost with a crashed node (see FaultConfig).
	// Like Overload it changes simulated results — the zero value
	// disables it and is bit-identical to the immortal fleet.
	Faults FaultConfig
	// Telemetry attaches a lifecycle-event collector to the run: the
	// router records its decisions (route/forward/shed/retry/drop)
	// and every node engine records its lifecycle events and gauge
	// samples into the collector's per-node buffers. nil — the
	// default — disables recording; simulated metrics are
	// bit-identical either way, and the merged event stream is
	// byte-identical at any Parallel (each buffer is only appended to
	// by the goroutine driving its node) modulo the MemoHit
	// annotation, which — like the StepCache diagnostics — depends on
	// fan-out timing under the shared step memo (see
	// telemetry.StripMemoHits; StepCacheNoMemo removes the caveat).
	Telemetry *telemetry.Collector
	// HWProf configures per-node hardware-counter attribution (see
	// internal/hwprof): every node engine captures per-step counter
	// deltas and the fleet metrics carry the per-node profiles plus
	// the Fleet rollup with its bottleneck class. Like Telemetry the
	// zero value disables it and is bit-inert; with Telemetry also
	// attached, each node's bucket time-series flows into the merged
	// trace as KindHWSample events.
	HWProf hwprof.Spec
}

func (o Options) parallel(nodes int) int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return nodes
}

// RequestStats is one request's fleet-level outcome: the serving
// outcome plus where it ran and its end-to-end latency.
type RequestStats struct {
	serving.RequestStats
	// Node is the node that served the request, or -1 if it was
	// dropped by overload control before ever being dispatched.
	Node    int
	Session int
	// E2ELatency is FinishCycle - ArrivalCycle: router queueing,
	// backoff waits, node queueing and every decode step the request
	// lived through. ArrivalCycle, TTFT and QueueDelay always measure
	// from the ORIGINAL arrival at the router — shedding retries never
	// reset them.
	E2ELatency int64
	// Retries is how many times overload control shed the request
	// before it was dispatched (or dropped); Dropped marks a request
	// whose retry budget ran out — it generated no tokens.
	Retries int
	Dropped bool
}

// Metrics is the outcome of one cluster run.
type Metrics struct {
	Nodes    int
	Policy   string
	Requests int
	Tokens   int64
	// Makespan is the fleet completion time: the latest node-local
	// finish cycle on the shared global clock.
	Makespan int64
	// FleetTokensPerKCycle is the aggregate decode throughput of the
	// whole fleet: 1000 × Tokens / Makespan.
	FleetTokensPerKCycle float64
	// MeanBatchOccupancy is the fleet-wide mean streams per executed
	// step: ΣTokens / ΣSteps over nodes that ran at all.
	MeanBatchOccupancy float64
	// E2ELatency summarises per-request end-to-end latency (arrival at
	// the router to final token), in request-ID order.
	E2ELatency serving.Percentiles
	// TTFT summarises per-request time to first token: arrival at the
	// router to the completion of the step producing the request's
	// first decode token — router queueing, node queueing and any
	// on-node prefill included (requests carry their global arrival
	// cycle onto their node).
	TTFT serving.Percentiles
	// QueueDelay summarises per-request admission delay — arrival at
	// the router until a batch slot on the assigned node — i.e. router
	// plus node queueing, in request-ID order.
	QueueDelay serving.Percentiles
	// PrefixHits / PrefixMisses / PrefillTokensSaved aggregate the
	// per-node session prefix-cache outcomes (see
	// serving.Metrics.PrefixHits); PrefixHitRate is the fleet-wide
	// hits / (hits + misses), 0 when the cache is off or no request
	// carried a prefix. All zero with Sched.PrefixCacheTokens == 0.
	PrefixHits         int64
	PrefixMisses       int64
	PrefillTokensSaved int64
	PrefixHitRate      float64
	// LoadImbalance is max over nodes / mean over nodes of the
	// outstanding-token load accumulated across all routing-decision
	// samples: 1.0 is a perfectly balanced fleet, N means one node
	// carried everything.
	LoadImbalance float64
	// Overload is the overload-control configuration the run used;
	// the counters below stay zero when it is disabled. Shed counts
	// saturation rejections (each retry that bounces counts again),
	// Forwarded counts dispatches redirected to a less-loaded peer,
	// Retries counts scheduled backoff re-entries, and Dropped counts
	// requests whose retry budget ran out (they generated no tokens
	// and are excluded from the latency percentiles).
	Overload  OverloadConfig
	Shed      int64
	Forwarded int64
	Retries   int64
	Dropped   int64
	// Faults is the fault-injection configuration the run used; the
	// counters below aggregate the per-node fault outcomes and stay
	// zero when it is disabled. Failures counts node crash events,
	// Redispatched the unfinished requests recovered off crashed nodes
	// through the router, LostTokens the decode tokens whose KV died
	// with a node (recomputed as prefill on redispatch), and
	// DowntimeCycles the total node-cycles spent down. Requests lost
	// to a crash under the drop-on-failure policy — and dispatches
	// that exhausted their retry budget against dead nodes — count in
	// Dropped/Retries above alongside the overload-control outcomes.
	Faults         FaultConfig
	Failures       int64
	Redispatched   int64
	LostTokens     int64
	DowntimeCycles int64
	// StepCache aggregates the per-node token-step fast-path
	// diagnostics. Like serving.Metrics.StepCache it sits outside the
	// bit-identity guarantees: concurrently advancing nodes race to
	// publish shared signatures, so the hit/miss split depends on
	// fan-out timing (the simulated metrics never do).
	StepCache serving.StepCacheStats
	// HW is the fleet hardware-counter attribution rollup — summed
	// phase costs, pooled per-request percentiles and the fleet
	// bottleneck class over every node's classified buckets (the
	// per-node profiles sit on PerNode[i].HW). Nil unless
	// Options.HWProf.Enabled, and omitted from JSON then.
	HW *hwprof.FleetProfile `json:"HW,omitempty"`
	// PerNode holds every node's full serving metrics, node order.
	PerNode []*serving.Metrics
	// PerNodeFaults holds every node's fault outcome, node order; nil
	// when fault injection is disabled.
	PerNodeFaults []NodeFaultStats
	// PerRequest holds one entry per request, in request-ID order.
	PerRequest []RequestStats
}

// Run executes a cluster scenario on nodes identical copies of the
// configured system under the given router policy. The policy under
// evaluation at the cache level is carried by cfg.Throttle /
// cfg.Arbiter exactly as in serving runs. Deterministic for a fixed
// (cfg, scn, nodes, pol) at any Options.Parallel.
func Run(cfg sim.Config, scn Scenario, nodes int, pol Policy, opts Options) (*Metrics, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: node count must be positive, got %d", nodes)
	}
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	// One fleet-wide stride, sized over the whole population: any node
	// may receive any request, and a 1-node cluster must lay out
	// memory exactly like the single-node serving run.
	stride, err := serving.StreamStride(scn.ServingScenario())
	if err != nil {
		return nil, err
	}
	ropts := serving.RunOptions{StepCache: opts.StepCache, Memo: opts.Memo, Sched: scn.Sched, HWProf: opts.HWProf}
	engines := make([]*serving.Engine, nodes)
	// Prealloc a doubled per-node share of the population (capped at
	// the whole scenario): a balanced router lands near 1/N per node,
	// an imbalanced one (affinity) grows the one hot node dynamically —
	// O(requests) fleet-wide either way, not O(nodes × requests).
	reqShare := (len(scn.Requests) + nodes - 1) / nodes * 2
	if reqShare > len(scn.Requests) {
		reqShare = len(scn.Requests)
	}
	total := scn.TotalTokens()
	tokShare := (total + int64(nodes) - 1) / int64(nodes) * 2
	if tokShare > total {
		tokShare = total
	}
	// Node recorders are created here, sequentially, before any
	// fan-out: after this loop the collector's buffer set is fixed and
	// each buffer is touched only by its node's goroutine.
	var rrec telemetry.Recorder
	if opts.Telemetry != nil {
		rrec = opts.Telemetry.Router()
	}
	for i := range engines {
		eopts := ropts
		if opts.Telemetry != nil {
			eopts.Recorder = opts.Telemetry.Node(i)
			eopts.SampleEvery = opts.Telemetry.SampleEvery()
		}
		if engines[i], err = serving.NewEngineWith(cfg, scn.MaxBatch, scn.IncludeAV, stride, eopts); err != nil {
			return nil, err
		}
		engines[i].Prealloc(reqShare, tokShare)
	}

	ov := opts.Overload
	if err := ov.Validate(); err != nil {
		return nil, err
	}
	ft := opts.Faults
	if err := ft.Validate(); err != nil {
		return nil, err
	}
	var fplan []faultEvent
	if ft.Enabled() {
		if fplan, err = ft.plan(nodes); err != nil {
			return nil, err
		}
	}

	reqs := make([]Request, len(scn.Requests))
	copy(reqs, scn.Requests)
	sortRequests(reqs)

	var (
		rt                                 = newRouter(pol, nodes)
		par                                = opts.parallel(nodes)
		outstanding                        = make([]int64, nodes)
		backlog                            = make([]int64, nodes)   // un-prefilled prompt tokens per node
		loadAcc                            = make([]float64, nodes) // outstanding-token integrals
		sessionOf                          = make([]int, len(reqs)) // by request ID (a permutation of [0, n))
		origArrival                        = make([]int64, len(reqs))
		retriesOf                          = make([]int, len(reqs))
		droppedReq                         = make([]bool, len(reqs))
		horizon                            int64 // the fleet has already advanced to this cycle
		shed, forwarded, retried, droppedN int64
		needBacklog                        = pol.Kind == LeastTTFTPressure || ov.Enabled()
		cachedPrefix                       []int64 // per-node cached KV for the arriving session
	)
	if pol.Kind == PrefixAffinity {
		cachedPrefix = make([]int64, nodes)
	}
	// Fault-injection state. down is ground truth; excludedV is the
	// failure detector's view, trailing reality by DetectLatency (nil
	// when blind or when faults are off — the router then decides
	// exactly as the immortal fleet). carried holds the timing stats a
	// crashed node had accumulated for its victims, overlaid during
	// assembly so TTFT/queue-delay keep measuring from the ORIGINAL
	// arrival across a redispatch.
	var (
		down       []bool
		downSince  []int64
		excludedV  []bool
		nodeFaults []NodeFaultStats
		carried    map[int]serving.RequestStats
	)
	if ft.Enabled() {
		down = make([]bool, nodes)
		downSince = make([]int64, nodes)
		nodeFaults = make([]NodeFaultStats, nodes)
		carried = make(map[int]serving.RequestStats)
		if !ft.Blind {
			excludedV = make([]bool, nodes)
		}
	}
	// Retry policy for dispatches lost to dead nodes: overload
	// control's budget when enabled, the stock defaults otherwise.
	rp := ov
	if !ov.Enabled() {
		rp = OverloadConfig{MaxRetries: DefaultMaxRetries, BackoffBase: DefaultBackoffBase}
	}
	// The dispatch loop is event-driven: fresh arrivals and backoff
	// re-entries share one (cycle, ID)-ordered queue. The sorted
	// request slice is already a valid min-heap; with overload control
	// disabled no retry event is ever pushed, so events pop in exactly
	// the pre-overload iteration order.
	evq := make(eventQueue, 0, len(reqs))
	for _, r := range reqs {
		origArrival[r.ID] = r.ArrivalCycle
		evq = append(evq, event{at: r.ArrivalCycle, id: r.ID, req: r})
	}
	// Fleet fan-out: every node progresses to the event horizon
	// concurrently; each engine is touched only by its own index.
	// Simultaneous events share one fan-out — re-advancing to the
	// same horizon is a no-op on every node (engines start at cycle
	// 0, matching the initial horizon).
	advance := func(t int64) error {
		if t == horizon {
			return nil
		}
		if err := pool.ForEach(nodes, par, func(i int) error { return engines[i].AdvanceTo(t) }); err != nil {
			return err
		}
		horizon = t
		return nil
	}
	fi := 0
	for len(evq) > 0 || fi < len(fplan) {
		// Fault transitions interleave with dispatches in global cycle
		// order, faults first at equal cycles: a crash at cycle C takes
		// down the node before a cycle-C dispatch can land on it, and a
		// rejoin at C receives cycle-C work cold. Within one cycle the
		// faultOp order applies (rejoin < slow-end < slow-start < crash
		// < detect). All transitions run sequentially between fan-outs,
		// so determinism at any Parallel is preserved.
		if fi < len(fplan) && (len(evq) == 0 || fplan[fi].at <= evq[0].at) {
			f := fplan[fi]
			fi++
			if err := advance(f.at); err != nil {
				return nil, err
			}
			switch f.op {
			case opCrash:
				victims, lost := engines[f.node].Crash()
				down[f.node] = true
				downSince[f.node] = f.at
				nodeFaults[f.node].Failures++
				nodeFaults[f.node].LostTokens += lost
				if rrec != nil {
					rrec.Record(telemetry.Event{
						Kind: telemetry.KindNodeDown, Cycle: f.at, Dur: ft.DetectLatency,
						Req: -1, Session: -1, Slot: -1, Target: f.node,
						Tokens: len(victims), KVLen: int(lost),
					})
				}
				reAt := f.at + ft.DetectLatency
				for _, v := range victims {
					id := v.Req.ID
					if prev, again := carried[id]; again {
						// Crashed more than once: the earliest admission and
						// first-token timestamps survive every hop.
						if v.Stats.AdmitCycle == 0 {
							v.Stats.AdmitCycle = prev.AdmitCycle
						}
						if v.Stats.FirstTokenCycle == 0 {
							v.Stats.FirstTokenCycle = prev.FirstTokenCycle
						}
						v.Stats.Preemptions += prev.Preemptions
					}
					carried[id] = v.Stats
					sessionOf[id] = v.Req.Session
					if ft.Drop {
						// Drop-on-failure: the victim dies with its node.
						droppedN++
						droppedReq[id] = true
						if rrec != nil {
							rrec.Record(telemetry.Event{
								Kind: telemetry.KindDrop, Cycle: f.at,
								Req: id, Session: v.Req.Session, Slot: -1, Target: -1,
								Tokens: retriesOf[id],
							})
						}
						continue
					}
					// Redispatch: the victim re-enters the arrival queue once
					// the detector can have noticed the crash, carrying the
					// decode tokens it had generated so the new node
					// re-prefills them instead of re-emitting them.
					nodeFaults[f.node].Redispatched++
					if rrec != nil {
						rrec.Record(telemetry.Event{
							Kind: telemetry.KindRedispatch, Cycle: reAt,
							Req: id, Session: v.Req.Session, Slot: -1, Target: -1,
							Tokens: v.Tokens,
						})
					}
					evq.push(event{
						at: reAt, id: id,
						req:      Request{Request: v.Req, Session: v.Req.Session},
						attempts: retriesOf[id], resume: v.Tokens,
					})
				}
			case opRejoin:
				nodeFaults[f.node].DowntimeCycles += f.at - downSince[f.node]
				if rrec != nil {
					rrec.Record(telemetry.Event{
						Kind: telemetry.KindNodeUp, Cycle: f.at, Dur: f.at - downSince[f.node],
						Req: -1, Session: -1, Slot: -1, Target: f.node,
					})
				}
				down[f.node] = false
				if excludedV != nil {
					excludedV[f.node] = false
				}
			case opDetect:
				// The detection only lands if the node is still down from
				// the SAME incident — a crash that rejoined within the blind
				// window (or crashed again) must not be mis-marked.
				if excludedV != nil && down[f.node] && downSince[f.node] == f.incident {
					excludedV[f.node] = true
				}
			case opSlowStart:
				engines[f.node].SetSlowdown(f.factor)
			case opSlowEnd:
				engines[f.node].SetSlowdown(1)
			}
			continue
		}
		ev := evq.pop()
		t := ev.at
		if err := advance(t); err != nil {
			return nil, err
		}
		for i, e := range engines {
			outstanding[i] = e.OutstandingTokens()
		}
		if needBacklog {
			// Backlog has no consumer beyond the ttft-pressure policy
			// and the saturation signal; skip the second per-node scan
			// otherwise.
			for i, e := range engines {
				backlog[i] = e.PrefillBacklog()
			}
		}
		r := ev.req
		if cachedPrefix != nil {
			// The prefix-affinity observation: how much of this session's
			// KV each node's prefix cache retains right now. Read at the
			// routing decision, sequentially between fan-outs, like the
			// load signals above.
			for i, e := range engines {
				cachedPrefix[i] = e.CachedPrefix(r.Session)
			}
		}
		target := rt.pick(r, outstanding, backlog, cachedPrefix, excludedV)
		if rrec != nil {
			// The load snapshots alias the router's scratch slices; the
			// buffer copies them on record.
			rev := telemetry.Event{
				Kind: telemetry.KindRoute, Cycle: t,
				Req: r.ID, Session: r.Session, Slot: -1, Target: target,
				Load: outstanding,
			}
			if needBacklog {
				rev.Backlog = backlog
			}
			rrec.Record(rev)
		}
		if ov.Enabled() && outstanding[target]+backlog[target] >= ov.SaturationTokens {
			// The picked node is saturated. Forward to the least-loaded
			// peer if allowed and one has headroom; otherwise shed —
			// re-enter after deterministic exponential backoff, or drop
			// once the retry budget is spent.
			alt := -1
			if ov.Forward {
				best := -1
				for i := 0; i < nodes; i++ {
					if excludedV != nil && excludedV[i] {
						// Never forward onto a node the detector knows is dead.
						continue
					}
					if best < 0 || outstanding[i]+backlog[i] < outstanding[best]+backlog[best] {
						best = i
					}
				}
				if best >= 0 && outstanding[best]+backlog[best] < ov.SaturationTokens {
					alt = best
				}
			}
			if alt < 0 {
				shed++
				sessionOf[r.ID] = r.Session
				retriesOf[r.ID] = ev.attempts
				if rrec != nil {
					rrec.Record(telemetry.Event{
						Kind: telemetry.KindShed, Cycle: t,
						Req: r.ID, Session: r.Session, Slot: -1, Target: -1,
						Tokens: ev.attempts,
					})
				}
				if ev.attempts >= ov.MaxRetries {
					droppedN++
					droppedReq[r.ID] = true
					if rrec != nil {
						rrec.Record(telemetry.Event{
							Kind: telemetry.KindDrop, Cycle: t,
							Req: r.ID, Session: r.Session, Slot: -1, Target: -1,
							Tokens: ev.attempts,
						})
					}
					continue
				}
				retried++
				backoff := ov.backoff(ev.attempts + 1)
				if rrec != nil {
					rrec.Record(telemetry.Event{
						Kind: telemetry.KindRetry, Cycle: t, Dur: backoff,
						Req: r.ID, Session: r.Session, Slot: -1, Target: -1,
						Tokens: ev.attempts + 1,
					})
				}
				// A shed redispatched victim keeps its resume point —
				// its pre-crash tokens were already streamed out and
				// must never be generated twice.
				evq.push(event{at: t + backoff, id: r.ID, req: r, attempts: ev.attempts + 1, resume: ev.resume})
				continue
			}
			if alt != target {
				forwarded++
				if rrec != nil {
					rrec.Record(telemetry.Event{
						Kind: telemetry.KindForward, Cycle: t,
						Req: r.ID, Session: r.Session, Slot: -1, Target: alt,
					})
				}
			}
			target = alt
		}
		if down != nil && down[target] {
			// The target is dead and the router could not know — the
			// detector is still blind to this crash (or routing is blind
			// by configuration). The dispatch is lost: the request
			// re-enters through the deterministic backoff path and drops
			// once its retry budget is spent.
			sessionOf[r.ID] = r.Session
			retriesOf[r.ID] = ev.attempts
			if ev.attempts >= rp.MaxRetries {
				droppedN++
				droppedReq[r.ID] = true
				if rrec != nil {
					rrec.Record(telemetry.Event{
						Kind: telemetry.KindDrop, Cycle: t,
						Req: r.ID, Session: r.Session, Slot: -1, Target: -1,
						Tokens: ev.attempts,
					})
				}
				continue
			}
			retried++
			backoff := rp.backoff(ev.attempts + 1)
			if rrec != nil {
				rrec.Record(telemetry.Event{
					Kind: telemetry.KindRetry, Cycle: t, Dur: backoff,
					Req: r.ID, Session: r.Session, Slot: -1, Target: -1,
					Tokens: ev.attempts + 1,
				})
			}
			evq.push(event{at: t + backoff, id: r.ID, req: r, attempts: ev.attempts + 1, resume: ev.resume})
			continue
		}
		// Dispatch. The submitted copy carries the DISPATCH cycle as its
		// arrival so per-node submission order stays nondecreasing even
		// for backoff re-entries (for a never-shed request the two
		// cycles coincide); fleet-level metrics are re-based onto the
		// original arrival during assembly below.
		sub := r.Request
		sub.ArrivalCycle = t
		// The fleet-level Session is authoritative: hand-built scenarios
		// may set only the outer field, and the node's prefix cache keys
		// on what the engine sees.
		sub.Session = r.Session
		if ev.resume > 0 {
			err = engines[target].SubmitResume(sub, ev.resume)
		} else {
			err = engines[target].Submit(sub)
		}
		if err != nil {
			return nil, err
		}
		sessionOf[r.ID] = r.Session
		retriesOf[r.ID] = ev.attempts
		// Post-dispatch load sample: the routed request counts against
		// its node, so a policy that piles work up is visibly imbalanced
		// even on an otherwise idle fleet.
		for i := range loadAcc {
			s := outstanding[i]
			if i == target {
				s += int64(r.DecodeTokens)
			}
			loadAcc[i] += float64(s)
		}
	}
	err = pool.ForEach(nodes, par, func(i int) error { return engines[i].Drain() })
	if err != nil {
		return nil, err
	}
	// The hardware-profile time-series flushes into the trace after
	// the fan-out has drained, sequentially in node order: each node's
	// KindHWSample events land behind its lifecycle events in that
	// node's buffer, so the merged stream is byte-identical at any
	// Parallel. No-op unless both a collector and the profiler are on.
	if opts.Telemetry != nil {
		for i := range engines {
			engines[i].FlushHWSamples()
		}
	}

	m := &Metrics{
		Nodes:     nodes,
		Policy:    pol.String(),
		Requests:  len(reqs),
		Overload:  ov,
		Shed:      shed,
		Forwarded: forwarded,
		Retries:   retried,
		Dropped:   droppedN,
		Faults:    ft,
		PerNode:   make([]*serving.Metrics, nodes),
	}
	var steps int64
	for i, e := range engines {
		nm := e.Metrics()
		m.PerNode[i] = nm
		m.Tokens += nm.Tokens
		steps += nm.Steps
		m.PrefixHits += nm.PrefixHits
		m.PrefixMisses += nm.PrefixMisses
		m.PrefillTokensSaved += nm.PrefillTokensSaved
		m.StepCache.Add(nm.StepCache)
		if nm.Makespan > m.Makespan {
			m.Makespan = nm.Makespan
		}
	}
	if lookups := m.PrefixHits + m.PrefixMisses; lookups > 0 {
		m.PrefixHitRate = float64(m.PrefixHits) / float64(lookups)
	}
	if opts.HWProf.Enabled {
		profs := make([]*hwprof.NodeProfile, nodes)
		for i := range m.PerNode {
			profs[i] = m.PerNode[i].HW
		}
		m.HW = hwprof.Fleet(profs)
	}
	if m.Makespan > 0 {
		m.FleetTokensPerKCycle = 1000 * float64(m.Tokens) / float64(m.Makespan)
	}
	if ft.Enabled() {
		for i := range nodeFaults {
			if down[i] && m.Makespan > downSince[i] {
				// Permanently-down node: charge downtime up to the fleet
				// makespan (no rejoin event ever closes the window).
				nodeFaults[i].DowntimeCycles += m.Makespan - downSince[i]
			}
			m.Failures += nodeFaults[i].Failures
			m.Redispatched += nodeFaults[i].Redispatched
			m.LostTokens += nodeFaults[i].LostTokens
			m.DowntimeCycles += nodeFaults[i].DowntimeCycles
		}
		m.PerNodeFaults = nodeFaults
	}
	if steps > 0 {
		m.MeanBatchOccupancy = float64(m.Tokens) / float64(steps)
	}

	// Fleet-level per-request stats in request-ID order; IDs are a
	// permutation of [0, n), so indexing by ID is total. Node-side
	// stats are re-based from the dispatch cycle back onto the
	// ORIGINAL router arrival: the backoff wait a shed request
	// accumulated before dispatch is added to its queue delay and TTFT
	// (zero delta for never-shed requests, so the disabled-overload
	// path is bit-identical).
	m.PerRequest = make([]RequestStats, len(reqs))
	for i, nm := range m.PerNode {
		for _, rs := range nm.PerRequest {
			delta := rs.ArrivalCycle - origArrival[rs.ID]
			rs.ArrivalCycle = origArrival[rs.ID]
			rs.QueueDelay += delta
			rs.TTFT += delta
			if c, ok := carried[rs.ID]; ok {
				// Redispatched request: the finishing node resumed it
				// mid-decode, so its row lacks the admission and
				// first-token timestamps the crashed node recorded. The
				// carried stats restore them against the ORIGINAL arrival
				// — a recovered request's TTFT is when its stream truly
				// started, not when it was re-prefilled.
				if rs.AdmitCycle == 0 && c.AdmitCycle != 0 {
					rs.AdmitCycle = c.AdmitCycle
					rs.QueueDelay = c.AdmitCycle - origArrival[rs.ID]
				}
				if rs.FirstTokenCycle == 0 && c.FirstTokenCycle != 0 {
					rs.FirstTokenCycle = c.FirstTokenCycle
					rs.TTFT = c.FirstTokenCycle - origArrival[rs.ID]
				}
				rs.Preemptions += c.Preemptions
			}
			m.PerRequest[rs.ID] = RequestStats{
				RequestStats: rs,
				Node:         i,
				Session:      sessionOf[rs.ID],
				E2ELatency:   rs.FinishCycle - rs.ArrivalCycle,
				Retries:      retriesOf[rs.ID],
			}
		}
	}
	for id, d := range droppedReq {
		if !d {
			continue
		}
		m.PerRequest[id] = RequestStats{
			RequestStats: serving.RequestStats{
				ID:           id,
				ArrivalCycle: origArrival[id],
			},
			Node:    -1,
			Session: sessionOf[id],
			Retries: retriesOf[id],
			Dropped: true,
		}
	}
	served := len(reqs) - int(droppedN)
	e2e := make([]float64, 0, served)
	qd := make([]float64, 0, served)
	ttft := make([]float64, 0, served)
	for _, rs := range m.PerRequest {
		if rs.Dropped {
			continue
		}
		e2e = append(e2e, float64(rs.E2ELatency))
		qd = append(qd, float64(rs.QueueDelay))
		ttft = append(ttft, float64(rs.TTFT))
	}
	m.E2ELatency = serving.Summarise(e2e)
	m.QueueDelay = serving.Summarise(qd)
	m.TTFT = serving.Summarise(ttft)
	m.LoadImbalance = imbalance(loadAcc)
	return m, nil
}

// Goodput computes the fleet goodput-under-SLO report: the serving
// SLO applied to every request's fleet-level outcome (TTFT from the
// original router arrival, backoff waits included) against the fleet
// makespan. Dropped requests count as unfinished — shedding pays for
// itself only if the goodput it preserves exceeds the tokens it
// refuses.
func (m *Metrics) Goodput(slo serving.SLO) serving.SLOReport {
	reqs := make([]serving.RequestStats, len(m.PerRequest))
	for i, r := range m.PerRequest {
		reqs[i] = r.RequestStats
	}
	return slo.GoodputOver(reqs, m.Makespan)
}

// StripStepCache zeroes the fleet-level and per-node step-cache
// diagnostics, leaving only the bit-identical simulated metrics — the
// form the determinism and equivalence tests compare.
func (m *Metrics) StripStepCache() {
	m.StepCache = serving.StepCacheStats{}
	for _, nm := range m.PerNode {
		nm.StripStepCache()
	}
}

// imbalance returns max/mean over the per-node load integrals: 1 for
// a perfectly balanced fleet, len(loads) when one node carried all of
// it, 0 when the fleet saw no load samples at all.
func imbalance(loads []float64) float64 {
	var max, sum float64
	for _, l := range loads {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(loads)))
}

// sortRequests orders requests by arrival cycle, ties by ID — the
// global dispatch order of the router.
func sortRequests(reqs []Request) {
	sort.SliceStable(reqs, func(a, b int) bool {
		if reqs[a].ArrivalCycle != reqs[b].ArrivalCycle {
			return reqs[a].ArrivalCycle < reqs[b].ArrivalCycle
		}
		return reqs[a].ID < reqs[b].ID
	})
}

// String renders the headline fleet metrics as an aligned block.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes             %d (router %s)\n", m.Nodes, m.Policy)
	fmt.Fprintf(&b, "requests          %d\n", m.Requests)
	fmt.Fprintf(&b, "tokens            %d\n", m.Tokens)
	fmt.Fprintf(&b, "makespan          %d cycles\n", m.Makespan)
	fmt.Fprintf(&b, "fleet throughput  %.4f tokens/kcycle\n", m.FleetTokensPerKCycle)
	fmt.Fprintf(&b, "batch occupancy   %.2f\n", m.MeanBatchOccupancy)
	fmt.Fprintf(&b, "load imbalance    %.3f (max/mean outstanding tokens)\n", m.LoadImbalance)
	if m.PrefixHits+m.PrefixMisses > 0 {
		fmt.Fprintf(&b, "prefix cache      %d hits, %d misses, %d tokens saved (rate %.2f)\n",
			m.PrefixHits, m.PrefixMisses, m.PrefillTokensSaved, m.PrefixHitRate)
	}
	if m.Overload.Enabled() {
		fmt.Fprintf(&b, "overload          %s: shed %d  forwarded %d  retries %d  dropped %d\n",
			m.Overload, m.Shed, m.Forwarded, m.Retries, m.Dropped)
	}
	if m.Faults.Enabled() {
		fmt.Fprintf(&b, "faults            %s: failures %d  redispatched %d  lost tokens %d  downtime %d cycles\n",
			m.Faults, m.Failures, m.Redispatched, m.LostTokens, m.DowntimeCycles)
	}
	fmt.Fprintf(&b, "e2e latency       p50 %.0f  p95 %.0f  p99 %.0f  max %.0f cycles\n",
		m.E2ELatency.P50, m.E2ELatency.P95, m.E2ELatency.P99, m.E2ELatency.Max)
	fmt.Fprintf(&b, "TTFT              p50 %.0f  p95 %.0f  p99 %.0f  max %.0f cycles\n",
		m.TTFT.P50, m.TTFT.P95, m.TTFT.P99, m.TTFT.Max)
	fmt.Fprintf(&b, "queue delay       p50 %.0f  p95 %.0f  p99 %.0f  max %.0f cycles\n",
		m.QueueDelay.P50, m.QueueDelay.P95, m.QueueDelay.P99, m.QueueDelay.Max)
	fmt.Fprintf(&b, "step cache        memo %d/%d  optrace %d/%d  sim resets %d\n",
		m.StepCache.MemoHits, m.StepCache.MemoHits+m.StepCache.MemoMisses,
		m.StepCache.OpCacheHits, m.StepCache.OpCacheHits+m.StepCache.OpCacheMisses,
		m.StepCache.SimResets)
	for i, nm := range m.PerNode {
		fmt.Fprintf(&b, "node %-2d           %d req  %d tok  occupancy %.2f  tok/kcyc %.4f\n",
			i, nm.Requests, nm.Tokens, nm.MeanBatchOccupancy, nm.TokensPerKCycle)
	}
	return b.String()
}
