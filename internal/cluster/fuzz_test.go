// Native fuzz targets for the cluster flag-value parsers: no input
// panics, every accepted shed spec passes Validate and round-trips
// through its canonical String rendering, and every accepted router
// name round-trips through the canonical policy name. Run as smokes
// via scripts/fuzz_smoke.sh.

package cluster

import "testing"

func FuzzParseOverload(f *testing.F) {
	for _, s := range []string{
		"", "off", "2000", "2000:3", "2000:3:20000", "2000:3:20000:forward",
		"400:3:20000:forward", "0", "-5", "2000:-1", "2000:3:-1",
		"2000:3:20000:backward", "2000:3:20000:forward:x", "x", ":",
		"9223372036854775807", "2000::", "2000:3:",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseOverload(s)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseOverload(%q) accepted an invalid config %+v: %v", s, cfg, verr)
		}
		back, err := ParseOverload(cfg.String())
		if err != nil || back != cfg {
			t.Fatalf("ParseOverload(%q) = %+v, whose canonical form %q does not round-trip: %+v, %v",
				s, cfg, cfg.String(), back, err)
		}
	})
}

func FuzzParsePolicy(f *testing.F) {
	for _, s := range []string{
		"round-robin", "rr", "least-outstanding", "lot", "p2c", "power-of-two",
		"affinity", "session-affinity", "prefix-affinity", "pfx",
		"ttft-pressure", "ltp", "", "all", "Affinity", "least-outstanding ",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			return
		}
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("ParsePolicy(%q) = %v, which does not round-trip: %v, %v", s, p, back, err)
		}
	})
}
