// Native fuzz targets for the cluster flag-value parsers: no input
// panics, every accepted shed spec passes Validate and round-trips
// through its canonical String rendering, and every accepted router
// name round-trips through the canonical policy name. Run as smokes
// via scripts/fuzz_smoke.sh.

package cluster

import (
	"reflect"
	"testing"
)

func FuzzParseOverload(f *testing.F) {
	for _, s := range []string{
		"", "off", "2000", "2000:3", "2000:3:20000", "2000:3:20000:forward",
		"400:3:20000:forward", "0", "-5", "2000:-1", "2000:3:-1",
		"2000:3:20000:backward", "2000:3:20000:forward:x", "x", ":",
		"9223372036854775807", "2000::", "2000:3:",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseOverload(s)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseOverload(%q) accepted an invalid config %+v: %v", s, cfg, verr)
		}
		back, err := ParseOverload(cfg.String())
		if err != nil || back != cfg {
			t.Fatalf("ParseOverload(%q) = %+v, whose canonical form %q does not round-trip: %+v, %v",
				s, cfg, cfg.String(), back, err)
		}
	})
}

func FuzzParsePolicy(f *testing.F) {
	for _, s := range []string{
		"round-robin", "rr", "least-outstanding", "lot", "p2c", "power-of-two",
		"affinity", "session-affinity", "prefix-affinity", "pfx",
		"ttft-pressure", "ltp", "", "all", "Affinity", "least-outstanding ",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			return
		}
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("ParsePolicy(%q) = %v, which does not round-trip: %v, %v", s, p, back, err)
		}
	})
}

func FuzzParseFaults(f *testing.F) {
	for _, s := range []string{
		"", "off", "crash:0:50000", "crash:1:50000:90000",
		"slow:2:10000:60000:3", "gen:9:250000:40000.5:3",
		"crash:0:50000:90000,slow:1:0:20000:2,detect:5000,drop,blind",
		"crash:0:100,redispatch,aware", "detect:5000", "drop", "blind",
		"crash", "crash:0", "crash:x:5", "crash:0:-5", "crash:0:100:50",
		"slow:0:0:100:1", "slow:0:100:50:2", "gen:1:NaN:100:2",
		"gen:1:100:Inf:2", "gen:1:-100:100:2", "gen:1:1e400:100:2",
		"gen:1:100:100:0", "detect:-1", "crash:0:9223372036854775807",
		"crash:0:100,crash:0:100", ",", "crash:0:100,", ":",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseFaults(s)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseFaults(%q) accepted an invalid config %+v: %v", s, cfg, verr)
		}
		back, err := ParseFaults(cfg.String())
		if err != nil || !reflect.DeepEqual(back, cfg) {
			t.Fatalf("ParseFaults(%q) = %+v, whose canonical form %q does not round-trip: %+v, %v",
				s, cfg, cfg.String(), back, err)
		}
	})
}
