// Deterministic node-fault injection: a fixed schedule of crashes
// (all KV, prefix cache and in-flight streams lost, optional rejoin
// after an MTTR) and straggler windows (a node's cycle progression
// slowed by an integer factor), plus the recovery machinery the fleet
// runs against it — a heartbeat-style failure detector with a
// configurable blind window, health-aware router exclusion, and
// in-flight request redispatch that re-prefills prompt+generated
// tokens on a surviving node (the recompute-on-preempt path, one node
// over). The schedule is either spelled out crash by crash or drawn
// from the same splitmix64 stream every other generator uses
// (MTBF/MTTR exponentials), so a fault run is exactly reproducible at
// any -parallel width; with no faults configured every code path is
// untouched and results are bit-identical to the fault-free router.

package cluster

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/serving"
)

// Crash is one scheduled node failure: the node dies at cycle At —
// losing its KV, session prefix cache and every in-flight, queued and
// pending request — and rejoins cold at cycle Rejoin. Rejoin == 0
// means the node never comes back (a permanent failure).
type Crash struct {
	Node   int
	At     int64
	Rejoin int64
}

// Straggler is one scheduled slow-node window: from cycle From until
// cycle To every step node Node executes costs Factor times its
// nominal cycles. Windows take effect at step boundaries (a step in
// flight at a boundary keeps the factor it started under).
type Straggler struct {
	Node   int
	From   int64
	To     int64
	Factor int64
}

// FaultGen is the generator mode of a fault plan: Count crash events
// drawn from a splitmix64 stream seeded with Seed — inter-failure gaps
// exponential with mean MTBF cycles, the crashed node uniform over the
// fleet, downtime exponential with mean MTTR cycles. Draws that land
// while their node is still down are skipped (a dead node cannot die
// again), so the realised crash count may be lower than Count.
type FaultGen struct {
	Seed  uint64
	MTBF  float64
	MTTR  float64
	Count int
}

// FaultConfig is a cluster run's fault-injection and recovery
// configuration. The zero value disables fault injection entirely —
// no schedule, no detector, bit-identical to the immortal fleet.
type FaultConfig struct {
	// Crashes and Stragglers are the explicit schedule; Gen adds
	// generated crashes on top (usually one or the other).
	Crashes    []Crash
	Stragglers []Straggler
	Gen        *FaultGen
	// DetectLatency is the failure detector's blind window D in
	// cycles: a crash at cycle C is detected at C+D, and only then is
	// the node excluded from routing. During the blind window requests
	// dispatched to the dead node are lost and retry via the overload
	// backoff path; crash victims are redispatched at detection.
	DetectLatency int64
	// Drop selects the drop-on-failure recovery policy: requests lost
	// with a crashed node are dropped (tombstoned like retry-exhausted
	// requests) instead of redispatched through the router.
	Drop bool
	// Blind disables health-aware routing: the router never learns of
	// detected failures and keeps dispatching to dead nodes for their
	// whole downtime (each dispatch lost and retried). The baseline
	// the health-aware exclusion is measured against.
	Blind bool
}

// Enabled reports whether any fault is scheduled.
func (f FaultConfig) Enabled() bool {
	return len(f.Crashes) > 0 || len(f.Stragglers) > 0 || f.Gen != nil
}

// Validate checks the fault configuration (node indices are checked
// against the fleet size later, by plan).
func (f FaultConfig) Validate() error {
	for _, c := range f.Crashes {
		if c.Node < 0 {
			return fmt.Errorf("cluster: crash node must be non-negative, got %d", c.Node)
		}
		if c.At < 0 {
			return fmt.Errorf("cluster: crash cycle must be non-negative, got %d", c.At)
		}
		if c.Rejoin != 0 && c.Rejoin <= c.At {
			return fmt.Errorf("cluster: crash rejoin cycle %d not after crash cycle %d", c.Rejoin, c.At)
		}
	}
	for _, s := range f.Stragglers {
		if s.Node < 0 {
			return fmt.Errorf("cluster: straggler node must be non-negative, got %d", s.Node)
		}
		if s.From < 0 {
			return fmt.Errorf("cluster: straggler window start must be non-negative, got %d", s.From)
		}
		if s.To <= s.From {
			return fmt.Errorf("cluster: straggler window [%d, %d) is empty", s.From, s.To)
		}
		if s.Factor < 2 {
			return fmt.Errorf("cluster: straggler factor must be at least 2, got %d", s.Factor)
		}
	}
	if g := f.Gen; g != nil {
		if !(g.MTBF > 0) || math.IsInf(g.MTBF, 0) {
			return fmt.Errorf("cluster: generator MTBF must be positive and finite, got %g", g.MTBF)
		}
		if !(g.MTTR > 0) || math.IsInf(g.MTTR, 0) {
			return fmt.Errorf("cluster: generator MTTR must be positive and finite, got %g", g.MTTR)
		}
		if g.Count <= 0 {
			return fmt.Errorf("cluster: generator count must be positive, got %d", g.Count)
		}
	}
	if f.DetectLatency < 0 {
		return fmt.Errorf("cluster: DetectLatency must be non-negative, got %d", f.DetectLatency)
	}
	if !f.Enabled() && (f.DetectLatency != 0 || f.Drop || f.Blind) {
		return fmt.Errorf("cluster: fault injection disabled (no crashes, stragglers or generator) but detector/recovery parameters set")
	}
	return nil
}

// String renders the canonical spec ParseFaults accepts.
func (f FaultConfig) String() string {
	if !f.Enabled() {
		return "off"
	}
	var parts []string
	for _, c := range f.Crashes {
		if c.Rejoin == 0 {
			parts = append(parts, fmt.Sprintf("crash:%d:%d", c.Node, c.At))
		} else {
			parts = append(parts, fmt.Sprintf("crash:%d:%d:%d", c.Node, c.At, c.Rejoin))
		}
	}
	for _, s := range f.Stragglers {
		parts = append(parts, fmt.Sprintf("slow:%d:%d:%d:%d", s.Node, s.From, s.To, s.Factor))
	}
	if g := f.Gen; g != nil {
		parts = append(parts, fmt.Sprintf("gen:%d:%s:%s:%d", g.Seed,
			strconv.FormatFloat(g.MTBF, 'g', -1, 64),
			strconv.FormatFloat(g.MTTR, 'g', -1, 64), g.Count))
	}
	if f.DetectLatency > 0 {
		parts = append(parts, fmt.Sprintf("detect:%d", f.DetectLatency))
	}
	if f.Drop {
		parts = append(parts, "drop")
	}
	if f.Blind {
		parts = append(parts, "blind")
	}
	return strings.Join(parts, ",")
}

// ParseFaults reads a -faults flag value: "off" (or ""), or a
// comma-separated list of clauses:
//
//	crash:N:AT            node N dies at cycle AT, never rejoins
//	crash:N:AT:REJOIN     ... and rejoins cold at cycle REJOIN
//	slow:N:FROM:TO:K      node N runs K× slower on [FROM, TO)
//	gen:SEED:MTBF:MTTR:C  C generated crashes (exponential MTBF/MTTR
//	                      off the splitmix64 stream seeded SEED)
//	detect:D              failure-detection latency in cycles
//	drop                  drop-on-failure instead of redispatch
//	redispatch            redispatch crash victims (the default)
//	blind                 route blind to failures (no exclusion)
//	aware                 health-aware routing (the default)
//
// Cycle and node fields are integers and must be non-negative; MTBF
// and MTTR are cycles (floats accepted) and must be positive and
// finite — NaN, Inf and negative values are rejected up front.
func ParseFaults(s string) (FaultConfig, error) {
	if s == "" || s == "off" {
		return FaultConfig{}, nil
	}
	bad := func(clause, reason string) (FaultConfig, error) {
		return FaultConfig{}, fmt.Errorf("cluster: bad fault spec clause %q: %s", clause, reason)
	}
	num := func(field string) (int64, bool) {
		v, err := strconv.ParseInt(field, 10, 64)
		return v, err == nil && v >= 0
	}
	var cfg FaultConfig
	for _, clause := range strings.Split(s, ",") {
		parts := strings.Split(clause, ":")
		switch parts[0] {
		case "crash":
			if len(parts) != 3 && len(parts) != 4 {
				return bad(clause, "want crash:NODE:AT or crash:NODE:AT:REJOIN")
			}
			node, ok1 := num(parts[1])
			at, ok2 := num(parts[2])
			if !ok1 || !ok2 {
				return bad(clause, "node and cycles must be non-negative integers")
			}
			c := Crash{Node: int(node), At: at}
			if len(parts) == 4 {
				rejoin, ok := num(parts[3])
				if !ok {
					return bad(clause, "rejoin cycle must be a non-negative integer")
				}
				if rejoin <= at {
					return bad(clause, "rejoin cycle must be after the crash cycle")
				}
				c.Rejoin = rejoin
			}
			cfg.Crashes = append(cfg.Crashes, c)
		case "slow":
			if len(parts) != 5 {
				return bad(clause, "want slow:NODE:FROM:TO:FACTOR")
			}
			node, ok1 := num(parts[1])
			from, ok2 := num(parts[2])
			to, ok3 := num(parts[3])
			factor, ok4 := num(parts[4])
			if !ok1 || !ok2 || !ok3 || !ok4 {
				return bad(clause, "node, cycles and factor must be non-negative integers")
			}
			if to <= from {
				return bad(clause, "window end must be after window start")
			}
			if factor < 2 {
				return bad(clause, "slowdown factor must be at least 2")
			}
			cfg.Stragglers = append(cfg.Stragglers, Straggler{Node: int(node), From: from, To: to, Factor: factor})
		case "gen":
			if len(parts) != 5 {
				return bad(clause, "want gen:SEED:MTBF:MTTR:COUNT")
			}
			seed, err := strconv.ParseUint(parts[1], 10, 64)
			if err != nil {
				return bad(clause, "seed must be an unsigned integer")
			}
			mtbf, err1 := strconv.ParseFloat(parts[2], 64)
			mttr, err2 := strconv.ParseFloat(parts[3], 64)
			if err1 != nil || err2 != nil ||
				math.IsNaN(mtbf) || math.IsInf(mtbf, 0) || mtbf <= 0 ||
				math.IsNaN(mttr) || math.IsInf(mttr, 0) || mttr <= 0 {
				return bad(clause, "MTBF and MTTR must be positive finite cycle counts")
			}
			count, ok := num(parts[4])
			if !ok || count == 0 {
				return bad(clause, "count must be a positive integer")
			}
			if cfg.Gen != nil {
				return bad(clause, "at most one gen clause")
			}
			cfg.Gen = &FaultGen{Seed: seed, MTBF: mtbf, MTTR: mttr, Count: int(count)}
		case "detect":
			if len(parts) != 2 {
				return bad(clause, "want detect:CYCLES")
			}
			d, ok := num(parts[1])
			if !ok {
				return bad(clause, "detection latency must be a non-negative integer")
			}
			cfg.DetectLatency = d
		case "drop":
			cfg.Drop = true
		case "redispatch":
			cfg.Drop = false
		case "blind":
			cfg.Blind = true
		case "aware":
			cfg.Blind = false
		default:
			return bad(clause, "unknown clause (want crash, slow, gen, detect, drop, redispatch, blind or aware)")
		}
	}
	if err := cfg.Validate(); err != nil {
		return FaultConfig{}, err
	}
	return cfg, nil
}

// faultOp orders simultaneous fault transitions: a rejoin at cycle C
// precedes a new crash at C (rejoin-then-immediate-crash is legal),
// straggler boundaries sit between, and detection comes last so a
// zero-latency detector observes the crash it detects and a detector
// firing on the rejoin cycle observes the node already back.
type faultOp int

const (
	opRejoin faultOp = iota
	opSlowEnd
	opSlowStart
	opCrash
	opDetect
)

// faultEvent is one compiled fault-plan transition.
type faultEvent struct {
	at       int64
	op       faultOp
	node     int
	factor   int64 // opSlowStart only
	incident int64 // the owning crash cycle (opDetect guard)
}

// plan compiles the configuration against a concrete fleet size:
// generated crashes are materialised, node indices validated, per-node
// crash overlap rejected and the transitions sorted into the global
// processing order. The result feeds the cluster dispatch loop.
func (f FaultConfig) plan(nodes int) ([]faultEvent, error) {
	crashes := append([]Crash(nil), f.Crashes...)
	if g := f.Gen; g != nil {
		rnd := serving.Rand{State: g.Seed}
		downUntil := make([]int64, nodes) // 0 = up; -1 = down forever
		var t int64
		for k := 0; k < g.Count; k++ {
			gap := int64(rnd.ExpFloat64() * g.MTBF)
			if gap < 1 {
				gap = 1
			}
			t += gap
			node := rnd.Intn(nodes)
			mttr := int64(rnd.ExpFloat64() * g.MTTR)
			if mttr < 1 {
				mttr = 1
			}
			if downUntil[node] != 0 && t < downUntil[node] {
				// The drawn node is still down: a dead node cannot die
				// again. The draw is consumed (stream position is part of
				// the schedule's identity) but produces no crash.
				continue
			}
			crashes = append(crashes, Crash{Node: node, At: t, Rejoin: t + mttr})
			downUntil[node] = t + mttr
		}
	}
	perNode := make(map[int][]Crash, nodes)
	for _, c := range crashes {
		if c.Node >= nodes {
			return nil, fmt.Errorf("cluster: crash names node %d but the fleet has %d nodes", c.Node, nodes)
		}
		perNode[c.Node] = append(perNode[c.Node], c)
	}
	for node, cs := range perNode {
		sort.Slice(cs, func(a, b int) bool { return cs[a].At < cs[b].At })
		for i := 1; i < len(cs); i++ {
			prev := cs[i-1]
			if prev.Rejoin == 0 || cs[i].At < prev.Rejoin {
				return nil, fmt.Errorf("cluster: node %d crashes at cycle %d while already down since %d",
					node, cs[i].At, prev.At)
			}
		}
	}
	var plan []faultEvent
	for _, c := range crashes {
		plan = append(plan, faultEvent{at: c.At, op: opCrash, node: c.Node, incident: c.At})
		plan = append(plan, faultEvent{at: c.At + f.DetectLatency, op: opDetect, node: c.Node, incident: c.At})
		if c.Rejoin != 0 {
			plan = append(plan, faultEvent{at: c.Rejoin, op: opRejoin, node: c.Node, incident: c.At})
		}
	}
	for _, s := range f.Stragglers {
		if s.Node >= nodes {
			return nil, fmt.Errorf("cluster: straggler names node %d but the fleet has %d nodes", s.Node, nodes)
		}
		plan = append(plan, faultEvent{at: s.From, op: opSlowStart, node: s.Node, factor: s.Factor})
		plan = append(plan, faultEvent{at: s.To, op: opSlowEnd, node: s.Node})
	}
	sort.SliceStable(plan, func(a, b int) bool {
		if plan[a].at != plan[b].at {
			return plan[a].at < plan[b].at
		}
		if plan[a].op != plan[b].op {
			return plan[a].op < plan[b].op
		}
		return plan[a].node < plan[b].node
	})
	return plan, nil
}

// NodeFaultStats is one node's fault-tolerance outcome.
type NodeFaultStats struct {
	// Failures counts the node's crash events.
	Failures int64
	// Redispatched counts the unfinished requests taken off this node
	// by its crashes and re-entered through the router (0 under the
	// drop-on-failure policy).
	Redispatched int64
	// LostTokens counts decode tokens whose KV died with this node —
	// the recompute debt redispatch pays as prefill on the new node
	// (the tokens themselves were already streamed out and are never
	// generated twice).
	LostTokens int64
	// DowntimeCycles is the node's total time down; a node still down
	// when the run ends is charged up to the fleet makespan.
	DowntimeCycles int64
}
