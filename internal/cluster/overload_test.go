package cluster

import (
	"reflect"
	"testing"

	"repro/internal/serving"
	"repro/internal/workload"
)

// TestParseOverload covers the -shed flag grammar: defaults filled,
// every field overridable, malformed specs rejected.
func TestParseOverload(t *testing.T) {
	cases := []struct {
		spec string
		want OverloadConfig
	}{
		{"", OverloadConfig{}},
		{"off", OverloadConfig{}},
		{"2000", OverloadConfig{SaturationTokens: 2000, MaxRetries: DefaultMaxRetries, BackoffBase: DefaultBackoffBase}},
		{"2000:5", OverloadConfig{SaturationTokens: 2000, MaxRetries: 5, BackoffBase: DefaultBackoffBase}},
		{"2000:0:500", OverloadConfig{SaturationTokens: 2000, MaxRetries: 0, BackoffBase: 500}},
		{"2000:3:20000:forward", OverloadConfig{SaturationTokens: 2000, MaxRetries: 3, BackoffBase: 20000, Forward: true}},
	}
	for _, c := range cases {
		got, err := ParseOverload(c.spec)
		if err != nil {
			t.Errorf("spec %q: %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("spec %q parsed to %+v, want %+v", c.spec, got, c.want)
		}
		// The canonical rendering round-trips.
		if rt, err := ParseOverload(got.String()); err != nil || rt != got {
			t.Errorf("spec %q rendering %q did not round-trip: %+v (%v)", c.spec, got, rt, err)
		}
	}
	for _, spec := range []string{
		"0", "-5", "x", "2000:x", "2000:-1", "2000:3:x", "2000:3:-7",
		"2000:3:500:bogus", "2000:3:500:forward:extra",
	} {
		if _, err := ParseOverload(spec); err == nil {
			t.Errorf("spec %q parsed, want error", spec)
		}
	}
}

// TestOverloadValidationAndBackoff: configuration rules and the
// deterministic doubling schedule.
func TestOverloadValidationAndBackoff(t *testing.T) {
	bad := []OverloadConfig{
		{SaturationTokens: -1},
		{SaturationTokens: 100, MaxRetries: -1},
		{SaturationTokens: 100, BackoffBase: -1},
		{MaxRetries: 3},    // params without a threshold
		{BackoffBase: 100}, // params without a threshold
		{Forward: true},    // forward without a threshold
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("config %+v accepted, want error", o)
		}
	}
	if err := (OverloadConfig{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	o := OverloadConfig{SaturationTokens: 100, MaxRetries: 4, BackoffBase: 1000}
	for k, want := range map[int]int64{1: 1000, 2: 2000, 3: 4000, 4: 8000} {
		if got := o.backoff(k); got != want {
			t.Errorf("backoff(%d) = %d, want %d (no jitter, exact doubling)", k, got, want)
		}
	}
}

// TestOverloadNeverTriggeredBitIdentity: overload control that is
// enabled but whose threshold is never reached produces bit-identical
// fleet metrics to the disabled router — the event-loop machinery
// itself never perturbs a run.
func TestOverloadNeverTriggeredBitIdentity(t *testing.T) {
	scn := testScenario(t)
	cfg := testConfig()
	off, err := Run(cfg, scn, 3, Policy{Kind: LeastOutstanding}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(cfg, scn, 3, Policy{Kind: LeastOutstanding},
		Options{Overload: OverloadConfig{SaturationTokens: 1 << 40, MaxRetries: 3, BackoffBase: 10000, Forward: true}})
	if err != nil {
		t.Fatal(err)
	}
	if on.Shed != 0 || on.Forwarded != 0 || on.Retries != 0 || on.Dropped != 0 {
		t.Fatalf("unreachable threshold still acted: %+v", on)
	}
	off.StripStepCache()
	on.StripStepCache()
	// The recorded configuration legitimately differs; everything else
	// must not.
	on.Overload = off.Overload
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("never-triggered overload control changed the run:\n%v\n%v", off, on)
	}
}

// overloadFleetScenario is the committed overloaded fleet workload of
// the shedding tests: a bursty 16-request population against two
// KV-tight chunked-prefill nodes.
func overloadFleetScenario(t *testing.T) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "overload/fleet", Seed: 9, NumRequests: 16,
			Models:       []workload.ModelConfig{workload.Llama3_70B},
			MinPromptLen: 16, MaxPromptLen: 48,
			MinDecode: 2, MaxDecode: 5,
			MeanInterArrival: 15000, MaxBatch: 2,
			Arrival: serving.ArrivalConfig{Kind: serving.ArrivalBurst, Period: 80000, Duty: 0.4, Factor: 8},
			Sched:   serving.SchedulerConfig{Policy: serving.SchedChunked, ChunkTokens: 16, KVCapTokens: 120},
		},
		NumSessions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// shedConfig is the committed shedding configuration of the overload
// acceptance tests.
func shedConfig() OverloadConfig {
	return OverloadConfig{SaturationTokens: 60, MaxRetries: 3, BackoffBase: 20000, Forward: true}
}

// TestOverloadShedRetryDropAccounting runs the committed overloaded
// fleet under shedding and checks the bookkeeping invariants: every
// shed event either schedules a retry or drops, dropped requests are
// tombstoned out of the served population, retried-but-served requests
// keep deadlines measured from their original arrival, and the whole
// thing replays bit-identically.
func TestOverloadShedRetryDropAccounting(t *testing.T) {
	scn := overloadFleetScenario(t)
	cfg := testConfig()
	ov := shedConfig()
	m, err := Run(cfg, scn, 2, Policy{Kind: LeastOutstanding}, Options{Overload: ov})
	if err != nil {
		t.Fatal(err)
	}
	if m.Shed == 0 || m.Retries == 0 || m.Dropped == 0 {
		t.Fatalf("committed scenario not overloaded enough: shed=%d retries=%d dropped=%d", m.Shed, m.Retries, m.Dropped)
	}
	// Every saturation rejection either scheduled a retry or dropped.
	if m.Shed != m.Retries+m.Dropped {
		t.Errorf("shed %d != retries %d + dropped %d", m.Shed, m.Retries, m.Dropped)
	}
	var droppedTokens int64
	var dropped, retriedServed int
	for _, rs := range m.PerRequest {
		if rs.Dropped {
			dropped++
			droppedTokens += int64(scn.Requests[rs.ID].DecodeTokens)
			if rs.Node != -1 || rs.Tokens != 0 || rs.FinishCycle != 0 {
				t.Errorf("dropped request %d has served-looking stats: %+v", rs.ID, rs)
			}
			if rs.Retries != ov.MaxRetries {
				t.Errorf("dropped request %d retried %d times, want the full budget %d", rs.ID, rs.Retries, ov.MaxRetries)
			}
			continue
		}
		if rs.Retries > 0 {
			retriedServed++
			if rs.Retries > ov.MaxRetries {
				t.Errorf("request %d retried %d times, budget is %d", rs.ID, rs.Retries, ov.MaxRetries)
			}
		}
		// Deadlines are measured from the ORIGINAL router arrival: the
		// backoff wait is inside TTFT, never excused from it.
		if rs.ArrivalCycle != scn.Requests[rs.ID].ArrivalCycle {
			t.Errorf("request %d arrival rebased wrong: %d vs %d", rs.ID, rs.ArrivalCycle, scn.Requests[rs.ID].ArrivalCycle)
		}
		if rs.TTFT != rs.FirstTokenCycle-rs.ArrivalCycle {
			t.Errorf("request %d TTFT %d != first %d - arrival %d", rs.ID, rs.TTFT, rs.FirstTokenCycle, rs.ArrivalCycle)
		}
		if rs.E2ELatency != rs.FinishCycle-rs.ArrivalCycle {
			t.Errorf("request %d e2e %d != finish %d - arrival %d", rs.ID, rs.E2ELatency, rs.FinishCycle, rs.ArrivalCycle)
		}
	}
	if int64(dropped) != m.Dropped {
		t.Errorf("per-request dropped %d != counter %d", dropped, m.Dropped)
	}
	if retriedServed == 0 {
		t.Error("no request was shed, backed off and then served — retry path not exercised")
	}
	// The fleet serves exactly the un-dropped decode budget.
	if m.Tokens != scn.TotalTokens()-droppedTokens {
		t.Errorf("fleet tokens %d != total %d - dropped %d", m.Tokens, scn.TotalTokens(), droppedTokens)
	}
	// Bit-identical replay, including at a different worker width.
	again, err := Run(cfg, scn, 2, Policy{Kind: LeastOutstanding}, Options{Overload: ov, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.StripStepCache()
	again.StripStepCache()
	if !reflect.DeepEqual(m, again) {
		t.Error("overloaded run not reproducible across worker widths")
	}
}

// TestOverloadForwardingRescue: a single-session population under the
// affinity router saturates its home node; forwarding hands the
// overflow to the idle peer instead of dropping it. Without
// forwarding the same scenario sheds more and drops a request.
func TestOverloadForwardingRescue(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "fwd/one-session", Seed: 3, NumRequests: 8,
			Models:       []workload.ModelConfig{workload.Llama3_70B},
			MinPromptLen: 16, MaxPromptLen: 32,
			MinDecode: 2, MaxDecode: 4,
			MeanInterArrival: 4000, MaxBatch: 2,
		},
		NumSessions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	run := func(forward bool) *Metrics {
		m, err := Run(cfg, scn, 2, Policy{Kind: SessionAffinity},
			Options{Overload: OverloadConfig{SaturationTokens: 5, MaxRetries: 1, BackoffBase: 20000, Forward: forward}})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	noFwd := run(false)
	if noFwd.Forwarded != 0 || noFwd.Dropped == 0 {
		t.Fatalf("forwardless run: forwarded=%d dropped=%d, want 0/>0", noFwd.Forwarded, noFwd.Dropped)
	}
	fwd := run(true)
	if fwd.Forwarded == 0 {
		t.Fatal("forwarding enabled but nothing forwarded")
	}
	if fwd.Dropped != 0 || fwd.Tokens != scn.TotalTokens() {
		t.Fatalf("forwarding still dropped work: dropped=%d tokens=%d/%d", fwd.Dropped, fwd.Tokens, scn.TotalTokens())
	}
	// The overflow really ran on the non-home peer.
	busy := 0
	for _, nm := range fwd.PerNode {
		if nm.Requests > 0 {
			busy++
		}
	}
	if busy != 2 {
		t.Fatalf("forwarded fleet used %d nodes, want both", busy)
	}
}

// TestShedBeatsNeverShedOnGoodput is the cluster-side overload
// acceptance criterion: on the committed overloaded fleet, admission
// shedding with retry/backoff strictly beats the never-shed router on
// fleet goodput-under-SLO. Never-shed buries both nodes — every
// late request blows its first-token deadline while still consuming
// capacity; shedding keeps the nodes inside their KV budget and
// serves what it admits on time.
func TestShedBeatsNeverShedOnGoodput(t *testing.T) {
	scn := overloadFleetScenario(t)
	cfg := testConfig()
	slo := serving.SLO{TTFTCycles: 400000}
	never, err := Run(cfg, scn, 2, Policy{Kind: LeastOutstanding}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shed, err := Run(cfg, scn, 2, Policy{Kind: LeastOutstanding}, Options{Overload: shedConfig()})
	if err != nil {
		t.Fatal(err)
	}
	gNever, gShed := never.Goodput(slo), shed.Goodput(slo)
	// The deadline must bite under never-shed, and shedding must pay
	// for its refused tokens with a strict goodput win.
	if gNever.TTFTViolations == 0 {
		t.Error("never-shed run met every deadline — scenario not overloaded")
	}
	if shed.Dropped == 0 || shed.Retries == 0 {
		t.Fatalf("shed run exercised no overload control: %+v", shed.Overload)
	}
	if !(gShed.GoodputPerKCycle > gNever.GoodputPerKCycle) {
		t.Errorf("shed goodput %v not strictly above never-shed %v",
			gShed.GoodputPerKCycle, gNever.GoodputPerKCycle)
	}
	// Dropped requests are honestly counted against the shed run.
	if gShed.Unfinished != int(shed.Dropped) {
		t.Errorf("goodput unfinished %d != dropped %d", gShed.Unfinished, shed.Dropped)
	}
	if gNever.Unfinished != 0 {
		t.Errorf("never-shed run left %d requests unfinished", gNever.Unfinished)
	}
}
