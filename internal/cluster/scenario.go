// Cluster workload construction: the fleet-level request population.
// A cluster request is a serving request plus a session identifier —
// the unit of KV/prefix-cache locality the session-affinity router
// exploits. Generation is open-loop (arrivals are drawn from a fixed
// Poisson process, independent of service progress) and fixed-seed
// (splitmix64), so a (seed, config) pair always produces the same
// fleet workload.

package cluster

import (
	"fmt"

	"repro/internal/serving"
	"repro/internal/workload"
)

// Request is one decode request arriving at the cluster router: the
// serving request plus the session it belongs to. Requests of the
// same session share prompt-prefix state, so routing them to the same
// node models KV/prefix-cache locality.
type Request struct {
	serving.Request
	Session int
}

// Scenario is a complete fleet workload: a request population in
// arrival order plus the per-node continuous-batching capacity.
type Scenario struct {
	Name     string
	Requests []Request
	// MaxBatch is every node's continuous-batching capacity.
	MaxBatch int
	// IncludeAV appends the attention-value operator to every stream's
	// per-token work on every node.
	IncludeAV bool
	// Sched is every node's prefill/decode scheduler configuration
	// (zero value: decode-only, unlimited KV — the pre-prefill fleet
	// behaviour).
	Sched serving.SchedulerConfig
}

// Validate checks the scenario. Request IDs must form a permutation
// of [0, len(Requests)): the router uses them as indices into the
// fleet-level result slice and as dispatch tie-breakers.
func (s Scenario) Validate() error {
	if len(s.Requests) == 0 {
		return fmt.Errorf("cluster: scenario has no requests")
	}
	if s.MaxBatch <= 0 {
		return fmt.Errorf("cluster: MaxBatch must be positive, got %d", s.MaxBatch)
	}
	if err := s.Sched.Validate(); err != nil {
		return err
	}
	seen := make([]bool, len(s.Requests))
	for _, r := range s.Requests {
		if err := r.Request.Validate(); err != nil {
			return err
		}
		if err := s.Sched.CheckAdmissible(r.Request); err != nil {
			return err
		}
		if r.Session < 0 {
			return fmt.Errorf("cluster: request %d: Session must be non-negative, got %d", r.ID, r.Session)
		}
		if r.ID < 0 || r.ID >= len(s.Requests) {
			return fmt.Errorf("cluster: request ID %d outside [0, %d)", r.ID, len(s.Requests))
		}
		if seen[r.ID] {
			return fmt.Errorf("cluster: duplicate request ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	return nil
}

// ServingScenario strips the cluster scenario down to the equivalent
// single-node serving scenario (the embedded serving requests, which
// carry the same Session/PrefixLen fields): the population a 1-node
// cluster serves, and the address-space sizing input for every node's
// StreamStride.
func (s Scenario) ServingScenario() serving.Scenario {
	reqs := make([]serving.Request, len(s.Requests))
	for i, r := range s.Requests {
		reqs[i] = r.Request
	}
	return serving.Scenario{
		Name:      s.Name,
		Requests:  reqs,
		MaxBatch:  s.MaxBatch,
		IncludeAV: s.IncludeAV,
		Sched:     s.Sched,
	}
}

// TotalTokens returns the number of tokens the fleet generates.
func (s Scenario) TotalTokens() int64 {
	var n int64
	for _, r := range s.Requests {
		n += int64(r.DecodeTokens)
	}
	return n
}

// ScenarioConfig parameterises the fixed-seed cluster workload
// generator: the serving generator's population parameters plus the
// session count.
type ScenarioConfig struct {
	serving.ScenarioConfig
	// NumSessions is how many distinct sessions the population is drawn
	// from; each request is assigned one uniformly. Zero means every
	// request is its own session (no prefix locality to exploit).
	NumSessions int
}

// NewScenario draws a cluster workload deterministically: the request
// population comes from the serving generator (same splitmix64 stream,
// so the same seed yields the same requests a single-node scenario
// would see) and sessions are assigned by the serving generator's
// second stream derived from the seed — the cluster-level NumSessions
// is forwarded into the embedded config, so the fleet-level Session
// and the serving Request.Session the node engines key their prefix
// caches on are one assignment. SessionDepth in the embedded config
// turns the sessions into multi-turn conversations carrying PrefixLen
// (see serving.ScenarioConfig).
func NewScenario(cfg ScenarioConfig) (Scenario, error) {
	if cfg.NumSessions < 0 {
		return Scenario{}, fmt.Errorf("cluster: NumSessions must be non-negative, got %d", cfg.NumSessions)
	}
	inner := cfg.ScenarioConfig
	if cfg.NumSessions > 0 {
		if inner.NumSessions != 0 && inner.NumSessions != cfg.NumSessions {
			return Scenario{}, fmt.Errorf("cluster: NumSessions %d contradicts the embedded serving NumSessions %d (set one)",
				cfg.NumSessions, inner.NumSessions)
		}
		inner.NumSessions = cfg.NumSessions
	}
	base, err := serving.NewScenario(inner)
	if err != nil {
		return Scenario{}, err
	}
	reqs := make([]Request, len(base.Requests))
	for i, br := range base.Requests {
		reqs[i] = Request{Request: br, Session: br.Session}
	}
	return Scenario{
		Name:      base.Name,
		Requests:  reqs,
		MaxBatch:  base.MaxBatch,
		IncludeAV: base.IncludeAV,
		Sched:     base.Sched,
	}, nil
}

// DefaultScenario returns the stock fleet workload cmd/cluster and
// the examples use: sixteen Llama3-70B requests across four sessions
// at mixed prompt lengths, Poisson arrivals twice as dense as the
// single-node default (a fleet serves heavier traffic), per-node
// batch capacity four. scale divides the prompt-length range exactly
// like serving.DefaultScenario.
func DefaultScenario(scale int) (Scenario, error) {
	if scale <= 0 {
		scale = 1
	}
	minP, maxP := 512/scale, 2048/scale
	if minP < 16 {
		minP = 16
	}
	if maxP < minP {
		maxP = minP
	}
	return NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name:             fmt.Sprintf("cluster-default/scale%d", scale),
			Seed:             1,
			NumRequests:      16,
			Models:           []workload.ModelConfig{workload.Llama3_70B},
			MinPromptLen:     minP,
			MaxPromptLen:     maxP,
			MinDecode:        4,
			MaxDecode:        8,
			MeanInterArrival: 15000,
			MaxBatch:         4,
		},
		NumSessions: 4,
	})
}
