package cluster

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/serving"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// telemetryFleetScenario is the committed 2-node acceptance workload:
// the bursty overload population of the shedding tests with
// preemption armed and a session prefix cache, so a single recorded
// run exercises routing, shedding, retry/backoff, forwarding,
// preemption, prefix hits and the full prefill/decode/retire chain.
func telemetryFleetScenario(t *testing.T) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "telemetry/fleet", Seed: 9, NumRequests: 16,
			Models:       []workload.ModelConfig{workload.Llama3_70B},
			MinPromptLen: 16, MaxPromptLen: 48,
			MinDecode: 2, MaxDecode: 5,
			MeanInterArrival: 15000, MaxBatch: 3,
			Arrival:      serving.ArrivalConfig{Kind: serving.ArrivalBurst, Period: 80000, Duty: 0.4, Factor: 8},
			SessionDepth: 2,
			Sched: serving.SchedulerConfig{Policy: serving.SchedChunked, ChunkTokens: 16,
				KVCapTokens: 120, Preempt: serving.PreemptNewest, PrefixCacheTokens: 2048},
		},
		NumSessions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// recordedFleetRun runs the committed scenario on 2 nodes under
// shedding+forwarding with a collector attached and returns the
// metrics plus the rendered Perfetto trace bytes. The nomemo step
// cache keeps the MemoHit annotation out of the trace — the only
// event field that depends on fan-out timing (see
// telemetry.StripMemoHits) — so the bytes carry no determinism
// caveat.
func recordedFleetRun(t *testing.T, parallel int, mode serving.StepCacheMode) (*Metrics, []telemetry.Event, []byte) {
	t.Helper()
	col := telemetry.NewCollector(20000)
	m, err := Run(testConfig(), telemetryFleetScenario(t), 2, Policy{Kind: PrefixAffinity},
		Options{Parallel: parallel, StepCache: mode, Overload: shedConfig(), Telemetry: col})
	if err != nil {
		t.Fatal(err)
	}
	events := col.Events()
	var buf bytes.Buffer
	if err := telemetry.WritePerfetto(&buf, events); err != nil {
		t.Fatal(err)
	}
	return m, events, buf.Bytes()
}

// TestClusterTelemetryAcceptance is the PR's headline scenario: the
// committed 2-node overload run must show at least one preemption and
// one shed/retry as named spans in the Perfetto trace, with every
// event count reconciling exactly against the fleet metrics, and the
// trace bytes identical at serial and full fan-out widths.
func TestClusterTelemetryAcceptance(t *testing.T) {
	m, events, trace := recordedFleetRun(t, 1, serving.StepCacheNoMemo)

	var preempts, prefillSteps int64
	for _, nm := range m.PerNode {
		preempts += nm.Preemptions
		prefillSteps += nm.PrefillSteps
	}
	if preempts == 0 || m.Shed == 0 || m.Retries == 0 {
		t.Fatalf("committed scenario too tame: preempt=%d shed=%d retries=%d", preempts, m.Shed, m.Retries)
	}
	if m.PrefixHits == 0 {
		t.Fatalf("committed scenario produced no prefix hits")
	}

	// The overload-control story must be visible as spans in the UI.
	for _, span := range []string{`"preempt r`, `"shed r`, `"retry r`, `"forward r`} {
		if !bytes.Contains(trace, []byte(span)) {
			t.Errorf("perfetto trace has no %s… span", span)
		}
	}

	// Exact reconciliation: the trace is an accounting document, not a
	// best-effort log.
	counts := map[telemetry.Kind]int64{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	for _, c := range []struct {
		name string
		kind telemetry.Kind
		want int64
	}{
		{"shed", telemetry.KindShed, m.Shed},
		{"retry", telemetry.KindRetry, m.Retries},
		{"forward", telemetry.KindForward, m.Forwarded},
		{"drop", telemetry.KindDrop, m.Dropped},
		{"preempt", telemetry.KindPreempt, preempts},
		{"decode", telemetry.KindDecode, m.Tokens},
		{"prefill", telemetry.KindPrefill, prefillSteps},
		{"prefix-hit", telemetry.KindPrefixHit, m.PrefixHits},
		{"prefix-miss", telemetry.KindPrefixMiss, m.PrefixMisses},
		{"retire", telemetry.KindRetire, int64(m.Requests) - m.Dropped},
		// One route decision per dispatch attempt: every arrival plus
		// every backoff re-entry.
		{"route", telemetry.KindRoute, int64(m.Requests) + m.Retries},
	} {
		if counts[c.kind] != c.want {
			t.Errorf("%s events: %d, want %d (metrics counter)", c.name, counts[c.kind], c.want)
		}
	}

	// Byte-reproducibility: the full fan-out must render the very same
	// trace, not merely equivalent metrics.
	_, _, wide := recordedFleetRun(t, runtime.GOMAXPROCS(0), serving.StepCacheNoMemo)
	if !bytes.Equal(trace, wide) {
		t.Error("perfetto trace bytes differ between -parallel 1 and full fan-out")
	}
}

// TestClusterTelemetryMemoHitException pins the scope of the one
// determinism caveat: under the shared step memo, which steps replay
// depends on fan-out timing, so the MemoHit annotation may differ
// between widths — but after StripMemoHits the two event streams (and
// hence the exported bytes) must be identical.
func TestClusterTelemetryMemoHitException(t *testing.T) {
	_, narrow, _ := recordedFleetRun(t, 1, serving.StepCacheOn)
	_, wide, _ := recordedFleetRun(t, runtime.GOMAXPROCS(0), serving.StepCacheOn)
	telemetry.StripMemoHits(narrow)
	telemetry.StripMemoHits(wide)
	render := func(events []telemetry.Event) []byte {
		var buf bytes.Buffer
		if err := telemetry.WritePerfetto(&buf, events); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(narrow), render(wide)) {
		t.Error("memo-stripped traces differ between widths — nondeterminism beyond the MemoHit flag")
	}
}

// TestClusterTelemetryBitInert: attaching a collector to a fleet run
// must not change a single metric bit relative to the unrecorded run.
func TestClusterTelemetryBitInert(t *testing.T) {
	scn := telemetryFleetScenario(t)
	cfg := testConfig()
	opts := Options{Overload: shedConfig()}
	plain, err := Run(cfg, scn, 2, Policy{Kind: PrefixAffinity}, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Telemetry = telemetry.NewCollector(20000)
	recorded, err := Run(cfg, scn, 2, Policy{Kind: PrefixAffinity}, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain.StripStepCache()
	recorded.StripStepCache()
	if !reflect.DeepEqual(plain, recorded) {
		t.Error("recording changed the fleet metrics — the bit-inert contract is broken")
	}
}

// TestClusterTelemetryFaults: a recorded faulty run reconciles its
// fault events exactly against the fleet metrics — one node-down span
// per failure, one node-up per rejoin (failures minus the still-down
// permanent crash), one redispatch per recovered victim — and the
// trace bytes stay width-deterministic with faults in play.
func TestClusterTelemetryFaults(t *testing.T) {
	ft := FaultConfig{
		Crashes: []Crash{
			{Node: 1, At: 80000, Rejoin: 160000},
			{Node: 2, At: 120000}, // permanent: down through the horizon
		},
		DetectLatency: 5000,
	}
	run := func(parallel int) (*Metrics, []telemetry.Event, []byte) {
		col := telemetry.NewCollector(20000)
		m, err := Run(testConfig(), faultFleetScenario(t), 4, Policy{Kind: LeastOutstanding},
			Options{Parallel: parallel, StepCache: serving.StepCacheNoMemo, Faults: ft, Telemetry: col})
		if err != nil {
			t.Fatal(err)
		}
		events := col.Events()
		var buf bytes.Buffer
		if err := telemetry.WritePerfetto(&buf, events); err != nil {
			t.Fatal(err)
		}
		return m, events, buf.Bytes()
	}
	m, events, trace := run(1)
	if m.Failures != 2 || m.Redispatched == 0 {
		t.Fatalf("committed fault scenario too tame: failures=%d redispatched=%d", m.Failures, m.Redispatched)
	}
	counts := map[telemetry.Kind]int64{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	stillDown := int64(1) // node 2 never rejoins
	for _, c := range []struct {
		name string
		kind telemetry.Kind
		want int64
	}{
		{"node-down", telemetry.KindNodeDown, m.Failures},
		{"node-up", telemetry.KindNodeUp, m.Failures - stillDown},
		{"redispatch", telemetry.KindRedispatch, m.Redispatched},
		{"drop", telemetry.KindDrop, m.Dropped},
		{"retire", telemetry.KindRetire, int64(m.Requests) - m.Dropped},
	} {
		if counts[c.kind] != c.want {
			t.Errorf("%s events: %d, want %d (metrics counter)", c.name, counts[c.kind], c.want)
		}
	}
	for _, span := range []string{`"node-down"`, `"node-up"`, `"redispatch r`} {
		if !bytes.Contains(trace, []byte(span)) {
			t.Errorf("perfetto trace has no %s… span", span)
		}
	}
	_, _, wide := run(runtime.GOMAXPROCS(0))
	if !bytes.Equal(trace, wide) {
		t.Error("faulty perfetto trace bytes differ between -parallel 1 and full fan-out")
	}
}
