// Fleet-level prefix-cache tests: the ISSUE 7 acceptance scenario
// (session affinity with a prefix cache strictly beats
// least-outstanding on TTFT), the prefix-affinity router's observation
// and fallback semantics, parallel-width determinism with the cache
// on, and cache-off bit-identity on session-carrying workloads —
// including under preemption.

package cluster

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/serving"
)

// sessionFleetScenario is the committed session-heavy fleet workload
// of the acceptance test: eight 3-turn conversation sessions over 24
// requests, arrivals spaced so a session's turns rarely overlap (the
// regime where retained prefixes are actually reusable) while
// cross-session traffic keeps both nodes busy. On 2 nodes the eight
// session homes hash 4/4, so affinity routing is load-balanced and
// the TTFT comparison isolates prefix locality.
func sessionFleetScenario(t *testing.T, cacheTokens int64) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "sessions/fleet", Seed: 13, NumRequests: 24,
			MinPromptLen: 16, MaxPromptLen: 48,
			MinDecode: 2, MaxDecode: 4,
			MeanInterArrival: 60000, MaxBatch: 4,
			SessionDepth: 3,
			Sched: serving.SchedulerConfig{
				Policy: serving.SchedChunked, ChunkTokens: 16,
				PrefixCacheTokens: cacheTokens,
			},
		},
		NumSessions: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestAffinityPrefixBeatsLeastOutstandingTTFT is the acceptance test
// of ISSUE 7: on the committed session-heavy scenario with the prefix
// cache on, session-affinity routing strictly beats least-outstanding
// on TTFT p50 AND p95 — the home node holds the session's prefix, so
// follow-up turns skip most of their prefill, while least-outstanding
// migrates sessions between nodes and re-prefills their whole context.
// Prefix-affinity (the observing router) must do at least as well as
// the blind hash.
func TestAffinityPrefixBeatsLeastOutstandingTTFT(t *testing.T) {
	scn := sessionFleetScenario(t, 4096)
	cfg := bmaConfig()
	aff, err := Run(cfg, scn, 2, Policy{Kind: SessionAffinity}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pfx, err := Run(cfg, scn, 2, Policy{Kind: PrefixAffinity}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lot, err := Run(cfg, scn, 2, Policy{Kind: LeastOutstanding}, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if aff.TTFT.P50 >= lot.TTFT.P50 || aff.TTFT.P95 >= lot.TTFT.P95 {
		t.Errorf("affinity does not strictly beat least-outstanding: p50 %.0f vs %.0f, p95 %.0f vs %.0f",
			aff.TTFT.P50, lot.TTFT.P50, aff.TTFT.P95, lot.TTFT.P95)
	}
	if pfx.TTFT.P50 >= lot.TTFT.P50 || pfx.TTFT.P95 >= lot.TTFT.P95 {
		t.Errorf("prefix-affinity does not strictly beat least-outstanding: p50 %.0f vs %.0f, p95 %.0f vs %.0f",
			pfx.TTFT.P50, lot.TTFT.P50, pfx.TTFT.P95, lot.TTFT.P95)
	}
	if aff.PrefixHits <= lot.PrefixHits {
		t.Errorf("affinity hit %d prefixes, least-outstanding %d — locality earned nothing", aff.PrefixHits, lot.PrefixHits)
	}
	if aff.PrefillTokensSaved <= lot.PrefillTokensSaved {
		t.Errorf("affinity saved %d prefill tokens, least-outstanding %d", aff.PrefillTokensSaved, lot.PrefillTokensSaved)
	}
	// All routers decode the same output; reuse only removes prefill.
	if aff.Tokens != lot.Tokens || pfx.Tokens != lot.Tokens {
		t.Errorf("routers decoded different outputs: %d / %d / %d tokens", aff.Tokens, pfx.Tokens, lot.Tokens)
	}

	// Fleet aggregation is the sum over nodes, and the per-request
	// PrefixTokens account for every saved token.
	var hits, misses, saved int64
	for _, nm := range aff.PerNode {
		hits += nm.PrefixHits
		misses += nm.PrefixMisses
		saved += nm.PrefillTokensSaved
	}
	if aff.PrefixHits != hits || aff.PrefixMisses != misses || aff.PrefillTokensSaved != saved {
		t.Errorf("fleet prefix rollup %d/%d/%d != per-node sums %d/%d/%d",
			aff.PrefixHits, aff.PrefixMisses, aff.PrefillTokensSaved, hits, misses, saved)
	}
	var perReq int64
	for _, rs := range aff.PerRequest {
		perReq += int64(rs.PrefixTokens)
	}
	if perReq != aff.PrefillTokensSaved {
		t.Errorf("per-request PrefixTokens sum %d != fleet PrefillTokensSaved %d", perReq, aff.PrefillTokensSaved)
	}
	if want := float64(hits) / float64(hits+misses); aff.PrefixHitRate != want {
		t.Errorf("fleet hit rate %v, want %v", aff.PrefixHitRate, want)
	}
}

// TestPrefixAffinityRouting pins the observing router's semantics:
// pick follows the largest cached-prefix observation (ties to the
// lowest index), and with nothing cached anywhere it falls back to
// the session home hash — so with the cache off the policy is
// decision-for-decision identical to session-affinity, which the
// run-level comparison asserts bit for bit.
func TestPrefixAffinityRouting(t *testing.T) {
	rt := newRouter(Policy{Kind: PrefixAffinity}, 4)
	req := Request{Session: 6}
	if got := rt.pick(req, nil, nil, []int64{0, 120, 80, 120}, nil); got != 1 {
		t.Errorf("pick with cached observations = node %d, want 1 (max cached, lowest index)", got)
	}
	if got, home := rt.pick(req, nil, nil, make([]int64, 4), nil), sessionNode(6, 4); got != home {
		t.Errorf("pick with nothing cached = node %d, want the session home %d", got, home)
	}

	scn := sessionFleetScenario(t, 0) // cache off: every observation is zero
	pa, err := Run(bmaConfig(), scn, 2, Policy{Kind: PrefixAffinity}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := Run(bmaConfig(), scn, 2, Policy{Kind: SessionAffinity}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pa.StripStepCache()
	sa.StripStepCache()
	pa.Policy = sa.Policy // the only legitimate difference
	if !reflect.DeepEqual(pa, sa) {
		t.Error("cache-off prefix-affinity diverges from session-affinity")
	}
}

// TestClusterPrefixParallelDeterminism: cache-on fleets are
// bit-identical across node-fan-out widths 1 and GOMAXPROCS for the
// routers the acceptance comparison uses — the TTFT-vs-router curves
// cannot depend on -parallel.
func TestClusterPrefixParallelDeterminism(t *testing.T) {
	scn := sessionFleetScenario(t, 4096)
	wide := runtime.GOMAXPROCS(0)
	for _, pol := range []Policy{{Kind: SessionAffinity}, {Kind: PrefixAffinity}, {Kind: LeastOutstanding}} {
		serial, err := Run(bmaConfig(), scn, 2, pol, Options{Parallel: 1, Memo: serving.NewStepMemo()})
		if err != nil {
			t.Fatalf("%s serial: %v", pol, err)
		}
		par, err := Run(bmaConfig(), scn, 2, pol, Options{Parallel: wide, Memo: serving.NewStepMemo()})
		if err != nil {
			t.Fatalf("%s parallel: %v", pol, err)
		}
		serial.StripStepCache()
		par.StripStepCache()
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%s: cache-on fleet metrics differ between widths 1 and %d", pol, wide)
		}
	}
}

// TestClusterPrefixOffInert: with PrefixCacheTokens == 0 the session
// fields are inert at the fleet level even under KV pressure and
// preemption — stripping Session/PrefixLen from every request (the
// pre-session workload shape) leaves the cluster metrics bit-identical.
// Together with the unchanged PR 4/5/6 golden suites this is the
// cache-off bit-identity guarantee.
func TestClusterPrefixOffInert(t *testing.T) {
	scn := sessionFleetScenario(t, 0)
	scn.Sched.KVCapTokens = 200
	scn.Sched.Preempt = serving.PreemptNewest
	scn.Requests = append([]Request(nil), scn.Requests...)
	for i := range scn.Requests {
		scn.Requests[i].ArrivalCycle = 0 // closed batch: force KV pressure
	}
	sortRequests(scn.Requests)

	stripped := scn
	stripped.Requests = append([]Request(nil), scn.Requests...)
	for i := range stripped.Requests {
		stripped.Requests[i].Session = 0
		stripped.Requests[i].Request.Session = 0
		stripped.Requests[i].Request.PrefixLen = 0
	}

	for _, pol := range []Policy{{Kind: RoundRobin}, {Kind: LeastOutstanding}} {
		with, err := Run(bmaConfig(), scn, 2, pol, Options{})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		var preempted int64
		for _, nm := range with.PerNode {
			preempted += nm.Preemptions
		}
		if preempted == 0 {
			t.Fatalf("%s: scenario preempted nothing — the test exercises no KV pressure", pol)
		}
		without, err := Run(bmaConfig(), stripped, 2, pol, Options{})
		if err != nil {
			t.Fatalf("%s stripped: %v", pol, err)
		}
		with.StripStepCache()
		without.StripStepCache()
		// PerRequest.Session is a pure echo of the workload's session
		// labels, so it legitimately differs; zero it before asserting the
		// behavioural metrics are identical.
		with.PerRequest = append([]RequestStats(nil), with.PerRequest...)
		for i := range with.PerRequest {
			with.PerRequest[i].Session = 0
		}
		if !reflect.DeepEqual(with, without) {
			t.Errorf("%s: cache-off metrics depend on Session/PrefixLen under preemption", pol)
		}
	}
}
