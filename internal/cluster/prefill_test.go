package cluster

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/arbiter"
	"repro/internal/goldentest"
	"repro/internal/serving"
	"repro/internal/sim"
)

// fleetScenario draws the fixed fleet population of the golden and
// prefill cluster tests.
func fleetScenario(t *testing.T, sched serving.SchedulerConfig) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "golden/fleet", Seed: 7, NumRequests: 10,
			MinPromptLen: 16, MaxPromptLen: 48,
			MinDecode: 2, MaxDecode: 4,
			MeanInterArrival: 4000, MaxBatch: 2,
			Sched: sched,
		},
		NumSessions: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func bmaConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	cfg.Throttle = "dynmg"
	cfg.Arbiter = arbiter.BMA
	return cfg
}

// fleetGoldenRow is the pinned slice of a decode-only fleet run: the
// fields the golden file commits, byte-exact (see internal/goldentest).
type fleetGoldenRow struct {
	Router    string  `json:"router"`
	Makespan  int64   `json:"makespan"`
	Tokens    int64   `json:"tokens"`
	E2EP50    float64 `json:"e2e_latency_p50"`
	E2EP99    float64 `json:"e2e_latency_p99"`
	QueueP99  float64 `json:"queue_delay_p99"`
	Imbalance float64 `json:"load_imbalance"`
}

// TestClusterDecodeOnlyGolden pins the acceptance criterion at the
// fleet level: the decode-only scheduler reproduces the pre-prefill
// ServeCluster metrics bit for bit. The golden rows in testdata were
// captured from cluster.Run on this exact (scenario, config) at the
// commit BEFORE the prefill subsystem was introduced, for every
// pre-existing router policy (the original literal values are
// preserved verbatim in the JSON).
func TestClusterDecodeOnlyGolden(t *testing.T) {
	pols := []Policy{
		{Kind: RoundRobin},
		{Kind: LeastOutstanding},
		{Kind: PowerOfTwo},
		{Kind: SessionAffinity},
	}
	var rows []fleetGoldenRow
	for _, pol := range pols {
		m, err := Run(bmaConfig(), fleetScenario(t, serving.SchedulerConfig{}), 2, pol, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, fleetGoldenRow{
			Router:   pol.String(),
			Makespan: m.Makespan, Tokens: m.Tokens,
			E2EP50: m.E2ELatency.P50, E2EP99: m.E2ELatency.P99,
			QueueP99: m.QueueDelay.P99, Imbalance: m.LoadImbalance,
		})
	}
	goldentest.Compare(t, "testdata/fleet_decode_only.golden.json", rows)
}

// TestTTFTPressureDegeneratesDecodeOnly: with a decode-only fleet the
// prefill backlog is zero everywhere, so the ttft-pressure router is
// decision-for-decision identical to least-outstanding.
func TestTTFTPressureDegeneratesDecodeOnly(t *testing.T) {
	scn := fleetScenario(t, serving.SchedulerConfig{})
	lot, err := Run(bmaConfig(), scn, 3, Policy{Kind: LeastOutstanding}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ltp, err := Run(bmaConfig(), scn, 3, Policy{Kind: LeastTTFTPressure}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lot.PerRequest {
		if lot.PerRequest[i].Node != ltp.PerRequest[i].Node {
			t.Fatalf("request %d routed to %d by least-outstanding but %d by ttft-pressure",
				i, lot.PerRequest[i].Node, ltp.PerRequest[i].Node)
		}
	}
	lot.StripStepCache()
	ltp.StripStepCache()
	if lot.Makespan != ltp.Makespan || lot.E2ELatency != ltp.E2ELatency {
		t.Error("decode-only fleets diverged between least-outstanding and ttft-pressure")
	}
}

// TestClusterPrefillParallelDeterminism runs prefill-scheduled fleets
// (chunked and prefill-first) under every router at node-fan-out
// widths 1 and GOMAXPROCS: metrics must be bit-identical — the
// chunked-vs-prefill-first comparison cannot depend on -parallel.
func TestClusterPrefillParallelDeterminism(t *testing.T) {
	scheds := []serving.SchedulerConfig{
		{Policy: serving.SchedChunked, ChunkTokens: 16, KVCapTokens: 128},
		{Policy: serving.SchedPrefillFirst},
	}
	for _, sched := range scheds {
		scn := fleetScenario(t, sched)
		for _, pol := range Policies() {
			serial, err := Run(bmaConfig(), scn, 3, pol, Options{Parallel: 1, Memo: serving.NewStepMemo()})
			if err != nil {
				t.Fatalf("%v/%s: %v", sched.Policy, pol, err)
			}
			wide, err := Run(bmaConfig(), scn, 3, pol, Options{Parallel: runtime.GOMAXPROCS(0), Memo: serving.NewStepMemo()})
			if err != nil {
				t.Fatalf("%v/%s: %v", sched.Policy, pol, err)
			}
			serial.StripStepCache()
			wide.StripStepCache()
			if !reflect.DeepEqual(serial, wide) {
				t.Errorf("%v/%s: fleet metrics differ between widths 1 and %d",
					sched.Policy, pol, runtime.GOMAXPROCS(0))
			}
		}
	}
}

// TestClusterPrefillTTFT: a prefill-scheduled fleet reports finite,
// internally consistent TTFT percentiles, every request prefills its
// whole prompt on its node, and the ttft-pressure router observes
// backlog (it runs without error and keeps every node's prefill total
// equal to the prompts routed there).
func TestClusterPrefillTTFT(t *testing.T) {
	scn := fleetScenario(t, serving.SchedulerConfig{Policy: serving.SchedChunked, ChunkTokens: 16})
	m, err := Run(bmaConfig(), scn, 2, Policy{Kind: LeastTTFTPressure}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(m.TTFT.P50 > 0 && m.TTFT.P95 >= m.TTFT.P50 && m.TTFT.P99 >= m.TTFT.P95 && m.TTFT.Max >= m.TTFT.P99) {
		t.Errorf("TTFT percentiles inconsistent: %+v", m.TTFT)
	}
	var wantPrefill [2]int64
	for _, rs := range m.PerRequest {
		if rs.TTFT <= 0 || rs.TTFT > rs.E2ELatency {
			t.Errorf("request %d: TTFT %d outside (0, e2e %d]", rs.ID, rs.TTFT, rs.E2ELatency)
		}
		wantPrefill[rs.Node] += int64(rs.FinalKVLen - rs.Tokens)
	}
	for i, nm := range m.PerNode {
		if nm.PrefillTokens != wantPrefill[i] {
			t.Errorf("node %d prefilled %d tokens, want %d (sum of routed prompts)", i, nm.PrefillTokens, wantPrefill[i])
		}
	}
}
