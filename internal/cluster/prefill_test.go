package cluster

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/arbiter"
	"repro/internal/serving"
	"repro/internal/sim"
)

// fleetScenario draws the fixed fleet population of the golden and
// prefill cluster tests.
func fleetScenario(t *testing.T, sched serving.SchedulerConfig) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "golden/fleet", Seed: 7, NumRequests: 10,
			MinPromptLen: 16, MaxPromptLen: 48,
			MinDecode: 2, MaxDecode: 4,
			MeanInterArrival: 4000, MaxBatch: 2,
			Sched: sched,
		},
		NumSessions: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func bmaConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	cfg.Throttle = "dynmg"
	cfg.Arbiter = arbiter.BMA
	return cfg
}

// TestClusterDecodeOnlyGolden pins the acceptance criterion at the
// fleet level: the decode-only scheduler reproduces the pre-prefill
// ServeCluster metrics bit for bit. The golden numbers were captured
// by running cluster.Run on this exact (scenario, config) at the
// commit BEFORE the prefill subsystem was introduced, for every
// pre-existing router policy.
func TestClusterDecodeOnlyGolden(t *testing.T) {
	golden := []struct {
		pol      Policy
		makespan int64
		tokens   int64
		e2eP50   float64
		e2eP99   float64
		qP99     float64
		imb      float64
	}{
		{Policy{Kind: RoundRobin}, 70566, 29, 28747.5, 40415.58, 16716.77, 1.0526315789473684},
		{Policy{Kind: LeastOutstanding}, 76536, 29, 26315.5, 45848.28, 25643.870000000003, 1.0526315789473684},
		{Policy{Kind: PowerOfTwo}, 69926, 29, 22294.5, 45841.21, 26800.910000000003, 1.2307692307692308},
		{Policy{Kind: SessionAffinity}, 77752, 29, 30643, 57938.25, 39004.99, 1.7173913043478262},
	}
	for _, g := range golden {
		m, err := Run(bmaConfig(), fleetScenario(t, serving.SchedulerConfig{}), 2, g.pol, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Makespan != g.makespan || m.Tokens != g.tokens {
			t.Errorf("%s: makespan/tokens %d/%d, golden %d/%d", g.pol, m.Makespan, m.Tokens, g.makespan, g.tokens)
		}
		if m.E2ELatency.P50 != g.e2eP50 || m.E2ELatency.P99 != g.e2eP99 {
			t.Errorf("%s: e2e p50/p99 %v/%v, golden %v/%v", g.pol, m.E2ELatency.P50, m.E2ELatency.P99, g.e2eP50, g.e2eP99)
		}
		if m.QueueDelay.P99 != g.qP99 {
			t.Errorf("%s: queue p99 %v, golden %v", g.pol, m.QueueDelay.P99, g.qP99)
		}
		if m.LoadImbalance != g.imb {
			t.Errorf("%s: imbalance %v, golden %v", g.pol, m.LoadImbalance, g.imb)
		}
	}
}

// TestTTFTPressureDegeneratesDecodeOnly: with a decode-only fleet the
// prefill backlog is zero everywhere, so the ttft-pressure router is
// decision-for-decision identical to least-outstanding.
func TestTTFTPressureDegeneratesDecodeOnly(t *testing.T) {
	scn := fleetScenario(t, serving.SchedulerConfig{})
	lot, err := Run(bmaConfig(), scn, 3, Policy{Kind: LeastOutstanding}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ltp, err := Run(bmaConfig(), scn, 3, Policy{Kind: LeastTTFTPressure}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lot.PerRequest {
		if lot.PerRequest[i].Node != ltp.PerRequest[i].Node {
			t.Fatalf("request %d routed to %d by least-outstanding but %d by ttft-pressure",
				i, lot.PerRequest[i].Node, ltp.PerRequest[i].Node)
		}
	}
	lot.StripStepCache()
	ltp.StripStepCache()
	if lot.Makespan != ltp.Makespan || lot.E2ELatency != ltp.E2ELatency {
		t.Error("decode-only fleets diverged between least-outstanding and ttft-pressure")
	}
}

// TestClusterPrefillParallelDeterminism runs prefill-scheduled fleets
// (chunked and prefill-first) under every router at node-fan-out
// widths 1 and GOMAXPROCS: metrics must be bit-identical — the
// chunked-vs-prefill-first comparison cannot depend on -parallel.
func TestClusterPrefillParallelDeterminism(t *testing.T) {
	scheds := []serving.SchedulerConfig{
		{Policy: serving.SchedChunked, ChunkTokens: 16, KVCapTokens: 128},
		{Policy: serving.SchedPrefillFirst},
	}
	for _, sched := range scheds {
		scn := fleetScenario(t, sched)
		for _, pol := range Policies() {
			serial, err := Run(bmaConfig(), scn, 3, pol, Options{Parallel: 1, Memo: serving.NewStepMemo()})
			if err != nil {
				t.Fatalf("%v/%s: %v", sched.Policy, pol, err)
			}
			wide, err := Run(bmaConfig(), scn, 3, pol, Options{Parallel: runtime.GOMAXPROCS(0), Memo: serving.NewStepMemo()})
			if err != nil {
				t.Fatalf("%v/%s: %v", sched.Policy, pol, err)
			}
			serial.StripStepCache()
			wide.StripStepCache()
			if !reflect.DeepEqual(serial, wide) {
				t.Errorf("%v/%s: fleet metrics differ between widths 1 and %d",
					sched.Policy, pol, runtime.GOMAXPROCS(0))
			}
		}
	}
}

// TestClusterPrefillTTFT: a prefill-scheduled fleet reports finite,
// internally consistent TTFT percentiles, every request prefills its
// whole prompt on its node, and the ttft-pressure router observes
// backlog (it runs without error and keeps every node's prefill total
// equal to the prompts routed there).
func TestClusterPrefillTTFT(t *testing.T) {
	scn := fleetScenario(t, serving.SchedulerConfig{Policy: serving.SchedChunked, ChunkTokens: 16})
	m, err := Run(bmaConfig(), scn, 2, Policy{Kind: LeastTTFTPressure}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(m.TTFT.P50 > 0 && m.TTFT.P95 >= m.TTFT.P50 && m.TTFT.P99 >= m.TTFT.P95 && m.TTFT.Max >= m.TTFT.P99) {
		t.Errorf("TTFT percentiles inconsistent: %+v", m.TTFT)
	}
	var wantPrefill [2]int64
	for _, rs := range m.PerRequest {
		if rs.TTFT <= 0 || rs.TTFT > rs.E2ELatency {
			t.Errorf("request %d: TTFT %d outside (0, e2e %d]", rs.ID, rs.TTFT, rs.E2ELatency)
		}
		wantPrefill[rs.Node] += int64(rs.FinalKVLen - rs.Tokens)
	}
	for i, nm := range m.PerNode {
		if nm.PrefillTokens != wantPrefill[i] {
			t.Errorf("node %d prefilled %d tokens, want %d (sum of routed prompts)", i, nm.PrefillTokens, wantPrefill[i])
		}
	}
}
