// The request router: pluggable load-balancing policies deciding
// which node serves each arriving request. Every policy is
// deterministic — stateful ones (round-robin's cursor, power-of-two's
// sampling stream) evolve from explicit seeds only, so a cluster run
// is bit-reproducible.

package cluster

import (
	"fmt"

	"repro/internal/serving"
)

// Kind enumerates the router policies.
type Kind int

const (
	// RoundRobin dispatches request k to node k mod N — the
	// state-oblivious baseline.
	RoundRobin Kind = iota
	// LeastOutstanding dispatches to the node with the fewest
	// outstanding decode tokens (ties to the lowest node index) — the
	// full-information greedy policy.
	LeastOutstanding
	// PowerOfTwo samples two nodes from a fixed-seed splitmix64 stream
	// and dispatches to the less-loaded of the pair — the classic
	// two-choices tradeoff between probe cost and balance.
	PowerOfTwo
	// SessionAffinity hashes the request's session to a node, so all
	// requests of one session land on the same node — modelling
	// KV/prefix-cache locality at the cost of load imbalance.
	SessionAffinity
	// LeastTTFTPressure dispatches to the node with the least
	// time-to-first-token pressure: outstanding decode tokens PLUS the
	// prefill backlog (un-prefilled prompt tokens the node still owes).
	// Under a prefill scheduler a node buried in prompt work delays
	// every new request's first token even when its decode load is
	// light; this policy sees that, LeastOutstanding does not. With the
	// decode-only scheduler the backlog is zero everywhere and the
	// policy degenerates to LeastOutstanding.
	LeastTTFTPressure
	// PrefixAffinity dispatches to the node whose session prefix cache
	// retains the most KV for the request's session (ties to the lowest
	// node index), falling back to the SessionAffinity home-node hash
	// when no node holds anything — so a session's first turn lands on
	// its home node and later turns find the prefix there. With the
	// prefix cache off every observation is zero and the policy
	// degenerates to SessionAffinity exactly.
	PrefixAffinity
)

// String returns the canonical policy name ParsePolicy accepts.
func (k Kind) String() string {
	switch k {
	case RoundRobin:
		return "round-robin"
	case LeastOutstanding:
		return "least-outstanding"
	case PowerOfTwo:
		return "p2c"
	case SessionAffinity:
		return "affinity"
	case LeastTTFTPressure:
		return "ttft-pressure"
	case PrefixAffinity:
		return "prefix-affinity"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Policy is one router configuration: the policy kind plus the seed
// of its sampling stream (PowerOfTwo only; the other kinds ignore
// it).
type Policy struct {
	Kind Kind
	Seed uint64
}

// String names the policy; the seed is shown only when it matters.
func (p Policy) String() string {
	if p.Kind == PowerOfTwo && p.Seed != 0 {
		return fmt.Sprintf("%s/seed%d", p.Kind, p.Seed)
	}
	return p.Kind.String()
}

// ParsePolicy reads a router policy name: "round-robin" (or "rr"),
// "least-outstanding" (or "lot"), "p2c" (or "power-of-two"),
// "affinity" (or "session-affinity"), "ttft-pressure" (or "ltp"),
// "prefix-affinity" (or "pfx").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "round-robin", "rr":
		return Policy{Kind: RoundRobin}, nil
	case "least-outstanding", "lot":
		return Policy{Kind: LeastOutstanding}, nil
	case "p2c", "power-of-two":
		return Policy{Kind: PowerOfTwo}, nil
	case "affinity", "session-affinity":
		return Policy{Kind: SessionAffinity}, nil
	case "ttft-pressure", "ltp", "least-ttft-pressure":
		return Policy{Kind: LeastTTFTPressure}, nil
	case "prefix-affinity", "pfx":
		return Policy{Kind: PrefixAffinity}, nil
	}
	return Policy{}, fmt.Errorf("cluster: unknown router policy %q (want round-robin, least-outstanding, p2c, affinity, ttft-pressure or prefix-affinity)", s)
}

// Policies returns the six stock router policies in stable order.
func Policies() []Policy {
	return []Policy{
		{Kind: RoundRobin},
		{Kind: LeastOutstanding},
		{Kind: PowerOfTwo},
		{Kind: SessionAffinity},
		{Kind: LeastTTFTPressure},
		{Kind: PrefixAffinity},
	}
}

// router is the dispatch state for one cluster run.
type router struct {
	pol   Policy
	nodes int
	rr    int          // round-robin cursor
	rnd   serving.Rand // power-of-two sampling stream
	alive []int        // health-exclusion scratch (PowerOfTwo)
}

func newRouter(pol Policy, nodes int) *router {
	return &router{pol: pol, nodes: nodes, rnd: serving.Rand{State: pol.Seed}}
}

// pick chooses the node for one arriving request. outstanding[i] is
// node i's outstanding decode tokens at the request's arrival cycle;
// backlog[i] is its prefill backlog (un-prefilled prompt tokens, zero
// under the decode-only scheduler); cached[i] is the KV tokens node
// i's prefix cache retains for the request's session (nil unless the
// policy is PrefixAffinity — no other policy observes it).
//
// excluded is the failure detector's view: excluded[i] true means node
// i is known dead and every policy must route around it. nil (faults
// off, or blind routing) is the exact pre-fault decision procedure.
// When every node is excluded the mask is ignored — the dispatch is
// lost on arrival anyway and re-enters via the backoff path.
func (r *router) pick(req Request, outstanding, backlog, cached []int64, excluded []bool) int {
	if excluded != nil {
		any := false
		for _, x := range excluded {
			if !x {
				any = true
				break
			}
		}
		if !any {
			excluded = nil
		}
	}
	ok := func(i int) bool { return excluded == nil || !excluded[i] }
	switch r.pol.Kind {
	case RoundRobin:
		for {
			n := r.rr % r.nodes
			r.rr++
			if ok(n) {
				return n
			}
		}
	case LeastOutstanding:
		best := -1
		for i := 0; i < r.nodes; i++ {
			if !ok(i) {
				continue
			}
			if best < 0 || outstanding[i] < outstanding[best] {
				best = i
			}
		}
		return best
	case PowerOfTwo:
		if excluded != nil {
			// Sample the two choices from the live subset (index order),
			// so the stream keeps advancing two draws per decision.
			r.alive = r.alive[:0]
			for i := 0; i < r.nodes; i++ {
				if ok(i) {
					r.alive = append(r.alive, i)
				}
			}
			a := r.alive[r.rnd.Intn(len(r.alive))]
			b := r.alive[r.rnd.Intn(len(r.alive))]
			if outstanding[b] < outstanding[a] || (outstanding[b] == outstanding[a] && b < a) {
				return b
			}
			return a
		}
		a := r.rnd.Intn(r.nodes)
		b := r.rnd.Intn(r.nodes)
		if outstanding[b] < outstanding[a] || (outstanding[b] == outstanding[a] && b < a) {
			return b
		}
		return a
	case SessionAffinity:
		n := sessionNode(req.Session, r.nodes)
		for !ok(n) {
			// The home node is down: probe upward so the session lands on
			// a stable fallback until the home rejoins.
			n = (n + 1) % r.nodes
		}
		return n
	case LeastTTFTPressure:
		best := -1
		for i := 0; i < r.nodes; i++ {
			if !ok(i) {
				continue
			}
			if best < 0 || outstanding[i]+backlog[i] < outstanding[best]+backlog[best] {
				best = i
			}
		}
		return best
	case PrefixAffinity:
		best, bestTok := -1, int64(0)
		for i, c := range cached {
			if ok(i) && c > bestTok {
				best, bestTok = i, c
			}
		}
		if best >= 0 {
			return best
		}
		n := sessionNode(req.Session, r.nodes)
		for !ok(n) {
			n = (n + 1) % r.nodes
		}
		return n
	}
	return 0
}

// sessionNode hashes a session to its home node with one splitmix64
// finalisation step — stable across runs and node orderings.
func sessionNode(session, nodes int) int {
	h := serving.Rand{State: uint64(session)}
	return int(h.Uint64() % uint64(nodes))
}
