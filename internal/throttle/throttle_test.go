package throttle

import (
	"testing"
	"testing/quick"
)

// fakeSignals builds a Signals whose values are driven by the test.
type fakeSignals struct {
	stall, slices int64
	mem, idle     []int64
	progress      []int64
}

func (f *fakeSignals) signals(numCores, maxWindows int) *Signals {
	return &Signals{
		NumCores:    numCores,
		MaxWindows:  maxWindows,
		CacheStall:  func() int64 { return f.stall },
		SliceCycles: func() int64 { return f.slices },
		CoreMem:     func(c int) int64 { return f.mem[c] },
		CoreIdle:    func(c int) int64 { return f.idle[c] },
		Progress:    func(c int) int64 { return f.progress[c] },
	}
}

func newFake(n int) *fakeSignals {
	return &fakeSignals{
		mem:      make([]int64, n),
		idle:     make([]int64, n),
		progress: make([]int64, n),
	}
}

func TestParseName(t *testing.T) {
	for _, name := range []string{"none", "dyncta", "lcs", "dynmg", "static:2"} {
		c, err := ParseName(name, 16, 4)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", name, err)
		}
		if c.Name() == "" {
			t.Fatalf("empty name for %q", name)
		}
	}
	if _, err := ParseName("bogus", 16, 4); err == nil {
		t.Fatal("bogus policy accepted")
	}
	// static clamps to [1, maxWindows].
	c, _ := ParseName("static:99", 16, 4)
	if c.MaxTB(0) != 4 {
		t.Fatalf("static:99 clamped to %d", c.MaxTB(0))
	}
	c, _ = ParseName("static:0", 16, 4)
	if c.MaxTB(0) != 1 {
		t.Fatalf("static:0 clamped to %d", c.MaxTB(0))
	}
}

func TestNone(t *testing.T) {
	c := NewNone(16, 4)
	c.Tick(0, nil)
	for core := 0; core < 16; core++ {
		if c.MaxTB(core) != 4 {
			t.Fatal("none must not throttle")
		}
	}
}

func TestClassifyContention(t *testing.T) {
	p := DefaultDynMGParams()
	cases := []struct {
		tcs  float64
		want Contention
	}{
		{0.0, ContentionLow},
		{p.TCSLow - 0.001, ContentionLow},
		{p.TCSLow, ContentionNormal},
		{p.TCSNormal - 0.001, ContentionNormal},
		{p.TCSNormal, ContentionHigh},
		{p.TCSHigh - 0.001, ContentionHigh},
		{p.TCSHigh, ContentionExtreme},
		{1.0, ContentionExtreme},
	}
	for _, c := range cases {
		if got := p.ClassifyContention(c.tcs); got != c.want {
			t.Errorf("Classify(%v)=%v want %v", c.tcs, got, c.want)
		}
	}
}

// TestGearAlgorithm1 walks Algorithm 1: high -> +1, low -> -1,
// extreme -> +2 (saturating).
func TestGearAlgorithm1(t *testing.T) {
	p := DefaultDynMGParams()
	d := NewDynMG(16, 4, p)
	f := newFake(16)
	sig := f.signals(16, 4)

	step := func(tcs float64) {
		f.slices += 1000
		f.stall += int64(tcs * 1000)
		// Advance time past one sampling period.
		d.lastSample = 0
		d.samplePeriodUpdate(sig)
	}

	// High contention ratchets up one gear per period.
	step((p.TCSNormal + p.TCSHigh) / 2)
	if d.Gear() != 1 {
		t.Fatalf("gear=%d after one high period", d.Gear())
	}
	// Extreme adds two.
	step(p.TCSHigh + 0.1)
	if d.Gear() != 3 {
		t.Fatalf("gear=%d after extreme", d.Gear())
	}
	// Extreme at gear 3 saturates at max.
	step(p.TCSHigh + 0.1)
	if d.Gear() != p.MaxGear {
		t.Fatalf("gear=%d want max %d", d.Gear(), p.MaxGear)
	}
	step(p.TCSHigh + 0.1)
	if d.Gear() != p.MaxGear {
		t.Fatalf("gear exceeded max: %d", d.Gear())
	}
	// Low contention steps down.
	step(p.TCSLow / 2)
	if d.Gear() != p.MaxGear-1 {
		t.Fatalf("gear=%d after low", d.Gear())
	}
	// Normal holds.
	step((p.TCSLow + p.TCSNormal) / 2)
	if d.Gear() != p.MaxGear-1 {
		t.Fatalf("gear=%d after normal, want hold", d.Gear())
	}
	// Low never goes below zero.
	for i := 0; i < 10; i++ {
		step(0)
	}
	if d.Gear() != 0 {
		t.Fatalf("gear=%d want 0", d.Gear())
	}
}

func TestDynMGThrottlesFastestCores(t *testing.T) {
	p := DefaultDynMGParams()
	d := NewDynMG(8, 4, p)
	f := newFake(8)
	sig := f.signals(8, 4)

	// Cores 6 and 7 are the fastest.
	for c := 0; c < 8; c++ {
		f.progress[c] = int64(c * 100)
	}
	// Drive to gear 2 (1/4 of 8 cores = 2 throttled).
	f.slices, f.stall = 1000, 600 // extreme
	d.lastSample = 0
	d.samplePeriodUpdate(sig)
	if d.Gear() != 2 {
		t.Fatalf("gear=%d want 2", d.Gear())
	}
	if !d.throttled[7] || !d.throttled[6] {
		t.Fatalf("fastest cores not throttled: %v", d.throttled)
	}
	if d.throttled[0] || d.throttled[1] {
		t.Fatalf("slow cores throttled: %v", d.throttled)
	}
	// Newly throttled cores clamp immediately.
	if d.MaxTB(7) != 1 {
		t.Fatalf("throttled core maxTB=%d want 1", d.MaxTB(7))
	}
	if d.MaxTB(0) != 4 {
		t.Fatalf("unthrottled core maxTB=%d want 4", d.MaxTB(0))
	}
}

func TestDynMGSubPeriodRecovery(t *testing.T) {
	p := DefaultDynMGParams()
	d := NewDynMG(4, 4, p)
	f := newFake(4)
	sig := f.signals(4, 4)
	// Throttle core 0 manually.
	d.throttled[0] = true
	d.maxTB[0] = 1
	// Core 0 over-idles: C_idle above bound raises max_tb.
	f.idle[0] = p.CIdleUpper + 10
	d.subPeriodUpdate(sig)
	if d.maxTB[0] != 2 {
		t.Fatalf("idle throttled core did not recover: %d", d.maxTB[0])
	}
	// Unthrottled cores drift back to max one step per sub-period.
	d.throttled[1] = false
	d.maxTB[1] = 2
	d.subPeriodUpdate(sig)
	if d.maxTB[1] != 3 {
		t.Fatalf("unthrottled recovery: %d", d.maxTB[1])
	}
}

func TestDynMGInCoreCmemRule(t *testing.T) {
	p := DefaultDynMGParams()
	d := NewDynMG(2, 4, p)
	f := newFake(2)
	sig := f.signals(2, 4)
	d.throttled[0] = true
	d.maxTB[0] = 3
	// C_mem above upper bound: reduce.
	f.mem[0] = p.CMemUpper + 1
	d.subPeriodUpdate(sig)
	if d.maxTB[0] != 2 {
		t.Fatalf("maxTB=%d want 2", d.maxTB[0])
	}
	// C_mem below lower bound: raise.
	f.mem[0] += p.CMemLower - 1
	d.subPeriodUpdate(sig)
	if d.maxTB[0] != 3 {
		t.Fatalf("maxTB=%d want 3", d.maxTB[0])
	}
	// Never below 1.
	d.maxTB[0] = 1
	f.mem[0] += p.CMemUpper + 100
	d.subPeriodUpdate(sig)
	if d.maxTB[0] != 1 {
		t.Fatalf("maxTB=%d want 1 floor", d.maxTB[0])
	}
}

func TestDYNCTAAppliesToAllCores(t *testing.T) {
	p := DefaultDYNCTAParams()
	d := NewDYNCTA(4, 4, p)
	f := newFake(4)
	sig := f.signals(4, 4)
	for c := 0; c < 4; c++ {
		f.mem[c] = p.CMemUpper + 100
	}
	d.Tick(p.SamplingPeriod, sig)
	for c := 0; c < 4; c++ {
		if d.MaxTB(c) != 3 {
			t.Fatalf("core %d maxTB=%d want 3", c, d.MaxTB(c))
		}
	}
	// Below period boundary: no change.
	for c := 0; c < 4; c++ {
		f.mem[c] += p.CMemUpper + 100
	}
	d.Tick(p.SamplingPeriod+1, sig)
	if d.MaxTB(0) != 3 {
		t.Fatal("DYNCTA adjusted mid-period")
	}
	// Idle backoff raises.
	f.idle[0] += p.CIdleUpper + 1
	f.mem[0] += p.CMemLower // hold range for mem
	d.Tick(2*p.SamplingPeriod+2, sig)
	if d.MaxTB(0) != 4 {
		t.Fatalf("idle core maxTB=%d want 4", d.MaxTB(0))
	}
}

func TestLCSFirstBlockDecision(t *testing.T) {
	l := NewLCS(4, 4)
	if l.MaxTB(0) != 4 {
		t.Fatal("LCS must start unthrottled")
	}
	// Memory-bound first block: total >> busy saturates at max windows
	// (the conservatism the paper observes).
	l.ObserveTB(0, 100, 10_000)
	if l.MaxTB(0) != 4 {
		t.Fatalf("memory-bound LCS maxTB=%d want 4", l.MaxTB(0))
	}
	// Compute-bound first block: few blocks suffice.
	l.ObserveTB(1, 5000, 10_000)
	if l.MaxTB(1) != 2 {
		t.Fatalf("LCS maxTB=%d want 2", l.MaxTB(1))
	}
	// Only the first observation counts.
	l.ObserveTB(1, 1, 10_000)
	if l.MaxTB(1) != 2 {
		t.Fatal("LCS re-decided after first block")
	}
	// Out-of-range cores are ignored.
	l.ObserveTB(99, 1, 1)
}

func TestStatic(t *testing.T) {
	s := NewStatic(16, 2)
	s.Tick(0, nil)
	if s.MaxTB(3) != 2 || s.Name() != "static:2" {
		t.Fatalf("static: %d %q", s.MaxTB(3), s.Name())
	}
}

// MaxTB stays within [1, maxWindows] for any signal sequence.
func TestDynMGBoundsProperty(t *testing.T) {
	check := func(stalls []uint16, progs []uint8) bool {
		if len(stalls) == 0 || len(progs) == 0 {
			return true
		}
		const n, w = 8, 4
		d := NewDynMG(n, w, DefaultDynMGParams())
		f := newFake(n)
		sig := f.signals(n, w)
		now := int64(0)
		for i, s := range stalls {
			f.slices += 1000
			f.stall += int64(s % 1000)
			for c := 0; c < n; c++ {
				f.mem[c] += int64(progs[i%len(progs)]) * int64(c+1)
				f.progress[c] += int64(progs[(i+c)%len(progs)])
			}
			now += 2001
			d.Tick(now, sig)
			for c := 0; c < n; c++ {
				if tb := d.MaxTB(c); tb < 1 || tb > w {
					return false
				}
			}
			if d.Gear() < 0 || d.Gear() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
