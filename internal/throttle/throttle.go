// Package throttle implements the thread-throttling controllers of the
// paper: the proposed two-level dynamic multi-gear policy ("dynmg",
// Section 4.2, Algorithm 1, Tables 1–4) and the two baselines, DYNCTA
// (Kayıran et al., PACT 2013) and LCS (Lee et al., HPCA 2014).
//
// A controller observes per-core and global contention signals each
// cycle and publishes, per core, the maximum number of thread blocks
// (instruction windows) the core may keep active — the "degree"
// dimension of throttling. The temporal dimension is the controller's
// sampling period; the spatial dimension (which cores are throttled)
// is what dynmg adds over DYNCTA.
package throttle

import (
	"fmt"
	"math"
	"sort"
)

// Signals is the view of the running system a controller samples. All
// counter fields are cumulative; controllers keep period-start
// snapshots and work on deltas.
type Signals struct {
	NumCores   int
	MaxWindows int
	// CacheStall and SliceCycles give the global cache-stall
	// proportion t_cs = ΔCacheStall / ΔSliceCycles (Table 3).
	CacheStall  func() int64
	SliceCycles func() int64
	// CoreMem and CoreIdle are per-core cumulative C_mem / C_idle.
	CoreMem  func(core int) int64
	CoreIdle func(core int) int64
	// Progress is the per-core cumulative served-request counter the
	// LLC arbiters maintain; dynmg throttles the cores with the
	// largest progress ("fastest cores").
	Progress func(core int) int64
}

// Controller publishes per-core thread-block limits.
type Controller interface {
	// Name returns the policy name used in figures ("dyncta", "lcs",
	// "dynmg", "none").
	Name() string
	// Tick is called once per simulated cycle.
	Tick(now int64, sig *Signals)
	// MaxTB returns the current thread-block limit for core.
	MaxTB(core int) int
	// NextEvent returns the earliest cycle after now at which the
	// controller may change its outputs (its next sampling-period
	// boundary), or math.MaxInt64 for static and purely event-driven
	// controllers. The engine's fast-forward path uses it to prove a
	// window of cycles dead.
	NextEvent(now int64) int64
	// Reset rewinds the controller to its just-constructed state
	// (parameters kept, learned state and period snapshots dropped) so
	// a resettable engine can reuse the instance across runs.
	Reset()
}

// TBObserver is implemented by controllers that learn from thread
// block executions (LCS observes the first block per core).
type TBObserver interface {
	ObserveTB(core int, busyCycles, totalCycles int64)
}

// ParseName builds a controller by figure label. The "static:N" form
// pins every core to N thread blocks — not a paper policy, but the
// oracle reference used by the ablation benches.
func ParseName(name string, numCores, maxWindows int) (Controller, error) {
	switch name {
	case "none", "unopt", "":
		return NewNone(numCores, maxWindows), nil
	case "dyncta":
		return NewDYNCTA(numCores, maxWindows, DefaultDYNCTAParams()), nil
	case "lcs":
		return NewLCS(numCores, maxWindows), nil
	case "dynmg":
		return NewDynMG(numCores, maxWindows, DefaultDynMGParams()), nil
	}
	var n int
	if _, err := fmt.Sscanf(name, "static:%d", &n); err == nil {
		if n < 1 {
			n = 1
		}
		if n > maxWindows {
			n = maxWindows
		}
		return NewStatic(numCores, n), nil
	}
	return nil, fmt.Errorf("throttle: unknown policy %q", name)
}

// Static pins every core to a fixed thread-block limit; the oracle
// reference for ablation studies.
type Static struct {
	limit int
}

// NewStatic returns a fixed-limit controller.
func NewStatic(numCores, limit int) *Static { return &Static{limit: limit} }

// Name implements Controller.
func (s *Static) Name() string { return fmt.Sprintf("static:%d", s.limit) }

// Tick implements Controller.
func (*Static) Tick(int64, *Signals) {}

// MaxTB implements Controller.
func (s *Static) MaxTB(int) int { return s.limit }

// NextEvent implements Controller.
func (*Static) NextEvent(int64) int64 { return math.MaxInt64 }

// Reset implements Controller (stateless).
func (*Static) Reset() {}

// None applies no throttling: every core may fill all windows.
type None struct {
	max int
}

// NewNone returns the no-throttling controller.
func NewNone(numCores, maxWindows int) *None { return &None{max: maxWindows} }

// Name implements Controller.
func (*None) Name() string { return "none" }

// Tick implements Controller.
func (*None) Tick(int64, *Signals) {}

// MaxTB implements Controller.
func (n *None) MaxTB(int) int { return n.max }

// NextEvent implements Controller.
func (*None) NextEvent(int64) int64 { return math.MaxInt64 }

// Reset implements Controller (stateless).
func (*None) Reset() {}

// ---------------------------------------------------------------------------
// dynmg: two-level dynamic multi-gear throttling (the paper's policy).
// ---------------------------------------------------------------------------

// DynMGParams parameterises the two-level controller. Defaults are the
// paper's swept optimum (Tables 2–4).
type DynMGParams struct {
	SamplingPeriod int64 // global gear decision period (2000 cycles)
	SubPeriod      int64 // in-core decision period (400 cycles)
	MaxGear        int   // highest gear index (4)
	// GearFrac[g] is the fraction of cores throttled at gear g
	// (Table 1: 0, 1/8, 1/4, 1/2, 3/4).
	GearFrac []float64
	// Contention classification thresholds over t_cs (Table 3).
	TCSLow    float64 // below: Low contention (gear down)
	TCSNormal float64 // below: Normal (hold)
	TCSHigh   float64 // below: High (gear up); at or above: Extreme (+2)
	// In-core thresholds per sub-period (Table 4), in cycles.
	CIdleUpper int64 // C_idle above this: raise max_tb
	CMemUpper  int64 // C_mem above this: lower max_tb
	CMemLower  int64 // C_mem below this: raise max_tb
}

// DefaultDynMGParams returns Tables 2–4 of the paper.
func DefaultDynMGParams() DynMGParams {
	return DynMGParams{
		SamplingPeriod: 2000,
		SubPeriod:      400,
		MaxGear:        4,
		GearFrac:       []float64{0, 1.0 / 8, 1.0 / 4, 1.0 / 2, 3.0 / 4},
		TCSLow:         0.12,
		TCSNormal:      0.30,
		TCSHigh:        0.45,
		CIdleUpper:     4,
		CMemUpper:      348, // 0.87 of the sub-period
		CMemLower:      320, // 0.80 of the sub-period
	}
}

// Contention is the classified contention degree (Table 3).
type Contention uint8

// Contention degrees.
const (
	ContentionLow Contention = iota
	ContentionNormal
	ContentionHigh
	ContentionExtreme
)

// String implements fmt.Stringer.
func (c Contention) String() string {
	switch c {
	case ContentionLow:
		return "low"
	case ContentionNormal:
		return "normal"
	case ContentionHigh:
		return "high"
	case ContentionExtreme:
		return "extreme"
	}
	return fmt.Sprintf("Contention(%d)", uint8(c))
}

// ClassifyContention maps a t_cs value to its degree per Table 3.
func (p DynMGParams) ClassifyContention(tcs float64) Contention {
	switch {
	case tcs < p.TCSLow:
		return ContentionLow
	case tcs < p.TCSNormal:
		return ContentionNormal
	case tcs < p.TCSHigh:
		return ContentionHigh
	default:
		return ContentionExtreme
	}
}

// DynMG is the two-level dynamic multi-gear controller.
type DynMG struct {
	params     DynMGParams
	numCores   int
	maxWindows int

	gear      int
	throttled []bool
	maxTB     []int

	// Period-start snapshots.
	lastSample int64
	lastSub    int64
	stallSnap  int64
	sliceSnap  int64
	progSnap   []int64
	memSnap    []int64
	idleSnap   []int64
	// scratch for sorting cores by progress
	order []int

	// Diagnostics.
	GearChanges int64
	LastTCS     float64
}

// NewDynMG builds the controller.
func NewDynMG(numCores, maxWindows int, p DynMGParams) *DynMG {
	d := &DynMG{
		params:     p,
		numCores:   numCores,
		maxWindows: maxWindows,
		throttled:  make([]bool, numCores),
		maxTB:      make([]int, numCores),
		progSnap:   make([]int64, numCores),
		memSnap:    make([]int64, numCores),
		idleSnap:   make([]int64, numCores),
		order:      make([]int, numCores),
	}
	for i := range d.maxTB {
		d.maxTB[i] = maxWindows
	}
	return d
}

// Name implements Controller.
func (*DynMG) Name() string { return "dynmg" }

// MaxTB implements Controller.
func (d *DynMG) MaxTB(core int) int { return d.maxTB[core] }

// Gear returns the current gear (diagnostics).
func (d *DynMG) Gear() int { return d.gear }

// NextEvent implements Controller: the next sub-period or
// sampling-period boundary, whichever comes first.
func (d *DynMG) NextEvent(int64) int64 {
	next := d.lastSub + d.params.SubPeriod
	if s := d.lastSample + d.params.SamplingPeriod; s < next {
		next = s
	}
	return next
}

// Reset implements Controller: gear, throttled set, limits and every
// period snapshot rewind to the just-constructed state.
func (d *DynMG) Reset() {
	d.gear = 0
	for i := 0; i < d.numCores; i++ {
		d.throttled[i] = false
		d.maxTB[i] = d.maxWindows
		d.progSnap[i] = 0
		d.memSnap[i] = 0
		d.idleSnap[i] = 0
	}
	d.lastSample = 0
	d.lastSub = 0
	d.stallSnap = 0
	d.sliceSnap = 0
	d.GearChanges = 0
	d.LastTCS = 0
}

// Tick implements Controller: the global gear update every sampling
// period and the in-core max_tb update every sub-period.
func (d *DynMG) Tick(now int64, sig *Signals) {
	if now-d.lastSub >= d.params.SubPeriod {
		d.subPeriodUpdate(sig)
		d.lastSub = now
	}
	if now-d.lastSample >= d.params.SamplingPeriod {
		d.samplePeriodUpdate(sig)
		d.lastSample = now
	}
}

// samplePeriodUpdate is Algorithm 1 plus the gear→throttled-set
// mapping of Table 1.
func (d *DynMG) samplePeriodUpdate(sig *Signals) {
	stall := sig.CacheStall()
	slice := sig.SliceCycles()
	dStall := stall - d.stallSnap
	dSlice := slice - d.sliceSnap
	d.stallSnap, d.sliceSnap = stall, slice
	tcs := 0.0
	if dSlice > 0 {
		tcs = float64(dStall) / float64(dSlice)
	}
	d.LastTCS = tcs

	oldGear := d.gear
	switch d.params.ClassifyContention(tcs) {
	case ContentionHigh:
		if d.gear < d.params.MaxGear {
			d.gear++
		}
	case ContentionLow:
		if d.gear > 0 {
			d.gear--
		}
	case ContentionExtreme:
		if d.gear <= d.params.MaxGear-2 {
			d.gear += 2
		} else {
			d.gear = d.params.MaxGear
		}
	}
	if d.gear != oldGear {
		d.GearChanges++
	}

	// Throttle the fastest cores: largest progress over the period.
	nThrottle := int(d.params.GearFrac[d.gear]*float64(d.numCores) + 0.5)
	for i := 0; i < d.numCores; i++ {
		d.order[i] = i
	}
	progDelta := func(c int) int64 { return sig.Progress(c) - d.progSnap[c] }
	sort.SliceStable(d.order, func(a, b int) bool {
		return progDelta(d.order[a]) > progDelta(d.order[b])
	})
	for i := 0; i < d.numCores; i++ {
		c := d.order[i]
		wasThrottled := d.throttled[c]
		d.throttled[c] = i < nThrottle
		if d.throttled[c] && !wasThrottled {
			// Newly throttled: clamp hard so the spatial decision
			// takes effect within the period; the in-core controller
			// relaxes it if the core over-idles.
			d.maxTB[c] = 1
		}
		d.progSnap[c] = sig.Progress(c)
	}
}

// subPeriodUpdate runs the DYNCTA-like local logic on throttled cores
// and lets unthrottled cores recover toward full occupancy.
func (d *DynMG) subPeriodUpdate(sig *Signals) {
	for c := 0; c < d.numCores; c++ {
		mem := sig.CoreMem(c)
		idle := sig.CoreIdle(c)
		dMem := mem - d.memSnap[c]
		dIdle := idle - d.idleSnap[c]
		d.memSnap[c], d.idleSnap[c] = mem, idle
		if !d.throttled[c] {
			if d.maxTB[c] < d.maxWindows {
				d.maxTB[c]++
			}
			continue
		}
		switch {
		case dIdle > d.params.CIdleUpper:
			if d.maxTB[c] < d.maxWindows {
				d.maxTB[c]++
			}
		case dMem > d.params.CMemUpper:
			if d.maxTB[c] > 1 {
				d.maxTB[c]--
			}
		case dMem < d.params.CMemLower:
			if d.maxTB[c] < d.maxWindows {
				d.maxTB[c]++
			}
		}
	}
}

// ---------------------------------------------------------------------------
// DYNCTA baseline: per-core dynamic CTA throttling on all cores.
// ---------------------------------------------------------------------------

// DYNCTAParams parameterises the baseline; defaults come from sweeping
// under the paper's experiment settings (Section 6.2.3), scaled to one
// sampling period.
type DYNCTAParams struct {
	SamplingPeriod int64
	CIdleUpper     int64
	CMemUpper      int64
	CMemLower      int64
}

// DefaultDYNCTAParams returns the swept baseline configuration. The
// thresholds were swept (cmd/sweep) across the fig7 and fig9 workload
// matrix for the best geomean with a single parameter set — the
// paper's "fair comparison" methodology. One static set cannot fit
// both regimes, which is the conservatism the paper observes: the
// swept optimum reacts only to sustained contention (C_mem above 3/4
// of the period) and settles near two active blocks per core.
func DefaultDYNCTAParams() DYNCTAParams {
	return DYNCTAParams{
		SamplingPeriod: 2048,
		CIdleUpper:     20,
		CMemUpper:      1812, // 0.885 of the period
		CMemLower:      1638, // 0.80 of the period
	}
}

// DYNCTA applies the local C_idle/C_mem rule to every core each
// sampling period — no spatial selectivity, which is exactly the
// limitation dynmg addresses.
type DYNCTA struct {
	params     DYNCTAParams
	numCores   int
	maxWindows int
	maxTB      []int
	lastSample int64
	memSnap    []int64
	idleSnap   []int64
}

// NewDYNCTA builds the baseline controller.
func NewDYNCTA(numCores, maxWindows int, p DYNCTAParams) *DYNCTA {
	d := &DYNCTA{
		params:     p,
		numCores:   numCores,
		maxWindows: maxWindows,
		maxTB:      make([]int, numCores),
		memSnap:    make([]int64, numCores),
		idleSnap:   make([]int64, numCores),
	}
	for i := range d.maxTB {
		d.maxTB[i] = maxWindows
	}
	return d
}

// Name implements Controller.
func (*DYNCTA) Name() string { return "dyncta" }

// MaxTB implements Controller.
func (d *DYNCTA) MaxTB(core int) int { return d.maxTB[core] }

// NextEvent implements Controller.
func (d *DYNCTA) NextEvent(int64) int64 {
	return d.lastSample + d.params.SamplingPeriod
}

// Reset implements Controller: limits and period snapshots rewind to
// the just-constructed state.
func (d *DYNCTA) Reset() {
	for i := 0; i < d.numCores; i++ {
		d.maxTB[i] = d.maxWindows
		d.memSnap[i] = 0
		d.idleSnap[i] = 0
	}
	d.lastSample = 0
}

// Tick implements Controller.
func (d *DYNCTA) Tick(now int64, sig *Signals) {
	if now-d.lastSample < d.params.SamplingPeriod {
		return
	}
	d.lastSample = now
	for c := 0; c < d.numCores; c++ {
		mem := sig.CoreMem(c)
		idle := sig.CoreIdle(c)
		dMem := mem - d.memSnap[c]
		dIdle := idle - d.idleSnap[c]
		d.memSnap[c], d.idleSnap[c] = mem, idle
		switch {
		case dIdle > d.params.CIdleUpper:
			if d.maxTB[c] < d.maxWindows {
				d.maxTB[c]++
			}
		case dMem > d.params.CMemUpper:
			if d.maxTB[c] > 1 {
				d.maxTB[c]--
			}
		case dMem < d.params.CMemLower:
			if d.maxTB[c] < d.maxWindows {
				d.maxTB[c]++
			}
		}
	}
}

// ---------------------------------------------------------------------------
// LCS baseline: lazy CTA scheduling via first-thread-block observation.
// ---------------------------------------------------------------------------

// LCS observes the execution of the first thread block on each core
// and derives a static thread-block limit: enough concurrent blocks to
// cover the observed stall time with useful work, without dynamic
// tuning afterwards. Under heavily memory-bound workloads the cover
// ratio saturates at the window count, leaving the core effectively
// unthrottled — the conservatism the paper observes.
type LCS struct {
	numCores   int
	maxWindows int
	maxTB      []int
	decided    []bool
}

// NewLCS builds the baseline controller.
func NewLCS(numCores, maxWindows int) *LCS {
	l := &LCS{
		numCores:   numCores,
		maxWindows: maxWindows,
		maxTB:      make([]int, numCores),
		decided:    make([]bool, numCores),
	}
	for i := range l.maxTB {
		l.maxTB[i] = maxWindows
	}
	return l
}

// Name implements Controller.
func (*LCS) Name() string { return "lcs" }

// MaxTB implements Controller.
func (l *LCS) MaxTB(core int) int { return l.maxTB[core] }

// Tick implements Controller (LCS is event-driven; nothing per cycle).
func (*LCS) Tick(int64, *Signals) {}

// Reset implements Controller: forget the observed first blocks so the
// next run re-derives its limits.
func (l *LCS) Reset() {
	for i := 0; i < l.numCores; i++ {
		l.maxTB[i] = l.maxWindows
		l.decided[i] = false
	}
}

// NextEvent implements Controller: LCS changes outputs only from
// ObserveTB, which the engine invokes on thread-block retirement — a
// core event the core's own horizon already covers.
func (*LCS) NextEvent(int64) int64 { return math.MaxInt64 }

// ObserveTB implements TBObserver: on the first completed block of a
// core, set the static limit to ceil(totalCycles / busyCycles), the
// number of interleaved blocks needed to hide the observed latency,
// clamped to the window count.
func (l *LCS) ObserveTB(core int, busyCycles, totalCycles int64) {
	if core < 0 || core >= l.numCores || l.decided[core] {
		return
	}
	l.decided[core] = true
	if busyCycles <= 0 {
		return
	}
	need := int((totalCycles + busyCycles - 1) / busyCycles)
	if need < 1 {
		need = 1
	}
	if need > l.maxWindows {
		need = l.maxWindows
	}
	l.maxTB[core] = need
}
