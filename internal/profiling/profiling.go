// Package profiling centralises the -cpuprofile/-memprofile
// scaffolding the CLI mains (cmd/sweep, cmd/serve, cmd/cluster)
// share: start/stop of the pprof CPU profile with an explicit stop
// closure — callable before an os.Exit error path, which a defer
// would skip, truncating the profile — and the GC-then-write heap
// snapshot.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins CPU profiling into path and returns a stop closure
// that flushes and closes the profile; it must be called before the
// process exits (including error exits — do not rely on defers around
// os.Exit). An empty path is a no-op returning a no-op closure.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap forces a GC and writes a heap profile to path. An empty
// path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
