// Package hwcost estimates the silicon cost of the CAT hardware —
// the arbiter (including the request queue it subsumes) and the
// hit_buffer — replacing the paper's Chisel + Synopsys DC flow, which
// is unavailable here. The estimator counts the storage, comparator
// and mux structures of the described microarchitecture and converts
// them to area through per-bit figures for the 15 nm Open Cell
// Library the paper synthesises with. The unit areas are calibrated
// once against the paper's reported results (Section 6.1: arbiter
// 7312.93 µm², hit buffer 3088.61 µm² at 1.96 GHz); the value of the
// module is that the same constants reproduce both numbers from the
// described structure, confirming the microarchitecture accounting.
package hwcost

import "fmt"

// Tech describes per-bit silicon costs of a standard-cell technology.
type Tech struct {
	Name string
	// FlopUm2 is the area of one stored bit including its share of
	// clock tree and write-mux (µm²).
	FlopUm2 float64
	// CompUm2 is the area of one comparator (XNOR + AND-tree share)
	// bit (µm²).
	CompUm2 float64
	// MuxUm2 is the area of one 2:1 mux bit (µm²).
	MuxUm2 float64
}

// FreePDK15 returns the 15 nm Open Cell Library figures, calibrated
// against the paper's synthesis results.
func FreePDK15() Tech {
	return Tech{
		Name:    "FreePDK15/OCL",
		FlopUm2: 1.49,
		CompUm2: 0.52,
		MuxUm2:  0.25,
	}
}

// ArbiterParams describes the arbiter microarchitecture of Fig. 4/5.
// The request queue belongs to the arbiter ("they are logically an
// indivisible unit", Section 6.1), which is why the paper notes the
// arbiter area over-states the policy-logic overhead.
type ArbiterParams struct {
	ReqQEntries int // request queue depth (12)
	ReqBits     int // bits per queued request (address, core, window, flags)
	NumCores    int // progress counters (cnt0..cntN)
	CounterBits int // width of each progress counter
	SentEntries int // sent_reqs FIFO depth (hit-latency + mshr-latency)
	SentBits    int // bits per sent_reqs entry (line address + spec bit)
	SnapEntries int // MSHR snapshot entries matched in parallel (numEntry)
	AddrBits    int // comparator width for address matching
}

// DefaultArbiterParams matches the Table 5 slice: 12-entry request
// queue with 96-bit entries, 16 progress counters, 8-deep sent_reqs,
// 6 MSHR snapshot comparators, 48-bit line addresses.
func DefaultArbiterParams() ArbiterParams {
	return ArbiterParams{
		ReqQEntries: 12,
		ReqBits:     96,
		NumCores:    16,
		CounterBits: 16,
		SentEntries: 8,
		SentBits:    49,
		SnapEntries: 6,
		AddrBits:    48,
	}
}

// HitBufferParams describes the hit_buffer FIFO.
type HitBufferParams struct {
	Entries  int // FIFO depth
	AddrBits int // stored line-address width
}

// DefaultHitBufferParams matches the evaluated 32-entry buffer.
func DefaultHitBufferParams() HitBufferParams {
	return HitBufferParams{Entries: 32, AddrBits: 48}
}

// Report is an area breakdown in µm².
type Report struct {
	Storage     float64
	Comparators float64
	Muxes       float64
	Total       float64
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("storage %.2f + comparators %.2f + muxes %.2f = %.2f µm²",
		r.Storage, r.Comparators, r.Muxes, r.Total)
}

// ArbiterArea estimates the arbiter block: request queue storage,
// progress counters and the sent_reqs FIFO; a comparator bank that
// matches every queued request against the MSHR snapshot and
// sent_reqs in parallel (Fig. 5 step 3 — the hit_buffer's own match
// ports are accounted to the hit buffer); a minimum tree over the
// progress counters; and the selection mux.
func ArbiterArea(p ArbiterParams, t Tech) Report {
	var r Report
	storageBits := float64(p.ReqQEntries*p.ReqBits +
		p.NumCores*p.CounterBits +
		p.SentEntries*p.SentBits)
	r.Storage = storageBits * t.FlopUm2

	compBits := float64(p.ReqQEntries * (p.SnapEntries + p.SentEntries) * p.AddrBits)
	compBits += float64((p.NumCores - 1) * p.CounterBits) // min tree
	r.Comparators = compBits * t.CompUm2

	r.Muxes = float64((p.ReqQEntries-1)*p.ReqBits) * t.MuxUm2

	r.Total = r.Storage + r.Comparators + r.Muxes
	return r
}

// HitBufferArea estimates the hit_buffer FIFO: storage plus one
// parallel match port per entry (the lookup the arbiter performs in
// Fig. 5 step 2).
func HitBufferArea(hb HitBufferParams, t Tech) Report {
	var r Report
	bits := float64(hb.Entries * hb.AddrBits)
	r.Storage = bits * t.FlopUm2
	r.Comparators = bits * t.CompUm2
	r.Total = r.Storage + r.Comparators
	return r
}

// PaperArbiterUm2 and PaperHitBufferUm2 are the synthesis results the
// paper reports, used as reference values by tests and EXPERIMENTS.md.
const (
	PaperArbiterUm2   = 7312.93
	PaperHitBufferUm2 = 3088.61
)
