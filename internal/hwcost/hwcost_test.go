package hwcost

import (
	"math"
	"strings"
	"testing"
)

func TestArbiterAreaNearPaper(t *testing.T) {
	r := ArbiterArea(DefaultArbiterParams(), FreePDK15())
	rel := math.Abs(r.Total-PaperArbiterUm2) / PaperArbiterUm2
	if rel > 0.10 {
		t.Fatalf("arbiter area %.2f µm² deviates %.1f%% from paper %.2f",
			r.Total, rel*100, PaperArbiterUm2)
	}
	if r.Total != r.Storage+r.Comparators+r.Muxes {
		t.Fatal("total != sum of parts")
	}
}

func TestHitBufferAreaNearPaper(t *testing.T) {
	r := HitBufferArea(DefaultHitBufferParams(), FreePDK15())
	rel := math.Abs(r.Total-PaperHitBufferUm2) / PaperHitBufferUm2
	if rel > 0.10 {
		t.Fatalf("hit buffer area %.2f µm² deviates %.1f%% from paper %.2f",
			r.Total, rel*100, PaperHitBufferUm2)
	}
}

func TestAreaScalesWithStructure(t *testing.T) {
	tech := FreePDK15()
	small := DefaultHitBufferParams()
	big := small
	big.Entries *= 2
	if HitBufferArea(big, tech).Total <= HitBufferArea(small, tech).Total {
		t.Fatal("doubling entries did not grow area")
	}
	a := DefaultArbiterParams()
	b := a
	b.ReqQEntries *= 2
	if ArbiterArea(b, tech).Total <= ArbiterArea(a, tech).Total {
		t.Fatal("doubling queue did not grow arbiter area")
	}
}

func TestReportString(t *testing.T) {
	s := ArbiterArea(DefaultArbiterParams(), FreePDK15()).String()
	if !strings.Contains(s, "µm²") || !strings.Contains(s, "storage") {
		t.Fatalf("report string malformed: %s", s)
	}
}
