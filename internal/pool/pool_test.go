package pool

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestForEachRunsEveryIndex: every index runs exactly once at any
// width, including widths above n and below 1.
func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 8, 100} {
		var hits [17]int32
		err := ForEach(len(hits), workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

// TestForEachFirstErrorInInputOrder: the reported error is the
// lowest-index failure, not whichever worker lost the race — and the
// remaining indices still run.
func TestForEachFirstErrorInInputOrder(t *testing.T) {
	var ran int32
	err := ForEach(10, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 3 || i == 7 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail 3" {
		t.Fatalf("err = %v, want the input-order first failure 'fail 3'", err)
	}
	if ran != 10 {
		t.Fatalf("%d indices ran, want all 10", ran)
	}
}

// TestForEachZeroN: an empty input is a no-op.
func TestForEachZeroN(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return fmt.Errorf("boom") }); err != nil {
		t.Fatal(err)
	}
}
