// Package pool provides the bounded deterministic worker pool that
// fans independent simulation units across goroutines: the experiment
// grids run matrix cells on it, and the cluster router advances its
// per-node serving engines on it. Each unit writes only its own
// result slot, so output order — and therefore every figure, table
// and cluster metric — is independent of the worker count.
package pool

import "sync"

// ForEach runs fn(0..n-1) across a bounded worker pool of the given
// width and returns the first error in input order (every index still
// runs). Width is clamped to [1, n]; width 1 degenerates to a plain
// serial loop with no goroutines at all.
func ForEach(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
