package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(streaming bool) (*Cache, error) {
	return New(Config{
		SizeBytes: 4 * 64 * 2, // 2 sets, 4 ways
		LineBytes: 64,
		Assoc:     4,
		Alloc:     AllocOnFill,
		Write:     WritePolicy{WriteAllocate: true, WriteBack: true},
		Streaming: streaming,
	})
}

func smallCache(t *testing.T, streaming bool) *Cache {
	t.Helper()
	c, err := mustCache(streaming)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 100, LineBytes: 64, Assoc: 2},        // not divisible
		{SizeBytes: 1024, LineBytes: 60, Assoc: 2},       // line not pow2
		{SizeBytes: 1024, LineBytes: 64, Assoc: 0},       // zero assoc
		{SizeBytes: 3 * 64 * 2, LineBytes: 64, Assoc: 2}, // 3 sets, not pow2
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated, want error", i)
		}
	}
	good := Config{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if good.Sets() != 128 {
		t.Fatalf("Sets=%d want 128", good.Sets())
	}
}

func TestMissThenFillThenHit(t *testing.T) {
	c := smallCache(t, false)
	if c.Access(10, false) {
		t.Fatal("cold access hit")
	}
	c.Fill(10, false)
	if !c.Access(10, false) {
		t.Fatal("access after fill missed")
	}
	if !c.Probe(10) {
		t.Fatal("probe after fill missed")
	}
	if c.Lookups != 2 || c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters: %d/%d/%d", c.Lookups, c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(t, false)
	// Fill set 0 (even lines land in set 0: setIndex = line & 1).
	for _, l := range []uint64{0, 2, 4, 6} {
		c.Fill(l, false)
	}
	// Touch 0 to make it MRU; 2 becomes LRU.
	c.Access(0, false)
	victim, dirty, evicted := c.Fill(8, false)
	if !evicted || victim != 2 || dirty {
		t.Fatalf("evicted=%v victim=%d dirty=%v, want LRU line 2 clean", evicted, victim, dirty)
	}
	if c.Probe(2) {
		t.Fatal("victim still resident")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := smallCache(t, false)
	c.Fill(0, false)
	c.Access(0, true) // write hit marks dirty under write-back
	for _, l := range []uint64{2, 4, 6} {
		c.Fill(l, false)
	}
	victim, dirty, evicted := c.Fill(8, false)
	if !evicted || victim != 0 || !dirty {
		t.Fatalf("want dirty eviction of line 0, got %d dirty=%v evicted=%v", victim, dirty, evicted)
	}
	if c.DirtyEvictions != 1 {
		t.Fatalf("DirtyEvictions=%d", c.DirtyEvictions)
	}
}

func TestWriteThroughNeverDirty(t *testing.T) {
	c, err := New(Config{
		SizeBytes: 4 * 64 * 2, LineBytes: 64, Assoc: 4,
		Write: WritePolicy{WriteAllocate: false, WriteBack: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Fill(0, false)
	c.Access(0, true)
	for _, l := range []uint64{2, 4, 6} {
		c.Fill(l, false)
	}
	_, dirty, _ := c.Fill(8, false)
	if dirty {
		t.Fatal("write-through cache produced a dirty victim")
	}
}

func TestFillDirtyFlag(t *testing.T) {
	c := smallCache(t, false)
	c.Fill(0, true) // write-allocate fill installs dirty
	for _, l := range []uint64{2, 4, 6} {
		c.Fill(l, false)
	}
	victim, dirty, _ := c.Fill(8, false)
	if victim != 0 || !dirty {
		t.Fatalf("dirty fill not preserved: victim=%d dirty=%v", victim, dirty)
	}
}

func TestStreamingInsertsAtLRU(t *testing.T) {
	c := smallCache(t, true)
	for _, l := range []uint64{0, 2, 4, 6} {
		c.Fill(l, false)
		c.Access(l, false) // promote: these are "reused" lines
	}
	// A streaming fill must evict one resident line but itself become
	// the next victim, protecting the reused lines.
	c.Fill(8, false)
	victim, _, evicted := c.Fill(10, false)
	if !evicted || victim != 8 {
		t.Fatalf("streaming line should be evicted first, victim=%d", victim)
	}
}

func TestDoubleFillNoEvict(t *testing.T) {
	c := smallCache(t, false)
	c.Fill(0, false)
	_, _, evicted := c.Fill(0, true) // racing fill refreshes, no eviction
	if evicted {
		t.Fatal("refill of resident line evicted")
	}
	// The dirty flag must stick.
	for _, l := range []uint64{2, 4, 6} {
		c.Fill(l, false)
	}
	c.Access(2, false)
	victim, dirty, _ := c.Fill(8, false)
	if victim == 0 && !dirty {
		t.Fatal("refill lost dirty flag")
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache(t, false)
	c.Fill(0, true)
	dirty, present := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Probe(0) {
		t.Fatal("line survives invalidate")
	}
	if _, present := c.Invalidate(0); present {
		t.Fatal("double invalidate reports present")
	}
}

func TestSetIndexFn(t *testing.T) {
	c := smallCache(t, false)
	c.SetIndexFn = func(line uint64) uint64 { return line >> 3 }
	// Lines 0 and 8 now map to different sets; 0 and 1 to the same.
	c.Fill(0, false)
	c.Fill(8, false)
	if !c.Probe(0) || !c.Probe(8) {
		t.Fatal("custom set index broke residency")
	}
}

// Occupancy never exceeds capacity and equals the number of distinct
// resident lines.
func TestOccupancyProperty(t *testing.T) {
	check := func(lines []uint16) bool {
		c, err := mustCache(false)
		if err != nil {
			return false
		}
		resident := make(map[uint64]bool)
		for _, raw := range lines {
			line := uint64(raw % 64)
			victim, _, evicted := c.Fill(line, false)
			resident[line] = true
			if evicted {
				delete(resident, victim)
			}
		}
		if c.Occupancy() > 8 { // 2 sets x 4 ways
			return false
		}
		for l := range resident {
			if !c.Probe(l) {
				return false
			}
		}
		return c.Occupancy() == len(resident)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHitRate(t *testing.T) {
	c := smallCache(t, false)
	if c.HitRate() != 0 {
		t.Fatal("hit rate of unused cache should be 0")
	}
	c.Fill(0, false)
	c.Access(0, false)
	c.Access(2, false)
	if c.HitRate() != 0.5 {
		t.Fatalf("HitRate=%v", c.HitRate())
	}
}
