// Package cache implements the set-associative cache storage model
// used for both the private L1 caches and the L2/LLC slices. It
// supports the policy knobs Section 5 of the paper adds to the
// simulator frontend: allocate-on-miss vs allocate-on-fill,
// write-allocate vs write-no-allocate, write-back vs write-through,
// and a streaming insertion hint for L1 caches that see no temporal
// reuse on the KV stream.
//
// The model tracks tags and replacement state only; no data payloads
// are simulated (the simulator is trace-driven and timing-focused).
package cache

import "fmt"

// AllocPolicy selects when a line is installed in storage.
type AllocPolicy uint8

// Allocation policies.
const (
	AllocOnMiss AllocPolicy = iota // reserve the way at miss time
	AllocOnFill                    // install only when the fill returns
)

// WritePolicy combines write-hit and write-miss handling.
type WritePolicy struct {
	WriteAllocate bool // write misses fetch + install the line
	WriteBack     bool // dirty lines written back on eviction; else write-through
}

// Config describes one cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	Alloc     AllocPolicy
	Write     WritePolicy
	// Streaming inserts clean load fills at LRU position instead of
	// MRU, modelling the L1 "streaming" hint of Table 5: the KV
	// stream has no L1 temporal reuse, so it should not displace Q.
	Streaming bool
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: LineBytes must be a positive power of two, got %d", c.LineBytes)
	case c.Assoc <= 0:
		return fmt.Errorf("cache: Assoc must be positive, got %d", c.Assoc)
	case c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("cache: SizeBytes %d not divisible into %d-way sets of %d-byte lines",
			c.SizeBytes, c.Assoc, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

type way struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Cache is a tag/replacement model. Lookups and fills take line
// addresses (byte address >> log2(LineBytes)). Not safe for concurrent
// use; the engine is single-threaded.
type Cache struct {
	cfg      Config
	sets     [][]way
	setMask  uint64
	lruClock uint64

	// SetIndexFn overrides set selection; used by LLC slices where the
	// slice-interleave bits must be excluded from the set index. When
	// nil, the low line-address bits index the set.
	SetIndexFn func(line uint64) uint64

	// Counters.
	Lookups        int64
	Hits           int64
	Misses         int64
	Evictions      int64
	DirtyEvictions int64
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg}
	n := cfg.Sets()
	c.setMask = uint64(n - 1)
	c.sets = make([][]way, n)
	backing := make([]way, n*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(line uint64) uint64 {
	if c.SetIndexFn != nil {
		return c.SetIndexFn(line) & c.setMask
	}
	return line & c.setMask
}

// Probe reports whether line is resident without touching replacement
// state or counters — used by diagnostics and tests.
func (c *Cache) Probe(line uint64) bool {
	set := c.sets[c.setIndex(line)]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return true
		}
	}
	return false
}

// Access performs a demand lookup. On a hit the replacement state is
// updated and, for writes under write-back, the line is marked dirty.
// The caller decides what a miss means (MSHR, fill, bypass).
func (c *Cache) Access(line uint64, write bool) (hit bool) {
	c.Lookups++
	si := c.setIndex(line)
	set := c.sets[si]
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == line {
			c.Hits++
			c.lruClock++
			w.lru = c.lruClock
			if write && c.cfg.Write.WriteBack {
				w.dirty = true
			}
			return true
		}
	}
	c.Misses++
	return false
}

// AccountMisses bulk-records n repeated missing lookups without
// touching storage state. The engine's fast-forward path uses it to
// keep the diagnostic hit-rate counters identical to a per-cycle run
// in which a blocked window re-probes the same absent line every
// cycle (a miss lookup mutates nothing but these counters).
func (c *Cache) AccountMisses(n int64) {
	c.Lookups += n
	c.Misses += n
}

// Fill installs line into the cache, evicting the LRU way if the set
// is full. It returns the evicted line and whether that line was
// dirty (needs a writeback). dirty marks the incoming line dirty
// (write-allocate fill under write-back).
//
// Under the Streaming hint, clean fills are inserted at LRU position
// so that a once-read stream evicts itself rather than reused data.
func (c *Cache) Fill(line uint64, dirty bool) (victim uint64, victimDirty bool, evicted bool) {
	si := c.setIndex(line)
	set := c.sets[si]
	// One pass gathers everything the fill can need: presence, the
	// first free way, the LRU victim and the minimum resident LRU (for
	// the streaming insertion position).
	free := -1
	lruSlot := 0
	minLRU := ^uint64(0)
	for i := range set {
		w := &set[i]
		if !w.valid {
			if free < 0 {
				free = i
			}
			continue
		}
		if w.tag == line {
			// Already present (e.g. a racing fill): refresh state only.
			if dirty {
				w.dirty = true
			}
			return 0, false, false
		}
		if w.lru < set[lruSlot].lru || !set[lruSlot].valid {
			lruSlot = i
		}
		if w.lru < minLRU {
			minLRU = w.lru
		}
	}
	slot := free
	if slot < 0 {
		// Evict LRU. minLRU currently includes the victim; the
		// streaming insertion position must exclude it, recomputed
		// below only when needed.
		slot = lruSlot
		victim = set[slot].tag
		victimDirty = set[slot].dirty
		evicted = true
		c.Evictions++
		if victimDirty {
			c.DirtyEvictions++
		}
	}
	c.lruClock++
	pos := c.lruClock
	if c.cfg.Streaming && !dirty {
		// Insert at LRU: use a position older than every resident way
		// (excluding the slot being replaced).
		if evicted {
			minLRU = ^uint64(0)
			for i := range set {
				if set[i].valid && i != slot && set[i].lru < minLRU {
					minLRU = set[i].lru
				}
			}
		}
		if minLRU != ^uint64(0) {
			if minLRU > 0 {
				pos = minLRU - 1
			} else {
				pos = 0
			}
		}
	}
	set[slot] = way{tag: line, valid: true, dirty: dirty, lru: pos}
	return victim, victimDirty, evicted
}

// Invalidate removes line if present, returning whether it was dirty.
func (c *Cache) Invalidate(line uint64) (wasDirty, wasPresent bool) {
	set := c.sets[c.setIndex(line)]
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == line {
			wasDirty = w.dirty
			w.valid = false
			w.dirty = false
			return wasDirty, true
		}
	}
	return false, false
}

// Reset rewinds the cache to its just-constructed state — every way
// invalidated, the replacement clock and the diagnostic counters
// zeroed — without touching the backing storage, so a resettable
// engine can reuse the allocation across runs.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = way{}
		}
	}
	c.lruClock = 0
	c.Lookups = 0
	c.Hits = 0
	c.Misses = 0
	c.Evictions = 0
	c.DirtyEvictions = 0
}

// Occupancy returns the number of valid lines; a test/diagnostic hook.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// HitRate returns Hits/Lookups, 0 when no lookups happened.
func (c *Cache) HitRate() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Lookups)
}
