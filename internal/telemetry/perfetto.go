// Chrome trace-event JSON exporter: the merged event stream rendered
// as a Perfetto/chrome://tracing-loadable trace. Nodes map to
// processes (pid = node+1; the router is pid 0), batch slots to
// threads (tid = slot+1; node-level events use tid 0), lifecycle
// events to "X" complete slices (dur 0 for instants), gauge samples to
// "C" counter tracks, and each request to a flow chain ("s"/"t"/"f"
// with the request ID) linking its spans from arrival/route through
// prefill, decode and preemption to retirement.
//
// The output is byte-deterministic: events arrive in the collector's
// merge order, every JSON object is a struct with fixed field order,
// and args maps are marshalled by encoding/json with sorted keys.
// Timestamps are simulation cycles reported as microseconds.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func pidOf(node int) int { return node + 1 }

func tidOf(slot int) int {
	if slot < 0 {
		return 0
	}
	return slot + 1
}

// WritePerfetto writes the event stream as Chrome trace-event JSON.
func WritePerfetto(w io.Writer, events []Event) error {
	out := make([]traceEvent, 0, 2*len(events)+16)

	// Topology scan for process/thread metadata: which nodes and
	// slots appear, and whether the router recorded anything.
	router := false
	slots := map[int]map[int]bool{} // node -> slots seen
	maxNode := -1
	for i := range events {
		ev := &events[i]
		if ev.Node < 0 {
			router = true
			continue
		}
		if ev.Node > maxNode {
			maxNode = ev.Node
		}
		if slots[ev.Node] == nil {
			slots[ev.Node] = map[int]bool{}
		}
		if ev.Slot >= 0 {
			slots[ev.Node][ev.Slot] = true
		}
	}
	meta := func(name string, pid, tid int, args map[string]any) {
		out = append(out, traceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args})
	}
	if router {
		meta("process_name", pidOf(-1), 0, map[string]any{"name": "router"})
		meta("process_sort_index", pidOf(-1), 0, map[string]any{"sort_index": 0})
		meta("thread_name", pidOf(-1), 0, map[string]any{"name": "dispatch"})
	}
	for n := 0; n <= maxNode; n++ {
		meta("process_name", pidOf(n), 0, map[string]any{"name": fmt.Sprintf("node %d", n)})
		meta("process_sort_index", pidOf(n), 0, map[string]any{"sort_index": n + 1})
		meta("thread_name", pidOf(n), 0, map[string]any{"name": "engine"})
		ss := make([]int, 0, len(slots[n]))
		for s := range slots[n] {
			ss = append(ss, s)
		}
		sort.Ints(ss)
		for _, s := range ss {
			meta("thread_name", pidOf(n), tidOf(s), map[string]any{"name": fmt.Sprintf("slot %d", s)})
		}
	}

	counter := func(ev *Event, name, series string, v int64) {
		out = append(out, traceEvent{
			Name: name, Ph: "C", Ts: ev.Cycle, Pid: pidOf(ev.Node),
			Args: map[string]any{series: v},
		})
	}
	// counterF is counter for derived hardware rates: float64 values
	// marshal deterministically via encoding/json, so the counter
	// tracks stay byte-reproducible.
	counterF := func(ev *Event, name, series string, v float64) {
		out = append(out, traceEvent{
			Name: name, Ph: "C", Ts: ev.Cycle, Pid: pidOf(ev.Node),
			Args: map[string]any{series: v},
		})
	}
	frac := func(num, den int64) float64 {
		if den <= 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	started := map[int]bool{}
	for i := range events {
		ev := &events[i]
		if ev.Kind == KindSample {
			counter(ev, "outstanding tokens", "tokens", ev.Gauges.Outstanding)
			counter(ev, "prefill backlog", "tokens", ev.Gauges.Backlog)
			counter(ev, "kv reserved", "tokens", ev.Gauges.KVUsed)
			counter(ev, "slots running", "slots", int64(ev.Gauges.Running))
			counter(ev, "prefix cache fill", "tokens", ev.Gauges.PrefixFill)
			continue
		}
		if ev.Kind == KindHWSample {
			if h := ev.HW; h != nil {
				gbkc := 0.0
				if h.Cycles > 0 {
					gbkc = float64(h.DRAMBytes) / 1e9 / (float64(h.Cycles) / 1e3)
				}
				counterF(ev, "hw dram gb/kcycle", "gb", gbkc)
				counterF(ev, "hw l2 hit rate", "rate", frac(h.L2Hits, h.L2Accesses))
				counterF(ev, "hw mem-stall frac", "frac", frac(h.CoreMemStall, h.Cycles*int64(h.Cores)))
			}
			continue
		}
		name := ev.Kind.String()
		if ev.Req >= 0 {
			name += " r" + strconv.Itoa(ev.Req)
		}
		switch ev.Kind {
		case KindDecode:
			name += " #" + strconv.Itoa(ev.Tokens)
		case KindPrefill:
			name += " +" + strconv.Itoa(ev.Tokens)
		}
		args := sliceArgs(ev)
		// Events are stamped at their completion cycle, so a span starts
		// Dur cycles earlier — except retries and node crashes, which
		// are stamped at the decision/failure with their backoff or
		// detection window extending forward.
		start := ev.Cycle - ev.Dur
		if ev.Kind == KindRetry || ev.Kind == KindNodeDown {
			start = ev.Cycle
		}
		pid, tid := pidOf(ev.Node), tidOf(ev.Slot)
		out = append(out, traceEvent{
			Name: name, Ph: "X", Ts: start, Dur: ev.Dur,
			Pid: pid, Tid: tid, Args: args,
		})
		if ev.Req < 0 {
			continue
		}
		flow := traceEvent{
			Name: "req", Ts: start, Pid: pid, Tid: tid,
			ID: "r" + strconv.Itoa(ev.Req),
		}
		switch {
		case !started[ev.Req]:
			flow.Ph = "s"
			started[ev.Req] = true
		case ev.Kind == KindRetire || ev.Kind == KindDrop:
			flow.Ph = "f"
			flow.BP = "e"
		default:
			flow.Ph = "t"
		}
		out = append(out, flow)
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range out {
		data, err := json.Marshal(&out[i])
		if err != nil {
			return err
		}
		if i > 0 {
			bw.WriteString(",\n")
		}
		bw.Write(data)
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// sliceArgs renders the kind-specific payload of a lifecycle event as
// Perfetto slice args. Keys are chosen per kind so the UI shows only
// meaningful fields.
func sliceArgs(ev *Event) map[string]any {
	args := map[string]any{}
	if ev.Session >= 0 {
		args["session"] = ev.Session
	}
	switch ev.Kind {
	case KindArrive:
		args["prompt"] = ev.Tokens
		args["kv_reserve"] = ev.KVLen
	case KindRoute, KindForward:
		args["target"] = ev.Target
		if ev.Load != nil {
			args["load"] = ev.Load
		}
		if ev.Backlog != nil {
			args["backlog"] = ev.Backlog
		}
	case KindRetry:
		args["attempt"] = ev.Tokens
		args["backoff"] = ev.Dur
	case KindShed:
		args["attempt"] = ev.Tokens
	case KindAdmit:
		args["kv_reserve"] = ev.KVLen
		if ev.Tokens > 0 {
			args["resumed_tokens"] = ev.Tokens
		}
	case KindPrefixHit:
		args["saved_tokens"] = ev.Tokens
	case KindPrefill, KindDecode:
		args["tokens"] = ev.Tokens
		if ev.MemoHit {
			args["memo_hit"] = true
		}
	case KindPreempt:
		args["kept_tokens"] = ev.Tokens
		args["kv_released"] = ev.KVLen
	case KindRetire:
		args["tokens"] = ev.Tokens
		args["latency"] = ev.Dur
	case KindNodeDown:
		args["node"] = ev.Target
		args["victims"] = ev.Tokens
		args["lost_tokens"] = ev.KVLen
		args["detect"] = ev.Dur
	case KindNodeUp:
		args["node"] = ev.Target
		args["downtime"] = ev.Dur
	case KindRedispatch:
		args["resumed_tokens"] = ev.Tokens
	}
	if len(args) == 0 {
		return nil
	}
	return args
}
