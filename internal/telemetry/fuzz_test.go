package telemetry

import (
	"strings"
	"testing"
)

// FuzzCellPath: the placeholder expansion must always yield a path
// with no % left, no path separators introduced by the label, and a
// slug made only of the sanitiser's safe alphabet — for any pattern
// and any label, including hostile ones ("../../x", "%%%", unicode).
func FuzzCellPath(f *testing.F) {
	f.Add("out/%.json", "mix/16req/seed1")
	f.Add("trace-%.json", "Unopt Policy")
	f.Add("fixed.json", "label")
	f.Add("%%", "../../etc/passwd")
	f.Add("a%b%c", "s\x00lug\n")
	f.Fuzz(func(t *testing.T, pattern, label string) {
		slug := SanitizeLabel(label)
		for _, r := range slug {
			safe := r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '.' || r == '_' || r == '-'
			if !safe {
				t.Fatalf("SanitizeLabel(%q) contains unsafe rune %q", label, r)
			}
		}
		if strings.HasPrefix(slug, "-") || strings.HasSuffix(slug, "-") {
			t.Fatalf("SanitizeLabel(%q) = %q keeps edge dashes", label, slug)
		}
		got := CellPath(pattern, label)
		if strings.Contains(pattern, "%") {
			if strings.Contains(got, "%") {
				t.Fatalf("CellPath(%q, %q) = %q leaves a placeholder", pattern, label, got)
			}
			// The label must not smuggle separators or traversal into the
			// expanded path: only the pattern's own separators survive.
			if strings.Count(got, "/") != strings.Count(pattern, "/") {
				t.Fatalf("CellPath(%q, %q) = %q changed the directory depth", pattern, label, got)
			}
		} else if got != pattern {
			t.Fatalf("CellPath(%q, %q) = %q rewrote a placeholder-free pattern", pattern, label, got)
		}
	})
}
