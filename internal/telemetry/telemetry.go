// Package telemetry is the deterministic observability layer of the
// simulator: a cycle-timestamped event bus threaded through the
// serving engine and the cluster router, a per-node gauge sampler, and
// exporters for Chrome trace-event JSON (Perfetto), JSONL event logs
// and CSV time series.
//
// Recording is opt-in and nil-safe: every emission site in the engine
// and router is guarded by a nil check on the Recorder, so with no
// recorder attached the simulators take the exact same branches and
// produce bit-identical metrics ("zero-cost and bit-inert when
// disabled"). With a recorder attached, events are appended to
// per-node buffers — each engine's buffer is touched only by the
// goroutine advancing that engine — and merged into a single
// deterministic stream by Collector.Events, so trace bytes are
// byte-reproducible at any -parallel width.
//
// Steps replayed from the step memo (serving.StepCacheOn) never
// re-run the analytical model, but the engine still emits their
// decode/prefill events from the replayed (cycles, counters) pair
// with MemoHit set: traces are complete, and a memo-hit step is
// distinguishable from an executed one. Like the StepCache metrics
// block, the MemoHit annotation is a diagnostic that sits outside the
// bit-identity guarantees — concurrently advancing nodes race to
// publish shared memo entries, so which steps replay depends on
// fan-out timing. Every other event byte is reproducible at any
// parallelism; StripMemoHits normalises a stream for byte comparison
// (the serving.StepCacheNoMemo mode needs no normalisation at all).
package telemetry

import "sort"

// Kind enumerates the lifecycle event types. The zero value is
// KindArrive; every recorded event carries exactly one Kind.
type Kind uint8

const (
	// KindArrive: a request entered an engine's admission queue.
	// Tokens = prompt length, KVLen = full KV reservation.
	KindArrive Kind = iota
	// KindRoute: the cluster router picked a target node for a
	// request. Target = chosen node, Load/Backlog = the per-node
	// outstanding-token and prefill-backlog snapshots the decision
	// saw. Node is -1 (router events are fleet-level).
	KindRoute
	// KindForward: overload control re-targeted a request from a
	// saturated pick to the least-loaded node. Target = new node.
	KindForward
	// KindRetry: overload control re-enqueued a request with
	// exponential backoff. Dur = backoff delay in cycles, Tokens =
	// attempt number.
	KindRetry
	// KindShed: the router found the fleet saturated for a request
	// (each shed attempt is one event). Tokens = attempt number.
	KindShed
	// KindDrop: a request exhausted its retry budget and left the
	// system unserved.
	KindDrop
	// KindAdmit: the engine bound a request to a batch slot. Slot =
	// slot index, KVLen = KV tokens reserved against the cap,
	// Tokens = decode tokens already generated (non-zero only when
	// resuming a preempted request).
	KindAdmit
	// KindPrefixHit: the session prefix cache covered a prefix of
	// the prompt. Tokens = prefill tokens skipped.
	KindPrefixHit
	// KindPrefixMiss: the prompt had no reusable cached prefix.
	KindPrefixMiss
	// KindPrefill: one prefill chunk was processed for a stream.
	// Tokens = chunk length, Dur = the step's cycle cost, MemoHit =
	// step replayed from the step memo.
	KindPrefill
	// KindDecode: one decode token was produced for a stream.
	// Tokens = tokens generated so far for the request, Dur = the
	// step's cycle cost, MemoHit = step replayed from the step memo.
	KindDecode
	// KindPreempt: a running stream was evicted back to the queue.
	// Tokens = decode tokens preserved for resume, KVLen = KV
	// reservation released.
	KindPreempt
	// KindRetire: a request completed and released its slot.
	// Tokens = total decode tokens, Dur = cycles since arrival.
	KindRetire
	// KindSample: a periodic gauge sample (see Gauges). Req,
	// Session and Slot are -1.
	KindSample
	// KindNodeDown: a node crashed, losing its KV, prefix cache and
	// in-flight streams. Target = crashed node, Tokens = in-flight and
	// queued requests taken down with it, KVLen = decode tokens whose
	// KV was lost (recomputed as prefill on redispatch), Dur = the
	// failure detector's blind window in cycles. Node is -1 (fault
	// events are fleet-level).
	KindNodeDown
	// KindNodeUp: a crashed node rejoined the fleet cold (empty KV and
	// prefix cache). Target = rejoined node, Dur = downtime in cycles.
	KindNodeUp
	// KindRedispatch: a request lost to a node crash re-entered the
	// router. Tokens = decode tokens already generated (re-prefilled,
	// never re-generated, on the new node). The request's next
	// KindRoute event names the node it lands on.
	KindRedispatch
	// KindHWSample: one hardware-profile bucket (see HWGauges),
	// emitted post-drain by engines running with -hwprof, stamped at
	// the bucket's end boundary on the shared sampling grid. Req,
	// Session and Slot are -1.
	KindHWSample
)

var kindNames = [...]string{
	"arrive", "route", "forward", "retry", "shed", "drop",
	"admit", "prefix-hit", "prefix-miss", "prefill", "decode",
	"preempt", "retire", "sample",
	"node-down", "node-up", "redispatch", "hw-sample",
}

// String returns the stable wire name of the kind, used by every
// exporter ("arrive", "route", ..., "sample").
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Gauges is one node's load snapshot taken by the K-cycle sampler.
type Gauges struct {
	// Outstanding is the engine's outstanding-token total (queued +
	// running prompt and decode work), the router's primary load
	// signal.
	Outstanding int64
	// Backlog is the prefill backlog: prompt tokens not yet
	// prefilled across queue and running streams.
	Backlog int64
	// KVUsed is the KV reservation level against KVCapTokens (0
	// when admission control is off).
	KVUsed int64
	// Running is the number of occupied batch slots.
	Running int
	// PrefixFill is the session prefix cache's resident token count
	// (0 when the cache is disabled).
	PrefixFill int64
}

// HWGauges is one hardware-profile bucket attached to a KindHWSample
// event: the raw counter sums of the engine steps that completed in
// the bucket, plus the bottleneck class the hwprof classifier
// assigned. All numeric fields are summable — the CSV exporter's
// fleet rollup adds them across nodes and re-derives rates from the
// sums, so the rollup is exact rather than an average of averages.
type HWGauges struct {
	// Steps completed in the bucket and their wall-clock cost
	// (straggler-scaled engine cycles).
	Steps      int64
	BusyCycles int64
	// Cycles is the raw (unscaled) core-cycle counter sum.
	Cycles int64
	// DRAMBytes is line-sized DRAM traffic (reads + writes).
	DRAMBytes int64
	// L2 and stall counter sums, denominators included so rates can
	// be re-derived after any rollup.
	L2Hits        int64
	L2Accesses    int64
	CoreMemStall  int64
	CacheStall    int64
	SliceCycles   int64
	DRAMBusCycles int64
	// Cores and Channels are the node's hardware shape (per-node
	// fraction denominators). The fleet is homogeneous, so rollups
	// take them from any node.
	Cores    int
	Channels int
	// Class is the bucket's bottleneck class wire name
	// ("idle", "compute-bound", "memory-bound", "stalled").
	Class string
}

// Event is one recorded lifecycle event. Integer ID fields use -1 for
// "not applicable" (e.g. Slot before admission, Req on samples);
// request IDs start at 0, so zero values are meaningful and never
// stand in for absence.
type Event struct {
	Kind    Kind
	Cycle   int64 // global cycle at which the event completed
	Dur     int64 // span length in cycles; 0 for instants
	Node    int   // stamped by the Collector; -1 = router
	Req     int   // request ID, -1 if n/a
	Session int   // session ID, -1 if none
	Slot    int   // batch slot, -1 if n/a
	Tokens  int   // kind-specific token count (see Kind docs)
	KVLen   int   // kind-specific KV token count (see Kind docs)
	MemoHit bool  // step replayed from the step memo
	Target  int   // route/forward destination node, -1 if n/a
	// Load and Backlog are per-node snapshots attached to KindRoute
	// events; nil otherwise. They alias router-owned scratch only
	// until the recorder copies them (Buffer.Record copies).
	Load    []int64
	Backlog []int64
	Gauges  Gauges // KindSample only
	// HW is the hardware-profile bucket attached to KindHWSample
	// events; nil otherwise.
	HW *HWGauges
}

// Recorder receives lifecycle events. Implementations are not required
// to be safe for concurrent use: the engine contract is that a given
// Recorder is only ever called from the goroutine advancing the engine
// it is attached to.
type Recorder interface {
	Record(ev Event)
}

// Buffer is the append-only Recorder used per node (and for the
// router). It copies the Load/Backlog snapshot slices so callers may
// reuse their scratch buffers across events.
type Buffer struct {
	events []Event
}

// Record appends ev to the buffer.
func (b *Buffer) Record(ev Event) {
	if ev.Load != nil {
		ev.Load = append([]int64(nil), ev.Load...)
	}
	if ev.Backlog != nil {
		ev.Backlog = append([]int64(nil), ev.Backlog...)
	}
	b.events = append(b.events, ev)
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int { return len(b.events) }

// Events returns the recorded events in append order. The slice is
// owned by the buffer; callers must not mutate it.
func (b *Buffer) Events() []Event { return b.events }

// Collector owns one Buffer per node plus a router buffer and merges
// them into a single deterministic event stream. Node recorders must
// be created (Node calls) before engines advance concurrently; after
// that, each node's buffer is only appended to by the goroutine
// driving that node, so no locking is needed and the merge order is
// independent of scheduling.
type Collector struct {
	sampleEvery int64
	router      Buffer
	nodes       []*Buffer
}

// NewCollector returns a collector whose engines sample gauges every
// sampleEvery cycles (0 disables sampling).
func NewCollector(sampleEvery int64) *Collector {
	return &Collector{sampleEvery: sampleEvery}
}

// SampleEvery returns the gauge sampling period in cycles (0 = off).
func (c *Collector) SampleEvery() int64 { return c.sampleEvery }

// stamped wraps a buffer and stamps every event with a fixed node
// index, so emission sites need no knowledge of fleet topology.
type stamped struct {
	buf  *Buffer
	node int
}

func (s stamped) Record(ev Event) {
	ev.Node = s.node
	s.buf.Record(ev)
}

// Router returns the recorder for fleet-level router events, stamped
// Node = -1.
func (c *Collector) Router() Recorder { return stamped{buf: &c.router, node: -1} }

// Node returns the recorder for node i, stamped Node = i, creating
// buffers as needed. Not safe for concurrent use — call for every
// node before the fan-out starts.
func (c *Collector) Node(i int) Recorder {
	for len(c.nodes) <= i {
		c.nodes = append(c.nodes, &Buffer{})
	}
	return stamped{buf: c.nodes[i], node: i}
}

// Nodes returns the number of node buffers created so far.
func (c *Collector) Nodes() int { return len(c.nodes) }

// StripMemoHits clears the MemoHit annotation on every event, in
// place — the trace-level analogue of Metrics.StripStepCache. The
// flag records which steps replayed from the shared step memo, the
// one signal that depends on fan-out timing; a stripped stream is
// byte-identical at any parallelism.
func StripMemoHits(events []Event) {
	for i := range events {
		events[i].MemoHit = false
	}
}

// Events merges all buffers into one stream ordered by (Cycle, buffer,
// append sequence), with the router buffer first among same-cycle
// events. Each buffer is already cycle-monotonic (engines and router
// advance time forward only), so a stable sort on Cycle yields a total
// deterministic order that does not depend on goroutine scheduling.
func (c *Collector) Events() []Event {
	total := c.router.Len()
	for _, b := range c.nodes {
		total += b.Len()
	}
	out := make([]Event, 0, total)
	out = append(out, c.router.events...)
	for _, b := range c.nodes {
		out = append(out, b.events...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}
