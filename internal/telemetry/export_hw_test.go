package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/goldentest"
)

// hwExportFixture extends the exporter fixture with hardware-profile
// sample events on the same 50-cycle grid — the byte-format contract
// of the hw counter tracks through all three exporters.
func hwExportFixture() []Event {
	c := NewCollector(50)
	n0 := c.Node(0)
	n1 := c.Node(1)
	n0.Record(Event{Kind: KindArrive, Cycle: 0, Req: 0, Session: 0, Slot: -1, Tokens: 64, KVLen: 68, Target: -1})
	n0.Record(Event{Kind: KindAdmit, Cycle: 0, Req: 0, Session: 0, Slot: 0, KVLen: 68, Target: -1})
	n0.Record(Event{Kind: KindDecode, Cycle: 40, Dur: 40, Req: 0, Session: 0, Slot: 0, Tokens: 1, Target: -1})
	n0.Record(Event{Kind: KindSample, Cycle: 50, Req: -1, Session: -1, Slot: -1, Target: -1,
		Gauges: Gauges{Outstanding: 70, KVUsed: 68, Running: 1}})
	n1.Record(Event{Kind: KindSample, Cycle: 50, Req: -1, Session: -1, Slot: -1, Target: -1,
		Gauges: Gauges{Outstanding: 36, Backlog: 32}})
	n0.Record(Event{Kind: KindDecode, Cycle: 90, Dur: 50, Req: 0, Session: 0, Slot: 0, Tokens: 2, Target: -1})
	n0.Record(Event{Kind: KindRetire, Cycle: 90, Dur: 90, Req: 0, Session: 0, Slot: 0, Tokens: 3, KVLen: 71, Target: -1})
	// The profile's bucket time-series, stamped at bucket ends: node 0
	// busy both buckets (memory-bound then stalled), node 1 idle — the
	// fleet rollup row must reduce to the most severe class.
	n0.Record(Event{Kind: KindHWSample, Cycle: 50, Req: -1, Session: -1, Slot: -1, Target: -1,
		HW: &HWGauges{Steps: 1, BusyCycles: 40, Cycles: 40, DRAMBytes: 4096,
			L2Hits: 60, L2Accesses: 100, CoreMemStall: 140, CacheStall: 10, SliceCycles: 80,
			DRAMBusCycles: 70, Cores: 4, Channels: 2, Class: "memory-bound"}})
	n0.Record(Event{Kind: KindHWSample, Cycle: 100, Req: -1, Session: -1, Slot: -1, Target: -1,
		HW: &HWGauges{Steps: 1, BusyCycles: 50, Cycles: 50, DRAMBytes: 8192,
			L2Hits: 30, L2Accesses: 120, CoreMemStall: 60, CacheStall: 70, SliceCycles: 100,
			DRAMBusCycles: 30, Cores: 4, Channels: 2, Class: "stalled"}})
	n1.Record(Event{Kind: KindHWSample, Cycle: 50, Req: -1, Session: -1, Slot: -1, Target: -1,
		HW: &HWGauges{Cores: 4, Channels: 2, Class: "idle"}})
	n1.Record(Event{Kind: KindHWSample, Cycle: 100, Req: -1, Session: -1, Slot: -1, Target: -1,
		HW: &HWGauges{Cores: 4, Channels: 2, Class: "idle"}})
	return c.Events()
}

// TestWritePerfettoHWGolden pins the hw counter tracks (DRAM
// GB/kilocycle, L2 hit rate, mem-stall fraction) in the Chrome
// trace-event rendering.
func TestWritePerfettoHWGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, hwExportFixture()); err != nil {
		t.Fatal(err)
	}
	goldentest.CompareBytes(t, "testdata/export.hw.perfetto.golden.json", buf.Bytes())
}

// TestWriteJSONLHWGolden pins the hw-sample JSONL rendering.
func TestWriteJSONLHWGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, hwExportFixture()); err != nil {
		t.Fatal(err)
	}
	goldentest.CompareBytes(t, "testdata/export.hw.events.golden.jsonl", buf.Bytes())
}

// TestWriteTimeseriesCSVHWGolden pins the extended time-series
// rendering: the hw columns joined onto the gauge rows per (cycle,
// node), plus the fleet rollup rows with their most-severe class
// reduction.
func TestWriteTimeseriesCSVHWGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeseriesCSV(&buf, hwExportFixture()); err != nil {
		t.Fatal(err)
	}
	goldentest.CompareBytes(t, "testdata/export.hw.timeseries.golden.csv", buf.Bytes())
}

// TestPerfettoHWCounterTracks: the hw counter tracks appear by name in
// the trace — what makes the profile navigable in the Perfetto UI.
func TestPerfettoHWCounterTracks(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, hwExportFixture()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"hw dram gb/kcycle"`, `"hw l2 hit rate"`, `"hw mem-stall frac"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("perfetto trace missing hw counter track %s", want)
		}
	}
}

// TestTimeseriesCSVHeaderOnly: a stream with no gauge or hw samples —
// a fault-only run recorded with sampling disabled — writes the
// header line, not a zero-byte file, so downstream CSV readers always
// see the schema.
func TestTimeseriesCSVHeaderOnly(t *testing.T) {
	c := NewCollector(0)
	router := c.Router()
	router.Record(Event{Kind: KindNodeDown, Cycle: 45, Dur: 20, Req: -1, Session: -1, Slot: -1, Target: 1})
	router.Record(Event{Kind: KindNodeUp, Cycle: 110, Dur: 65, Req: -1, Session: -1, Slot: -1, Target: 1})
	var buf bytes.Buffer
	if err := WriteTimeseriesCSV(&buf, c.Events()); err != nil {
		t.Fatal(err)
	}
	want := "cycle,node,outstanding,backlog,kv_used,running,prefix_fill\n"
	if buf.String() != want {
		t.Fatalf("fault-only time series = %q, want header-only %q", buf.String(), want)
	}
	var empty bytes.Buffer
	if err := WriteTimeseriesCSV(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if empty.String() != want {
		t.Fatalf("empty-stream time series = %q, want header-only %q", empty.String(), want)
	}
}
