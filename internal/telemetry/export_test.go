package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/goldentest"
)

// exportFixture builds a small hand-written event stream covering
// every event kind across a router and two nodes — the byte-format
// contract the exporter goldens pin.
func exportFixture() []Event {
	c := NewCollector(50)
	router := c.Router()
	n0 := c.Node(0)
	n1 := c.Node(1)
	router.Record(Event{Kind: KindRoute, Cycle: 0, Req: 0, Session: 0, Slot: -1, Target: 0,
		Load: []int64{0, 0}, Backlog: []int64{0, 0}})
	n0.Record(Event{Kind: KindArrive, Cycle: 0, Req: 0, Session: 0, Slot: -1, Tokens: 64, KVLen: 68, Target: -1})
	n0.Record(Event{Kind: KindAdmit, Cycle: 0, Req: 0, Session: 0, Slot: 0, KVLen: 68, Target: -1})
	n0.Record(Event{Kind: KindPrefixMiss, Cycle: 0, Req: 0, Session: 0, Slot: 0, Target: -1})
	router.Record(Event{Kind: KindRoute, Cycle: 5, Req: 1, Session: 1, Slot: -1, Target: 1,
		Load: []int64{68, 0}, Backlog: []int64{64, 0}})
	router.Record(Event{Kind: KindShed, Cycle: 7, Req: 2, Session: 2, Slot: -1, Tokens: 1, Target: -1})
	router.Record(Event{Kind: KindRetry, Cycle: 7, Req: 2, Session: 2, Slot: -1, Dur: 20, Tokens: 2, Target: -1})
	router.Record(Event{Kind: KindForward, Cycle: 27, Req: 2, Session: 2, Slot: -1, Target: 1})
	n1.Record(Event{Kind: KindArrive, Cycle: 5, Req: 1, Session: 1, Slot: -1, Tokens: 32, KVLen: 36, Target: -1})
	n1.Record(Event{Kind: KindAdmit, Cycle: 5, Req: 1, Session: 1, Slot: 0, KVLen: 36, Target: -1})
	n1.Record(Event{Kind: KindPrefixHit, Cycle: 5, Req: 1, Session: 1, Slot: 0, Tokens: 16, Target: -1})
	n0.Record(Event{Kind: KindPrefill, Cycle: 30, Dur: 30, Req: 0, Session: 0, Slot: 0, Tokens: 32, Target: -1})
	n0.Record(Event{Kind: KindPrefill, Cycle: 60, Dur: 30, Req: 0, Session: 0, Slot: 0, Tokens: 32, MemoHit: true, Target: -1})
	n1.Record(Event{Kind: KindPreempt, Cycle: 40, Req: 1, Session: 1, Slot: 0, Tokens: 0, KVLen: 36, Target: -1})
	// Node 1 crashes with request 1 in flight: the down span extends
	// forward by the detection window, the victim re-enters the arrival
	// order carrying its generated tokens, and the node later rejoins.
	router.Record(Event{Kind: KindNodeDown, Cycle: 45, Dur: 20, Req: -1, Session: -1, Slot: -1, Target: 1,
		Tokens: 1, KVLen: 36})
	router.Record(Event{Kind: KindRedispatch, Cycle: 65, Req: 1, Session: 1, Slot: -1, Target: -1, Tokens: 1})
	router.Record(Event{Kind: KindNodeUp, Cycle: 110, Dur: 65, Req: -1, Session: -1, Slot: -1, Target: 1})
	n0.Record(Event{Kind: KindSample, Cycle: 50, Req: -1, Session: -1, Slot: -1, Target: -1,
		Gauges: Gauges{Outstanding: 70, Backlog: 0, KVUsed: 68, Running: 1, PrefixFill: 16}})
	n1.Record(Event{Kind: KindSample, Cycle: 50, Req: -1, Session: -1, Slot: -1, Target: -1,
		Gauges: Gauges{Outstanding: 36, Backlog: 32, KVUsed: 0, Running: 0, PrefixFill: 16}})
	n0.Record(Event{Kind: KindDecode, Cycle: 90, Dur: 30, Req: 0, Session: 0, Slot: 0, Tokens: 1, MemoHit: true, Target: -1})
	n0.Record(Event{Kind: KindDecode, Cycle: 120, Dur: 30, Req: 0, Session: 0, Slot: 0, Tokens: 2, Target: -1})
	n0.Record(Event{Kind: KindRetire, Cycle: 120, Dur: 120, Req: 0, Session: 0, Slot: 0, Tokens: 2, KVLen: 68, Target: -1})
	n0.Record(Event{Kind: KindSample, Cycle: 100, Req: -1, Session: -1, Slot: -1, Target: -1,
		Gauges: Gauges{Outstanding: 2, KVUsed: 68, Running: 1, PrefixFill: 16}})
	router.Record(Event{Kind: KindDrop, Cycle: 130, Req: 2, Session: 2, Slot: -1, Tokens: 3, Target: -1})
	return c.Events()
}

// TestWritePerfettoGolden pins the Chrome trace-event rendering byte
// for byte: metadata records, slice/flow/counter shapes and the args
// maps are all part of the contract Perfetto consumes.
func TestWritePerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, exportFixture()); err != nil {
		t.Fatal(err)
	}
	goldentest.CompareBytes(t, "testdata/export.perfetto.golden.json", buf.Bytes())
}

// TestWriteJSONLGolden pins the JSONL event-log rendering.
func TestWriteJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, exportFixture()); err != nil {
		t.Fatal(err)
	}
	goldentest.CompareBytes(t, "testdata/export.events.golden.jsonl", buf.Bytes())
}

// TestWriteTimeseriesCSVGolden pins the gauge time-series rendering,
// including the per-cycle fleet rollup rows.
func TestWriteTimeseriesCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimeseriesCSV(&buf, exportFixture()); err != nil {
		t.Fatal(err)
	}
	goldentest.CompareBytes(t, "testdata/export.timeseries.golden.csv", buf.Bytes())
}

// TestPerfettoAcceptanceSpans: the overload control path renders as
// named spans — a trace of a preempting, shedding fleet must show
// them, which is what makes the trace useful in the Perfetto UI.
func TestPerfettoAcceptanceSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, exportFixture()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"preempt r1"`, `"shed r2"`, `"retry r2"`, `"forward r2"`,
		`"node-down"`, `"node-up"`, `"redispatch r1"`,
		`"process_name"`, `"router"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("perfetto trace missing %s", want)
		}
	}
}
