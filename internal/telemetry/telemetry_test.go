package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestKindString: every kind has a stable wire name and out-of-range
// values degrade to "unknown" instead of panicking.
func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindArrive: "arrive", KindRoute: "route", KindForward: "forward",
		KindRetry: "retry", KindShed: "shed", KindDrop: "drop",
		KindAdmit: "admit", KindPrefixHit: "prefix-hit", KindPrefixMiss: "prefix-miss",
		KindPrefill: "prefill", KindDecode: "decode", KindPreempt: "preempt",
		KindRetire: "retire", KindSample: "sample",
	}
	for k, name := range want {
		if got := k.String(); got != name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, name)
		}
	}
	if got := Kind(200).String(); got != "unknown" {
		t.Errorf("out-of-range kind = %q, want unknown", got)
	}
}

// TestBufferCopiesSnapshots: Record must deep-copy the Load/Backlog
// slices so the router can reuse its scratch buffers between events.
func TestBufferCopiesSnapshots(t *testing.T) {
	var b Buffer
	scratch := []int64{1, 2}
	b.Record(Event{Kind: KindRoute, Load: scratch, Backlog: scratch})
	scratch[0] = 99
	ev := b.Events()[0]
	if ev.Load[0] != 1 || ev.Backlog[0] != 1 {
		t.Errorf("recorded snapshot aliases caller scratch: %v / %v", ev.Load, ev.Backlog)
	}
}

// TestCollectorMergeOrder: the merged stream is ordered by cycle, with
// the router buffer first among same-cycle events and each buffer's
// append order preserved — the total order that makes trace bytes
// independent of goroutine scheduling.
func TestCollectorMergeOrder(t *testing.T) {
	c := NewCollector(0)
	// Create all recorders up front, as the engines do.
	router := c.Router()
	n0 := c.Node(0)
	n1 := c.Node(1)
	n1.Record(Event{Kind: KindDecode, Cycle: 10, Req: 3})
	n0.Record(Event{Kind: KindAdmit, Cycle: 10, Req: 2})
	router.Record(Event{Kind: KindRoute, Cycle: 10, Req: 1})
	router.Record(Event{Kind: KindRoute, Cycle: 5, Req: 0})
	n0.Record(Event{Kind: KindDecode, Cycle: 20, Req: 2})
	events := c.Events()
	type key struct {
		k    Kind
		node int
		req  int
	}
	var got []key
	for _, ev := range events {
		got = append(got, key{ev.Kind, ev.Node, ev.Req})
	}
	want := []key{
		{KindRoute, -1, 0}, // cycle 5
		{KindRoute, -1, 1}, // cycle 10: router before nodes
		{KindAdmit, 0, 2},  // cycle 10: node 0 before node 1
		{KindDecode, 1, 3}, // cycle 10
		{KindDecode, 0, 2}, // cycle 20
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if c.Nodes() != 2 {
		t.Errorf("Nodes() = %d, want 2", c.Nodes())
	}
}

// TestSanitizeLabel: labels become filesystem-safe slugs.
func TestSanitizeLabel(t *testing.T) {
	cases := map[string]string{
		"mix/16req/seed1-n2-least-outstanding": "mix-16req-seed1-n2-least-outstanding",
		"Unopt":                                "unopt",
		"a b/c":                                "a-b-c",
		"--x--":                                "x",
		"v1.2_ok":                              "v1.2_ok",
		"":                                     "",
		"///":                                  "",
	}
	for in, want := range cases {
		if got := SanitizeLabel(in); got != want {
			t.Errorf("SanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCellPath: % placeholders expand to the sanitised label;
// placeholder-free patterns pass through untouched.
func TestCellPath(t *testing.T) {
	if got := CellPath("out/%.json", "A/B"); got != "out/a-b.json" {
		t.Errorf("CellPath = %q", got)
	}
	if got := CellPath("out/fixed.json", "A/B"); got != "out/fixed.json" {
		t.Errorf("placeholder-free CellPath = %q", got)
	}
}

// TestSpecNilSafety: a nil *Spec is fully inert — disabled, valid, and
// produces no collector — so call sites never need their own nil
// checks.
func TestSpecNilSafety(t *testing.T) {
	var s *Spec
	if s.Enabled() {
		t.Error("nil spec reports enabled")
	}
	if err := s.Validate(true); err != nil {
		t.Errorf("nil spec fails validation: %v", err)
	}
	if s.Collector() != nil {
		t.Error("nil spec produced a collector")
	}
}

// TestSpecValidate: each misconfiguration is rejected with a message
// naming the offending flag, and a well-formed spec passes.
func TestSpecValidate(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name      string
		spec      Spec
		multiCell bool
		want      string // "" = must pass
	}{
		{"disabled zero spec", Spec{}, true, ""},
		{"negative sample-every", Spec{SampleEvery: -1}, false, "-sample-every"},
		{"sample-every without output", Spec{SampleEvery: 10}, false, "no output path"},
		{"timeseries without sample-every", Spec{TimeseriesOut: dir + "/ts.csv"}, false, "-sample-every"},
		{"multi-cell without placeholder", Spec{TraceOut: dir + "/t.json"}, true, "placeholder"},
		{"multi-cell with placeholder", Spec{TraceOut: dir + "/t-%.json"}, true, ""},
		{"unwritable dir", Spec{EventsOut: dir + "/nope/e.jsonl"}, false, "not writable"},
		{"well-formed", Spec{
			TraceOut: dir + "/t.json", EventsOut: dir + "/e.jsonl",
			TimeseriesOut: dir + "/ts.csv", SampleEvery: 100,
		}, false, ""},
	}
	for _, c := range cases {
		err := c.spec.Validate(c.multiCell)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestSpecExport: Export writes every configured artifact, expanding
// the % placeholder with the sanitised cell label, and leaves the
// probe-free directory clean otherwise.
func TestSpecExport(t *testing.T) {
	dir := t.TempDir()
	s := &Spec{
		TraceOut:      filepath.Join(dir, "trace-%.json"),
		EventsOut:     filepath.Join(dir, "events-%.jsonl"),
		TimeseriesOut: filepath.Join(dir, "ts-%.csv"),
		SampleEvery:   10,
	}
	col := s.Collector()
	if col == nil {
		t.Fatal("enabled spec produced no collector")
	}
	rec := col.Node(0)
	rec.Record(Event{Kind: KindArrive, Cycle: 1, Req: 0, Session: -1, Slot: -1, Target: -1})
	rec.Record(Event{Kind: KindSample, Cycle: 10, Req: -1, Session: -1, Slot: -1, Target: -1,
		Gauges: Gauges{Outstanding: 4}})
	if err := s.Export("Cell/One", col); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"trace-cell-one.json", "events-cell-one.jsonl", "ts-cell-one.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing artifact: %v", err)
			continue
		}
		if len(b) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}
