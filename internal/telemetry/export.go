// JSONL and CSV exporters. Both render a merged event stream (see
// Collector.Events) into byte-deterministic artifacts: field order is
// fixed by Go struct declaration order, numbers are integers, and the
// input order is the collector's deterministic merge order.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// jsonlEvent fixes the JSONL field order. ID fields are always
// emitted (request ID 0 is valid, so omitempty would be lossy);
// kind-specific payloads are omitted when absent.
type jsonlEvent struct {
	Kind    string  `json:"kind"`
	Cycle   int64   `json:"cycle"`
	Dur     int64   `json:"dur"`
	Node    int     `json:"node"`
	Req     int     `json:"req"`
	Session int     `json:"session"`
	Slot    int     `json:"slot"`
	Tokens  int     `json:"tokens"`
	KV      int     `json:"kv"`
	Memo    bool    `json:"memo,omitempty"`
	Target  int     `json:"target"`
	Load    []int64 `json:"load,omitempty"`
	Backlog []int64 `json:"backlog,omitempty"`
	Gauges  *Gauges `json:"gauges,omitempty"`
}

// WriteJSONL writes one JSON object per event, one event per line, in
// the given order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		ev := &events[i]
		je := jsonlEvent{
			Kind:    ev.Kind.String(),
			Cycle:   ev.Cycle,
			Dur:     ev.Dur,
			Node:    ev.Node,
			Req:     ev.Req,
			Session: ev.Session,
			Slot:    ev.Slot,
			Tokens:  ev.Tokens,
			KV:      ev.KVLen,
			Memo:    ev.MemoHit,
			Target:  ev.Target,
			Load:    ev.Load,
			Backlog: ev.Backlog,
		}
		if ev.Kind == KindSample {
			g := ev.Gauges
			je.Gauges = &g
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTimeseriesCSV renders the KindSample events of a merged stream
// as CSV rows, one per (cycle, node) sample, followed by a "fleet"
// rollup row per sample cycle summing the per-node gauges. Engines
// stamp samples on shared K-cycle boundaries, so same-cycle samples
// from different nodes are adjacent in the merged stream and roll up
// exactly.
func WriteTimeseriesCSV(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("cycle,node,outstanding,backlog,kv_used,running,prefix_fill\n"); err != nil {
		return err
	}
	row := func(cycle int64, node string, g Gauges) {
		bw.WriteString(strconv.FormatInt(cycle, 10))
		bw.WriteByte(',')
		bw.WriteString(node)
		fmt.Fprintf(bw, ",%d,%d,%d,%d,%d\n",
			g.Outstanding, g.Backlog, g.KVUsed, g.Running, g.PrefixFill)
	}
	var (
		cur     int64
		fleet   Gauges
		pending bool
	)
	flush := func() {
		if pending {
			row(cur, "fleet", fleet)
			fleet = Gauges{}
			pending = false
		}
	}
	for i := range events {
		ev := &events[i]
		if ev.Kind != KindSample {
			continue
		}
		if pending && ev.Cycle != cur {
			flush()
		}
		cur = ev.Cycle
		row(ev.Cycle, strconv.Itoa(ev.Node), ev.Gauges)
		fleet.Outstanding += ev.Gauges.Outstanding
		fleet.Backlog += ev.Gauges.Backlog
		fleet.KVUsed += ev.Gauges.KVUsed
		fleet.Running += ev.Gauges.Running
		fleet.PrefixFill += ev.Gauges.PrefixFill
		pending = true
	}
	flush()
	return bw.Flush()
}
