// JSONL and CSV exporters. Both render a merged event stream (see
// Collector.Events) into byte-deterministic artifacts: field order is
// fixed by Go struct declaration order, numbers are integers, and the
// input order is the collector's deterministic merge order.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/hwprof"
)

// jsonlEvent fixes the JSONL field order. ID fields are always
// emitted (request ID 0 is valid, so omitempty would be lossy);
// kind-specific payloads are omitted when absent.
type jsonlEvent struct {
	Kind    string    `json:"kind"`
	Cycle   int64     `json:"cycle"`
	Dur     int64     `json:"dur"`
	Node    int       `json:"node"`
	Req     int       `json:"req"`
	Session int       `json:"session"`
	Slot    int       `json:"slot"`
	Tokens  int       `json:"tokens"`
	KV      int       `json:"kv"`
	Memo    bool      `json:"memo,omitempty"`
	Target  int       `json:"target"`
	Load    []int64   `json:"load,omitempty"`
	Backlog []int64   `json:"backlog,omitempty"`
	Gauges  *Gauges   `json:"gauges,omitempty"`
	HW      *HWGauges `json:"hw,omitempty"`
}

// WriteJSONL writes one JSON object per event, one event per line, in
// the given order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		ev := &events[i]
		je := jsonlEvent{
			Kind:    ev.Kind.String(),
			Cycle:   ev.Cycle,
			Dur:     ev.Dur,
			Node:    ev.Node,
			Req:     ev.Req,
			Session: ev.Session,
			Slot:    ev.Slot,
			Tokens:  ev.Tokens,
			KV:      ev.KVLen,
			Memo:    ev.MemoHit,
			Target:  ev.Target,
			Load:    ev.Load,
			Backlog: ev.Backlog,
		}
		if ev.Kind == KindSample {
			g := ev.Gauges
			je.Gauges = &g
		}
		if ev.Kind == KindHWSample && ev.HW != nil {
			h := *ev.HW
			je.HW = &h
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTimeseriesCSV renders the KindSample events of a merged stream
// as CSV rows, one per (cycle, node) sample, followed by a "fleet"
// rollup row per sample cycle summing the per-node gauges. Engines
// stamp samples on shared K-cycle boundaries, so same-cycle samples
// from different nodes are adjacent in the merged stream and roll up
// exactly. A stream with no samples at all still yields the header
// line, so downstream CSV tooling always sees a well-formed file.
//
// When the stream carries KindHWSample events (engines run with the
// hardware profiler on), the CSV switches to the extended schema:
// seven hw_* columns are appended to every row, merging each node's
// gauge sample and hardware bucket at the shared boundary. The fleet
// row sums the raw hardware counters across nodes and re-derives the
// rates from the sums (exact, not an average of averages); its class
// is the most severe per-node class at that boundary. Streams without
// hardware samples produce byte-identical pre-hwprof output.
func WriteTimeseriesCSV(w io.Writer, events []Event) error {
	for i := range events {
		if events[i].Kind == KindHWSample {
			return writeTimeseriesHW(w, events)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("cycle,node,outstanding,backlog,kv_used,running,prefix_fill\n"); err != nil {
		return err
	}
	row := func(cycle int64, node string, g Gauges) {
		bw.WriteString(strconv.FormatInt(cycle, 10))
		bw.WriteByte(',')
		bw.WriteString(node)
		fmt.Fprintf(bw, ",%d,%d,%d,%d,%d\n",
			g.Outstanding, g.Backlog, g.KVUsed, g.Running, g.PrefixFill)
	}
	var (
		cur     int64
		fleet   Gauges
		pending bool
	)
	flush := func() {
		if pending {
			row(cur, "fleet", fleet)
			fleet = Gauges{}
			pending = false
		}
	}
	for i := range events {
		ev := &events[i]
		if ev.Kind != KindSample {
			continue
		}
		if pending && ev.Cycle != cur {
			flush()
		}
		cur = ev.Cycle
		row(ev.Cycle, strconv.Itoa(ev.Node), ev.Gauges)
		fleet.Outstanding += ev.Gauges.Outstanding
		fleet.Backlog += ev.Gauges.Backlog
		fleet.KVUsed += ev.Gauges.KVUsed
		fleet.Running += ev.Gauges.Running
		fleet.PrefixFill += ev.Gauges.PrefixFill
		pending = true
	}
	flush()
	return bw.Flush()
}

// tsCell accumulates one (cycle, node)'s gauge sample and hardware
// bucket before the row is emitted.
type tsCell struct {
	g  Gauges
	hw *HWGauges
}

// writeTimeseriesHW is the extended-schema CSV writer (see
// WriteTimeseriesCSV). Per cycle it groups samples by node in
// first-appearance order — the collector's merge order, which is
// node order — emits one merged row per node, then the fleet rollup.
func writeTimeseriesHW(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("cycle,node,outstanding,backlog,kv_used,running,prefix_fill," +
		"hw_steps,hw_busy_cycles,hw_dram_bytes,hw_l2_hit,hw_mem_frac,hw_bus_util,hw_class\n"); err != nil {
		return err
	}
	frac := func(num, den int64) string {
		if den <= 0 {
			return "0.000000"
		}
		return strconv.FormatFloat(float64(num)/float64(den), 'f', 6, 64)
	}
	row := func(cycle int64, node string, c *tsCell) {
		bw.WriteString(strconv.FormatInt(cycle, 10))
		bw.WriteByte(',')
		bw.WriteString(node)
		fmt.Fprintf(bw, ",%d,%d,%d,%d,%d",
			c.g.Outstanding, c.g.Backlog, c.g.KVUsed, c.g.Running, c.g.PrefixFill)
		h := c.hw
		if h == nil {
			h = &HWGauges{}
		}
		fmt.Fprintf(bw, ",%d,%d,%d,%s,%s,%s,%s\n",
			h.Steps, h.BusyCycles, h.DRAMBytes,
			frac(h.L2Hits, h.L2Accesses),
			frac(h.CoreMemStall, h.Cycles*int64(h.Cores)),
			frac(h.DRAMBusCycles, h.Cycles*int64(h.Channels)),
			h.Class)
	}
	var (
		cur     int64
		order   []int
		cells   = map[int]*tsCell{}
		pending bool
	)
	flush := func() {
		if !pending {
			return
		}
		fleet := tsCell{hw: &HWGauges{}}
		var classes []hwprof.Class
		for _, node := range order {
			c := cells[node]
			row(cur, strconv.Itoa(node), c)
			fleet.g.Outstanding += c.g.Outstanding
			fleet.g.Backlog += c.g.Backlog
			fleet.g.KVUsed += c.g.KVUsed
			fleet.g.Running += c.g.Running
			fleet.g.PrefixFill += c.g.PrefixFill
			if c.hw != nil {
				fh := fleet.hw
				fh.Steps += c.hw.Steps
				fh.BusyCycles += c.hw.BusyCycles
				fh.Cycles += c.hw.Cycles
				fh.DRAMBytes += c.hw.DRAMBytes
				fh.L2Hits += c.hw.L2Hits
				fh.L2Accesses += c.hw.L2Accesses
				fh.CoreMemStall += c.hw.CoreMemStall
				fh.CacheStall += c.hw.CacheStall
				fh.SliceCycles += c.hw.SliceCycles
				fh.DRAMBusCycles += c.hw.DRAMBusCycles
				if fh.Cores == 0 {
					fh.Cores, fh.Channels = c.hw.Cores, c.hw.Channels
				}
				if cl, ok := hwprof.ClassFromString(c.hw.Class); ok {
					classes = append(classes, cl)
				}
			}
			delete(cells, node)
		}
		fleet.hw.Class = hwprof.MostSevere(classes).String()
		row(cur, "fleet", &fleet)
		order = order[:0]
		pending = false
	}
	for i := range events {
		ev := &events[i]
		if ev.Kind != KindSample && ev.Kind != KindHWSample {
			continue
		}
		if pending && ev.Cycle != cur {
			flush()
		}
		cur = ev.Cycle
		c := cells[ev.Node]
		if c == nil {
			c = &tsCell{}
			cells[ev.Node] = c
			order = append(order, ev.Node)
		}
		if ev.Kind == KindSample {
			c.g = ev.Gauges
		} else {
			c.hw = ev.HW
		}
		pending = true
	}
	flush()
	return bw.Flush()
}
