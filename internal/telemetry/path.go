// Output-path handling for the telemetry CLI flags: cell-label
// expansion of `%` placeholders, label sanitisation, and the up-front
// validation both CLIs run before starting a sweep (so a typo'd
// directory fails in milliseconds, not after the simulation).
package telemetry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Spec configures telemetry output for a run or sweep. Empty paths
// disable the corresponding exporter; a nil *Spec (or one with no
// paths) disables recording entirely.
type Spec struct {
	// TraceOut is the Chrome trace-event JSON (Perfetto) output
	// path. In multi-cell sweeps it must contain a `%` placeholder,
	// replaced per cell with the sanitised cell label.
	TraceOut string
	// EventsOut is the JSONL event-log output path (same `%` rule).
	EventsOut string
	// TimeseriesOut is the CSV gauge time-series output path (same
	// `%` rule); requires SampleEvery > 0.
	TimeseriesOut string
	// SampleEvery is the gauge sampling period in cycles (0 = off).
	SampleEvery int64
	// AllowBareSampling permits SampleEvery > 0 with no telemetry
	// output configured. The hardware profiler buckets its
	// time-series on the same -sample-every grid, so a CLI running
	// -hwprof sets this: the sampling period is consumed even when no
	// trace artifact is requested.
	AllowBareSampling bool
}

// Enabled reports whether any output is configured, i.e. whether the
// run needs a Collector at all.
func (s *Spec) Enabled() bool {
	return s != nil && (s.TraceOut != "" || s.EventsOut != "" || s.TimeseriesOut != "")
}

// Validate checks the spec before any simulation runs: sampling
// bounds, the sample/output pairing, `%` placeholders when the sweep
// has more than one cell, and that each output directory is writable.
func (s *Spec) Validate(multiCell bool) error {
	if s == nil {
		return nil
	}
	if s.SampleEvery < 0 {
		return fmt.Errorf("-sample-every must be >= 0, got %d", s.SampleEvery)
	}
	if s.SampleEvery > 0 && !s.Enabled() && !s.AllowBareSampling {
		return errors.New("-sample-every is set but no output path is configured (need -trace-out, -events-out, -timeseries-out or -hwprof)")
	}
	if s.TimeseriesOut != "" && s.SampleEvery == 0 {
		return errors.New("-timeseries-out requires -sample-every > 0")
	}
	for _, p := range []struct{ flag, path string }{
		{"-trace-out", s.TraceOut},
		{"-events-out", s.EventsOut},
		{"-timeseries-out", s.TimeseriesOut},
	} {
		if err := ValidateOutPath(p.flag, p.path, multiCell); err != nil {
			return err
		}
	}
	return nil
}

// ValidateOutPath checks one output-path flag the way Spec.Validate
// checks the telemetry outputs: multi-cell sweeps need a `%`
// placeholder, and the target directory must accept new files. Empty
// paths pass (the output is simply disabled). Exported for flags that
// live outside the Spec, like the profiler's -hwprof-out.
func ValidateOutPath(flag, path string, multiCell bool) error {
	if path == "" {
		return nil
	}
	if multiCell && !strings.Contains(path, "%") {
		return fmt.Errorf("%s %q: sweep produces multiple cells; the path needs a %% placeholder (expanded to the cell label)", flag, path)
	}
	return checkWritableDir(flag, CellPath(path, "probe"))
}

// checkWritableDir probes that path's directory exists and accepts
// new files, without leaving anything behind.
func checkWritableDir(flag, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".telemetry-probe-*")
	if err != nil {
		return fmt.Errorf("%s: output directory %q is not writable: %v", flag, dir, err)
	}
	name := f.Name()
	f.Close()
	os.Remove(name)
	return nil
}

// CellPath expands every `%` in pattern with the sanitised cell
// label. Patterns without a placeholder are returned unchanged
// (single-cell runs).
func CellPath(pattern, label string) string {
	if !strings.Contains(pattern, "%") {
		return pattern
	}
	return strings.ReplaceAll(pattern, "%", SanitizeLabel(label))
}

// SanitizeLabel maps an arbitrary cell label to a filesystem-safe
// slug: ASCII letters are lowercased, digits and `.`/`_`/`-` are
// kept, every other rune becomes `-`, and leading/trailing dashes are
// trimmed.
func SanitizeLabel(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '.' || r == '_' || r == '-':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

// Export writes every configured artifact for one cell, expanding
// `%` placeholders with label. The collector's merged stream is
// materialised once and shared by all exporters.
func (s *Spec) Export(label string, col *Collector) error {
	if !s.Enabled() {
		return nil
	}
	events := col.Events()
	write := func(path string, fn func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(CellPath(path, label))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(s.TraceOut, func(f *os.File) error { return WritePerfetto(f, events) }); err != nil {
		return fmt.Errorf("telemetry: trace-out: %w", err)
	}
	if err := write(s.EventsOut, func(f *os.File) error { return WriteJSONL(f, events) }); err != nil {
		return fmt.Errorf("telemetry: events-out: %w", err)
	}
	if err := write(s.TimeseriesOut, func(f *os.File) error { return WriteTimeseriesCSV(f, events) }); err != nil {
		return fmt.Errorf("telemetry: timeseries-out: %w", err)
	}
	return nil
}

// Collector returns a collector sized for this spec's sampling
// period, or nil when no output is configured — the nil flows through
// as a nil Recorder, keeping the simulators on their unrecorded
// (bit-inert) path.
func (s *Spec) Collector() *Collector {
	if !s.Enabled() {
		return nil
	}
	return NewCollector(s.SampleEvery)
}
