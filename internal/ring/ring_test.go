package ring

import (
	"testing"
	"testing/quick"
)

func TestPushPopFIFO(t *testing.T) {
	r := New[int](4)
	if !r.Empty() || r.Full() || r.Len() != 0 || r.Cap() != 4 {
		t.Fatalf("fresh ring state wrong: len=%d cap=%d", r.Len(), r.Cap())
	}
	for i := 1; i <= 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(5) {
		t.Fatal("push into full ring succeeded")
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	for i := 1; i <= 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestWrapAround(t *testing.T) {
	r := New[int](3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push(round*10 + i) {
				t.Fatalf("round %d push %d failed", round, i)
			}
		}
		for i := 0; i < 3; i++ {
			v, _ := r.Pop()
			if v != round*10+i {
				t.Fatalf("round %d: pop=%d want %d", round, v, round*10+i)
			}
		}
	}
}

func TestPeekAt(t *testing.T) {
	r := New[string](4)
	r.Push("a")
	r.Push("b")
	r.Push("c")
	if v, ok := r.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %q,%v", v, ok)
	}
	if r.At(0) != "a" || r.At(1) != "b" || r.At(2) != "c" {
		t.Fatal("At order wrong")
	}
	// Peek must not consume.
	if r.Len() != 3 {
		t.Fatalf("peek consumed: len=%d", r.Len())
	}
}

func TestRemoveAt(t *testing.T) {
	r := New[int](5)
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	if v := r.RemoveAt(2); v != 2 {
		t.Fatalf("RemoveAt(2)=%d", v)
	}
	want := []int{0, 1, 3, 4}
	if r.Len() != len(want) {
		t.Fatalf("len=%d want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if r.At(i) != w {
			t.Fatalf("At(%d)=%d want %d", i, r.At(i), w)
		}
	}
	// Remove head and tail.
	if v := r.RemoveAt(0); v != 0 {
		t.Fatalf("RemoveAt(0)=%d", v)
	}
	if v := r.RemoveAt(r.Len() - 1); v != 4 {
		t.Fatalf("RemoveAt(last)=%d", v)
	}
	// Ring must remain usable after removals.
	r.Push(9)
	if v, _ := r.Pop(); v != 1 {
		t.Fatalf("pop=%d want 1", v)
	}
}

func TestRemoveAtAfterWrap(t *testing.T) {
	r := New[int](4)
	// Force the head away from index 0.
	r.Push(0)
	r.Push(1)
	r.Pop()
	r.Pop()
	for i := 10; i < 14; i++ {
		r.Push(i)
	}
	if v := r.RemoveAt(1); v != 11 {
		t.Fatalf("RemoveAt(1)=%d want 11", v)
	}
	got := []int{}
	for r.Len() > 0 {
		v, _ := r.Pop()
		got = append(got, v)
	}
	want := []int{10, 12, 13}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after removal got %v want %v", got, want)
		}
	}
}

func TestReplace(t *testing.T) {
	r := New[int](3)
	r.Push(1)
	r.Push(2)
	r.Replace(0, 10)
	r.Replace(1, 20)
	if r.At(0) != 10 || r.At(1) != 20 {
		t.Fatalf("replace failed: %d %d", r.At(0), r.At(1))
	}
}

func TestScanEarlyStop(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 5; i++ {
		r.Push(i)
	}
	seen := 0
	r.Scan(func(i, v int) bool {
		if i != v {
			t.Fatalf("scan index %d value %d mismatch", i, v)
		}
		seen++
		return v < 2
	})
	if seen != 3 {
		t.Fatalf("scan visited %d elements, want 3 (early stop)", seen)
	}
}

func TestClear(t *testing.T) {
	r := New[int](3)
	r.Push(1)
	r.Push(2)
	r.Clear()
	if !r.Empty() {
		t.Fatal("clear left elements")
	}
	r.Push(7)
	if v, _ := r.Pop(); v != 7 {
		t.Fatal("ring unusable after clear")
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := New[int](2)
	r.Push(1)
	expectPanic("At out of range", func() { r.At(1) })
	expectPanic("RemoveAt out of range", func() { r.RemoveAt(-1) })
	expectPanic("Replace out of range", func() { r.Replace(5, 0) })
	expectPanic("zero capacity", func() { New[int](0) })
}

// TestQuickModel checks the ring against a reference slice model under
// random operation sequences.
func TestQuickModel(t *testing.T) {
	type op struct {
		Kind uint8 // 0 push, 1 pop, 2 removeAt
		Val  int
	}
	check := func(ops []op) bool {
		r := New[int](8)
		var model []int
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				okRing := r.Push(o.Val)
				okModel := len(model) < 8
				if okModel {
					model = append(model, o.Val)
				}
				if okRing != okModel {
					return false
				}
			case 1:
				v, ok := r.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 2:
				if len(model) == 0 {
					continue
				}
				idx := o.Val
				if idx < 0 {
					idx = -idx
				}
				idx %= len(model)
				v := r.RemoveAt(idx)
				if v != model[idx] {
					return false
				}
				model = append(model[:idx], model[idx+1:]...)
			}
			if r.Len() != len(model) {
				return false
			}
			for i, w := range model {
				if r.At(i) != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
