// Package ring provides a fixed-capacity generic ring buffer used for
// the hardware queues in the simulator (the request/response queues,
// egress buffers, and hit_buffer/sent_reqs FIFOs of the Section 3.1 /
// Fig. 4 slice datapath). A bounded queue with O(1) push/pop keeps the
// cycle loop allocation-free and models finite hardware capacity
// faithfully.
package ring

import "fmt"

// Ring is a FIFO with fixed capacity. The zero value is unusable; call
// New.
type Ring[T any] struct {
	buf  []T
	head int
	size int
}

// New returns a ring with the given capacity.
func New[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("ring: capacity must be positive, got %d", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Cap returns the fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the current element count.
func (r *Ring[T]) Len() int { return r.size }

// Full reports whether the ring is at capacity.
func (r *Ring[T]) Full() bool { return r.size == len(r.buf) }

// Empty reports whether the ring has no elements.
func (r *Ring[T]) Empty() bool { return r.size == 0 }

// Push appends v; it reports false (and does nothing) when full.
func (r *Ring[T]) Push(v T) bool {
	if r.Full() {
		return false
	}
	r.buf[(r.head+r.size)%len(r.buf)] = v
	r.size++
	return true
}

// Pop removes and returns the oldest element.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	if r.size == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return v, true
}

// Peek returns the oldest element without removing it.
func (r *Ring[T]) Peek() (T, bool) {
	var zero T
	if r.size == 0 {
		return zero, false
	}
	return r.buf[r.head], true
}

// At returns the i-th oldest element (0 = front). It panics when i is
// out of range, matching slice semantics.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.size {
		panic(fmt.Sprintf("ring: index %d out of range [0,%d)", i, r.size))
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// RemoveAt deletes and returns the i-th oldest element, preserving the
// order of the others. Used by arbiters that pick requests out of the
// middle of the request queue. O(n) in the distance to the back.
func (r *Ring[T]) RemoveAt(i int) T {
	if i < 0 || i >= r.size {
		panic(fmt.Sprintf("ring: index %d out of range [0,%d)", i, r.size))
	}
	if i == 0 {
		v, _ := r.Pop()
		return v
	}
	v := r.At(i)
	// Shift subsequent elements forward.
	for j := i; j < r.size-1; j++ {
		r.buf[(r.head+j)%len(r.buf)] = r.buf[(r.head+j+1)%len(r.buf)]
	}
	var zero T
	r.buf[(r.head+r.size-1)%len(r.buf)] = zero
	r.size--
	return v
}

// Replace overwrites the i-th oldest element (0 = front) with v. It
// panics when i is out of range.
func (r *Ring[T]) Replace(i int, v T) {
	if i < 0 || i >= r.size {
		panic(fmt.Sprintf("ring: index %d out of range [0,%d)", i, r.size))
	}
	r.buf[(r.head+i)%len(r.buf)] = v
}

// Scan calls fn for each element from oldest to newest until fn
// returns false. The occupied region is visited as (at most) two
// contiguous segments so the loop body avoids a division per element.
func (r *Ring[T]) Scan(fn func(i int, v T) bool) {
	first := r.size
	if wrap := r.head + r.size - len(r.buf); wrap > 0 {
		first = r.size - wrap
	}
	for i := 0; i < first; i++ {
		if !fn(i, r.buf[r.head+i]) {
			return
		}
	}
	for i := first; i < r.size; i++ {
		if !fn(i, r.buf[i-first]) {
			return
		}
	}
}

// Segments returns the occupied region as (at most) two contiguous
// slices in FIFO order — the zero-cost alternative to Scan for hot
// loops that cannot afford a closure call per element. The slices
// alias the ring's backing array and are valid until the next
// mutation.
func (r *Ring[T]) Segments() ([]T, []T) {
	first := r.size
	if wrap := r.head + r.size - len(r.buf); wrap > 0 {
		first = r.size - wrap
	}
	return r.buf[r.head : r.head+first], r.buf[:r.size-first]
}

// Clear empties the ring.
func (r *Ring[T]) Clear() {
	var zero T
	for i := 0; i < r.size; i++ {
		r.buf[(r.head+i)%len(r.buf)] = zero
	}
	r.head = 0
	r.size = 0
}

// Queue is an unbounded FIFO over a reusable backing array: pops
// advance a head index and pushes compact the live elements back to
// the front once the backing array fills, so steady-state use never
// reallocates (plain `q = q[1:]` slices shrink their capacity with
// every pop and force append to allocate periodically). The zero
// value is ready to use.
type Queue[T any] struct {
	buf  []T
	head int
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return len(q.buf) - q.head }

// Front returns a pointer to the oldest element; it panics when the
// queue is empty (callers check Len first).
func (q *Queue[T]) Front() *T { return &q.buf[q.head] }

// Push appends v.
func (q *Queue[T]) Push(v T) {
	if q.head > 0 && len(q.buf) == cap(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, v)
}

// PopFront discards the oldest element.
func (q *Queue[T]) PopFront() {
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
}

// Clear empties the queue, zeroing the live elements so pointer
// payloads do not pin their referents, and keeps the backing array for
// reuse — the reset path of a rewindable simulator component.
func (q *Queue[T]) Clear() {
	var zero T
	for i := q.head; i < len(q.buf); i++ {
		q.buf[i] = zero
	}
	q.buf = q.buf[:0]
	q.head = 0
}
