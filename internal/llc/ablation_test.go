package llc

import "testing"

// TestReqRespOverride checks both Section 3.3 arbitration flavours
// drain correctly and that the override validates.
func TestReqRespOverride(t *testing.T) {
	for _, mode := range []string{"", "resp-first", "req-first"} {
		cfg := testConfig()
		cfg.ReqRespOverride = mode
		r := newRig(t, cfg)
		r.send(t, 0, 0, false)
		r.send(t, 16, 1, false)
		ds := r.runUntilDrained(t, 5000)
		if len(ds) != 2 {
			t.Fatalf("mode %q: deliveries=%d want 2", mode, len(ds))
		}
	}
	cfg := testConfig()
	cfg.ReqRespOverride = "sideways"
	if err := cfg.Validate(); err == nil {
		t.Fatal("bogus override accepted")
	}
}

// TestBypassManager checks the Fig. 4 step-(5) ablation: unshared
// clean fills stay out of storage, shared or dirty fills install.
func TestBypassManager(t *testing.T) {
	cfg := testConfig()
	cfg.Bypass = true
	r := newRig(t, cfg)

	// Single-requester clean line: bypassed.
	r.send(t, 16, 0, false)
	r.runUntilDrained(t, 2000)
	if r.slice.Store().Probe(16) {
		t.Fatal("unshared clean fill was installed despite bypass")
	}
	if r.slice.Bypasses != 1 {
		t.Fatalf("Bypasses=%d", r.slice.Bypasses)
	}

	// Shared line (two requesters merge): installed.
	r.send(t, 32, 0, false)
	r.step()
	r.step()
	r.send(t, 32, 1, false)
	r.runUntilDrained(t, 2000)
	if !r.slice.Store().Probe(32) {
		t.Fatal("shared fill was bypassed")
	}

	// Dirty line (write miss): installed.
	r.send(t, 48, 0, true)
	r.runUntilDrained(t, 2000)
	if !r.slice.Store().Probe(48) {
		t.Fatal("dirty fill was bypassed")
	}
}

// TestBypassDisabledByDefault pins the paper's fairness setting.
func TestBypassDisabledByDefault(t *testing.T) {
	r := newRig(t, testConfig())
	r.send(t, 16, 0, false)
	r.runUntilDrained(t, 2000)
	if !r.slice.Store().Probe(16) {
		t.Fatal("fill missing with bypass disabled")
	}
	if r.slice.Bypasses != 0 {
		t.Fatal("bypass fired while disabled")
	}
}
