package llc

import (
	"testing"

	"repro/internal/arbiter"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/memreq"
	"repro/internal/noc"
	"repro/internal/stats"
)

// rig wires one slice to a real DRAM model and interconnect.
type rig struct {
	slice *Slice
	mem   *dram.DRAM
	net   *noc.NoC
	pool  *memreq.Pool
	ctr   *stats.Counters
	now   int64
}

func testConfig() Config {
	return Config{
		Index:     0,
		NumSlices: 1,
		NumCores:  4,
		Cache: cache.Config{
			SizeBytes: 2 * 64 * 4, // 2 sets, 4 ways
			LineBytes: 64,
			Assoc:     4,
			Alloc:     cache.AllocOnFill,
			Write:     cache.WritePolicy{WriteAllocate: true, WriteBack: true},
		},
		HitLatency:  3,
		DataLatency: 25,
		MSHRLatency: 5,
		MSHREntries: 2,
		MSHRTargets: 2,
		ReqQSize:    4,
		RespQSize:   4,
		HitBufSize:  8,
		WBBufSize:   2,
		Policy:      arbiter.FCFS,
	}
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	ctr := &stats.Counters{}
	net, err := noc.New(noc.Config{Latency: 1, SliceIngestPer: 4, SliceBufCap: 16}, cfg.NumCores, cfg.NumSlices, ctr)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dram.NewDDR5_3200(1.96, 1)
	dcfg.ChannelBitPos = 0
	mem, err := dram.New(dcfg, ctr)
	if err != nil {
		t.Fatal(err)
	}
	pool := &memreq.Pool{}
	s, err := New(cfg, net, mem, pool, ctr)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{slice: s, mem: mem, net: net, pool: pool, ctr: ctr}
}

// step advances the rig one cycle, routing DRAM responses back.
func (r *rig) step() {
	r.slice.Tick(r.now)
	r.mem.Tick(r.now)
	for _, resp := range r.mem.Responses(r.now) {
		r.slice.OnDRAMResponse(resp, r.now)
	}
	r.now++
}

// send injects a request directly into the slice's request queue.
func (r *rig) send(t *testing.T, line uint64, core int, write bool) *memreq.Request {
	t.Helper()
	req := r.pool.Get()
	req.Line = line
	req.Core = core
	req.Write = write
	req.Posted = write
	req.IssueCycle = r.now
	if !r.slice.Accept(req) {
		t.Fatal("request queue full")
	}
	return req
}

// deliveries drains the response network toward all cores.
func (r *rig) deliveries() []noc.Delivery {
	var out []noc.Delivery
	for core := 0; core < 4; core++ {
		r.net.DeliverResps(core, r.now, func(d noc.Delivery) { out = append(out, d) })
	}
	return out
}

// runUntilDrained steps until the slice goes idle.
func (r *rig) runUntilDrained(t *testing.T, bound int) []noc.Delivery {
	t.Helper()
	var ds []noc.Delivery
	for i := 0; i < bound; i++ {
		r.step()
		ds = append(ds, r.deliveries()...)
		if !r.slice.Busy() && r.mem.Pending() == 0 {
			return ds
		}
	}
	t.Fatalf("slice did not drain within %d cycles (busy=%v)", bound, r.slice.Busy())
	return nil
}

func TestMissFetchForwardInstall(t *testing.T) {
	r := newRig(t, testConfig())
	r.send(t, 16, 2, false)
	ds := r.runUntilDrained(t, 2000)
	if len(ds) != 1 {
		t.Fatalf("deliveries=%d want 1", len(ds))
	}
	if ds[0].Core != 2 || ds[0].Line != 16 {
		t.Fatalf("delivery %+v", ds[0])
	}
	if r.ctr.L2Misses != 1 || r.ctr.L2Hits != 0 {
		t.Fatalf("hits/misses %d/%d", r.ctr.L2Hits, r.ctr.L2Misses)
	}
	if !r.slice.Store().Probe(16) {
		t.Fatal("line not installed after fill")
	}
	if r.ctr.DRAMReads != 1 {
		t.Fatalf("DRAMReads=%d", r.ctr.DRAMReads)
	}
	if r.pool.Outstanding() != 0 {
		t.Fatalf("request leak: %d outstanding", r.pool.Outstanding())
	}
}

func TestHitPathLatency(t *testing.T) {
	r := newRig(t, testConfig())
	r.send(t, 16, 0, false)
	r.runUntilDrained(t, 2000)

	// Second access: a hit, returned after hit+data latency plus NoC.
	start := r.now
	r.send(t, 16, 1, false)
	var got []noc.Delivery
	for i := 0; i < 200 && len(got) == 0; i++ {
		r.step()
		got = append(got, r.deliveries()...)
	}
	if len(got) != 1 {
		t.Fatal("hit not delivered")
	}
	lat := r.now - start
	min := int64(3 + 25) // hit latency + data latency
	if lat < min {
		t.Fatalf("hit latency %d < %d", lat, min)
	}
	if r.ctr.L2Hits != 1 {
		t.Fatalf("L2Hits=%d", r.ctr.L2Hits)
	}
}

func TestMSHRMergeDeliversAll(t *testing.T) {
	r := newRig(t, testConfig())
	r.send(t, 16, 0, false)
	// A couple of cycles later, two more cores want the same line.
	r.step()
	r.step()
	r.send(t, 16, 1, false)
	r.send(t, 16, 2, false)
	ds := r.runUntilDrained(t, 2000)
	if len(ds) != 3 {
		t.Fatalf("deliveries=%d want 3 (one per requester)", len(ds))
	}
	if r.ctr.DRAMReads != 1 {
		t.Fatalf("DRAMReads=%d want 1 (merged)", r.ctr.DRAMReads)
	}
	if r.ctr.MSHRMerges != 2 {
		t.Fatalf("MSHRMerges=%d want 2", r.ctr.MSHRMerges)
	}
}

func TestMSHREntryExhaustionStalls(t *testing.T) {
	r := newRig(t, testConfig()) // 2 entries
	r.send(t, 0, 0, false)
	r.send(t, 16, 1, false)
	r.send(t, 32, 2, false) // third distinct line: must stall
	for i := 0; i < 30; i++ {
		r.step()
	}
	if r.ctr.CacheStall == 0 {
		t.Fatal("no stall cycles recorded with exhausted MSHR")
	}
	// Eventually everything completes.
	ds := r.runUntilDrained(t, 5000)
	if len(ds) != 3 {
		t.Fatalf("deliveries=%d want 3", len(ds))
	}
	if r.ctr.DRAMReads != 3 {
		t.Fatalf("DRAMReads=%d", r.ctr.DRAMReads)
	}
}

func TestRespQPendingServedAsHit(t *testing.T) {
	cfg := testConfig()
	// Make fills pile up: requests-first arbitration would install
	// lazily; easier: issue a request for a line right when its fill
	// sits in the response queue by delaying install via a second
	// request stream. Simpler deterministic approach: stop ticking the
	// slice's install by keeping the response queue never chosen —
	// not possible with resp-first. Instead verify via counters that
	// no duplicate DRAM read happens for back-to-back requests.
	r := newRig(t, cfg)
	r.send(t, 16, 0, false)
	// Wait until just after the DRAM response arrives but the same
	// cycle group where install may still be pending, then request
	// the line again from another core.
	for i := 0; i < 2000; i++ {
		r.step()
		if r.ctr.DRAMReads == 1 && r.slice.MSHR().Used() == 0 {
			break
		}
	}
	r.send(t, 16, 1, false)
	r.runUntilDrained(t, 2000)
	if r.ctr.DRAMReads != 1 {
		t.Fatalf("DRAMReads=%d want 1 (respQ/pending line must be served on-chip)", r.ctr.DRAMReads)
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	r := newRig(t, testConfig())
	// Posted write miss: fetches the line, installs dirty.
	r.send(t, 16, 0, true)
	ds := r.runUntilDrained(t, 2000)
	if len(ds) != 0 {
		t.Fatalf("posted write produced %d deliveries", len(ds))
	}
	if r.ctr.DRAMReads != 1 {
		t.Fatalf("write-allocate should fetch: reads=%d", r.ctr.DRAMReads)
	}
	// Fill the set (set 0 under 2-set cache: even lines land by set
	// index line>>0 & 1... lines 16,18,... alternate sets; use lines
	// in the same set as 16: stride 2 in line space).
	for _, l := range []uint64{18, 20, 22, 24} {
		r.send(t, l, 0, false)
		r.runUntilDrained(t, 3000)
	}
	if r.ctr.Writebacks == 0 {
		t.Fatal("dirty victim never written back")
	}
	if r.ctr.DRAMWrites == 0 {
		t.Fatal("writeback never reached DRAM")
	}
}

func TestCOBRRAAlternation(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = arbiter.COBRRA
	r := newRig(t, cfg)
	// Functional check: the slice still drains correctly with the
	// request-first arbitration.
	r.send(t, 0, 0, false)
	r.send(t, 16, 1, false)
	ds := r.runUntilDrained(t, 5000)
	if len(ds) != 2 {
		t.Fatalf("deliveries=%d want 2", len(ds))
	}
	if !r.slice.Store().Probe(0) || !r.slice.Store().Probe(16) {
		t.Fatal("fills not installed under COBRRA arbitration")
	}
}

func TestBalancedProgressCounters(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = arbiter.Balanced
	r := newRig(t, cfg)
	prog := make([]int64, cfg.NumCores)
	r.slice.SetGlobalProgress(prog)
	r.send(t, 0, 3, false)
	r.send(t, 16, 3, false)
	r.send(t, 32, 1, false)
	r.runUntilDrained(t, 5000)
	served := r.slice.Served()
	if served[3] != 2 || served[1] != 1 {
		t.Fatalf("served=%v", served)
	}
	if prog[3] != 2 || prog[1] != 1 {
		t.Fatalf("global progress=%v", prog)
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NumSlices = 3 },
		func(c *Config) { c.Index = 9 },
		func(c *Config) { c.NumCores = 0 },
		func(c *Config) { c.HitLatency = 0 },
		func(c *Config) { c.MSHREntries = 0 },
		func(c *Config) { c.ReqQSize = 0 },
		func(c *Config) { c.Cache.Assoc = 0 },
	}
	for i, mutate := range cases {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAcceptBackpressure(t *testing.T) {
	r := newRig(t, testConfig())
	for i := 0; i < 4; i++ {
		r.send(t, uint64(i*16), 0, false)
	}
	extra := r.pool.Get()
	extra.Line = 999
	if r.slice.Accept(extra) {
		t.Fatal("full request queue accepted a request")
	}
	r.pool.Put(extra)
}
