// Package llc implements one last-level-cache slice and its arbiter —
// the hardware of Fig. 4 in the paper. A slice owns a request queue,
// a response queue, a tag+MSHR lookup pipeline, cache storage, a
// writeback buffer, and the speculative structures (hit_buffer,
// sent_reqs) the MSHR-aware arbitration policies consult.
//
// Flow of a request (numbers match Fig. 4):
//
//	(1) the interconnect delivers the request into the request queue;
//	(2) the arbiter selects a request (policy-dependent) and the
//	    pipeline performs the cache lookup after hit-latency cycles;
//	    hits are answered to the core after data-latency more cycles;
//	(3) misses consult the MSHR after mshr-latency cycles: merge into
//	    a pending entry, or open a new entry and send to DRAM —
//	    stalling the whole pipeline when the MSHR is exhausted;
//	(4) DRAM responses release the MSHR entry, forward data directly
//	    to the waiting cores (4'), and
//	(5) enqueue the line into the response queue for installation
//	    into cache storage, arbitrating with requests for the tag
//	    port (response-queue-first by default, Section 3.3).
package llc

import (
	"fmt"
	"math"

	"repro/internal/arbiter"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/memreq"
	"repro/internal/mshr"
	"repro/internal/noc"
	"repro/internal/ring"
	"repro/internal/stats"
)

// Config parameterises one slice (Table 5 defaults come from the sim
// package's DefaultConfig).
type Config struct {
	Index     int // slice index
	NumSlices int // total slices (for set-index derivation)
	NumCores  int

	Cache cache.Config // per-slice storage geometry

	HitLatency  int // tag lookup latency (3)
	DataLatency int // extra cycles to return hit data (25)
	MSHRLatency int // MSHR lookup latency on a miss (5)
	MSHREntries int // numEntry per slice (6)
	MSHRTargets int // numTarget per entry (8)
	ReqQSize    int // request queue depth (12)
	RespQSize   int // response queue depth (64)
	HitBufSize  int // hit_buffer FIFO depth
	WBBufSize   int // writeback buffer depth

	Policy arbiter.Kind

	// ReqRespOverride forces the request-response arbitration flavour
	// regardless of the policy's default ("" = policy default).
	// Section 3.3 evaluates both flavours and reports similar gains;
	// the override exists to reproduce that comparison.
	ReqRespOverride string // "", "resp-first", "req-first"

	// Bypass enables the Fig. 4 step-(5) bypass manager: fills whose
	// line served a single read requester are not installed in cache
	// storage (no observed sharing ⇒ no expected reuse). The paper
	// disables bypassing for fairness; the knob exists for ablation.
	Bypass bool
}

// Validate checks slice parameters.
func (c Config) Validate() error {
	switch {
	case c.NumSlices <= 0 || c.NumSlices&(c.NumSlices-1) != 0:
		return fmt.Errorf("llc: NumSlices must be a positive power of two, got %d", c.NumSlices)
	case c.Index < 0 || c.Index >= c.NumSlices:
		return fmt.Errorf("llc: Index %d out of range [0,%d)", c.Index, c.NumSlices)
	case c.NumCores <= 0:
		return fmt.Errorf("llc: NumCores must be positive, got %d", c.NumCores)
	case c.HitLatency <= 0 || c.DataLatency < 0 || c.MSHRLatency <= 0:
		return fmt.Errorf("llc: latencies must be positive (hit=%d data=%d mshr=%d)",
			c.HitLatency, c.DataLatency, c.MSHRLatency)
	case c.MSHREntries <= 0 || c.MSHRTargets <= 0:
		return fmt.Errorf("llc: MSHR geometry must be positive (%dx%d)", c.MSHREntries, c.MSHRTargets)
	case c.ReqQSize <= 0 || c.RespQSize <= 0 || c.HitBufSize <= 0 || c.WBBufSize <= 0:
		return fmt.Errorf("llc: queue sizes must be positive")
	}
	switch c.ReqRespOverride {
	case "", "resp-first", "req-first":
	default:
		return fmt.Errorf("llc: unknown ReqRespOverride %q", c.ReqRespOverride)
	}
	return c.Cache.Validate()
}

type pipePhase uint8

const (
	phaseLookup pipePhase = iota
	phaseMSHR
)

type pipeEntry struct {
	req   *memreq.Request
	ready int64 // cycle the current phase completes
	phase pipePhase
}

type fill struct {
	line   uint64
	dirty  bool
	shared bool // more than one requester waited on the line
}

type hitResp struct {
	del   noc.Delivery
	ready int64
}

// Slice is one LLC slice plus its arbiter.
type Slice struct {
	cfg    Config
	store  *cache.Cache
	mshr   *mshr.MSHR
	policy arbiter.Policy

	reqQ  *ring.Ring[*memreq.Request]
	respQ *ring.Ring[fill]
	wbBuf *ring.Ring[uint64]
	pipe  *ring.Ring[pipeEntry]

	hitBuf *arbiter.HitBuffer
	sent   *arbiter.SentReqs

	// served is the per-core progress counter of this slice's arbiter
	// (cnt0..cntN in Fig. 4).
	served []int64
	// globalProgress, when non-nil, is the engine-wide progress array
	// shared with the throttling controller.
	globalProgress []int64

	// pendingFills holds DRAM responses whose release/forward phase
	// could not run yet (response queue full).
	pendingFills []fill
	// respLines counts lines resident in the response queue awaiting
	// installation; a demand lookup for such a line is served from the
	// response queue (the data is already on-chip) instead of opening
	// a fresh MSHR entry.
	respLines map[uint64]int16
	// hitResps are hit responses waiting out the data-array latency;
	// hitRespMin is the earliest ready cycle among them (MaxInt64 when
	// empty), so cycles where none are due skip the delivery check.
	hitResps   ring.Queue[hitResp]
	hitRespMin int64
	// deferred are MSHR entries whose DRAM read could not be enqueued
	// immediately (channel queue full); retried every cycle.
	deferred []uint64

	altTurn bool // COBRRA alternation state when the response queue is full
	// respMode is the effective request-response arbitration flavour,
	// resolved once at construction (policy default + override).
	respMode arbiter.RespArb

	net  *noc.NoC
	mem  *dram.DRAM
	pool *memreq.Pool
	ctr  *stats.Counters

	// Bypasses counts fills the bypass manager kept out of storage.
	Bypasses int64

	// arbCtx is the reusable arbiter selection context (the closures
	// capture only the slice, so one instance serves every admit).
	arbCtx arbiter.Context

	// stallProfile caches the per-cycle counter deltas of a blocked
	// tick so the engine can apply a skipped cycle in a handful of
	// adds; rebuilt lazily after every real tick.
	profileValid  bool
	profReqQFull  bool
	profStalled   bool
	profEntryFull bool
	profUsed      int64
}

// New builds a slice.
func New(cfg Config, net *noc.NoC, mem *dram.DRAM, pool *memreq.Pool, ctr *stats.Counters) (*Slice, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	store, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, err
	}
	// Slice-interleave bits sit below the set index: a slice sees
	// every NumSlices-th line, so drop those bits for set selection.
	shift := uint(0)
	for s := cfg.NumSlices; s > 1; s >>= 1 {
		shift++
	}
	store.SetIndexFn = func(line uint64) uint64 { return line >> shift }
	m, err := mshr.New(cfg.MSHREntries, cfg.MSHRTargets)
	if err != nil {
		return nil, err
	}
	if ctr == nil {
		ctr = &stats.Counters{}
	}
	if pool == nil {
		pool = &memreq.Pool{}
	}
	mode := arbiter.New(cfg.Policy).RespArb()
	switch cfg.ReqRespOverride {
	case "resp-first":
		mode = arbiter.RespQueueFirst
	case "req-first":
		mode = arbiter.ReqFirstAlternate
	}
	s := &Slice{
		cfg:        cfg,
		store:      store,
		mshr:       m,
		policy:     arbiter.New(cfg.Policy),
		reqQ:       ring.New[*memreq.Request](cfg.ReqQSize),
		respQ:      ring.New[fill](cfg.RespQSize),
		wbBuf:      ring.New[uint64](cfg.WBBufSize),
		pipe:       ring.New[pipeEntry](cfg.HitLatency + cfg.MSHRLatency + 2),
		hitBuf:     arbiter.NewHitBuffer(cfg.HitBufSize),
		sent:       arbiter.NewSentReqs(cfg.HitLatency + cfg.MSHRLatency + 2),
		served:     make([]int64, cfg.NumCores),
		respLines:  make(map[uint64]int16),
		hitRespMin: math.MaxInt64,
		respMode:   mode,
		net:        net,
		mem:        mem,
		pool:       pool,
		ctr:        ctr,
	}
	s.initArbCtx()
	return s, nil
}

// SetGlobalProgress shares the engine-wide per-core progress array so
// arbiter selections feed the throttling controller's spatial
// decision.
func (s *Slice) SetGlobalProgress(p []int64) { s.globalProgress = p }

// Reset rewinds the slice to its just-constructed state, reusing every
// allocation: storage, MSHR, the queues and pipeline (any leftover
// requests are recycled into the shared pool), the speculative
// structures and the per-core progress counters. A Reset slice is
// indistinguishable from a fresh New.
func (s *Slice) Reset() {
	s.store.Reset()
	s.mshr.Reset()
	for {
		r, ok := s.reqQ.Pop()
		if !ok {
			break
		}
		s.pool.Put(r)
	}
	for {
		pe, ok := s.pipe.Pop()
		if !ok {
			break
		}
		s.pool.Put(pe.req)
	}
	s.respQ.Clear()
	s.wbBuf.Clear()
	s.hitBuf.Reset()
	s.sent.Reset()
	for i := range s.served {
		s.served[i] = 0
	}
	s.pendingFills = s.pendingFills[:0]
	clear(s.respLines)
	s.hitResps.Clear()
	s.hitRespMin = math.MaxInt64
	s.deferred = s.deferred[:0]
	s.altTurn = false
	s.Bypasses = 0
	s.profileValid = false
}

// initArbCtx builds the reusable arbiter context.
func (s *Slice) initArbCtx() {
	s.arbCtx = arbiter.Context{
		Served:      s.served,
		InMSHR:      func(line uint64) bool { return s.mshr.Lookup(line) >= 0 },
		TargetsFree: func(line uint64) int { return s.mshr.TargetsFree(line) },
		MSHRView:    s.mshr.View,
		HitBuf:      s.hitBuf,
		Sent:        s.sent,
	}
}

// Served returns this slice's per-core progress counters.
func (s *Slice) Served() []int64 { return s.served }

// Store exposes the cache storage (tests, diagnostics).
func (s *Slice) Store() *cache.Cache { return s.store }

// MSHR exposes the miss file (tests, diagnostics).
func (s *Slice) MSHR() *mshr.MSHR { return s.mshr }

// Policy returns the configured arbitration policy.
func (s *Slice) Policy() arbiter.Policy { return s.policy }

// Accept offers a request from the interconnect; it reports false
// when the request queue is full (backpressure into the NoC).
func (s *Slice) Accept(r *memreq.Request) bool {
	return s.reqQ.Push(r)
}

// OnDRAMResponse receives a completed fill from the memory controller.
func (s *Slice) OnDRAMResponse(resp dram.Response, now int64) {
	s.pendingFills = append(s.pendingFills, fill{line: resp.Line})
}

// ReqQFull reports whether the request queue refuses traffic; the
// interconnect's horizon uses it to classify arrived head-of-line
// flits as blocked.
func (s *Slice) ReqQFull() bool { return s.reqQ.Full() }

// pipeHeadStalled reports whether the pipeline head is a ready MSHR-
// phase request whose reservation would fail — the state in which the
// per-cycle loop burns one CacheStall per cycle retrying. Called on
// post-tick state, where a ready lookup-phase head cannot exist (the
// lookup always resolves) unless it was exposed by a pop this cycle.
func (s *Slice) pipeHeadStalled(now int64) (stalled, entryFull bool) {
	head, ok := s.pipe.Peek()
	if !ok || head.ready > now || head.phase != phaseMSHR {
		return false, false
	}
	line := head.req.Line
	if s.respLines[line] > 0 || s.store.Probe(line) {
		return false, false // replays as a hit next cycle
	}
	if s.mshr.Lookup(line) >= 0 {
		if s.mshr.TargetsFree(line) > 0 {
			return false, false // merges next cycle
		}
		return true, false // target list full
	}
	if s.mshr.Used() < s.cfg.MSHREntries {
		return false, false // allocates next cycle
	}
	return true, true // no free entry
}

// NextEvent returns a lower bound on the earliest cycle after now at
// which the slice's own tick can change state, assuming no external
// input (NoC request delivery, DRAM response) arrives before then.
// Called on post-tick state.
func (s *Slice) NextEvent(now int64) int64 {
	h := int64(math.MaxInt64)
	for _, line := range s.deferred {
		if s.mem.CanEnqueue(line) {
			return now + 1 // a deferred MSHR read can dispatch
		}
	}
	if line, ok := s.wbBuf.Peek(); ok && s.mem.CanEnqueue(line) {
		return now + 1 // a writeback can drain
	}
	if len(s.pendingFills) > 0 && !s.respQ.Full() {
		return now + 1 // a DRAM arrival can release its MSHR entry
	}
	if s.hitRespMin < h {
		h = s.hitRespMin
	}
	// Tag-port arbitration: would a request admit or a fill install run
	// next cycle?
	switch s.respMode {
	case arbiter.RespQueueFirst:
		if s.respQ.Len() > 0 {
			if !s.wbBuf.Full() {
				return now + 1 // installFill proceeds
			}
			// Install blocked behind the writeback buffer (drain case
			// handled above); requests stay locked out too.
		} else if s.reqQ.Len() > 0 && !s.pipe.Full() {
			return now + 1 // admitRequest proceeds
		}
	case arbiter.ReqFirstAlternate:
		if s.respQ.Full() {
			return now + 1 // the alternation bit flips every cycle
		}
		if s.reqQ.Len() > 0 && !s.pipe.Full() {
			return now + 1
		}
		if s.respQ.Len() > 0 && s.reqQ.Len() == 0 && !s.wbBuf.Full() {
			return now + 1
		}
	}
	// Lookup/MSHR pipeline.
	if head, ok := s.pipe.Peek(); ok {
		if head.ready > now {
			if head.ready < h {
				h = head.ready
			}
		} else if stalled, _ := s.pipeHeadStalled(now); !stalled {
			return now + 1 // the head resolves next cycle
		}
		// Stalled on MSHR reservation: gated on a DRAM fill releasing
		// an entry, which the memory-side horizons cover.
	}
	return h
}

// WaitsMem reports whether the slice has work gated purely on DRAM
// channel-queue space (deferred MSHR reads or buffered writebacks);
// the engine wakes such slices whenever a channel queue drains.
func (s *Slice) WaitsMem() bool {
	return len(s.deferred) > 0 || s.wbBuf.Len() > 0
}

// ApplyStallTicks bulk-applies the per-cycle occupancy and stall
// counters of `cycles` skipped dead cycles: slice-cycle and
// MSHR-occupancy accumulation, request-queue-full cycles, and (when
// the pipeline head is stalled on MSHR reservation) the per-cycle
// reservation retries of the reference loop. The slice's state is
// frozen across the skipped window, so one cached snapshot covers
// every cycle.
func (s *Slice) ApplyStallTicks(now, cycles int64) {
	if !s.profileValid {
		s.profReqQFull = s.reqQ.Full()
		s.profStalled, s.profEntryFull = s.pipeHeadStalled(now)
		s.profUsed = int64(s.mshr.Used())
		s.profileValid = true
	}
	s.ctr.SliceCycles += cycles
	s.ctr.MSHREntryAcc += s.profUsed * cycles
	s.ctr.MSHREntryCap += int64(s.cfg.MSHREntries) * cycles
	if s.profReqQFull {
		s.ctr.ReqQFullCycle += cycles
	}
	if s.profStalled {
		s.ctr.CacheStall += cycles
		if s.profEntryFull {
			s.mshr.AccountFailures(cycles, 0)
		} else {
			s.mshr.AccountFailures(0, cycles)
		}
	}
}

// Busy reports whether the slice still holds in-flight state; the
// engine uses it for the drain check.
func (s *Slice) Busy() bool {
	return s.reqQ.Len() > 0 || s.respQ.Len() > 0 || s.pipe.Len() > 0 ||
		s.wbBuf.Len() > 0 || len(s.pendingFills) > 0 || s.hitResps.Len() > 0 ||
		len(s.deferred) > 0 || s.mshr.Used() > 0
}

// Tick advances the slice by one cycle.
func (s *Slice) Tick(now int64) {
	s.profileValid = false
	s.ctr.SliceCycles++
	s.ctr.MSHREntryAcc += int64(s.mshr.Used())
	s.ctr.MSHREntryCap += int64(s.cfg.MSHREntries)
	if s.reqQ.Full() {
		s.ctr.ReqQFullCycle++
	}
	if int64(s.respQ.Len()) > s.ctr.RespQPeak {
		s.ctr.RespQPeak = int64(s.respQ.Len())
	}

	s.sent.Expire(now)
	s.retryDeferred(now)
	s.drainWritebacks()
	s.processDRAMArrivals(now)
	s.deliverHitResponses(now)

	// Tag-port arbitration between the response path (fill install)
	// and the request path (new lookup), Section 3.3.
	mode := s.respMode
	doResp := false
	switch mode {
	case arbiter.RespQueueFirst:
		doResp = s.respQ.Len() > 0
	case arbiter.ReqFirstAlternate:
		if s.respQ.Full() {
			doResp = s.altTurn
			s.altTurn = !s.altTurn
		} else {
			doResp = s.respQ.Len() > 0 && s.reqQ.Len() == 0
		}
	}
	if doResp {
		s.installFill()
	} else {
		s.admitRequest(now)
	}

	s.advancePipeline(now)
}

// retryDeferred dispatches MSHR reads that previously found the DRAM
// channel queue full.
func (s *Slice) retryDeferred(now int64) {
	if len(s.deferred) == 0 {
		return
	}
	kept := s.deferred[:0]
	for _, line := range s.deferred {
		if s.mem.CanEnqueue(line) {
			_ = s.mem.Enqueue(dram.Access{Line: line, Slice: s.cfg.Index, Enqueue: now})
		} else {
			kept = append(kept, line)
		}
	}
	s.deferred = kept
}

// drainWritebacks pushes buffered dirty victims to DRAM as space
// allows.
func (s *Slice) drainWritebacks() {
	for {
		line, ok := s.wbBuf.Peek()
		if !ok || !s.mem.CanEnqueue(line) {
			return
		}
		s.wbBuf.Pop()
		s.ctr.Writebacks++
		_ = s.mem.Enqueue(dram.Access{Line: line, Write: true, Slice: s.cfg.Index})
	}
}

// processDRAMArrivals performs step (4)/(4'): release the MSHR entry,
// forward data directly to the requesting cores and queue the line
// for installation. If the response queue is full the whole phase is
// deferred — the entry stays allocated, preserving backpressure.
func (s *Slice) processDRAMArrivals(now int64) {
	if len(s.pendingFills) == 0 {
		return
	}
	kept := s.pendingFills[:0]
	for i, f := range s.pendingFills {
		if s.respQ.Full() {
			kept = append(kept, s.pendingFills[i:]...)
			break
		}
		targets, ok := s.mshr.Release(f.line)
		dirty := false
		shared := len(targets) > 1
		if ok {
			for _, t := range targets {
				if t.Write {
					dirty = true
					continue
				}
				s.net.SendResp(noc.Delivery{
					Line:   f.line,
					Core:   t.Core,
					Window: t.Window,
					ReqID:  t.ReqID,
					Issue:  t.Issue,
				}, now)
			}
		}
		s.respQ.Push(fill{line: f.line, dirty: dirty, shared: shared})
		s.respLines[f.line]++
	}
	s.pendingFills = kept
}

// installFill performs step (5): pop one response and install the
// line into cache storage (alloc-on-fill), buffering any dirty victim
// for writeback. If the writeback buffer is full the install waits.
func (s *Slice) installFill() {
	f, ok := s.respQ.Peek()
	if !ok || s.wbBuf.Full() {
		return
	}
	s.respQ.Pop()
	if n := s.respLines[f.line]; n <= 1 {
		delete(s.respLines, f.line)
	} else {
		s.respLines[f.line] = n - 1
	}
	// Bypass manager (Fig. 4 step 5): under the ablation knob, an
	// unshared clean line is not written into cache storage.
	if s.cfg.Bypass && !f.dirty && !f.shared {
		s.Bypasses++
		return
	}
	victim, victimDirty, evicted := s.store.Fill(f.line, f.dirty)
	s.ctr.Fills++
	if evicted && victimDirty {
		s.wbBuf.Push(victim)
	}
}

// admitRequest runs the arbiter: select a request from the request
// queue (policy-dependent), record it in sent_reqs with its
// speculative hit bit, and start the lookup pipeline.
func (s *Slice) admitRequest(now int64) {
	if s.reqQ.Len() == 0 || s.pipe.Full() {
		return
	}
	s.arbCtx.Now = now
	idx, specHit := s.policy.Select(s.reqQ, &s.arbCtx)
	req := s.reqQ.RemoveAt(idx)
	req.SpecHit = specHit
	s.served[req.Core]++
	if s.globalProgress != nil {
		s.globalProgress[req.Core]++
	}
	s.sent.Push(req.Line, specHit, now+int64(s.cfg.HitLatency+s.cfg.MSHRLatency))
	s.pipe.Push(pipeEntry{req: req, ready: now + int64(s.cfg.HitLatency), phase: phaseLookup})
}

// advancePipeline resolves the pipeline head: lookup, then on a miss
// the MSHR stage. Only the head resolves (in-order, one per cycle);
// an MSHR reservation failure stalls the pipeline and is counted into
// the cache-stall proportion t_cs.
func (s *Slice) advancePipeline(now int64) {
	head, ok := s.pipe.Peek()
	if !ok || head.ready > now {
		return
	}
	switch head.phase {
	case phaseLookup:
		s.ctr.L2Accesses++
		hit := s.store.Access(head.req.Line, head.req.Write)
		if !hit && s.respLines[head.req.Line] > 0 {
			// The line awaits installation in the response queue; the
			// data is on-chip and is forwarded from there. A write
			// marks the queued fill dirty so the install preserves it.
			hit = true
			if head.req.Write {
				s.markRespDirty(head.req.Line)
			}
		}
		if hit {
			s.ctr.L2Hits++
			s.hitBuf.Push(head.req.Line)
			req := head.req
			s.pipe.Pop()
			if !req.Write {
				s.pushHitResp(req, now)
			}
			s.pool.Put(req)
			return
		}
		s.ctr.L2Misses++
		head.phase = phaseMSHR
		head.ready = now + int64(s.cfg.MSHRLatency)
		s.pipe.Replace(0, head)
	case phaseMSHR:
		req := head.req
		// The fill may have landed while this request waited (stalled
		// on reservation or queued behind the head): replay as a hit
		// instead of opening a duplicate entry and DRAM fetch.
		if s.respLines[req.Line] > 0 || s.store.Probe(req.Line) {
			s.ctr.L2Misses--
			s.ctr.L2Hits++
			s.hitBuf.Push(req.Line)
			if req.Write {
				if !s.store.Access(req.Line, true) {
					s.markRespDirty(req.Line)
				}
			} else {
				s.store.Access(req.Line, false)
				s.pushHitResp(req, now)
			}
			s.pipe.Pop()
			s.pool.Put(req)
			return
		}
		result, _ := s.mshr.Reserve(req.Line, mshr.Target{
			ReqID:  req.ID,
			Core:   req.Core,
			Window: req.Window,
			Write:  req.Write,
			Issue:  req.IssueCycle,
		}, now)
		switch result {
		case mshr.ResultMerged:
			s.ctr.MSHRMerges++
			s.pipe.Pop()
			s.pool.Put(req)
		case mshr.ResultNewEntry:
			s.ctr.MSHRAllocs++
			if s.mem.CanEnqueue(req.Line) {
				_ = s.mem.Enqueue(dram.Access{Line: req.Line, Slice: s.cfg.Index, Enqueue: now})
			} else {
				s.deferred = append(s.deferred, req.Line)
			}
			s.pipe.Pop()
			s.pool.Put(req)
		case mshr.ResultFullEntry, mshr.ResultFullTarget:
			// Reservation failure: the whole pipeline stalls. Even
			// hits queued behind cannot proceed (Section 2.4).
			s.ctr.CacheStall++
		}
	}
}

// markRespDirty marks the queued fill for line dirty (a write hit on
// response-queue data).
func (s *Slice) markRespDirty(line uint64) {
	for i := 0; i < s.respQ.Len(); i++ {
		f := s.respQ.At(i)
		if f.line == line && !f.dirty {
			f.dirty = true
			s.respQ.Replace(i, f)
			return
		}
	}
}

// pushHitResp queues a hit response for delivery after the data-array
// latency.
func (s *Slice) pushHitResp(req *memreq.Request, now int64) {
	ready := now + int64(s.cfg.DataLatency)
	s.hitResps.Push(hitResp{
		del: noc.Delivery{
			Line:   req.Line,
			Core:   req.Core,
			Window: req.Window,
			ReqID:  req.ID,
			Issue:  req.IssueCycle,
		},
		ready: ready,
	})
	if ready < s.hitRespMin {
		s.hitRespMin = ready
	}
}

// deliverHitResponses sends hit data whose data-array latency elapsed.
// Ready times are monotonic (push cycle + constant data latency), so
// due responses always sit at the front.
func (s *Slice) deliverHitResponses(now int64) {
	if s.hitRespMin > now {
		return
	}
	for s.hitResps.Len() > 0 && s.hitResps.Front().ready <= now {
		s.net.SendResp(s.hitResps.Front().del, now)
		s.hitResps.PopFront()
	}
	if s.hitResps.Len() == 0 {
		s.hitRespMin = math.MaxInt64
	} else {
		s.hitRespMin = s.hitResps.Front().ready
	}
}
