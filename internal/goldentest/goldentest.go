// Package goldentest is the shared golden-file helper of the
// metric-pinning suites: a test extracts the metrics it pins into a
// plain struct, and Compare checks the indented-JSON rendering of that
// struct byte-for-byte against a committed testdata file. Running the
// suite with -update (see scripts/update_goldens.sh) rewrites the
// files from the current engine output instead of comparing — the
// refresh workflow after an intentional metrics change.
//
// Byte-exact JSON comparison is deliberate: the simulators guarantee
// bit-identical metrics for a fixed (config, scenario), and
// encoding/json renders float64 values with the shortest
// round-trippable form, so any drift in a pinned metric — even in the
// last ulp of a latency percentile — fails the comparison.
package goldentest

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update is registered once here and shared by every importing test
// binary: `go test ./internal/serving -update` rewrites that package's
// golden files.
var update = flag.Bool("update", false, "rewrite golden testdata files from current output")

// Updating reports whether the suite runs in -update (rewrite) mode.
func Updating() bool { return *update }

// Compare checks got against the golden file at path (conventionally
// testdata/<name>.golden.json, relative to the test's package
// directory). got is marshalled as indented JSON; the file must match
// byte for byte. With -update the file is (re)written instead and the
// test passes.
func Compare(t *testing.T, path string, got any) {
	t.Helper()
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatalf("goldentest: marshal for %s: %v", path, err)
	}
	data = append(data, '\n')
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("goldentest: %v", err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("goldentest: %v", err)
		}
		t.Logf("goldentest: wrote %s (%d bytes)", path, len(data))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("goldentest: %v (run scripts/update_goldens.sh, or go test -update this package, to create it)", err)
	}
	if !bytes.Equal(want, data) {
		t.Errorf("golden mismatch against %s (rerun with -update after an INTENTIONAL metrics change):\n%s",
			path, diff(want, data))
	}
}

// CompareBytes checks a raw pre-rendered artifact (a Perfetto trace,
// a JSONL event log, a CSV time series) against the golden file at
// path, byte for byte. With -update the file is (re)written instead.
// Use Compare for metric structs — this variant is for exporters whose
// byte format is itself the contract.
func CompareBytes(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("goldentest: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("goldentest: %v", err)
		}
		t.Logf("goldentest: wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("goldentest: %v (run scripts/update_goldens.sh, or go test -update this package, to create it)", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("golden mismatch against %s (rerun with -update after an INTENTIONAL format change):\n%s",
			path, diff(want, got))
	}
}

// diff renders a compact line-level got/want comparison: the full
// payloads are small (pinned metric rows), so showing the first
// diverging line with context beats shipping a diff dependency.
func diff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g []byte
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if !bytes.Equal(w, g) {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
	}
	return "contents equal but lengths differ"
}
