package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); got != 2.0 {
		t.Fatalf("Speedup(200,100)=%v", got)
	}
	if got := Speedup(100, 200); got != 0.5 {
		t.Fatalf("Speedup(100,200)=%v", got)
	}
	if got := Speedup(100, 0); got != 0 {
		t.Fatalf("Speedup with zero divisor = %v, want 0", got)
	}
}

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{2, 8}, 4},
		{[]float64{1, 1, 1}, 1},
		{[]float64{3}, 3},
		{nil, 0},
		{[]float64{1, -1}, 0},
		{[]float64{1, 0}, 0},
	}
	for _, c := range cases {
		got := Geomean(c.in)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geomean(%v)=%v want %v", c.in, got, c.want)
		}
	}
}

// Geomean is scale-equivariant: Geomean(k*xs) = k*Geomean(xs).
func TestGeomeanScaleProperty(t *testing.T) {
	check := func(raw []uint8, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		k := float64(kRaw%9) + 1
		for i, v := range raw {
			xs[i] = float64(v%100) + 1
			scaled[i] = xs[i] * k
		}
		a, b := Geomean(xs)*k, Geomean(scaled)
		return math.Abs(a-b) <= 1e-9*math.Max(a, b)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Cycles: 10, L2Hits: 5, RespQPeak: 3}
	b := Counters{Cycles: 7, L2Hits: 2, RespQPeak: 9}
	a.Add(&b)
	if a.Cycles != 17 || a.L2Hits != 7 {
		t.Fatalf("Add: %+v", a)
	}
	if a.RespQPeak != 9 {
		t.Fatalf("RespQPeak should take the max, got %d", a.RespQPeak)
	}
}

func TestDerive(t *testing.T) {
	c := Counters{
		Cycles:     1_000_000,
		InstIssued: 500_000,
		L1Accesses: 100, L1Hits: 25,
		L2Accesses: 1000, L2Hits: 400, L2Misses: 600,
		MSHRMerges:   150,
		MSHREntryAcc: 480, MSHREntryCap: 960,
		CacheStall: 100, SliceCycles: 1000,
		RowHits: 90, RowMisses: 10,
		DRAMReads: 1000, DRAMWrites: 0,
		CoreIdle: 160_000, CoreMemStall: 320_000,
	}
	m := c.Derive(2.0, 64, 16)
	if m.L1HitRate != 0.25 {
		t.Errorf("L1HitRate=%v", m.L1HitRate)
	}
	if m.L2HitRate != 0.4 {
		t.Errorf("L2HitRate=%v", m.L2HitRate)
	}
	if m.MSHRHitRate != 0.25 {
		t.Errorf("MSHRHitRate=%v (merges/misses)", m.MSHRHitRate)
	}
	if m.MSHREntryUtil != 0.5 {
		t.Errorf("MSHREntryUtil=%v", m.MSHREntryUtil)
	}
	if m.CacheStallFrac != 0.1 {
		t.Errorf("CacheStallFrac=%v", m.CacheStallFrac)
	}
	if m.DRAMRowHitRate != 0.9 {
		t.Errorf("DRAMRowHitRate=%v", m.DRAMRowHitRate)
	}
	if m.BytesFromDRAM != 64000 {
		t.Errorf("BytesFromDRAM=%v", m.BytesFromDRAM)
	}
	wantSec := 1_000_000 / 2.0e9
	if math.Abs(m.Seconds-wantSec) > 1e-15 {
		t.Errorf("Seconds=%v want %v", m.Seconds, wantSec)
	}
	wantBW := 64000 / wantSec / 1e9
	if math.Abs(m.DRAMBandwidthGB-wantBW) > 1e-9 {
		t.Errorf("DRAMBandwidthGB=%v want %v", m.DRAMBandwidthGB, wantBW)
	}
	if m.IPC != 0.5 {
		t.Errorf("IPC=%v", m.IPC)
	}
	if math.Abs(m.CoreIdleFrac-0.01) > 1e-12 || math.Abs(m.CoreMemFrac-0.02) > 1e-12 {
		t.Errorf("core fracs %v %v", m.CoreIdleFrac, m.CoreMemFrac)
	}
}

func TestDeriveZeroSafe(t *testing.T) {
	var c Counters
	m := c.Derive(1.96, 64, 16)
	if m.Cycles != 0 || m.L2HitRate != 0 || m.DRAMBandwidthGB != 0 {
		t.Fatalf("zero counters should derive zero metrics: %+v", m)
	}
	_ = m.String() // must not panic
}

func TestTable(t *testing.T) {
	s := []Series{
		{Label: "dynmg", Points: []Point{{X: "4K", Y: 1.1}, {X: "8K", Y: 1.2}}},
		{Label: "lcs", Points: []Point{{X: "4K", Y: 1.0}, {X: "8K", Y: 0.9}}},
	}
	out := Table("title", s)
	for _, want := range []string{"title", "dynmg", "lcs", "4K", "8K", "geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "1.149") { // geomean of 1.1, 1.2
		t.Errorf("geomean column wrong:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys=%v", got)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},            // median of an odd-length sample
		{25, 20},            // rank 1 exactly
		{75, 40},            // rank 3 exactly
		{40, 29},            // rank 1.6: 20 + 0.6*(35-20)
		{90, 46},            // rank 3.6: 40 + 0.6*(50-40)
		{-5, 15}, {120, 50}, // clamped
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be mutated or required sorted.
	unsorted := []float64{3, 1, 2}
	if got := Percentile(unsorted, 50); got != 2 {
		t.Errorf("median of unsorted = %v, want 2", got)
	}
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", unsorted)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty sample = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single sample = %v, want 7", got)
	}
	// Even-length median interpolates between the middle pair.
	if got := Percentile([]float64{1, 2, 3, 4}, 50); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

func TestPercentileSet(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	got := PercentileSet(xs, 0, 50, 100)
	want := []float64{15, 35, 50}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("PercentileSet = %v, want %v", got, want)
		}
	}
	if out := PercentileSet(nil, 50, 99); out[0] != 0 || out[1] != 0 {
		t.Fatalf("empty PercentileSet = %v, want zeros", out)
	}
	// Set and single-call definitions agree.
	for _, p := range []float64{10, 33, 50, 66, 90, 95, 99} {
		if a, b := Percentile(xs, p), PercentileSet(xs, p)[0]; a != b {
			t.Fatalf("Percentile(%v)=%v != PercentileSet=%v", p, a, b)
		}
	}
}
