package stats

import (
	"reflect"
	"testing"
)

// TestPercentileEdges pins the boundary behaviour of the percentile
// definition the serving metrics contract depends on: empty input,
// single sample, clamped p outside [0, 100], exact linear
// interpolation, and input immutability.
func TestPercentileEdges(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"empty", nil, 50, 0},
		{"empty p0", []float64{}, 0, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 50, 7},
		{"single p100", []float64{7}, 100, 7},
		{"negative p clamps to min", []float64{3, 1, 2}, -10, 1},
		{"p0 is min", []float64{3, 1, 2}, 0, 1},
		{"p100 is max", []float64{3, 1, 2}, 100, 3},
		{"p over 100 clamps to max", []float64{3, 1, 2}, 250, 3},
		{"median of two interpolates", []float64{10, 20}, 50, 15},
		{"p25 of five is exact rank", []float64{5, 1, 4, 2, 3}, 25, 2},
		{"p90 of two interpolates", []float64{0, 10}, 90, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Percentile(tc.xs, tc.p); got != tc.want {
				t.Errorf("Percentile(%v, %g) = %g, want %g", tc.xs, tc.p, got, tc.want)
			}
		})
	}

	// The input is never sorted in place.
	xs := []float64{9, 1, 5}
	Percentile(xs, 99)
	if !reflect.DeepEqual(xs, []float64{9, 1, 5}) {
		t.Errorf("Percentile reordered its input: %v", xs)
	}

	// PercentileSet agrees with repeated Percentile calls.
	got := PercentileSet(xs, 0, 50, 100)
	want := []float64{Percentile(xs, 0), Percentile(xs, 50), Percentile(xs, 100)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PercentileSet = %v, want %v", got, want)
	}
	if got := PercentileSet(nil, 50, 99); !reflect.DeepEqual(got, []float64{0, 0}) {
		t.Errorf("PercentileSet(nil) = %v, want zeros", got)
	}
}
