// Package stats collects and derives the performance statistics the
// LLaMCAT paper reports (Section 6, Fig. 8): execution cycles,
// cache-stall proportion (t_cs), L2 hit rate, MSHR hit (merge) rate,
// MSHR entry utilisation and DRAM bandwidth. It also provides the
// speedup, geometric-mean and percentile helpers used by the
// experiment harnesses and the serving engine.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is the raw event count set accumulated by a simulation run.
// All fields are plain counters so that the zero value is ready to use.
type Counters struct {
	Cycles int64 // total simulated core cycles

	// Core-side counters.
	InstIssued   int64 // instructions issued across all cores
	VectorLoads  int64 // vector load instructions
	VectorStores int64 // vector store instructions
	ComputeOps   int64 // compute instructions
	CoreIdle     int64 // core-cycles with no thread block to run (C_idle)
	CoreMemStall int64 // core-cycles with all windows blocked on memory (C_mem)
	TBCompleted  int64 // thread blocks retired

	// L1 counters (summed over private caches).
	L1Accesses int64
	L1Hits     int64
	L1Merges   int64 // accesses merged into an in-flight L1 miss

	// L2 / LLC counters (summed over slices).
	L2Accesses    int64 // demand lookups performed by slices
	L2Hits        int64
	L2Misses      int64
	MSHRMerges    int64 // misses merged into an existing MSHR entry (MSHR hits)
	MSHRAllocs    int64 // new MSHR entries opened
	CacheStall    int64 // slice-cycles stalled on MSHR reservation failure
	SliceCycles   int64 // slices x cycles (denominator for t_cs)
	MSHREntryAcc  int64 // sum over slice-cycles of occupied MSHR entries
	MSHREntryCap  int64 // sum over slice-cycles of MSHR entry capacity
	ReqQFullCycle int64 // slice-cycles the request queue refused traffic
	RespQPeak     int64 // maximum response-queue depth observed
	Writebacks    int64 // dirty evictions written back to DRAM
	Fills         int64 // lines filled into L2 storage

	// DRAM counters.
	DRAMReads     int64
	DRAMWrites    int64
	RowHits       int64
	RowMisses     int64
	RowConflicts  int64
	DRAMBusCycles int64 // cycles the data bus transferred data (summed over channels)

	// NoC counters.
	NoCReqSent    int64
	NoCRespSent   int64
	NoCBackpress  int64 // core-cycles the egress queue was full
	NetQueueDelay int64 // summed cycles requests waited for slice ingress
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.Cycles += other.Cycles
	c.InstIssued += other.InstIssued
	c.VectorLoads += other.VectorLoads
	c.VectorStores += other.VectorStores
	c.ComputeOps += other.ComputeOps
	c.CoreIdle += other.CoreIdle
	c.CoreMemStall += other.CoreMemStall
	c.TBCompleted += other.TBCompleted
	c.L1Accesses += other.L1Accesses
	c.L1Hits += other.L1Hits
	c.L1Merges += other.L1Merges
	c.L2Accesses += other.L2Accesses
	c.L2Hits += other.L2Hits
	c.L2Misses += other.L2Misses
	c.MSHRMerges += other.MSHRMerges
	c.MSHRAllocs += other.MSHRAllocs
	c.CacheStall += other.CacheStall
	c.SliceCycles += other.SliceCycles
	c.MSHREntryAcc += other.MSHREntryAcc
	c.MSHREntryCap += other.MSHREntryCap
	c.ReqQFullCycle += other.ReqQFullCycle
	if other.RespQPeak > c.RespQPeak {
		c.RespQPeak = other.RespQPeak
	}
	c.Writebacks += other.Writebacks
	c.Fills += other.Fills
	c.DRAMReads += other.DRAMReads
	c.DRAMWrites += other.DRAMWrites
	c.RowHits += other.RowHits
	c.RowMisses += other.RowMisses
	c.RowConflicts += other.RowConflicts
	c.DRAMBusCycles += other.DRAMBusCycles
	c.NoCReqSent += other.NoCReqSent
	c.NoCRespSent += other.NoCRespSent
	c.NoCBackpress += other.NoCBackpress
	c.NetQueueDelay += other.NetQueueDelay
}

// Metrics is the derived, human-facing statistic set matching Fig. 8 of
// the paper plus a few diagnostics.
type Metrics struct {
	Cycles          int64
	Seconds         float64 // wall time at the configured core frequency
	L1HitRate       float64
	L2HitRate       float64 // hits / accesses
	MSHRHitRate     float64 // merges / misses (the paper's definition)
	MSHREntryUtil   float64 // mean occupied entries / capacity
	CacheStallFrac  float64 // t_cs: stalled slice-cycles / slice-cycles
	DRAMBandwidthGB float64 // achieved GB/s
	DRAMRowHitRate  float64
	BytesFromDRAM   int64
	IPC             float64
	CoreIdleFrac    float64
	CoreMemFrac     float64
}

// Derive computes Metrics from raw counters. freqGHz is the core clock
// in GHz (the paper uses 1.96), lineBytes the cache line size and
// numCores the core count (for per-core fractions).
func (c *Counters) Derive(freqGHz float64, lineBytes, numCores int) Metrics {
	m := Metrics{Cycles: c.Cycles}
	if c.Cycles > 0 {
		m.Seconds = float64(c.Cycles) / (freqGHz * 1e9)
		m.IPC = float64(c.InstIssued) / float64(c.Cycles)
	}
	if c.L1Accesses > 0 {
		m.L1HitRate = float64(c.L1Hits) / float64(c.L1Accesses)
	}
	if c.L2Accesses > 0 {
		m.L2HitRate = float64(c.L2Hits) / float64(c.L2Accesses)
	}
	if c.L2Misses > 0 {
		m.MSHRHitRate = float64(c.MSHRMerges) / float64(c.L2Misses)
	}
	if c.MSHREntryCap > 0 {
		m.MSHREntryUtil = float64(c.MSHREntryAcc) / float64(c.MSHREntryCap)
	}
	if c.SliceCycles > 0 {
		m.CacheStallFrac = float64(c.CacheStall) / float64(c.SliceCycles)
	}
	rowAcc := c.RowHits + c.RowMisses + c.RowConflicts
	if rowAcc > 0 {
		m.DRAMRowHitRate = float64(c.RowHits) / float64(rowAcc)
	}
	m.BytesFromDRAM = (c.DRAMReads + c.DRAMWrites) * int64(lineBytes)
	if m.Seconds > 0 {
		m.DRAMBandwidthGB = float64(m.BytesFromDRAM) / m.Seconds / 1e9
	}
	if c.Cycles > 0 && numCores > 0 {
		den := float64(c.Cycles) * float64(numCores)
		m.CoreIdleFrac = float64(c.CoreIdle) / den
		m.CoreMemFrac = float64(c.CoreMemStall) / den
	}
	return m
}

// String renders the metric set as an aligned block.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles            %d\n", m.Cycles)
	fmt.Fprintf(&b, "time              %.6f ms\n", m.Seconds*1e3)
	fmt.Fprintf(&b, "IPC               %.3f\n", m.IPC)
	fmt.Fprintf(&b, "L1 hit rate       %.4f\n", m.L1HitRate)
	fmt.Fprintf(&b, "L2 hit rate       %.4f\n", m.L2HitRate)
	fmt.Fprintf(&b, "MSHR hit rate     %.4f\n", m.MSHRHitRate)
	fmt.Fprintf(&b, "MSHR entry util   %.4f\n", m.MSHREntryUtil)
	fmt.Fprintf(&b, "cache stall t_cs  %.4f\n", m.CacheStallFrac)
	fmt.Fprintf(&b, "DRAM bandwidth    %.2f GB/s\n", m.DRAMBandwidthGB)
	fmt.Fprintf(&b, "DRAM row-hit rate %.4f\n", m.DRAMRowHitRate)
	fmt.Fprintf(&b, "core idle frac    %.4f\n", m.CoreIdleFrac)
	fmt.Fprintf(&b, "core mem frac     %.4f\n", m.CoreMemFrac)
	return b.String()
}

// Speedup returns baselineCycles / optimizedCycles, the paper's
// definition of speedup (higher is better).
func Speedup(baselineCycles, optimizedCycles int64) float64 {
	if optimizedCycles <= 0 {
		return 0
	}
	return float64(baselineCycles) / float64(optimizedCycles)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks (the definition NumPy
// calls "linear"): rank = p/100 × (n−1), interpolated between the
// surrounding order statistics. xs need not be sorted; it is not
// modified. An empty input returns 0.
//
// The serving engine reports token-latency p50/p95/p99 through this
// function, so its exact definition is part of the serving metrics
// contract.
func Percentile(xs []float64, p float64) float64 {
	return PercentileSet(xs, p)[0]
}

// PercentileSet computes several percentiles in one pass over one
// sorted copy — cheaper than repeated Percentile calls on large
// latency samples.
func PercentileSet(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	n := len(xs)
	if n == 0 {
		return out
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	switch {
	case p <= 0:
		return sorted[0]
	case p >= 100:
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Geomean returns the geometric mean of xs. Non-positive entries are
// rejected with a zero result since speedups are strictly positive.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Series is a labelled sequence of (x, y) points used to render one
// line of a paper figure.
type Series struct {
	Label  string
	Points []Point
}

// Point is one measurement in a Series.
type Point struct {
	X string  // categorical x value, e.g. "4K" or "16MB"
	Y float64 // measured value, e.g. speedup
}

// Table renders a set of series sharing the same x categories as an
// aligned text table, one row per series — the textual equivalent of a
// grouped bar / line chart in the paper.
func Table(title string, series []Series) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	// Header from the first series' x values.
	xs := make([]string, 0, len(series[0].Points))
	for _, p := range series[0].Points {
		xs = append(xs, p.X)
	}
	width := 12
	for _, s := range series {
		if len(s.Label) > width {
			width = len(s.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "policy")
	for _, x := range xs {
		fmt.Fprintf(&b, "%10s", x)
	}
	fmt.Fprintf(&b, "%10s\n", "geomean")
	for _, s := range series {
		fmt.Fprintf(&b, "%-*s", width+2, s.Label)
		vals := make([]float64, 0, len(s.Points))
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%10.3f", p.Y)
			vals = append(vals, p.Y)
		}
		fmt.Fprintf(&b, "%10.3f\n", Geomean(vals))
	}
	return b.String()
}

// SortedKeys returns the keys of m in sorted order; a small helper for
// deterministic rendering of map-backed results.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
