// Package mshr models the Miss Status Holding Registers of an LLC
// slice — the structure Section 2.4 of the paper identifies as the
// bottleneck of LLM decoding. An MSHR file has two dimensions:
//
//   - numEntry: distinct outstanding cache misses (each entry owns one
//     in-flight DRAM transaction);
//   - numTarget: requests merged onto one entry (an "MSHR hit").
//
// Reservation fails — stalling the whole cache pipeline — when either
// dimension is exhausted (no free entry for a new miss, or the matched
// entry's target list is full).
package mshr

import (
	"fmt"
	"math/bits"
)

// Target is one requester waiting on an in-flight line: enough
// information to route the data back to the issuing core.
type Target struct {
	ReqID  int64
	Core   int
	Window int
	Write  bool
	Issue  int64 // original issue cycle (latency accounting)
}

// Entry is one outstanding miss. The primary (the request that opened
// the entry) is stored in the entry itself; Targets holds only merged
// secondary requests, so numTarget counts merge capacity exactly as
// Section 2.4 defines it.
type Entry struct {
	Line    uint64
	Valid   bool
	Primary Target
	Targets []Target
	Opened  int64 // cycle the entry was allocated
	Sent    bool  // DRAM transaction dispatched
}

// Result classifies a Reserve outcome.
type Result uint8

// Reserve outcomes.
const (
	ResultNewEntry   Result = iota // allocated a fresh entry (true miss)
	ResultMerged                   // merged into an existing entry (MSHR hit)
	ResultFullEntry                // no free entry: pipeline must stall
	ResultFullTarget               // matching entry's target list full: stall
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case ResultNewEntry:
		return "new-entry"
	case ResultMerged:
		return "merged"
	case ResultFullEntry:
		return "full-entry"
	case ResultFullTarget:
		return "full-target"
	}
	return fmt.Sprintf("Result(%d)", uint8(r))
}

// MSHR is one slice's miss file. The entry array is small (Table 5:
// six entries per slice), so linear scans are both faithful to the
// CAM hardware and fast; a compact line/occupancy mirror keeps the
// scan on one cache line for the arbiter's per-request lookups.
type MSHR struct {
	entries        []Entry
	numTarget      int
	used           int
	releaseScratch []Target
	// lines/occMask mirror the valid entries' line addresses so Lookup
	// scans a dense uint64 array instead of the fat Entry structs — the
	// software analogue of the CAM's dedicated tag array. The one-word
	// mask covers files of up to 64 entries (Table 5 uses 6); larger
	// research configurations fall back to the entry scan.
	lines   []uint64
	occMask uint64
	// Counters.
	Allocs     int64
	Merges     int64
	FailEntry  int64
	FailTarget int64
	Releases   int64
	PeakUsed   int
}

// New builds an MSHR file with numEntry entries of numTarget targets.
func New(numEntry, numTarget int) (*MSHR, error) {
	if numEntry <= 0 {
		return nil, fmt.Errorf("mshr: numEntry must be positive, got %d", numEntry)
	}
	if numTarget <= 0 {
		return nil, fmt.Errorf("mshr: numTarget must be positive, got %d", numTarget)
	}
	m := &MSHR{entries: make([]Entry, numEntry), numTarget: numTarget, lines: make([]uint64, numEntry)}
	for i := range m.entries {
		m.entries[i].Targets = make([]Target, 0, numTarget)
	}
	return m, nil
}

// Reset rewinds the file to its just-constructed state: every entry
// invalidated (target backing arrays kept) and the counters zeroed.
func (m *MSHR) Reset() {
	for i := range m.entries {
		m.entries[i].Valid = false
		m.entries[i].Targets = m.entries[i].Targets[:0]
	}
	m.occMask = 0
	m.used = 0
	m.Allocs = 0
	m.Merges = 0
	m.FailEntry = 0
	m.FailTarget = 0
	m.Releases = 0
	m.PeakUsed = 0
}

// NumEntry returns the entry capacity.
func (m *MSHR) NumEntry() int { return len(m.entries) }

// NumTarget returns the per-entry target capacity.
func (m *MSHR) NumTarget() int { return m.numTarget }

// Used returns the number of occupied entries.
func (m *MSHR) Used() int { return m.used }

// Lookup returns the entry index holding line, or -1.
func (m *MSHR) Lookup(line uint64) int {
	if len(m.entries) > 64 {
		for i := range m.entries {
			if m.entries[i].Valid && m.entries[i].Line == line {
				return i
			}
		}
		return -1
	}
	for mask := m.occMask; mask != 0; mask &= mask - 1 {
		i := bits.TrailingZeros64(mask)
		if m.lines[i] == line {
			return i
		}
	}
	return -1
}

// View combines Lookup and TargetsFree in one scan: whether line has
// an entry, and the remaining merge capacity (full capacity when
// absent — a new entry would be allocated). The MSHR-aware arbiter
// calls both per queued request per selection; fusing them halves its
// CAM traffic.
func (m *MSHR) View(line uint64) (present bool, targetsFree int) {
	if i := m.Lookup(line); i >= 0 {
		return true, m.numTarget - len(m.entries[i].Targets)
	}
	return false, m.numTarget
}

// Reserve attempts to register a missing request: merge onto an
// existing entry for the same line, or allocate a new entry. The
// returned index is valid for ResultNewEntry and ResultMerged.
func (m *MSHR) Reserve(line uint64, tgt Target, now int64) (Result, int) {
	if i := m.Lookup(line); i >= 0 {
		e := &m.entries[i]
		if len(e.Targets) >= m.numTarget {
			m.FailTarget++
			return ResultFullTarget, -1
		}
		e.Targets = append(e.Targets, tgt)
		m.Merges++
		return ResultMerged, i
	}
	for i := range m.entries {
		if !m.entries[i].Valid {
			e := &m.entries[i]
			e.Line = line
			e.Valid = true
			e.Opened = now
			e.Sent = false
			e.Primary = tgt
			e.Targets = e.Targets[:0]
			m.lines[i] = line
			m.occMask |= 1 << uint(i)
			m.Allocs++
			m.used++
			if m.used > m.PeakUsed {
				m.PeakUsed = m.used
			}
			return ResultNewEntry, i
		}
	}
	m.FailEntry++
	return ResultFullEntry, -1
}

// MarkSent records that the entry's DRAM transaction was dispatched.
func (m *MSHR) MarkSent(idx int) {
	m.entries[idx].Sent = true
}

// Entry returns a read-only view of entry idx.
func (m *MSHR) Entry(idx int) *Entry {
	return &m.entries[idx]
}

// Release frees the entry holding line when its fill returns and
// hands back the primary followed by the merged targets. The returned
// slice aliases internal storage and is valid until the entry is
// reused; callers consume it immediately.
func (m *MSHR) Release(line uint64) ([]Target, bool) {
	i := m.Lookup(line)
	if i < 0 {
		return nil, false
	}
	e := &m.entries[i]
	e.Valid = false
	m.occMask &^= 1 << uint(i)
	m.used--
	m.Releases++
	m.releaseScratch = m.releaseScratch[:0]
	m.releaseScratch = append(m.releaseScratch, e.Primary)
	m.releaseScratch = append(m.releaseScratch, e.Targets...)
	return m.releaseScratch, true
}

// Snapshot appends the line addresses of all valid entries to dst and
// returns it. This is the real-time MSHR_snapshot wire of Fig. 4/5:
// the arbiter reads it every selection to identify inferred MSHR hits.
func (m *MSHR) Snapshot(dst []uint64) []uint64 {
	for i := range m.entries {
		if m.entries[i].Valid {
			dst = append(dst, m.entries[i].Line)
		}
	}
	return dst
}

// AccountFailures bulk-records repeated reservation failures without
// performing the lookups. The engine's fast-forward path uses it so
// that a pipeline head stalled for n cycles leaves the same
// diagnostic counters as n per-cycle Reserve retries.
func (m *MSHR) AccountFailures(entryFails, targetFails int64) {
	m.FailEntry += entryFails
	m.FailTarget += targetFails
}

// TargetsFree returns the remaining target capacity for line: full
// capacity if no entry matches (a new entry would be allocated).
func (m *MSHR) TargetsFree(line uint64) int {
	if i := m.Lookup(line); i >= 0 {
		return m.numTarget - len(m.entries[i].Targets)
	}
	return m.numTarget
}
