package mshr

import (
	"testing"
	"testing/quick"
)

func tgt(id int64) Target { return Target{ReqID: id, Core: int(id % 16)} }

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Fatal("numEntry=0 accepted")
	}
	if _, err := New(6, 0); err == nil {
		t.Fatal("numTarget=0 accepted")
	}
	m, err := New(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEntry() != 6 || m.NumTarget() != 8 {
		t.Fatalf("geometry %dx%d", m.NumEntry(), m.NumTarget())
	}
}

func TestAllocAndMerge(t *testing.T) {
	m, _ := New(2, 2)
	res, idx := m.Reserve(100, tgt(1), 0)
	if res != ResultNewEntry || idx < 0 {
		t.Fatalf("first reserve: %v %d", res, idx)
	}
	if m.Used() != 1 {
		t.Fatalf("used=%d", m.Used())
	}
	// Same line merges; numTarget counts only merged secondaries.
	for i := int64(2); i <= 3; i++ {
		res, _ := m.Reserve(100, tgt(i), 1)
		if res != ResultMerged {
			t.Fatalf("merge %d: %v", i, res)
		}
	}
	// Third secondary exceeds numTarget=2.
	res, _ = m.Reserve(100, tgt(4), 2)
	if res != ResultFullTarget {
		t.Fatalf("want full-target, got %v", res)
	}
	if m.Used() != 1 {
		t.Fatalf("target-full changed used: %d", m.Used())
	}
}

func TestEntryExhaustion(t *testing.T) {
	m, _ := New(2, 8)
	m.Reserve(1, tgt(1), 0)
	m.Reserve(2, tgt(2), 0)
	res, _ := m.Reserve(3, tgt(3), 0)
	if res != ResultFullEntry {
		t.Fatalf("want full-entry, got %v", res)
	}
	if m.FailEntry != 1 {
		t.Fatalf("FailEntry=%d", m.FailEntry)
	}
}

func TestReleaseReturnsPrimaryAndTargets(t *testing.T) {
	m, _ := New(2, 4)
	m.Reserve(100, tgt(1), 0)
	m.Reserve(100, tgt(2), 1)
	m.Reserve(100, tgt(3), 2)
	targets, ok := m.Release(100)
	if !ok {
		t.Fatal("release failed")
	}
	if len(targets) != 3 {
		t.Fatalf("released %d targets, want 3 (primary + 2 merges)", len(targets))
	}
	if targets[0].ReqID != 1 {
		t.Fatalf("primary must come first, got %d", targets[0].ReqID)
	}
	if m.Used() != 0 {
		t.Fatalf("used=%d after release", m.Used())
	}
	if _, ok := m.Release(100); ok {
		t.Fatal("double release succeeded")
	}
}

func TestEntryReuseAfterRelease(t *testing.T) {
	m, _ := New(1, 2)
	m.Reserve(1, tgt(1), 0)
	m.Release(1)
	res, _ := m.Reserve(2, tgt(2), 5)
	if res != ResultNewEntry {
		t.Fatalf("entry not reusable: %v", res)
	}
	targets, _ := m.Release(2)
	if len(targets) != 1 || targets[0].ReqID != 2 {
		t.Fatalf("stale targets after reuse: %+v", targets)
	}
}

func TestSnapshot(t *testing.T) {
	m, _ := New(4, 2)
	m.Reserve(10, tgt(1), 0)
	m.Reserve(20, tgt(2), 0)
	snap := m.Snapshot(nil)
	if len(snap) != 2 {
		t.Fatalf("snapshot len=%d", len(snap))
	}
	seen := map[uint64]bool{}
	for _, l := range snap {
		seen[l] = true
	}
	if !seen[10] || !seen[20] {
		t.Fatalf("snapshot contents %v", snap)
	}
	// Snapshot appends to dst.
	snap2 := m.Snapshot([]uint64{99})
	if len(snap2) != 3 || snap2[0] != 99 {
		t.Fatalf("snapshot append broken: %v", snap2)
	}
}

func TestTargetsFree(t *testing.T) {
	m, _ := New(2, 3)
	if m.TargetsFree(5) != 3 {
		t.Fatal("free line should report full capacity")
	}
	m.Reserve(5, tgt(1), 0)
	if m.TargetsFree(5) != 3 {
		t.Fatalf("primary must not consume target slots: %d", m.TargetsFree(5))
	}
	m.Reserve(5, tgt(2), 0)
	if m.TargetsFree(5) != 2 {
		t.Fatalf("TargetsFree=%d", m.TargetsFree(5))
	}
}

func TestResultString(t *testing.T) {
	for _, r := range []Result{ResultNewEntry, ResultMerged, ResultFullEntry, ResultFullTarget} {
		if r.String() == "" {
			t.Fatal("empty result string")
		}
	}
}

// Invariants under random operation sequences: used == live entries,
// allocs - releases == used, lookup agrees with reserve behaviour.
func TestQuickInvariants(t *testing.T) {
	type op struct {
		Line    uint8
		Release bool
	}
	check := func(ops []op) bool {
		m, _ := New(4, 3)
		live := map[uint64]int{} // line -> total requests registered
		for i, o := range ops {
			line := uint64(o.Line % 8)
			if o.Release {
				targets, ok := m.Release(line)
				_, wasLive := live[line]
				if ok != wasLive {
					return false
				}
				if ok {
					if len(targets) != live[line] {
						return false
					}
					delete(live, line)
				}
				continue
			}
			res, _ := m.Reserve(line, tgt(int64(i)), int64(i))
			switch res {
			case ResultNewEntry:
				if _, wasLive := live[line]; wasLive {
					return false // duplicate entry for same line
				}
				live[line] = 1
			case ResultMerged:
				if live[line] == 0 || live[line] > 3 {
					return false
				}
				live[line]++
			case ResultFullEntry:
				if len(live) != 4 {
					return false
				}
			case ResultFullTarget:
				if live[line] != 4 { // primary + numTarget
					return false
				}
			}
			if m.Used() != len(live) {
				return false
			}
		}
		return m.Allocs-m.Releases == int64(m.Used())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
