package serving

import (
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// telemetryScenario is the committed workload the recording tests
// run: session-chained conversations under the chunked scheduler with
// a prefix cache AND a KV capacity tight enough to preempt — so one
// run exercises arrival, admission, prefix hit/miss, prefill chunks,
// decode, preemption and retirement.
func telemetryScenario(t *testing.T) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		Name: "telemetry", Seed: 5, NumRequests: 12,
		MinPromptLen: 32, MaxPromptLen: 96,
		MinDecode: 4, MaxDecode: 8,
		MeanInterArrival: 9000, MaxBatch: 4,
		NumSessions: 2, SessionDepth: 3,
		Sched: SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16,
			KVCapTokens: 360, Preempt: PreemptNewest, PrefixCacheTokens: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// countKinds tallies the merged stream per event kind.
func countKinds(events []telemetry.Event) map[telemetry.Kind]int64 {
	counts := map[telemetry.Kind]int64{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	return counts
}

// TestTelemetryBitInert is the headline disabled-path contract:
// attaching a recorder must not change a single metric bit. The same
// scenario runs with and without recording and the full Metrics
// structs (StepCache diagnostics stripped, as everywhere) must be
// deeply equal.
func TestTelemetryBitInert(t *testing.T) {
	cfg := testConfig()
	scn := telemetryScenario(t)
	plain, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector(5000)
	recorded, err := RunWith(cfg, scn, RunOptions{
		Recorder: col.Node(0), SampleEvery: col.SampleEvery(),
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := *plain, *recorded
	a.StripStepCache()
	b.StripStepCache()
	if !reflect.DeepEqual(&a, &b) {
		t.Error("recording changed the metrics — the bit-inert contract is broken")
	}
	if len(col.Events()) == 0 {
		t.Error("recorded run produced no events")
	}
}

// TestTelemetryCountReconciliation: the event stream is not a
// best-effort log — every lifecycle counter in Metrics must equal the
// count of its event kind exactly.
func TestTelemetryCountReconciliation(t *testing.T) {
	cfg := testConfig()
	scn := telemetryScenario(t)
	col := telemetry.NewCollector(0)
	m, err := RunWith(cfg, scn, RunOptions{Recorder: col.Node(0)})
	if err != nil {
		t.Fatal(err)
	}
	// The fixture must actually exercise the interesting paths.
	if m.Preemptions == 0 {
		t.Fatal("fixture produced no preemptions — tighten KVCapTokens")
	}
	if m.PrefixHits == 0 {
		t.Fatal("fixture produced no prefix hits")
	}
	counts := countKinds(col.Events())
	for _, c := range []struct {
		kind telemetry.Kind
		want int64
	}{
		{telemetry.KindArrive, int64(m.Requests)},
		{telemetry.KindRetire, int64(m.Requests)},
		{telemetry.KindDecode, m.Tokens},
		{telemetry.KindPrefill, m.PrefillSteps},
		{telemetry.KindPreempt, m.Preemptions},
		{telemetry.KindPrefixHit, m.PrefixHits},
		{telemetry.KindPrefixMiss, m.PrefixMisses},
	} {
		if counts[c.kind] != c.want {
			t.Errorf("%v events: %d, want %d (metrics counter)", c.kind, counts[c.kind], c.want)
		}
	}
	// Admissions = retirements + preemptions: every preempted stream
	// is re-admitted before it can retire.
	if counts[telemetry.KindAdmit] != int64(m.Requests)+m.Preemptions {
		t.Errorf("admit events: %d, want %d requests + %d preemptions",
			counts[telemetry.KindAdmit], m.Requests, m.Preemptions)
	}
}

// TestTelemetryMemoReplaySynthesis: steps replayed from the step memo
// never re-run the analytical model, yet the trace must stay complete
// and faithful — the same events in the same order with the same
// payloads as an unmemoized run, differing only in the MemoHit flag.
func TestTelemetryMemoReplaySynthesis(t *testing.T) {
	cfg := testConfig()
	scn := telemetryScenario(t)
	run := func(mode StepCacheMode, memo *StepMemo) []telemetry.Event {
		col := telemetry.NewCollector(0)
		if _, err := RunWith(cfg, scn, RunOptions{
			StepCache: mode, Memo: memo, Recorder: col.Node(0),
		}); err != nil {
			t.Fatal(err)
		}
		return col.Events()
	}
	reference := run(StepCacheNoMemo, nil)
	// A private memo, primed by a first run so the second replays.
	memo := NewStepMemo()
	run(StepCacheOn, memo)
	replayed := run(StepCacheOn, memo)

	hits := 0
	for _, ev := range replayed {
		if ev.MemoHit {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("primed rerun replayed nothing from the memo")
	}
	if len(reference) != len(replayed) {
		t.Fatalf("memoized run emitted %d events, reference %d", len(replayed), len(reference))
	}
	for i := range reference {
		a, b := reference[i], replayed[i]
		b.MemoHit = a.MemoHit // the only licensed difference
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("event %d diverges under memo replay:\nreference: %+v\nreplayed:  %+v", i, reference[i], replayed[i])
		}
	}
}

// TestTelemetrySampleGrid: gauge samples land exactly on the
// k·SampleEvery cycle grid, cover the run's whole span, and carry
// internally consistent gauges.
func TestTelemetrySampleGrid(t *testing.T) {
	cfg := testConfig()
	scn := telemetryScenario(t)
	const every = 5000
	col := telemetry.NewCollector(every)
	m, err := RunWith(cfg, scn, RunOptions{Recorder: col.Node(0), SampleEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	var samples int
	var last int64
	for _, ev := range col.Events() {
		if ev.Kind != telemetry.KindSample {
			continue
		}
		samples++
		if ev.Cycle%every != 0 {
			t.Fatalf("sample at cycle %d is off the %d-cycle grid", ev.Cycle, every)
		}
		if ev.Cycle <= last {
			t.Fatalf("samples not strictly increasing: %d after %d", ev.Cycle, last)
		}
		last = ev.Cycle
		g := ev.Gauges
		if g.Outstanding < 0 || g.Backlog < 0 || g.KVUsed < 0 || g.Running < 0 || g.PrefixFill < 0 {
			t.Fatalf("negative gauge at cycle %d: %+v", ev.Cycle, g)
		}
		if g.Running > scn.MaxBatch {
			t.Fatalf("running %d exceeds batch %d", g.Running, scn.MaxBatch)
		}
	}
	if want := m.Makespan / every; int64(samples) != want {
		t.Errorf("%d samples over makespan %d, want %d (one per full boundary)", samples, m.Makespan, want)
	}
}
