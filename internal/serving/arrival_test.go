package serving

import (
	"reflect"
	"testing"
)

// arrivalScenario draws the fixed test population under one arrival
// shape.
func arrivalScenario(t *testing.T, a ArrivalConfig) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		Name: "arrivals", Seed: 13, NumRequests: 32,
		MinPromptLen: 16, MaxPromptLen: 32,
		MinDecode: 2, MaxDecode: 4,
		MeanInterArrival: 10000, MaxBatch: 4,
		Arrival: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestArrivalValidation covers the per-kind configuration rules.
func TestArrivalValidation(t *testing.T) {
	bad := []ArrivalConfig{
		{Kind: ArrivalPoisson, Period: 100},                             // poisson takes no parameters
		{Kind: ArrivalBurst, Period: 100, Duty: 0, Factor: 2},           // duty outside (0,1)
		{Kind: ArrivalBurst, Period: 100, Duty: 1, Factor: 2},           // duty outside (0,1)
		{Kind: ArrivalBurst, Period: 0, Duty: 0.5, Factor: 2},           // no period
		{Kind: ArrivalBurst, Period: 100, Duty: 0.5, Factor: 0},         // no factor
		{Kind: ArrivalRamp, Period: 100, Factor: 2, Duty: 0.5},          // duty is burst-only
		{Kind: ArrivalRamp, Period: -5, Factor: 2},                      // negative period
		{Kind: ArrivalDiurnal, Period: 100, Factor: -1},                 // negative factor
		{Kind: ArrivalTrace, Period: 100},                               // empty trace
		{Kind: ArrivalTrace, Period: 100, Trace: []float64{1, 0, 2}},    // non-positive multiplier
		{Kind: ArrivalTrace, Period: 100, Trace: []float64{1}, Duty: 1}, // stray parameter
		{Kind: ArrivalKind(99), Period: 100, Factor: 2},                 // unknown kind
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("config %+v accepted, want error", a)
		}
	}
	good := []ArrivalConfig{
		{},
		{Kind: ArrivalBurst, Period: 40000, Duty: 0.25, Factor: 6},
		{Kind: ArrivalRamp, Period: 200000, Factor: 4},
		{Kind: ArrivalDiurnal, Period: 120000, Factor: 3},
		{Kind: ArrivalTrace, Period: 30000, Trace: []float64{1, 4, 0.5, 8}},
	}
	for _, a := range good {
		if err := a.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", a, err)
		}
	}
}

// TestParseArrival covers the flag grammar: canonical specs parse to
// the right shapes and malformed specs fail loudly.
func TestParseArrival(t *testing.T) {
	cases := []struct {
		spec string
		want ArrivalConfig
	}{
		{"", ArrivalConfig{}},
		{"poisson", ArrivalConfig{}},
		{"burst:40000:0.25:6", ArrivalConfig{Kind: ArrivalBurst, Period: 40000, Duty: 0.25, Factor: 6}},
		{"ramp:200000:4", ArrivalConfig{Kind: ArrivalRamp, Period: 200000, Factor: 4}},
		{"diurnal:120000:3", ArrivalConfig{Kind: ArrivalDiurnal, Period: 120000, Factor: 3}},
		{"trace:30000:1,4,0.5,8", ArrivalConfig{Kind: ArrivalTrace, Period: 30000, Trace: []float64{1, 4, 0.5, 8}}},
	}
	for _, c := range cases {
		got, err := ParseArrival(c.spec)
		if err != nil {
			t.Errorf("spec %q: %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("spec %q parsed to %+v, want %+v", c.spec, got, c.want)
		}
	}
	for _, spec := range []string{
		"bogus", "burst", "burst:100:0.5", "burst:100:0.5:2:9", "burst:x:0.5:2",
		"burst:100:2:2", "ramp:100", "ramp:100:0", "diurnal::3",
		"trace:100", "trace:100:", "trace:100:1,x", "trace:100:1,-2",
	} {
		if _, err := ParseArrival(spec); err == nil {
			t.Errorf("spec %q parsed, want error", spec)
		}
	}
}

// TestArrivalPoissonBitIdentity pins the RNG-stream contract: every
// shape draws one exponential gap per request from the same splitmix64
// stream, so a shape whose rate multiplier is identically 1 — a factor-1
// burst, or an all-ones trace — produces the byte-identical population
// of the plain Poisson generator.
func TestArrivalPoissonBitIdentity(t *testing.T) {
	base := arrivalScenario(t, ArrivalConfig{})
	for _, a := range []ArrivalConfig{
		{Kind: ArrivalBurst, Period: 40000, Duty: 0.5, Factor: 1},
		{Kind: ArrivalTrace, Period: 40000, Trace: []float64{1, 1, 1}},
	} {
		scn := arrivalScenario(t, a)
		if !reflect.DeepEqual(scn.Requests, base.Requests) {
			t.Errorf("%v at unit rate diverges from plain poisson", a.Kind)
		}
	}
}

// TestArrivalShapesCompressGaps: every shape with rate multipliers
// >= 1 produces pointwise no-later arrivals than plain Poisson over
// the same draw — strictly earlier somewhere — and keeps the
// population sorted with everything but arrival times untouched.
func TestArrivalShapesCompressGaps(t *testing.T) {
	base := arrivalScenario(t, ArrivalConfig{})
	for _, a := range []ArrivalConfig{
		{Kind: ArrivalBurst, Period: 40000, Duty: 0.5, Factor: 8},
		{Kind: ArrivalRamp, Period: 100000, Factor: 4},
		{Kind: ArrivalDiurnal, Period: 80000, Factor: 3},
		{Kind: ArrivalTrace, Period: 40000, Trace: []float64{1, 6, 2}},
	} {
		scn := arrivalScenario(t, a)
		strict := false
		for i, r := range scn.Requests {
			b := base.Requests[i]
			if r.ArrivalCycle > b.ArrivalCycle {
				t.Errorf("%v: request %d arrives at %d, later than poisson's %d", a.Kind, r.ID, r.ArrivalCycle, b.ArrivalCycle)
			}
			if r.ArrivalCycle < b.ArrivalCycle {
				strict = true
			}
			if i > 0 && r.ArrivalCycle < scn.Requests[i-1].ArrivalCycle {
				t.Errorf("%v: arrivals unsorted at request %d", a.Kind, r.ID)
			}
			// Only the arrival clock moves: prompts, budgets and IDs come
			// from the same draws.
			r.ArrivalCycle = b.ArrivalCycle
			if r != b {
				t.Errorf("%v: request %d differs beyond arrival time: %+v vs %+v", a.Kind, r.ID, r, b)
			}
		}
		if !strict {
			t.Errorf("%v: no arrival strictly earlier than poisson — shape had no effect", a.Kind)
		}
		// And the draw is reproducible.
		if again := arrivalScenario(t, a); !reflect.DeepEqual(scn, again) {
			t.Errorf("%v: repeated draws disagree", a.Kind)
		}
	}
}
