// Arrival-process shaping: bursty, ramping, diurnal and trace-driven
// modulation of the Poisson arrival rate. The generator keeps drawing
// one exponential gap per request from the same splitmix64 stream —
// modulation only rescales the drawn gap by the instantaneous rate
// multiplier — so every shape consumes the RNG identically and the
// plain-Poisson path stays bit-identical to the pre-overload
// generator.
//
// The modulation is the standard thinning-free approximation of a
// nonhomogeneous Poisson process: gap_i = Exp(1) × MeanInterArrival /
// rate(t_i), evaluated at the current clock. It is exact for
// piecewise-constant rates when gaps are short relative to the pieces,
// and — more importantly here — deterministic and replayable.

package serving

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ArrivalKind selects the arrival-rate shape. The zero value is plain
// homogeneous Poisson — the pre-overload generator, bit-identical.
type ArrivalKind uint8

// The arrival shapes.
const (
	// ArrivalPoisson (the zero value): constant rate.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalBurst: on/off square wave — the rate is multiplied by
	// Factor for the first Duty fraction of every Period cycles.
	ArrivalBurst
	// ArrivalRamp: the rate multiplier climbs linearly from 1 to
	// Factor over the first Period cycles, then holds.
	ArrivalRamp
	// ArrivalDiurnal: sinusoidal modulation with period Period; the
	// multiplier swings between 1 and Factor (peak at Period/4).
	ArrivalDiurnal
	// ArrivalTrace: a replayable rate trace — Trace[i] is the
	// multiplier for cycles [i·Period, (i+1)·Period); past the end the
	// last entry holds.
	ArrivalTrace
)

// String returns the canonical kind name.
func (k ArrivalKind) String() string {
	switch k {
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBurst:
		return "burst"
	case ArrivalRamp:
		return "ramp"
	case ArrivalDiurnal:
		return "diurnal"
	case ArrivalTrace:
		return "trace"
	}
	return fmt.Sprintf("ArrivalKind(%d)", uint8(k))
}

// ArrivalConfig shapes the arrival process of a scenario. The zero
// value is plain Poisson at the scenario's MeanInterArrival.
type ArrivalConfig struct {
	Kind ArrivalKind
	// Period is the shape's time scale in cycles: the burst on+off
	// period, the ramp length, the diurnal period, or the per-entry
	// span of a trace. Required (positive) for every kind but poisson.
	Period float64
	// Duty is the bursting fraction of a burst period, in (0, 1).
	// Burst only.
	Duty float64
	// Factor is the peak rate multiplier (> 0): the burst-phase rate,
	// the ramp's final rate, or the diurnal peak. Required for burst,
	// ramp and diurnal.
	Factor float64
	// Trace holds per-Period rate multipliers, each > 0. Trace only.
	Trace []float64
}

// Validate checks the arrival configuration.
func (a ArrivalConfig) Validate() error {
	switch a.Kind {
	case ArrivalPoisson:
		if a.Period != 0 || a.Duty != 0 || a.Factor != 0 || len(a.Trace) != 0 {
			return fmt.Errorf("serving: poisson arrivals take no shape parameters")
		}
		return nil
	case ArrivalBurst:
		if a.Duty <= 0 || a.Duty >= 1 {
			return fmt.Errorf("serving: burst duty must be in (0, 1), got %g", a.Duty)
		}
	case ArrivalRamp, ArrivalDiurnal:
		if a.Duty != 0 {
			return fmt.Errorf("serving: duty is burst-only, got %g for %v", a.Duty, a.Kind)
		}
	case ArrivalTrace:
		if a.Duty != 0 || a.Factor != 0 {
			return fmt.Errorf("serving: trace arrivals take only period and multipliers")
		}
		if len(a.Trace) == 0 {
			return fmt.Errorf("serving: trace arrivals need at least one rate multiplier")
		}
		for i, m := range a.Trace {
			if m <= 0 || math.IsInf(m, 0) || math.IsNaN(m) {
				return fmt.Errorf("serving: trace multiplier %d must be positive and finite, got %g", i, m)
			}
		}
	default:
		return fmt.Errorf("serving: unknown arrival kind %v", a.Kind)
	}
	if a.Period <= 0 || math.IsInf(a.Period, 0) || math.IsNaN(a.Period) {
		return fmt.Errorf("serving: %v arrivals need a positive finite period, got %g", a.Kind, a.Period)
	}
	if a.Kind != ArrivalTrace {
		if a.Factor <= 0 || math.IsInf(a.Factor, 0) || math.IsNaN(a.Factor) {
			return fmt.Errorf("serving: %v arrivals need a positive finite factor, got %g", a.Kind, a.Factor)
		}
	}
	return nil
}

// rate returns the instantaneous rate multiplier at clock (cycles).
func (a ArrivalConfig) rate(clock float64) float64 {
	switch a.Kind {
	case ArrivalBurst:
		if math.Mod(clock, a.Period) < a.Duty*a.Period {
			return a.Factor
		}
		return 1
	case ArrivalRamp:
		if clock >= a.Period {
			return a.Factor
		}
		return 1 + (a.Factor-1)*clock/a.Period
	case ArrivalDiurnal:
		// Swings over [1, Factor]: 1 at clock 0, peak at Period/4.
		return 1 + (a.Factor-1)*0.5*(1+math.Sin(2*math.Pi*clock/a.Period-math.Pi/2))
	case ArrivalTrace:
		idx := int(clock / a.Period)
		if idx >= len(a.Trace) {
			idx = len(a.Trace) - 1
		}
		return a.Trace[idx]
	}
	return 1
}

// ParseArrival reads an -arrival flag value:
//
//	poisson (or "")
//	burst:PERIOD:DUTY:FACTOR    e.g. burst:40000:0.25:6
//	ramp:PERIOD:FACTOR          e.g. ramp:200000:4
//	diurnal:PERIOD:FACTOR       e.g. diurnal:120000:3
//	trace:PERIOD:M1,M2,...      e.g. trace:30000:1,4,0.5,8
//
// PERIOD is in cycles; DUTY is the bursting fraction; FACTOR and the
// trace entries are rate multipliers applied to the scenario's base
// Poisson rate.
func ParseArrival(s string) (ArrivalConfig, error) {
	if s == "" || s == "poisson" {
		return ArrivalConfig{}, nil
	}
	parts := strings.Split(s, ":")
	bad := func() (ArrivalConfig, error) {
		return ArrivalConfig{}, fmt.Errorf("serving: bad arrival spec %q (want poisson, burst:PERIOD:DUTY:FACTOR, ramp:PERIOD:FACTOR, diurnal:PERIOD:FACTOR or trace:PERIOD:M1,M2,...)", s)
	}
	num := func(v string) (float64, bool) {
		f, err := strconv.ParseFloat(v, 64)
		return f, err == nil
	}
	var cfg ArrivalConfig
	switch parts[0] {
	case "burst":
		if len(parts) != 4 {
			return bad()
		}
		cfg.Kind = ArrivalBurst
		var ok1, ok2, ok3 bool
		cfg.Period, ok1 = num(parts[1])
		cfg.Duty, ok2 = num(parts[2])
		cfg.Factor, ok3 = num(parts[3])
		if !ok1 || !ok2 || !ok3 {
			return bad()
		}
	case "ramp", "diurnal":
		if len(parts) != 3 {
			return bad()
		}
		cfg.Kind = ArrivalRamp
		if parts[0] == "diurnal" {
			cfg.Kind = ArrivalDiurnal
		}
		var ok1, ok2 bool
		cfg.Period, ok1 = num(parts[1])
		cfg.Factor, ok2 = num(parts[2])
		if !ok1 || !ok2 {
			return bad()
		}
	case "trace":
		if len(parts) != 3 {
			return bad()
		}
		cfg.Kind = ArrivalTrace
		var ok bool
		if cfg.Period, ok = num(parts[1]); !ok {
			return bad()
		}
		for _, v := range strings.Split(parts[2], ",") {
			m, ok := num(v)
			if !ok {
				return bad()
			}
			cfg.Trace = append(cfg.Trace, m)
		}
	default:
		return bad()
	}
	if err := cfg.Validate(); err != nil {
		return ArrivalConfig{}, err
	}
	return cfg, nil
}
