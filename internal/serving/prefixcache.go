// The session prefix cache: capacity-bounded retention of retired
// requests' KV, keyed by session, evicted LRU. It models the KV-block
// sharing of production prefix caches at the granularity this
// simulator works in — whole token counts per session.
//
// Physical legitimacy: a prefill pass's K region is byte-identical to
// the decode-phase AddressMap K region at the same stream base (the
// PrefillAddressMap coincidence the prefill tests pin), so a stream
// that starts from a cached kvLen-token prefix touches exactly the
// lines a full prefill would have produced — skipping the shared
// chunks is an accounting change, not an address-space fiction.
//
// Lifecycle:
//
//   - Retirement: the finished stream's final KV (PromptLen +
//     DecodeTokens) is retained under its session, replacing the
//     session's previous entry and evicting least-recently-used
//     sessions until it fits. An entry larger than the whole capacity
//     is not retained.
//   - Admission: a request carrying PrefixLen > 0 looks its session
//     up. The usable prefix is min(retained, PrefixLen), taken only
//     when it reaches the decode mapping floor (minKVLen); on a hit
//     the stream is born with kvLen = usable, owes only the remaining
//     prompt suffix as prefill, and reserves only suffix + decode
//     tokens against the KV capacity gate. The entry stays resident
//     (shared, LRU-refreshed): later turns of the same session can
//     hit it again.
//   - Preemption: an evicted stream's suffix KV is dropped with its
//     reservation, exactly like the recompute-on-preempt contract; the
//     cache entry it hit (if any) is unaffected. Re-admission
//     RE-VALIDATES against the cache explicitly — a fresh lookup at
//     that moment decides how much prefix the recompute prefill may
//     skip, so an entry evicted in between simply costs the full
//     recompute.
//
// With PrefixCacheTokens == 0 no prefixCache is constructed and the
// engine takes none of these paths — bit-identical to the
// pre-prefix-cache engine.

package serving

// prefixEntry is one session's retained KV in the LRU list.
type prefixEntry struct {
	session    int
	tokens     int64
	prev, next *prefixEntry // LRU neighbours; head = most recent
}

// prefixCache is the per-engine session prefix cache.
type prefixCache struct {
	cap     int64
	used    int64
	entries map[int]*prefixEntry
	head    *prefixEntry // most recently used
	tail    *prefixEntry // least recently used
}

func newPrefixCache(capTokens int64) *prefixCache {
	return &prefixCache{cap: capTokens, entries: make(map[int]*prefixEntry)}
}

// lookup returns the usable prefix tokens for a request of the given
// session carrying prefixLen shared tokens: min(retained, prefixLen),
// or 0 when the session has no entry or the overlap is below the
// decode mapping floor. Read-only — commit applies the LRU refresh
// once the admission actually happens.
func (c *prefixCache) lookup(session, prefixLen int) int {
	e, ok := c.entries[session]
	if !ok {
		return 0
	}
	usable := int64(prefixLen)
	if e.tokens < usable {
		usable = e.tokens
	}
	if usable < minKVLen {
		return 0
	}
	return int(usable)
}

// commit marks the session's entry most-recently-used after a hit.
func (c *prefixCache) commit(session int) {
	if e, ok := c.entries[session]; ok {
		c.moveToFront(e)
	}
}

// insert retains tokens of KV for the session, replacing its previous
// entry and evicting LRU sessions until the cache fits. A value larger
// than the whole capacity is not retained (and drops the session's
// stale entry, which the new conversation state has superseded).
func (c *prefixCache) insert(session int, tokens int64) {
	if e, ok := c.entries[session]; ok {
		c.remove(e)
	}
	if tokens <= 0 || tokens > c.cap {
		return
	}
	for c.used+tokens > c.cap && c.tail != nil {
		c.remove(c.tail)
	}
	e := &prefixEntry{session: session, tokens: tokens}
	c.entries[session] = e
	c.used += tokens
	c.pushFront(e)
}

// cached returns the retained KV tokens for a session (0 when absent)
// — the router's per-node prefix-locality observation.
func (c *prefixCache) cached(session int) int64 {
	if e, ok := c.entries[session]; ok {
		return e.tokens
	}
	return 0
}

func (c *prefixCache) pushFront(e *prefixEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *prefixCache) remove(e *prefixEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	c.used -= e.tokens
	delete(c.entries, e.session)
}

func (c *prefixCache) moveToFront(e *prefixEntry) {
	if c.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	c.pushFront(e)
}
