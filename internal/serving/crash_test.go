package serving

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// crashReq builds the fixed-footprint request of the crash unit tests.
func crashReq(id int, arrival int64) Request {
	return Request{ID: id, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 6, ArrivalCycle: arrival}
}

// crashEngine builds an engine sized for the given request population
// (the stride must cover the largest sequence, like every other
// engine-level test).
func crashEngine(t *testing.T, maxBatch int, opts RunOptions, reqs ...Request) *Engine {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	stride, err := StreamStride(Scenario{Name: "crash", Requests: reqs, MaxBatch: maxBatch, Sched: opts.Sched})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngineWith(cfg, maxBatch, false, stride, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCrashEvictsEverything: a crash mid-run returns every unfinished
// request — running streams with their decode progress, queued and
// not-yet-arrived ones with zero — wipes the KV ledger, and leaves
// retired work untouched. The victims' stats rows leave the engine so
// the node that finally serves them owns their accounting.
func TestCrashEvictsEverything(t *testing.T) {
	reqs := []Request{crashReq(0, 0), crashReq(1, 0), crashReq(2, 1<<40)}
	// MaxBatch 1: strict serial service.
	e := crashEngine(t, 1, RunOptions{}, reqs...)
	for _, r := range reqs {
		if err := e.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	// Finish request 0 entirely, then advance until request 1 is
	// mid-decode (admission is an iteration-boundary affair, like the
	// Drain loop drives it).
	for e.tokensOf(0) < 6 || e.tokensOf(1) == 0 {
		e.admit()
		if err := e.stepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	progress := e.tokensOf(1)
	if progress <= 0 || progress >= 6 {
		t.Fatalf("request 1 decode progress %d, want mid-stream", progress)
	}
	victims, lost := e.Crash()
	if len(victims) != 2 {
		t.Fatalf("%d victims, want 2 (requests 1 and 2)", len(victims))
	}
	// Slot victims first (slot order), then queued/pending arrivals.
	if victims[0].Req.ID != 1 || victims[0].Tokens != progress {
		t.Errorf("victim 0 = request %d with %d tokens, want 1/%d", victims[0].Req.ID, victims[0].Tokens, progress)
	}
	if victims[1].Req.ID != 2 || victims[1].Tokens != 0 {
		t.Errorf("victim 1 = request %d with %d tokens, want 2/0", victims[1].Req.ID, victims[1].Tokens)
	}
	if lost != int64(progress) {
		t.Errorf("lost tokens %d, want %d", lost, progress)
	}
	// The running victim carries its recorded first-token timing into
	// the crash; the never-arrived one carries nothing.
	if victims[0].Stats.FirstTokenCycle == 0 || victims[0].Stats.TTFT == 0 {
		t.Errorf("running victim lost its first-token stats: %+v", victims[0].Stats)
	}
	if victims[1].Stats.FirstTokenCycle != 0 {
		t.Errorf("pending victim has a first token: %+v", victims[1].Stats)
	}
	// The node is empty: no outstanding work, no KV, only the retired
	// request's stats remain.
	if e.OutstandingTokens() != 0 || e.kvUsed != 0 || e.unfinished != 0 {
		t.Errorf("post-crash residue: outstanding=%d kvUsed=%d unfinished=%d",
			e.OutstandingTokens(), e.kvUsed, e.unfinished)
	}
	if e.Submitted() != 1 {
		t.Fatalf("post-crash stats rows %d, want 1 (the retired request)", e.Submitted())
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.Requests != 1 || m.Tokens != 6+int64(progress) {
		t.Errorf("post-crash metrics: %d requests %d tokens, want 1 retired and 6+%d decoded",
			m.Requests, m.Tokens, progress)
	}
	if m.PerRequest[0].ID != 0 || m.PerRequest[0].Tokens != 6 {
		t.Errorf("retired request perturbed by the crash: %+v", m.PerRequest[0])
	}
	// A crashed node accepts fresh work again (rejoin reuses the same
	// engine object at fleet level conceptually; here: resubmission of a
	// victim must be legal since its stats row is gone).
	if err := e.SubmitResume(victims[0].Req, victims[0].Tokens); err != nil {
		t.Fatalf("resubmitting a crash victim after the crash: %v", err)
	}
}

// tokensOf reads a request's decode progress off the engine (test
// helper; 0 when not running).
func (e *Engine) tokensOf(id int) int {
	for _, s := range e.slots {
		if s != nil && s.req.ID == id {
			return s.tokens
		}
	}
	if i, ok := e.statIdx[id]; ok && e.stats[i].FinishCycle != 0 {
		return e.stats[i].Tokens
	}
	return 0
}

// TestCrashWipesPrefixCache: a rejoining node reintegrates cold — the
// session prefix cache is rebuilt from scratch after a crash.
func TestCrashWipesPrefixCache(t *testing.T) {
	r := crashReq(0, 0)
	e := crashEngine(t, 2, RunOptions{
		Sched: SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16, KVCapTokens: 1 << 20, PrefixCacheTokens: 1 << 20},
	}, r)
	r.Session = 5
	if err := e.Submit(r); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if e.CachedPrefix(5) == 0 {
		t.Fatal("retired session left nothing in the prefix cache — scenario broken")
	}
	if _, lost := e.Crash(); lost != 0 {
		t.Fatalf("crash on an idle node lost %d tokens", lost)
	}
	if got := e.CachedPrefix(5); got != 0 {
		t.Fatalf("prefix cache survived the crash: %d cached tokens for session 5", got)
	}
}

// TestSubmitResumeValidation: the resume point must be a proper decode
// prefix — negative values and completed budgets are rejected.
func TestSubmitResumeValidation(t *testing.T) {
	e := crashEngine(t, 2, RunOptions{}, crashReq(0, 0))
	if err := e.SubmitResume(crashReq(0, 0), -1); err == nil {
		t.Error("negative resume point accepted")
	}
	if err := e.SubmitResume(crashReq(0, 0), 6); err == nil {
		t.Error("resume point == decode budget accepted (nothing left to generate)")
	}
	if err := e.SubmitResume(crashReq(0, 0), 0); err != nil {
		t.Errorf("resume point 0 rejected: %v", err)
	}
}

// TestSubmitResumeZeroIsSubmit: SubmitResume with a zero resume point
// is bit-identical to a plain Submit.
func TestSubmitResumeZeroIsSubmit(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	run := func(resume bool) *Metrics {
		e := crashEngine(t, 2, RunOptions{}, crashReq(0, 0))
		var err error
		if resume {
			err = e.SubmitResume(crashReq(0, 0), 0)
		} else {
			err = e.Submit(crashReq(0, 0))
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Drain(); err != nil {
			t.Fatal(err)
		}
		m := e.Metrics()
		m.StripStepCache()
		return m
	}
	if a, b := run(false), run(true); !reflect.DeepEqual(a, b) {
		t.Errorf("SubmitResume(req, 0) diverged from Submit:\n%v\n%v", a, b)
	}
}

// TestSubmitResumeDecodesOnlyTheRemainder: a resumed request decodes
// exactly its remaining budget (the carried tokens were generated on
// the crashed node and are never generated twice), while the retired
// row still reports the full lifetime budget. Under a prefill
// scheduler the carried tokens come back as recomputed prefill.
func TestSubmitResumeDecodesOnlyTheRemainder(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	for _, tc := range []struct {
		name  string
		sched SchedulerConfig
	}{
		{"decode-only", SchedulerConfig{}},
		{"chunked", SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16, KVCapTokens: 1 << 20}},
	} {
		e := crashEngine(t, 2, RunOptions{Sched: tc.sched}, crashReq(0, 0))
		if err := e.SubmitResume(crashReq(0, 0), 4); err != nil {
			t.Fatal(err)
		}
		if err := e.Drain(); err != nil {
			t.Fatal(err)
		}
		m := e.Metrics()
		if m.Tokens != 2 {
			t.Errorf("%s: resumed engine decoded %d tokens, want exactly the remainder 2", tc.name, m.Tokens)
		}
		rs := m.PerRequest[0]
		if rs.Tokens != 6 || rs.FinishCycle == 0 {
			t.Errorf("%s: retired row tokens=%d finish=%d, want the full budget 6, finished", tc.name, rs.Tokens, rs.FinishCycle)
		}
		if tc.sched.Policy != SchedDecodeOnly && m.PrefillTokens != 16+4 {
			t.Errorf("%s: prefill tokens %d, want prompt 16 + carried 4", tc.name, m.PrefillTokens)
		}
	}
}

// TestSetSlowdownScalesStepCosts: under a straggler factor k every
// step costs exactly k× its nominal cycles, so a closed single-node
// run's makespan scales exactly k× — and factor 1 (or below) is the
// untouched fast path.
func TestSetSlowdownScalesStepCosts(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	run := func(factor int64, mode StepCacheMode) int64 {
		e := crashEngine(t, 2, RunOptions{StepCache: mode}, crashReq(0, 0))
		e.SetSlowdown(factor)
		if err := e.Submit(crashReq(0, 0)); err != nil {
			t.Fatal(err)
		}
		if err := e.Drain(); err != nil {
			t.Fatal(err)
		}
		return e.Metrics().Makespan
	}
	base := run(1, StepCacheOn)
	if base == 0 {
		t.Fatal("baseline makespan 0")
	}
	for _, k := range []int64{2, 5} {
		if got := run(k, StepCacheOn); got != k*base {
			t.Errorf("factor %d makespan %d, want exactly %d×%d", k, got, k, base)
		}
		// The memo stores UNSCALED cycles: the slowdown must scale
		// identically whether a step executes or replays.
		if got := run(k, StepCacheOff); got != k*base {
			t.Errorf("factor %d (cache off) makespan %d, want exactly %d×%d", k, got, k, base)
		}
	}
	if run(0, StepCacheOn) != base {
		t.Error("factor 0 not clamped to the unscaled fast path")
	}
}
