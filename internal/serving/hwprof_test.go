package serving

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/hwprof"
	"repro/internal/workload"
)

// preemptScenario builds a KV-pressured chunked-prefill population
// that is known to preempt: tight KV capacity, newest-victim policy.
func preemptScenario(t *testing.T) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		Name:             "test/preempt",
		Seed:             11,
		NumRequests:      8,
		Models:           []workload.ModelConfig{workload.Llama3_70B},
		MinPromptLen:     48,
		MaxPromptLen:     96,
		MinDecode:        2,
		MaxDecode:        4,
		MeanInterArrival: 2000,
		MaxBatch:         4,
		Sched: SchedulerConfig{
			Policy: SchedChunked, ChunkTokens: 16,
			KVCapTokens: 192, Preempt: PreemptNewest,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestHWProfReconciliation: the profile's summed per-step deltas are
// bit-identical to the engine's whole-run aggregate counters, phase
// and request attributions both sum back to the busy cycles, and
// every request appears exactly once.
func TestHWProfReconciliation(t *testing.T) {
	scn := testScenario(t)
	m, err := RunWith(testConfig(), scn, RunOptions{HWProf: hwprof.Spec{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if m.HW == nil {
		t.Fatal("HWProf enabled but Metrics.HW is nil")
	}
	if m.HW.Total != m.Counters {
		t.Fatalf("summed per-step deltas diverge from whole-run counters:\nprofile: %+v\nengine:  %+v",
			m.HW.Total, m.Counters)
	}
	if m.HW.BusyCycles != m.Cycles || m.HW.Steps != m.Steps {
		t.Fatalf("profile busy=%d steps=%d, engine busy=%d steps=%d",
			m.HW.BusyCycles, m.HW.Steps, m.Cycles, m.Steps)
	}
	var phaseCycles, reqCycles int64
	for _, ph := range m.HW.Phases {
		phaseCycles += ph.Cycles
	}
	for _, r := range m.HW.Requests {
		reqCycles += r.Cycles
	}
	if phaseCycles != m.Cycles || reqCycles != m.Cycles {
		t.Errorf("attribution cycles: phases=%d requests=%d, want %d", phaseCycles, reqCycles, m.Cycles)
	}
	if len(m.HW.Requests) != len(scn.Requests) {
		t.Errorf("profile covers %d requests, scenario has %d", len(m.HW.Requests), len(scn.Requests))
	}
}

// TestHWProfMemoBitIdentity: the memoized fast path stores and
// replays exact counter deltas, so the entire profile — attribution,
// percentiles, classified buckets — is byte-identical with the memo
// on and off.
func TestHWProfMemoBitIdentity(t *testing.T) {
	scn := preemptScenario(t)
	opts := RunOptions{HWProf: hwprof.Spec{Enabled: true, SampleEvery: 20000}}

	opts.StepCache = StepCacheOn
	opts.Memo = NewStepMemo()
	mOn, err := RunWith(testConfig(), scn, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.StepCache = StepCacheNoMemo
	opts.Memo = nil
	mOff, err := RunWith(testConfig(), scn, opts)
	if err != nil {
		t.Fatal(err)
	}
	jOn, err := json.Marshal(mOn.HW)
	if err != nil {
		t.Fatal(err)
	}
	jOff, err := json.Marshal(mOff.HW)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jOn, jOff) {
		t.Fatalf("profiles diverge between memo on and off:\non:  %s\noff: %s", jOn, jOff)
	}
	if mOn.HW.Total != mOn.Counters {
		t.Fatalf("memo-on profile does not reconcile: %+v vs %+v", mOn.HW.Total, mOn.Counters)
	}
}

// TestHWProfRecomputePhaseAttribution: after a preemption the victim's
// re-prefill is attributed to the recompute-preempt phase, not decode
// or plain prefill, and the recompute work is the kind of prefill
// tokens the preemption log predicts.
func TestHWProfRecomputePhaseAttribution(t *testing.T) {
	scn := preemptScenario(t)
	m, err := RunWith(testConfig(), scn, RunOptions{HWProf: hwprof.Spec{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Preemptions == 0 {
		t.Fatal("scenario did not preempt; tighten KVCapTokens")
	}
	rec := m.HW.Phases[hwprof.PhaseRecomputePreempt]
	if rec.Steps == 0 || rec.Tokens == 0 || rec.Cycles == 0 {
		t.Fatalf("preempting run attributed nothing to recompute-preempt: %+v", rec)
	}
	if m.HW.Phases[hwprof.PhaseRecomputeRedispatch].Tokens != 0 {
		t.Error("single-node run attributed tokens to recompute-redispatch")
	}
	// Decode token attribution must match the generated token count
	// exactly — recompute chunks may not leak into the decode phase.
	if dec := m.HW.Phases[hwprof.PhaseDecode]; dec.Tokens != m.Tokens {
		t.Errorf("decode phase carries %d tokens, engine generated %d", dec.Tokens, m.Tokens)
	}
	// All prefill-side tokens: plain prefill ran the prompts not yet
	// resident, recompute re-ran evicted prefixes; together they equal
	// the engine's total prefilled tokens.
	pre := m.HW.Phases[hwprof.PhasePrefill].Tokens + rec.Tokens
	if pre != m.PrefillTokens {
		t.Errorf("prefill+recompute tokens = %d, engine prefilled %d", pre, m.PrefillTokens)
	}
}

// TestHWProfRedispatchPhaseAttribution: a request resumed via
// SubmitResume (the crash-recovery path) re-prefills under the
// recompute-redispatch phase.
func TestHWProfRedispatchPhaseAttribution(t *testing.T) {
	scn := testScenario(t)
	scn.Sched = SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16}
	stride, err := StreamStride(scn)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngineWith(testConfig(), scn.MaxBatch, scn.IncludeAV, stride,
		RunOptions{HWProf: hwprof.Spec{Enabled: true}, Sched: scn.Sched})
	if err != nil {
		t.Fatal(err)
	}
	// First request arrives as a redispatched crash victim carrying one
	// generated token; the rest arrive normally.
	for i, req := range scn.Requests {
		req.ArrivalCycle = 0
		if i == 0 {
			if err := eng.SubmitResume(req, 1); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := eng.Submit(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	red := m.HW.Phases[hwprof.PhaseRecomputeRedispatch]
	if red.Tokens == 0 || red.Cycles == 0 {
		t.Fatalf("redispatched request attributed nothing to recompute-redispatch: %+v", red)
	}
	// The recomputed KV is the victim's prompt plus its generated
	// tokens.
	if want := int64(scn.Requests[0].PromptLen + 1); red.Tokens != want {
		t.Errorf("recompute-redispatch tokens = %d, want %d", red.Tokens, want)
	}
	if m.HW.Phases[hwprof.PhaseRecomputePreempt].Tokens != 0 {
		t.Error("no preemption ran, but recompute-preempt carries tokens")
	}
}

// TestHWProfOffBitInert: with the profiler off the metrics carry no
// HW block and are bit-identical to a run that never knew about
// profiling (the zero RunOptions path the PR-9 goldens pin).
func TestHWProfOffBitInert(t *testing.T) {
	scn := testScenario(t)
	base, err := RunWith(testConfig(), scn, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.HW != nil {
		t.Fatal("HWProf disabled but Metrics.HW is non-nil")
	}
	prof, err := RunWith(testConfig(), scn, RunOptions{HWProf: hwprof.Spec{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	base.StripStepCache()
	prof.StripStepCache()
	prof.HW = nil
	jBase, _ := json.Marshal(base)
	jProf, _ := json.Marshal(prof)
	if !bytes.Equal(jBase, jProf) {
		t.Fatal("profiling changed the simulated metrics")
	}
	// And the serialized form hides the field entirely when off, so
	// -json artifacts are byte-unchanged.
	if bytes.Contains(jBase, []byte(`"HW"`)) {
		t.Fatal("disabled profile leaks an HW field into JSON")
	}
}
