// Multi-stream trace composition: each running decode stream
// contributes the per-token trace of its own operator(s) at its own
// address-space offset, and the composer interleaves the streams'
// thread blocks round-robin so their memory traffic contends in the
// LLC and DRAM the way concurrent requests do on real hardware.

package serving

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/memtrace"
	"repro/internal/workload"
)

// streamAlign is the alignment of per-stream address regions: 4 MiB,
// far above the DRAM row and channel-interleave granularity, so two
// streams never share a cache line or DRAM row but still contend for
// the same slices, MSHRs, rows and channels through the normal
// address-interleaving functions.
const streamAlign = 4 << 20

// StreamState is one running stream at a step boundary: which batch
// slot it occupies (and therefore where its KV cache lives), which
// model it runs, how long its KV cache is, and — for a prefill pass —
// how many prompt tokens the pass advances.
//
// ChunkLen == 0 is a decode stream: one new token scored against a
// KVLen-token cache. ChunkLen > 0 is a prefill pass: the last ChunkLen
// tokens of a KVLen-token prompt prefix scored against the whole
// prefix (KVLen is the cache length AFTER the pass).
type StreamState struct {
	Slot     int
	Base     uint64 // address-space base of the stream's tensor region
	Model    workload.ModelConfig
	KVLen    int
	ChunkLen int // 0 = decode step; >0 = prefill pass of that many tokens
}

// StreamStride returns the per-slot address-space stride for a
// scenario: the largest tensor footprint any request reaches (Logit
// tensors, plus the AV tensors when enabled, plus — under a prefill
// scheduler — the largest prefill pass), aligned up to the 4 MiB
// stream region alignment. Slot i's region starts at i×stride; a
// retired request's slot — and therefore its KV-cache region — is
// reused by the next admitted request, the slot-reuse behaviour of a
// real KV-cache allocator.
func StreamStride(scn Scenario) (uint64, error) {
	var stride uint64
	for _, r := range scn.Requests {
		op := workload.LogitOp{Model: r.Model, SeqLen: r.PromptLen + r.DecodeTokens}
		amap, err := workload.NewAddressMap(op, 0)
		if err != nil {
			return 0, err
		}
		limit := amap.Limit
		if scn.IncludeAV {
			avop := workload.AVOp{Model: r.Model, SeqLen: op.SeqLen}
			avmap, err := workload.NewAVAddressMap(avop, limit)
			if err != nil {
				return 0, err
			}
			limit = avmap.Limit
		}
		if scn.Sched.Policy != SchedDecodeOnly {
			// Upper bound over every prefill pass of the request: the
			// full prefix with the largest chunk the policy can issue.
			chunk := r.PromptLen
			if scn.Sched.Policy == SchedChunked && scn.Sched.ChunkTokens < chunk {
				chunk = scn.Sched.ChunkTokens
			}
			pop := workload.PrefillOp{Model: r.Model, KVLen: r.PromptLen, ChunkLen: chunk}
			pmap, err := workload.NewPrefillAddressMap(pop, 0)
			if err != nil {
				return 0, err
			}
			if pmap.Limit > limit {
				limit = pmap.Limit
			}
		}
		if limit > stride {
			stride = limit
		}
	}
	return (stride + streamAlign - 1) / streamAlign * streamAlign, nil
}

// FirstStep returns the stream states of the scenario's first step:
// under the decode-only scheduler, the FCFS batch admitted at the
// earliest arrival boundary (up to the batch capacity), each stream at
// its slot's address base; under a prefill scheduler, the first
// prefill pass of the FCFS-first request (whole prompt for
// prefill-first, one chunk for chunked) — every admitted stream still
// owes its prompt at the first boundary, so no decode rides along yet.
// It lives next to the engine so the admission logic cannot drift from
// Run's first iteration; cmd/serve uses it to dump the first composed
// step trace.
func FirstStep(scn Scenario) ([]StreamState, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	stride, err := StreamStride(scn)
	if err != nil {
		return nil, err
	}
	reqs := make([]Request, len(scn.Requests))
	copy(reqs, scn.Requests)
	sortRequests(reqs)
	if scn.Sched.Policy != SchedDecodeOnly {
		r := reqs[0]
		adv := scn.Sched.prefillTarget(r.PromptLen)
		return []StreamState{{
			Slot:     0,
			Base:     0,
			Model:    r.Model,
			KVLen:    adv,
			ChunkLen: adv,
		}}, nil
	}
	first := reqs[0].ArrivalCycle
	var states []StreamState
	for _, r := range reqs {
		if len(states) >= scn.MaxBatch || r.ArrivalCycle > first {
			break
		}
		states = append(states, StreamState{
			Slot:  len(states),
			Base:  uint64(len(states)) * stride,
			Model: r.Model,
			KVLen: r.PromptLen,
		})
	}
	return states, nil
}

// ComposeStep builds the memory trace of one continuous-batching
// token step: every stream's per-token operator trace is generated at
// the stream's address base, stamped with the stream's slot, and the
// streams' thread blocks are interleaved round-robin (stream 0 block
// 0, stream 1 block 0, …, stream 0 block 1, …) so the composed
// dispatch order alternates streams — concurrent decode requests, not
// a concatenation of sequential ones.
//
// The returned group size is the largest G among the streams' models;
// the affinity dispatcher uses it together with Meta.Stream to spread
// the streams across cores.
func ComposeStep(streams []StreamState, includeAV bool, lineBytes int) (*memtrace.Trace, int, error) {
	if len(streams) == 0 {
		return nil, 0, fmt.Errorf("serving: empty step")
	}
	perStream := make([][]*memtrace.ThreadBlock, len(streams))
	groupSize := 0
	name := ""
	for i, st := range streams {
		if st.Model.G > groupSize {
			groupSize = st.Model.G
		}
		blocks, opName, err := streamBlocks(st, includeAV, lineBytes)
		if err != nil {
			return nil, 0, err
		}
		perStream[i] = blocks
		if name == "" {
			name = opName
		}
	}

	out := &memtrace.Trace{Name: fmt.Sprintf("serve/%dstreams/%s", len(streams), name)}
	total := 0
	for _, blocks := range perStream {
		total += len(blocks)
	}
	out.Blocks = make([]*memtrace.ThreadBlock, 0, total)
	for j := 0; ; j++ {
		appended := false
		for i := range perStream {
			if j < len(perStream[i]) {
				tb := perStream[i][j]
				tb.ID = len(out.Blocks)
				out.Blocks = append(out.Blocks, tb)
				appended = true
			}
		}
		if !appended {
			break
		}
	}
	return out, groupSize, nil
}

// streamBlocks generates one stream's per-step thread blocks — the
// decode-step Logit operator (plus AV when enabled) or, when the
// state is a prefill pass (ChunkLen > 0), the prefill operator — at
// the stream's address base, every block stamped with the stream's
// slot. Both composition paths share it: ComposeStep interleaves
// freshly generated blocks (the naive reference), the step cache
// publishes them as immutable masters keyed by (model, kvLen, chunk,
// slot, base, av, lineBytes). The returned name is the operator
// trace's name (used by ComposeStep's trace label).
func streamBlocks(st StreamState, includeAV bool, lineBytes int) ([]*memtrace.ThreadBlock, string, error) {
	if st.ChunkLen > 0 {
		return prefillBlocks(st, lineBytes)
	}
	op := workload.LogitOp{Model: st.Model, SeqLen: st.KVLen}
	amap, err := workload.NewAddressMap(op, st.Base)
	if err != nil {
		return nil, "", err
	}
	mapping, _, err := dataflow.FindMapping(op, lineBytes)
	if err != nil {
		return nil, "", err
	}
	tr, err := dataflow.Generate(op, amap, mapping, lineBytes)
	if err != nil {
		return nil, "", err
	}
	blocks := tr.Blocks
	if includeAV {
		avop := workload.AVOp{Model: st.Model, SeqLen: st.KVLen}
		avmap, err := workload.NewAVAddressMap(avop, amap.Limit)
		if err != nil {
			return nil, "", err
		}
		avtr, err := dataflow.GenerateAV(avop, avmap, mapping, lineBytes)
		if err != nil {
			return nil, "", err
		}
		blocks = append(blocks, avtr.Blocks...)
	}
	for _, tb := range blocks {
		tb.Meta.Stream = st.Slot
	}
	return blocks, tr.Name, nil
}

// prefillBlocks generates the thread blocks of one prefill pass: the
// last ChunkLen prompt tokens of the stream scored against its whole
// KVLen-token prefix, at the stream's address base (the K region
// coincides with the decode phase's K region, so the pass warms the
// same KV-cache lines later decode steps read). The AV operator does
// not apply to prefill passes — IncludeAV shapes decode steps only.
func prefillBlocks(st StreamState, lineBytes int) ([]*memtrace.ThreadBlock, string, error) {
	op := workload.PrefillOp{Model: st.Model, KVLen: st.KVLen, ChunkLen: st.ChunkLen}
	amap, err := workload.NewPrefillAddressMap(op, st.Base)
	if err != nil {
		return nil, "", err
	}
	mapping, _, err := dataflow.FindPrefillMapping(op, lineBytes)
	if err != nil {
		return nil, "", err
	}
	tr, err := dataflow.GeneratePrefill(op, amap, mapping, lineBytes)
	if err != nil {
		return nil, "", err
	}
	for _, tb := range tr.Blocks {
		tb.Meta.Stream = st.Slot
	}
	return tr.Blocks, tr.Name, nil
}
