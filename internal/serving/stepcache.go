// The token-step fast path: signature-keyed step memoization, the
// shared per-stream operator-trace cache, and the canonical step
// signature.
//
// The cycle simulator is deterministic, so one token step's outcome —
// (cycles, counters) — is a pure function of the hardware
// configuration and the canonical state of the running set: the
// sorted (slot, model, kvLen) tuples plus the address layout (stream
// stride, AV inclusion). Two steps with the same signature are
// therefore bit-identical, wherever they execute: a later step of the
// same engine, another node of a cluster fleet, or another cell of an
// experiment grid. The StepMemo exploits exactly that: a hit skips
// trace composition and simulation entirely and replays the recorded
// result; a miss computes the step on the engine's persistent
// (resettable) simulator and publishes it.
//
// The same determinism argument covers the per-stream operator traces:
// the thread blocks of one stream's token step depend only on (model,
// kvLen, address base, AV, line size), so they are generated once and
// shared process-wide. Cached blocks are immutable masters — the
// composition arena copies the small ThreadBlock headers per step
// (instruction slices shared read-only) before stamping step-local
// IDs, which is what makes sharing safe across concurrently advancing
// node engines.
//
// Both caches are concurrency-safe and value-deterministic: whichever
// engine computes a key first, every reader observes the same bytes,
// so cluster fan-outs and experiment grids stay bit-reproducible at
// any parallelism. The memo-hit *counters* are the one exception —
// they depend on process history and fan-out timing and are reported
// as diagnostics only (Metrics.StepCache), outside the bit-identity
// contract.

package serving

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/memtrace"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// StepCacheMode selects the token-step execution path.
type StepCacheMode uint8

// Step-cache modes. The zero value is the full fast path.
const (
	// StepCacheOn is the default: signature memo + composition arena +
	// resettable persistent simulator.
	StepCacheOn StepCacheMode = iota
	// StepCacheNoMemo keeps the arena and the resettable simulator but
	// executes every step (no memoized replay) — the mode that isolates
	// reset/arena equivalence from memo equivalence in tests.
	StepCacheNoMemo
	// StepCacheOff is the naive reference path: every step composes a
	// fresh trace and constructs a fresh simulator, exactly the
	// pre-memoization pipeline. It is the serving analogue of
	// sim.Config.Reference and the ground truth the equivalence tests
	// compare against.
	StepCacheOff
)

// String implements fmt.Stringer.
func (m StepCacheMode) String() string {
	switch m {
	case StepCacheOn:
		return "on"
	case StepCacheNoMemo:
		return "nomemo"
	case StepCacheOff:
		return "off"
	}
	return fmt.Sprintf("StepCacheMode(%d)", uint8(m))
}

// ParseStepCacheMode reads a -stepcache flag value: "on", "nomemo" or
// "off".
func ParseStepCacheMode(s string) (StepCacheMode, error) {
	switch s {
	case "on", "":
		return StepCacheOn, nil
	case "nomemo":
		return StepCacheNoMemo, nil
	case "off", "naive":
		return StepCacheOff, nil
	}
	return 0, fmt.Errorf("serving: unknown step-cache mode %q (want on, nomemo or off)", s)
}

// StepCacheStats reports what the fast path did during a run. All
// fields are diagnostics outside the bit-identity guarantees every
// other Metrics field carries: the memo and op-cache hit/miss splits
// depend on process history and fan-out timing (an earlier run or a
// concurrently advancing node may have published an entry first).
// SimResets is deterministic for a given run and mode (one rewind per
// executed step after the first).
type StepCacheStats struct {
	// MemoHits counts steps replayed from the signature memo;
	// MemoMisses counts steps that were composed and simulated.
	MemoHits, MemoMisses int64
	// OpCacheHits/OpCacheMisses count per-stream operator-trace reuses
	// vs generations during composition (arena reuse).
	OpCacheHits, OpCacheMisses int64
	// SimResets counts sim.Engine.Reset rewinds of the persistent
	// simulator (its construction is counted once, not here).
	SimResets int64
}

// Add accumulates other into s — the cluster layer's fleet rollup.
func (s *StepCacheStats) Add(other StepCacheStats) {
	s.MemoHits += other.MemoHits
	s.MemoMisses += other.MemoMisses
	s.OpCacheHits += other.OpCacheHits
	s.OpCacheMisses += other.OpCacheMisses
	s.SimResets += other.SimResets
}

// stepResult is one memoized token-step outcome.
type stepResult struct {
	cycles   int64
	counters stats.Counters
}

// StepMemo is a concurrency-safe memo of token-step outcomes keyed by
// canonical step signature. Values are pure functions of their keys,
// so sharing one memo across engines, cluster nodes, experiment-grid
// cells — or the whole process — never changes a simulated number,
// only how often it is recomputed.
type StepMemo struct {
	mu     sync.RWMutex
	m      map[string]stepResult
	hits   atomic.Int64
	misses atomic.Int64
}

// NewStepMemo returns an empty memo.
func NewStepMemo() *StepMemo {
	return &StepMemo{m: make(map[string]stepResult)}
}

// sharedMemo is the process-wide default memo (see SharedStepMemo).
var sharedMemo = NewStepMemo()

// SharedStepMemo returns the process-wide memo every engine uses by
// default (RunOptions.Memo overrides it, StepCacheOff bypasses it).
// Entries are small — a cycle count plus one stats.Counters block —
// and keyed by the full hardware configuration, so distinct configs
// never collide; the memo grows with the number of distinct step
// states simulated in the process (FlushSharedCaches releases it).
func SharedStepMemo() *StepMemo { return sharedMemo }

// FlushSharedCaches drops every entry of the process-wide step memo
// and operator-trace cache, releasing their memory. Both caches grow
// with the number of distinct step states and per-stream operator
// traces simulated in the process; a long-lived embedding that cycles
// through many unrelated scenarios calls this between phases. Safe
// concurrently with running engines: traces already handed out remain
// valid, and subsequent steps simply regenerate what they need.
func FlushSharedCaches() {
	sharedMemo.mu.Lock()
	sharedMemo.m = make(map[string]stepResult)
	sharedMemo.mu.Unlock()
	opCache.mu.Lock()
	opCache.m = make(map[opKey][]*memtrace.ThreadBlock)
	opCache.mu.Unlock()
}

// Hits returns how many lookups found a memoized step.
func (m *StepMemo) Hits() int64 { return m.hits.Load() }

// Misses returns how many lookups missed.
func (m *StepMemo) Misses() int64 { return m.misses.Load() }

// Len returns the number of memoized steps.
func (m *StepMemo) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.m)
}

func (m *StepMemo) lookup(key string) (stepResult, bool) {
	m.mu.RLock()
	r, ok := m.m[key]
	m.mu.RUnlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return r, ok
}

func (m *StepMemo) store(key string, r stepResult) {
	m.mu.Lock()
	m.m[key] = r
	m.mu.Unlock()
}

// prefixIDs interns rendered config signatures: every distinct
// configuration string maps to a short stable id that step keys embed
// instead of the full multi-hundred-byte rendering, so the memo's
// keys stay small and the hit-path key build copies a handful of
// bytes. Interning is injective by construction (one id per distinct
// string), so key collisions remain impossible.
var prefixIDs = struct {
	mu   sync.Mutex
	m    map[string]string
	next uint64
}{m: make(map[string]string)}

func internPrefix(rendered string) string {
	prefixIDs.mu.Lock()
	defer prefixIDs.mu.Unlock()
	if id, ok := prefixIDs.m[rendered]; ok {
		return id
	}
	id := "c" + strconv.FormatUint(prefixIDs.next, 36)
	prefixIDs.next++
	prefixIDs.m[rendered] = id
	return id
}

// configSignature renders every simulation-relevant knob of a serving
// engine into the signature prefix: the full sim.Config (with the
// optional controller parameter blocks dereferenced — pointer
// addresses must never enter a key), AV inclusion and the per-slot
// address stride. Two engines with equal prefixes run bit-identical
// hardware on bit-identical address layouts.
func configSignature(cfg sim.Config, includeAV bool, stride uint64) string {
	var dynmg, dyncta string
	if cfg.DynMG != nil {
		dynmg = fmt.Sprintf("%+v", *cfg.DynMG)
	}
	if cfg.DYNCTA != nil {
		dyncta = fmt.Sprintf("%+v", *cfg.DYNCTA)
	}
	cfg.DynMG, cfg.DYNCTA = nil, nil
	return fmt.Sprintf("cfg{%+v}/dynmg{%s}/dyncta{%s}/av=%t/stride=%d",
		cfg, dynmg, dyncta, includeAV, stride)
}

// appendStepSignature appends the canonical running-set signature to
// buf: the prefix followed by the (slot, model, kvLen, base) tuples in
// ascending slot order, each prefill pass additionally carrying a
// "p<chunk>" phase component. Decode-only running sets render exactly
// the pre-prefill byte sequence, so the step memo keys of decode-only
// scenarios are unchanged across the prefill subsystem's introduction.
// The input order of streams is irrelevant — scratch receives a sorted
// copy — so any presentation of the same running set produces the same
// key. Returns the grown buffers for reuse.
func appendStepSignature(buf []byte, prefix string, streams []StreamState, scratch []StreamState) ([]byte, []StreamState) {
	scratch = append(scratch[:0], streams...)
	sort.Slice(scratch, func(a, b int) bool { return scratch[a].Slot < scratch[b].Slot })
	buf = append(buf[:0], prefix...)
	for _, st := range scratch {
		buf = append(buf, '|')
		if st.ChunkLen > 0 {
			buf = append(buf, 'p')
			buf = strconv.AppendInt(buf, int64(st.ChunkLen), 10)
			buf = append(buf, '~')
		}
		buf = strconv.AppendInt(buf, int64(st.Slot), 10)
		buf = append(buf, ':')
		buf = append(buf, st.Model.Name...)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(st.Model.H), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(st.Model.G), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(st.Model.D), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(st.Model.ElemBytes), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(st.Model.OutBytes), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(st.KVLen), 10)
		buf = append(buf, '@')
		buf = strconv.AppendUint(buf, st.Base, 10)
	}
	return buf, scratch
}

// StepSignature returns the canonical signature of a running set under
// a config prefix — exported so tests can assert the canonicalization
// properties (slot-order invariance; sensitivity to kvLen, model,
// base and prefix) directly.
func StepSignature(prefix string, streams []StreamState) string {
	buf, _ := appendStepSignature(nil, prefix, streams, nil)
	return string(buf)
}

// opKey identifies one stream's per-step operator trace: everything
// trace generation depends on. chunk == 0 is a decode step; chunk > 0
// is a prefill pass of that many prompt tokens (the phase component of
// the cache key).
type opKey struct {
	model     workload.ModelConfig
	kvLen     int
	chunk     int
	slot      int
	base      uint64
	av        bool
	lineBytes int
}

// opCache is the process-wide per-stream operator-trace cache. Cached
// block slices are immutable masters: Meta.Stream is stamped (it is
// part of the key via slot) but IDs are left zero — the composition
// arena copies the headers and stamps step-local IDs.
var opCache = struct {
	mu sync.RWMutex
	m  map[opKey][]*memtrace.ThreadBlock
}{m: make(map[opKey][]*memtrace.ThreadBlock)}

// opBlocks returns the cached per-token thread blocks for one stream,
// generating and publishing them on first use.
func (e *Engine) opBlocks(st StreamState) ([]*memtrace.ThreadBlock, error) {
	key := opKey{
		model: st.Model, kvLen: st.KVLen, chunk: st.ChunkLen, slot: st.Slot,
		base: st.Base, av: e.includeAV, lineBytes: e.cfg.LineBytes,
	}
	opCache.mu.RLock()
	blocks, ok := opCache.m[key]
	opCache.mu.RUnlock()
	if ok {
		e.cacheStats.OpCacheHits++
		return blocks, nil
	}
	e.cacheStats.OpCacheMisses++
	blocks, _, err := streamBlocks(st, e.includeAV, e.cfg.LineBytes)
	if err != nil {
		return nil, err
	}
	opCache.mu.Lock()
	if cached, dup := opCache.m[key]; dup {
		blocks = cached // a concurrent generator won; share its masters
	} else {
		opCache.m[key] = blocks
	}
	opCache.mu.Unlock()
	return blocks, nil
}

// composeStepFast builds the step trace into the engine's reusable
// arena: per-stream cached blocks are header-copied into the block
// arena (instruction slices shared), interleaved round-robin exactly
// like ComposeStep, and stamped with step-local IDs. The returned
// trace aliases engine-owned storage valid until the next composition.
func (e *Engine) composeStepFast() (*memtrace.Trace, int, error) {
	groupSize := 0
	e.perStream = e.perStream[:0]
	total := 0
	for _, st := range e.running {
		if st.Model.G > groupSize {
			groupSize = st.Model.G
		}
		blocks, err := e.opBlocks(st)
		if err != nil {
			return nil, 0, err
		}
		e.perStream = append(e.perStream, blocks)
		total += len(blocks)
	}
	if cap(e.blockArena) < total {
		e.blockArena = make([]memtrace.ThreadBlock, 0, total)
	}
	arena := e.blockArena[:0] // capacity ensured: pointers below stay stable
	out := &e.stepTrace
	out.Name = "serve/step"
	if cap(out.Blocks) < total {
		out.Blocks = make([]*memtrace.ThreadBlock, 0, total)
	}
	out.Blocks = out.Blocks[:0]
	for j := 0; ; j++ {
		appended := false
		for i := range e.perStream {
			if j < len(e.perStream[i]) {
				arena = append(arena, *e.perStream[i][j])
				tb := &arena[len(arena)-1]
				tb.ID = len(out.Blocks)
				out.Blocks = append(out.Blocks, tb)
				appended = true
			}
		}
		if !appended {
			break
		}
	}
	e.blockArena = arena
	return out, groupSize, nil
}
