// Direct unit tests of the splitmix64 scenario generator: golden
// seed stability (the raw stream against the published splitmix64
// reference vectors, and a full generated population), arrival
// monotonicity at scale, and model-mix proportions over a large
// sample. The integration-level determinism tests in serving_test.go
// check same-in/same-out; these pin the actual values, so a silent
// algorithm change cannot slip through as "still deterministic".

package serving

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// TestRandGolden pins the raw splitmix64 stream to the published
// reference outputs for seed 1 — the generator's contract is the
// algorithm itself, not any Go library behaviour.
func TestRandGolden(t *testing.T) {
	r := Rand{State: 1}
	want := []uint64{
		0x910a2dec89025cc1,
		0xbeeb8da1658eec67,
		0xf893a2eefb32555e,
		0x71c18690ee42c90b,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d: got %#016x, want %#016x", i, got, w)
		}
	}
}

// TestScenarioGolden pins a full generated population: every field of
// every request for a fixed config. Any change to the draw order,
// the distribution transforms or the splitmix64 core breaks this.
func TestScenarioGolden(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{
		Seed: 42, NumRequests: 4,
		Models:       []workload.ModelConfig{workload.Llama3_70B, workload.Llama3_405B},
		MinPromptLen: 16, MaxPromptLen: 4096,
		MinDecode: 1, MaxDecode: 64,
		MeanInterArrival: 10000, MaxBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		model   string
		prompt  int
		decode  int
		arrival int64
	}{
		{"llama3-405b", 513, 21, 2989},
		{"llama3-70b", 1838, 37, 35683},
		{"llama3-70b", 1701, 63, 46473},
		{"llama3-405b", 3964, 51, 53140},
	}
	if len(scn.Requests) != len(want) {
		t.Fatalf("generated %d requests, want %d", len(scn.Requests), len(want))
	}
	for i, w := range want {
		q := scn.Requests[i]
		if q.ID != i || q.Model.Name != w.model || q.PromptLen != w.prompt ||
			q.DecodeTokens != w.decode || q.ArrivalCycle != w.arrival {
			t.Fatalf("request %d = {ID:%d %s prompt:%d decode:%d arrival:%d}, want {ID:%d %s prompt:%d decode:%d arrival:%d}",
				i, q.ID, q.Model.Name, q.PromptLen, q.DecodeTokens, q.ArrivalCycle,
				i, w.model, w.prompt, w.decode, w.arrival)
		}
	}
}

// TestArrivalMonotonicity: the open-loop arrival process is
// nondecreasing and non-negative over a large population, for both
// Poisson and closed-batch (rate 0) configurations.
func TestArrivalMonotonicity(t *testing.T) {
	for _, rate := range []float64{0, 7500} {
		scn, err := NewScenario(ScenarioConfig{
			Seed: 9, NumRequests: 10000,
			MinPromptLen: 16, MaxPromptLen: 64,
			MinDecode: 1, MaxDecode: 4,
			MeanInterArrival: rate, MaxBatch: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		var prev int64
		for i, q := range scn.Requests {
			if q.ArrivalCycle < 0 {
				t.Fatalf("rate %v: request %d arrives at negative cycle %d", rate, i, q.ArrivalCycle)
			}
			if q.ArrivalCycle < prev {
				t.Fatalf("rate %v: arrivals not monotone at %d: %d after %d", rate, i, q.ArrivalCycle, prev)
			}
			prev = q.ArrivalCycle
			if rate == 0 && q.ArrivalCycle != 0 {
				t.Fatalf("closed batch: request %d arrives at %d, want 0", i, q.ArrivalCycle)
			}
		}
		if rate > 0 {
			// The mean inter-arrival gap should track the configured rate
			// (exponential with mean `rate`; 10k samples keep the sample
			// mean within a few percent).
			mean := float64(prev) / float64(len(scn.Requests)-1)
			if mean < 0.9*rate || mean > 1.1*rate {
				t.Fatalf("mean inter-arrival gap %.0f not within 10%% of configured %v", mean, rate)
			}
		}
	}
}

// TestModelMixProportions: a uniform two-model mix lands near 50/50
// over a large sample, and decode/prompt draws stay inside their
// configured inclusive ranges with both endpoints hit.
func TestModelMixProportions(t *testing.T) {
	const n = 10000
	scn, err := NewScenario(ScenarioConfig{
		Seed: 123, NumRequests: n,
		Models:       []workload.ModelConfig{workload.Llama3_70B, workload.Llama3_405B},
		MinPromptLen: 16, MaxPromptLen: 32,
		MinDecode: 2, MaxDecode: 5,
		MeanInterArrival: 1000, MaxBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	count70 := 0
	minP, maxP := math.MaxInt, 0
	minD, maxD := math.MaxInt, 0
	for _, q := range scn.Requests {
		if q.Model.Name == workload.Llama3_70B.Name {
			count70++
		}
		if q.PromptLen < minP {
			minP = q.PromptLen
		}
		if q.PromptLen > maxP {
			maxP = q.PromptLen
		}
		if q.DecodeTokens < minD {
			minD = q.DecodeTokens
		}
		if q.DecodeTokens > maxD {
			maxD = q.DecodeTokens
		}
	}
	frac := float64(count70) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("70B fraction %.3f outside [0.45, 0.55] over %d draws", frac, n)
	}
	if minP != 16 || maxP != 32 {
		t.Fatalf("prompt range [%d, %d] observed, want the inclusive [16, 32]", minP, maxP)
	}
	if minD != 2 || maxD != 5 {
		t.Fatalf("decode range [%d, %d] observed, want the inclusive [2, 5]", minD, maxD)
	}
}

// TestExpFloat64Mean: the exponential transform keeps mean 1 — the
// property the Poisson arrival process is built on.
func TestExpFloat64Mean(t *testing.T) {
	r := Rand{State: 77}
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("draw %d: ExpFloat64 = %v", i, x)
		}
		sum += x
	}
	if mean := sum / n; mean < 0.98 || mean > 1.02 {
		t.Fatalf("ExpFloat64 mean %.4f not within 2%% of 1", mean)
	}
}
