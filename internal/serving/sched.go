// The batch scheduler: how a continuous-batching engine co-schedules
// the compute-bound prefill phase with the memory-bound decode phase,
// and how KV-cache capacity constrains admission.
//
// Three pluggable policies:
//
//   - SchedDecodeOnly (the zero value, today's behaviour): the prompt
//     is assumed prefilled elsewhere; admitted requests decode
//     immediately from a PromptLen-token KV cache. Bit-identical to
//     the pre-prefill engine.
//   - SchedPrefillFirst: an admitted request first runs its whole
//     prompt as one monolithic prefill pass; while ANY stream still
//     owes prefill, steps are prefill-only (one stream per step,
//     oldest first) and running decodes stall — the vLLM-default
//     "prefill prioritised" schedule that minimises a single request's
//     prefill latency at the cost of decode interference.
//   - SchedChunked: the prompt is split into fixed ChunkTokens-token
//     chunks; each step co-schedules every running decode stream's
//     token with at most one prefill chunk (oldest prefilling stream
//     first), Sarathi-Serve-style, so prefill work rides along with
//     decode steps instead of stalling them.
//
// KV-capacity admission is orthogonal to the policy: when KVCapTokens
// is set, a queued request is admitted only while the node's reserved
// KV tokens (Σ PromptLen+DecodeTokens of live streams) plus its own
// maximum footprint fit the capacity. Admission stays strict FCFS —
// the head of the queue blocks until it fits, so ordering never
// depends on request sizes.

package serving

import "fmt"

// SchedPolicy selects the prefill/decode co-scheduling policy.
type SchedPolicy uint8

// The scheduler policies. The zero value is decode-only — the
// pre-prefill engine behaviour.
const (
	SchedDecodeOnly SchedPolicy = iota
	SchedPrefillFirst
	SchedChunked
)

// String returns the canonical policy name ParseSchedPolicy accepts.
func (p SchedPolicy) String() string {
	switch p {
	case SchedDecodeOnly:
		return "decode-only"
	case SchedPrefillFirst:
		return "prefill-first"
	case SchedChunked:
		return "chunked"
	}
	return fmt.Sprintf("SchedPolicy(%d)", uint8(p))
}

// ParseSchedPolicy reads a -sched flag value: "decode-only" (or ""),
// "prefill-first" or "chunked".
func ParseSchedPolicy(s string) (SchedPolicy, error) {
	switch s {
	case "decode-only", "":
		return SchedDecodeOnly, nil
	case "prefill-first":
		return SchedPrefillFirst, nil
	case "chunked":
		return SchedChunked, nil
	}
	return 0, fmt.Errorf("serving: unknown scheduler policy %q (want decode-only, prefill-first or chunked)", s)
}

// PreemptPolicy selects the victim-ordering rule of
// recompute-on-preempt eviction. The zero value disables preemption —
// KV-blocked admission stays strict head-of-line blocking, the
// pre-overload behaviour.
type PreemptPolicy uint8

// The preemption policies.
const (
	// PreemptOff (the zero value): an admitted stream is never evicted.
	PreemptOff PreemptPolicy = iota
	// PreemptNewest evicts the most recently admitted stream first
	// (ties to the highest slot) — the vLLM-style LIFO recompute rule
	// that protects the progress of old streams.
	PreemptNewest
	// PreemptFewestTokens evicts the stream with the fewest generated
	// tokens first (ties to the newest admission, then the highest
	// slot) — minimising the decode progress thrown away.
	PreemptFewestTokens
)

// String returns the canonical policy name ParsePreemptPolicy accepts.
func (p PreemptPolicy) String() string {
	switch p {
	case PreemptOff:
		return "off"
	case PreemptNewest:
		return "newest"
	case PreemptFewestTokens:
		return "fewest-tokens"
	}
	return fmt.Sprintf("PreemptPolicy(%d)", uint8(p))
}

// ParsePreemptPolicy reads a -preempt flag value: "off" (or ""),
// "newest" or "fewest-tokens".
func ParsePreemptPolicy(s string) (PreemptPolicy, error) {
	switch s {
	case "off", "":
		return PreemptOff, nil
	case "newest":
		return PreemptNewest, nil
	case "fewest-tokens":
		return PreemptFewestTokens, nil
	}
	return 0, fmt.Errorf("serving: unknown preemption policy %q (want off, newest or fewest-tokens)", s)
}

// SchedulerConfig is the batch-scheduling configuration of a scenario:
// the prefill/decode policy, the chunk size (chunked only), the
// KV-cache capacity and the preemption policy. The zero value is
// decode-only with unlimited KV and no preemption — exactly the
// pre-prefill engine.
type SchedulerConfig struct {
	Policy SchedPolicy
	// ChunkTokens is the fixed prefill chunk length in tokens (chunked
	// policy only; the other policies require it zero). Must be at
	// least 16, the KV mapping floor — the first chunk's pass attends
	// over exactly ChunkTokens keys.
	ChunkTokens int
	// KVCapTokens bounds the KV-cache tokens reservable by live
	// streams; 0 means unlimited. A request reserves its maximum
	// footprint (PromptLen + DecodeTokens) at admission and releases it
	// at retirement.
	KVCapTokens int64
	// Preempt enables recompute-on-preempt eviction: when KV pressure
	// blocks the admission head, victims selected by this policy drop
	// their reservation, requeue, and recompute their KV (prompt plus
	// already-generated tokens) as prefill on re-admission. Requires a
	// prefill scheduler (the recompute cost must be payable on-node)
	// and a finite KVCapTokens.
	Preempt PreemptPolicy
	// PrefixCacheTokens bounds the per-engine session prefix cache: KV
	// tokens retained from retired requests, LRU over sessions, that
	// let a follow-up request with a matching PrefixLen reserve only
	// its suffix at admission and skip the shared prefix in prefill.
	// 0 disables the cache entirely — the engine takes none of the
	// prefix-cache code paths and stays bit-identical to the
	// pre-prefix-cache engine. Requires a prefill scheduler (skipping
	// prefill chunks is meaningless when the node runs no prefill).
	PrefixCacheTokens int64
}

// Validate checks the scheduler configuration.
func (s SchedulerConfig) Validate() error {
	switch s.Policy {
	case SchedDecodeOnly, SchedPrefillFirst:
		if s.ChunkTokens != 0 {
			return fmt.Errorf("serving: ChunkTokens %d set but scheduler is %v (chunked only)", s.ChunkTokens, s.Policy)
		}
	case SchedChunked:
		if s.ChunkTokens < minKVLen {
			return fmt.Errorf("serving: chunked scheduler needs ChunkTokens >= %d (the KV mapping floor), got %d",
				minKVLen, s.ChunkTokens)
		}
	default:
		return fmt.Errorf("serving: unknown scheduler policy %v", s.Policy)
	}
	if s.KVCapTokens < 0 {
		return fmt.Errorf("serving: KVCapTokens must be non-negative, got %d", s.KVCapTokens)
	}
	switch s.Preempt {
	case PreemptOff:
	case PreemptNewest, PreemptFewestTokens:
		if s.Policy == SchedDecodeOnly {
			return fmt.Errorf("serving: preemption policy %v needs a prefill scheduler (recompute-on-preempt re-prefills the victim on-node), got %v",
				s.Preempt, s.Policy)
		}
		if s.KVCapTokens == 0 {
			return fmt.Errorf("serving: preemption policy %v needs a finite KVCapTokens (eviction only fires under KV pressure)", s.Preempt)
		}
	default:
		return fmt.Errorf("serving: unknown preemption policy %v", s.Preempt)
	}
	if s.PrefixCacheTokens < 0 {
		return fmt.Errorf("serving: PrefixCacheTokens must be non-negative, got %d", s.PrefixCacheTokens)
	}
	if s.PrefixCacheTokens > 0 && s.Policy == SchedDecodeOnly {
		return fmt.Errorf("serving: PrefixCacheTokens %d needs a prefill scheduler (a prefix hit skips prefill chunks the node would otherwise run), got %v",
			s.PrefixCacheTokens, s.Policy)
	}
	return nil
}

// kvReserve returns the KV tokens a request reserves for its lifetime:
// the maximum cache length it reaches.
func kvReserve(r Request) int64 {
	return int64(r.PromptLen) + int64(r.DecodeTokens)
}

// CheckAdmissible reports whether a request can EVER be admitted under
// the configuration: its maximum KV footprint must fit the capacity
// outright, or the FCFS queue would deadlock behind it. Scenario
// validation (serving and cluster) rejects such populations up front.
func (s SchedulerConfig) CheckAdmissible(r Request) error {
	if s.KVCapTokens > 0 && kvReserve(r) > s.KVCapTokens {
		return fmt.Errorf("serving: request %d needs %d KV tokens, above the %d-token capacity — it can never be admitted",
			r.ID, kvReserve(r), s.KVCapTokens)
	}
	return nil
}

// prefillTarget returns how many prompt tokens one prefill pass of a
// stream advances: the whole remaining prompt under prefill-first, one
// chunk under chunked.
func (s SchedulerConfig) prefillTarget(prefillLeft int) int {
	if s.Policy == SchedChunked && s.ChunkTokens < prefillLeft {
		return s.ChunkTokens
	}
	return prefillLeft
}
