package serving

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// preemptSched is the stock preemption-capable scheduler the full-run
// tests use: chunked prefill (preemption needs an on-node prefill
// path to recompute evicted KV) under a finite capacity.
func preemptSched(kvcap int64, pol PreemptPolicy) SchedulerConfig {
	return SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16, KVCapTokens: kvcap, Preempt: pol}
}

// TestPreemptValidation: preemption requires a prefill scheduler and
// a finite KV capacity, and the policy names round-trip.
func TestPreemptValidation(t *testing.T) {
	bad := []SchedulerConfig{
		{Policy: SchedDecodeOnly, KVCapTokens: 64, Preempt: PreemptNewest},
		{Preempt: PreemptNewest}, // zero value is decode-only
		{Policy: SchedChunked, ChunkTokens: 16, Preempt: PreemptNewest},          // no capacity
		{Policy: SchedPrefillFirst, KVCapTokens: 64, Preempt: PreemptPolicy(99)}, // unknown policy
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("config %+v accepted, want error", s)
		}
	}
	good := []SchedulerConfig{
		{Policy: SchedChunked, ChunkTokens: 16, KVCapTokens: 64, Preempt: PreemptNewest},
		{Policy: SchedPrefillFirst, KVCapTokens: 64, Preempt: PreemptFewestTokens},
		{Policy: SchedPrefillFirst, KVCapTokens: 64}, // off stays legal anywhere
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", s, err)
		}
	}
	for _, name := range []string{"off", "newest", "fewest-tokens"} {
		pol, err := ParsePreemptPolicy(name)
		if err != nil {
			t.Errorf("canonical name %q did not parse: %v", name, err)
		}
		if pol.String() != name {
			t.Errorf("%q parsed to %v", name, pol)
		}
	}
	if _, err := ParsePreemptPolicy("bogus"); err == nil {
		t.Error("bogus preempt policy parsed")
	}
}

// preemptReq builds the fixed-footprint request the boundary tests
// use: 16-token prompt, 4-token decode budget, 20-token lifetime KV
// reservation.
func preemptReq(id int, arrival int64) Request {
	return Request{ID: id, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 4, ArrivalCycle: arrival}
}

// TestPreemptExactExhaustionBoundary pins the capacity boundary with
// preemption armed: a capacity that exactly fits every request admits
// them all with zero evictions, while one reservation less forces
// exactly one eviction — and the evicted request still generates its
// full decode budget exactly once (recompute-on-preempt never
// double-counts tokens).
func TestPreemptExactExhaustionBoundary(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	run := func(kvcap int64) *Metrics {
		scn := Scenario{
			Name: "preempt-boundary",
			Requests: []Request{
				preemptReq(0, 0), preemptReq(1, 0), preemptReq(2, 60000),
			},
			MaxBatch: 3,
			Sched:    preemptSched(kvcap, PreemptNewest),
		}
		m, err := Run(cfg, scn)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// 3 × (16 + 4) = 60: exactly exhausted, nobody evicted.
	exact := run(60)
	if exact.Preemptions != 0 {
		t.Fatalf("kvcap=60: %d preemptions, want 0 (capacity exactly fits)", exact.Preemptions)
	}
	for _, rs := range exact.PerRequest {
		if rs.Preemptions != 0 || rs.Tokens != 4 {
			t.Errorf("kvcap=60: request %d preemptions=%d tokens=%d, want 0/4", rs.ID, rs.Preemptions, rs.Tokens)
		}
	}

	// One reservation less: request 2 arrives against a full capacity
	// and a free slot, so it evicts exactly one victim — the newest
	// admission, ties broken to the highest slot, which is request 1.
	short := run(40)
	if short.Preemptions != 1 {
		t.Fatalf("kvcap=40: %d preemptions, want exactly 1", short.Preemptions)
	}
	r0, r1, r2 := short.PerRequest[0], short.PerRequest[1], short.PerRequest[2]
	if r0.Preemptions != 0 || r2.Preemptions != 0 {
		t.Errorf("kvcap=40: wrong victims: r0=%d r2=%d preemptions", r0.Preemptions, r2.Preemptions)
	}
	if r1.Preemptions != 1 {
		t.Errorf("kvcap=40: request 1 preemptions=%d, want 1 (newest admission, highest slot)", r1.Preemptions)
	}
	// Every request retires with its exact decode budget — eviction
	// re-prefills the victim's generated prefix instead of re-decoding.
	for _, rs := range short.PerRequest {
		if rs.Tokens != 4 || rs.FinishCycle == 0 {
			t.Errorf("kvcap=40: request %d tokens=%d finish=%d, want 4/finished", rs.ID, rs.Tokens, rs.FinishCycle)
		}
	}
	if short.Tokens != 12 {
		t.Errorf("kvcap=40: fleet decoded %d tokens, want 12", short.Tokens)
	}
	// The victim's recompute shows up as extra prefill work: its prompt
	// is prefilled twice plus once per decode token it had generated —
	// deterministically one token here (evicted right after its first
	// decode step).
	if res := short.PrefillTokens - 4*16; res != 1 {
		t.Errorf("kvcap=40: resumed-token prefix %d, want 1", res)
	}
	// Determinism: the same overloaded run replays bit-identically.
	again := run(40)
	short.StripStepCache()
	again.StripStepCache()
	if !reflect.DeepEqual(short, again) {
		t.Error("kvcap=40: repeated preemption runs disagree")
	}
}

// TestPreemptVictimOrdering white-box tests tryPreempt's victim
// selection: the two policies pick different victims on a
// token-inverted running set, and full ties collapse to the highest
// slot under both — the deterministic tie-break.
func TestPreemptVictimOrdering(t *testing.T) {
	mk := func(id, slot, tokens int, admit int64) *stream {
		req := Request{ID: id, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 8}
		return &stream{
			req:      req,
			slot:     slot,
			tokens:   tokens,
			admit:    admit,
			reserved: kvReserve(req),
		}
	}
	build := func(pol PreemptPolicy, victims ...*stream) *Engine {
		e := &Engine{
			sched:   SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16, KVCapTokens: 72, Preempt: pol},
			slots:   make([]*stream, 4),
			statIdx: map[int]int{99: 0},
			stats:   []RequestStats{{ID: 99}},
		}
		for _, v := range victims {
			e.slots[v.slot] = v
			e.kvUsed += kvReserve(v.req)
		}
		return e
	}
	head := Request{ID: 99, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 8}
	need := kvReserve(head) // 24; kvUsed 72 → exactly one 24-token victim frees enough

	// Token-inverted set: the newest admission (id 3) has MORE decode
	// progress than the oldest-but-one (id 2) — a resumed stream after
	// an earlier eviction looks like this.
	inverted := func() []*stream {
		return []*stream{mk(1, 0, 5, 10), mk(2, 1, 1, 20), mk(3, 2, 3, 30)}
	}
	e := build(PreemptNewest, inverted()...)
	if !e.tryPreempt(head, need) {
		t.Fatal("newest: eviction refused")
	}
	if e.slots[2] != nil || e.resume[3] != 3 {
		t.Fatalf("newest: want victim id 3 (latest admit) with 3 resumed tokens, got resume=%v", e.resume)
	}
	e = build(PreemptFewestTokens, inverted()...)
	if !e.tryPreempt(head, need) {
		t.Fatal("fewest-tokens: eviction refused")
	}
	if e.slots[1] != nil || e.resume[2] != 1 {
		t.Fatalf("fewest-tokens: want victim id 2 (fewest tokens) with 1 resumed token, got resume=%v", e.resume)
	}

	// Full tie (same admit, same tokens): both policies fall through to
	// the highest slot.
	tied := func() []*stream {
		return []*stream{mk(1, 0, 2, 10), mk(2, 1, 2, 10), mk(3, 2, 2, 10)}
	}
	for _, pol := range []PreemptPolicy{PreemptNewest, PreemptFewestTokens} {
		e = build(pol, tied()...)
		if !e.tryPreempt(head, need) {
			t.Fatalf("%v tie: eviction refused", pol)
		}
		if e.slots[2] != nil || e.resume[3] != 2 {
			t.Fatalf("%v tie: want the highest slot's id 3 evicted, got resume=%v", pol, e.resume)
		}
	}

	// Anti-livelock guard: a head that has itself been preempted must
	// wait out head-of-line blocking, never evict again.
	e = build(PreemptNewest, inverted()...)
	e.stats[0].Preemptions = 1
	if e.tryPreempt(head, need) {
		t.Fatal("preempted head allowed to evict — livelock guard broken")
	}

	// All-or-nothing: when even evicting everything cannot fit the
	// head, nothing is evicted.
	big := Request{ID: 99, Model: workload.Llama3_70B, PromptLen: 64, DecodeTokens: 16}
	e = build(PreemptNewest, inverted()...)
	if e.tryPreempt(big, kvReserve(big)) { // need 80 > cap 72 even empty
		t.Fatal("unsatisfiable head evicted victims anyway")
	}
	if e.slots[0] == nil || e.slots[1] == nil || e.slots[2] == nil || len(e.resume) != 0 {
		t.Fatal("all-or-nothing violated: victims evicted for an unsatisfiable head")
	}
}

// TestPreemptTTFTFromOriginalArrival: a stream evicted while still
// prefilling re-admits later, and its TTFT is charged from the
// ORIGINAL arrival — the preemption stall is inside the deadline, not
// excused from it. AdmitCycle and QueueDelay keep their
// first-admission values.
func TestPreemptTTFTFromOriginalArrival(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	scn := Scenario{
		Name: "preempt-ttft",
		Requests: []Request{
			{ID: 0, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 4, ArrivalCycle: 0},
			{ID: 1, Model: workload.Llama3_70B, PromptLen: 48, DecodeTokens: 4, ArrivalCycle: 0},
			{ID: 2, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 4, ArrivalCycle: 60000},
		},
		MaxBatch: 3,
		// 20 + 52 = 72 fits; +20 for request 2 does not → one eviction,
		// landing while request 1 (long prompt, chunked behind request
		// 0's prefill) is still mid-prefill.
		Sched: preemptSched(80, PreemptNewest),
	}
	m, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	if m.Preemptions != 1 {
		t.Fatalf("%d preemptions, want 1", m.Preemptions)
	}
	r1 := m.PerRequest[1]
	if r1.Preemptions != 1 {
		t.Fatalf("request 1 preemptions=%d, want 1 (newest admission evicted)", r1.Preemptions)
	}
	// Evicted mid-prefill: first token only after the recompute, yet
	// the TTFT clock never reset.
	if r1.TTFT != r1.FirstTokenCycle-r1.ArrivalCycle || r1.ArrivalCycle != 0 {
		t.Errorf("request 1 TTFT %d not measured from original arrival (first=%d arrival=%d)",
			r1.TTFT, r1.FirstTokenCycle, r1.ArrivalCycle)
	}
	if r1.AdmitCycle != 0 || r1.QueueDelay != 0 {
		t.Errorf("request 1 admit=%d queue=%d, want the first admission's 0/0", r1.AdmitCycle, r1.QueueDelay)
	}
	// The recompute pushed its first token past the survivor's.
	if r1.FirstTokenCycle <= m.PerRequest[0].FirstTokenCycle {
		t.Errorf("evicted request's first token %d not after survivor's %d",
			r1.FirstTokenCycle, m.PerRequest[0].FirstTokenCycle)
	}
	if r1.Tokens != 4 {
		t.Errorf("request 1 decoded %d tokens, want its full budget 4", r1.Tokens)
	}
	// More prefill work than prefilling each prompt once (16+48+16):
	// the victim's partial chunks were recomputed from scratch.
	if m.PrefillTokens <= 80 {
		t.Errorf("prefill tokens %d, want > 80 (request 1's prefix recomputed)", m.PrefillTokens)
	}
}

// overloadedScenario is the committed overload acceptance scenario: a
// bursty population against a KV capacity sized well below the burst's
// working set, so admission blocks at the queue head for most of the
// run.
func overloadedScenario(t *testing.T, pol PreemptPolicy) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		Name: "overload/burst", Seed: 7, NumRequests: 12,
		MinPromptLen: 16, MaxPromptLen: 64,
		MinDecode: 2, MaxDecode: 6,
		MeanInterArrival: 20000, MaxBatch: 4,
		Arrival: ArrivalConfig{Kind: ArrivalBurst, Period: 60000, Duty: 0.4, Factor: 8},
		Sched:   preemptSched(200, pol),
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestPreemptBeatsHOLOnGoodput is the serving-side overload acceptance
// criterion: on the committed bursty, KV-starved scenario,
// recompute-on-preempt strictly beats head-of-line blocking on
// goodput-under-SLO. Evicting running streams for the blocked head
// pulls most first tokens forward at the cost of the few victims'
// recompute stalls; at the committed deadline the winners clear it and
// the head-of-line run's do not — a strict win on requests inside SLO
// and on goodput.
func TestPreemptBeatsHOLOnGoodput(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	hol, err := Run(cfg, overloadedScenario(t, PreemptOff))
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Run(cfg, overloadedScenario(t, PreemptNewest))
	if err != nil {
		t.Fatal(err)
	}
	if pre.Preemptions == 0 {
		t.Fatal("overloaded scenario triggered no preemptions — not exercising the policy")
	}
	if hol.Preemptions != 0 {
		t.Fatalf("head-of-line run reports %d preemptions", hol.Preemptions)
	}
	// Both serve the identical population to completion.
	if hol.Tokens != pre.Tokens || hol.Requests != pre.Requests {
		t.Fatalf("populations diverge: HOL %d tokens/%d reqs, preempt %d/%d",
			hol.Tokens, hol.Requests, pre.Tokens, pre.Requests)
	}
	slo := SLO{TTFTCycles: preemptSLOTTFT}
	gHol, gPre := Goodput(hol, slo), Goodput(pre, slo)
	if gHol.Finished != hol.Requests || gPre.Finished != pre.Requests {
		t.Fatalf("unfinished requests: HOL %d, preempt %d", gHol.Unfinished, gPre.Unfinished)
	}
	// The strict inequality: preemption must recover goodput that
	// head-of-line blocking forfeits, on both counts.
	if !(gPre.MetSLO > gHol.MetSLO) {
		t.Errorf("preempt met-SLO %d not strictly above head-of-line %d", gPre.MetSLO, gHol.MetSLO)
	}
	if !(gPre.GoodputPerKCycle > gHol.GoodputPerKCycle) {
		t.Errorf("preempt goodput %v not strictly above head-of-line %v",
			gPre.GoodputPerKCycle, gHol.GoodputPerKCycle)
	}
	// And the deadline must actually bite under HOL — otherwise the
	// scenario is not overloaded.
	if gHol.TTFTViolations == 0 {
		t.Error("head-of-line run met every deadline — scenario not overloaded")
	}
}

// preemptSLOTTFT is the committed TTFT deadline of the acceptance
// scenario, in cycles: inside the window where preemption's pulled-in
// first tokens clear the deadline and head-of-line blocking's do not,
// with ~10k cycles of margin on both sides.
const preemptSLOTTFT = 535000
