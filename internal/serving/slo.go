// SLO accounting: goodput-under-SLO turns the engine's per-request
// outcomes into the serving-paper headline metric — only the tokens of
// requests that met their latency deadlines count. Under overload,
// raw throughput barely moves (the hardware stays busy) while goodput
// collapses; the overload-control policies (preemption, shedding,
// retry) are judged on how much goodput they preserve.
//
// Two deadlines, both optional:
//
//   - TTFT: the request's first token must complete within TTFTCycles
//     of its ORIGINAL arrival (re-admissions after preemption and
//     retries after shedding do not reset the clock).
//   - TBT: the request's mean time between tokens — the decode span
//     (FinishCycle − FirstTokenCycle) over the Tokens−1 gaps — must
//     not exceed TBTCycles. Preemption gaps land inside the decode
//     span, so an evicted request honestly pays its recompute stall
//     here.
//
// Goodput is pure post-processing over Metrics.PerRequest: it never
// touches the engine, so enabling SLO accounting cannot perturb the
// bit-identical simulation results.

package serving

import "fmt"

// SLO is a pair of per-request latency deadlines in cycles. A zero
// field disables that deadline; the zero value accepts every finished
// request.
type SLO struct {
	// TTFTCycles bounds time to first token (0 = no bound).
	TTFTCycles int64
	// TBTCycles bounds the mean time between tokens across the
	// request's decode span (0 = no bound).
	TBTCycles float64
}

// Validate checks the deadlines.
func (s SLO) Validate() error {
	if s.TTFTCycles < 0 {
		return fmt.Errorf("serving: SLO TTFTCycles must be non-negative, got %d", s.TTFTCycles)
	}
	if s.TBTCycles < 0 {
		return fmt.Errorf("serving: SLO TBTCycles must be non-negative, got %g", s.TBTCycles)
	}
	return nil
}

// Enabled reports whether any deadline is set.
func (s SLO) Enabled() bool { return s.TTFTCycles > 0 || s.TBTCycles > 0 }

// SLOReport is the goodput-under-SLO summary of one run.
type SLOReport struct {
	SLO SLO
	// Finished counts requests that retired (generated their full
	// decode budget); Unfinished counts the rest — still in flight at
	// measurement time, or dropped by cluster-level shedding.
	Finished   int
	Unfinished int
	// MetSLO counts finished requests inside every enabled deadline;
	// TTFTViolations/TBTViolations break the misses down (a request can
	// violate both).
	MetSLO         int
	TTFTViolations int
	TBTViolations  int
	// GoodTokens is the decode tokens of SLO-compliant requests;
	// GoodputPerKCycle is 1000 × GoodTokens / makespan — the
	// goodput-vs-load curve's y-axis.
	GoodTokens       int64
	GoodputPerKCycle float64
}

// meetsSLO classifies one finished request against the deadlines.
func (s SLO) meetsSLO(r RequestStats) (ttftOK, tbtOK bool) {
	ttftOK = s.TTFTCycles <= 0 || r.TTFT <= s.TTFTCycles
	tbtOK = true
	if s.TBTCycles > 0 && r.Tokens > 1 {
		tbt := float64(r.FinishCycle-r.FirstTokenCycle) / float64(r.Tokens-1)
		tbtOK = tbt <= s.TBTCycles
	}
	return ttftOK, tbtOK
}

// goodputOver folds a per-request slice into an SLOReport against the
// given makespan; the serving and cluster layers share it.
func (s SLO) goodputOver(reqs []RequestStats, makespan int64) SLOReport {
	rep := SLOReport{SLO: s}
	for _, r := range reqs {
		if r.FinishCycle == 0 {
			rep.Unfinished++
			continue
		}
		rep.Finished++
		ttftOK, tbtOK := s.meetsSLO(r)
		if !ttftOK {
			rep.TTFTViolations++
		}
		if !tbtOK {
			rep.TBTViolations++
		}
		if ttftOK && tbtOK {
			rep.MetSLO++
			rep.GoodTokens += int64(r.Tokens)
		}
	}
	if makespan > 0 {
		rep.GoodputPerKCycle = 1000 * float64(rep.GoodTokens) / float64(makespan)
	}
	return rep
}

// GoodputOver is the exported form of goodputOver for sibling layers
// (the cluster fleet report aggregates its own request slice).
func (s SLO) GoodputOver(reqs []RequestStats, makespan int64) SLOReport {
	return s.goodputOver(reqs, makespan)
}

// Goodput computes the goodput-under-SLO report of one serving run.
func Goodput(m *Metrics, slo SLO) SLOReport {
	return slo.goodputOver(m.PerRequest, m.Makespan)
}

// String renders the report as an aligned block.
func (r SLOReport) String() string {
	return fmt.Sprintf(
		"SLO               ttft<=%d tbt<=%.0f cycles\n"+
			"finished          %d (unfinished/dropped %d)\n"+
			"met SLO           %d (ttft misses %d, tbt misses %d)\n"+
			"goodput           %d tokens, %.4f tokens/kcycle\n",
		r.SLO.TTFTCycles, r.SLO.TBTCycles,
		r.Finished, r.Unfinished,
		r.MetSLO, r.TTFTViolations, r.TBTViolations,
		r.GoodTokens, r.GoodputPerKCycle)
}
