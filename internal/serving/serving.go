// Package serving is the serving-scenario engine: it models an
// inference server running many concurrent decode requests under a
// continuous-batching scheduler on the paper's simulated hardware —
// the production regime the single-operator figures of Section 6
// deliberately isolate away.
//
// A scenario is a population of decode requests (per-request model,
// prompt length, decode length, arrival cycle) plus a batch capacity.
// The engine advances the server one token step at a time: the
// per-token Logit (and optionally AV) operator traces of every
// running stream are composed into one interleaved multi-stream
// memory trace — each stream at its own address-space offset, so
// streams contend realistically in the LLC, MSHRs and DRAM — and the
// composed trace drives the cycle-level engine of internal/sim.
// Requests are admitted FCFS at step boundaries whenever a batch slot
// is free and retire when their decode budget is exhausted — the
// iteration-granularity admission of continuous batching.
//
// The engine reports serving-level metrics the paper's figures do
// not: aggregate decode throughput (tokens per kilocycle), per-token
// latency percentiles (p50/p95/p99), queueing delay, and batch
// occupancy, across the same throttle/arbiter policy matrix. Every
// run is deterministic: the arrival process is fixed-seed
// (splitmix64), the simulator is deterministic, and admission is
// FCFS, so the same (scenario, config) pair always yields the same
// Metrics.
package serving

import (
	"fmt"

	"repro/internal/hwprof"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// RequestStats is the per-request outcome of a serving run.
type RequestStats struct {
	ID           int
	Model        string
	ArrivalCycle int64
	AdmitCycle   int64
	FinishCycle  int64
	QueueDelay   int64 // AdmitCycle - ArrivalCycle
	// FirstTokenCycle is when the request's first decode token
	// completed; TTFT (time to first token) is FirstTokenCycle -
	// ArrivalCycle: queueing, any on-node prefill, and the first decode
	// step. Zero while the request has not produced a token.
	FirstTokenCycle int64
	TTFT            int64
	Tokens          int // tokens generated
	FinalKVLen      int // KV-cache length at retirement
	// Preemptions counts how many times the request's stream was
	// evicted under KV pressure (recompute-on-preempt). TTFT and
	// QueueDelay always measure from the ORIGINAL arrival and first
	// admission — re-admissions after preemption never reset them.
	Preemptions int
	// PrefixTokens is the prompt tokens this request skipped via
	// session prefix-cache hits, summed across admissions (a preempted
	// request re-validates its prefix on re-admission). Zero with the
	// cache off.
	PrefixTokens int
}

// Percentiles summarises a latency sample in cycles.
type Percentiles struct {
	P50, P95, P99 float64
	Mean          float64
	Max           float64
}

// Summarise reduces a latency sample (cycles) to its percentile
// summary; exported for the cluster layer's fleet-level latency
// aggregation.
func Summarise(xs []float64) Percentiles {
	if len(xs) == 0 {
		return Percentiles{}
	}
	ps := stats.PercentileSet(xs, 50, 95, 99, 100)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return Percentiles{
		P50:  ps[0],
		P95:  ps[1],
		P99:  ps[2],
		Max:  ps[3],
		Mean: sum / float64(len(xs)),
	}
}

// Metrics is the outcome of one serving run.
type Metrics struct {
	Requests int
	Tokens   int64
	Steps    int64 // continuous-batching iterations executed
	// PrefillTokens is the prompt tokens prefilled on-node (zero under
	// the decode-only scheduler); PrefillSteps counts the steps that
	// carried a prefill pass (a chunked step carrying both decode
	// tokens and a chunk counts once in Steps and once here).
	PrefillTokens int64
	PrefillSteps  int64
	// Preemptions is the total recompute-on-preempt eviction events
	// (zero unless SchedulerConfig.Preempt is set). Every eviction
	// later costs a re-prefill of the victim's whole KV prefix, which
	// shows up in PrefillTokens.
	Preemptions int64
	// PrefixHits / PrefixMisses count prefix-cache lookups at
	// admission: every admission of a request carrying PrefixLen > 0
	// (including re-admissions after preemption, which re-validate)
	// counts as a hit when a usable cached prefix was found, else a
	// miss. PrefillTokensSaved is the prompt tokens those hits skipped
	// — prefill work the engine never ran. PrefixHitRate is
	// hits / (hits + misses), 0 when the cache is off or no request
	// carried a prefix. All zero with PrefixCacheTokens == 0.
	PrefixHits         int64
	PrefixMisses       int64
	PrefillTokensSaved int64
	PrefixHitRate      float64
	// Cycles is the busy time: the sum of every step's simulated
	// cycles. Makespan additionally includes the idle gaps when the
	// server was empty and waiting for arrivals.
	Cycles   int64
	Makespan int64
	// TokensPerKCycle is the aggregate decode throughput:
	// 1000 × Tokens / Makespan.
	TokensPerKCycle float64
	// MeanBatchOccupancy is the mean number of streams per step —
	// Tokens / Steps, the continuous-batching utilisation.
	MeanBatchOccupancy float64
	// TokenLatency summarises per-token latency: every generated
	// token's latency is the simulated length of the step that
	// produced it (all streams of a step receive their token when the
	// iteration completes).
	TokenLatency Percentiles
	// QueueDelay summarises per-request admission delay in cycles.
	QueueDelay Percentiles
	// TTFT summarises per-request time to first token: arrival to the
	// completion of the step that produced the request's first decode
	// token — queueing plus on-node prefill plus the first decode step.
	TTFT Percentiles
	// Sim aggregates the cycle-level counters of every step and the
	// hardware metrics derived from them (hit rates, bandwidth, t_cs)
	// over the whole serving run.
	Counters stats.Counters
	Sim      stats.Metrics
	// StepCache reports what the token-step fast path did: memoized
	// replays vs executed steps, operator-trace reuse and simulator
	// rewinds. Diagnostics only — the memo counters depend on process
	// history and fan-out timing, so this block sits outside the
	// bit-identity guarantees every other field carries (determinism
	// tests compare metrics with StripStepCache applied).
	StepCache StepCacheStats
	// HW is the hardware-counter attribution profile — per-phase and
	// per-request cost, the classified utilization time-series and the
	// node's bottleneck class. Nil unless RunOptions.HWProf.Enabled,
	// and omitted from JSON then, so profiling is invisible in every
	// serialized artifact when off.
	HW *hwprof.NodeProfile `json:"HW,omitempty"`
	// PerRequest holds one entry per request, in request-ID order.
	PerRequest []RequestStats
}

// StripStepCache zeroes the step-cache diagnostics, leaving only the
// bit-identical simulated metrics — the form the determinism and
// equivalence tests compare.
func (m *Metrics) StripStepCache() { m.StepCache = StepCacheStats{} }

// RunOptions tunes the token-step fast path of a serving run. The
// zero value is the default: the full step cache (memo + arena +
// resettable simulator) on the process-wide shared memo.
type RunOptions struct {
	// StepCache selects the execution path; StepCacheOff is the naive
	// reference the equivalence tests compare against.
	StepCache StepCacheMode
	// Memo overrides the step memo (nil = SharedStepMemo()). Ignored
	// unless StepCache is StepCacheOn.
	Memo *StepMemo
	// Sched is the prefill/decode scheduler the engine runs (zero
	// value: decode-only, unlimited KV). The scenario's Sched field is
	// authoritative: RunWith rejects a non-zero Sched here that
	// disagrees with the scenario's. Set it directly only when
	// constructing an Engine via NewEngineWith (the cluster layer
	// does, copying its scenario's scheduler).
	Sched SchedulerConfig
	// Recorder receives the engine's lifecycle telemetry events (see
	// internal/telemetry). nil — the default — disables recording
	// entirely: every emission site is branch-guarded on it, so an
	// unrecorded run takes the exact pre-telemetry paths and produces
	// bit-identical Metrics. The engine calls the recorder only from
	// the goroutine advancing it.
	Recorder telemetry.Recorder
	// SampleEvery emits a gauge sample (outstanding tokens, prefill
	// backlog, KV reservation, slot occupancy, prefix-cache fill)
	// every SampleEvery cycles on shared k·SampleEvery boundaries.
	// 0 disables sampling; ignored when Recorder is nil.
	SampleEvery int64
	// HWProf configures hardware-counter attribution (see
	// internal/hwprof). The zero value disables it — like Recorder,
	// every capture site is branch-guarded, so a run without profiling
	// takes the exact pre-hwprof paths and produces bit-identical
	// Metrics and telemetry. With Recorder also attached, the profile's
	// bucket time-series additionally flows into the trace as
	// KindHWSample events.
	HWProf hwprof.Spec
}

// Run executes a serving scenario on the configured system. The
// policy under evaluation is carried by cfg.Throttle / cfg.Arbiter,
// exactly as in single-operator runs; every other cfg field describes
// the hardware. The run is deterministic for a fixed (cfg, scn)
// (modulo the StepCache diagnostics block; see Metrics.StepCache).
//
// Run is a thin wrapper over Engine: every request is submitted in
// arrival order and the engine drained to completion — the same code
// path a cluster node executes, interleaved with routing.
func Run(cfg sim.Config, scn Scenario) (*Metrics, error) {
	return RunWith(cfg, scn, RunOptions{})
}

// RunWith is Run with an explicit step-cache configuration.
func RunWith(cfg sim.Config, scn Scenario, opts RunOptions) (*Metrics, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	stride, err := StreamStride(scn)
	if err != nil {
		return nil, err
	}
	if opts.Sched != (SchedulerConfig{}) && opts.Sched != scn.Sched {
		return nil, fmt.Errorf("serving: RunOptions.Sched %+v contradicts the scenario's scheduler %+v (the scenario is authoritative)",
			opts.Sched, scn.Sched)
	}
	opts.Sched = scn.Sched
	eng, err := NewEngineWith(cfg, scn.MaxBatch, scn.IncludeAV, stride, opts)
	if err != nil {
		return nil, err
	}
	eng.Prealloc(len(scn.Requests), scn.TotalTokens())
	reqs := make([]Request, len(scn.Requests))
	copy(reqs, scn.Requests)
	sortRequests(reqs)
	for _, r := range reqs {
		if err := eng.Submit(r); err != nil {
			return nil, err
		}
	}
	if err := eng.Drain(); err != nil {
		return nil, err
	}
	eng.FlushHWSamples()
	// Counters.Cycles already equals Metrics.Cycles: every step's
	// Result carries its cycle count and Add accumulates it.
	return eng.Metrics(), nil
}

// String renders the headline serving metrics as an aligned block.
func (m *Metrics) String() string {
	return fmt.Sprintf(
		"requests          %d\n"+
			"tokens            %d\n"+
			"steps             %d\n"+
			"prefill           %d tokens in %d steps\n"+
			"preemptions       %d\n"+
			"prefix cache      %d hits, %d misses, %d tokens saved (rate %.2f)\n"+
			"makespan          %d cycles\n"+
			"throughput        %.4f tokens/kcycle\n"+
			"batch occupancy   %.2f\n"+
			"token latency     p50 %.0f  p95 %.0f  p99 %.0f  max %.0f cycles\n"+
			"TTFT              p50 %.0f  p95 %.0f  p99 %.0f  max %.0f cycles\n"+
			"queue delay       p50 %.0f  p95 %.0f  p99 %.0f  max %.0f cycles\n"+
			"L2 hit rate       %.4f\n"+
			"DRAM bandwidth    %.2f GB/s\n"+
			"step cache        memo %d/%d  optrace %d/%d  sim resets %d\n",
		m.Requests, m.Tokens, m.Steps,
		m.PrefillTokens, m.PrefillSteps, m.Preemptions,
		m.PrefixHits, m.PrefixMisses, m.PrefillTokensSaved, m.PrefixHitRate, m.Makespan,
		m.TokensPerKCycle, m.MeanBatchOccupancy,
		m.TokenLatency.P50, m.TokenLatency.P95, m.TokenLatency.P99, m.TokenLatency.Max,
		m.TTFT.P50, m.TTFT.P95, m.TTFT.P99, m.TTFT.Max,
		m.QueueDelay.P50, m.QueueDelay.P95, m.QueueDelay.P99, m.QueueDelay.Max,
		m.Sim.L2HitRate, m.Sim.DRAMBandwidthGB,
		m.StepCache.MemoHits, m.StepCache.MemoHits+m.StepCache.MemoMisses,
		m.StepCache.OpCacheHits, m.StepCache.OpCacheHits+m.StepCache.OpCacheMisses,
		m.StepCache.SimResets)
}

// DefaultScenario returns the stock mixed-sequence-length scenario
// cmd/serve and the examples use: eight Llama3-70B requests at mixed
// prompt lengths, decoding 4–8 tokens each, Poisson arrivals, batch
// capacity four. scale divides the prompt-length range the way the
// experiment harnesses divide sequence lengths (scale 1 = the
// unscaled scenario; the default CLI scale is 8).
func DefaultScenario(scale int) (Scenario, error) {
	if scale <= 0 {
		scale = 1
	}
	minP, maxP := 512/scale, 2048/scale
	if minP < minKVLen {
		minP = minKVLen
	}
	if maxP < minP {
		maxP = minP
	}
	return NewScenario(ScenarioConfig{
		Name:             fmt.Sprintf("default/scale%d", scale),
		Seed:             1,
		NumRequests:      8,
		Models:           []workload.ModelConfig{workload.Llama3_70B},
		MinPromptLen:     minP,
		MaxPromptLen:     maxP,
		MinDecode:        4,
		MaxDecode:        8,
		MeanInterArrival: 30000,
		MaxBatch:         4,
	})
}
