// Package serving is the serving-scenario engine: it models an
// inference server running many concurrent decode requests under a
// continuous-batching scheduler on the paper's simulated hardware —
// the production regime the single-operator figures of Section 6
// deliberately isolate away.
//
// A scenario is a population of decode requests (per-request model,
// prompt length, decode length, arrival cycle) plus a batch capacity.
// The engine advances the server one token step at a time: the
// per-token Logit (and optionally AV) operator traces of every
// running stream are composed into one interleaved multi-stream
// memory trace — each stream at its own address-space offset, so
// streams contend realistically in the LLC, MSHRs and DRAM — and the
// composed trace drives the cycle-level engine of internal/sim.
// Requests are admitted FCFS at step boundaries whenever a batch slot
// is free and retire when their decode budget is exhausted — the
// iteration-granularity admission of continuous batching.
//
// The engine reports serving-level metrics the paper's figures do
// not: aggregate decode throughput (tokens per kilocycle), per-token
// latency percentiles (p50/p95/p99), queueing delay, and batch
// occupancy, across the same throttle/arbiter policy matrix. Every
// run is deterministic: the arrival process is fixed-seed
// (splitmix64), the simulator is deterministic, and admission is
// FCFS, so the same (scenario, config) pair always yields the same
// Metrics.
package serving

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// RequestStats is the per-request outcome of a serving run.
type RequestStats struct {
	ID           int
	Model        string
	ArrivalCycle int64
	AdmitCycle   int64
	FinishCycle  int64
	QueueDelay   int64 // AdmitCycle - ArrivalCycle
	Tokens       int   // tokens generated
	FinalKVLen   int   // KV-cache length at retirement
}

// Percentiles summarises a latency sample in cycles.
type Percentiles struct {
	P50, P95, P99 float64
	Mean          float64
	Max           float64
}

func summarise(xs []float64) Percentiles {
	if len(xs) == 0 {
		return Percentiles{}
	}
	ps := stats.PercentileSet(xs, 50, 95, 99, 100)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return Percentiles{
		P50:  ps[0],
		P95:  ps[1],
		P99:  ps[2],
		Max:  ps[3],
		Mean: sum / float64(len(xs)),
	}
}

// Metrics is the outcome of one serving run.
type Metrics struct {
	Requests int
	Tokens   int64
	Steps    int64 // continuous-batching iterations executed
	// Cycles is the busy time: the sum of every step's simulated
	// cycles. Makespan additionally includes the idle gaps when the
	// server was empty and waiting for arrivals.
	Cycles   int64
	Makespan int64
	// TokensPerKCycle is the aggregate decode throughput:
	// 1000 × Tokens / Makespan.
	TokensPerKCycle float64
	// MeanBatchOccupancy is the mean number of streams per step —
	// Tokens / Steps, the continuous-batching utilisation.
	MeanBatchOccupancy float64
	// TokenLatency summarises per-token latency: every generated
	// token's latency is the simulated length of the step that
	// produced it (all streams of a step receive their token when the
	// iteration completes).
	TokenLatency Percentiles
	// QueueDelay summarises per-request admission delay in cycles.
	QueueDelay Percentiles
	// Sim aggregates the cycle-level counters of every step and the
	// hardware metrics derived from them (hit rates, bandwidth, t_cs)
	// over the whole serving run.
	Counters stats.Counters
	Sim      stats.Metrics
	// PerRequest holds one entry per request, in request-ID order.
	PerRequest []RequestStats
}

// stream is one occupied batch slot.
type stream struct {
	req    Request
	slot   int
	kvLen  int
	left   int
	admit  int64
	tokens int
}

// Run executes a serving scenario on the configured system. The
// policy under evaluation is carried by cfg.Throttle / cfg.Arbiter,
// exactly as in single-operator runs; every other cfg field describes
// the hardware. The run is deterministic for a fixed (cfg, scn).
func Run(cfg sim.Config, scn Scenario) (*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	reqs := make([]Request, len(scn.Requests))
	copy(reqs, scn.Requests)
	sortRequests(reqs)
	stride, err := StreamStride(scn)
	if err != nil {
		return nil, err
	}

	slots := make([]*stream, scn.MaxBatch)
	var (
		queue      []Request // arrived, waiting for a slot (FCFS)
		arrived    int       // reqs[:arrived] have entered the queue
		finished   int
		now        int64
		m          = &Metrics{Requests: len(reqs)}
		tokenLats  []float64
		queueLats  []float64
		perRequest = make([]RequestStats, len(reqs))
		running    = make([]StreamState, 0, scn.MaxBatch)
	)

	for finished < len(reqs) {
		// Arrivals up to the current step boundary enter the queue.
		for arrived < len(reqs) && reqs[arrived].ArrivalCycle <= now {
			queue = append(queue, reqs[arrived])
			arrived++
		}
		// FCFS admission into the lowest free slot.
		for len(queue) > 0 {
			slot := -1
			for i, s := range slots {
				if s == nil {
					slot = i
					break
				}
			}
			if slot < 0 {
				break
			}
			req := queue[0]
			queue = queue[1:]
			slots[slot] = &stream{
				req:   req,
				slot:  slot,
				kvLen: req.PromptLen,
				left:  req.DecodeTokens,
				admit: now,
			}
			queueLats = append(queueLats, float64(now-req.ArrivalCycle))
			perRequest[req.ID] = RequestStats{
				ID:           req.ID,
				Model:        req.Model.Name,
				ArrivalCycle: req.ArrivalCycle,
				AdmitCycle:   now,
				QueueDelay:   now - req.ArrivalCycle,
			}
		}

		// Empty server: fast-forward the wall clock to the next
		// arrival instead of simulating idle steps.
		running = running[:0]
		for _, s := range slots {
			if s != nil {
				running = append(running, StreamState{
					Slot:  s.slot,
					Base:  uint64(s.slot) * stride,
					Model: s.req.Model,
					KVLen: s.kvLen,
				})
			}
		}
		if len(running) == 0 {
			if arrived >= len(reqs) {
				return nil, fmt.Errorf("serving: no runnable stream but %d requests unfinished", len(reqs)-finished)
			}
			now = reqs[arrived].ArrivalCycle
			continue
		}

		// One continuous-batching iteration: every running stream
		// decodes one token over the composed multi-stream trace.
		tr, groupSize, err := ComposeStep(running, scn.IncludeAV, cfg.LineBytes)
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(cfg, tr, groupSize)
		if err != nil {
			return nil, err
		}
		res, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("serving: step %d: %w", m.Steps, err)
		}
		stepCycles := res.Cycles
		now += stepCycles
		m.Steps++
		m.Cycles += stepCycles
		m.Counters.Add(&res.Counters)

		for i, s := range slots {
			if s == nil {
				continue
			}
			s.kvLen++
			s.left--
			s.tokens++
			m.Tokens++
			tokenLats = append(tokenLats, float64(stepCycles))
			if s.left == 0 {
				st := &perRequest[s.req.ID]
				st.FinishCycle = now
				st.Tokens = s.tokens
				st.FinalKVLen = s.kvLen
				slots[i] = nil
				finished++
			}
		}
	}

	m.Makespan = now
	if m.Makespan > 0 {
		m.TokensPerKCycle = 1000 * float64(m.Tokens) / float64(m.Makespan)
	}
	if m.Steps > 0 {
		m.MeanBatchOccupancy = float64(m.Tokens) / float64(m.Steps)
	}
	m.TokenLatency = summarise(tokenLats)
	m.QueueDelay = summarise(queueLats)
	// Counters.Cycles already equals m.Cycles: every step's Result
	// carries its cycle count and Add accumulates it.
	m.Sim = m.Counters.Derive(cfg.FreqGHz, cfg.LineBytes, cfg.NumCores)
	m.PerRequest = perRequest
	return m, nil
}

// String renders the headline serving metrics as an aligned block.
func (m *Metrics) String() string {
	return fmt.Sprintf(
		"requests          %d\n"+
			"tokens            %d\n"+
			"steps             %d\n"+
			"makespan          %d cycles\n"+
			"throughput        %.4f tokens/kcycle\n"+
			"batch occupancy   %.2f\n"+
			"token latency     p50 %.0f  p95 %.0f  p99 %.0f  max %.0f cycles\n"+
			"queue delay       p50 %.0f  p95 %.0f  p99 %.0f  max %.0f cycles\n"+
			"L2 hit rate       %.4f\n"+
			"DRAM bandwidth    %.2f GB/s\n",
		m.Requests, m.Tokens, m.Steps, m.Makespan,
		m.TokensPerKCycle, m.MeanBatchOccupancy,
		m.TokenLatency.P50, m.TokenLatency.P95, m.TokenLatency.P99, m.TokenLatency.Max,
		m.QueueDelay.P50, m.QueueDelay.P95, m.QueueDelay.P99, m.QueueDelay.Max,
		m.Sim.L2HitRate, m.Sim.DRAMBandwidthGB)
}

// DefaultScenario returns the stock mixed-sequence-length scenario
// cmd/serve and the examples use: eight Llama3-70B requests at mixed
// prompt lengths, decoding 4–8 tokens each, Poisson arrivals, batch
// capacity four. scale divides the prompt-length range the way the
// experiment harnesses divide sequence lengths (scale 1 = the
// unscaled scenario; the default CLI scale is 8).
func DefaultScenario(scale int) (Scenario, error) {
	if scale <= 0 {
		scale = 1
	}
	minP, maxP := 512/scale, 2048/scale
	if minP < minKVLen {
		minP = minKVLen
	}
	if maxP < minP {
		maxP = minP
	}
	return NewScenario(ScenarioConfig{
		Name:             fmt.Sprintf("default/scale%d", scale),
		Seed:             1,
		NumRequests:      8,
		Models:           []workload.ModelConfig{workload.Llama3_70B},
		MinPromptLen:     minP,
		MaxPromptLen:     maxP,
		MinDecode:        4,
		MaxDecode:        8,
		MeanInterArrival: 30000,
		MaxBatch:         4,
	})
}
