// The incremental continuous-batching engine: one server instance
// that can be driven step by step. Run wraps it for whole-scenario
// execution; the cluster router (internal/cluster) holds one Engine
// per node and interleaves request admission with node progress, so
// routing decisions can observe each node's load mid-flight.

package serving

import (
	"fmt"
	"sort"

	"repro/internal/hwprof"
	"repro/internal/memtrace"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// stream is one occupied batch slot.
type stream struct {
	req   Request
	slot  int
	kvLen int
	left  int
	// prefillLeft is the prompt tokens still to prefill on-node; 0
	// means the stream is in its decode phase (decode-only streams are
	// born with 0 — the prompt is assumed prefilled elsewhere).
	prefillLeft int
	admit       int64
	tokens      int
	// reserved is the KV tokens this stream holds against the capacity
	// gate: kvReserve(req) minus any prefix-cache hit at admission.
	// Released exactly once, at retirement or preemption.
	reserved int64
	// prefillPhase is where the hardware profiler attributes this
	// stream's prefill passes: PhasePrefill (the zero value) for a
	// fresh prompt, or a recompute phase when the stream is rebuilding
	// KV evicted by preemption or lost to a node crash. Decode passes
	// are always PhaseDecode.
	prefillPhase hwprof.Phase
}

// Engine is one continuous-batching server advanced incrementally on
// its own local clock. Requests are submitted in arrival order
// (Submit), the clock is advanced to routing horizons (AdvanceTo) and
// the remaining work is finished with Drain; Metrics can be read at
// any step boundary. Driving an Engine with Submit-all-then-Drain is
// exactly Run — the single-node serving semantics and the cluster's
// per-node semantics are one implementation, which is what makes a
// 1-node cluster bit-identical to a plain serving run.
type Engine struct {
	cfg       sim.Config
	maxBatch  int
	includeAV bool
	stride    uint64
	sched     SchedulerConfig

	slots   []*stream
	queue   []Request // arrival reached, waiting for a slot (FCFS)
	pending []Request // submitted, arrival still ahead of the local clock
	now     int64
	kvUsed  int64 // KV tokens reserved by live streams (capacity gate)

	// Preemption state (Sched.Preempt != PreemptOff): resume maps a
	// preempted request's ID to the decode tokens it had generated when
	// evicted, so re-admission recomputes the KV prefix (prompt plus
	// generated tokens) as prefill and decode continues where it
	// stopped instead of double-counting tokens. preemptions counts
	// eviction events; victims is per-admit scratch.
	resume      map[int]int
	preemptions int64
	victims     []*stream
	// redisp marks resume points that came from a crash redispatch
	// (SubmitResume) rather than an on-node preemption, so the
	// hardware profiler attributes the recompute prefill to the right
	// phase. Consumed alongside e.resume at re-admission.
	redisp map[int]bool

	// Session prefix cache (Sched.PrefixCacheTokens > 0; nil otherwise,
	// leaving every admission on the exact pre-prefix-cache path). See
	// prefixcache.go for the retention/lookup contract.
	pfx          *prefixCache
	prefixHits   int64
	prefixMisses int64
	prefillSaved int64 // prompt tokens skipped via prefix hits

	// Telemetry (RunOptions.Recorder; nil = no recording, the exact
	// pre-telemetry branch structure). rec receives lifecycle events;
	// memoHit tags the current step's events as memo-replayed;
	// sampleEvery/nextSample drive the K-cycle gauge sampler (samples
	// are stamped on the shared k·sampleEvery boundaries so fleet
	// rollups align across nodes).
	rec         telemetry.Recorder
	memoHit     bool
	sampleEvery int64
	nextSample  int64

	// Hardware profiling (RunOptions.HWProf; nil = no capture, the
	// exact pre-profiling branch structure, mirroring rec). prof
	// receives every applied step's (cycles, counters) delta with the
	// per-stream attribution shares built in profShares scratch.
	prof       *hwprof.Profile
	profShares []hwprof.StreamShare

	// slow is the straggler multiplier on every executed (or replayed)
	// step's cycle cost (see SetSlowdown); values <= 1 leave the step
	// cost untouched — the exact pre-fault arithmetic.
	slow int64

	steps         int64
	cycles        int64
	tokens        int64
	prefillTokens int64 // prompt tokens prefilled on-node
	prefillSteps  int64 // steps that carried a prefill pass
	counters      stats.Counters
	tokenLats     []float64
	queueLats     []float64
	ttfts         []float64
	stats         []RequestStats // submit order
	statIdx       map[int]int    // request ID -> index into stats
	unfinished    int
	running       []StreamState // per-step scratch

	// Token-step fast path (see stepcache.go). mode selects the path;
	// memo is the shared signature memo; simEng is the persistent
	// resettable simulator; the remaining fields are per-engine reusable
	// buffers: the signature key builder, the canonicalization scratch,
	// the per-stream block table, the block arena and the composed step
	// trace.
	mode       StepCacheMode
	memo       *StepMemo
	sigPrefix  string
	sigBuf     []byte
	sigScratch []StreamState
	perStream  [][]*memtrace.ThreadBlock
	blockArena []memtrace.ThreadBlock
	stepTrace  memtrace.Trace
	simEng     *sim.Engine
	cacheStats StepCacheStats
}

// NewEngine builds an empty server: a batch capacity, the per-token
// trace composition mode, and the per-slot address-space stride
// (StreamStride of the request population the engine may receive — in
// a cluster, of the whole fleet's population, so every node uses the
// same address layout regardless of routing). The engine runs the
// default fast path (StepCacheOn, shared memo); NewEngineWith selects
// another mode or memo.
func NewEngine(cfg sim.Config, maxBatch int, includeAV bool, stride uint64) (*Engine, error) {
	return NewEngineWith(cfg, maxBatch, includeAV, stride, RunOptions{})
}

// NewEngineWith is NewEngine with an explicit step-cache mode and
// memo (see RunOptions).
func NewEngineWith(cfg sim.Config, maxBatch int, includeAV bool, stride uint64, opts RunOptions) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if maxBatch <= 0 {
		return nil, fmt.Errorf("serving: MaxBatch must be positive, got %d", maxBatch)
	}
	if stride == 0 || stride%streamAlign != 0 {
		return nil, fmt.Errorf("serving: stride %d is not a positive multiple of the %d-byte stream alignment", stride, streamAlign)
	}
	if err := opts.Sched.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		maxBatch:  maxBatch,
		includeAV: includeAV,
		stride:    stride,
		sched:     opts.Sched,
		slots:     make([]*stream, maxBatch),
		statIdx:   make(map[int]int),
		running:   make([]StreamState, 0, maxBatch+1),
		mode:      opts.StepCache,
		memo:      opts.Memo,
		rec:       opts.Recorder,
	}
	if opts.Recorder != nil && opts.SampleEvery > 0 {
		e.sampleEvery = opts.SampleEvery
		// The first sample lands on the first boundary, not cycle 0:
		// an all-zero gauge row per node carries no information.
		e.nextSample = opts.SampleEvery
	}
	if opts.Sched.PrefixCacheTokens > 0 {
		e.pfx = newPrefixCache(opts.Sched.PrefixCacheTokens)
	}
	if opts.HWProf.Enabled {
		e.prof = hwprof.New(hwprof.Params{
			FreqGHz:      cfg.FreqGHz,
			LineBytes:    cfg.LineBytes,
			NumCores:     cfg.NumCores,
			DRAMChannels: cfg.DRAMChannels,
		}, opts.HWProf)
		e.profShares = make([]hwprof.StreamShare, 0, maxBatch+1)
	}
	if e.mode == StepCacheOn {
		if e.memo == nil {
			e.memo = SharedStepMemo()
		}
		// The full config rendering is interned to a short id so every
		// step key (and every memo entry's key) embeds a few bytes
		// instead of the multi-hundred-byte rendering.
		e.sigPrefix = internPrefix(configSignature(cfg, includeAV, stride))
	}
	return e, nil
}

// Prealloc sizes the engine's statistics buffers for a known workload
// — the request count and total decode-token count of the scenario —
// so the step loop appends without growing. Callers invoke it before
// the first Submit; Run and the cluster router do.
func (e *Engine) Prealloc(requests int, tokens int64) {
	if n := int(tokens); cap(e.tokenLats) < n {
		e.tokenLats = append(make([]float64, 0, n), e.tokenLats...)
	}
	if cap(e.queueLats) < requests {
		e.queueLats = append(make([]float64, 0, requests), e.queueLats...)
	}
	if cap(e.ttfts) < requests {
		e.ttfts = append(make([]float64, 0, requests), e.ttfts...)
	}
	if cap(e.stats) < requests {
		e.stats = append(make([]RequestStats, 0, requests), e.stats...)
	}
	if cap(e.pending) < requests {
		e.pending = append(make([]Request, 0, requests), e.pending...)
	}
	if cap(e.queue) < requests {
		e.queue = append(make([]Request, 0, requests), e.queue...)
	}
}

// StepCacheStats returns the engine's fast-path diagnostics so far.
func (e *Engine) StepCacheStats() StepCacheStats { return e.cacheStats }

// Submit hands the engine one more request. Requests must arrive in
// nondecreasing ArrivalCycle order (the global dispatch order of a
// router, or the sorted order of a scenario) and carry unique IDs.
func (e *Engine) Submit(req Request) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if _, dup := e.statIdx[req.ID]; dup {
		return fmt.Errorf("serving: duplicate request ID %d submitted", req.ID)
	}
	if err := e.sched.CheckAdmissible(req); err != nil {
		return err
	}
	if n := len(e.pending); n > 0 && req.ArrivalCycle < e.pending[n-1].ArrivalCycle {
		return fmt.Errorf("serving: request %d submitted out of arrival order (%d after %d)",
			req.ID, req.ArrivalCycle, e.pending[n-1].ArrivalCycle)
	}
	e.statIdx[req.ID] = len(e.stats)
	e.stats = append(e.stats, RequestStats{
		ID:           req.ID,
		Model:        req.Model.Name,
		ArrivalCycle: req.ArrivalCycle,
	})
	e.pending = append(e.pending, req)
	e.unfinished++
	if e.rec != nil {
		e.rec.Record(telemetry.Event{
			Kind: telemetry.KindArrive, Cycle: req.ArrivalCycle,
			Req: req.ID, Session: req.Session, Slot: -1, Target: -1,
			Tokens: req.PromptLen, KVLen: int(kvReserve(req)),
		})
	}
	return nil
}

// admit moves pending arrivals up to the local clock into the FCFS
// queue, then fills free batch slots lowest-index first — the
// iteration-boundary admission of continuous batching. When a KV
// capacity is configured, the queue head is admitted only while its
// maximum KV footprint fits the remaining capacity; admission stays
// strict FCFS, so a too-large head blocks the queue until running
// streams retire and release their reservations — unless a preemption
// policy is set, in which case the blocked head may evict victims
// (tryPreempt) and claim their reservations.
func (e *Engine) admit() {
	for len(e.pending) > 0 && e.pending[0].ArrivalCycle <= e.now {
		e.queue = append(e.queue, e.pending[0])
		e.pending = e.pending[1:]
	}
	for len(e.queue) > 0 {
		slot := -1
		for i, s := range e.slots {
			if s == nil {
				slot = i
				break
			}
		}
		if slot < 0 {
			break
		}
		req := e.queue[0]
		need := kvReserve(req)
		prefix := 0
		if e.pfx != nil {
			// A usable cached prefix shrinks both the reservation and
			// the prefill debt. The lookup is read-only; notePrefix
			// applies the LRU refresh once the admission happens, so a
			// blocked head re-evaluates fresh on every pass (including
			// re-admission after preemption — re-validation, not trust).
			prefix = e.pfx.lookup(req.Session, req.PrefixLen)
			need -= int64(prefix)
		}
		if e.sched.KVCapTokens > 0 && e.kvUsed+need > e.sched.KVCapTokens {
			if !e.tryPreempt(req, need) {
				break
			}
			// Eviction may have freed a lower slot than the one found
			// above; restart the pass so slots fill lowest-index first.
			continue
		}
		e.queue = e.queue[1:]
		e.kvUsed += need
		e.notePrefix(req, prefix)
		s := &stream{
			req:      req,
			slot:     slot,
			kvLen:    req.PromptLen,
			left:     req.DecodeTokens,
			admit:    e.now,
			reserved: need,
		}
		if e.sched.Policy != SchedDecodeOnly {
			// The node runs the prompt's prefill itself: the KV cache
			// starts with the cached prefix (0 on a miss or with the
			// cache off) and fills as chunks complete.
			s.kvLen = prefix
			s.prefillLeft = req.PromptLen - prefix
		}
		if res, resumed := e.resume[req.ID]; resumed {
			// Re-admission after preemption (or redispatch after a node
			// crash): the dropped KV prefix — the prompt plus every token
			// generated before eviction — is recomputed as prefill (minus
			// any still-cached session prefix), then decode resumes where
			// it stopped. Tokens are never generated twice.
			delete(e.resume, req.ID)
			s.tokens = res
			s.left = req.DecodeTokens - res
			s.kvLen = prefix
			s.prefillLeft = req.PromptLen + res - prefix
			// The rebuilt KV prefix is recompute work, not fresh
			// prefill — attributed to the phase matching how it was
			// lost (eviction on this node vs a crash elsewhere).
			s.prefillPhase = hwprof.PhaseRecomputePreempt
			if e.redisp[req.ID] {
				delete(e.redisp, req.ID)
				s.prefillPhase = hwprof.PhaseRecomputeRedispatch
			}
			if e.sched.Policy == SchedDecodeOnly {
				// Decode-only nodes assume prefill happens elsewhere;
				// a crash-recovered stream's recomputation is likewise
				// off-node — the KV prefix reappears whole.
				s.kvLen = req.PromptLen + res
				s.prefillLeft = 0
			}
			e.slots[slot] = s
			if e.rec != nil {
				e.rec.Record(telemetry.Event{
					Kind: telemetry.KindAdmit, Cycle: e.now,
					Req: req.ID, Session: req.Session, Slot: slot, Target: -1,
					Tokens: res, KVLen: int(need),
				})
			}
			continue
		}
		e.slots[slot] = s
		e.queueLats = append(e.queueLats, float64(e.now-req.ArrivalCycle))
		st := &e.stats[e.statIdx[req.ID]]
		st.AdmitCycle = e.now
		st.QueueDelay = e.now - req.ArrivalCycle
		if e.rec != nil {
			e.rec.Record(telemetry.Event{
				Kind: telemetry.KindAdmit, Cycle: e.now,
				Req: req.ID, Session: req.Session, Slot: slot, Target: -1,
				KVLen: int(need),
			})
		}
	}
}

// notePrefix folds one admission's prefix-cache outcome into the
// engine: a hit refreshes the entry's LRU position and is counted
// (with its skipped tokens) in the engine and per-request stats; a
// request that carried a prefix but found none usable counts as a
// miss. Re-admissions after preemption pass through here again — each
// re-validation is a lookup of its own.
func (e *Engine) notePrefix(req Request, prefix int) {
	if e.pfx == nil || req.PrefixLen == 0 {
		return
	}
	kind := telemetry.KindPrefixMiss
	if prefix > 0 {
		e.pfx.commit(req.Session)
		e.prefixHits++
		e.prefillSaved += int64(prefix)
		e.stats[e.statIdx[req.ID]].PrefixTokens += prefix
		kind = telemetry.KindPrefixHit
	} else {
		e.prefixMisses++
	}
	if e.rec != nil {
		e.rec.Record(telemetry.Event{
			Kind: kind, Cycle: e.now,
			Req: req.ID, Session: req.Session, Slot: -1, Target: -1,
			Tokens: prefix,
		})
	}
}

// tryPreempt frees KV capacity for a blocked admission head by
// evicting running streams under the configured victim policy. The
// eviction is all-or-nothing: victims are taken in policy order until
// the head fits, and nothing is evicted if even evicting every running
// stream would not make it fit. Only a head that has itself never been
// preempted may trigger eviction — a preempted request waits out
// head-of-line blocking like before — which bounds eviction events at
// requests × batch slots and rules out livelock. Victims drop their
// reservation and requeue behind the current FCFS queue; their decode
// progress is remembered in e.resume for recompute on re-admission.
func (e *Engine) tryPreempt(head Request, need int64) bool {
	if e.sched.Preempt == PreemptOff {
		return false
	}
	if e.stats[e.statIdx[head.ID]].Preemptions > 0 {
		return false
	}
	e.victims = e.victims[:0]
	for _, s := range e.slots {
		if s != nil {
			e.victims = append(e.victims, s)
		}
	}
	if len(e.victims) == 0 {
		return false
	}
	sort.Slice(e.victims, func(a, b int) bool {
		va, vb := e.victims[a], e.victims[b]
		if e.sched.Preempt == PreemptFewestTokens && va.tokens != vb.tokens {
			return va.tokens < vb.tokens
		}
		if va.admit != vb.admit {
			return va.admit > vb.admit
		}
		return va.slot > vb.slot
	})
	freed, take := int64(0), 0
	for take < len(e.victims) && e.kvUsed-freed+need > e.sched.KVCapTokens {
		freed += e.victims[take].reserved
		take++
	}
	if e.kvUsed-freed+need > e.sched.KVCapTokens {
		return false
	}
	for _, v := range e.victims[:take] {
		e.slots[v.slot] = nil
		e.kvUsed -= v.reserved
		if e.resume == nil {
			e.resume = make(map[int]int)
		}
		e.resume[v.req.ID] = v.tokens
		e.queue = append(e.queue, v.req)
		e.preemptions++
		e.stats[e.statIdx[v.req.ID]].Preemptions++
		if e.rec != nil {
			e.rec.Record(telemetry.Event{
				Kind: telemetry.KindPreempt, Cycle: e.now,
				Req: v.req.ID, Session: v.req.Session, Slot: v.slot, Target: -1,
				Tokens: v.tokens, KVLen: int(v.reserved),
			})
		}
	}
	return true
}

func (e *Engine) runnable() bool {
	for _, s := range e.slots {
		if s != nil {
			return true
		}
	}
	return false
}

// stepOnce executes one continuous-batching iteration over the
// scheduler-selected running set: every decode-phase participant
// decodes one token, a prefill participant advances one pass, all over
// one composed multi-stream trace. Under the default fast path a
// memoized signature replays the recorded (cycles, counters) without
// composing or simulating anything; a miss composes into the engine's
// arena and rewinds the persistent simulator. StepCacheOff is the
// naive reference: a fresh trace and a fresh simulator per step. All
// paths are bit-identical — the step cache equivalence tests assert
// it. The caller guarantees at least one slot is occupied.
func (e *Engine) stepOnce() error {
	e.selectStep()
	e.memoHit = false

	if e.mode == StepCacheOff {
		tr, groupSize, err := ComposeStep(e.running, e.includeAV, e.cfg.LineBytes)
		if err != nil {
			return err
		}
		eng, err := sim.New(e.cfg, tr, groupSize)
		if err != nil {
			return err
		}
		res, err := eng.Run()
		if err != nil {
			return fmt.Errorf("serving: step %d: %w", e.steps, err)
		}
		e.applyStep(e.stepCost(res.Cycles), &res.Counters)
		return nil
	}

	var key string
	if e.mode == StepCacheOn {
		e.sigBuf, e.sigScratch = appendStepSignature(e.sigBuf, e.sigPrefix, e.running, e.sigScratch)
		key = string(e.sigBuf)
		if r, ok := e.memo.lookup(key); ok {
			e.cacheStats.MemoHits++
			// Replayed steps still flow through applyStep, so telemetry
			// events for memo hits are synthesized from the replayed
			// (cycles, counters) with MemoHit set — never skipped.
			e.memoHit = true
			e.applyStep(e.stepCost(r.cycles), &r.counters)
			return nil
		}
		e.cacheStats.MemoMisses++
	}

	tr, groupSize, err := e.composeStepFast()
	if err != nil {
		return err
	}
	if e.simEng == nil {
		if e.simEng, err = sim.New(e.cfg, tr, groupSize); err != nil {
			return err
		}
	} else {
		if err = e.simEng.Reset(tr, groupSize); err != nil {
			return err
		}
		e.cacheStats.SimResets++
	}
	res, err := e.simEng.Run()
	if err != nil {
		return fmt.Errorf("serving: step %d: %w", e.steps, err)
	}
	if e.mode == StepCacheOn {
		e.memo.store(key, stepResult{cycles: res.Cycles, counters: res.Counters})
	}
	e.applyStep(e.stepCost(res.Cycles), &res.Counters)
	return nil
}

// stepCost scales one step's cycle cost by the straggler multiplier.
// The step memo always stores the unscaled cost — scaling happens on
// the way out — so memo hits and misses agree whatever windows a node
// passed through.
func (e *Engine) stepCost(cycles int64) int64 {
	if e.slow > 1 {
		return cycles * e.slow
	}
	return cycles
}

// SetSlowdown sets the straggler multiplier: while factor > 1 every
// step the engine executes (or replays) costs factor times its nominal
// cycles, modelling a degraded node whose cycle progression lags the
// fleet. factor <= 1 restores nominal speed. The cluster's fault plan
// drives this at straggler-window boundaries; a step in flight at the
// boundary keeps the factor it started under (steps are never split).
func (e *Engine) SetSlowdown(factor int64) {
	if factor < 1 {
		factor = 1
	}
	e.slow = factor
}

// selectStep builds the step's running set into e.running per the
// scheduler policy. Decode-only: every occupied slot decodes (the
// pre-prefill behaviour, entry for entry). Prefill-first: while any
// stream owes prefill, the step is that stream's monolithic prefill
// pass alone (oldest admission first, ties to the lowest slot) and
// decodes stall. Chunked: every decode-phase stream decodes and the
// oldest prefilling stream advances one chunk in the same step.
func (e *Engine) selectStep() {
	e.running = e.running[:0]
	var pre *stream
	for _, s := range e.slots {
		if s == nil {
			continue
		}
		if s.prefillLeft > 0 {
			if pre == nil || s.admit < pre.admit || (s.admit == pre.admit && s.slot < pre.slot) {
				pre = s
			}
			continue
		}
		e.running = append(e.running, StreamState{
			Slot:  s.slot,
			Base:  uint64(s.slot) * e.stride,
			Model: s.req.Model,
			KVLen: s.kvLen,
		})
	}
	if pre == nil {
		return
	}
	adv := e.sched.prefillTarget(pre.prefillLeft)
	st := StreamState{
		Slot:     pre.slot,
		Base:     uint64(pre.slot) * e.stride,
		Model:    pre.req.Model,
		KVLen:    pre.kvLen + adv,
		ChunkLen: adv,
	}
	if e.sched.Policy == SchedPrefillFirst {
		// Monolithic prefill preempts every decode stream.
		e.running = append(e.running[:0], st)
		return
	}
	e.running = append(e.running, st)
}

// applyStep folds one executed (or replayed) step into the engine:
// clock, aggregate counters, per-token latencies, prefill progress,
// first-token timestamps and stream retirement. Participants are the
// entries of e.running (built by selectStep for this step).
func (e *Engine) applyStep(stepCycles int64, ctr *stats.Counters) {
	e.now += stepCycles
	e.steps++
	e.cycles += stepCycles
	e.counters.Add(ctr)

	if e.prof != nil {
		// Attribution shares mirror the running set exactly: one decode
		// token per decode participant, the chunk length for a prefill
		// pass, with the stream's phase tag. Built before the retirement
		// pass below nils any slots.
		e.profShares = e.profShares[:0]
		for _, rs := range e.running {
			sh := hwprof.StreamShare{
				Req: e.slots[rs.Slot].req.ID, Tokens: 1, Phase: hwprof.PhaseDecode,
			}
			if rs.ChunkLen > 0 {
				sh.Tokens = rs.ChunkLen
				sh.Phase = e.slots[rs.Slot].prefillPhase
			}
			e.profShares = append(e.profShares, sh)
		}
		e.prof.Step(e.now, stepCycles, ctr, e.profShares)
	}

	for _, rs := range e.running {
		s := e.slots[rs.Slot]
		if rs.ChunkLen > 0 {
			s.kvLen += rs.ChunkLen
			s.prefillLeft -= rs.ChunkLen
			e.prefillTokens += int64(rs.ChunkLen)
			e.prefillSteps++
			if e.rec != nil {
				e.rec.Record(telemetry.Event{
					Kind: telemetry.KindPrefill, Cycle: e.now, Dur: stepCycles,
					Req: s.req.ID, Session: s.req.Session, Slot: rs.Slot, Target: -1,
					Tokens: rs.ChunkLen, MemoHit: e.memoHit,
				})
			}
			continue
		}
		s.kvLen++
		s.left--
		s.tokens++
		e.tokens++
		e.tokenLats = append(e.tokenLats, float64(stepCycles))
		if s.tokens == 1 {
			st := &e.stats[e.statIdx[s.req.ID]]
			st.FirstTokenCycle = e.now
			st.TTFT = e.now - s.req.ArrivalCycle
			e.ttfts = append(e.ttfts, float64(st.TTFT))
		}
		if e.rec != nil {
			e.rec.Record(telemetry.Event{
				Kind: telemetry.KindDecode, Cycle: e.now, Dur: stepCycles,
				Req: s.req.ID, Session: s.req.Session, Slot: rs.Slot, Target: -1,
				Tokens: s.tokens, MemoHit: e.memoHit,
			})
		}
		if s.left == 0 {
			st := &e.stats[e.statIdx[s.req.ID]]
			st.FinishCycle = e.now
			st.Tokens = s.tokens
			st.FinalKVLen = s.kvLen
			e.slots[rs.Slot] = nil
			e.kvUsed -= s.reserved
			if e.pfx != nil {
				// Retain the retired stream's final KV under its session
				// so follow-up turns can skip the shared prefix.
				e.pfx.insert(s.req.Session, int64(s.kvLen))
			}
			e.unfinished--
			if e.rec != nil {
				e.rec.Record(telemetry.Event{
					Kind: telemetry.KindRetire, Cycle: e.now,
					Dur: e.now - s.req.ArrivalCycle,
					Req: s.req.ID, Session: s.req.Session, Slot: rs.Slot, Target: -1,
					Tokens: s.tokens, KVLen: s.kvLen,
				})
			}
		}
	}
	e.sample()
}

// sample emits one KindSample gauge event per elapsed k·sampleEvery
// boundary up to the local clock. Samples are stamped on the boundary
// cycle itself — every node shares the same cycle grid, so fleet
// rollups align — and carry the engine state at the first step
// boundary at or after the sample boundary (engine state only changes
// at step boundaries; a step is never split to observe it mid-flight).
func (e *Engine) sample() {
	if e.sampleEvery <= 0 {
		return
	}
	for e.nextSample <= e.now {
		running := 0
		for _, s := range e.slots {
			if s != nil {
				running++
			}
		}
		var fill int64
		if e.pfx != nil {
			fill = e.pfx.used
		}
		e.rec.Record(telemetry.Event{
			Kind: telemetry.KindSample, Cycle: e.nextSample,
			Req: -1, Session: -1, Slot: -1, Target: -1,
			Gauges: telemetry.Gauges{
				Outstanding: e.OutstandingTokens(),
				Backlog:     e.PrefillBacklog(),
				KVUsed:      e.kvUsed,
				Running:     running,
				PrefixFill:  fill,
			},
		})
		e.nextSample += e.sampleEvery
	}
}

// AdvanceTo runs iterations until the local clock reaches t or the
// engine runs out of admissible work. A step that begins before t may
// complete past it — an iteration is never split. An empty engine
// fast-forwards only to submitted arrivals at or before t, never to t
// itself, so an idle node's clock lags the global clock and admission
// timing is unaffected by how often the router polls it.
func (e *Engine) AdvanceTo(t int64) error {
	for e.now < t && e.unfinished > 0 {
		e.admit()
		if !e.runnable() {
			if len(e.pending) == 0 || e.pending[0].ArrivalCycle > t {
				return nil
			}
			e.now = e.pending[0].ArrivalCycle
			e.sample()
			continue
		}
		if err := e.stepOnce(); err != nil {
			return err
		}
	}
	return nil
}

// Drain runs the engine to completion: every submitted request
// retires, with idle gaps fast-forwarded to the next arrival.
func (e *Engine) Drain() error {
	for e.unfinished > 0 {
		e.admit()
		if !e.runnable() {
			if len(e.pending) == 0 {
				return fmt.Errorf("serving: no runnable stream but %d requests unfinished", e.unfinished)
			}
			e.now = e.pending[0].ArrivalCycle
			e.sample()
			continue
		}
		if err := e.stepOnce(); err != nil {
			return err
		}
	}
	return nil
}

// CrashVictim is one unfinished request lost to an Engine.Crash: the
// original request, the decode tokens it had generated when the node
// died (the resume point for redispatch — those tokens were already
// streamed out and are never generated twice, but their KV must be
// recomputed), and the partial statistics the node had recorded for it
// (first-token timestamps survive the crash; the KV does not).
type CrashVictim struct {
	Req    Request
	Tokens int
	Stats  RequestStats
}

// Crash kills the node: every in-flight stream, queued request and
// not-yet-arrived submission is evicted, the KV reservation ledger and
// the session prefix cache are wiped (a rejoining node reintegrates
// cold), and the victims are returned with their decode progress so a
// fleet-level recovery policy can redispatch them elsewhere. lost is
// the decode tokens whose KV died with the node — the recompute debt
// redispatch pays as prefill. Victim statistics rows leave the engine
// entirely: the node that finally serves a victim owns its stats, and
// the victim may even be resubmitted here after a rejoin. Retired
// requests, aggregate counters and the local clock are untouched —
// work already delivered stays delivered.
func (e *Engine) Crash() (victims []CrashVictim, lost int64) {
	take := func(req Request, tokens int) {
		victims = append(victims, CrashVictim{
			Req: req, Tokens: tokens, Stats: e.stats[e.statIdx[req.ID]],
		})
		lost += int64(tokens)
	}
	for i, s := range e.slots {
		if s == nil {
			continue
		}
		take(s.req, s.tokens)
		e.slots[i] = nil
	}
	for _, r := range e.queue {
		take(r, e.resume[r.ID])
	}
	for _, r := range e.pending {
		take(r, e.resume[r.ID])
	}
	e.queue = e.queue[:0]
	e.pending = e.pending[:0]
	e.kvUsed = 0
	e.resume = nil
	e.redisp = nil
	e.unfinished = 0
	if e.pfx != nil {
		e.pfx = newPrefixCache(e.sched.PrefixCacheTokens)
	}
	if len(victims) > 0 {
		gone := make(map[int]bool, len(victims))
		for _, v := range victims {
			gone[v.Req.ID] = true
		}
		kept := e.stats[:0]
		for _, st := range e.stats {
			if !gone[st.ID] {
				kept = append(kept, st)
			}
		}
		e.stats = kept
		e.statIdx = make(map[int]int, len(e.stats))
		for i, st := range e.stats {
			e.statIdx[st.ID] = i
		}
	}
	return victims, lost
}

// SubmitResume is Submit for a request recovered from a crashed node:
// tokens decode tokens were already generated (and streamed out)
// before the crash, so on admission the engine recomputes the lost KV
// prefix — prompt plus generated tokens — as prefill and resumes
// decode where it stopped, reusing the recompute-on-preempt path.
// tokens == 0 is exactly Submit.
func (e *Engine) SubmitResume(req Request, tokens int) error {
	if tokens < 0 || tokens >= req.DecodeTokens {
		return fmt.Errorf("serving: resume point %d outside [0, %d) for request %d",
			tokens, req.DecodeTokens, req.ID)
	}
	if err := e.Submit(req); err != nil {
		return err
	}
	if tokens > 0 {
		if e.resume == nil {
			e.resume = make(map[int]int)
		}
		e.resume[req.ID] = tokens
		if e.redisp == nil {
			e.redisp = make(map[int]bool)
		}
		e.redisp[req.ID] = true
	}
	return nil
}

// HWProfile snapshots the engine's hardware-counter attribution at
// the current clock, or nil when profiling is off. Each call derives
// a fresh snapshot; callers (RunWith, the cluster's metrics assembly)
// take it once at drain.
func (e *Engine) HWProfile() *hwprof.NodeProfile {
	if e.prof == nil {
		return nil
	}
	return e.prof.Snapshot(e.now)
}

// FlushHWSamples emits the hardware-profile time-series into the
// telemetry stream: one KindHWSample event per sampling-grid bucket,
// stamped at the bucket's end boundary so hardware samples line up
// with (and sort immediately after) the gauge samples on the shared
// grid. Call once post-drain, from the goroutine that advanced the
// engine; a run without both a profiler and a recorder is a no-op.
func (e *Engine) FlushHWSamples() {
	if e.prof == nil || e.rec == nil {
		return
	}
	snap := e.prof.Snapshot(e.now)
	for i := range snap.Buckets {
		b := &snap.Buckets[i]
		e.rec.Record(telemetry.Event{
			Kind: telemetry.KindHWSample, Cycle: b.End,
			Req: -1, Session: -1, Slot: -1, Target: -1,
			HW: &telemetry.HWGauges{
				Steps:         b.Steps,
				BusyCycles:    b.BusyCycles,
				Cycles:        b.Counters.Cycles,
				DRAMBytes:     b.DRAMBytes,
				L2Hits:        b.Counters.L2Hits,
				L2Accesses:    b.Counters.L2Accesses,
				CoreMemStall:  b.Counters.CoreMemStall,
				CacheStall:    b.Counters.CacheStall,
				SliceCycles:   b.Counters.SliceCycles,
				DRAMBusCycles: b.Counters.DRAMBusCycles,
				Cores:         e.cfg.NumCores,
				Channels:      e.cfg.DRAMChannels,
				Class:         b.Class.String(),
			},
		})
	}
}

// Now returns the engine's local clock: the completion cycle of the
// last executed step (or the last idle fast-forward target).
func (e *Engine) Now() int64 { return e.now }

// Submitted returns how many requests the engine has received.
func (e *Engine) Submitted() int { return len(e.stats) }

// OutstandingTokens is the router's load signal: the decode tokens
// the node still owes — remaining budgets of running streams plus the
// full budgets of queued and not-yet-arrived submitted requests.
func (e *Engine) OutstandingTokens() int64 {
	var n int64
	for _, s := range e.slots {
		if s != nil {
			n += int64(s.left)
		}
	}
	for _, r := range e.queue {
		n += int64(r.DecodeTokens)
	}
	for _, r := range e.pending {
		n += int64(r.DecodeTokens)
	}
	return n
}

// PrefillBacklog is the router's time-to-first-token pressure signal:
// the prompt tokens the node still has to prefill before its requests
// emit their first token — the un-prefilled remainder of running
// streams plus the whole prompts of queued and not-yet-arrived
// submitted requests. Zero under the decode-only scheduler (the
// prompt is prefilled elsewhere, the node owes none of it).
func (e *Engine) PrefillBacklog() int64 {
	if e.sched.Policy == SchedDecodeOnly {
		return 0
	}
	var n int64
	for _, s := range e.slots {
		if s != nil {
			n += int64(s.prefillLeft)
		}
	}
	for _, r := range e.queue {
		n += int64(r.PromptLen)
	}
	for _, r := range e.pending {
		n += int64(r.PromptLen)
	}
	return n
}

// CachedPrefix returns the KV tokens the engine's session prefix
// cache currently retains for a session — 0 with the cache off or the
// session absent. This is the router's per-node prefix-locality
// observation (the prefix-affinity policy routes to the node holding
// the most of a session's context).
func (e *Engine) CachedPrefix(session int) int64 {
	if e.pfx == nil {
		return 0
	}
	return e.pfx.cached(session)
}

// Metrics finalises the statistics accumulated so far. PerRequest is
// ordered by request ID. Calling it mid-run reports the work done so
// far (unfinished requests keep zero Finish fields).
func (e *Engine) Metrics() *Metrics {
	m := &Metrics{
		Requests:           len(e.stats),
		Tokens:             e.tokens,
		Steps:              e.steps,
		PrefillTokens:      e.prefillTokens,
		PrefillSteps:       e.prefillSteps,
		Preemptions:        e.preemptions,
		PrefixHits:         e.prefixHits,
		PrefixMisses:       e.prefixMisses,
		PrefillTokensSaved: e.prefillSaved,
		Cycles:             e.cycles,
		Makespan:           e.now,
		Counters:           e.counters,
	}
	if lookups := e.prefixHits + e.prefixMisses; lookups > 0 {
		m.PrefixHitRate = float64(e.prefixHits) / float64(lookups)
	}
	if m.Makespan > 0 {
		m.TokensPerKCycle = 1000 * float64(m.Tokens) / float64(m.Makespan)
	}
	if m.Steps > 0 {
		m.MeanBatchOccupancy = float64(m.Tokens) / float64(m.Steps)
	}
	m.TokenLatency = Summarise(e.tokenLats)
	m.QueueDelay = Summarise(e.queueLats)
	m.TTFT = Summarise(e.ttfts)
	m.StepCache = e.cacheStats
	m.Sim = e.counters.Derive(e.cfg.FreqGHz, e.cfg.LineBytes, e.cfg.NumCores)
	m.HW = e.HWProfile()
	m.PerRequest = append([]RequestStats(nil), e.stats...)
	sort.Slice(m.PerRequest, func(a, b int) bool { return m.PerRequest[a].ID < m.PerRequest[b].ID })
	return m
}
