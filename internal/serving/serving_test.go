package serving

import (
	"reflect"
	"testing"

	"repro/internal/arbiter"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testScenario returns a small mixed-sequence-length population: eight
// requests, batch capacity four, Poisson arrivals — the acceptance
// shape of the serving engine at test size.
func testScenario(t *testing.T) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		Name:             "test/8req",
		Seed:             7,
		NumRequests:      8,
		Models:           []workload.ModelConfig{workload.Llama3_70B},
		MinPromptLen:     16,
		MaxPromptLen:     48,
		MinDecode:        2,
		MaxDecode:        3,
		MeanInterArrival: 5000,
		MaxBatch:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

func testConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes = 1 << 20 // pressure the cache at test-sized prompts
	return cfg
}

func TestScenarioGeneratorDeterminism(t *testing.T) {
	cfg := ScenarioConfig{
		Seed: 42, NumRequests: 32,
		MinPromptLen: 16, MaxPromptLen: 4096,
		MinDecode: 1, MaxDecode: 64,
		MeanInterArrival: 10000, MaxBatch: 8,
	}
	a, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different scenarios")
	}
	cfg.Seed = 43
	c, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Requests, c.Requests) {
		t.Fatal("different seeds produced identical request populations")
	}
	// Arrival order invariant.
	for i := 1; i < len(a.Requests); i++ {
		if a.Requests[i].ArrivalCycle < a.Requests[i-1].ArrivalCycle {
			t.Fatalf("requests not in arrival order at %d", i)
		}
	}
}

// TestServeDeterminism is the acceptance test of ISSUE 2: a fixed-seed
// ≥8-stream mixed-sequence-length continuous-batching scenario across
// ≥2 policies yields bit-identical serving metrics on repeated runs,
// and the metrics are internally consistent.
func TestServeDeterminism(t *testing.T) {
	scn := testScenario(t)
	policies := []struct {
		label    string
		throttle string
		arb      arbiter.Kind
	}{
		{"unopt", "none", arbiter.FCFS},
		{"dynmg+BMA", "dynmg", arbiter.BMA},
	}
	for _, pol := range policies {
		cfg := testConfig()
		cfg.Throttle = pol.throttle
		cfg.Arbiter = pol.arb
		first, err := Run(cfg, scn)
		if err != nil {
			t.Fatalf("%s: %v", pol.label, err)
		}
		second, err := Run(cfg, scn)
		if err != nil {
			t.Fatalf("%s: %v", pol.label, err)
		}
		// StepCache counters are diagnostics outside the bit-identity
		// contract (the second run hits memo entries the first filled).
		first.StripStepCache()
		second.StripStepCache()
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("%s: repeated runs disagree:\n%v\n%v", pol.label, first, second)
		}

		if first.Tokens != scn.TotalTokens() {
			t.Fatalf("%s: generated %d tokens, scenario has %d", pol.label, first.Tokens, scn.TotalTokens())
		}
		if first.TokensPerKCycle <= 0 {
			t.Fatalf("%s: non-positive throughput %v", pol.label, first.TokensPerKCycle)
		}
		tl := first.TokenLatency
		if !(tl.P50 > 0 && tl.P50 <= tl.P95 && tl.P95 <= tl.P99 && tl.P99 <= tl.Max) {
			t.Fatalf("%s: token latency percentiles unordered: %+v", pol.label, tl)
		}
		if first.Makespan < first.Cycles {
			t.Fatalf("%s: makespan %d < busy cycles %d", pol.label, first.Makespan, first.Cycles)
		}
		if first.Counters.Cycles != first.Cycles {
			t.Fatalf("%s: aggregated counter cycles %d != busy cycles %d",
				pol.label, first.Counters.Cycles, first.Cycles)
		}
		occ := first.MeanBatchOccupancy
		if occ <= 0 || occ > float64(scn.MaxBatch) {
			t.Fatalf("%s: batch occupancy %v outside (0, %d]", pol.label, occ, scn.MaxBatch)
		}
		for _, rs := range first.PerRequest {
			if rs.QueueDelay < 0 || rs.AdmitCycle < rs.ArrivalCycle || rs.FinishCycle <= rs.AdmitCycle {
				t.Fatalf("%s: inconsistent request stats %+v", pol.label, rs)
			}
			if rs.Tokens <= 0 {
				t.Fatalf("%s: request %d retired with %d tokens", pol.label, rs.ID, rs.Tokens)
			}
		}
	}
}

// TestQueueDelayUnderSaturation: with every request arriving at cycle
// 0 and a batch smaller than the population, later requests must see
// non-zero queueing delay while the first batch sees none.
func TestQueueDelayUnderSaturation(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{
		Seed: 3, NumRequests: 6,
		MinPromptLen: 16, MaxPromptLen: 32,
		MinDecode: 2, MaxDecode: 2,
		MeanInterArrival: 0, // closed batch: all at cycle 0
		MaxBatch:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(testConfig(), scn)
	if err != nil {
		t.Fatal(err)
	}
	if m.QueueDelay.Max <= 0 {
		t.Fatal("saturated scenario reported zero max queue delay")
	}
	zero := 0
	for _, rs := range m.PerRequest {
		if rs.QueueDelay == 0 {
			zero++
		}
	}
	if zero != scn.MaxBatch {
		t.Fatalf("%d requests admitted without delay, want the first batch of %d", zero, scn.MaxBatch)
	}
}

// TestTwoStreamInterleave is the trace-composition smoke test: a
// two-stream step strictly alternates the streams' thread blocks, and
// every memory address of a block falls inside its own stream's
// address region.
func TestTwoStreamInterleave(t *testing.T) {
	scn := Scenario{
		Requests: []Request{
			{ID: 0, Model: workload.Llama3_70B, PromptLen: 32, DecodeTokens: 1},
			{ID: 1, Model: workload.Llama3_70B, PromptLen: 32, DecodeTokens: 1},
		},
		MaxBatch: 2,
	}
	stride, err := StreamStride(scn)
	if err != nil {
		t.Fatal(err)
	}
	if stride == 0 || stride%(4<<20) != 0 {
		t.Fatalf("stride %d not a positive multiple of the stream alignment", stride)
	}
	streams := []StreamState{
		{Slot: 0, Base: 0, Model: workload.Llama3_70B, KVLen: 32},
		{Slot: 1, Base: stride, Model: workload.Llama3_70B, KVLen: 32},
	}
	tr, groupSize, err := ComposeStep(streams, false, 64)
	if err != nil {
		t.Fatal(err)
	}
	if groupSize != workload.Llama3_70B.G {
		t.Fatalf("groupSize = %d, want %d", groupSize, workload.Llama3_70B.G)
	}
	if len(tr.Blocks) == 0 || len(tr.Blocks)%2 != 0 {
		t.Fatalf("expected an even, non-zero block count, got %d", len(tr.Blocks))
	}
	for i, tb := range tr.Blocks {
		if tb.ID != i {
			t.Fatalf("block %d has ID %d, want sequential IDs", i, tb.ID)
		}
		// Equal-length streams compose to a strict 0,1,0,1,… rotation.
		if want := i % 2; tb.Meta.Stream != want {
			t.Fatalf("block %d belongs to stream %d, want strict interleave (stream %d)", i, tb.Meta.Stream, want)
		}
		for _, in := range tb.Insts {
			if in.Kind == 2 { // KindCompute
				continue
			}
			region := int(in.Addr / stride)
			if region != tb.Meta.Stream {
				t.Fatalf("block %d (stream %d) touches address %#x in stream %d's region",
					i, tb.Meta.Stream, in.Addr, region)
			}
		}
	}
}

// TestFirstStepMatchesRun pins FirstStep to Run's actual first
// iteration: for a scenario whose whole life is one step (everything
// arrives at cycle 0, one token each, batch ≥ population), simulating
// the composed FirstStep trace directly must reproduce Run's
// makespan and counters exactly. Any drift between FirstStep's
// admission and Run's breaks this.
func TestFirstStepMatchesRun(t *testing.T) {
	scn := Scenario{
		Requests: []Request{
			{ID: 0, Model: workload.Llama3_70B, PromptLen: 32, DecodeTokens: 1},
			{ID: 1, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1, ArrivalCycle: 0},
			{ID: 2, Model: workload.Llama3_405B, PromptLen: 48, DecodeTokens: 1},
		},
		MaxBatch: 3,
	}
	cfg := testConfig()

	m, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	states, err := FirstStep(scn)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("FirstStep admitted %d streams, want 3", len(states))
	}
	tr, groupSize, err := ComposeStep(states, scn.IncludeAV, cfg.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(cfg, tr, groupSize)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != m.Makespan || res.Cycles != m.Cycles {
		t.Fatalf("FirstStep trace simulates to %d cycles, Run reports makespan %d / busy %d",
			res.Cycles, m.Makespan, m.Cycles)
	}
	if res.Counters != m.Counters {
		t.Fatalf("FirstStep counters diverge from Run's:\n%+v\n%+v", res.Counters, m.Counters)
	}
}

// TestReferenceEquivalence extends PR 1's engine-equivalence guarantee
// to the serving scenario: the retained per-cycle reference loop and
// the event-horizon fast-forward engine produce bit-identical serving
// metrics.
func TestReferenceEquivalence(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{
		Seed: 11, NumRequests: 3,
		MinPromptLen: 16, MaxPromptLen: 32,
		MinDecode: 2, MaxDecode: 2,
		MeanInterArrival: 8000, MaxBatch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	fast := testConfig()
	ref := fast
	ref.Reference = true

	mFast, err := Run(fast, scn)
	if err != nil {
		t.Fatal(err)
	}
	mRef, err := Run(ref, scn)
	if err != nil {
		t.Fatal(err)
	}
	mFast.StripStepCache()
	mRef.StripStepCache()
	if !reflect.DeepEqual(mFast, mRef) {
		t.Fatalf("fast-forward and reference serving metrics differ:\n%v\n%v", mFast, mRef)
	}
}

// TestMixedModels: a batch mixing 70B and 405B streams runs and uses
// the larger group size for dispatch.
func TestMixedModels(t *testing.T) {
	scn := Scenario{
		Requests: []Request{
			{ID: 0, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1},
			{ID: 1, Model: workload.Llama3_405B, PromptLen: 16, DecodeTokens: 1},
		},
		MaxBatch: 2,
	}
	stride, err := StreamStride(scn)
	if err != nil {
		t.Fatal(err)
	}
	streams := []StreamState{
		{Slot: 0, Base: 0, Model: workload.Llama3_70B, KVLen: 16},
		{Slot: 1, Base: stride, Model: workload.Llama3_405B, KVLen: 16},
	}
	_, groupSize, err := ComposeStep(streams, false, 64)
	if err != nil {
		t.Fatal(err)
	}
	if groupSize != workload.Llama3_405B.G {
		t.Fatalf("groupSize = %d, want the larger model's %d", groupSize, workload.Llama3_405B.G)
	}
	m, err := Run(testConfig(), scn)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tokens != 2 {
		t.Fatalf("tokens = %d, want 2", m.Tokens)
	}
}

// TestIncludeAV: enabling the AV operator adds its traffic to every
// step.
func TestIncludeAV(t *testing.T) {
	base := Scenario{
		Requests: []Request{{ID: 0, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1}},
		MaxBatch: 1,
	}
	withAV := base
	withAV.IncludeAV = true

	mBase, err := Run(testConfig(), base)
	if err != nil {
		t.Fatal(err)
	}
	mAV, err := Run(testConfig(), withAV)
	if err != nil {
		t.Fatal(err)
	}
	if mAV.Counters.L2Accesses <= mBase.Counters.L2Accesses {
		t.Fatalf("AV step did not add traffic: %d <= %d L2 accesses",
			mAV.Counters.L2Accesses, mBase.Counters.L2Accesses)
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []ScenarioConfig{
		{NumRequests: 0, MinPromptLen: 16, MaxPromptLen: 16, MinDecode: 1, MaxDecode: 1, MaxBatch: 1},
		{NumRequests: 1, MinPromptLen: 8, MaxPromptLen: 16, MinDecode: 1, MaxDecode: 1, MaxBatch: 1},
		{NumRequests: 1, MinPromptLen: 16, MaxPromptLen: 8, MinDecode: 1, MaxDecode: 1, MaxBatch: 1},
		{NumRequests: 1, MinPromptLen: 16, MaxPromptLen: 16, MinDecode: 0, MaxDecode: 1, MaxBatch: 1},
		{NumRequests: 1, MinPromptLen: 16, MaxPromptLen: 16, MinDecode: 1, MaxDecode: 1, MaxBatch: 0},
	}
	for i, cfg := range bad {
		if _, err := NewScenario(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	if err := (Scenario{}).Validate(); err == nil {
		t.Error("empty scenario validated")
	}
	// Request IDs index the per-request result slice, so they must be
	// a permutation of [0, n).
	outOfRange := Scenario{
		Requests: []Request{{ID: 1, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1}},
		MaxBatch: 1,
	}
	if err := outOfRange.Validate(); err == nil {
		t.Error("out-of-range request ID validated")
	}
	dup := Scenario{
		Requests: []Request{
			{ID: 0, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1},
			{ID: 0, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1},
		},
		MaxBatch: 1,
	}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate request IDs validated")
	}
}
