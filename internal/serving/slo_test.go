package serving

import "testing"

// TestSLOValidation: negative deadlines are rejected, zero disables.
func TestSLOValidation(t *testing.T) {
	if err := (SLO{TTFTCycles: -1}).Validate(); err == nil {
		t.Error("negative TTFT deadline accepted")
	}
	if err := (SLO{TBTCycles: -0.5}).Validate(); err == nil {
		t.Error("negative TBT deadline accepted")
	}
	if err := (SLO{}).Validate(); err != nil {
		t.Errorf("zero SLO rejected: %v", err)
	}
	if (SLO{}).Enabled() {
		t.Error("zero SLO reports enabled")
	}
	if !(SLO{TTFTCycles: 1}).Enabled() || !(SLO{TBTCycles: 1}).Enabled() {
		t.Error("single-deadline SLO reports disabled")
	}
}

// TestGoodputClassification folds a hand-built per-request slice
// through the classifier: every violation class, the single-token
// TBT exemption, and the unfinished bucket.
func TestGoodputClassification(t *testing.T) {
	m := &Metrics{
		Makespan: 1000,
		PerRequest: []RequestStats{
			// Meets both: TTFT 100 <= 200, TBT (500-100)/(5-1) = 100 <= 150.
			{ID: 0, TTFT: 100, FirstTokenCycle: 100, FinishCycle: 500, Tokens: 5},
			// TTFT violation only.
			{ID: 1, TTFT: 300, FirstTokenCycle: 300, FinishCycle: 600, Tokens: 5},
			// TBT violation only: (900-100)/(5-1) = 200 > 150.
			{ID: 2, TTFT: 100, FirstTokenCycle: 100, FinishCycle: 900, Tokens: 5},
			// Violates both.
			{ID: 3, TTFT: 300, FirstTokenCycle: 300, FinishCycle: 950, Tokens: 3},
			// Single token: no inter-token gap, TBT exempt, meets TTFT.
			{ID: 4, TTFT: 150, FirstTokenCycle: 150, FinishCycle: 150, Tokens: 1},
			// Unfinished (dropped or still in flight): zero Finish.
			{ID: 5, TTFT: 50, FirstTokenCycle: 50, Tokens: 2},
		},
	}
	slo := SLO{TTFTCycles: 200, TBTCycles: 150}
	rep := Goodput(m, slo)
	if rep.Finished != 5 || rep.Unfinished != 1 {
		t.Errorf("finished/unfinished %d/%d, want 5/1", rep.Finished, rep.Unfinished)
	}
	if rep.MetSLO != 2 {
		t.Errorf("met SLO %d, want 2 (requests 0 and 4)", rep.MetSLO)
	}
	if rep.TTFTViolations != 2 || rep.TBTViolations != 2 {
		t.Errorf("violations ttft=%d tbt=%d, want 2/2", rep.TTFTViolations, rep.TBTViolations)
	}
	if rep.GoodTokens != 6 {
		t.Errorf("good tokens %d, want 6 (5 + 1)", rep.GoodTokens)
	}
	if rep.GoodputPerKCycle != 6 {
		t.Errorf("goodput %v, want 6 tokens/kcycle (6 tokens over 1000 cycles)", rep.GoodputPerKCycle)
	}

	// The zero SLO counts every finished request as good.
	all := Goodput(m, SLO{})
	if all.MetSLO != 5 || all.GoodTokens != 19 {
		t.Errorf("zero SLO met=%d tokens=%d, want 5/19", all.MetSLO, all.GoodTokens)
	}

	// A TBT-only SLO ignores first-token latency: requests 0, 1 and 4
	// pass.
	tbt := Goodput(m, SLO{TBTCycles: 150})
	if tbt.MetSLO != 3 || tbt.TTFTViolations != 0 {
		t.Errorf("tbt-only met=%d ttft-violations=%d, want 3/0", tbt.MetSLO, tbt.TTFTViolations)
	}
}

// TestGoodputNeverPerturbsRun: computing goodput is pure
// post-processing — the metrics object is unchanged and a run judged
// under two different SLOs is the same run.
func TestGoodputNeverPerturbsRun(t *testing.T) {
	m := &Metrics{
		Makespan:   100,
		PerRequest: []RequestStats{{ID: 0, TTFT: 10, FirstTokenCycle: 10, FinishCycle: 40, Tokens: 2}},
	}
	before := *m
	Goodput(m, SLO{TTFTCycles: 5})
	Goodput(m, SLO{TBTCycles: 1})
	if m.Makespan != before.Makespan || len(m.PerRequest) != 1 || m.PerRequest[0] != before.PerRequest[0] {
		t.Error("goodput computation mutated the metrics")
	}
}
