package serving

import (
	"math"
	"testing"

	"repro/internal/arbiter"
	"repro/internal/goldentest"
	"repro/internal/sim"
	"repro/internal/workload"
)

// schedTestScenario is the fixed population the golden-equivalence
// test runs: committed before the prefill subsystem existed, so the
// golden numbers below are the PRE-prefill engine's output.
func schedTestScenario(t *testing.T, sched SchedulerConfig) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		Name: "golden/decode-only", Seed: 7, NumRequests: 8,
		MinPromptLen: 16, MaxPromptLen: 48,
		MinDecode: 2, MaxDecode: 4,
		MeanInterArrival: 5000, MaxBatch: 3,
		Sched: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// decodeGoldenRow is the pinned slice of a decode-only serving run:
// the fields the golden file commits, byte-exact (see
// internal/goldentest).
type decodeGoldenRow struct {
	Throttle  string  `json:"throttle"`
	Arbiter   string  `json:"arbiter"`
	Makespan  int64   `json:"makespan"`
	Cycles    int64   `json:"cycles"`
	Tokens    int64   `json:"tokens"`
	Steps     int64   `json:"steps"`
	LatP50    float64 `json:"token_latency_p50"`
	LatP99    float64 `json:"token_latency_p99"`
	QueueP99  float64 `json:"queue_delay_p99"`
	L2Hits    int64   `json:"l2_hits"`
	DRAMReads int64   `json:"dram_reads"`
}

// TestDecodeOnlyGoldenEquivalence pins the acceptance criterion that
// the decode-only scheduler is bit-identical to the pre-prefill
// serving engine: the golden rows in testdata were captured from
// serving.Run on this exact scenario at the commit BEFORE the prefill
// subsystem was introduced (the original literal values are preserved
// verbatim in the JSON). Both the zero-value scheduler (what every
// pre-existing caller passes) and an explicitly spelled decode-only
// configuration must reproduce them, on the fast path and on the
// naive reference path.
func TestDecodeOnlyGoldenEquivalence(t *testing.T) {
	configs := []struct {
		throttle string
		arb      arbiter.Kind
	}{
		{"none", arbiter.FCFS},
		{"dynmg", arbiter.BMA},
	}
	scheds := []SchedulerConfig{
		{}, // the zero value every pre-existing caller passes
		{Policy: SchedDecodeOnly},
	}
	var rows []decodeGoldenRow
	for _, g := range configs {
		var pinned *decodeGoldenRow
		for _, sched := range scheds {
			for _, mode := range []StepCacheMode{StepCacheOn, StepCacheOff} {
				scn := schedTestScenario(t, sched)
				cfg := sim.DefaultConfig()
				cfg.L2SizeBytes /= 32
				cfg.Throttle = g.throttle
				cfg.Arbiter = g.arb
				m, err := RunWith(cfg, scn, RunOptions{StepCache: mode, Memo: NewStepMemo()})
				if err != nil {
					t.Fatal(err)
				}
				id := g.throttle + "/" + sched.Policy.String() + "/" + mode.String()
				row := decodeGoldenRow{
					Throttle: g.throttle, Arbiter: g.arb.String(),
					Makespan: m.Makespan, Cycles: m.Cycles,
					Tokens: m.Tokens, Steps: m.Steps,
					LatP50: m.TokenLatency.P50, LatP99: m.TokenLatency.P99,
					QueueP99: m.QueueDelay.P99,
					L2Hits:   m.Counters.L2Hits, DRAMReads: m.Counters.DRAMReads,
				}
				// Every scheduler spelling and step-cache mode must agree
				// bit for bit before the shared row is judged golden.
				if pinned == nil {
					pinned = &row
				} else if *pinned != row {
					t.Errorf("%s: diverges from the first variant:\n  first: %+v\n  got:   %+v", id, *pinned, row)
				}
				if m.PrefillTokens != 0 || m.PrefillSteps != 0 {
					t.Errorf("%s: decode-only run reports prefill work %d/%d", id, m.PrefillTokens, m.PrefillSteps)
				}
				// TTFT is fully determined: every request emits a first
				// token, so the sample must be complete.
				if len(m.PerRequest) != 8 {
					t.Fatalf("%s: %d per-request entries", id, len(m.PerRequest))
				}
				for _, rs := range m.PerRequest {
					if rs.FirstTokenCycle <= rs.AdmitCycle || rs.TTFT != rs.FirstTokenCycle-rs.ArrivalCycle {
						t.Errorf("%s: request %d TTFT bookkeeping wrong: first=%d admit=%d ttft=%d",
							id, rs.ID, rs.FirstTokenCycle, rs.AdmitCycle, rs.TTFT)
					}
				}
			}
		}
		rows = append(rows, *pinned)
	}
	goldentest.Compare(t, "testdata/decode_only.golden.json", rows)
}

// saturatedScenario is the committed 8-stream saturation scenario of
// the chunked-vs-prefill-first acceptance criterion: every request
// arrives at cycle 0 against a 4-slot batch, so admission, prefill and
// decode all contend.
func saturatedScenario(t *testing.T, sched SchedulerConfig) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		Name: "sat8", Seed: 11, NumRequests: 8,
		MinPromptLen: 16, MaxPromptLen: 48,
		MinDecode: 2, MaxDecode: 4,
		MeanInterArrival: 0, MaxBatch: 4,
		Sched: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestChunkedBeatsPrefillFirstUnderSaturation is the acceptance
// scenario: on a saturated 8-stream population the chunked scheduler
// reports finite TTFT percentiles that strictly improve on
// prefill-first at p50, p95 and p99. Chunked co-schedules prompt
// chunks with running decode tokens in the same simulated step, so
// decode streams keep retiring (freeing slots and KV) while prompts
// prefill; prefill-first serialises monolithic prompt passes before
// any decode progress.
func TestChunkedBeatsPrefillFirstUnderSaturation(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	cfg.Throttle = "dynmg"
	cfg.Arbiter = arbiter.BMA

	pf, err := Run(cfg, saturatedScenario(t, SchedulerConfig{Policy: SchedPrefillFirst}))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Run(cfg, saturatedScenario(t, SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16}))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct {
		name   string
		pf, ch float64
	}{
		{"p50", pf.TTFT.P50, ch.TTFT.P50},
		{"p95", pf.TTFT.P95, ch.TTFT.P95},
		{"p99", pf.TTFT.P99, ch.TTFT.P99},
	} {
		if p.ch <= 0 || math.IsInf(p.ch, 0) || math.IsNaN(p.ch) {
			t.Errorf("chunked TTFT %s not finite-positive: %v", p.name, p.ch)
		}
		if p.pf <= 0 || math.IsInf(p.pf, 0) || math.IsNaN(p.pf) {
			t.Errorf("prefill-first TTFT %s not finite-positive: %v", p.name, p.pf)
		}
		if !(p.ch < p.pf) {
			t.Errorf("chunked TTFT %s = %v not strictly below prefill-first %v", p.name, p.ch, p.pf)
		}
	}
	// Both schedulers do the same prompt work in total.
	if pf.PrefillTokens != ch.PrefillTokens {
		t.Errorf("prefill token totals differ: prefill-first %d, chunked %d", pf.PrefillTokens, ch.PrefillTokens)
	}
	// Chunked splits it across more passes.
	if ch.PrefillSteps <= pf.PrefillSteps {
		t.Errorf("chunked prefill steps %d not above prefill-first %d", ch.PrefillSteps, pf.PrefillSteps)
	}
}

// TestSchedValidation covers the scheduler-configuration edge cases:
// zero-chunk rejection, sub-floor chunks, chunk set on non-chunked
// policies, negative capacity, and requests that can never fit the
// capacity.
func TestSchedValidation(t *testing.T) {
	bad := []SchedulerConfig{
		{Policy: SchedChunked},                  // zero chunk
		{Policy: SchedChunked, ChunkTokens: 8},  // below the mapping floor
		{Policy: SchedChunked, ChunkTokens: -1}, // negative
		{Policy: SchedDecodeOnly, ChunkTokens: 32},
		{Policy: SchedPrefillFirst, ChunkTokens: 32},
		{Policy: SchedDecodeOnly, KVCapTokens: -1},
		{Policy: SchedPolicy(99)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("config %+v accepted, want error", s)
		}
	}
	good := []SchedulerConfig{
		{},
		{Policy: SchedChunked, ChunkTokens: 16},
		{Policy: SchedPrefillFirst, KVCapTokens: 64},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", s, err)
		}
	}
	// A request whose lifetime KV footprint exceeds the capacity can
	// never be admitted — scenario validation must reject it up front
	// rather than letting Drain deadlock.
	scn := Scenario{
		Requests: []Request{{ID: 0, Model: workload.Llama3_70B, PromptLen: 64, DecodeTokens: 8}},
		MaxBatch: 2,
		Sched:    SchedulerConfig{KVCapTokens: 71},
	}
	if err := scn.Validate(); err == nil {
		t.Error("scenario with an inadmissible request accepted")
	}
	scn.Sched.KVCapTokens = 72 // exactly the lifetime footprint
	if err := scn.Validate(); err != nil {
		t.Errorf("exact-fit request rejected: %v", err)
	}
}

// TestPromptAtMappingFloor runs prompts of exactly 16 tokens — the KV
// mapping floor — through both prefill schedulers: the first (and
// only) chunk's pass attends over exactly 16 keys, the smallest legal
// prefill operator.
func TestPromptAtMappingFloor(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	for _, sched := range []SchedulerConfig{
		{Policy: SchedPrefillFirst},
		{Policy: SchedChunked, ChunkTokens: 16},
	} {
		scn, err := NewScenario(ScenarioConfig{
			Name: "floor", Seed: 5, NumRequests: 3,
			MinPromptLen: 16, MaxPromptLen: 16,
			MinDecode: 2, MaxDecode: 2,
			MeanInterArrival: 0, MaxBatch: 2,
			Sched: sched,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := Run(cfg, scn)
		if err != nil {
			t.Fatalf("%v: %v", sched.Policy, err)
		}
		if m.PrefillTokens != 3*16 {
			t.Errorf("%v: prefilled %d tokens, want 48", sched.Policy, m.PrefillTokens)
		}
		if m.Tokens != 6 {
			t.Errorf("%v: decoded %d tokens, want 6", sched.Policy, m.Tokens)
		}
		for _, rs := range m.PerRequest {
			if rs.FinalKVLen != 16+2 {
				t.Errorf("%v: request %d final KV %d, want 18", sched.Policy, rs.ID, rs.FinalKVLen)
			}
			if rs.TTFT <= 0 {
				t.Errorf("%v: request %d TTFT %d", sched.Policy, rs.ID, rs.TTFT)
			}
		}
	}
}

// TestKVCapacityExactlyExhausted pins the boundary behaviour of the
// capacity gate: a capacity equal to the combined lifetime footprint
// of two requests admits both at cycle 0; one token less forces the
// second to queue until the first retires and releases its
// reservation — admission exactly at the retirement boundary.
func TestKVCapacityExactlyExhausted(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	reqs := func() []Request {
		return []Request{
			{ID: 0, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 2},
			{ID: 1, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 2},
		}
	}
	run := func(kvcap int64) *Metrics {
		scn := Scenario{
			Name:     "kvcap",
			Requests: reqs(),
			MaxBatch: 2,
			Sched:    SchedulerConfig{KVCapTokens: kvcap},
		}
		m, err := Run(cfg, scn)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// 2 × (16 + 2) = 36: exactly exhausted, both admitted immediately.
	exact := run(36)
	for _, rs := range exact.PerRequest {
		if rs.AdmitCycle != 0 || rs.QueueDelay != 0 {
			t.Errorf("kvcap=36: request %d admit=%d queue=%d, want both 0", rs.ID, rs.AdmitCycle, rs.QueueDelay)
		}
	}
	if exact.MeanBatchOccupancy != 2 {
		t.Errorf("kvcap=36: occupancy %v, want 2 (both streams in every step)", exact.MeanBatchOccupancy)
	}
	// One token short: request 1 waits for request 0's reservation.
	short := run(35)
	r0, r1 := short.PerRequest[0], short.PerRequest[1]
	if r0.AdmitCycle != 0 {
		t.Fatalf("kvcap=35: request 0 admit=%d, want 0", r0.AdmitCycle)
	}
	if r1.AdmitCycle != r0.FinishCycle {
		t.Errorf("kvcap=35: request 1 admitted at %d, want request 0's finish %d", r1.AdmitCycle, r0.FinishCycle)
	}
	if r1.QueueDelay != r0.FinishCycle {
		t.Errorf("kvcap=35: request 1 queue delay %d, want %d", r1.QueueDelay, r0.FinishCycle)
	}
	if short.MeanBatchOccupancy != 1 {
		t.Errorf("kvcap=35: occupancy %v, want 1 (strictly serial)", short.MeanBatchOccupancy)
	}
}

// TestChunkAccounting pins the chunk arithmetic: a 40-token prompt
// under 16-token chunks takes passes of 16, 16 and 8 tokens, then
// decodes.
func TestChunkAccounting(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	scn := Scenario{
		Name: "chunks",
		Requests: []Request{
			{ID: 0, Model: workload.Llama3_70B, PromptLen: 40, DecodeTokens: 3},
		},
		MaxBatch: 1,
		Sched:    SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16},
	}
	m, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	if m.PrefillTokens != 40 || m.PrefillSteps != 3 {
		t.Errorf("prefill %d tokens in %d steps, want 40 in 3", m.PrefillTokens, m.PrefillSteps)
	}
	if m.Steps != 3+3 {
		t.Errorf("steps %d, want 6 (3 chunks + 3 decode tokens)", m.Steps)
	}
	if rs := m.PerRequest[0]; rs.FinalKVLen != 43 {
		t.Errorf("final KV %d, want 43", rs.FinalKVLen)
	}
	// Same prompt under prefill-first: one monolithic pass.
	scn.Sched = SchedulerConfig{Policy: SchedPrefillFirst}
	pm, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	if pm.PrefillTokens != 40 || pm.PrefillSteps != 1 {
		t.Errorf("prefill-first: %d tokens in %d steps, want 40 in 1", pm.PrefillTokens, pm.PrefillSteps)
	}
}

// TestStepSignaturePrefillComponent checks the memo-key phase
// component: decode-only running sets render byte-identically to the
// pre-prefill format (no phase marker), while a prefill pass of the
// same (slot, model, kv) state keys differently, and differently per
// chunk length.
func TestStepSignaturePrefillComponent(t *testing.T) {
	dec := []StreamState{{Slot: 0, Model: workload.Llama3_70B, KVLen: 32, Base: 0}}
	pre := []StreamState{{Slot: 0, Model: workload.Llama3_70B, KVLen: 32, Base: 0, ChunkLen: 16}}
	pre2 := []StreamState{{Slot: 0, Model: workload.Llama3_70B, KVLen: 32, Base: 0, ChunkLen: 32}}

	sd, sp, sp2 := StepSignature("c", dec), StepSignature("c", pre), StepSignature("c", pre2)
	if sd == sp || sp == sp2 || sd == sp2 {
		t.Fatalf("signatures not distinct: %q %q %q", sd, sp, sp2)
	}
	// The decode rendering carries no phase marker — byte-compatible
	// with the pre-prefill key format.
	if want := "c|0:llama3-70b:8,8,128,2,4:32@0"; sd != want {
		t.Errorf("decode signature %q, want the legacy rendering %q", sd, want)
	}
	// Mixed steps canonicalise by slot regardless of presentation
	// order, phases preserved.
	mixA := []StreamState{
		{Slot: 1, Model: workload.Llama3_70B, KVLen: 48, Base: 4 << 20, ChunkLen: 16},
		{Slot: 0, Model: workload.Llama3_70B, KVLen: 32, Base: 0},
	}
	mixB := []StreamState{mixA[1], mixA[0]}
	if a, b := StepSignature("c", mixA), StepSignature("c", mixB); a != b {
		t.Errorf("mixed-phase canonicalisation broke: %q vs %q", a, b)
	}
}

// TestPrefillStepCacheEquivalence runs the same chunked scenario on
// the fast path and the naive reference path: prefill passes must be
// bit-identical through the memo + arena + reset pipeline exactly like
// decode steps.
func TestPrefillStepCacheEquivalence(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.L2SizeBytes /= 32
	for _, sched := range []SchedulerConfig{
		{Policy: SchedChunked, ChunkTokens: 16},
		{Policy: SchedPrefillFirst},
	} {
		scn := saturatedScenario(t, sched)
		var got []*Metrics
		for _, mode := range []StepCacheMode{StepCacheOn, StepCacheNoMemo, StepCacheOff} {
			m, err := RunWith(cfg, scn, RunOptions{StepCache: mode, Memo: NewStepMemo()})
			if err != nil {
				t.Fatalf("%v/%v: %v", sched.Policy, mode, err)
			}
			m.StripStepCache()
			got = append(got, m)
		}
		for i := 1; i < len(got); i++ {
			if got[0].Makespan != got[i].Makespan || got[0].Cycles != got[i].Cycles ||
				got[0].Counters != got[i].Counters || got[0].TTFT != got[i].TTFT {
				t.Errorf("%v: mode %d diverged from mode 0", sched.Policy, i)
			}
		}
		// Run the fast path twice on one shared memo: the second run
		// replays every step and must stay bit-identical.
		memo := NewStepMemo()
		a, err := RunWith(cfg, scn, RunOptions{Memo: memo})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunWith(cfg, scn, RunOptions{Memo: memo})
		if err != nil {
			t.Fatal(err)
		}
		if b.StepCache.MemoHits == 0 || b.StepCache.MemoMisses != 0 {
			t.Errorf("%v: warm rerun memo %d/%d, want all hits", sched.Policy,
				b.StepCache.MemoHits, b.StepCache.MemoHits+b.StepCache.MemoMisses)
		}
		a.StripStepCache()
		b.StripStepCache()
		if a.Makespan != b.Makespan || a.Counters != b.Counters || a.TTFT != b.TTFT {
			t.Errorf("%v: warm rerun diverged", sched.Policy)
		}
	}
}
