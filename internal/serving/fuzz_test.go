// Native fuzz targets for the flag-value parsers. Two invariants per
// parser: no input panics, and every accepted input yields a
// configuration that passes its own Validate (the CLIs rely on parse
// success implying a runnable config). The enum parsers additionally
// round-trip: Parse(p.String()) == p, so the canonical names the CLIs
// print are always re-parseable.
//
// Run as smokes via scripts/fuzz_smoke.sh, or at length with
// go test -fuzz FuzzParseArrival ./internal/serving.

package serving

import (
	"math"
	"testing"
)

func FuzzParseArrival(f *testing.F) {
	// Seeds: every shape the unit tests and the -arrival docs exercise,
	// plus malformed edges (empty fields, bad numbers, trailing colons).
	for _, s := range []string{
		"", "poisson",
		"burst:40000:0.25:6", "burst:80000:0.4:6",
		"ramp:200000:4", "diurnal:120000:3",
		"trace:30000:1,4,0.5,8", "trace:30000:1",
		"burst:40000:0.25", "burst:x:0.25:6", "burst:40000:1.5:6",
		"ramp:0:4", "diurnal:120000:NaN", "trace:30000:",
		"trace:30000:1,,2", "poisson:1", ":", "burst:Inf:0.5:2",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := ParseArrival(s)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseArrival(%q) accepted an invalid config %+v: %v", s, cfg, verr)
		}
		// The instantaneous rate must stay usable at any clock for
		// accepted configs — a non-positive or non-finite multiplier
		// would corrupt the arrival draw downstream.
		for _, clock := range []float64{0, 1, 1e6, 1e12} {
			if r := cfg.rate(clock); !(r > 0) || math.IsInf(r, 0) || math.IsNaN(r) {
				t.Fatalf("ParseArrival(%q): rate(%g) = %g", s, clock, r)
			}
		}
	})
}

func FuzzParseSchedPolicy(f *testing.F) {
	for _, s := range []string{
		"decode-only", "prefill-first", "chunked", "", "Chunked", "decode", "chunked ",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseSchedPolicy(s)
		if err != nil {
			return
		}
		back, err := ParseSchedPolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("ParseSchedPolicy(%q) = %v, which does not round-trip: %v, %v", s, p, back, err)
		}
	})
}

func FuzzParsePreemptPolicy(f *testing.F) {
	for _, s := range []string{
		"off", "", "newest", "fewest-tokens", "oldest", "NEWEST", "fewest",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePreemptPolicy(s)
		if err != nil {
			return
		}
		back, err := ParsePreemptPolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("ParsePreemptPolicy(%q) = %v, which does not round-trip: %v, %v", s, p, back, err)
		}
	})
}
