// Scenario construction: the request population and the fixed-seed
// arrival process. Everything here is pure integer/float arithmetic on
// an explicit PRNG state, so a (seed, config) pair always produces the
// same Scenario — the serving determinism guarantee starts at
// workload generation, not just at simulation.

package serving

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/workload"
)

// minKVLen is the smallest legal KV-cache length for a decode stream:
// one output cache line of fp32 attention scores (64 B / 4 B = 16
// sequence positions), the mapping legality floor of
// dataflow.Mapping.Validate.
const minKVLen = 16

// sessionSeedMix decorrelates the session-assignment stream from the
// request-population stream drawn from the same user seed.
const sessionSeedMix = 0x5e5510aded5eed

// Request is one request of a serving scenario: a model, the prompt
// length, the number of tokens to generate, and the cycle at which it
// arrives at the server. What PromptLen means operationally depends on
// the scenario's scheduler: under the decode-only policy the prompt is
// assumed prefilled elsewhere and PromptLen is the KV-cache length
// when decoding starts; under the prefill policies the engine runs the
// PromptLen-token prefill itself before the first decode step.
type Request struct {
	ID           int
	Model        workload.ModelConfig
	PromptLen    int   // prompt length in tokens (KV length when decode starts)
	DecodeTokens int   // tokens to generate before retiring
	ArrivalCycle int64 // arrival time in core cycles
	// Session identifies the conversation the request belongs to — the
	// unit of KV/prefix-cache locality the session-affinity and
	// prefix-affinity routers exploit. Requests of one session share
	// prompt-prefix state.
	Session int
	// PrefixLen is how many leading prompt tokens are shared with the
	// session's previous turn (0 = a fresh conversation). A prefix
	// cache holding at least that much of the session's retained KV
	// lets prefill skip the shared portion; with the cache off (or on
	// a miss) the field is inert and the whole prompt prefills.
	PrefixLen int
}

// Validate checks one request.
func (r Request) Validate() error {
	if err := r.Model.Validate(); err != nil {
		return err
	}
	switch {
	case r.PromptLen < minKVLen:
		return fmt.Errorf("serving: request %d: PromptLen %d below the mapping floor %d", r.ID, r.PromptLen, minKVLen)
	case r.DecodeTokens <= 0:
		return fmt.Errorf("serving: request %d: DecodeTokens must be positive, got %d", r.ID, r.DecodeTokens)
	case r.ArrivalCycle < 0:
		return fmt.Errorf("serving: request %d: ArrivalCycle must be non-negative, got %d", r.ID, r.ArrivalCycle)
	case r.Session < 0:
		return fmt.Errorf("serving: request %d: Session must be non-negative, got %d", r.ID, r.Session)
	case r.PrefixLen < 0 || r.PrefixLen > r.PromptLen:
		return fmt.Errorf("serving: request %d: PrefixLen %d outside [0, PromptLen %d]", r.ID, r.PrefixLen, r.PromptLen)
	}
	return nil
}

// Scenario is a complete serving workload: a request population plus
// the continuous-batching limit. Requests are admitted FCFS in
// arrival order (ties broken by ID) whenever a batch slot is free.
type Scenario struct {
	Name     string
	Requests []Request
	// MaxBatch bounds how many decode streams run concurrently — the
	// batch capacity of the continuous-batching scheduler.
	MaxBatch int
	// IncludeAV appends the attention-value operator (AttProb·V) to
	// every stream's per-token work, so a token step exercises both
	// KV-cache-bound kernels of the decode stage.
	IncludeAV bool
	// Sched selects the prefill/decode co-scheduling policy and the
	// KV-capacity admission bound. The zero value is decode-only with
	// unlimited KV — the pre-prefill engine behaviour, bit-identical.
	Sched SchedulerConfig
}

// Validate checks the scenario. Request IDs must form a permutation
// of [0, len(Requests)): the engine uses them as indices into the
// per-request result slice and as FCFS tie-breakers.
func (s Scenario) Validate() error {
	if len(s.Requests) == 0 {
		return fmt.Errorf("serving: scenario has no requests")
	}
	if s.MaxBatch <= 0 {
		return fmt.Errorf("serving: MaxBatch must be positive, got %d", s.MaxBatch)
	}
	if err := s.Sched.Validate(); err != nil {
		return err
	}
	seen := make([]bool, len(s.Requests))
	for _, r := range s.Requests {
		if err := r.Validate(); err != nil {
			return err
		}
		if err := s.Sched.CheckAdmissible(r); err != nil {
			return err
		}
		if r.ID < 0 || r.ID >= len(s.Requests) {
			return fmt.Errorf("serving: request ID %d outside [0, %d)", r.ID, len(s.Requests))
		}
		if seen[r.ID] {
			return fmt.Errorf("serving: duplicate request ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	return nil
}

// MaxKVLen returns the largest KV-cache length any request reaches
// (prompt plus every generated token) — the per-stream address-space
// sizing bound.
func (s Scenario) MaxKVLen() int {
	max := 0
	for _, r := range s.Requests {
		if kv := r.PromptLen + r.DecodeTokens; kv > max {
			max = kv
		}
	}
	return max
}

// TotalTokens returns the number of tokens the scenario generates.
func (s Scenario) TotalTokens() int64 {
	var n int64
	for _, r := range s.Requests {
		n += int64(r.DecodeTokens)
	}
	return n
}

// ScenarioConfig parameterises the fixed-seed scenario generator: a
// request count, a model mix, uniform prompt-length and decode-length
// ranges, and a Poisson (exponential inter-arrival) arrival process.
type ScenarioConfig struct {
	Name string
	Seed uint64
	// NumRequests is the population size.
	NumRequests int
	// Models is the per-request model mix, sampled uniformly. Empty
	// means Llama3-70B only.
	Models []workload.ModelConfig
	// MinPromptLen/MaxPromptLen bound the uniform prompt-length draw
	// (inclusive). MinPromptLen must be >= 16 (mapping legality).
	MinPromptLen, MaxPromptLen int
	// MinDecode/MaxDecode bound the uniform decode-length draw
	// (inclusive).
	MinDecode, MaxDecode int
	// MeanInterArrival is the mean of the exponential inter-arrival
	// gap in cycles. Zero means every request arrives at cycle 0 (a
	// closed-batch scenario).
	MeanInterArrival float64
	// Arrival shapes the arrival process around the base Poisson rate
	// (burst, ramp, diurnal, rate trace — see ArrivalConfig). The zero
	// value is plain Poisson, bit-identical to the pre-overload
	// generator. Ignored when MeanInterArrival is zero.
	Arrival ArrivalConfig
	// MaxBatch is the continuous-batching capacity.
	MaxBatch int
	// IncludeAV adds the AV operator to every token step.
	IncludeAV bool
	// Sched is the prefill/decode scheduler configuration (zero value:
	// decode-only, unlimited KV).
	Sched SchedulerConfig
	// NumSessions is how many distinct sessions the population is drawn
	// from; each request is assigned one uniformly from a second
	// splitmix64 stream derived from Seed, so the population draw is
	// unchanged by the session count. Zero means every request is its
	// own session (no prefix locality to exploit).
	NumSessions int
	// SessionDepth turns sessions into multi-turn conversations: when
	// at least 2, consecutive requests of one session form follow-up
	// chains of up to SessionDepth turns, each turn's prompt extending
	// the previous turn's full context (prompt plus generated tokens)
	// with a fresh suffix drawn from the [MinPromptLen, MaxPromptLen]
	// range. Follow-up turns carry PrefixLen = the shared context, so a
	// prefix cache can skip re-prefilling it. 0 or 1 leaves every
	// request a fresh single-turn prompt — bit-identical to the
	// pre-session generator. Chaining consumes no RNG draws, so the
	// arrival process and the per-turn suffix draws are identical at
	// every depth.
	SessionDepth int
}

// NewScenario draws a Scenario from the config deterministically:
// the same config (including Seed) always yields the same requests
// and arrival times, independent of platform or Go release — the
// generator uses an explicit splitmix64 stream rather than math/rand.
func NewScenario(cfg ScenarioConfig) (Scenario, error) {
	if cfg.NumRequests <= 0 {
		return Scenario{}, fmt.Errorf("serving: NumRequests must be positive, got %d", cfg.NumRequests)
	}
	if cfg.MinPromptLen < minKVLen {
		return Scenario{}, fmt.Errorf("serving: MinPromptLen %d below the mapping floor %d", cfg.MinPromptLen, minKVLen)
	}
	if cfg.MaxPromptLen < cfg.MinPromptLen {
		return Scenario{}, fmt.Errorf("serving: MaxPromptLen %d < MinPromptLen %d", cfg.MaxPromptLen, cfg.MinPromptLen)
	}
	if cfg.MinDecode <= 0 || cfg.MaxDecode < cfg.MinDecode {
		return Scenario{}, fmt.Errorf("serving: decode range [%d, %d] invalid", cfg.MinDecode, cfg.MaxDecode)
	}
	if cfg.MaxBatch <= 0 {
		return Scenario{}, fmt.Errorf("serving: MaxBatch must be positive, got %d", cfg.MaxBatch)
	}
	if cfg.NumSessions < 0 {
		return Scenario{}, fmt.Errorf("serving: NumSessions must be non-negative, got %d", cfg.NumSessions)
	}
	if cfg.SessionDepth < 0 {
		return Scenario{}, fmt.Errorf("serving: SessionDepth must be non-negative, got %d", cfg.SessionDepth)
	}
	models := cfg.Models
	if len(models) == 0 {
		models = []workload.ModelConfig{workload.Llama3_70B}
	}
	for _, m := range models {
		if err := m.Validate(); err != nil {
			return Scenario{}, err
		}
	}

	if err := cfg.Sched.Validate(); err != nil {
		return Scenario{}, err
	}
	if err := cfg.Arrival.Validate(); err != nil {
		return Scenario{}, err
	}

	r := Rand{State: cfg.Seed}
	scn := Scenario{
		Name:      cfg.Name,
		MaxBatch:  cfg.MaxBatch,
		IncludeAV: cfg.IncludeAV,
		Sched:     cfg.Sched,
		Requests:  make([]Request, 0, cfg.NumRequests),
	}
	var clock float64
	for i := 0; i < cfg.NumRequests; i++ {
		if cfg.MeanInterArrival > 0 {
			gap := r.ExpFloat64() * cfg.MeanInterArrival
			// Nonhomogeneous modulation rescales the SAME exponential
			// draw by the instantaneous rate multiplier, so every
			// arrival shape consumes the RNG identically and the
			// poisson path (rate ≡ 1) is bit-identical to before.
			if scale := cfg.Arrival.rate(clock); scale != 1 {
				gap /= scale
			}
			clock += gap
		}
		scn.Requests = append(scn.Requests, Request{
			ID:           i,
			Model:        models[r.Intn(len(models))],
			PromptLen:    cfg.MinPromptLen + r.Intn(cfg.MaxPromptLen-cfg.MinPromptLen+1),
			DecodeTokens: cfg.MinDecode + r.Intn(cfg.MaxDecode-cfg.MinDecode+1),
			ArrivalCycle: int64(clock),
		})
	}
	// The generator emits requests in arrival order already, but keep
	// the invariant explicit for hand-built populations run through
	// the same engine.
	sortRequests(scn.Requests)
	// Session assignment comes from its own stream, drawn in arrival
	// order, so the population above is untouched by the session knobs.
	sr := Rand{State: cfg.Seed ^ sessionSeedMix}
	for i := range scn.Requests {
		if cfg.NumSessions > 0 {
			scn.Requests[i].Session = sr.Intn(cfg.NumSessions)
		} else {
			// Every request its own session; no prefix locality.
			scn.Requests[i].Session = scn.Requests[i].ID
		}
	}
	if cfg.SessionDepth > 1 {
		chainSessions(scn.Requests, cfg.SessionDepth)
	}
	return scn, nil
}

// chainSessions rewrites the population into multi-turn conversations:
// within each session (in arrival order) turn t>0 extends turn t-1's
// full context — the previous prompt plus its generated tokens — with
// the turn's own drawn prompt as the fresh suffix, and records the
// shared context as PrefixLen. After depth turns the chain restarts
// from a fresh context (a new conversation under the same session
// identity). Pure arithmetic on already-drawn fields: no RNG.
func chainSessions(reqs []Request, depth int) {
	type conv struct {
		turns int
		kv    int // previous turn's PromptLen + DecodeTokens
	}
	convs := make(map[int]conv)
	for i := range reqs {
		r := &reqs[i]
		c := convs[r.Session]
		if c.turns > 0 {
			r.PrefixLen = c.kv
			r.PromptLen = c.kv + r.PromptLen
		}
		c.turns++
		c.kv = r.PromptLen + r.DecodeTokens
		if c.turns >= depth {
			c = conv{}
		}
		convs[r.Session] = c
	}
}

// sortRequests orders requests by arrival cycle, ties by ID — the
// FCFS admission order of the engine.
func sortRequests(reqs []Request) {
	sort.SliceStable(reqs, func(a, b int) bool {
		if reqs[a].ArrivalCycle != reqs[b].ArrivalCycle {
			return reqs[a].ArrivalCycle < reqs[b].ArrivalCycle
		}
		return reqs[a].ID < reqs[b].ID
	})
}

// Rand is a splitmix64 generator. The sequence is fixed by the
// algorithm itself (not by math/rand's implementation), so scenarios
// are reproducible across Go releases — a requirement for the
// fixed-seed determinism tests. It is exported so the cluster
// workload generator and router draw from the same deterministic
// stream family.
type Rand struct{ State uint64 }

// Uint64 advances the stream and returns the next 64-bit draw.
func (r *Rand) Uint64() uint64 {
	r.State += 0x9e3779b97f4a7c15
	z := r.State
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed float with mean 1.
func (r *Rand) ExpFloat64() float64 {
	// 53 uniform mantissa bits in (0, 1]; the +1 excludes zero so the
	// log is finite.
	u := float64(r.Uint64()>>11+1) / (1 << 53)
	return -math.Log(u)
}
