// Step-cache guarantees: canonical signatures (slot-order invariant,
// sensitive to every simulated degree of freedom) and bit-identical
// serving metrics across the three execution paths — full fast path,
// arena+reset without memo, and the naive reference.

package serving

import (
	"reflect"
	"testing"

	"repro/internal/arbiter"
	"repro/internal/throttle"
	"repro/internal/workload"
)

func sigStreams() []StreamState {
	const stride = uint64(4 << 20)
	return []StreamState{
		{Slot: 0, Base: 0, Model: workload.Llama3_70B, KVLen: 32},
		{Slot: 1, Base: 1 * stride, Model: workload.Llama3_405B, KVLen: 48},
		{Slot: 2, Base: 2 * stride, Model: workload.Llama3_70B, KVLen: 16},
	}
}

// TestStepSignatureCanonical: the signature is a pure function of the
// running SET — presenting the same streams in any order yields the
// same key.
func TestStepSignatureCanonical(t *testing.T) {
	streams := sigStreams()
	want := StepSignature("prefix", streams)
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		shuffled := []StreamState{streams[p[0]], streams[p[1]], streams[p[2]]}
		if got := StepSignature("prefix", shuffled); got != want {
			t.Fatalf("permutation %v changed the signature:\n%q\n%q", p, got, want)
		}
	}
}

// TestStepSignatureSensitivity: changing any simulated degree of
// freedom — kvLen, model, slot, base, or the config prefix — changes
// the key.
func TestStepSignatureSensitivity(t *testing.T) {
	base := sigStreams()
	want := StepSignature("prefix", base)

	mutate := func(name string, f func([]StreamState)) {
		streams := append([]StreamState(nil), base...)
		f(streams)
		if got := StepSignature("prefix", streams); got == want {
			t.Errorf("%s did not change the signature", name)
		}
	}
	mutate("kvLen", func(s []StreamState) { s[1].KVLen++ })
	mutate("model", func(s []StreamState) { s[0].Model = workload.Llama3_405B })
	mutate("slot", func(s []StreamState) { s[2].Slot = 3 })
	mutate("base", func(s []StreamState) { s[2].Base += 4 << 20 })
	mutate("drop-stream", func(s []StreamState) { s[2] = s[0] })

	if got := StepSignature("other-prefix", base); got == want {
		t.Error("config prefix did not change the signature")
	}
}

// TestConfigSignature: the prefix distinguishes configs (including
// dereferenced controller parameter blocks), AV inclusion and stride,
// and is identical for equal configs regardless of parameter-pointer
// identity.
func TestConfigSignature(t *testing.T) {
	cfg := testConfig()
	a := configSignature(cfg, false, 4<<20)
	if b := configSignature(cfg, false, 4<<20); b != a {
		t.Fatal("equal configs produced different prefixes")
	}

	mod := cfg
	mod.Arbiter = arbiter.BMA
	if configSignature(mod, false, 4<<20) == a {
		t.Error("arbiter change did not change the prefix")
	}
	if configSignature(cfg, true, 4<<20) == a {
		t.Error("AV inclusion did not change the prefix")
	}
	if configSignature(cfg, false, 8<<20) == a {
		t.Error("stride change did not change the prefix")
	}

	// Parameter blocks are compared by value, never by pointer.
	p1 := cfg
	params1 := throttle.DefaultDynMGParams()
	p1.DynMG = &params1
	p2 := cfg
	params2 := throttle.DefaultDynMGParams()
	p2.DynMG = &params2
	if configSignature(p1, false, 4<<20) != configSignature(p2, false, 4<<20) {
		t.Error("equal DynMG params at different addresses produced different prefixes")
	}
	params2.SamplingPeriod++
	if configSignature(p1, false, 4<<20) == configSignature(p2, false, 4<<20) {
		t.Error("DynMG param change did not change the prefix")
	}
}

// TestStepCacheEquivalence is the serving half of the ISSUE 4
// acceptance: for every execution path — full fast path on a private
// memo, arena+reset without memo, and the naive reference — the
// serving metrics are bit-identical, across policies.
func TestStepCacheEquivalence(t *testing.T) {
	scn := testScenario(t)
	policies := []struct {
		label    string
		throttle string
		arb      arbiter.Kind
	}{
		{"unopt", "none", arbiter.FCFS},
		{"dynmg+BMA", "dynmg", arbiter.BMA},
		{"cobrra", "none", arbiter.COBRRA},
	}
	for _, pol := range policies {
		cfg := testConfig()
		cfg.Throttle = pol.throttle
		cfg.Arbiter = pol.arb

		naive, err := RunWith(cfg, scn, RunOptions{StepCache: StepCacheOff})
		if err != nil {
			t.Fatalf("%s naive: %v", pol.label, err)
		}
		naive.StripStepCache()

		nomemo, err := RunWith(cfg, scn, RunOptions{StepCache: StepCacheNoMemo})
		if err != nil {
			t.Fatalf("%s nomemo: %v", pol.label, err)
		}
		if nomemo.StepCache.MemoHits != 0 || nomemo.StepCache.MemoMisses != 0 {
			t.Fatalf("%s: nomemo path consulted the memo: %+v", pol.label, nomemo.StepCache)
		}
		if nomemo.StepCache.SimResets != nomemo.Steps-1 {
			t.Fatalf("%s: nomemo path executed %d steps but reset %d times",
				pol.label, nomemo.Steps, nomemo.StepCache.SimResets)
		}
		nomemo.StripStepCache()
		if !reflect.DeepEqual(nomemo, naive) {
			t.Fatalf("%s: arena+reset path diverges from naive:\n%v\n%v", pol.label, nomemo, naive)
		}

		memo := NewStepMemo()
		fast, err := RunWith(cfg, scn, RunOptions{StepCache: StepCacheOn, Memo: memo})
		if err != nil {
			t.Fatalf("%s fast: %v", pol.label, err)
		}
		if hits, misses := fast.StepCache.MemoHits, fast.StepCache.MemoMisses; hits+misses != fast.Steps {
			t.Fatalf("%s: memo lookups %d+%d do not cover %d steps", pol.label, hits, misses, fast.Steps)
		}
		fast.StripStepCache()
		if !reflect.DeepEqual(fast, naive) {
			t.Fatalf("%s: memo path diverges from naive:\n%v\n%v", pol.label, fast, naive)
		}

		// A second run on the now-warm private memo replays every step
		// and still agrees bit-for-bit.
		warm, err := RunWith(cfg, scn, RunOptions{StepCache: StepCacheOn, Memo: memo})
		if err != nil {
			t.Fatalf("%s warm: %v", pol.label, err)
		}
		if warm.StepCache.MemoMisses != 0 {
			t.Fatalf("%s: warm run missed the memo %d times", pol.label, warm.StepCache.MemoMisses)
		}
		warm.StripStepCache()
		if !reflect.DeepEqual(warm, naive) {
			t.Fatalf("%s: warm replay diverges from naive:\n%v\n%v", pol.label, warm, naive)
		}
	}
}

// TestStepCacheEquivalenceAV extends the equivalence to AV-composed
// token steps (both decode kernels per step).
func TestStepCacheEquivalenceAV(t *testing.T) {
	scn, err := NewScenario(ScenarioConfig{
		Seed: 9, NumRequests: 3,
		MinPromptLen: 16, MaxPromptLen: 32,
		MinDecode: 2, MaxDecode: 2,
		MeanInterArrival: 6000, MaxBatch: 2,
		IncludeAV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	naive, err := RunWith(cfg, scn, RunOptions{StepCache: StepCacheOff})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunWith(cfg, scn, RunOptions{StepCache: StepCacheOn, Memo: NewStepMemo()})
	if err != nil {
		t.Fatal(err)
	}
	naive.StripStepCache()
	fast.StripStepCache()
	if !reflect.DeepEqual(fast, naive) {
		t.Fatalf("AV fast path diverges from naive:\n%v\n%v", fast, naive)
	}
}

// TestComposeArenaMatchesComposeStep: the arena composition used by
// the fast path produces a trace with exactly the blocks ComposeStep
// builds — same order, same IDs, same metadata, same instructions.
func TestComposeArenaMatchesComposeStep(t *testing.T) {
	streams := sigStreams()
	cfg := testConfig()
	want, wantG, err := ComposeStep(streams, false, cfg.LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(cfg, 4, false, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	eng.running = append(eng.running[:0], streams...)
	got, gotG, err := eng.composeStepFast()
	if err != nil {
		t.Fatal(err)
	}
	if gotG != wantG {
		t.Fatalf("group size %d, want %d", gotG, wantG)
	}
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("%d blocks, want %d", len(got.Blocks), len(want.Blocks))
	}
	for i := range want.Blocks {
		if !reflect.DeepEqual(*got.Blocks[i], *want.Blocks[i]) {
			t.Fatalf("block %d differs:\n%+v\n%+v", i, *got.Blocks[i], *want.Blocks[i])
		}
	}
	// The op-trace cache was consulted once per stream.
	st := eng.StepCacheStats()
	if st.OpCacheHits+st.OpCacheMisses != int64(len(streams)) {
		t.Fatalf("op cache consulted %d times, want %d", st.OpCacheHits+st.OpCacheMisses, len(streams))
	}
}

// TestStepMemoCounters: the shared-memo accessors see traffic.
func TestStepMemoCounters(t *testing.T) {
	memo := NewStepMemo()
	if memo.Len() != 0 || memo.Hits() != 0 || memo.Misses() != 0 {
		t.Fatal("fresh memo not empty")
	}
	if _, ok := memo.lookup("k"); ok {
		t.Fatal("empty memo hit")
	}
	memo.store("k", stepResult{cycles: 7})
	r, ok := memo.lookup("k")
	if !ok || r.cycles != 7 {
		t.Fatalf("lookup after store: %+v %v", r, ok)
	}
	if memo.Len() != 1 || memo.Hits() != 1 || memo.Misses() != 1 {
		t.Fatalf("counters: len=%d hits=%d misses=%d", memo.Len(), memo.Hits(), memo.Misses())
	}
}

// TestFlushSharedCaches: flushing releases the process-wide caches
// without affecting subsequent runs.
func TestFlushSharedCaches(t *testing.T) {
	scn := testScenario(t)
	cfg := testConfig()
	first, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	if SharedStepMemo().Len() == 0 {
		t.Fatal("run left the shared memo empty")
	}
	FlushSharedCaches()
	if n := SharedStepMemo().Len(); n != 0 {
		t.Fatalf("flush left %d memo entries", n)
	}
	second, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	if second.StepCache.MemoHits != 0 && second.StepCache.MemoMisses == 0 {
		t.Fatal("post-flush run hit a memo that should have been empty")
	}
	first.StripStepCache()
	second.StripStepCache()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("flush changed simulated metrics")
	}
}
