// Session prefix-cache tests: white-box LRU retention semantics,
// engine-level prefix reuse (hits shrink prefill work and TTFT, the
// cache-off path is bit-identical to fields-zeroed runs), and the
// preemption interaction (re-admission re-validates against the cache
// instead of trusting the pre-eviction lookup).

package serving

import (
	"reflect"
	"testing"
)

// TestPrefixCacheLRU white-box tests the retention structure: the
// minKVLen usability floor, min(retained, PrefixLen) truncation,
// LRU eviction order with commit refreshes, same-session replacement,
// and the too-large-entry rule.
func TestPrefixCacheLRU(t *testing.T) {
	c := newPrefixCache(100)

	// Below the mapping floor a retained prefix is unusable.
	c.insert(1, 40)
	if got := c.lookup(1, minKVLen-1); got != 0 {
		t.Errorf("lookup below the mapping floor = %d, want 0", got)
	}
	if got := c.lookup(1, 30); got != 30 {
		t.Errorf("lookup(1, 30) = %d, want the 30-token overlap", got)
	}
	if got := c.lookup(1, 64); got != 40 {
		t.Errorf("lookup(1, 64) = %d, want the 40 retained tokens", got)
	}
	if got := c.lookup(2, 64); got != 0 {
		t.Errorf("lookup of an absent session = %d, want 0", got)
	}

	// Same-session insert replaces (the conversation moved on).
	c.insert(1, 60)
	if got := c.cached(1); got != 60 {
		t.Errorf("cached(1) after replacement = %d, want 60", got)
	}
	if c.used != 60 {
		t.Errorf("used = %d after replacement, want 60", c.used)
	}

	// Filling past capacity evicts least-recently-used sessions.
	c.insert(2, 30) // used 90: [2, 1]
	c.insert(3, 20) // needs 110 > 100: evicts session 1 (LRU) → [3, 2]
	if got := c.cached(1); got != 0 {
		t.Errorf("session 1 survived eviction with %d tokens", got)
	}
	if c.cached(2) != 30 || c.cached(3) != 20 {
		t.Errorf("post-eviction contents = {2:%d 3:%d}, want {2:30 3:20}", c.cached(2), c.cached(3))
	}

	// A commit refresh changes who is LRU.
	c.commit(2) // [2, 3]
	c.insert(4, 60)
	if c.cached(3) != 0 || c.cached(2) != 30 {
		t.Errorf("LRU refresh ignored: {2:%d 3:%d}, want session 3 evicted", c.cached(2), c.cached(3))
	}

	// An entry larger than the whole capacity is not retained, and
	// drops the session's superseded entry.
	c.insert(2, 500)
	if got := c.cached(2); got != 0 {
		t.Errorf("over-capacity insert retained %d tokens", got)
	}
	if c.used != 60 {
		t.Errorf("used = %d, want only session 4's 60", c.used)
	}
}

// sessionScenario draws the committed session-heavy serving workload:
// two sessions of three-turn conversations under the chunked
// scheduler, arrivals spaced so follow-up turns usually arrive after
// the previous turn retired (the regime where a prefix cache can hit).
func sessionScenario(t *testing.T, cacheTokens int64) Scenario {
	t.Helper()
	scn, err := NewScenario(ScenarioConfig{
		Name: "sessions", Seed: 5, NumRequests: 12,
		MinPromptLen: 32, MaxPromptLen: 96,
		MinDecode: 4, MaxDecode: 8,
		MeanInterArrival: 120000, MaxBatch: 4,
		NumSessions: 2, SessionDepth: 3,
		Sched: SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16, PrefixCacheTokens: cacheTokens},
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestSessionChaining pins the generator's conversation structure:
// follow-up turns extend the previous turn's full context (PrefixLen =
// previous PromptLen + DecodeTokens), chains restart after depth
// turns, and the session knobs leave the underlying population draw
// (arrivals, decode budgets, per-turn suffixes) untouched.
func TestSessionChaining(t *testing.T) {
	chained := sessionScenario(t, 0)
	flat, err := NewScenario(ScenarioConfig{
		Name: "sessions", Seed: 5, NumRequests: 12,
		MinPromptLen: 32, MaxPromptLen: 96,
		MinDecode: 4, MaxDecode: 8,
		MeanInterArrival: 120000, MaxBatch: 4,
		NumSessions: 2,
		Sched:       SchedulerConfig{Policy: SchedChunked, ChunkTokens: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	type conv struct{ turns, kv int }
	convs := map[int]conv{}
	hadFollowUp := false
	for i, r := range chained.Requests {
		f := flat.Requests[i]
		if r.ID != f.ID || r.Session != f.Session || r.ArrivalCycle != f.ArrivalCycle || r.DecodeTokens != f.DecodeTokens {
			t.Fatalf("request %d: chaining changed non-prompt fields: %+v vs %+v", i, r, f)
		}
		c := convs[r.Session]
		if c.turns == 0 {
			if r.PrefixLen != 0 || r.PromptLen != f.PromptLen {
				t.Fatalf("request %d: fresh turn carries prefix %d / prompt %d, want 0 / %d",
					i, r.PrefixLen, r.PromptLen, f.PromptLen)
			}
		} else {
			hadFollowUp = true
			if r.PrefixLen != c.kv {
				t.Fatalf("request %d: PrefixLen %d, want previous context %d", i, r.PrefixLen, c.kv)
			}
			if r.PromptLen != c.kv+f.PromptLen {
				t.Fatalf("request %d: PromptLen %d, want context %d + suffix %d", i, r.PromptLen, c.kv, f.PromptLen)
			}
		}
		c.turns++
		c.kv = r.PromptLen + r.DecodeTokens
		if c.turns >= 3 {
			c = conv{}
		}
		convs[r.Session] = c
	}
	if !hadFollowUp {
		t.Fatal("scenario generated no follow-up turns")
	}
}

// TestPrefixReuseServing is the single-node acceptance test: with the
// prefix cache on, hits skip prefill work (PrefillTokens shrinks by
// exactly PrefillTokensSaved), decode output is unchanged, TTFT
// improves, and the run is deterministic. With the cache off the
// session fields are inert: zeroing Session/PrefixLen out of every
// request leaves the metrics bit-identical.
func TestPrefixReuseServing(t *testing.T) {
	cfg := testConfig()
	off, err := Run(cfg, sessionScenario(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(cfg, sessionScenario(t, 4096))
	if err != nil {
		t.Fatal(err)
	}

	if on.PrefixHits == 0 || on.PrefillTokensSaved == 0 {
		t.Fatalf("cache on: %d hits, %d tokens saved — the scenario exercised no reuse", on.PrefixHits, on.PrefillTokensSaved)
	}
	if on.PrefixHitRate <= 0 || on.PrefixHitRate > 1 {
		t.Errorf("hit rate %v outside (0, 1]", on.PrefixHitRate)
	}
	if off.PrefixHits != 0 || off.PrefixMisses != 0 || off.PrefillTokensSaved != 0 || off.PrefixHitRate != 0 {
		t.Errorf("cache off reported prefix activity: %+v", off)
	}
	if on.Tokens != off.Tokens || on.Requests != off.Requests {
		t.Errorf("prefix reuse changed decode output: %d/%d tokens, %d/%d requests",
			on.Tokens, off.Tokens, on.Requests, off.Requests)
	}
	if on.PrefillTokens != off.PrefillTokens-on.PrefillTokensSaved {
		t.Errorf("prefill accounting: on %d != off %d - saved %d",
			on.PrefillTokens, off.PrefillTokens, on.PrefillTokensSaved)
	}
	if on.TTFT.P50 >= off.TTFT.P50 {
		t.Errorf("TTFT p50 did not improve: on %.0f vs off %.0f", on.TTFT.P50, off.TTFT.P50)
	}
	var savedPerReq int64
	for _, rs := range on.PerRequest {
		savedPerReq += int64(rs.PrefixTokens)
	}
	if savedPerReq != on.PrefillTokensSaved {
		t.Errorf("per-request PrefixTokens sum %d != PrefillTokensSaved %d", savedPerReq, on.PrefillTokensSaved)
	}

	// Determinism: the cache-on run replays bit-identically.
	again, err := Run(cfg, sessionScenario(t, 4096))
	if err != nil {
		t.Fatal(err)
	}
	on2 := *on
	again2 := *again
	on2.StripStepCache()
	again2.StripStepCache()
	if !reflect.DeepEqual(&on2, &again2) {
		t.Error("repeated cache-on runs disagree")
	}

	// Cache-off inertness: the session fields change nothing.
	stripped := sessionScenario(t, 0)
	stripped.Requests = append([]Request(nil), stripped.Requests...)
	for i := range stripped.Requests {
		stripped.Requests[i].Session = 0
		stripped.Requests[i].PrefixLen = 0
	}
	plain, err := Run(cfg, stripped)
	if err != nil {
		t.Fatal(err)
	}
	off2 := *off
	plain2 := *plain
	off2.StripStepCache()
	plain2.StripStepCache()
	// The per-request stats carry no session fields, so the comparison
	// is total.
	if !reflect.DeepEqual(&off2, &plain2) {
		t.Error("cache-off metrics depend on Session/PrefixLen — the inert-fields guarantee is broken")
	}
}

// TestPrefixPreemptRevalidation covers the preemption interaction. The
// white-box half: an entry evicted while its stream was preempted is
// simply gone at re-admission — the fresh lookup returns 0 and the
// recompute pays full prefill (no stale reservation). The engine half:
// a KV-tight preempting run with the cache on conserves every decode
// token, stays deterministic, and still reuses prefixes.
func TestPrefixPreemptRevalidation(t *testing.T) {
	c := newPrefixCache(64)
	c.insert(7, 48)
	if got := c.lookup(7, 48); got != 48 {
		t.Fatalf("pre-eviction lookup = %d, want 48", got)
	}
	c.insert(8, 40) // evicts session 7
	if got := c.lookup(7, 48); got != 0 {
		t.Fatalf("re-validation after eviction = %d, want 0 (entry gone)", got)
	}

	scn := sessionScenario(t, 4096)
	scn.Sched.KVCapTokens = 400
	scn.Sched.Preempt = PreemptNewest
	// All arrivals at once so KV pressure actually preempts.
	scn.Requests = append([]Request(nil), scn.Requests...)
	for i := range scn.Requests {
		scn.Requests[i].ArrivalCycle = 0
	}
	cfg := testConfig()
	m, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, r := range scn.Requests {
		want += int64(r.DecodeTokens)
	}
	if m.Tokens != want {
		t.Errorf("decoded %d tokens, want %d — preemption double-counted or lost tokens", m.Tokens, want)
	}
	if m.Preemptions == 0 || m.PrefixHits == 0 {
		t.Fatalf("scenario exercised preemptions=%d prefix hits=%d — both must fire for this test to mean anything",
			m.Preemptions, m.PrefixHits)
	}
	for _, rs := range m.PerRequest {
		if rs.FinishCycle == 0 {
			t.Errorf("request %d never finished", rs.ID)
		}
	}
	again, err := Run(cfg, scn)
	if err != nil {
		t.Fatal(err)
	}
	m.StripStepCache()
	again.StripStepCache()
	if !reflect.DeepEqual(m, again) {
		t.Error("preempting cache-on runs disagree")
	}
}
