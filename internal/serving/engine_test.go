package serving

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// driveEngine runs a scenario through the incremental Engine the way
// the cluster router does: advance to each arrival horizon, submit,
// then drain.
func driveEngine(t *testing.T, scn Scenario, interleave bool) *Metrics {
	t.Helper()
	stride, err := StreamStride(scn)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(testConfig(), scn.MaxBatch, scn.IncludeAV, stride)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, len(scn.Requests))
	copy(reqs, scn.Requests)
	sortRequests(reqs)
	for _, r := range reqs {
		if interleave {
			if err := eng.AdvanceTo(r.ArrivalCycle); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	return eng.Metrics()
}

// TestEngineMatchesRun: driving the Engine incrementally — advancing
// the clock to every arrival horizon before submitting, exactly the
// cluster router's interleaving — produces metrics bit-identical to
// the one-shot Run. This is the single-node half of the cluster
// degenerate-equivalence guarantee.
func TestEngineMatchesRun(t *testing.T) {
	scn := testScenario(t)
	whole, err := Run(testConfig(), scn)
	if err != nil {
		t.Fatal(err)
	}
	// StepCache counters are diagnostics outside the bit-identity
	// contract (a later run hits memo entries an earlier run filled).
	whole.StripStepCache()
	batch := driveEngine(t, scn, false)
	batch.StripStepCache()
	if !reflect.DeepEqual(whole, batch) {
		t.Fatalf("submit-all-then-drain diverges from Run:\n%v\n%v", whole, batch)
	}
	stepped := driveEngine(t, scn, true)
	stepped.StripStepCache()
	if !reflect.DeepEqual(whole, stepped) {
		t.Fatalf("interleaved AdvanceTo/Submit diverges from Run:\n%v\n%v", whole, stepped)
	}
}

// TestEngineSubmitOrder: the engine rejects out-of-arrival-order and
// duplicate submissions — the invariants the router relies on.
func TestEngineSubmitOrder(t *testing.T) {
	scn := Scenario{
		Requests: []Request{{ID: 0, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1}},
		MaxBatch: 1,
	}
	stride, err := StreamStride(scn)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(testConfig(), 1, false, stride)
	if err != nil {
		t.Fatal(err)
	}
	ok := Request{ID: 0, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1, ArrivalCycle: 100}
	if err := eng.Submit(ok); err != nil {
		t.Fatal(err)
	}
	dup := ok
	if err := eng.Submit(dup); err == nil {
		t.Fatal("duplicate request ID accepted")
	}
	early := Request{ID: 1, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1, ArrivalCycle: 50}
	if err := eng.Submit(early); err == nil {
		t.Fatal("out-of-arrival-order submission accepted")
	}
	if got := eng.OutstandingTokens(); got != 1 {
		t.Fatalf("outstanding tokens = %d, want 1", got)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := eng.OutstandingTokens(); got != 0 {
		t.Fatalf("outstanding tokens after drain = %d, want 0", got)
	}
	if now := eng.Now(); now <= 100 {
		t.Fatalf("clock %d did not pass the arrival fast-forward", now)
	}
}

// TestEngineAdvanceToIdle: AdvanceTo never moves an empty engine's
// clock past the horizon — a later submission with an earlier arrival
// than any pending work must still be admitted on time. This is the
// property that makes interleaved routing equal to full-knowledge
// scheduling.
func TestEngineAdvanceToIdle(t *testing.T) {
	scn := Scenario{
		Requests: []Request{{ID: 0, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1}},
		MaxBatch: 2,
	}
	stride, err := StreamStride(scn)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(testConfig(), 2, false, stride)
	if err != nil {
		t.Fatal(err)
	}
	first := Request{ID: 0, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1, ArrivalCycle: 600}
	if err := eng.Submit(first); err != nil {
		t.Fatal(err)
	}
	// Poll an earlier horizon: the pending arrival is beyond it, so
	// the clock must hold instead of jumping ahead of the router.
	if err := eng.AdvanceTo(500); err != nil {
		t.Fatal(err)
	}
	if now := eng.Now(); now != 0 {
		t.Fatalf("idle engine clock moved to %d on AdvanceTo(500)", now)
	}
	second := Request{ID: 1, Model: workload.Llama3_70B, PromptLen: 16, DecodeTokens: 1, ArrivalCycle: 1000}
	if err := eng.Submit(second); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if m.PerRequest[0].AdmitCycle != 600 {
		t.Fatalf("request 0 admitted at %d, want its arrival 600", m.PerRequest[0].AdmitCycle)
	}
	if m.PerRequest[1].AdmitCycle < 1000 {
		t.Fatalf("request 1 admitted at %d, before its arrival 1000", m.PerRequest[1].AdmitCycle)
	}
}
