package serving

import "testing"

// TestGoodputEdges pins the boundary behaviour of goodput-under-SLO
// accounting: empty runs, all-unfinished runs (everything dropped or
// in flight), the single-token TBT exemption (one token has no
// inter-token gap to judge), and the violation breakdown.
func TestGoodputEdges(t *testing.T) {
	slo := SLO{TTFTCycles: 100, TBTCycles: 10}
	finished := func(ttft, finish, firstTok int64, tokens int) RequestStats {
		return RequestStats{TTFT: ttft, FinishCycle: finish, FirstTokenCycle: firstTok, Tokens: tokens}
	}
	cases := []struct {
		name     string
		reqs     []RequestStats
		makespan int64
		slo      SLO
		want     SLOReport
	}{
		{
			name: "empty run", reqs: nil, makespan: 1000, slo: slo,
			want: SLOReport{SLO: slo},
		},
		{
			name: "all unfinished", slo: slo, makespan: 1000,
			reqs: []RequestStats{{}, {Tokens: 3}, {TTFT: 50}},
			want: SLOReport{SLO: slo, Unfinished: 3},
		},
		{
			name: "single token exempt from TBT", slo: slo, makespan: 1000,
			// One token decoded: TTFT 50 meets the deadline and there is
			// no inter-token gap, so an enormous FinishCycle cannot
			// violate TBT.
			reqs: []RequestStats{finished(50, 999999, 50, 1)},
			want: SLOReport{SLO: slo, Finished: 1, MetSLO: 1, GoodTokens: 1, GoodputPerKCycle: 1},
		},
		{
			name: "two tokens pay TBT", slo: slo, makespan: 1000,
			// Same shape with a second token: the single 999949-cycle gap
			// blows the 10-cycle TBT deadline.
			reqs: []RequestStats{finished(50, 999999, 50, 2)},
			want: SLOReport{SLO: slo, Finished: 1, TBTViolations: 1},
		},
		{
			name: "ttft and tbt counted independently", slo: slo, makespan: 1000,
			reqs: []RequestStats{
				finished(200, 210, 200, 2),  // ttft miss, tbt ok (gap 10)
				finished(50, 1050, 50, 2),   // ttft ok, tbt miss (gap 1000)
				finished(200, 1200, 200, 2), // both miss
				finished(50, 60, 50, 2),     // both ok
			},
			want: SLOReport{SLO: slo, Finished: 4, MetSLO: 1,
				TTFTViolations: 2, TBTViolations: 2, GoodTokens: 2, GoodputPerKCycle: 2},
		},
		{
			name: "zero makespan yields zero goodput rate", slo: slo, makespan: 0,
			reqs: []RequestStats{finished(50, 60, 50, 2)},
			want: SLOReport{SLO: slo, Finished: 1, MetSLO: 1, GoodTokens: 2},
		},
		{
			name: "disabled SLO accepts every finished request", slo: SLO{}, makespan: 1000,
			reqs: []RequestStats{finished(999, 99999, 999, 5), {}},
			want: SLOReport{Finished: 1, Unfinished: 1, MetSLO: 1, GoodTokens: 5, GoodputPerKCycle: 5},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &Metrics{PerRequest: tc.reqs, Makespan: tc.makespan}
			if got := Goodput(m, tc.slo); got != tc.want {
				t.Errorf("Goodput = %+v, want %+v", got, tc.want)
			}
		})
	}
}
