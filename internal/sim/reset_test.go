// Reset equivalence: rewinding an engine onto a trace must be
// bit-identical to building a fresh engine for it — the guarantee the
// serving layer's persistent per-step simulator rests on. The test
// mirrors the sim.Config.Reference equivalence pattern: the fresh
// engine is the ground truth, the Reset engine the fast path.

package sim

import (
	"reflect"
	"testing"

	"repro/internal/arbiter"
	"repro/internal/dataflow"
	"repro/internal/memtrace"
	"repro/internal/workload"
)

func resetTestTrace(t *testing.T, seqLen int) (*memtrace.Trace, int) {
	t.Helper()
	op := workload.LogitOp{Model: workload.Llama3_70B, SeqLen: seqLen}
	amap, err := workload.NewAddressMap(op, 0)
	if err != nil {
		t.Fatal(err)
	}
	mapping, _, err := dataflow.FindMapping(op, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dataflow.Generate(op, amap, mapping, 64)
	if err != nil {
		t.Fatal(err)
	}
	return tr, op.Model.G
}

// TestResetEquivalence runs trace B on a fresh engine and on an engine
// that first ran trace A and was Reset — across the throttle, arbiter,
// request-response and scheduler matrix — and requires bit-identical
// Results (cycles, every counter, steal count).
func TestResetEquivalence(t *testing.T) {
	trA, g := resetTestTrace(t, 96)
	trB, _ := resetTestTrace(t, 64)

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"unopt", func(c *Config) {}},
		{"dynmg+BMA", func(c *Config) { c.Throttle = "dynmg"; c.Arbiter = arbiter.BMA }},
		{"dyncta", func(c *Config) { c.Throttle = "dyncta" }},
		{"lcs", func(c *Config) { c.Throttle = "lcs" }},
		{"cobrra", func(c *Config) { c.Arbiter = arbiter.COBRRA }},
		{"MA+req-first", func(c *Config) { c.Arbiter = arbiter.MA; c.ReqRespArb = "req-first" }},
		{"global-sched", func(c *Config) { c.Scheduler = "global" }},
		{"partitioned", func(c *Config) { c.Scheduler = "partitioned" }},
		{"reference", func(c *Config) { c.Reference = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.L2SizeBytes = 1 << 20 // pressure the cache at test-sized traces
			tc.mut(&cfg)

			fresh, err := New(cfg, trB, g)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Run()
			if err != nil {
				t.Fatal(err)
			}

			eng, err := New(cfg, trA, g)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			if err := eng.Reset(trB, g); err != nil {
				t.Fatal(err)
			}
			got, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("reset run diverges from fresh run:\ngot  %+v\nwant %+v", got, want)
			}

			// A second rewind onto the same trace agrees too (the state a
			// serving engine is in after many steps).
			if err := eng.Reset(trB, g); err != nil {
				t.Fatal(err)
			}
			again, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, want) {
				t.Fatalf("second reset run diverges:\ngot  %+v\nwant %+v", again, want)
			}
		})
	}
}

// TestResetValidation: bad reset inputs are rejected.
func TestResetValidation(t *testing.T) {
	tr, g := resetTestTrace(t, 64)
	eng, err := New(DefaultConfig(), tr, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset(nil, g); err == nil {
		t.Error("nil trace accepted")
	}
	if err := eng.Reset(&memtrace.Trace{}, g); err == nil {
		t.Error("empty trace accepted")
	}
	if err := eng.Reset(tr, 0); err == nil {
		t.Error("zero group size accepted")
	}
}
