package sim

import (
	"testing"

	"repro/internal/arbiter"
	"repro/internal/dataflow"
	"repro/internal/memtrace"
	"repro/internal/workload"
)

// smallTrace builds a scaled-down Logit trace for fast tests.
func smallTrace(t testing.TB, model workload.ModelConfig, seqLen int) (*memtrace.Trace, int) {
	t.Helper()
	op := workload.LogitOp{Model: model, SeqLen: seqLen}
	amap, err := workload.NewAddressMap(op, 0)
	if err != nil {
		t.Fatalf("NewAddressMap: %v", err)
	}
	m := dataflow.DefaultMapping()
	tr, err := dataflow.Generate(op, amap, m, 64)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tr, op.Model.G
}

func TestEngineRunsToCompletion(t *testing.T) {
	tr, g := smallTrace(t, workload.Llama3_70B, 256)
	cfg := DefaultConfig()
	cfg.L2SizeBytes = 1 << 20 // shrink for test speed
	eng, err := New(cfg, tr, g)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("expected positive cycle count, got %d", res.Cycles)
	}
	if res.Counters.TBCompleted != int64(len(tr.Blocks)) {
		t.Fatalf("completed %d thread blocks, trace has %d",
			res.Counters.TBCompleted, len(tr.Blocks))
	}
	t.Logf("cycles=%d metrics:\n%s", res.Cycles, res.Metrics)
}

func TestPoliciesRun(t *testing.T) {
	tr, g := smallTrace(t, workload.Llama3_70B, 256)
	for _, thr := range []string{"none", "dyncta", "lcs", "dynmg"} {
		for _, arb := range []arbiter.Kind{arbiter.FCFS, arbiter.Balanced, arbiter.MA, arbiter.BMA, arbiter.COBRRA} {
			cfg := DefaultConfig()
			cfg.L2SizeBytes = 1 << 20
			cfg.Throttle = thr
			cfg.Arbiter = arb
			eng, err := New(cfg, tr, g)
			if err != nil {
				t.Fatalf("New(%s,%v): %v", thr, arb, err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatalf("Run(%s,%v): %v", thr, arb, err)
			}
			if res.Counters.TBCompleted != int64(len(tr.Blocks)) {
				t.Fatalf("%s/%v: completed %d of %d blocks", thr, arb,
					res.Counters.TBCompleted, len(tr.Blocks))
			}
		}
	}
}
