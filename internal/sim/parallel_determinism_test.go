// Extends the determinism suite of determinism_test.go across the
// parallel experiment matrix: experiments.Options.Parallel > 1 must
// produce exactly the results of a serial run, in exactly the same
// order. This lives in an external test package because experiments
// imports sim.
package sim_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

func matrixCells() []experiments.CellSpec {
	policies := []experiments.Policy{
		experiments.Unopt, experiments.Dyncta, experiments.DynMG,
		experiments.DynMGBMA, experiments.Cobrra,
	}
	var cells []experiments.CellSpec
	for _, seq := range []int{128, 256} {
		op := workload.LogitOp{Model: workload.Llama3_70B, SeqLen: seq}
		for _, p := range policies {
			cells = append(cells, experiments.CellSpec{Op: op, Pol: p})
		}
	}
	return cells
}

// RunCells with Parallel > 1 must return bit-identical results in the
// same matrix order as a serial run.
func TestParallelResultOrdering(t *testing.T) {
	base := sim.DefaultConfig()
	base.L2SizeBytes = 512 << 10

	run := func(parallel int) []sim.Result {
		r := experiments.NewRunner(experiments.Options{Base: &base, Parallel: parallel})
		res, err := r.RunCells(matrixCells())
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res
	}
	serial := run(1)
	for _, p := range []int{2, 4, 8} {
		got := run(p)
		if len(got) != len(serial) {
			t.Fatalf("parallel=%d: %d results, want %d", p, len(got), len(serial))
		}
		for i := range serial {
			if got[i].Cycles != serial[i].Cycles {
				t.Errorf("parallel=%d cell %d: cycles %d, want %d", p, i, got[i].Cycles, serial[i].Cycles)
			}
			if got[i].Counters != serial[i].Counters {
				t.Errorf("parallel=%d cell %d: counters diverge", p, i)
			}
		}
	}
}

// The parallel path must surface simulation errors instead of
// deadlocking or dropping them.
func TestParallelErrorPropagation(t *testing.T) {
	base := sim.DefaultConfig()
	base.L2SizeBytes = 512 << 10
	base.MaxCycles = 10 // guarantees a MaxCycles failure
	r := experiments.NewRunner(experiments.Options{Base: &base, Parallel: 4})
	if _, err := r.RunCells(matrixCells()); err == nil {
		t.Fatal("expected an error from the parallel matrix")
	}
}
