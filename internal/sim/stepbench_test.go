package sim

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/workload"
)

// BenchmarkTokenStep measures the serving-regime hot path: one
// single-stream decode-step trace simulated on a Reset engine — the
// unit of work the step memo cannot skip.
func BenchmarkTokenStep(b *testing.B) {
	op := workload.LogitOp{Model: workload.Llama3_70B, SeqLen: 32}
	amap, err := workload.NewAddressMap(op, 0)
	if err != nil {
		b.Fatal(err)
	}
	mapping, _, err := dataflow.FindMapping(op, 64)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := dataflow.Generate(op, amap, mapping, 64)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.L2SizeBytes /= 32
	cfg.Throttle = "dynmg"
	cfg.Arbiter = 3 // BMA
	eng, err := New(cfg, tr, op.Model.G)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Reset(tr, op.Model.G); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
