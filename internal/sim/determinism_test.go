package sim

import (
	"testing"

	"repro/internal/arbiter"
	"repro/internal/workload"
)

// The engine must be bit-for-bit deterministic: two identical runs
// yield identical cycle counts and counters.
func TestDeterminism(t *testing.T) {
	tr, g := smallTrace(t, workload.Llama3_70B, 256)
	run := func() Result {
		cfg := DefaultConfig()
		cfg.L2SizeBytes = 1 << 20
		cfg.Throttle = "dynmg"
		cfg.Arbiter = arbiter.BMA
		eng, err := New(cfg, tr, g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic cycles: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.Counters != b.Counters {
		t.Fatalf("non-deterministic counters:\n%+v\n%+v", a.Counters, b.Counters)
	}
}

// Every memory request allocated during a run must be returned to the
// pool (no leaks), and all L2 demand must be conserved:
// accesses = hits + misses, misses = merges + allocs (+ stall retries
// excluded by construction).
func TestRequestConservation(t *testing.T) {
	tr, g := smallTrace(t, workload.Llama3_70B, 256)
	cfg := DefaultConfig()
	cfg.L2SizeBytes = 1 << 20
	eng, err := New(cfg, tr, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.reqPool.Outstanding(); got != 0 {
		t.Fatalf("request leak: %d outstanding", got)
	}
	c := res.Counters
	if c.L2Accesses != c.L2Hits+c.L2Misses {
		t.Fatalf("L2 accounting: %d != %d + %d", c.L2Accesses, c.L2Hits, c.L2Misses)
	}
	if c.L2Misses != c.MSHRMerges+c.MSHRAllocs {
		t.Fatalf("miss accounting: %d != %d + %d", c.L2Misses, c.MSHRMerges, c.MSHRAllocs)
	}
	if c.MSHRAllocs != c.DRAMReads {
		t.Fatalf("every MSHR entry is one DRAM read: %d != %d", c.MSHRAllocs, c.DRAMReads)
	}
}

// The paper's global-scheduling extension: without migration
// (partitioned pools) the run must be no faster, because fast cores
// idle while the slowest finishes.
func TestSchedulerAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run is slow")
	}
	tr, g := smallTrace(t, workload.Llama3_70B, 512)
	run := func(sched string) int64 {
		cfg := DefaultConfig()
		cfg.L2SizeBytes = 1 << 20
		cfg.Scheduler = sched
		eng, err := New(cfg, tr, g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		return res.Cycles
	}
	affinity := run("affinity")
	partitioned := run("partitioned")
	global := run("global")
	t.Logf("affinity=%d partitioned=%d global=%d", affinity, partitioned, global)
	if float64(partitioned) < float64(affinity)*0.98 {
		t.Errorf("partitioned (%d) should not beat affinity with migration (%d)", partitioned, affinity)
	}
}

func TestConfigValidation(t *testing.T) {
	tr, g := smallTrace(t, workload.Llama3_70B, 256)
	bad := []func(*Config){
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.NumCores = 0 },
		func(c *Config) { c.NumSlices = 3 },
		func(c *Config) { c.L2SizeBytes = 100 },
		func(c *Config) { c.Scheduler = "bogus" },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg, tr, g); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig(), nil, 8); err == nil {
		t.Error("nil trace accepted")
	}
	cfg := DefaultConfig()
	cfg.Throttle = "nonsense"
	if _, err := New(cfg, tr, g); err == nil {
		t.Error("unknown throttle accepted")
	}
}

func TestTable5Defaults(t *testing.T) {
	cfg := DefaultConfig()
	// Table 5 of the paper.
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"frequency", cfg.FreqGHz, 1.96},
		{"cores", cfg.NumCores, 16},
		{"L2 size", cfg.L2SizeBytes, 16 << 20},
		{"slices", cfg.NumSlices, 8},
		{"window depth", cfg.WindowDepth, 128},
		{"windows", cfg.NumWindows, 4},
		{"L1 size", cfg.L1SizeBytes, 64 << 10},
		{"L1 assoc", cfg.L1Assoc, 8},
		{"L2 assoc", cfg.L2Assoc, 8},
		{"hit latency", cfg.HitLatency, 3},
		{"data latency", cfg.DataLatency, 25},
		{"mshr entries", cfg.MSHREntries, 6},
		{"mshr targets", cfg.MSHRTargets, 8},
		{"mshr latency", cfg.MSHRLatency, 5},
		{"req queue", cfg.ReqQSize, 12},
		{"resp queue", cfg.RespQSize, 64},
		{"dram channels", cfg.DRAMChannels, 4},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v (Table 5)", c.name, c.got, c.want)
		}
	}
}
