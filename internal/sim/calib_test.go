package sim

import (
	"testing"

	"repro/internal/arbiter"
	"repro/internal/workload"
)

// TestCalibrationShapes runs a scaled version of the paper's Fig. 7
// experiment and logs the speedup table. It asserts only the headline
// directions; the full shape checks live in the experiments package.
// Run with -v to inspect the numbers.
func TestCalibrationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	// Scale: paper's 16K sequence with 16 MB L2 has working-set/cache
	// ratio 2 — the regime where the CAT mechanisms bind; reproduce it
	// at 1/8 scale (2K sequence, 2 MB L2).
	tr, g := smallTrace(t, workload.Llama3_70B, 2048)
	run := func(throttle string, arb arbiter.Kind) int64 {
		cfg := DefaultConfig()
		cfg.L2SizeBytes = 2 << 20
		cfg.Throttle = throttle
		cfg.Arbiter = arb
		eng, err := New(cfg, tr, g)
		if err != nil {
			t.Fatalf("New(%s,%v): %v", throttle, arb, err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("Run(%s,%v): %v", throttle, arb, err)
		}
		t.Logf("%-8s %-7v cycles=%-9d L2hit=%.3f mshrHit=%.3f util=%.3f tcs=%.3f bw=%.1fGB/s reads=%d memfrac=%.3f idlefrac=%.3f",
			throttle, arb, res.Cycles, res.Metrics.L2HitRate, res.Metrics.MSHRHitRate,
			res.Metrics.MSHREntryUtil, res.Metrics.CacheStallFrac, res.Metrics.DRAMBandwidthGB,
			res.Counters.DRAMReads, res.Metrics.CoreMemFrac, res.Metrics.CoreIdleFrac)
		return res.Cycles
	}

	for _, st := range []string{"static:1", "static:2", "static:3"} {
		run(st, arbiter.FCFS)
		run(st, arbiter.BMA)
	}
	unopt := run("none", arbiter.FCFS)
	dyncta := run("dyncta", arbiter.FCFS)
	lcs := run("lcs", arbiter.FCFS)
	dynmg := run("dynmg", arbiter.FCFS)
	dynmgB := run("dynmg", arbiter.Balanced)
	dynmgMA := run("dynmg", arbiter.MA)
	dynmgBMA := run("dynmg", arbiter.BMA)
	dynmgCob := run("dynmg", arbiter.COBRRA)

	sp := func(base, opt int64) float64 { return float64(base) / float64(opt) }
	t.Logf("speedups vs unopt: dyncta=%.3f lcs=%.3f dynmg=%.3f", sp(unopt, dyncta), sp(unopt, lcs), sp(unopt, dynmg))
	t.Logf("vs dynmg: +B=%.3f +MA=%.3f +BMA=%.3f +cobrra=%.3f",
		sp(dynmg, dynmgB), sp(dynmg, dynmgMA), sp(dynmg, dynmgBMA), sp(dynmg, dynmgCob))
	t.Logf("cumulative dynmg+BMA=%.3f", sp(unopt, dynmgBMA))

	if sp(unopt, dynmg) < 1.1 {
		t.Errorf("dynmg should speed up the unoptimized system markedly at WS/cache=2, got %.3f", sp(unopt, dynmg))
	}
	if sp(dynmg, dynmgBMA) < 1.0 {
		t.Errorf("BMA should improve on dynmg at WS/cache=2, got %.3f", sp(dynmg, dynmgBMA))
	}
	if sp(unopt, dyncta) > sp(unopt, dynmg) {
		t.Errorf("dynmg (%.3f) should beat the dyncta baseline (%.3f)", sp(unopt, dynmg), sp(unopt, dyncta))
	}
	if s := sp(unopt, lcs); s < 0.97 || s > 1.1 {
		t.Errorf("lcs should be near-neutral, got %.3f", s)
	}
}
