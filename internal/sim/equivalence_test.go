package sim

import (
	"fmt"
	"testing"

	"repro/internal/arbiter"
	"repro/internal/workload"
)

// The event-horizon fast-forward engine must be bit-identical to the
// retained per-cycle reference loop: same Cycles, same Counters, for
// every throttling policy, arbitration policy and scheduler the
// paper's matrix exercises. This is the contract that lets every
// reported figure keep its exact value while the simulator skips dead
// cycles.
func TestFastForwardEquivalence(t *testing.T) {
	tr70, g70 := smallTrace(t, workload.Llama3_70B, 256)

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unopt", func(c *Config) { c.Throttle = "none"; c.Arbiter = arbiter.FCFS }},
		{"dyncta", func(c *Config) { c.Throttle = "dyncta" }},
		{"lcs", func(c *Config) { c.Throttle = "lcs" }},
		{"dynmg+BMA", func(c *Config) { c.Throttle = "dynmg"; c.Arbiter = arbiter.BMA }},
		{"none+cobrra", func(c *Config) { c.Throttle = "none"; c.Arbiter = arbiter.COBRRA }},
		{"dynmg+B", func(c *Config) { c.Throttle = "dynmg"; c.Arbiter = arbiter.Balanced }},
		{"dynmg+MA", func(c *Config) { c.Throttle = "dynmg"; c.Arbiter = arbiter.MA }},
		{"static:2", func(c *Config) { c.Throttle = "static:2" }},
		{"sched-global", func(c *Config) { c.Scheduler = "global" }},
		{"sched-partitioned", func(c *Config) { c.Scheduler = "partitioned" }},
		{"req-first", func(c *Config) { c.Arbiter = arbiter.BMA; c.ReqRespArb = "req-first" }},
		{"resp-first", func(c *Config) { c.Throttle = "dynmg"; c.ReqRespArb = "resp-first" }},
		{"bypass", func(c *Config) { c.Bypass = true }},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(reference bool) Result {
				cfg := DefaultConfig()
				cfg.L2SizeBytes = 1 << 20
				tc.mutate(&cfg)
				cfg.Reference = reference
				eng, err := New(cfg, tr70, g70)
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			ref, ff := run(true), run(false)
			if ref.Cycles != ff.Cycles {
				t.Fatalf("cycles diverge: reference=%d fast-forward=%d", ref.Cycles, ff.Cycles)
			}
			if ref.Counters != ff.Counters {
				t.Fatalf("counters diverge:\nreference:    %+v\nfast-forward: %+v",
					ref.Counters, ff.Counters)
			}
			if ref.Steals != ff.Steals {
				t.Fatalf("steals diverge: reference=%d fast-forward=%d", ref.Steals, ff.Steals)
			}
		})
	}
}

// The equivalence must also hold across workload shapes: the 405B
// model exercises the sharer-limited affinity mapping and a different
// group size.
func TestFastForwardEquivalence405B(t *testing.T) {
	tr, g := smallTrace(t, workload.Llama3_405B, 256)
	for _, throttle := range []string{"none", "dynmg"} {
		t.Run(throttle, func(t *testing.T) {
			run := func(reference bool) Result {
				cfg := DefaultConfig()
				cfg.L2SizeBytes = 1 << 20
				cfg.Throttle = throttle
				cfg.Arbiter = arbiter.BMA
				cfg.Reference = reference
				eng, err := New(cfg, tr, g)
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			ref, ff := run(true), run(false)
			if ref.Cycles != ff.Cycles || ref.Counters != ff.Counters {
				t.Fatalf("diverged: reference cycles=%d fast-forward cycles=%d\nref: %+v\nff:  %+v",
					ref.Cycles, ff.Cycles, ref.Counters, ff.Counters)
			}
		})
	}
}

// A deadlocked configuration must fail identically under both loops.
func TestFastForwardMaxCyclesGuard(t *testing.T) {
	tr, g := smallTrace(t, workload.Llama3_70B, 256)
	for _, reference := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.L2SizeBytes = 1 << 20
		cfg.MaxCycles = 100 // far too few to drain
		cfg.Reference = reference
		eng, err := New(cfg, tr, g)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err == nil {
			t.Fatalf("reference=%v: expected MaxCycles error", reference)
		} else if want := fmt.Sprintf("MaxCycles=%d", cfg.MaxCycles); !containsStr(err.Error(), want) {
			t.Fatalf("reference=%v: unexpected error %v", reference, err)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
