// Package sim is the cycle-level simulation engine: it wires the
// vector cores, interconnect, LLC slices, MSHRs, DRAM, thread-block
// dispatcher and throttling controller into one deterministic cycle
// loop, and aggregates the statistics the paper's figures report.
//
// The engine realises the Ramulator2-derived frontend of Section 5
// with every extension the paper lists: vector cores with multiple
// instruction windows, global thread-block dispatch, sliced L2 with
// explicit request/response arbitration, and the extra cache policies.
package sim

import (
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/llc"
	"repro/internal/memreq"
	"repro/internal/memtrace"
	"repro/internal/noc"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/throttle"
	"repro/internal/vcore"
)

// Config is the full system configuration. DefaultConfig reproduces
// Table 5 of the paper.
type Config struct {
	FreqGHz float64

	NumCores  int
	NumSlices int
	LineBytes int

	// Core front-end.
	NumWindows  int
	WindowDepth int
	VectorBytes int
	EgressCap   int

	// Private L1.
	L1SizeBytes int
	L1Assoc     int

	// Shared L2 (whole cache; divided evenly across slices).
	L2SizeBytes int
	L2Assoc     int
	HitLatency  int
	DataLatency int
	MSHRLatency int
	MSHREntries int // per slice
	MSHRTargets int
	ReqQSize    int
	RespQSize   int
	HitBufSize  int
	WBBufSize   int

	NoC noc.Config

	DRAMChannels int
	// MemRespLatency is the on-chip transit time from the memory
	// controller back to the LLC slice (Fig. 3: MCs sit across the
	// interconnect from the L2 slices). It extends the lifetime of an
	// MSHR entry and is what makes miss-handling throughput — not raw
	// DRAM bandwidth — the binding constraint, the regime Section 6.3
	// studies.
	MemRespLatency int

	// Policies.
	Arbiter  arbiter.Kind
	Throttle string // "none", "dyncta", "lcs", "dynmg", "static:N"
	// DynMG / DYNCTA optionally override the controller parameters
	// (nil = package defaults, i.e. the swept optima of Tables 2–4).
	DynMG  *throttle.DynMGParams
	DYNCTA *throttle.DYNCTAParams

	// Scheduler selects thread-block dispatch: "affinity" (default),
	// "global", or "partitioned" (the no-migration ablation).
	Scheduler string

	// ReqRespArb forces the request-response arbitration flavour on
	// every slice: "" (policy default), "resp-first" or "req-first"
	// (Section 3.3 evaluates both).
	ReqRespArb string
	// Bypass enables the fill bypass manager (disabled in the paper's
	// evaluation for fairness; an ablation knob here).
	Bypass bool

	// MaxCycles aborts a run that fails to drain (deadlock guard).
	// Zero means a generous automatic bound.
	MaxCycles int64
}

// DefaultConfig returns the simulated system of Table 5: 1.96 GHz, 16
// cores (vector width 128 B, 4 instruction windows of depth 128,
// 64 KB streaming write-through L1), 16 MB L2 in 8 slices (8-way,
// hit latency 3, data latency 25, MSHR 6x8 per slice, mshr latency 5,
// request queue 12, response queue 64, response-queue-first), and
// 4-channel DDR5-3200.
func DefaultConfig() Config {
	return Config{
		FreqGHz:      1.96,
		NumCores:     16,
		NumSlices:    8,
		LineBytes:    64,
		NumWindows:   4,
		WindowDepth:  128,
		VectorBytes:  128,
		EgressCap:    16,
		L1SizeBytes:  64 << 10,
		L1Assoc:      8,
		L2SizeBytes:  16 << 20,
		L2Assoc:      8,
		HitLatency:   3,
		DataLatency:  25,
		MSHRLatency:  5,
		MSHREntries:  6,
		MSHRTargets:  8,
		ReqQSize:     12,
		RespQSize:    64,
		HitBufSize:   32,
		WBBufSize:    8,
		NoC:            noc.DefaultConfig(),
		DRAMChannels:   4,
		MemRespLatency: 30,
		Arbiter:      arbiter.FCFS,
		Throttle:     "none",
		Scheduler:    "affinity",
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.FreqGHz <= 0:
		return fmt.Errorf("sim: FreqGHz must be positive, got %g", c.FreqGHz)
	case c.NumCores <= 0:
		return fmt.Errorf("sim: NumCores must be positive, got %d", c.NumCores)
	case c.NumSlices <= 0 || c.NumSlices&(c.NumSlices-1) != 0:
		return fmt.Errorf("sim: NumSlices must be a positive power of two, got %d", c.NumSlices)
	case c.L2SizeBytes%c.NumSlices != 0:
		return fmt.Errorf("sim: L2SizeBytes %d not divisible by %d slices", c.L2SizeBytes, c.NumSlices)
	}
	switch c.Scheduler {
	case "", "affinity", "global", "partitioned":
	default:
		return fmt.Errorf("sim: unknown scheduler %q", c.Scheduler)
	}
	return nil
}

// Result is the outcome of one simulation run.
type Result struct {
	Cycles   int64
	Counters stats.Counters
	Metrics  stats.Metrics
	// Steals counts thread-block migrations (affinity scheduler).
	Steals int64
}

// Engine is one configured simulation instance. Engines are single
// use: build, Run, read the Result.
type Engine struct {
	cfg      Config
	cores    []*vcore.Core
	slices   []*llc.Slice
	net      *noc.NoC
	mem      *dram.DRAM
	pool     sched.Pool
	reqPool  *memreq.Pool
	ctrl     throttle.Controller
	ctr      stats.Counters
	progress []int64
	signals  throttle.Signals
	groupSz  int
	autoMax  int64
	// respInFlight models the MC→slice transit of fill data.
	respInFlight []dram.Response
}

// New builds an engine for a trace. groupSize is the workload's G
// (query heads per group), which the affinity dispatcher uses for the
// spatial mapping.
func New(cfg Config, trace *memtrace.Trace, groupSize int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trace == nil || len(trace.Blocks) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	e := &Engine{cfg: cfg, reqPool: &memreq.Pool{}, groupSz: groupSize}
	e.progress = make([]int64, cfg.NumCores)
	// Deadlock guard: even a fully serialised run (every line access
	// taking a whole DRAM round trip, no overlap at all) finishes well
	// within this bound.
	linesPerVec := int64(cfg.VectorBytes/cfg.LineBytes + 1)
	e.autoMax = 400*int64(trace.TotalMemInsts())*linesPerVec + 1_000_000

	var err error
	switch {
	case cfg.Throttle == "dynmg" && cfg.DynMG != nil:
		e.ctrl = throttle.NewDynMG(cfg.NumCores, cfg.NumWindows, *cfg.DynMG)
	case cfg.Throttle == "dyncta" && cfg.DYNCTA != nil:
		e.ctrl = throttle.NewDYNCTA(cfg.NumCores, cfg.NumWindows, *cfg.DYNCTA)
	default:
		e.ctrl, err = throttle.ParseName(cfg.Throttle, cfg.NumCores, cfg.NumWindows)
		if err != nil {
			return nil, err
		}
	}

	e.net, err = noc.New(cfg.NoC, cfg.NumCores, cfg.NumSlices, &e.ctr)
	if err != nil {
		return nil, err
	}

	dcfg := dram.NewDDR5_3200(cfg.FreqGHz, cfg.DRAMChannels)
	dcfg.LineBytes = cfg.LineBytes
	// Channel bits sit just above the slice-interleave bits.
	bits := 0
	for s := cfg.NumSlices; s > 1; s >>= 1 {
		bits++
	}
	dcfg.ChannelBitPos = bits
	e.mem, err = dram.New(dcfg, &e.ctr)
	if err != nil {
		return nil, err
	}

	l1cfg := cache.Config{
		SizeBytes: cfg.L1SizeBytes,
		LineBytes: cfg.LineBytes,
		Assoc:     cfg.L1Assoc,
		Alloc:     cache.AllocOnFill,
		Write:     cache.WritePolicy{WriteAllocate: false, WriteBack: false},
		Streaming: true,
	}
	e.cores = make([]*vcore.Core, cfg.NumCores)
	for i := range e.cores {
		core, err := vcore.New(vcore.Config{
			ID:          i,
			NumWindows:  cfg.NumWindows,
			WindowDepth: cfg.WindowDepth,
			VectorBytes: cfg.VectorBytes,
			LineBytes:   cfg.LineBytes,
			EgressCap:   cfg.EgressCap,
			NumSlices:   cfg.NumSlices,
			L1:          l1cfg,
		}, e.net, e.reqPool, &e.ctr)
		if err != nil {
			return nil, err
		}
		e.cores[i] = core
	}

	e.slices = make([]*llc.Slice, cfg.NumSlices)
	for i := range e.slices {
		scfg := llc.Config{
			Index:     i,
			NumSlices: cfg.NumSlices,
			NumCores:  cfg.NumCores,
			Cache: cache.Config{
				SizeBytes: cfg.L2SizeBytes / cfg.NumSlices,
				LineBytes: cfg.LineBytes,
				Assoc:     cfg.L2Assoc,
				Alloc:     cache.AllocOnFill,
				Write:     cache.WritePolicy{WriteAllocate: true, WriteBack: true},
			},
			HitLatency:  cfg.HitLatency,
			DataLatency: cfg.DataLatency,
			MSHRLatency: cfg.MSHRLatency,
			MSHREntries: cfg.MSHREntries,
			MSHRTargets: cfg.MSHRTargets,
			ReqQSize:    cfg.ReqQSize,
			RespQSize:   cfg.RespQSize,
			HitBufSize:      cfg.HitBufSize,
			WBBufSize:       cfg.WBBufSize,
			Policy:          cfg.Arbiter,
			ReqRespOverride: cfg.ReqRespArb,
			Bypass:          cfg.Bypass,
		}
		s, err := llc.New(scfg, e.net, e.mem, e.reqPool, &e.ctr)
		if err != nil {
			return nil, err
		}
		s.SetGlobalProgress(e.progress)
		e.slices[i] = s
	}

	switch cfg.Scheduler {
	case "", "affinity":
		e.pool, err = sched.NewAffinityPool(trace, cfg.NumCores, groupSize, cfg.MSHRTargets+1)
	case "global":
		e.pool = sched.NewGlobalPool(trace)
	case "partitioned":
		e.pool, err = sched.NewPartitionedPool(trace, cfg.NumCores)
	}
	if err != nil {
		return nil, err
	}

	e.signals = throttle.Signals{
		NumCores:    cfg.NumCores,
		MaxWindows:  cfg.NumWindows,
		CacheStall:  func() int64 { return e.ctr.CacheStall },
		SliceCycles: func() int64 { return e.ctr.SliceCycles },
		CoreMem:     func(core int) int64 { return e.cores[core].CMem },
		CoreIdle:    func(core int) int64 { return e.cores[core].CIdle },
		Progress:    func(core int) int64 { return e.progress[core] },
	}
	return e, nil
}

// Run executes the cycle loop to completion and returns the collected
// statistics.
func (e *Engine) Run() (Result, error) {
	maxCycles := e.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = e.autoMax
	}
	observer, _ := e.ctrl.(throttle.TBObserver)

	now := int64(0)
	for ; now < maxCycles; now++ {
		e.ctrl.Tick(now, &e.signals)

		for i, c := range e.cores {
			c.SetMaxTB(e.ctrl.MaxTB(i))
			e.net.DeliverResps(i, now, c.OnDelivery)
			c.Tick(now, e.pool)
			if observer != nil {
				for _, done := range c.DrainCompletions() {
					observer.ObserveTB(done.Core, done.BusyCycles, done.TotalCycles)
				}
			} else {
				c.DrainCompletions()
			}
		}

		for i, s := range e.slices {
			e.net.DeliverReqs(i, now, s.Accept)
			s.Tick(now)
		}

		e.mem.Tick(now)
		for _, resp := range e.mem.Responses(now) {
			resp.Done = now + int64(e.cfg.MemRespLatency)
			e.respInFlight = append(e.respInFlight, resp)
		}
		if len(e.respInFlight) > 0 {
			kept := e.respInFlight[:0]
			for _, resp := range e.respInFlight {
				if resp.Done <= now {
					e.slices[resp.Slice].OnDRAMResponse(resp, now)
				} else {
					kept = append(kept, resp)
				}
			}
			e.respInFlight = kept
		}

		// Drain check, amortised.
		if now&63 == 0 && e.drained() {
			break
		}
	}
	if now >= maxCycles {
		return Result{}, fmt.Errorf("sim: exceeded MaxCycles=%d without draining (deadlock?)", maxCycles)
	}

	e.ctr.Cycles = now
	res := Result{
		Cycles:   now,
		Counters: e.ctr,
		Metrics:  e.ctr.Derive(e.cfg.FreqGHz, e.cfg.LineBytes, e.cfg.NumCores),
	}
	if ap, ok := e.pool.(*sched.AffinityPool); ok {
		res.Steals = ap.Steals
	}
	return res, nil
}

// drained reports whether all work has left the system.
func (e *Engine) drained() bool {
	if e.pool.Remaining() > 0 || e.net.Pending() > 0 || e.mem.Pending() > 0 || len(e.respInFlight) > 0 {
		return false
	}
	for _, c := range e.cores {
		if c.Busy() {
			return false
		}
	}
	for _, s := range e.slices {
		if s.Busy() {
			return false
		}
	}
	return true
}

// Cores exposes the core models (tests, diagnostics).
func (e *Engine) Cores() []*vcore.Core { return e.cores }

// Slices exposes the LLC slices (tests, diagnostics).
func (e *Engine) Slices() []*llc.Slice { return e.slices }

// Controller exposes the throttling controller (tests, diagnostics).
func (e *Engine) Controller() throttle.Controller { return e.ctrl }
