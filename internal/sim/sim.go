// Package sim is the cycle-level simulation engine: it wires the
// vector cores, interconnect, LLC slices, MSHRs, DRAM, thread-block
// dispatcher and throttling controller into one deterministic cycle
// loop, and aggregates the statistics the paper's figures report.
//
// The engine realises the Ramulator2-derived frontend of Section 5
// with every extension the paper lists: vector cores with multiple
// instruction windows, global thread-block dispatch, sliced L2 with
// explicit request/response arbitration, and the extra cache policies.
package sim

import (
	"fmt"
	"math"

	"repro/internal/arbiter"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/llc"
	"repro/internal/memreq"
	"repro/internal/memtrace"
	"repro/internal/noc"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/throttle"
	"repro/internal/vcore"
)

// Config is the full system configuration. DefaultConfig reproduces
// Table 5 of the paper.
type Config struct {
	FreqGHz float64

	NumCores  int
	NumSlices int
	LineBytes int

	// Core front-end.
	NumWindows  int
	WindowDepth int
	VectorBytes int
	EgressCap   int

	// Private L1.
	L1SizeBytes int
	L1Assoc     int

	// Shared L2 (whole cache; divided evenly across slices).
	L2SizeBytes int
	L2Assoc     int
	HitLatency  int
	DataLatency int
	MSHRLatency int
	MSHREntries int // per slice
	MSHRTargets int
	ReqQSize    int
	RespQSize   int
	HitBufSize  int
	WBBufSize   int

	NoC noc.Config

	DRAMChannels int
	// MemRespLatency is the on-chip transit time from the memory
	// controller back to the LLC slice (Fig. 3: MCs sit across the
	// interconnect from the L2 slices). It extends the lifetime of an
	// MSHR entry and is what makes miss-handling throughput — not raw
	// DRAM bandwidth — the binding constraint, the regime Section 6.3
	// studies.
	MemRespLatency int

	// Policies.
	Arbiter  arbiter.Kind
	Throttle string // "none", "dyncta", "lcs", "dynmg", "static:N"
	// DynMG / DYNCTA optionally override the controller parameters
	// (nil = package defaults, i.e. the swept optima of Tables 2–4).
	DynMG  *throttle.DynMGParams
	DYNCTA *throttle.DYNCTAParams

	// Scheduler selects thread-block dispatch: "affinity" (default),
	// "global", or "partitioned" (the no-migration ablation).
	Scheduler string

	// ReqRespArb forces the request-response arbitration flavour on
	// every slice: "" (policy default), "resp-first" or "req-first"
	// (Section 3.3 evaluates both).
	ReqRespArb string
	// Bypass enables the fill bypass manager (disabled in the paper's
	// evaluation for fairness; an ablation knob here).
	Bypass bool

	// MaxCycles aborts a run that fails to drain (deadlock guard).
	// Zero means a generous automatic bound.
	MaxCycles int64

	// Reference forces the retained per-cycle reference loop instead
	// of the event-horizon fast-forward engine. Both produce
	// bit-identical Cycles, Counters and Metrics (the equivalence
	// tests assert it); the reference loop is the ground truth and a
	// debugging aid, the fast-forward engine is the default.
	Reference bool
}

// DefaultConfig returns the simulated system of Table 5: 1.96 GHz, 16
// cores (vector width 128 B, 4 instruction windows of depth 128,
// 64 KB streaming write-through L1), 16 MB L2 in 8 slices (8-way,
// hit latency 3, data latency 25, MSHR 6x8 per slice, mshr latency 5,
// request queue 12, response queue 64, response-queue-first), and
// 4-channel DDR5-3200.
func DefaultConfig() Config {
	return Config{
		FreqGHz:        1.96,
		NumCores:       16,
		NumSlices:      8,
		LineBytes:      64,
		NumWindows:     4,
		WindowDepth:    128,
		VectorBytes:    128,
		EgressCap:      16,
		L1SizeBytes:    64 << 10,
		L1Assoc:        8,
		L2SizeBytes:    16 << 20,
		L2Assoc:        8,
		HitLatency:     3,
		DataLatency:    25,
		MSHRLatency:    5,
		MSHREntries:    6,
		MSHRTargets:    8,
		ReqQSize:       12,
		RespQSize:      64,
		HitBufSize:     32,
		WBBufSize:      8,
		NoC:            noc.DefaultConfig(),
		DRAMChannels:   4,
		MemRespLatency: 30,
		Arbiter:        arbiter.FCFS,
		Throttle:       "none",
		Scheduler:      "affinity",
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.FreqGHz <= 0:
		return fmt.Errorf("sim: FreqGHz must be positive, got %g", c.FreqGHz)
	case c.NumCores <= 0:
		return fmt.Errorf("sim: NumCores must be positive, got %d", c.NumCores)
	case c.NumSlices <= 0 || c.NumSlices&(c.NumSlices-1) != 0:
		return fmt.Errorf("sim: NumSlices must be a positive power of two, got %d", c.NumSlices)
	case c.L2SizeBytes%c.NumSlices != 0:
		return fmt.Errorf("sim: L2SizeBytes %d not divisible by %d slices", c.L2SizeBytes, c.NumSlices)
	}
	switch c.Scheduler {
	case "", "affinity", "global", "partitioned":
	default:
		return fmt.Errorf("sim: unknown scheduler %q", c.Scheduler)
	}
	return nil
}

// Result is the outcome of one simulation run.
type Result struct {
	Cycles   int64
	Counters stats.Counters
	Metrics  stats.Metrics
	// Steals counts thread-block migrations (affinity scheduler).
	Steals int64
}

// Engine is one configured simulation instance: build, Run, read the
// Result — then either discard it or rewind it onto the next trace
// with Reset (the serving engine's per-token-step fast path).
type Engine struct {
	cfg      Config
	cores    []*vcore.Core
	slices   []*llc.Slice
	net      *noc.NoC
	mem      *dram.DRAM
	pool     sched.Pool
	reqPool  *memreq.Pool
	ctrl     throttle.Controller
	ctr      stats.Counters
	progress []int64
	signals  throttle.Signals
	groupSz  int
	autoMax  int64
	// respInFlight models the MC→slice transit of fill data.
	respInFlight []dram.Response

	// Component-level fast-forward state: per-component wake horizons
	// (the component's own NextEvent, valid until an external input
	// arrives) plus the cheap external-input checks that re-arm them.
	coreWake    []int64
	coreLimit   []int
	coreEgSlice []int // egress head's target slice, -1 when empty
	sliceWake   []int64
	// memFreed records that a DRAM command drained channel-queue space
	// last cycle, waking slices blocked on CanEnqueue.
	memFreed bool
	// ctrlWake is the controller's next output-change boundary; until
	// it arrives the per-core limits are provably unchanged and the
	// per-cycle MaxTB polling is skipped (except for event-driven
	// observers like LCS, which bypass this gate).
	ctrlWake int64
	// coreLoopWake is the minimum core wake; when it has not arrived,
	// no response flit is due and no ingress path regained space, the
	// entire core loop is skipped in O(1) and its per-cycle counter
	// effects accumulate in corePending, flushed before anything reads
	// the counters (a controller boundary, a real core loop, the
	// Result).
	coreLoopWake   int64
	coreSpaceEpoch int64

	// Whole-slice-loop skip, mirroring the core side: when no slice
	// has self-work due, no request flit is acceptable now or soon,
	// the head set is unchanged and no DRAM queue freed space a
	// waiting slice wants, the slice loop is skipped in O(1).
	sliceLoopWake   int64
	sliceWaitsAny   bool
	sliceNextArrive int64
	sliceFrontEpoch int64
	sliceWaits      []bool

	// Debt-based settlement: skipped components do no per-cycle
	// counter work at all. coreApplied/sliceApplied record the last
	// cycle whose counter effects have been applied for each
	// component; the gap to the current cycle is settled from the
	// component's frozen stall profile when it next real-ticks, at a
	// controller boundary (the controller reads the counters), or at
	// the end of the run.
	coreApplied  []int64
	sliceApplied []int64
}

// New builds an engine for a trace. groupSize is the workload's G
// (query heads per group), which the affinity dispatcher uses for the
// spatial mapping.
func New(cfg Config, trace *memtrace.Trace, groupSize int) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trace == nil || len(trace.Blocks) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	e := &Engine{cfg: cfg, reqPool: &memreq.Pool{}, groupSz: groupSize}
	e.progress = make([]int64, cfg.NumCores)
	e.coreWake = make([]int64, cfg.NumCores)
	e.coreLimit = make([]int, cfg.NumCores)
	e.coreEgSlice = make([]int, cfg.NumCores)
	e.sliceWake = make([]int64, cfg.NumSlices)
	e.sliceWaits = make([]bool, cfg.NumSlices)
	e.coreApplied = make([]int64, cfg.NumCores)
	e.sliceApplied = make([]int64, cfg.NumSlices)
	for i := range e.coreLimit {
		e.coreLimit[i] = -1 // force the first tick to publish maxTB
		e.coreEgSlice[i] = -1
		e.coreApplied[i] = -1
	}
	for i := range e.sliceApplied {
		e.sliceApplied[i] = -1
	}
	// Deadlock guard: even a fully serialised run (every line access
	// taking a whole DRAM round trip, no overlap at all) finishes well
	// within this bound.
	linesPerVec := int64(cfg.VectorBytes/cfg.LineBytes + 1)
	e.autoMax = 400*int64(trace.TotalMemInsts())*linesPerVec + 1_000_000

	var err error
	switch {
	case cfg.Throttle == "dynmg" && cfg.DynMG != nil:
		e.ctrl = throttle.NewDynMG(cfg.NumCores, cfg.NumWindows, *cfg.DynMG)
	case cfg.Throttle == "dyncta" && cfg.DYNCTA != nil:
		e.ctrl = throttle.NewDYNCTA(cfg.NumCores, cfg.NumWindows, *cfg.DYNCTA)
	default:
		e.ctrl, err = throttle.ParseName(cfg.Throttle, cfg.NumCores, cfg.NumWindows)
		if err != nil {
			return nil, err
		}
	}

	e.net, err = noc.New(cfg.NoC, cfg.NumCores, cfg.NumSlices, &e.ctr)
	if err != nil {
		return nil, err
	}

	dcfg := dram.NewDDR5_3200(cfg.FreqGHz, cfg.DRAMChannels)
	dcfg.LineBytes = cfg.LineBytes
	// Channel bits sit just above the slice-interleave bits.
	bits := 0
	for s := cfg.NumSlices; s > 1; s >>= 1 {
		bits++
	}
	dcfg.ChannelBitPos = bits
	e.mem, err = dram.New(dcfg, &e.ctr)
	if err != nil {
		return nil, err
	}

	l1cfg := cache.Config{
		SizeBytes: cfg.L1SizeBytes,
		LineBytes: cfg.LineBytes,
		Assoc:     cfg.L1Assoc,
		Alloc:     cache.AllocOnFill,
		Write:     cache.WritePolicy{WriteAllocate: false, WriteBack: false},
		Streaming: true,
	}
	e.cores = make([]*vcore.Core, cfg.NumCores)
	for i := range e.cores {
		core, err := vcore.New(vcore.Config{
			ID:          i,
			NumWindows:  cfg.NumWindows,
			WindowDepth: cfg.WindowDepth,
			VectorBytes: cfg.VectorBytes,
			LineBytes:   cfg.LineBytes,
			EgressCap:   cfg.EgressCap,
			NumSlices:   cfg.NumSlices,
			L1:          l1cfg,
		}, e.net, e.reqPool, &e.ctr)
		if err != nil {
			return nil, err
		}
		e.cores[i] = core
	}

	e.slices = make([]*llc.Slice, cfg.NumSlices)
	for i := range e.slices {
		scfg := llc.Config{
			Index:     i,
			NumSlices: cfg.NumSlices,
			NumCores:  cfg.NumCores,
			Cache: cache.Config{
				SizeBytes: cfg.L2SizeBytes / cfg.NumSlices,
				LineBytes: cfg.LineBytes,
				Assoc:     cfg.L2Assoc,
				Alloc:     cache.AllocOnFill,
				Write:     cache.WritePolicy{WriteAllocate: true, WriteBack: true},
			},
			HitLatency:      cfg.HitLatency,
			DataLatency:     cfg.DataLatency,
			MSHRLatency:     cfg.MSHRLatency,
			MSHREntries:     cfg.MSHREntries,
			MSHRTargets:     cfg.MSHRTargets,
			ReqQSize:        cfg.ReqQSize,
			RespQSize:       cfg.RespQSize,
			HitBufSize:      cfg.HitBufSize,
			WBBufSize:       cfg.WBBufSize,
			Policy:          cfg.Arbiter,
			ReqRespOverride: cfg.ReqRespArb,
			Bypass:          cfg.Bypass,
		}
		s, err := llc.New(scfg, e.net, e.mem, e.reqPool, &e.ctr)
		if err != nil {
			return nil, err
		}
		s.SetGlobalProgress(e.progress)
		e.slices[i] = s
	}

	switch cfg.Scheduler {
	case "", "affinity":
		e.pool, err = sched.NewAffinityPool(trace, cfg.NumCores, groupSize, cfg.MSHRTargets+1)
	case "global":
		e.pool = sched.NewGlobalPool(trace)
	case "partitioned":
		e.pool, err = sched.NewPartitionedPool(trace, cfg.NumCores)
	}
	if err != nil {
		return nil, err
	}

	e.signals = throttle.Signals{
		NumCores:    cfg.NumCores,
		MaxWindows:  cfg.NumWindows,
		CacheStall:  func() int64 { return e.ctr.CacheStall },
		SliceCycles: func() int64 { return e.ctr.SliceCycles },
		CoreMem:     func(core int) int64 { return e.cores[core].CMem },
		CoreIdle:    func(core int) int64 { return e.cores[core].CIdle },
		Progress:    func(core int) int64 { return e.progress[core] },
	}

	// Every request lives in a core egress queue, the interconnect, a
	// slice request queue or a slice pipeline; pre-filling the free
	// list to that bound keeps the steady-state loop allocation-free.
	e.reqPool.Prealloc(cfg.NumCores*cfg.EgressCap +
		cfg.NumSlices*(cfg.NoC.SliceBufCap+cfg.ReqQSize+cfg.HitLatency+cfg.MSHRLatency+2))
	return e, nil
}

// Reset rewinds the engine onto a new trace without rebuilding the
// machine: counters zeroed, queues drained, component state (cores,
// LLC slices, interconnect, DRAM channels, throttle controller) and
// the memreq free list reused in place, and the dispatcher reloaded.
// A Reset engine run is bit-identical to a fresh New(cfg, trace,
// groupSize) run — the reset equivalence tests assert it across the
// policy/arbiter/scheduler matrix — which is what lets the serving
// engine keep one persistent simulator instead of constructing and
// discarding a whole machine per token step.
func (e *Engine) Reset(trace *memtrace.Trace, groupSize int) error {
	if trace == nil || len(trace.Blocks) == 0 {
		return fmt.Errorf("sim: empty trace")
	}
	if groupSize <= 0 {
		return fmt.Errorf("sim: groupSize must be positive, got %d", groupSize)
	}
	e.groupSz = groupSize
	e.ctr = stats.Counters{}
	for i := range e.progress {
		e.progress[i] = 0
	}
	for i := range e.coreWake {
		e.coreWake[i] = 0
		e.coreLimit[i] = -1 // force the first tick to publish maxTB
		e.coreEgSlice[i] = -1
		e.coreApplied[i] = -1
	}
	for i := range e.sliceWake {
		e.sliceWake[i] = 0
		e.sliceWaits[i] = false
		e.sliceApplied[i] = -1
	}
	linesPerVec := int64(e.cfg.VectorBytes/e.cfg.LineBytes + 1)
	e.autoMax = 400*int64(trace.TotalMemInsts())*linesPerVec + 1_000_000

	e.ctrl.Reset()
	e.net.Reset()
	e.mem.Reset()
	for _, c := range e.cores {
		c.Reset()
	}
	for _, s := range e.slices {
		s.Reset()
	}
	switch p := e.pool.(type) {
	case *sched.AffinityPool:
		p.Reload(trace, groupSize, e.cfg.MSHRTargets+1)
	case *sched.GlobalPool:
		p.Reload(trace)
	case *sched.PartitionedPool:
		p.Reload(trace)
	default:
		return fmt.Errorf("sim: cannot reset unknown pool type %T", e.pool)
	}

	e.respInFlight = e.respInFlight[:0]
	e.memFreed = false
	e.ctrlWake = 0
	e.coreLoopWake = 0
	e.coreSpaceEpoch = 0
	e.sliceLoopWake = 0
	e.sliceWaitsAny = false
	e.sliceNextArrive = 0
	e.sliceFrontEpoch = 0
	return nil
}

// Run executes the cycle loop to completion and returns the collected
// statistics. By default it uses the event-horizon fast-forward
// engine: after each real cycle it asks every component for the
// earliest cycle at which that component's state can change (next
// DRAM timing edge, next in-flight NoC delivery, next pipeline or
// hit-response ready time, next core compute-retire, next throttle
// period boundary); when no component has work due, the clock jumps
// straight to the minimum horizon and the per-cycle counters the
// skipped dead cycles would have accumulated (idle/stall
// classification, slice occupancy integrals, backpressure and
// reservation retries) are applied in bulk. Cfg.Reference selects the
// retained per-cycle reference loop; both produce bit-identical
// results.
func (e *Engine) Run() (Result, error) {
	maxCycles := e.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = e.autoMax
	}
	observer, _ := e.ctrl.(throttle.TBObserver)
	fastForward := !e.cfg.Reference
	e.mem.SetLazy(fastForward)

	now := int64(0)
	for ; now < maxCycles; now++ {
		e.tick(now, observer, fastForward)

		// Drain check, amortised.
		if now&63 == 0 && e.drained() {
			break
		}
		if !fastForward {
			continue
		}
		h := e.horizon(now)
		if h <= now+1 {
			continue
		}
		if e.drained() {
			// State is frozen across the dead window, so the reference
			// loop would keep ticking idle cycles only until its next
			// 64-aligned drain check; stop the jump there.
			if b := (now + 64) &^ 63; h > b {
				h = b
			}
		}
		if h > maxCycles {
			h = maxCycles
		}
		// The skipped cycles need no explicit work at all: every
		// component's settlement debt grows implicitly with the clock.
		now = h - 1
	}
	if now >= maxCycles {
		return Result{}, fmt.Errorf("sim: exceeded MaxCycles=%d without draining (deadlock?)", maxCycles)
	}
	e.settleAll(now)

	e.ctr.Cycles = now
	res := Result{
		Cycles:   now,
		Counters: e.ctr,
		Metrics:  e.ctr.Derive(e.cfg.FreqGHz, e.cfg.LineBytes, e.cfg.NumCores),
	}
	if ap, ok := e.pool.(*sched.AffinityPool); ok {
		res.Steals = ap.Steals
	}
	return res, nil
}

// tick advances every component by one cycle. Components whose cached
// wake horizon has not arrived and whose external inputs are silent
// (no delivered flit, no throttle-limit change, no freed egress slot
// or DRAM queue space) are provably state-frozen this cycle and are
// skipped without any per-cycle work; their counter effects are
// settled in bulk when they wake. Components with work due run the
// paper's original per-cycle logic unchanged.
func (e *Engine) tick(now int64, observer throttle.TBObserver, lazy bool) {
	boundary := now >= e.ctrlWake
	if boundary && lazy {
		e.settleAll(now - 1) // the controller reads counters this cycle
	}
	e.ctrl.Tick(now, &e.signals)
	checkLimits := observer != nil || boundary || !lazy
	if checkLimits {
		e.ctrlWake = e.ctrl.NextEvent(now)
	}

	if lazy && !checkLimits && now < e.coreLoopWake &&
		!e.net.RespDue(now) && e.net.SpaceEpoch() == e.coreSpaceEpoch {
		// No core has self-work due, no response is arriving, no
		// ingress path regained space and the limits are frozen: the
		// whole core loop is provably a stall cycle for every core.
	} else {
		wakeMin := int64(math.MaxInt64)
		for i, c := range e.cores {
			limit := e.coreLimit[i]
			if checkLimits {
				limit = e.ctrl.MaxTB(i)
			}
			if lazy && now < e.coreWake[i] && limit == e.coreLimit[i] &&
				!e.net.RespArrived(i, now) &&
				(e.coreEgSlice[i] < 0 || !e.net.CanSendReq(e.coreEgSlice[i])) {
				if e.coreWake[i] < wakeMin {
					wakeMin = e.coreWake[i]
				}
				continue
			}
			e.settleCore(i, now-1)
			e.coreApplied[i] = now
			c.SetMaxTB(limit)
			e.coreLimit[i] = limit
			e.net.DeliverResps(i, now, c.OnDelivery)
			c.Tick(now, e.pool)
			if observer != nil {
				for _, done := range c.DrainCompletions() {
					observer.ObserveTB(done.Core, done.BusyCycles, done.TotalCycles)
				}
			} else {
				c.DrainCompletions()
			}
			if lazy {
				e.coreWake[i] = c.NextEvent(now)
				e.coreEgSlice[i] = c.EgressHeadSlice()
				if e.coreWake[i] < wakeMin {
					wakeMin = e.coreWake[i]
				}
			}
		}
		e.coreLoopWake = wakeMin
		e.coreSpaceEpoch = e.net.SpaceEpoch()
	}

	if lazy && now < e.sliceLoopWake && now < e.sliceNextArrive &&
		e.net.FrontEpoch() == e.sliceFrontEpoch &&
		!(e.memFreed && e.sliceWaitsAny) {
		// No slice has self-work due, no flit is acceptable now or
		// soon, the ingress head set is unchanged and no freed DRAM
		// queue space is wanted: the whole slice loop is a stall cycle
		// for every slice.
	} else {
		sliceWakeMin := int64(math.MaxInt64)
		for i, s := range e.slices {
			if lazy && now < e.sliceWake[i] {
				wake := e.net.ReqArrived(i, now) && !s.ReqQFull()
				if !wake && e.memFreed && e.sliceWaits[i] {
					wake = true
				}
				if !wake {
					if e.sliceWake[i] < sliceWakeMin {
						sliceWakeMin = e.sliceWake[i]
					}
					continue
				}
			}
			e.settleSlice(i, now-1)
			e.sliceApplied[i] = now
			e.net.DeliverReqs(i, now, s.Accept)
			s.Tick(now)
			if lazy {
				e.sliceWake[i] = s.NextEvent(now)
				e.sliceWaits[i] = s.WaitsMem()
				if e.sliceWake[i] < sliceWakeMin {
					sliceWakeMin = e.sliceWake[i]
				}
			}
		}
		if lazy {
			e.sliceLoopWake = sliceWakeMin
			acceptable, nextAccept := e.net.ReqFrontState(now, e.sliceReqQFull)
			if acceptable {
				e.sliceLoopWake = now + 1
			}
			e.sliceNextArrive = nextAccept
			e.sliceFrontEpoch = e.net.FrontEpoch()
			e.sliceWaitsAny = false
			for _, w := range e.sliceWaits {
				if w {
					e.sliceWaitsAny = true
					break
				}
			}
		}
	}

	e.mem.Tick(now)
	e.memFreed = e.mem.ConsumeFreed()
	for _, resp := range e.mem.Responses(now) {
		resp.Done = now + int64(e.cfg.MemRespLatency)
		e.respInFlight = append(e.respInFlight, resp)
	}
	if len(e.respInFlight) > 0 {
		kept := e.respInFlight[:0]
		for _, resp := range e.respInFlight {
			if resp.Done <= now {
				e.slices[resp.Slice].OnDRAMResponse(resp, now)
				// Fill arrived: wake the slice and its loop.
				e.sliceWake[resp.Slice] = 0
				e.sliceLoopWake = 0
			} else {
				kept = append(kept, resp)
			}
		}
		e.respInFlight = kept
	}
}

// settleCore applies the counter effects of the core's unapplied
// skipped cycles up to and including `through`. Classification uses
// the first unapplied cycle, which provably lies inside the frozen
// window.
func (e *Engine) settleCore(i int, through int64) {
	if d := through - e.coreApplied[i]; d > 0 {
		e.cores[i].ApplyStallTicks(e.coreApplied[i]+1, d)
	}
	e.coreApplied[i] = through
}

// settleSlice applies the counter effects of the slice's unapplied
// skipped cycles up to and including `through`, including the
// per-cycle ingress queue-delay of an arrived head-of-line request
// blocked on the full request queue (both frozen across the window).
func (e *Engine) settleSlice(i int, through int64) {
	applied := e.sliceApplied[i]
	if d := through - applied; d > 0 {
		s := e.slices[i]
		s.ApplyStallTicks(applied+1, d)
		if s.ReqQFull() {
			if a := e.net.ReqFrontArrive(i); a <= through {
				from := applied
				if a-1 > from {
					from = a - 1
				}
				e.ctr.NetQueueDelay += through - from
			}
		}
	}
	e.sliceApplied[i] = through
}

// settleAll settles every core and slice through the given cycle.
func (e *Engine) settleAll(through int64) {
	for i := range e.cores {
		e.settleCore(i, through)
	}
	for i := range e.slices {
		e.settleSlice(i, through)
	}
}

// horizon returns the earliest cycle after now at which any component
// may change state — the event horizon. A return of now+1 means the
// next cycle must be ticked normally; anything later proves the
// intervening cycles dead. Components are consulted cheapest-first
// with an early exit, so busy phases pay almost nothing for the
// check.
func (e *Engine) horizon(now int64) int64 {
	h := e.ctrl.NextEvent(now)
	if h <= now+1 {
		return now + 1
	}
	// Core and slice horizons come from the cached per-component wakes
	// (refreshed at each component's most recent real tick; their
	// external gates are the other components' horizons below).
	for i, w := range e.coreWake {
		if w < h {
			if w <= now+1 {
				return now + 1
			}
			h = w
		}
		// A core wake assumes its egress stays blocked; slices tick
		// after cores, so an accept later in the same cycle can free
		// buffer space the cached wake never saw. Check freshly.
		if sl := e.coreEgSlice[i]; sl >= 0 && e.net.CanSendReq(sl) {
			return now + 1
		}
	}
	for _, w := range e.sliceWake {
		if w < h {
			if w <= now+1 {
				return now + 1
			}
			h = w
		}
	}
	if t := e.net.NextEvent(now, e.sliceReqQFull); t < h {
		if t <= now+1 {
			return now + 1
		}
		h = t
	}
	if t := e.mem.NextEvent(now); t < h {
		if t <= now+1 {
			return now + 1
		}
		h = t
	}
	for i := range e.respInFlight {
		if t := e.respInFlight[i].Done; t < h {
			h = t // post-tick, Done > now always
		}
	}
	return h
}

func (e *Engine) sliceReqQFull(i int) bool { return e.slices[i].ReqQFull() }

// drained reports whether all work has left the system.
func (e *Engine) drained() bool {
	if e.pool.Remaining() > 0 || e.net.Pending() > 0 || e.mem.Pending() > 0 || len(e.respInFlight) > 0 {
		return false
	}
	for _, c := range e.cores {
		if c.Busy() {
			return false
		}
	}
	for _, s := range e.slices {
		if s.Busy() {
			return false
		}
	}
	return true
}

// Cores exposes the core models (tests, diagnostics).
func (e *Engine) Cores() []*vcore.Core { return e.cores }

// Slices exposes the LLC slices (tests, diagnostics).
func (e *Engine) Slices() []*llc.Slice { return e.slices }

// Controller exposes the throttling controller (tests, diagnostics).
func (e *Engine) Controller() throttle.Controller { return e.ctrl }
