package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/memtrace"
)

// makeTrace builds a trace shaped like the Logit dataflow: H groups x
// G query heads x tiles, emitted with g innermost.
func makeTrace(h, g, tiles int) *memtrace.Trace {
	tr := &memtrace.Trace{Name: "t"}
	id := 0
	for hi := 0; hi < h; hi++ {
		for ti := 0; ti < tiles; ti++ {
			for gi := 0; gi < g; gi++ {
				tr.Blocks = append(tr.Blocks, &memtrace.ThreadBlock{
					ID:   id,
					Meta: memtrace.Meta{Group: hi, QHead: gi, TileLo: ti * 16, TileHi: (ti + 1) * 16},
				})
				id++
			}
		}
	}
	return tr
}

func TestGlobalPoolOrder(t *testing.T) {
	tr := makeTrace(2, 2, 2)
	p := NewGlobalPool(tr)
	if p.Remaining() != 8 {
		t.Fatalf("remaining=%d", p.Remaining())
	}
	for i := 0; i < 8; i++ {
		tb, ok := p.Next(i % 3)
		if !ok || tb.ID != i {
			t.Fatalf("block %d: got %v %v", i, tb, ok)
		}
	}
	if _, ok := p.Next(0); ok {
		t.Fatal("exhausted pool returned work")
	}
	if p.Remaining() != 0 {
		t.Fatal("remaining != 0 at end")
	}
}

func TestAffinityHomes(t *testing.T) {
	tr := makeTrace(8, 8, 4)
	p, err := NewAffinityPool(tr, 16, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Home of (h, g) is (h*8+g) mod 16; every block a core draws from
	// its own queue must match.
	for core := 0; core < 16; core++ {
		n := p.QueueLen(core)
		for i := 0; i < n; i++ {
			tb, ok := p.Next(core)
			if !ok {
				t.Fatalf("core %d starved at %d/%d", core, i, n)
			}
			home := (tb.Meta.Group*8 + tb.Meta.QHead) % 16
			if home != core {
				t.Fatalf("core %d drew block homed on %d", core, home)
			}
		}
	}
}

func TestAffinityTileMajorOrder(t *testing.T) {
	tr := makeTrace(8, 8, 4)
	p, err := NewAffinityPool(tr, 16, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	// A core's own queue must advance tile-major: TileLo non-decreasing.
	lastTile := -1
	for i := 0; i < p.QueueLen(0); i++ {
		tb, _ := p.Next(0)
		if tb.Meta.TileLo < lastTile {
			t.Fatalf("tile order regressed: %d after %d", tb.Meta.TileLo, lastTile)
		}
		lastTile = tb.Meta.TileLo
	}
}

func TestAffinityStealing(t *testing.T) {
	tr := makeTrace(4, 4, 2) // 16 (h,g) pairs over 4 cores
	p, err := NewAffinityPool(tr, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 drains its own queue, then steals from the most loaded.
	own := p.QueueLen(0)
	for i := 0; i < own; i++ {
		p.Next(0)
	}
	if p.Steals != 0 {
		t.Fatalf("steals=%d before exhaustion", p.Steals)
	}
	tb, ok := p.Next(0)
	if !ok || tb == nil {
		t.Fatal("steal failed with work remaining")
	}
	if p.Steals != 1 {
		t.Fatalf("steals=%d want 1", p.Steals)
	}
	// Stolen block belongs to another core.
	if (tb.Meta.Group*4+tb.Meta.QHead)%4 == 0 {
		t.Fatal("stole own block")
	}
}

func TestAffinityDrainsEverything(t *testing.T) {
	tr := makeTrace(8, 8, 2)
	p, err := NewAffinityPool(tr, 16, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	core := 0
	for {
		tb, ok := p.Next(core % 16)
		if !ok {
			break
		}
		if seen[tb.ID] {
			t.Fatalf("block %d dispatched twice", tb.ID)
		}
		seen[tb.ID] = true
		core++
	}
	if len(seen) != len(tr.Blocks) {
		t.Fatalf("dispatched %d of %d", len(seen), len(tr.Blocks))
	}
	if p.Remaining() != 0 {
		t.Fatal("remaining != 0")
	}
}

func TestAffinityValidation(t *testing.T) {
	tr := makeTrace(1, 1, 1)
	if _, err := NewAffinityPool(tr, 0, 1, 1); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewAffinityPool(tr, 4, 0, 4); err == nil {
		t.Fatal("zero group size accepted")
	}
}

func TestPartitionedNoStealing(t *testing.T) {
	tr := makeTrace(2, 2, 2)
	p, err := NewPartitionedPool(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Drain core 0's partition (blocks 0,2,4,6).
	for i := 0; i < 4; i++ {
		tb, ok := p.Next(0)
		if !ok || tb.ID != i*2 {
			t.Fatalf("core 0 block %d: %v %v", i, tb, ok)
		}
	}
	// Core 0 is done even though core 1 has work: no migration.
	if _, ok := p.Next(0); ok {
		t.Fatal("partitioned pool migrated work")
	}
	if p.Remaining() != 4 {
		t.Fatalf("remaining=%d", p.Remaining())
	}
}

// Every pool dispatches each block exactly once, whatever the request
// pattern.
func TestDispatchOnceProperty(t *testing.T) {
	tr := makeTrace(4, 4, 2)
	check := func(kind uint8, pattern []uint8) bool {
		if len(pattern) == 0 {
			return true
		}
		var p Pool
		switch kind % 3 {
		case 0:
			p = NewGlobalPool(makeTrace(4, 4, 2))
		case 1:
			p2, err := NewAffinityPool(makeTrace(4, 4, 2), 4, 4, 4)
			if err != nil {
				return false
			}
			p = p2
		default:
			p2, err := NewPartitionedPool(makeTrace(4, 4, 2), 4)
			if err != nil {
				return false
			}
			p = p2
		}
		seen := map[int]bool{}
		i := 0
		for p.Remaining() > 0 {
			core := int(pattern[i%len(pattern)]) % 4
			i++
			tb, ok := p.Next(core)
			if !ok {
				// Partitioned pools can starve one core; rotate.
				if _, isPart := p.(*PartitionedPool); isPart {
					allDone := true
					for c := 0; c < 4; c++ {
						if tb2, ok2 := p.Next(c); ok2 {
							if seen[tb2.ID] {
								return false
							}
							seen[tb2.ID] = true
							allDone = false
							break
						}
					}
					if allDone {
						break
					}
					continue
				}
				return false
			}
			if seen[tb.ID] {
				return false
			}
			seen[tb.ID] = true
			if i > 1000 {
				return false
			}
		}
		return len(seen) == len(tr.Blocks)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
