// Package sched implements thread-block dispatch to cores. The paper
// extends Ramulator2's one-trace-file-per-core frontend with a global
// scheduling mechanism that can hand the thread blocks of a slow core
// to a fast core ("Without this feature, our baselines would be
// under-estimated", Section 5). Three dispatchers model the design
// space:
//
//   - AffinityPool — the default: the dataflow's spatial mapping gives
//     every (head-group, query-head) stream a home core; a core that
//     drains its own queue steals from the most-loaded core. This is
//     the paper's global scheduling.
//   - GlobalPool — a single FIFO any core pulls from.
//   - PartitionedPool — static per-core assignment with no stealing:
//     the original Ramulator2 restriction, kept for the ablation.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/memtrace"
)

// Pool dispenses thread blocks to cores.
type Pool interface {
	// Next returns the next block for core, or false when no work
	// remains anywhere (for stealing pools) or for this core (for
	// partitioned pools).
	Next(core int) (*memtrace.ThreadBlock, bool)
	// Remaining reports how many blocks are still undispatched.
	Remaining() int
}

// GlobalPool dispatches blocks in trace order to whichever core asks
// first.
type GlobalPool struct {
	blocks []*memtrace.ThreadBlock
	next   int
}

// NewGlobalPool wraps a trace in a global FIFO dispatcher.
func NewGlobalPool(t *memtrace.Trace) *GlobalPool {
	return &GlobalPool{blocks: t.Blocks}
}

// Reload rewinds the dispatcher onto a new trace — the resettable
// engine's path for reusing one pool across runs.
func (p *GlobalPool) Reload(t *memtrace.Trace) {
	p.blocks = t.Blocks
	p.next = 0
}

// Next implements Pool.
func (p *GlobalPool) Next(core int) (*memtrace.ThreadBlock, bool) {
	if p.next >= len(p.blocks) {
		return nil, false
	}
	tb := p.blocks[p.next]
	p.next++
	return tb, true
}

// Remaining implements Pool.
func (p *GlobalPool) Remaining() int { return len(p.blocks) - p.next }

// AffinityPool is the default dispatcher: the spatial mapping assigns
// each (group, query-head) pair a home core, so the cores of one head
// group stream the same K tiles concurrently — the GQA cross-core
// reuse the CAT policies exploit. When a core's own queue empties it
// steals the oldest block from the most-loaded queue, which is the
// paper's slow-core-to-fast-core migration.
type AffinityPool struct {
	queues    [][]*memtrace.ThreadBlock
	heads     []int
	remaining int
	numCores  int
	groupSize int
	// Steals counts cross-core migrations (diagnostics).
	Steals int64
}

// NewAffinityPool partitions the trace by home core. groupSize is the
// model's G (query heads per group); sharerLimit bounds how many
// distinct cores stream one head group's K tiles concurrently —
// Section 6.2.2's "hardware-friendly workload" constraint, normally
// the MSHR's merge capacity (numTarget + the primary). Query heads
// beyond the limit fold onto the same cores (their duplicate line
// accesses merge in the private L1), and the remaining cores take
// other head groups, staggering the streams.
//
// With A = min(G, numCores, sharerLimit) and B = numCores/A, block
// (h, g) of stream s is homed on core (g mod A) + A*((h+s) mod B).
// For single-stream traces (s = 0) and Llama3-70B (G=8, 16 cores)
// this reduces to (h*G+g) mod numCores; for Llama3-405B (G=16) it
// splits the 16 query heads over 8 cores per head group so
// co-requests never exceed the MSHR target capacity. In multi-stream
// serving traces the stream index rotates each stream's head groups
// across the B dimension, so concurrent decode requests spread over
// the cores instead of piling onto the same homes.
func NewAffinityPool(t *memtrace.Trace, numCores, groupSize, sharerLimit int) (*AffinityPool, error) {
	if numCores <= 0 {
		return nil, fmt.Errorf("sched: numCores must be positive, got %d", numCores)
	}
	if groupSize <= 0 {
		return nil, fmt.Errorf("sched: groupSize must be positive, got %d", groupSize)
	}
	p := &AffinityPool{
		queues:   make([][]*memtrace.ThreadBlock, numCores),
		heads:    make([]int, numCores),
		numCores: numCores,
	}
	p.Reload(t, groupSize, sharerLimit)
	return p, nil
}

// Reload rewinds the dispatcher onto a new trace (and group size),
// reusing the per-core queue backings — the resettable engine's path
// for reusing one pool across runs. A reloaded pool is
// indistinguishable from a fresh NewAffinityPool.
func (p *AffinityPool) Reload(t *memtrace.Trace, groupSize, sharerLimit int) {
	if sharerLimit <= 0 {
		sharerLimit = p.numCores
	}
	p.groupSize = groupSize
	for c := range p.queues {
		p.queues[c] = p.queues[c][:0]
		p.heads[c] = 0
	}
	numCores := p.numCores
	a := groupSize
	if a > numCores {
		a = numCores
	}
	if a > sharerLimit {
		a = sharerLimit
	}
	b := numCores / a
	if b < 1 {
		b = 1
	}
	for _, tb := range t.Blocks {
		home := (tb.Meta.QHead % a) + a*((tb.Meta.Group+tb.Meta.Stream)%b)
		p.queues[home%numCores] = append(p.queues[home%numCores], tb)
	}
	// Interleave each core's streams tile-major: the core's windows
	// advance all of its (group, query-head) streams together, the
	// way the spatial mapping runs them concurrently on hardware. The
	// live working set therefore spans every head group at once —
	// sequence length and active-window count directly control cache
	// pressure, which is the regime the paper studies.
	for c := range p.queues {
		q := p.queues[c]
		sort.SliceStable(q, func(a, b int) bool {
			if q[a].Meta.TileLo != q[b].Meta.TileLo {
				return q[a].Meta.TileLo < q[b].Meta.TileLo
			}
			if q[a].Meta.Stream != q[b].Meta.Stream {
				return q[a].Meta.Stream < q[b].Meta.Stream
			}
			if q[a].Meta.Group != q[b].Meta.Group {
				return q[a].Meta.Group < q[b].Meta.Group
			}
			return q[a].Meta.QHead < q[b].Meta.QHead
		})
	}
	p.remaining = len(t.Blocks)
	p.Steals = 0
}

// Next implements Pool: own queue first, then steal from the
// most-loaded queue.
func (p *AffinityPool) Next(core int) (*memtrace.ThreadBlock, bool) {
	if core < 0 || core >= p.numCores {
		return nil, false
	}
	if tb := p.pop(core); tb != nil {
		return tb, true
	}
	// Steal from the queue with the most remaining work.
	victim, most := -1, 0
	for c := 0; c < p.numCores; c++ {
		if n := len(p.queues[c]) - p.heads[c]; n > most {
			victim, most = c, n
		}
	}
	if victim < 0 {
		return nil, false
	}
	p.Steals++
	return p.pop(victim), true
}

func (p *AffinityPool) pop(core int) *memtrace.ThreadBlock {
	if p.heads[core] >= len(p.queues[core]) {
		return nil
	}
	tb := p.queues[core][p.heads[core]]
	p.queues[core][p.heads[core]] = nil // allow GC of dispatched blocks
	p.heads[core]++
	p.remaining--
	return tb
}

// Remaining implements Pool.
func (p *AffinityPool) Remaining() int { return p.remaining }

// QueueLen reports the undispatched blocks homed on core.
func (p *AffinityPool) QueueLen(core int) int {
	return len(p.queues[core]) - p.heads[core]
}

// PartitionedPool assigns blocks statically (round-robin by block
// index) with no migration — the pre-extension Ramulator2 behaviour
// used for the global-scheduling ablation.
type PartitionedPool struct {
	queues    [][]*memtrace.ThreadBlock
	heads     []int
	remaining int
}

// NewPartitionedPool splits the trace round-robin over numCores.
func NewPartitionedPool(t *memtrace.Trace, numCores int) (*PartitionedPool, error) {
	if numCores <= 0 {
		return nil, fmt.Errorf("sched: numCores must be positive, got %d", numCores)
	}
	p := &PartitionedPool{
		queues: make([][]*memtrace.ThreadBlock, numCores),
		heads:  make([]int, numCores),
	}
	p.Reload(t)
	return p, nil
}

// Reload rewinds the dispatcher onto a new trace, reusing the per-core
// queue backings.
func (p *PartitionedPool) Reload(t *memtrace.Trace) {
	for c := range p.queues {
		p.queues[c] = p.queues[c][:0]
		p.heads[c] = 0
	}
	for i, tb := range t.Blocks {
		p.queues[i%len(p.queues)] = append(p.queues[i%len(p.queues)], tb)
	}
	p.remaining = len(t.Blocks)
}

// Next implements Pool: strictly the core's own queue.
func (p *PartitionedPool) Next(core int) (*memtrace.ThreadBlock, bool) {
	if core < 0 || core >= len(p.queues) {
		return nil, false
	}
	if p.heads[core] >= len(p.queues[core]) {
		return nil, false
	}
	tb := p.queues[core][p.heads[core]]
	p.queues[core][p.heads[core]] = nil
	p.heads[core]++
	p.remaining--
	return tb, true
}

// Remaining implements Pool.
func (p *PartitionedPool) Remaining() int { return p.remaining }
