// Package hwprof is the hardware-counter attribution layer of the
// serving stack: a per-step delta capture that explains where a
// node's cycles and DRAM bytes went. The paper's whole argument runs
// through hardware counters (cycles, cache-stall fraction t_cs, L2
// and MSHR hit rates, DRAM bandwidth — Section 6, Fig. 8), but the
// serving and cluster layers report them only as one whole-run
// aggregate per node; this package attributes every step's counter
// delta three ways:
//
//   - by phase — prefill vs decode vs recompute-after-preempt vs
//     recompute-after-redispatch — so the recompute tax of preemption
//     and crash recovery is visible as hardware work, not just as
//     token counts;
//   - by request — each co-scheduled stream receives a share of the
//     step's cycles and bytes proportional to its tokens in the
//     composed trace, rolled into per-request HWCost percentiles;
//   - by wall-clock bucket on the telemetry sampling grid — the
//     utilization time series the bottleneck classifier reads.
//
// The capture is exact, not sampled: the serving engine already
// applies every step as a (cycles, counters) delta — simulated steps
// from the cycle engine's Result, memo-replayed steps from the stored
// memo entry — so Step receives the authoritative delta on both
// paths and the fast path stays faithful. Summing the per-step deltas
// reproduces the whole-run stats.Counters bit for bit (the
// reconciliation tests enforce it), and a disabled profiler is
// bit-inert: every engine emission site is nil-guarded, exactly like
// the telemetry recorder.
package hwprof

import "repro/internal/stats"

// Phase enumerates where a step participant's hardware work is
// attributed. The zero value is PhasePrefill.
type Phase uint8

const (
	// PhasePrefill: a plain prefill chunk of a prompt never served
	// before on this node.
	PhasePrefill Phase = iota
	// PhaseDecode: one decode token of a running stream.
	PhaseDecode
	// PhaseRecomputePreempt: a prefill chunk re-deriving KV that a
	// preemption evicted (prompt plus previously generated tokens).
	PhaseRecomputePreempt
	// PhaseRecomputeRedispatch: a prefill chunk re-deriving KV lost
	// with a crashed node, paid by the node the request was
	// redispatched to.
	PhaseRecomputeRedispatch

	// NumPhases is the phase count, for fixed-size attribution arrays.
	NumPhases
)

var phaseNames = [...]string{
	"prefill", "decode", "recompute-preempt", "recompute-redispatch",
}

// String returns the stable wire name of the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Spec configures profiling for a run. The zero value disables it —
// every engine hook is nil-guarded, so a disabled profile leaves the
// exact pre-profiling branch structure (bit-inert, like telemetry).
type Spec struct {
	// Enabled turns per-step capture on.
	Enabled bool
	// SampleEvery is the wall-clock bucket width in cycles, shared
	// with the telemetry gauge sampler's k·SampleEvery grid so
	// hardware buckets align with gauge samples. 0 = one whole-run
	// bucket.
	SampleEvery int64
	// Thresholds tunes the bottleneck classifier (zero value: the
	// package defaults).
	Thresholds Thresholds
}

// Params is the hardware shape the profile derives rates against,
// copied from the sim.Config the engine runs.
type Params struct {
	FreqGHz      float64
	LineBytes    int
	NumCores     int
	DRAMChannels int
}

// HWCost is a hardware cost attribution: the summable slice of a
// step's counter delta that one phase or one request received. Cycles
// are wall cycles (straggler slowdown included, matching the engine's
// clock); DRAMBytes is line-sized traffic (reads + writes);
// MemStallCycles is core-cycles blocked on memory (C_mem).
type HWCost struct {
	Cycles         int64
	DRAMBytes      int64
	L2Hits         int64
	L2Misses       int64
	MemStallCycles int64
}

// add accumulates o into c.
func (c *HWCost) add(o HWCost) {
	c.Cycles += o.Cycles
	c.DRAMBytes += o.DRAMBytes
	c.L2Hits += o.L2Hits
	c.L2Misses += o.L2Misses
	c.MemStallCycles += o.MemStallCycles
}

// PhaseCost is one phase's attribution across a run.
type PhaseCost struct {
	Phase Phase
	// Steps counts the steps that carried at least one participant in
	// this phase (a chunked step with decodes and a recompute chunk
	// counts once for each phase present).
	Steps int64
	// Tokens is the tokens this phase processed: decode tokens for
	// PhaseDecode, prefilled prompt tokens for the prefill phases.
	Tokens int64
	HWCost
}

// StreamShare is one stream's participation in a composed step, the
// attribution weight the engine hands Step for every participant.
type StreamShare struct {
	// Req is the request ID the stream serves.
	Req int
	// Tokens is the stream's tokens in the composed trace: 1 for a
	// decode participant, the chunk length for a prefill pass.
	Tokens int
	// Phase is where this share's slice of the delta is attributed.
	Phase Phase
}

// bucketAcc is one sampling-grid bucket's raw accumulation.
type bucketAcc struct {
	steps int64
	busy  int64 // wall cycles of the steps that completed in the bucket
	ctr   stats.Counters
}

// Profile captures one node engine's per-step hardware-counter
// deltas. Not safe for concurrent use: like a telemetry Buffer, a
// Profile is only ever touched by the goroutine advancing the engine
// it is attached to, which is what keeps cluster runs byte-identical
// at any fan-out width.
type Profile struct {
	spec Spec
	par  Params

	steps      int64
	wallCycles int64 // Σ scaled step cycles == the engine's busy Cycles
	total      stats.Counters
	phases     [NumPhases]PhaseCost
	perReq     map[int]*HWCost
	buckets    []bucketAcc

	// split scratch, reused across steps.
	splitBuf [5][]int64
}

// New builds a profile for one engine. Callers pass the hardware
// parameters of the engine's sim.Config; the spec's thresholds are
// defaulted here so a zero Thresholds means the package defaults.
func New(par Params, spec Spec) *Profile {
	spec.Thresholds = spec.Thresholds.withDefaults()
	p := &Profile{spec: spec, par: par, perReq: make(map[int]*HWCost)}
	for i := range p.phases {
		p.phases[i].Phase = Phase(i)
	}
	return p
}

// Step folds one applied engine step into the profile. completion is
// the engine clock after the step (the cycle every participant's
// token or chunk completed), stepCycles the step's wall cycle cost
// (straggler slowdown included) and ctr the step's raw counter delta
// — the simulated Result's counters or the memo entry's stored copy,
// bit-identical by the step-cache equivalence contract. shares lists
// every participant of the composed step in running-set order; the
// slice is only read during the call.
func (p *Profile) Step(completion, stepCycles int64, ctr *stats.Counters, shares []StreamShare) {
	p.steps++
	p.wallCycles += stepCycles
	p.total.Add(ctr)

	b := p.bucket(completion)
	b.steps++
	b.busy += stepCycles
	b.ctr.Add(ctr)

	totTok := 0
	for i := range shares {
		totTok += shares[i].Tokens
	}
	if totTok <= 0 {
		return
	}
	// The five summable attribution quantities, split exactly across
	// participants by token weight (see splitByTokens): the shares of
	// each quantity sum back to the step's value bit for bit.
	dram := (ctr.DRAMReads + ctr.DRAMWrites) * int64(p.par.LineBytes)
	cyc := p.split(0, stepCycles, shares, totTok)
	db := p.split(1, dram, shares, totTok)
	l2h := p.split(2, ctr.L2Hits, shares, totTok)
	l2m := p.split(3, ctr.L2Misses, shares, totTok)
	stall := p.split(4, ctr.CoreMemStall, shares, totTok)

	var seen [NumPhases]bool
	for i := range shares {
		s := &shares[i]
		cost := HWCost{
			Cycles:         cyc[i],
			DRAMBytes:      db[i],
			L2Hits:         l2h[i],
			L2Misses:       l2m[i],
			MemStallCycles: stall[i],
		}
		ph := &p.phases[s.Phase]
		ph.add(cost)
		ph.Tokens += int64(s.Tokens)
		if !seen[s.Phase] {
			seen[s.Phase] = true
			ph.Steps++
		}
		rc := p.perReq[s.Req]
		if rc == nil {
			rc = &HWCost{}
			p.perReq[s.Req] = rc
		}
		rc.add(cost)
	}
}

// bucket returns the accumulation bucket a step completing at the
// given cycle lands in, growing the bucket list as the clock
// advances. Bucket i covers (i·K, (i+1)·K] on the shared sampling
// grid — a step completing exactly on a boundary belongs to the
// bucket it closed, matching the gauge sampler's boundary stamps.
func (p *Profile) bucket(completion int64) *bucketAcc {
	idx := 0
	if p.spec.SampleEvery > 0 && completion > 0 {
		idx = int((completion - 1) / p.spec.SampleEvery)
	}
	for len(p.buckets) <= idx {
		p.buckets = append(p.buckets, bucketAcc{})
	}
	return &p.buckets[idx]
}

// split divides total across the shares proportionally to their
// token weights, exactly: every share gets the floor of its
// proportional slice and the remainder units go to the first shares
// in running-set order, one each, so the pieces always sum back to
// total. The running set is deterministic (selectStep order), so the
// attribution is too — at any parallelism, memo on or off.
func (p *Profile) split(buf int, total int64, shares []StreamShare, totTok int) []int64 {
	out := p.splitBuf[buf][:0]
	var sum int64
	for i := range shares {
		v := total * int64(shares[i].Tokens) / int64(totTok)
		out = append(out, v)
		sum += v
	}
	for i := 0; sum < total; i++ {
		out[i]++
		sum++
	}
	p.splitBuf[buf] = out
	return out
}

// Steps returns the number of steps captured so far.
func (p *Profile) Steps() int64 { return p.steps }

// Total returns the bit-exact sum of every captured per-step counter
// delta — by construction equal to the engine's whole-run aggregate
// (the reconciliation tests compare the two for equality).
func (p *Profile) Total() stats.Counters { return p.total }
