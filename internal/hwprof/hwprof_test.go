package hwprof

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// mkCounters builds a counter delta with the fields the attribution
// and classifier read populated.
func mkCounters(cycles, dramRW, l2h, l2a, memStall, cacheStall, slice, bus int64) stats.Counters {
	return stats.Counters{
		Cycles: cycles, DRAMReads: dramRW, DRAMWrites: dramRW,
		L2Hits: l2h, L2Accesses: l2a, L2Misses: l2a - l2h,
		CoreMemStall: memStall, CacheStall: cacheStall,
		SliceCycles: slice, DRAMBusCycles: bus,
	}
}

var testPar = Params{FreqGHz: 2.0, LineBytes: 64, NumCores: 4, DRAMChannels: 2}

// TestSplitExact: the proportional split is exact — shares sum back
// to the total bit for bit even with awkward remainders, and the
// remainder units go to the first shares in order.
func TestSplitExact(t *testing.T) {
	p := New(testPar, Spec{Enabled: true})
	cases := []struct {
		total  int64
		tokens []int
	}{
		{100, []int{1, 1, 1}},
		{7, []int{3, 2, 2}},
		{1, []int{5, 5}},
		{999999999, []int{1, 31, 7, 1}},
		{0, []int{4, 4}},
	}
	for _, c := range cases {
		shares := make([]StreamShare, len(c.tokens))
		tot := 0
		for i, tk := range c.tokens {
			shares[i] = StreamShare{Req: i, Tokens: tk, Phase: PhaseDecode}
			tot += tk
		}
		got := p.split(0, c.total, shares, tot)
		var sum int64
		for _, v := range got {
			sum += v
		}
		if sum != c.total {
			t.Errorf("split(%d, %v) = %v, sums to %d", c.total, c.tokens, got, sum)
		}
	}
	// 100 over weights 1,1,1: floor gives 33 each, remainder 1 goes to
	// the first share.
	shares := []StreamShare{{Req: 0, Tokens: 1}, {Req: 1, Tokens: 1}, {Req: 2, Tokens: 1}}
	got := p.split(0, 100, shares, 3)
	if got[0] != 34 || got[1] != 33 || got[2] != 33 {
		t.Errorf("remainder placement: got %v, want [34 33 33]", got)
	}
}

// TestStepReconciliation: summed per-step deltas equal the profile
// total exactly, phase cycles sum to the wall cycles, and every
// request's attribution sums back too.
func TestStepReconciliation(t *testing.T) {
	p := New(testPar, Spec{Enabled: true, SampleEvery: 100})
	var want stats.Counters
	var wantCycles int64
	clock := int64(0)
	for i := 0; i < 17; i++ {
		ctr := mkCounters(int64(50+i*13), int64(10+i), 30, 40, 90, 8, 60, 25)
		step := int64(40 + i*7)
		clock += step
		shares := []StreamShare{
			{Req: i % 3, Tokens: 1, Phase: PhaseDecode},
			{Req: 3 + i%2, Tokens: 5 + i, Phase: PhasePrefill},
		}
		p.Step(clock, step, &ctr, shares)
		want.Add(&ctr)
		wantCycles += step
	}
	if p.Total() != want {
		t.Fatalf("Total() diverges from summed deltas:\n%+v\n%+v", p.Total(), want)
	}
	n := p.Snapshot(clock)
	var phaseCycles, reqCycles int64
	for _, ph := range n.Phases {
		phaseCycles += ph.Cycles
	}
	for _, r := range n.Requests {
		reqCycles += r.Cycles
	}
	if phaseCycles != wantCycles || reqCycles != wantCycles {
		t.Errorf("cycles: phases=%d requests=%d, want %d", phaseCycles, reqCycles, wantCycles)
	}
	var bucketSteps int64
	var bucketCtr stats.Counters
	for i := range n.Buckets {
		bucketSteps += n.Buckets[i].Steps
		c := n.Buckets[i].Counters
		bucketCtr.Add(&c)
	}
	if bucketSteps != p.Steps() || bucketCtr != want {
		t.Errorf("bucket view diverges: steps %d/%d", bucketSteps, p.Steps())
	}
}

// TestBucketIndexing: bucket i covers (i·K, (i+1)·K] — a step
// completing exactly on a boundary lands in the bucket it closed, and
// the snapshot extends past the last step so idle tails classify idle.
func TestBucketIndexing(t *testing.T) {
	p := New(testPar, Spec{Enabled: true, SampleEvery: 100})
	ctr := mkCounters(10, 1, 1, 2, 1, 1, 2, 1)
	p.Step(100, 10, &ctr, nil) // boundary: closes bucket 0
	p.Step(101, 10, &ctr, nil) // first cycle of bucket 1
	p.Step(250, 10, &ctr, nil) // interior of bucket 2
	n := p.Snapshot(1000)
	if len(n.Buckets) != 10 {
		t.Fatalf("snapshot has %d buckets, want 10 (makespan 1000 / 100)", len(n.Buckets))
	}
	wantSteps := []int64{1, 1, 1, 0, 0, 0, 0, 0, 0, 0}
	for i, w := range wantSteps {
		if n.Buckets[i].Steps != w {
			t.Errorf("bucket %d has %d steps, want %d", i, n.Buckets[i].Steps, w)
		}
	}
	for i := 3; i < 10; i++ {
		if n.Buckets[i].Class != ClassIdle {
			t.Errorf("idle-tail bucket %d classified %s", i, n.Buckets[i].Class)
		}
	}
	if n.Class != ClassIdle {
		t.Errorf("idle-tail node classified %s, want idle (7/10 idle buckets)", n.Class)
	}

	// SampleEvery 0: one whole-run bucket covering (0, makespan].
	p0 := New(testPar, Spec{Enabled: true})
	p0.Step(500, 400, &ctr, nil)
	n0 := p0.Snapshot(500)
	if len(n0.Buckets) != 1 || n0.Buckets[0].Start != 0 || n0.Buckets[0].End != 500 {
		t.Errorf("SampleEvery 0: buckets = %+v, want one (0, 500]", n0.Buckets)
	}
}

// TestClassifyLadder exercises every branch of the decision ladder on
// synthetic counters.
func TestClassifyLadder(t *testing.T) {
	th := DefaultThresholds()
	cases := []struct {
		name       string
		ctr        stats.Counters
		span, busy int64
		want       Class
	}{
		{"no steps", mkCounters(100, 0, 0, 0, 0, 0, 0, 0), 1000, 0, ClassIdle},
		{"below busy floor", mkCounters(100, 0, 0, 0, 0, 0, 0, 0), 1000, 50, ClassIdle},
		// t_cs = 70/100 >= 0.60 → stalled, even though memfrac is high.
		{"stalled", mkCounters(100, 0, 0, 0, 350, 70, 100, 0), 100, 100, ClassStalled},
		// memfrac = 320/(100·4) = 0.80 >= 0.50 → memory.
		{"memory via mem-stall", mkCounters(100, 0, 0, 0, 320, 10, 100, 0), 100, 100, ClassMemory},
		// bus = 120/(100·2) = 0.60 >= 0.50 → memory despite low memfrac.
		{"memory via bus", mkCounters(100, 0, 0, 0, 40, 10, 100, 120), 100, 100, ClassMemory},
		{"compute", mkCounters(100, 0, 0, 0, 40, 10, 100, 20), 100, 100, ClassCompute},
	}
	for _, c := range cases {
		got := th.Classify(&c.ctr, c.span, c.busy, testPar.NumCores, testPar.DRAMChannels)
		if got != c.want {
			t.Errorf("%s: classified %s, want %s", c.name, got, c.want)
		}
	}
}

// TestClassRoundTrip: wire names parse back, unknown names don't.
func TestClassRoundTrip(t *testing.T) {
	for c := ClassIdle; c < numClasses; c++ {
		got, ok := ClassFromString(c.String())
		if !ok || got != c {
			t.Errorf("ClassFromString(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ClassFromString("bogus"); ok {
		t.Error("ClassFromString accepted an unknown name")
	}
}

// TestMostSevere: the fleet-row reduction picks the most actionable
// diagnosis; empty input is idle.
func TestMostSevere(t *testing.T) {
	if got := MostSevere(nil); got != ClassIdle {
		t.Errorf("MostSevere(nil) = %s", got)
	}
	if got := MostSevere([]Class{ClassIdle, ClassCompute, ClassMemory}); got != ClassMemory {
		t.Errorf("MostSevere = %s, want memory-bound", got)
	}
	if got := MostSevere([]Class{ClassStalled, ClassMemory}); got != ClassStalled {
		t.Errorf("MostSevere = %s, want stalled", got)
	}
}

// TestMajorityTie: an even wall-clock split reports the more severe
// class.
func TestMajorityTie(t *testing.T) {
	var w [numClasses]int64
	w[ClassIdle] = 500
	w[ClassMemory] = 500
	if got := majority(w); got != ClassMemory {
		t.Errorf("majority tie = %s, want memory-bound", got)
	}
}

// TestFleetNil: nil entries are skipped, an all-nil fleet returns nil.
func TestFleetNil(t *testing.T) {
	if f := Fleet(nil); f != nil {
		t.Error("Fleet(nil) != nil")
	}
	if f := Fleet([]*NodeProfile{nil, nil}); f != nil {
		t.Error("Fleet(all-nil) != nil")
	}
	p := New(testPar, Spec{Enabled: true})
	ctr := mkCounters(100, 5, 30, 40, 320, 10, 100, 120)
	p.Step(100, 100, &ctr, []StreamShare{{Req: 7, Tokens: 1, Phase: PhaseDecode}})
	n := p.Snapshot(100)
	f := Fleet([]*NodeProfile{nil, n})
	if f == nil || f.Steps != 1 || f.Total != n.Total {
		t.Fatalf("Fleet skipped the live node: %+v", f)
	}
	if f.Class != ClassMemory {
		t.Errorf("fleet class = %s, want memory-bound", f.Class)
	}
}

// TestRenders: the report tables carry the load-bearing rows.
func TestRenders(t *testing.T) {
	p := New(testPar, Spec{Enabled: true, SampleEvery: 50})
	ctr := mkCounters(100, 5, 30, 40, 320, 10, 100, 120)
	p.Step(50, 50, &ctr, []StreamShare{
		{Req: 0, Tokens: 1, Phase: PhaseDecode},
		{Req: 1, Tokens: 8, Phase: PhaseRecomputePreempt},
	})
	n := p.Snapshot(100)
	out := n.Render("cell-a")
	for _, want := range []string{"hardware profile cell-a", "recompute-preempt", "per-request", "class"} {
		if !strings.Contains(out, want) {
			t.Errorf("node render missing %q:\n%s", want, out)
		}
	}
	f := Fleet([]*NodeProfile{n})
	fout := f.Render()
	for _, want := range []string{"fleet hardware profile", "memory-bound", "per-request cycles"} {
		if !strings.Contains(fout, want) {
			t.Errorf("fleet render missing %q:\n%s", want, fout)
		}
	}
}

// TestPhaseNames: the wire names are stable and cover every phase.
func TestPhaseNames(t *testing.T) {
	want := map[Phase]string{
		PhasePrefill:             "prefill",
		PhaseDecode:              "decode",
		PhaseRecomputePreempt:    "recompute-preempt",
		PhaseRecomputeRedispatch: "recompute-redispatch",
	}
	for ph, name := range want {
		if ph.String() != name {
			t.Errorf("Phase(%d).String() = %q, want %q", ph, ph.String(), name)
		}
	}
	if Phase(200).String() != "unknown" {
		t.Error("out-of-range phase should stringify as unknown")
	}
}
