// Snapshots and reports: the immutable views a Profile produces once
// a run has drained. A NodeProfile carries the three attribution
// views (phase, request, bucket) with derived rates and classes; a
// FleetProfile folds the per-node profiles into the cluster-level
// rollup; both render the aligned ProfileReport tables the CLIs
// print. Snapshots are plain data with stable field order, so the
// JSON they marshal to is byte-reproducible.

package hwprof

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// BucketStat is one sampling-grid bucket of the utilization
// time-series: raw counter sums plus the derived fractions the
// classifier read and the class it assigned. The bucket covers
// (Start, End] on the engine clock.
type BucketStat struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Steps and BusyCycles count the engine steps that completed in
	// the bucket and their wall-clock cost (straggler-scaled).
	Steps      int64 `json:"steps"`
	BusyCycles int64 `json:"busy_cycles"`
	// Counters is the raw delta sum over those steps.
	Counters stats.Counters `json:"counters"`
	// DRAMBytes is line-sized DRAM traffic (reads + writes).
	DRAMBytes int64 `json:"dram_bytes"`

	// Derived rates (zero when the denominators are).
	BusyFrac        float64 `json:"busy_frac"`        // busy cycles / bucket span
	L2HitRate       float64 `json:"l2_hit_rate"`      // hits / accesses
	CacheStallFrac  float64 `json:"cache_stall_frac"` // t_cs
	CoreMemFrac     float64 `json:"core_mem_frac"`    // C_mem / (cycles · cores)
	BusUtil         float64 `json:"bus_util"`         // bus cycles / (cycles · channels)
	DRAMGBPerKCycle float64 `json:"dram_gb_per_kcyc"` // GB moved per kilocycle of step time
	Class           Class   `json:"-"`                // the assigned class
	ClassName       string  `json:"class"`            // its wire name, for JSON
}

// RequestCost is one request's attributed hardware cost.
type RequestCost struct {
	Req int `json:"req"`
	HWCost
}

// Pct is a percentile summary of one per-request cost dimension.
type Pct struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// NodeProfile is the drained snapshot of one engine's profile.
type NodeProfile struct {
	Params      Params `json:"params"`
	SampleEvery int64  `json:"sample_every"`
	Makespan    int64  `json:"makespan"`

	Steps      int64 `json:"steps"`
	BusyCycles int64 `json:"busy_cycles"`
	// Total is the bit-exact sum of every per-step counter delta.
	Total stats.Counters `json:"total"`

	// Phases is indexed by Phase and always NumPhases long.
	Phases []PhaseCost `json:"phases"`
	// Requests is the per-request attribution, sorted by request ID.
	Requests []RequestCost `json:"requests"`
	// Per-request percentile rollups.
	CyclesPct    Pct `json:"cycles_pct"`
	DRAMBytesPct Pct `json:"dram_bytes_pct"`
	MemStallPct  Pct `json:"mem_stall_pct"`

	// Buckets is the classified utilization time-series covering
	// (0, Makespan], idle gaps and tail included.
	Buckets []BucketStat `json:"buckets"`
	// Class is the node's majority-by-wall-clock bottleneck class.
	Class     Class  `json:"-"`
	ClassName string `json:"class"`
}

// Snapshot freezes the profile into a NodeProfile. makespan is the
// engine clock at drain; buckets are extended to cover it so idle
// gaps and the idle tail appear as zero (idle-classified) buckets.
func (p *Profile) Snapshot(makespan int64) *NodeProfile {
	n := &NodeProfile{
		Params:      p.par,
		SampleEvery: p.spec.SampleEvery,
		Makespan:    makespan,
		Steps:       p.steps,
		BusyCycles:  p.wallCycles,
		Total:       p.total,
		Phases:      append([]PhaseCost(nil), p.phases[:]...),
	}

	n.Requests = make([]RequestCost, 0, len(p.perReq))
	for req, c := range p.perReq {
		n.Requests = append(n.Requests, RequestCost{Req: req, HWCost: *c})
	}
	sort.Slice(n.Requests, func(i, j int) bool { return n.Requests[i].Req < n.Requests[j].Req })
	cyc := make([]float64, len(n.Requests))
	db := make([]float64, len(n.Requests))
	ms := make([]float64, len(n.Requests))
	for i := range n.Requests {
		cyc[i] = float64(n.Requests[i].Cycles)
		db[i] = float64(n.Requests[i].DRAMBytes)
		ms[i] = float64(n.Requests[i].MemStallCycles)
	}
	n.CyclesPct = pct(cyc)
	n.DRAMBytesPct = pct(db)
	n.MemStallPct = pct(ms)

	// Bucket spans: the sampling grid when set, else one whole-run
	// bucket; extend past the last step to the makespan so idle tails
	// classify idle.
	k := p.spec.SampleEvery
	nb := len(p.buckets)
	if k > 0 && makespan > 0 {
		if want := int((makespan + k - 1) / k); want > nb {
			nb = want
		}
	}
	if nb == 0 {
		nb = 1
	}
	var weights [numClasses]int64
	n.Buckets = make([]BucketStat, nb)
	for i := range n.Buckets {
		var acc bucketAcc
		if i < len(p.buckets) {
			acc = p.buckets[i]
		}
		b := &n.Buckets[i]
		if k > 0 {
			b.Start, b.End = int64(i)*k, int64(i+1)*k
			if b.End > makespan && makespan > b.Start {
				b.End = makespan
			}
		} else {
			b.Start, b.End = 0, makespan
		}
		span := b.End - b.Start
		b.Steps, b.BusyCycles, b.Counters = acc.steps, acc.busy, acc.ctr
		b.DRAMBytes = (acc.ctr.DRAMReads + acc.ctr.DRAMWrites) * int64(p.par.LineBytes)
		if span > 0 {
			b.BusyFrac = float64(b.BusyCycles) / float64(span)
		}
		b.L2HitRate = ratio(acc.ctr.L2Hits, acc.ctr.L2Accesses)
		b.CacheStallFrac = ratio(acc.ctr.CacheStall, acc.ctr.SliceCycles)
		b.CoreMemFrac = ratio(acc.ctr.CoreMemStall, acc.ctr.Cycles*int64(p.par.NumCores))
		b.BusUtil = ratio(acc.ctr.DRAMBusCycles, acc.ctr.Cycles*int64(p.par.DRAMChannels))
		if acc.ctr.Cycles > 0 {
			b.DRAMGBPerKCycle = float64(b.DRAMBytes) / 1e9 / (float64(acc.ctr.Cycles) / 1e3)
		}
		b.Class = p.spec.Thresholds.Classify(&b.Counters, span, b.BusyCycles,
			p.par.NumCores, p.par.DRAMChannels)
		b.ClassName = b.Class.String()
		weights[b.Class] += span
	}
	n.Class = majority(weights)
	n.ClassName = n.Class.String()
	return n
}

func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func pct(xs []float64) Pct {
	if len(xs) == 0 {
		return Pct{}
	}
	v := stats.PercentileSet(xs, 50, 95, 99, 100)
	return Pct{P50: v[0], P95: v[1], P99: v[2], Max: v[3]}
}

// FleetProfile folds per-node profiles into the cluster rollup.
type FleetProfile struct {
	// Nodes holds every node's profile in node-index order.
	Nodes []*NodeProfile `json:"nodes"`

	Steps      int64 `json:"steps"`
	BusyCycles int64 `json:"busy_cycles"`
	// Total sums the per-node totals (RespQPeak by max, like
	// Counters.Add everywhere else).
	Total stats.Counters `json:"total"`
	// Phases sums the per-node phase attributions.
	Phases []PhaseCost `json:"phases"`
	// Per-request percentiles pooled across the fleet.
	CyclesPct    Pct `json:"cycles_pct"`
	DRAMBytesPct Pct `json:"dram_bytes_pct"`
	// Class is the fleet majority over every node's buckets, weighted
	// by wall-clock span.
	Class     Class  `json:"-"`
	ClassName string `json:"class"`
}

// Fleet builds the cluster rollup from per-node snapshots. Nil
// entries (nodes without profiles) are skipped; a nil or all-nil
// input returns nil so callers can attach the result unconditionally.
func Fleet(nodes []*NodeProfile) *FleetProfile {
	f := &FleetProfile{Nodes: nodes, Phases: make([]PhaseCost, NumPhases)}
	for i := range f.Phases {
		f.Phases[i].Phase = Phase(i)
	}
	var weights [numClasses]int64
	var cyc, db []float64
	any := false
	for _, n := range nodes {
		if n == nil {
			continue
		}
		any = true
		f.Steps += n.Steps
		f.BusyCycles += n.BusyCycles
		t := n.Total
		f.Total.Add(&t)
		for i := range n.Phases {
			ph := &f.Phases[i]
			ph.Steps += n.Phases[i].Steps
			ph.Tokens += n.Phases[i].Tokens
			ph.add(n.Phases[i].HWCost)
		}
		for i := range n.Requests {
			cyc = append(cyc, float64(n.Requests[i].Cycles))
			db = append(db, float64(n.Requests[i].DRAMBytes))
		}
		for i := range n.Buckets {
			b := &n.Buckets[i]
			weights[b.Class] += b.End - b.Start
		}
	}
	if !any {
		return nil
	}
	f.CyclesPct = pct(cyc)
	f.DRAMBytesPct = pct(db)
	f.Class = majority(weights)
	f.ClassName = f.Class.String()
	return f
}

// Render formats the node profile as the ProfileReport block the
// CLIs print: class, phase attribution, per-request percentiles and
// the classified bucket time-series.
func (n *NodeProfile) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hardware profile %s: class %s (%d steps, %d busy cycles, makespan %d)\n",
		title, n.Class, n.Steps, n.BusyCycles, n.Makespan)
	renderPhases(&b, n.Phases)
	fmt.Fprintf(&b, "per-request    %12s %12s %12s %12s\n", "p50", "p95", "p99", "max")
	fmt.Fprintf(&b, "  cycles       %12.0f %12.0f %12.0f %12.0f\n",
		n.CyclesPct.P50, n.CyclesPct.P95, n.CyclesPct.P99, n.CyclesPct.Max)
	fmt.Fprintf(&b, "  dram-bytes   %12.0f %12.0f %12.0f %12.0f\n",
		n.DRAMBytesPct.P50, n.DRAMBytesPct.P95, n.DRAMBytesPct.P99, n.DRAMBytesPct.Max)
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %8s %8s %10s  %s\n",
		"bucket", "steps", "busy", "t_cs", "memfrac", "bus", "gb/kcyc", "class")
	for i := range n.Buckets {
		bk := &n.Buckets[i]
		fmt.Fprintf(&b, "(%10d,%10d] %8d %8.2f %8.3f %8.3f %8.3f %10.4f  %s\n",
			bk.Start, bk.End, bk.Steps, bk.BusyFrac,
			bk.CacheStallFrac, bk.CoreMemFrac, bk.BusUtil, bk.DRAMGBPerKCycle, bk.Class)
	}
	return b.String()
}

// Render formats the fleet ProfileReport: one row per node plus the
// fleet rollup and the pooled phase attribution table.
func (f *FleetProfile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet hardware profile: class %s\n", f.Class)
	fmt.Fprintf(&b, "%-6s %-14s %8s %12s %10s %8s %8s %8s\n",
		"node", "class", "steps", "cycles", "dram-GB", "l2-hit", "t_cs", "memfrac")
	for i, n := range f.Nodes {
		if n == nil {
			continue
		}
		m := n.Total
		fmt.Fprintf(&b, "%-6d %-14s %8d %12d %10.3f %8.3f %8.3f %8.3f\n",
			i, n.Class, n.Steps, m.Cycles,
			float64((m.DRAMReads+m.DRAMWrites)*int64(n.Params.LineBytes))/1e9,
			ratio(m.L2Hits, m.L2Accesses), ratio(m.CacheStall, m.SliceCycles),
			ratio(m.CoreMemStall, m.Cycles*int64(n.Params.NumCores)))
	}
	fmt.Fprintf(&b, "%-6s %-14s %8d %12d\n", "fleet", f.Class, f.Steps, f.Total.Cycles)
	renderPhases(&b, f.Phases)
	fmt.Fprintf(&b, "per-request cycles p50/p99/max: %.0f / %.0f / %.0f   dram-bytes p99: %.0f\n",
		f.CyclesPct.P50, f.CyclesPct.P99, f.CyclesPct.Max, f.DRAMBytesPct.P99)
	return b.String()
}

func renderPhases(b *strings.Builder, phases []PhaseCost) {
	fmt.Fprintf(b, "%-24s %8s %10s %14s %14s %12s\n",
		"phase", "steps", "tokens", "cycles", "dram-bytes", "mem-stall")
	for i := range phases {
		ph := &phases[i]
		fmt.Fprintf(b, "%-24s %8d %10d %14d %14d %12d\n",
			ph.Phase, ph.Steps, ph.Tokens, ph.Cycles, ph.DRAMBytes, ph.MemStallCycles)
	}
}
