// The bottleneck classifier: each sampling-grid bucket's raw counter
// sums are reduced to one of four machine states, and a node (or a
// fleet, or a grid cell) is labelled by the state its buckets spent
// the most wall-clock in. The fractions it reads are the paper's own
// Fig. 8 diagnostics — cache-stall fraction t_cs, core mem-stall
// fraction C_mem/(cycles·cores), DRAM data-bus utilisation — so a
// "memory-bound" label means exactly what the paper means by it.

package hwprof

import "repro/internal/stats"

// Class is a bottleneck classification for a bucket, node or cell.
type Class uint8

const (
	// ClassIdle: the machine was mostly not executing steps (queue
	// empty, drained tail, or waiting out a crash).
	ClassIdle Class = iota
	// ClassCompute: busy, and neither the memory system nor MSHR
	// pressure dominates — throughput is bounded by issue width.
	ClassCompute
	// ClassMemory: busy with cores predominantly stalled on memory or
	// the DRAM data bus near saturation — the decode-phase regime the
	// paper targets.
	ClassMemory
	// ClassStalled: busy with L2 slices spending a large fraction of
	// cycles refusing traffic on MSHR reservation failure (t_cs) —
	// pathological back-pressure rather than smooth bandwidth limits.
	ClassStalled

	numClasses
)

var classNames = [...]string{"idle", "compute-bound", "memory-bound", "stalled"}

// String returns the stable wire name of the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// severity orders classes for majority-vote tie-breaks: the more
// actionable diagnosis wins a tie.
func (c Class) severity() int {
	switch c {
	case ClassStalled:
		return 3
	case ClassMemory:
		return 2
	case ClassCompute:
		return 1
	default:
		return 0
	}
}

// ClassFromString parses a wire name produced by Class.String.
// Unknown names rank as idle-severity; the exporters use this only
// for fleet-row majority votes over already-produced labels.
func ClassFromString(s string) (Class, bool) {
	for i, n := range classNames {
		if n == s {
			return Class(i), true
		}
	}
	return ClassIdle, false
}

// Thresholds tunes the classifier's decision boundaries. The zero
// value means DefaultThresholds; fields are fractions in [0, 1].
type Thresholds struct {
	// IdleBusyFrac: a bucket whose busy step cycles cover less than
	// this fraction of its wall-clock span is idle.
	IdleBusyFrac float64
	// StallFrac: t_cs (stalled slice-cycles / slice-cycles) at or
	// above this marks a busy bucket stalled.
	StallFrac float64
	// MemFrac: core mem-stall fraction (C_mem / (cycles · cores)) at
	// or above this marks a busy bucket memory-bound.
	MemFrac float64
	// BusUtil: DRAM data-bus utilisation (bus cycles / (cycles ·
	// channels)) at or above this also marks a bucket memory-bound.
	BusUtil float64
}

// DefaultThresholds are calibrated against the Table 5 default
// configuration: saturated decode on the serving scenarios runs core
// mem-stall fractions around 0.80 and DRAM-bus utilisation around
// 0.84 with t_cs in the 0.34–0.41 band, so the memory boundary sits
// at 0.50 (decisively cleared by any memory-bound bucket, far above
// compute-phase noise) and the stalled boundary at 0.60 — above the
// whole healthy-decode t_cs band, reached only when MSHR
// back-pressure is pathological rather than the smooth
// bandwidth-limited regime the paper calls memory-bound.
func DefaultThresholds() Thresholds {
	return Thresholds{IdleBusyFrac: 0.10, StallFrac: 0.60, MemFrac: 0.50, BusUtil: 0.50}
}

// withDefaults fills unset (zero) fields from DefaultThresholds.
func (t Thresholds) withDefaults() Thresholds {
	d := DefaultThresholds()
	if t.IdleBusyFrac == 0 {
		t.IdleBusyFrac = d.IdleBusyFrac
	}
	if t.StallFrac == 0 {
		t.StallFrac = d.StallFrac
	}
	if t.MemFrac == 0 {
		t.MemFrac = d.MemFrac
	}
	if t.BusUtil == 0 {
		t.BusUtil = d.BusUtil
	}
	return t
}

// Classify labels one bucket from its raw counter sums. span is the
// bucket's wall-clock width in cycles and busy the step cycles that
// completed inside it; cores and channels come from the profile's
// Params. The decision ladder is strict: idle before stalled before
// memory before compute, so a label always names the dominant regime.
func (t Thresholds) Classify(ctr *stats.Counters, span, busy int64, cores, channels int) Class {
	if busy <= 0 {
		return ClassIdle
	}
	if span > 0 && float64(busy) < t.IdleBusyFrac*float64(span) {
		return ClassIdle
	}
	if ctr.SliceCycles > 0 &&
		float64(ctr.CacheStall) >= t.StallFrac*float64(ctr.SliceCycles) {
		return ClassStalled
	}
	if ctr.Cycles > 0 && cores > 0 &&
		float64(ctr.CoreMemStall) >= t.MemFrac*float64(ctr.Cycles)*float64(cores) {
		return ClassMemory
	}
	if ctr.Cycles > 0 && channels > 0 &&
		float64(ctr.DRAMBusCycles) >= t.BusUtil*float64(ctr.Cycles)*float64(channels) {
		return ClassMemory
	}
	return ClassCompute
}

// majority returns the class with the largest wall-clock weight,
// ties broken by severity (stalled > memory > compute > idle) so a
// fleet split evenly between diagnoses reports the actionable one.
func majority(weights [numClasses]int64) Class {
	best := ClassIdle
	for c := Class(1); c < numClasses; c++ {
		if weights[c] > weights[best] ||
			(weights[c] == weights[best] && c.severity() > best.severity()) {
			best = c
		}
	}
	return best
}

// MostSevere returns the highest-severity class among cs (idle when
// empty) — the fleet-row reduction the CSV exporter uses when nodes
// at one sample boundary disagree.
func MostSevere(cs []Class) Class {
	best := ClassIdle
	for _, c := range cs {
		if c.severity() > best.severity() {
			best = c
		}
	}
	return best
}
