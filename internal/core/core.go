// Package core defines CAT — Cache Arbitration and Throttling — the
// paper's primary contribution as a composable policy pair: an LLC
// request-arbitration policy (Section 4.1/4.3) and a thread-throttling
// controller (Section 4.2). The simulator consumes the two halves
// through internal/arbiter and internal/throttle; this package is the
// canonical registry tying the paper's policy names, composition rules
// and descriptions together for the experiment harness, the CLI and
// the public API.
package core

import (
	"fmt"
	"strings"

	"repro/internal/arbiter"
)

// CAT is one evaluated policy point: a throttling controller name and
// an arbitration kind.
type CAT struct {
	Throttle string
	Arbiter  arbiter.Kind
}

// Label renders the figure label ("dynmg+BMA", "unopt", ...).
func (c CAT) Label() string {
	t := c.Throttle
	if t == "" || t == "none" {
		t = "unopt"
	}
	if c.Arbiter == arbiter.FCFS {
		return t
	}
	if t == "unopt" {
		return c.Arbiter.String()
	}
	return t + "+" + c.Arbiter.String()
}

// Parse reads a figure label back into a CAT ("dynmg+BMA",
// "dyncta", "cobrra", "static:2+B").
func Parse(label string) (CAT, error) {
	throttle, arb := label, ""
	if i := strings.IndexByte(label, '+'); i >= 0 {
		throttle, arb = label[:i], label[i+1:]
	}
	c := CAT{Throttle: throttle, Arbiter: arbiter.FCFS}
	// A bare arbiter name means "no throttling + that arbiter".
	if k, err := arbiter.ParseKind(throttle); err == nil && throttle != "unopt" && throttle != "default" && throttle != "fcfs" {
		if arb != "" {
			return CAT{}, fmt.Errorf("core: %q is an arbiter, not a throttle policy", throttle)
		}
		return CAT{Throttle: "none", Arbiter: k}, nil
	}
	switch throttle {
	case "unopt", "none", "fcfs":
		c.Throttle = "none"
	case "dyncta", "lcs", "dynmg":
	default:
		var n int
		if _, err := fmt.Sscanf(throttle, "static:%d", &n); err != nil {
			return CAT{}, fmt.Errorf("core: unknown throttle policy %q", throttle)
		}
	}
	if arb != "" {
		k, err := arbiter.ParseKind(arb)
		if err != nil {
			return CAT{}, err
		}
		c.Arbiter = k
	}
	return c, nil
}

// Proposed reports whether the policy point is one of the paper's own
// mechanisms (as opposed to a baseline or the unoptimized system).
func (c CAT) Proposed() bool {
	if c.Throttle == "dynmg" {
		return true
	}
	switch c.Arbiter {
	case arbiter.Balanced, arbiter.MA, arbiter.BMA:
		return true
	}
	return false
}

// Describe returns the one-line description used in help output.
func (c CAT) Describe() string {
	var parts []string
	switch c.Throttle {
	case "", "none":
		parts = append(parts, "no throttling")
	case "dynmg":
		parts = append(parts, "two-level dynamic multi-gear throttling (proposed)")
	case "dyncta":
		parts = append(parts, "DYNCTA per-core throttling (baseline)")
	case "lcs":
		parts = append(parts, "LCS first-block static throttling (baseline)")
	default:
		parts = append(parts, c.Throttle+" throttling")
	}
	switch c.Arbiter {
	case arbiter.FCFS:
		parts = append(parts, "FCFS arbitration")
	case arbiter.Balanced:
		parts = append(parts, "balanced per-core arbitration (proposed)")
	case arbiter.MA:
		parts = append(parts, "MSHR-aware arbitration (proposed)")
	case arbiter.BMA:
		parts = append(parts, "balanced MSHR-aware arbitration (proposed)")
	case arbiter.COBRRA:
		parts = append(parts, "COBRRA request-response arbitration (baseline)")
	}
	return strings.Join(parts, " + ")
}

// PaperMatrix returns the policy points of the paper's evaluation in
// figure order: the unoptimized reference, the baselines, and the
// proposed combinations.
func PaperMatrix() []CAT {
	return []CAT{
		{Throttle: "none", Arbiter: arbiter.FCFS},
		{Throttle: "dyncta", Arbiter: arbiter.FCFS},
		{Throttle: "lcs", Arbiter: arbiter.FCFS},
		{Throttle: "none", Arbiter: arbiter.COBRRA},
		{Throttle: "dynmg", Arbiter: arbiter.FCFS},
		{Throttle: "dynmg", Arbiter: arbiter.COBRRA},
		{Throttle: "dynmg", Arbiter: arbiter.Balanced},
		{Throttle: "dynmg", Arbiter: arbiter.MA},
		{Throttle: "dynmg", Arbiter: arbiter.BMA},
	}
}

// Final is the paper's headline configuration: dynmg + BMA.
func Final() CAT {
	return CAT{Throttle: "dynmg", Arbiter: arbiter.BMA}
}
