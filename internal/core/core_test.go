package core

import (
	"testing"

	"repro/internal/arbiter"
)

func TestLabelRoundTrip(t *testing.T) {
	for _, c := range PaperMatrix() {
		back, err := Parse(c.Label())
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.Label(), err)
		}
		if back != c {
			t.Fatalf("round trip: %+v -> %q -> %+v", c, c.Label(), back)
		}
	}
}

func TestLabels(t *testing.T) {
	cases := []struct {
		c    CAT
		want string
	}{
		{CAT{Throttle: "none", Arbiter: arbiter.FCFS}, "unopt"},
		{CAT{Throttle: "dynmg", Arbiter: arbiter.BMA}, "dynmg+BMA"},
		{CAT{Throttle: "none", Arbiter: arbiter.COBRRA}, "cobrra"},
		{CAT{Throttle: "dyncta", Arbiter: arbiter.FCFS}, "dyncta"},
	}
	for _, c := range cases {
		if got := c.c.Label(); got != c.want {
			t.Errorf("Label(%+v)=%q want %q", c.c, got, c.want)
		}
	}
}

func TestParseBareArbiter(t *testing.T) {
	c, err := Parse("cobrra")
	if err != nil {
		t.Fatal(err)
	}
	if c.Throttle != "none" || c.Arbiter != arbiter.COBRRA {
		t.Fatalf("Parse(cobrra)=%+v", c)
	}
	c, err = Parse("static:2+B")
	if err != nil {
		t.Fatal(err)
	}
	if c.Throttle != "static:2" || c.Arbiter != arbiter.Balanced {
		t.Fatalf("Parse(static:2+B)=%+v", c)
	}
	if _, err := Parse("bogus"); err == nil {
		t.Fatal("bogus label accepted")
	}
	if _, err := Parse("BMA+dynmg"); err == nil {
		t.Fatal("swapped label accepted")
	}
}

func TestProposedAndDescribe(t *testing.T) {
	if Final().Proposed() != true {
		t.Fatal("final policy must be proposed")
	}
	if (CAT{Throttle: "dyncta"}).Proposed() {
		t.Fatal("dyncta is a baseline")
	}
	if (CAT{Throttle: "none", Arbiter: arbiter.COBRRA}).Proposed() {
		t.Fatal("cobrra is a baseline")
	}
	for _, c := range PaperMatrix() {
		if c.Describe() == "" {
			t.Fatalf("no description for %q", c.Label())
		}
	}
	if len(PaperMatrix()) != 9 {
		t.Fatalf("paper matrix size %d", len(PaperMatrix()))
	}
}
