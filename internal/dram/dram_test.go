package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func testConfig() Config {
	cfg := NewDDR5_3200(1.96, 4)
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.Channels = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("non-pow2 channels accepted")
	}
	bad = good
	bad.RowBytes = 32
	if err := bad.Validate(); err == nil {
		t.Fatal("row smaller than line accepted")
	}
	bad = good
	bad.QueueDepth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero queue depth accepted")
	}
}

func TestTimingConversion(t *testing.T) {
	cfg := NewDDR5_3200(1.96, 4)
	// 13.75 ns at 1.96 GHz is 26.95 cycles, rounded up to 27.
	if cfg.Timing.CL != 27 {
		t.Fatalf("CL=%d want 27", cfg.Timing.CL)
	}
	if cfg.Timing.TBurst != 10 {
		t.Fatalf("TBurst=%d want 10", cfg.Timing.TBurst)
	}
	// Timing must scale with frequency.
	slow := NewDDR5_3200(1.0, 4)
	if slow.Timing.CL >= cfg.Timing.CL {
		t.Fatal("timing did not scale with frequency")
	}
}

func TestChannelMapping(t *testing.T) {
	d, err := New(testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// ChannelBitPos=3: lines 0-7 on channel 0, 8-15 on channel 1, ...
	if d.Channel(0) != 0 || d.Channel(7) != 0 {
		t.Fatal("lines 0-7 should be channel 0")
	}
	if d.Channel(8) != 1 || d.Channel(16) != 2 || d.Channel(24) != 3 {
		t.Fatal("channel interleave wrong")
	}
	if d.Channel(32) != 0 {
		t.Fatal("channel wrap wrong")
	}
}

func TestLocalLineDense(t *testing.T) {
	d, _ := New(testConfig(), nil)
	// Lines of one channel must map to a dense local space.
	seen := map[uint64]bool{}
	for line := uint64(0); line < 1024; line++ {
		if d.Channel(line) != 0 {
			continue
		}
		local := d.localLine(line)
		if seen[local] {
			t.Fatalf("local line %d duplicated", local)
		}
		seen[local] = true
	}
	// 1024 lines / 4 channels = 256 local lines, and they should be
	// the dense range [0,256).
	for l := uint64(0); l < 256; l++ {
		if !seen[l] {
			t.Fatalf("local line %d missing (not dense)", l)
		}
	}
}

// drain runs the model until all n reads have returned, with a cycle
// bound, returning the completion cycle.
func drain(t *testing.T, d *DRAM, n int, bound int64) int64 {
	t.Helper()
	got := 0
	for now := int64(0); now < bound; now++ {
		d.Tick(now)
		got += len(d.Responses(now))
		if got == n && d.Pending() == 0 {
			return now
		}
	}
	t.Fatalf("drained %d of %d reads within %d cycles", got, n, bound)
	return 0
}

func TestReadCompletes(t *testing.T) {
	ctr := &stats.Counters{}
	d, _ := New(testConfig(), ctr)
	if !d.CanEnqueue(0) {
		t.Fatal("fresh controller cannot enqueue")
	}
	if err := d.Enqueue(Access{Line: 0, Slice: 3, Tag: 77}); err != nil {
		t.Fatal(err)
	}
	var resp []Response
	for now := int64(0); now < 10_000; now++ {
		d.Tick(now)
		if r := d.Responses(now); len(r) > 0 {
			resp = append(resp, r...)
			break
		}
	}
	if len(resp) != 1 {
		t.Fatalf("no response within bound")
	}
	if resp[0].Slice != 3 || resp[0].Tag != 77 || resp[0].Line != 0 {
		t.Fatalf("response routing lost: %+v", resp[0])
	}
	// Cold access: ACT + RCD + CL + burst.
	cfg := testConfig()
	minLat := int64(cfg.Timing.TRCD + cfg.Timing.CL + cfg.Timing.TBurst)
	if resp[0].Done < minLat {
		t.Fatalf("response at %d, faster than tRCD+CL+tBurst=%d", resp[0].Done, minLat)
	}
	if ctr.DRAMReads != 1 {
		t.Fatalf("DRAMReads=%d", ctr.DRAMReads)
	}
}

func TestSequentialRowHits(t *testing.T) {
	ctr := &stats.Counters{}
	d, _ := New(testConfig(), ctr)
	// Stream 64 sequential lines on channel 0 (8-line channel blocks).
	n := 0
	for line := uint64(0); line < 256; line++ {
		if d.Channel(line) != 0 {
			continue
		}
		for !d.CanEnqueue(line) {
			t.Fatal("queue full in sequential test")
		}
		d.Enqueue(Access{Line: line})
		n++
		if n >= 16 {
			break
		}
	}
	drain(t, d, n, 100_000)
	total := ctr.RowHits + ctr.RowMisses + ctr.RowConflicts
	if total != int64(n) {
		t.Fatalf("row accounting %d != %d reads", total, n)
	}
	if float64(ctr.RowHits)/float64(total) < 0.5 {
		t.Fatalf("sequential stream row-hit rate too low: %d/%d", ctr.RowHits, total)
	}
}

func TestWriteCompletesSilently(t *testing.T) {
	ctr := &stats.Counters{}
	d, _ := New(testConfig(), ctr)
	d.Enqueue(Access{Line: 0, Write: true})
	for now := int64(0); now < 10_000; now++ {
		d.Tick(now)
		if len(d.Responses(now)) != 0 {
			t.Fatal("write produced a response")
		}
		if d.Pending() == 0 {
			break
		}
	}
	if d.Pending() != 0 {
		t.Fatal("write never drained")
	}
	if ctr.DRAMWrites != 1 {
		t.Fatalf("DRAMWrites=%d", ctr.DRAMWrites)
	}
}

func TestQueueBackpressure(t *testing.T) {
	cfg := testConfig()
	d, _ := New(cfg, nil)
	line := uint64(0)
	for i := 0; i < cfg.QueueDepth; i++ {
		if !d.CanEnqueue(line) {
			t.Fatalf("queue full after %d", i)
		}
		d.Enqueue(Access{Line: line})
	}
	if d.CanEnqueue(line) {
		t.Fatal("queue should be full")
	}
	if err := d.Enqueue(Access{Line: line}); err == nil {
		t.Fatal("enqueue into full queue succeeded")
	}
	// Other channels are unaffected.
	if !d.CanEnqueue(8) {
		t.Fatal("channel 1 should have space")
	}
}

// Every enqueued read returns exactly once, regardless of the access
// pattern.
func TestAllReadsReturnProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, _ := New(testConfig(), nil)
		want := map[int64]int{}
		enqueued := 0
		next := int64(1)
		returned := map[int64]int{}
		for now := int64(0); now < 60_000; now++ {
			if enqueued < 40 && r.Intn(4) == 0 {
				line := uint64(r.Intn(512))
				if d.CanEnqueue(line) {
					d.Enqueue(Access{Line: line, Tag: next})
					want[next] = 1
					next++
					enqueued++
				}
			}
			d.Tick(now)
			for _, resp := range d.Responses(now) {
				returned[resp.Tag]++
			}
			if enqueued == 40 && d.Pending() == 0 {
				break
			}
		}
		if d.Pending() != 0 {
			return false
		}
		if len(returned) != len(want) {
			return false
		}
		for tag, n := range returned {
			if n != 1 || want[tag] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Refresh must not lose requests enqueued around the refresh window.
func TestRefreshProgress(t *testing.T) {
	cfg := testConfig()
	d, _ := New(cfg, nil)
	// Run past several tREFI periods with steady traffic.
	issued, returned := 0, 0
	for now := int64(0); now < int64(cfg.Timing.TREFI*4); now++ {
		if issued < 200 && now%50 == 0 && d.CanEnqueue(uint64(issued)) {
			d.Enqueue(Access{Line: uint64(issued)})
			issued++
		}
		d.Tick(now)
		returned += len(d.Responses(now))
	}
	if returned < issued-int(cfg.QueueDepth) {
		t.Fatalf("refresh starved traffic: %d issued, %d returned", issued, returned)
	}
}
