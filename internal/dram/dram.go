// Package dram is a cycle-level DDR5 DRAM model in the spirit of the
// Ramulator2 component the paper keeps "completely unchanged"
// (Section 5; the DDR5-3200 configuration is Table 5): per
// channel command queues, rank/bank-group/bank topology, row-buffer
// state, DDR5 timing constraints and FR-FCFS scheduling, plus
// periodic refresh. All timing is expressed in *core* cycles so the
// whole simulator shares one clock domain; NewDDR5_3200 converts the
// JEDEC nanosecond parameters at the configured core frequency.
package dram

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Timing holds DDR timing constraints in core cycles.
type Timing struct {
	CL     int // read column access strobe latency
	CWL    int // write latency
	TRCD   int // activate to column command
	TRP    int // precharge period
	TRAS   int // activate to precharge
	TBurst int // data burst occupancy of the bus (BL16)
	TCCDL  int // column-to-column, same bank group
	TCCDS  int // column-to-column, different bank group
	TRRDS  int // activate-to-activate, different bank group
	TRRDL  int // activate-to-activate, same bank group
	TFAW   int // four-activate window
	TWR    int // write recovery before precharge
	TRTP   int // read to precharge
	TWTR   int // write to read turnaround
	TRFC   int // refresh cycle time
	TREFI  int // refresh interval
}

// Config describes the memory system topology and scheduling limits.
type Config struct {
	Channels      int
	Ranks         int
	BankGroups    int // per rank
	BanksPerGroup int
	RowBytes      int // row-buffer coverage per bank
	LineBytes     int
	QueueDepth    int // per-channel request queue entries
	// ChannelBitPos is the bit position (in line-address bits) where
	// the channel-interleave bits sit; channel bits are removed before
	// bank/row decoding so each channel sees a dense local space.
	ChannelBitPos int
	Timing        Timing
	// WriteDrainLow/High control write buffering: writes are drained
	// lazily, but once the pending-write count reaches High the
	// scheduler prioritises writes until it falls back to Low.
	WriteDrainLow  int
	WriteDrainHigh int
}

// NewDDR5_3200 returns the paper's Table 5 memory system:
// DDR5_8Gb_x16, 4 ranks, DDR5-3200, configurable channel count, with
// JEDEC-derived timings converted from nanoseconds into core cycles at
// freqGHz.
func NewDDR5_3200(freqGHz float64, channels int) Config {
	cyc := func(ns float64) int {
		c := int(ns*freqGHz + 0.9999)
		if c < 1 {
			c = 1
		}
		return c
	}
	return Config{
		Channels:      channels,
		Ranks:         4,
		BankGroups:    8,
		BanksPerGroup: 4,
		RowBytes:      2048,
		LineBytes:     64,
		QueueDepth:    32,
		ChannelBitPos: 3, // after the 8-way LLC slice interleave bits
		Timing: Timing{
			CL:     cyc(13.75), // CL22 @ DDR5-3200
			CWL:    cyc(11.25),
			TRCD:   cyc(13.75),
			TRP:    cyc(13.75),
			TRAS:   cyc(32.0),
			TBurst: cyc(5.0), // BL16 on a 32-bit subchannel = 64 B
			TCCDL:  cyc(5.0),
			TCCDS:  cyc(2.5),
			TRRDS:  cyc(5.0),
			TRRDL:  cyc(5.0),
			TFAW:   cyc(13.333),
			TWR:    cyc(30.0),
			TRTP:   cyc(7.5),
			TWTR:   cyc(2.5),
			TRFC:   cyc(195.0),
			TREFI:  cyc(3900.0),
		},
		WriteDrainLow:  4,
		WriteDrainHigh: 12,
	}
}

// Validate checks configuration sanity.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.Channels&(c.Channels-1) != 0:
		return fmt.Errorf("dram: Channels must be a positive power of two, got %d", c.Channels)
	case c.Ranks <= 0:
		return fmt.Errorf("dram: Ranks must be positive, got %d", c.Ranks)
	case c.BankGroups <= 0 || c.BanksPerGroup <= 0:
		return fmt.Errorf("dram: bank topology must be positive, got %dx%d", c.BankGroups, c.BanksPerGroup)
	case c.RowBytes < c.LineBytes:
		return fmt.Errorf("dram: RowBytes %d smaller than LineBytes %d", c.RowBytes, c.LineBytes)
	case c.QueueDepth <= 0:
		return fmt.Errorf("dram: QueueDepth must be positive, got %d", c.QueueDepth)
	}
	return nil
}

// Access is one line-granularity DRAM transaction. Tag and Slice are
// opaque routing values echoed in the Response.
type Access struct {
	Line    uint64
	Write   bool
	Slice   int   // LLC slice to route the response to
	Tag     int64 // opaque identifier (MSHR entry handle)
	Enqueue int64 // cycle the access entered the controller
}

// Response reports a completed read (writes complete silently).
type Response struct {
	Line  uint64
	Slice int
	Tag   int64
	Done  int64 // cycle the data burst finished
}

type bankState struct {
	activeRow int64 // -1 when precharged
	readyAct  int64 // earliest cycle an ACT may issue
	readyCol  int64 // earliest cycle a RD/WR may issue
	readyPre  int64 // earliest cycle a PRE may issue
}

type queued struct {
	acc               Access
	rank, group, bank int
	bankIdx           int // precomputed bankIndex(rank, group, bank)
	row               int64
	needsAct          bool // an ACT/PRE was issued on this request's behalf
	sawConflict       bool // a PRE closed another row first
}

type channel struct {
	queue        []queued
	banks        []bankState // rank*groups*banksPerGroup
	busFree      int64       // cycle the previous data burst ends
	actTimes     [][]int64   // per rank: recent ACT issue cycles (tFAW window)
	nextRef      int64
	refUntil     int64
	refPending   bool
	pendingWr    int
	drainingWr   bool
	lastColGroup int // bank group of the last column command (tCCD_L/S)
	lastColCycle int64
	lastColWrite bool
	// wake caches the channel's next-event horizon: while now < wake
	// and no enqueue has occurred, the FR-FCFS scans provably find
	// nothing to issue and the tick skips them. Reset on Enqueue and
	// after every issued command.
	wake int64
}

// DRAM is the memory controller + device model. Single-threaded by
// design: the engine drives it from the cycle loop.
type DRAM struct {
	cfg       Config
	channels  []channel
	resp      []Response
	respReady []Response
	// respMinDone is the earliest Done among pending responses
	// (math.MaxInt64 when none), letting Responses return without
	// scanning on cycles where nothing can be due.
	respMinDone int64
	// freed records that a command issue drained queue space since the
	// engine last consumed the flag; slices blocked on CanEnqueue use
	// it as their wake signal.
	freed bool
	// lazy enables the per-channel wake-horizon skip; the engine's
	// per-cycle reference loop disables it so the ground truth runs
	// the full FR-FCFS scan every cycle.
	lazy bool
	ctr  *stats.Counters
}

// New constructs the model. ctr is the shared counter block.
func New(cfg Config, ctr *stats.Counters) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctr == nil {
		ctr = &stats.Counters{}
	}
	d := &DRAM{cfg: cfg, ctr: ctr, respMinDone: math.MaxInt64, lazy: true}
	nBanks := cfg.Ranks * cfg.BankGroups * cfg.BanksPerGroup
	d.channels = make([]channel, cfg.Channels)
	for i := range d.channels {
		ch := &d.channels[i]
		ch.queue = make([]queued, 0, cfg.QueueDepth)
		ch.banks = make([]bankState, nBanks)
		for b := range ch.banks {
			ch.banks[b].activeRow = -1
		}
		ch.actTimes = make([][]int64, cfg.Ranks)
		ch.nextRef = int64(cfg.Timing.TREFI)
		ch.lastColGroup = -1
	}
	return d, nil
}

// Config returns the model's configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Reset rewinds the controller to its just-constructed state — empty
// queues, precharged banks, fresh refresh schedule, cleared bus and
// column history — reusing every allocation (queues, bank arrays,
// tFAW windows), so a resettable engine pays no per-run construction.
func (d *DRAM) Reset() {
	for i := range d.channels {
		ch := &d.channels[i]
		ch.queue = ch.queue[:0]
		for b := range ch.banks {
			ch.banks[b] = bankState{activeRow: -1}
		}
		for r := range ch.actTimes {
			ch.actTimes[r] = ch.actTimes[r][:0]
		}
		ch.busFree = 0
		ch.nextRef = int64(d.cfg.Timing.TREFI)
		ch.refUntil = 0
		ch.refPending = false
		ch.pendingWr = 0
		ch.drainingWr = false
		ch.lastColGroup = -1
		ch.lastColCycle = 0
		ch.lastColWrite = false
		ch.wake = 0
	}
	d.resp = d.resp[:0]
	d.respMinDone = math.MaxInt64
	d.freed = false
}

// SetLazy toggles the per-channel wake-horizon scan skip (on by
// default; the reference loop turns it off).
func (d *DRAM) SetLazy(lazy bool) { d.lazy = lazy }

// Channel returns the channel index for a line address.
func (d *DRAM) Channel(line uint64) int {
	return int(line>>uint(d.cfg.ChannelBitPos)) & (d.cfg.Channels - 1)
}

// localLine removes the channel bits from a line address, producing a
// dense per-channel line index.
func (d *DRAM) localLine(line uint64) uint64 {
	pos := uint(d.cfg.ChannelBitPos)
	chBits := uint(0)
	for c := d.cfg.Channels; c > 1; c >>= 1 {
		chBits++
	}
	low := line & ((1 << pos) - 1)
	high := line >> (pos + chBits)
	return high<<pos | low
}

// decode maps an access to its channel-local coordinates. Consecutive
// rows map to different banks (row-interleaved) to expose bank-level
// parallelism to streaming accesses.
func (d *DRAM) decode(acc Access) queued {
	cfg := d.cfg
	local := d.localLine(acc.Line)
	linesPerRow := uint64(cfg.RowBytes / cfg.LineBytes)
	col := local % linesPerRow
	rowIdx := local / linesPerRow
	nBanks := uint64(cfg.Ranks * cfg.BankGroups * cfg.BanksPerGroup)
	bankLinear := rowIdx % nBanks
	row := int64(rowIdx / nBanks)
	rank := int(bankLinear % uint64(cfg.Ranks))
	rem := bankLinear / uint64(cfg.Ranks)
	group := int(rem % uint64(cfg.BankGroups))
	bank := int(rem / uint64(cfg.BankGroups))
	_ = col
	return queued{acc: acc, rank: rank, group: group, bank: bank,
		bankIdx: d.bankIndex(rank, group, bank), row: row}
}

// CanEnqueue reports whether the channel owning line has queue space.
func (d *DRAM) CanEnqueue(line uint64) bool {
	ch := &d.channels[d.Channel(line)]
	return len(ch.queue) < d.cfg.QueueDepth
}

// Enqueue inserts an access; the caller must have checked CanEnqueue.
func (d *DRAM) Enqueue(acc Access) error {
	ch := &d.channels[d.Channel(acc.Line)]
	if len(ch.queue) >= d.cfg.QueueDepth {
		return fmt.Errorf("dram: channel %d queue full", d.Channel(acc.Line))
	}
	q := d.decode(acc)
	ch.queue = append(ch.queue, q)
	if acc.Write {
		// A write can flip the drain-preference hysteresis, changing
		// which queued requests are eligible: full rescan next tick.
		ch.pendingWr++
		ch.wake = 0
	} else if b := d.requestBound(ch, &q); b < ch.wake {
		// A read changes nothing about existing requests' eligibility
		// for the worse; folding in its own earliest-issue bound keeps
		// the cached horizon exact without a rescan.
		ch.wake = b
	}
	return nil
}

// requestBound returns the earliest cycle at which q's next command
// (column, precharge or activate) could legally issue, given current
// bank and bus state. It ignores the global refresh/eligibility gates
// its callers account for separately; bounds may be early, never late.
func (d *DRAM) requestBound(ch *channel, q *queued) int64 {
	t := d.cfg.Timing
	b := &ch.banks[q.bankIdx]
	switch {
	case b.activeRow == q.row:
		e := b.readyCol
		if ch.lastColGroup >= 0 {
			gap := int64(t.TCCDS)
			if ch.lastColGroup == q.group {
				gap = int64(t.TCCDL)
			}
			if ch.lastColWrite != q.acc.Write && int64(t.TWTR) > gap {
				gap = int64(t.TWTR)
			}
			if g := ch.lastColCycle + gap; g > e {
				e = g
			}
		}
		lat := int64(t.CL)
		if q.acc.Write {
			lat = int64(t.CWL)
		}
		if bf := ch.busFree - lat; bf > e {
			e = bf
		}
		return e
	case b.activeRow >= 0:
		return b.readyPre
	default:
		e := b.readyAct
		if times := ch.actTimes[q.rank]; len(times) >= 4 {
			if f := times[len(times)-4] + int64(t.TFAW); f > e {
				e = f
			}
		}
		return e
	}
}

// QueueLen returns the current occupancy of a channel's queue.
func (d *DRAM) QueueLen(chIdx int) int { return len(d.channels[chIdx].queue) }

func (d *DRAM) bankIndex(rank, group, bank int) int {
	return (rank*d.cfg.BankGroups+group)*d.cfg.BanksPerGroup + bank
}

// Tick advances the controller by one core cycle: refresh management
// plus at most one command per channel (FR-FCFS). A channel whose
// cached wake horizon has not arrived provably cannot issue anything
// and skips its scheduling scans entirely.
func (d *DRAM) Tick(now int64) {
	for ci := range d.channels {
		ch := &d.channels[ci]
		if d.lazy && now < ch.wake {
			continue
		}
		if d.tickChannel(ci, now) {
			ch.wake = now + 1 // state changed: rescan next cycle
		} else {
			ch.wake = d.channelNextEvent(ch, now)
		}
	}
}

// tickChannel runs one channel cycle and reports whether it changed
// state (issued a command or executed a refresh).
func (d *DRAM) tickChannel(ci int, now int64) bool {
	ch := &d.channels[ci]
	t := d.cfg.Timing

	// Refresh: once due, stop issuing new columns, wait for the bus to
	// drain, then block the channel for tRFC (all-bank refresh).
	if now >= ch.nextRef {
		ch.refPending = true
	}
	if ch.refPending && now >= ch.refUntil && now >= ch.busFree {
		ch.refUntil = now + int64(t.TRFC)
		ch.nextRef = now + int64(t.TREFI)
		ch.refPending = false
		for b := range ch.banks {
			ch.banks[b].activeRow = -1
			if ch.banks[b].readyAct < ch.refUntil {
				ch.banks[b].readyAct = ch.refUntil
			}
		}
		return true
	}
	if ch.refPending || now < ch.refUntil || len(ch.queue) == 0 {
		return false
	}

	// Write drain hysteresis.
	if ch.pendingWr >= d.cfg.WriteDrainHigh {
		ch.drainingWr = true
	} else if ch.pendingWr <= d.cfg.WriteDrainLow {
		ch.drainingWr = false
	}

	// eligible applies the read/write drain preference, falling back
	// to everything when the preferred kind is absent.
	preferWrites := ch.drainingWr && ch.pendingWr > 0
	prefersExist := false
	for i := range ch.queue {
		if ch.queue[i].acc.Write == preferWrites {
			prefersExist = true
			break
		}
	}
	eligible := func(q *queued) bool {
		if !prefersExist {
			return true
		}
		return q.acc.Write == preferWrites
	}

	// FR-FCFS pass 1: oldest ready column command (row hit).
	for i := range ch.queue {
		q := &ch.queue[i]
		if !eligible(q) {
			continue
		}
		b := &ch.banks[q.bankIdx]
		if b.activeRow == q.row && d.colReady(ch, b, q, now) {
			d.issueColumn(ch, b, i, now)
			return true
		}
	}
	// Pass 2: oldest request needing row activation — issue PRE/ACT.
	for i := range ch.queue {
		q := &ch.queue[i]
		if !eligible(q) {
			continue
		}
		b := &ch.banks[q.bankIdx]
		if b.activeRow == q.row {
			continue // waiting on column timing only
		}
		if b.activeRow >= 0 {
			// Conflicting row open: precharge when legal.
			if now >= b.readyPre {
				b.activeRow = -1
				b.readyAct = max64(b.readyAct, now+int64(t.TRP))
				q.needsAct = true
				q.sawConflict = true
				return true
			}
			continue // bank busy; try a younger request's bank
		}
		// Bank precharged: ACT subject to tRRD and tFAW.
		if now < b.readyAct {
			continue
		}
		times := ch.actTimes[q.rank]
		cut := 0
		for _, at := range times {
			if now-at < int64(t.TFAW) {
				break
			}
			cut++
		}
		times = times[cut:]
		if len(times) >= 4 {
			ch.actTimes[q.rank] = times
			continue
		}
		b.activeRow = q.row
		b.readyCol = now + int64(t.TRCD)
		b.readyPre = now + int64(t.TRAS)
		q.needsAct = true
		ch.actTimes[q.rank] = append(times, now)
		// Apply tRRD to sibling banks of the same rank.
		for g := 0; g < d.cfg.BankGroups; g++ {
			for bk := 0; bk < d.cfg.BanksPerGroup; bk++ {
				oi := d.bankIndex(q.rank, g, bk)
				if &ch.banks[oi] == b {
					continue
				}
				delay := int64(t.TRRDS)
				if g == q.group {
					delay = int64(t.TRRDL)
				}
				if ch.banks[oi].readyAct < now+delay {
					ch.banks[oi].readyAct = now + delay
				}
			}
		}
		return true
	}
	return false
}

// colReady reports whether a column command for q may issue at now:
// bank column timing, column-to-column spacing and data-bus
// availability (bursts pipeline behind the column latency).
func (d *DRAM) colReady(ch *channel, b *bankState, q *queued, now int64) bool {
	t := d.cfg.Timing
	if now < b.readyCol {
		return false
	}
	if ch.lastColGroup >= 0 {
		gap := int64(t.TCCDS)
		if ch.lastColGroup == q.group {
			gap = int64(t.TCCDL)
		}
		if ch.lastColWrite != q.acc.Write {
			gap = max64(gap, int64(t.TWTR))
		}
		if now < ch.lastColCycle+gap {
			return false
		}
	}
	lat := int64(t.CL)
	if q.acc.Write {
		lat = int64(t.CWL)
	}
	// The new burst starts at now+lat; it must not overlap the
	// previous burst's occupancy of the data bus.
	return now+lat >= ch.busFree
}

func (d *DRAM) issueColumn(ch *channel, b *bankState, idx int, now int64) {
	t := d.cfg.Timing
	q := ch.queue[idx]
	var start int64
	if q.acc.Write {
		start = now + int64(t.CWL)
		b.readyPre = max64(b.readyPre, start+int64(t.TBurst)+int64(t.TWR))
		ch.pendingWr--
		d.ctr.DRAMWrites++
	} else {
		start = now + int64(t.CL)
		b.readyPre = max64(b.readyPre, now+int64(t.TRTP))
		d.ctr.DRAMReads++
	}
	done := start + int64(t.TBurst)
	if !q.acc.Write {
		d.resp = append(d.resp, Response{Line: q.acc.Line, Slice: q.acc.Slice, Tag: q.acc.Tag, Done: done})
		if done < d.respMinDone {
			d.respMinDone = done
		}
	}
	d.freed = true
	ch.busFree = done
	ch.lastColGroup = q.group
	ch.lastColCycle = now
	ch.lastColWrite = q.acc.Write
	d.ctr.DRAMBusCycles += int64(t.TBurst)
	switch {
	case q.sawConflict:
		d.ctr.RowConflicts++
	case q.needsAct:
		d.ctr.RowMisses++
	default:
		d.ctr.RowHits++
	}
	ch.queue = append(ch.queue[:idx], ch.queue[idx+1:]...)
}

// ConsumeFreed reports whether any command issue drained channel-
// queue space since the last call, clearing the flag. The engine uses
// it to wake slices blocked on CanEnqueue.
func (d *DRAM) ConsumeFreed() bool {
	f := d.freed
	d.freed = false
	return f
}

// Responses returns read responses whose data burst has completed by
// cycle now, removing them from the pending list. The returned slice
// is only valid until the next call.
func (d *DRAM) Responses(now int64) []Response {
	if len(d.resp) == 0 || d.respMinDone > now {
		return nil
	}
	ready := d.respReady[:0]
	n := 0
	minDone := int64(math.MaxInt64)
	for _, r := range d.resp {
		if r.Done <= now {
			ready = append(ready, r)
		} else {
			if r.Done < minDone {
				minDone = r.Done
			}
			d.resp[n] = r
			n++
		}
	}
	d.resp = d.resp[:n]
	d.respMinDone = minDone
	d.respReady = ready
	return ready
}

// NextEvent returns a lower bound on the earliest cycle after now at
// which the controller can change state: complete a read burst the
// engine must collect, flip or execute a refresh, or issue a column,
// precharge or activate command for a queued request. The bound may
// be early (write-drain eligibility is ignored — a too-early horizon
// only costs a recheck, never correctness); it is never late. Called
// on post-tick state, where every channel's cached wake is fresh.
func (d *DRAM) NextEvent(now int64) int64 {
	h := d.respMinDone
	for i := range d.channels {
		if w := d.channels[i].wake; w < h {
			h = w
		}
	}
	return h
}

func (d *DRAM) channelNextEvent(ch *channel, now int64) int64 {
	h := int64(math.MaxInt64)
	if now < ch.nextRef {
		h = ch.nextRef // refPending flips, blocking new columns
	}
	if ch.refPending {
		// The all-bank refresh issues once the bus drains and any
		// previous refresh window closes; nothing else can issue first.
		e := now + 1
		if ch.refUntil > e {
			e = ch.refUntil
		}
		if ch.busFree > e {
			e = ch.busFree
		}
		return e
	}
	if now < ch.refUntil {
		// Channel blocked by an in-progress refresh.
		if len(ch.queue) > 0 && ch.refUntil < h {
			h = ch.refUntil
		}
		return h
	}
	// The write-drain eligibility filter below mirrors tickChannel's;
	// it is stable across a skipped window (pendingWr frozen) and any
	// write enqueue resets the wake for a full rescan.
	preferWrites := ch.drainingWr && ch.pendingWr > 0
	prefersExist := false
	for i := range ch.queue {
		if ch.queue[i].acc.Write == preferWrites {
			prefersExist = true
			break
		}
	}
	for i := range ch.queue {
		q := &ch.queue[i]
		if prefersExist && q.acc.Write != preferWrites {
			continue
		}
		e := d.requestBound(ch, q)
		if e <= now+1 {
			return now + 1
		}
		if e < h {
			h = e
		}
	}
	return h
}

// Pending reports the number of in-flight and queued transactions,
// used by the engine's drain check.
func (d *DRAM) Pending() int {
	n := len(d.resp)
	for i := range d.channels {
		n += len(d.channels[i].queue)
	}
	return n
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
