package memreq

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	cases := []struct {
		byteAddr uint64
		line     uint64
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{4096, 64},
	}
	for _, c := range cases {
		if got := LineAddr(c.byteAddr); got != c.line {
			t.Errorf("LineAddr(%d)=%d want %d", c.byteAddr, got, c.line)
		}
	}
	if ByteAddr(3) != 192 {
		t.Errorf("ByteAddr(3)=%d", ByteAddr(3))
	}
}

// Line/byte conversion round-trips for line-aligned addresses.
func TestLineAddrRoundTrip(t *testing.T) {
	check := func(line uint64) bool {
		line &= (1 << 50) - 1
		return LineAddr(ByteAddr(line)) == line
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolReuseAndIDs(t *testing.T) {
	var p Pool
	a := p.Get()
	b := p.Get()
	if a.ID == b.ID {
		t.Fatal("IDs must be unique")
	}
	if a.ID == 0 || b.ID == 0 {
		t.Fatal("IDs must be non-zero")
	}
	a.Line = 42
	a.Core = 3
	p.Put(a)
	c := p.Get()
	if c != a {
		t.Fatal("pool should reuse returned requests")
	}
	if c.Line != 0 || c.Core != 0 {
		t.Fatalf("reused request not reset: %+v", c)
	}
	if c.ID <= b.ID {
		t.Fatalf("reused request must get a fresh ID: %d <= %d", c.ID, b.ID)
	}
}

func TestPoolOutstanding(t *testing.T) {
	var p Pool
	if p.Outstanding() != 0 {
		t.Fatal("fresh pool outstanding != 0")
	}
	a := p.Get()
	b := p.Get()
	if p.Outstanding() != 2 {
		t.Fatalf("outstanding=%d want 2", p.Outstanding())
	}
	p.Put(a)
	if p.Outstanding() != 1 {
		t.Fatalf("outstanding=%d want 1", p.Outstanding())
	}
	p.Put(b)
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding=%d want 0", p.Outstanding())
	}
	// Reuse keeps the accounting balanced.
	c := p.Get()
	p.Put(c)
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding after reuse=%d want 0", p.Outstanding())
	}
	p.Put(nil) // must be a no-op
	if p.Outstanding() != 0 {
		t.Fatal("Put(nil) changed accounting")
	}
}
