// Package memreq defines the memory request type that travels from the
// vector cores through the interconnect into the LLC slices and, on a
// miss, down to the DRAM model — the unit of traffic on every datapath
// of Fig. 4 (Section 3.1) of the paper. A request always refers to a
// single cache line; vector accesses are split into line requests at
// the L1 boundary.
package memreq

// LineShift is log2 of the cache line size in bytes. The whole system
// uses 64-byte lines (Table 5 of the paper).
const LineShift = 6

// LineBytes is the cache line size in bytes.
const LineBytes = 1 << LineShift

// LineAddr converts a byte address into a line address.
func LineAddr(byteAddr uint64) uint64 { return byteAddr >> LineShift }

// ByteAddr converts a line address back into the byte address of the
// line's first byte.
func ByteAddr(lineAddr uint64) uint64 { return lineAddr << LineShift }

// Request is one outstanding line-granularity memory transaction.
// Requests are allocated from a free list owned by the engine; no
// field may hold a pointer into another request.
type Request struct {
	ID     int64  // unique, monotonically increasing
	Line   uint64 // line address (byte address >> LineShift)
	Write  bool   // true for stores (write-through traffic from L1)
	Core   int    // issuing core
	Window int    // issuing instruction window within the core

	// Timestamps, in core cycles, for latency accounting.
	IssueCycle  int64 // cycle the core issued the access
	ArriveCycle int64 // cycle the request entered the slice request queue

	// SpecHit is the arbiter's speculative cache-hit bit, recorded in
	// sent_reqs when the request is selected (Fig. 5 of the paper).
	SpecHit bool

	// Posted stores complete at the LLC without a response to the core.
	Posted bool
}

// Reset clears a request for reuse by a free list.
func (r *Request) Reset() {
	*r = Request{}
}

// Pool is a trivial free list for Request objects. It is not safe for
// concurrent use; the simulation engine is single-threaded by design
// (cycle-accurate determinism), so no locking is needed.
type Pool struct {
	free   []*Request
	nextID int64
	puts   int64
}

// Get returns a zeroed request with a fresh ID.
func (p *Pool) Get() *Request {
	var r *Request
	if n := len(p.free); n > 0 {
		r = p.free[n-1]
		p.free = p.free[:n-1]
		r.Reset()
	} else {
		r = &Request{}
	}
	p.nextID++
	r.ID = p.nextID
	return r
}

// Prealloc grows the free list to hold at least n recycled requests,
// allocating them in one contiguous block. The engine calls it at
// construction with the system's maximum in-flight request count so
// the steady-state cycle loop never allocates a Request.
func (p *Pool) Prealloc(n int) {
	have := len(p.free)
	if n <= have {
		return
	}
	block := make([]Request, n-have)
	if cap(p.free) < n {
		grown := make([]*Request, have, n)
		copy(grown, p.free)
		p.free = grown
	}
	for i := range block {
		p.free = append(p.free, &block[i])
	}
}

// Put returns a request to the free list. The caller must not touch
// the request afterwards.
func (p *Pool) Put(r *Request) {
	if r == nil {
		return
	}
	p.puts++
	p.free = append(p.free, r)
}

// Outstanding reports how many requests have been handed out and not
// returned; useful for leak checks in tests.
func (p *Pool) Outstanding() int64 {
	return p.nextID - p.puts
}
