// Package noc models the interconnect between the vector cores and
// the LLC slices (the "Interconnect Network" of Fig. 3/4): a fixed
// transit latency plus finite per-slice ingress bandwidth. Requests
// that arrive at a slice whose request queue is full wait in the
// network (head-of-line), exerting backpressure toward the cores.
//
// The response direction (slice → core) models latency only; the
// direct-forward path of Fig. 4 step (4') uses it too.
package noc

import (
	"fmt"

	"repro/internal/memreq"
	"repro/internal/stats"
)

// Config describes the interconnect.
type Config struct {
	Latency        int // transit cycles in each direction
	SliceIngestPer int // requests a slice may accept per cycle
	// SliceBufCap bounds the requests in flight toward one slice
	// (transit pipeline plus ingress buffer). When reached, cores see
	// backpressure and their egress queues fill — the path by which
	// LLC contention becomes core memory-stall (C_mem).
	SliceBufCap int
}

// DefaultConfig matches a crossbar/mesh hop count appropriate for a
// 16-core, 8-slice chip.
func DefaultConfig() Config {
	return Config{Latency: 8, SliceIngestPer: 1, SliceBufCap: 16}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Latency < 0 {
		return fmt.Errorf("noc: Latency must be non-negative, got %d", c.Latency)
	}
	if c.SliceIngestPer <= 0 {
		return fmt.Errorf("noc: SliceIngestPer must be positive, got %d", c.SliceIngestPer)
	}
	if c.SliceBufCap <= 0 {
		return fmt.Errorf("noc: SliceBufCap must be positive, got %d", c.SliceBufCap)
	}
	return nil
}

type reqFlit struct {
	req    *memreq.Request
	arrive int64
}

// Delivery is a response delivered to a core: the line plus the
// window that was waiting on it.
type Delivery struct {
	Line   uint64
	Core   int
	Window int
	ReqID  int64
	Issue  int64
}

type respFlit struct {
	del    Delivery
	arrive int64
}

// NoC is the interconnect. FIFOs stay ordered because latency is
// uniform; delivery therefore pops from the front only.
type NoC struct {
	cfg     Config
	toSlice [][]reqFlit  // per slice
	toCore  [][]respFlit // per core
	ctr     *stats.Counters
}

// New builds the interconnect for the given topology.
func New(cfg Config, numCores, numSlices int, ctr *stats.Counters) (*NoC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctr == nil {
		ctr = &stats.Counters{}
	}
	n := &NoC{cfg: cfg, ctr: ctr}
	n.toSlice = make([][]reqFlit, numSlices)
	n.toCore = make([][]respFlit, numCores)
	return n, nil
}

// CanSendReq reports whether the path toward a slice has buffer space.
func (n *NoC) CanSendReq(slice int) bool {
	return len(n.toSlice[slice]) < n.cfg.SliceBufCap
}

// SendReq injects a request toward a slice at cycle now. The caller
// must have checked CanSendReq.
func (n *NoC) SendReq(req *memreq.Request, slice int, now int64) {
	n.ctr.NoCReqSent++
	n.toSlice[slice] = append(n.toSlice[slice], reqFlit{req: req, arrive: now + int64(n.cfg.Latency)})
}

// SliceQueueLen returns the number of requests in flight toward or
// waiting at a slice's ingress (diagnostics and drain checks).
func (n *NoC) SliceQueueLen(slice int) int { return len(n.toSlice[slice]) }

// DeliverReqs hands arrived requests to a slice via accept, which
// returns false when the slice's request queue is full; delivery then
// stops (head-of-line blocking). At most SliceIngestPer requests are
// delivered per call.
func (n *NoC) DeliverReqs(slice int, now int64, accept func(*memreq.Request) bool) {
	q := n.toSlice[slice]
	delivered := 0
	for len(q) > 0 && delivered < n.cfg.SliceIngestPer {
		f := q[0]
		if f.arrive > now {
			break
		}
		f.req.ArriveCycle = now
		if !accept(f.req) {
			n.ctr.NetQueueDelay++
			break
		}
		q = q[1:]
		delivered++
	}
	// Compact to avoid unbounded backing-array growth.
	if len(q) == 0 {
		n.toSlice[slice] = n.toSlice[slice][:0]
	} else {
		n.toSlice[slice] = q
	}
}

// SendResp injects a data delivery toward a core at cycle now.
func (n *NoC) SendResp(d Delivery, now int64) {
	n.ctr.NoCRespSent++
	n.toCore[d.Core] = append(n.toCore[d.Core], respFlit{del: d, arrive: now + int64(n.cfg.Latency)})
}

// DeliverResps hands all arrived responses for a core to fn.
func (n *NoC) DeliverResps(core int, now int64, fn func(Delivery)) {
	q := n.toCore[core]
	i := 0
	for ; i < len(q); i++ {
		if q[i].arrive > now {
			break
		}
		fn(q[i].del)
	}
	if i > 0 {
		q = q[i:]
		if len(q) == 0 {
			n.toCore[core] = n.toCore[core][:0]
		} else {
			n.toCore[core] = q
		}
	}
}

// Pending reports the total number of in-flight flits.
func (n *NoC) Pending() int {
	total := 0
	for _, q := range n.toSlice {
		total += len(q)
	}
	for _, q := range n.toCore {
		total += len(q)
	}
	return total
}
