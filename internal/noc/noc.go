// Package noc models the interconnect between the vector cores and
// the LLC slices (the "Interconnect Network" of Fig. 3/4): a fixed
// transit latency plus finite per-slice ingress bandwidth. Requests
// that arrive at a slice whose request queue is full wait in the
// network (head-of-line), exerting backpressure toward the cores.
//
// The response direction (slice → core) models latency only; the
// direct-forward path of Fig. 4 step (4') uses it too.
package noc

import (
	"fmt"
	"math"

	"repro/internal/memreq"
	"repro/internal/ring"
	"repro/internal/stats"
)

// Config describes the interconnect.
type Config struct {
	Latency        int // transit cycles in each direction
	SliceIngestPer int // requests a slice may accept per cycle
	// SliceBufCap bounds the requests in flight toward one slice
	// (transit pipeline plus ingress buffer). When reached, cores see
	// backpressure and their egress queues fill — the path by which
	// LLC contention becomes core memory-stall (C_mem).
	SliceBufCap int
}

// DefaultConfig matches a crossbar/mesh hop count appropriate for a
// 16-core, 8-slice chip.
func DefaultConfig() Config {
	return Config{Latency: 8, SliceIngestPer: 1, SliceBufCap: 16}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Latency < 0 {
		return fmt.Errorf("noc: Latency must be non-negative, got %d", c.Latency)
	}
	if c.SliceIngestPer <= 0 {
		return fmt.Errorf("noc: SliceIngestPer must be positive, got %d", c.SliceIngestPer)
	}
	if c.SliceBufCap <= 0 {
		return fmt.Errorf("noc: SliceBufCap must be positive, got %d", c.SliceBufCap)
	}
	return nil
}

type reqFlit struct {
	req    *memreq.Request
	arrive int64
}

// Delivery is a response delivered to a core: the line plus the
// window that was waiting on it.
type Delivery struct {
	Line   uint64
	Core   int
	Window int
	ReqID  int64
	Issue  int64
}

type respFlit struct {
	del    Delivery
	arrive int64
}

// NoC is the interconnect. FIFOs stay ordered because latency is
// uniform; delivery therefore pops from the front only.
type NoC struct {
	cfg     Config
	toSlice []ring.Queue[reqFlit]  // per slice
	toCore  []ring.Queue[respFlit] // per core
	ctr     *stats.Counters

	// minRespArrive caches the earliest response-flit arrival across
	// all cores (dirty after a delivery pops a front), so the engine's
	// "any response due this cycle?" check is one compare.
	minRespArrive int64
	respDirty     bool
	// spaceEpoch increments whenever a slice-bound queue drops below
	// its buffer cap — the only transition that can unblock a core's
	// egress. The engine compares epochs instead of polling CanSendReq
	// for every core every cycle.
	spaceEpoch int64
	// frontEpoch increments whenever any slice-bound queue's head
	// changes (push to an empty queue, or a delivery pop), which is
	// the only way the engine's cached front summary can go stale.
	frontEpoch int64
}

// New builds the interconnect for the given topology.
func New(cfg Config, numCores, numSlices int, ctr *stats.Counters) (*NoC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctr == nil {
		ctr = &stats.Counters{}
	}
	n := &NoC{cfg: cfg, ctr: ctr, minRespArrive: math.MaxInt64}
	n.toSlice = make([]ring.Queue[reqFlit], numSlices)
	n.toCore = make([]ring.Queue[respFlit], numCores)
	return n, nil
}

// Reset rewinds the interconnect to its just-constructed state: every
// in-flight flit dropped (the caller owns request recycling; after a
// drained run the queues are empty anyway) and the cached horizons and
// epochs rewound, keeping all queue allocations.
func (n *NoC) Reset() {
	for i := range n.toSlice {
		n.toSlice[i].Clear()
	}
	for i := range n.toCore {
		n.toCore[i].Clear()
	}
	n.minRespArrive = math.MaxInt64
	n.respDirty = false
	n.spaceEpoch = 0
	n.frontEpoch = 0
}

// CanSendReq reports whether the path toward a slice has buffer space.
func (n *NoC) CanSendReq(slice int) bool {
	return n.toSlice[slice].Len() < n.cfg.SliceBufCap
}

// SendReq injects a request toward a slice at cycle now. The caller
// must have checked CanSendReq.
func (n *NoC) SendReq(req *memreq.Request, slice int, now int64) {
	n.ctr.NoCReqSent++
	if n.toSlice[slice].Len() == 0 {
		n.frontEpoch++ // a new head appears
	}
	n.toSlice[slice].Push(reqFlit{req: req, arrive: now + int64(n.cfg.Latency)})
}

// SliceQueueLen returns the number of requests in flight toward or
// waiting at a slice's ingress (diagnostics and drain checks).
func (n *NoC) SliceQueueLen(slice int) int { return n.toSlice[slice].Len() }

// DeliverReqs hands arrived requests to a slice via accept, which
// returns false when the slice's request queue is full; delivery then
// stops (head-of-line blocking). At most SliceIngestPer requests are
// delivered per call.
func (n *NoC) DeliverReqs(slice int, now int64, accept func(*memreq.Request) bool) {
	q := &n.toSlice[slice]
	delivered := 0
	for q.Len() > 0 && delivered < n.cfg.SliceIngestPer {
		f := q.Front()
		if f.arrive > now {
			break
		}
		f.req.ArriveCycle = now
		if !accept(f.req) {
			n.ctr.NetQueueDelay++
			break
		}
		if q.Len() == n.cfg.SliceBufCap {
			n.spaceEpoch++ // a full path just gained space
		}
		q.PopFront()
		n.frontEpoch++
		delivered++
	}
}

// SendResp injects a data delivery toward a core at cycle now.
func (n *NoC) SendResp(d Delivery, now int64) {
	n.ctr.NoCRespSent++
	arrive := now + int64(n.cfg.Latency)
	n.toCore[d.Core].Push(respFlit{del: d, arrive: arrive})
	if arrive < n.minRespArrive {
		n.minRespArrive = arrive
	}
}

// DeliverResps hands all arrived responses for a core to fn.
func (n *NoC) DeliverResps(core int, now int64, fn func(Delivery)) {
	q := &n.toCore[core]
	for q.Len() > 0 {
		f := q.Front()
		if f.arrive > now {
			break
		}
		fn(f.del)
		q.PopFront()
		n.respDirty = true
	}
}

// RespDue reports whether any core has a response flit due at or
// before now, using the cached minimum arrival (recomputed lazily
// after deliveries).
func (n *NoC) RespDue(now int64) bool {
	if n.respDirty {
		m := int64(math.MaxInt64)
		for i := range n.toCore {
			q := &n.toCore[i]
			if q.Len() > 0 {
				if a := q.Front().arrive; a < m {
					m = a
				}
			}
		}
		n.minRespArrive = m
		n.respDirty = false
	}
	return n.minRespArrive <= now
}

// SpaceEpoch returns the ingress-space epoch (see field doc).
func (n *NoC) SpaceEpoch() int64 { return n.spaceEpoch }

// FrontEpoch returns the slice-bound head-change epoch (see field
// doc).
func (n *NoC) FrontEpoch() int64 { return n.frontEpoch }

// ReqFrontState summarises the slice-bound queue heads for the
// engine's slice-loop skip: acceptable is true when an arrived head
// faces a non-full request queue (the loop must run next cycle), and
// nextAccept is the earliest future head arrival toward a non-full
// queue (math.MaxInt64 when none). Heads blocked on full queues never
// wake the loop — their queue-delay is settled from the frozen state
// when the slice next runs.
func (n *NoC) ReqFrontState(now int64, reqQFull func(slice int) bool) (acceptable bool, nextAccept int64) {
	nextAccept = math.MaxInt64
	for i := range n.toSlice {
		q := &n.toSlice[i]
		if q.Len() == 0 || reqQFull(i) {
			continue
		}
		a := q.Front().arrive
		if a <= now {
			acceptable = true
		} else if a < nextAccept {
			nextAccept = a
		}
	}
	return acceptable, nextAccept
}

// ReqFrontArrive returns the arrival cycle of a slice's head-of-line
// request flit, or math.MaxInt64 when none is in flight.
func (n *NoC) ReqFrontArrive(slice int) int64 {
	q := &n.toSlice[slice]
	if q.Len() == 0 {
		return math.MaxInt64
	}
	return q.Front().arrive
}

// RespArrived reports whether a response flit for core is due at or
// before now — the engine's cheap wake check for skipped cores.
func (n *NoC) RespArrived(core int, now int64) bool {
	q := &n.toCore[core]
	return q.Len() > 0 && q.Front().arrive <= now
}

// ReqArrived reports whether a request flit for slice is due at or
// before now — the engine's cheap wake check for skipped slices.
func (n *NoC) ReqArrived(slice int, now int64) bool {
	q := &n.toSlice[slice]
	return q.Len() > 0 && q.Front().arrive <= now
}

// Pending reports the total number of in-flight flits.
func (n *NoC) Pending() int {
	total := 0
	for i := range n.toSlice {
		total += n.toSlice[i].Len()
	}
	for i := range n.toCore {
		total += n.toCore[i].Len()
	}
	return total
}

// NextEvent returns a lower bound on the earliest cycle after now at
// which the interconnect can deliver a flit. reqQFull reports whether
// a slice's request queue is full: an arrived request flit facing a
// full queue is head-of-line blocked and gated on the slice draining,
// so it does not bound the horizon itself. Called on post-tick state
// (every deliverable response flit has been delivered).
func (n *NoC) NextEvent(now int64, reqQFull func(slice int) bool) int64 {
	h := int64(math.MaxInt64)
	for i := range n.toSlice {
		q := &n.toSlice[i]
		if q.Len() == 0 {
			continue
		}
		a := q.Front().arrive
		if a <= now {
			if !reqQFull(i) {
				return now + 1 // the slice can accept next cycle
			}
			continue // blocked: the slice's own horizon governs
		}
		if a < h {
			h = a
		}
	}
	for i := range n.toCore {
		q := &n.toCore[i]
		if q.Len() == 0 {
			continue
		}
		if a := q.Front().arrive; a < h {
			h = a
		}
	}
	return h
}
