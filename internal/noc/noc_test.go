package noc

import (
	"testing"

	"repro/internal/memreq"
)

func testNoC(t *testing.T) *NoC {
	t.Helper()
	n, err := New(Config{Latency: 4, SliceIngestPer: 1, SliceBufCap: 3}, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Latency: -1, SliceIngestPer: 1, SliceBufCap: 1},
		{Latency: 1, SliceIngestPer: 0, SliceBufCap: 1},
		{Latency: 1, SliceIngestPer: 1, SliceBufCap: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRequestLatency(t *testing.T) {
	n := testNoC(t)
	r := &memreq.Request{Line: 7, Core: 0}
	n.SendReq(r, 1, 10)
	delivered := false
	accept := func(req *memreq.Request) bool {
		delivered = true
		if req != r {
			t.Fatal("wrong request delivered")
		}
		return true
	}
	// Before arrival: nothing.
	n.DeliverReqs(1, 13, accept)
	if delivered {
		t.Fatal("delivered before latency elapsed")
	}
	n.DeliverReqs(1, 14, accept)
	if !delivered {
		t.Fatal("not delivered at latency")
	}
	if r.ArriveCycle != 14 {
		t.Fatalf("ArriveCycle=%d", r.ArriveCycle)
	}
	if n.Pending() != 0 {
		t.Fatalf("pending=%d after delivery", n.Pending())
	}
}

func TestBackpressureAndHOL(t *testing.T) {
	n := testNoC(t)
	for i := 0; i < 3; i++ {
		if !n.CanSendReq(0) {
			t.Fatalf("buffer full at %d", i)
		}
		n.SendReq(&memreq.Request{Line: uint64(i)}, 0, 0)
	}
	if n.CanSendReq(0) {
		t.Fatal("buffer cap not enforced")
	}
	if !n.CanSendReq(1) {
		t.Fatal("other slice should have space")
	}
	// Slice rejects: head-of-line blocks, nothing delivered after.
	calls := 0
	n.DeliverReqs(0, 100, func(*memreq.Request) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("HOL: %d accept calls, want 1", calls)
	}
	if n.SliceQueueLen(0) != 3 {
		t.Fatal("rejected request left the queue")
	}
	// Ingest rate: one per call even when accepted.
	n.DeliverReqs(0, 100, func(*memreq.Request) bool { return true })
	if n.SliceQueueLen(0) != 2 {
		t.Fatalf("queue=%d after one ingest", n.SliceQueueLen(0))
	}
}

func TestRequestOrdering(t *testing.T) {
	n := testNoC(t)
	for i := 0; i < 3; i++ {
		n.SendReq(&memreq.Request{Line: uint64(i)}, 0, int64(i))
	}
	var got []uint64
	for now := int64(0); now < 20; now++ {
		n.DeliverReqs(0, now, func(r *memreq.Request) bool {
			got = append(got, r.Line)
			return true
		})
	}
	for i, l := range got {
		if l != uint64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestResponseDelivery(t *testing.T) {
	n := testNoC(t)
	n.SendResp(Delivery{Line: 5, Core: 1, Window: 2, ReqID: 9}, 0)
	n.SendResp(Delivery{Line: 6, Core: 1}, 1)
	var got []Delivery
	n.DeliverResps(1, 3, func(d Delivery) { got = append(got, d) })
	if len(got) != 0 {
		t.Fatal("response delivered early")
	}
	n.DeliverResps(1, 4, func(d Delivery) { got = append(got, d) })
	if len(got) != 1 || got[0].Line != 5 || got[0].Window != 2 {
		t.Fatalf("first response wrong: %+v", got)
	}
	n.DeliverResps(1, 5, func(d Delivery) { got = append(got, d) })
	if len(got) != 2 || got[1].Line != 6 {
		t.Fatalf("second response wrong: %+v", got)
	}
	// Core 0 receives nothing.
	n.DeliverResps(0, 100, func(Delivery) { t.Fatal("misrouted response") })
}

func TestZeroLatency(t *testing.T) {
	n, err := New(Config{Latency: 0, SliceIngestPer: 2, SliceBufCap: 4}, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.SendReq(&memreq.Request{Line: 1}, 0, 5)
	n.SendReq(&memreq.Request{Line: 2}, 0, 5)
	count := 0
	n.DeliverReqs(0, 5, func(*memreq.Request) bool { count++; return true })
	if count != 2 {
		t.Fatalf("zero-latency ingest=%d want 2 (SliceIngestPer)", count)
	}
}
