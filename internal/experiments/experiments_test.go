package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale 32 shrinks the paper matrix to seconds while keeping every
// working-set/cache ratio; the shape assertions here are the coarse
// ones that survive heavy scaling.
const testScale = 32

func TestRunFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment matrix is slow")
	}
	// Scale 16, not 32: the 16K point needs enough cache turnover for
	// the throttling mechanism to have headroom (see EXPERIMENTS.md).
	r, err := RunFig7(workload.Llama3_70B, Options{Scale: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Throttling) != 3 || len(r.Arbitration) != 4 || len(r.Cumulative) != 4 {
		t.Fatalf("panel sizes: %d %d %d", len(r.Throttling), len(r.Arbitration), len(r.Cumulative))
	}
	get := func(series []stats.Series, label string) []float64 {
		for _, s := range series {
			if s.Label == label {
				vals := make([]float64, len(s.Points))
				for i, p := range s.Points {
					vals[i] = p.Y
				}
				return vals
			}
		}
		t.Fatalf("series %q missing", label)
		return nil
	}
	// lcs must be near-neutral everywhere.
	for _, v := range get(r.Throttling, "lcs") {
		if v < 0.9 || v > 1.15 {
			t.Errorf("lcs speedup %v outside neutral band", v)
		}
	}
	// dynmg must win at the longest (most constrained) sequence.
	dynmg := get(r.Throttling, "dynmg")
	if last := dynmg[len(dynmg)-1]; last < 1.03 {
		t.Errorf("dynmg at 16K-equivalent = %v, want > 1.03", last)
	}
	// Cumulative dynmg+BMA >= dynmg at the longest sequence.
	cumBMA := get(r.Cumulative, "dynmg+BMA")
	cumDynmg := get(r.Cumulative, "dynmg")
	if cumBMA[len(cumBMA)-1] < cumDynmg[len(cumDynmg)-1]*0.98 {
		t.Errorf("dynmg+BMA cumulative (%v) below dynmg (%v)", cumBMA, cumDynmg)
	}
}

func TestRunFig8Rows(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment matrix is slow")
	}
	rows, err := RunFig8(Options{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows=%d want 7", len(rows))
	}
	if rows[0].Policy != "unopt" || rows[0].RelPerf != 1.0 {
		t.Fatalf("first row must be the unopt reference: %+v", rows[0])
	}
	for _, r := range rows {
		if r.MSHREntryUtil <= 0 || r.MSHREntryUtil > 1 {
			t.Errorf("%s: util %v out of range", r.Policy, r.MSHREntryUtil)
		}
		if r.DRAMBwGBs <= 0 {
			t.Errorf("%s: no bandwidth", r.Policy)
		}
	}
	out := RenderFig8(rows)
	if !strings.Contains(out, "dynmg+BMA") || !strings.Contains(out, "mshr-hit") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

func TestRunFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment matrix is slow")
	}
	// Scale 16 for fig9: at scale 32 the smallest cache approaches the
	// minimum live working set (16 cores x 4 windows x one tile) and
	// the capacity regime distorts.
	r, err := RunFig9(workload.Llama3_70B, Options{Scale: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CacheSizes) != 3 {
		t.Fatalf("cache sizes %v", r.CacheSizes)
	}
	var unopt, bma []float64
	for _, s := range r.Series {
		vals := make([]float64, len(s.Points))
		for i, p := range s.Points {
			vals[i] = p.Y
		}
		switch s.Label {
		case "unopt":
			unopt = vals
		case "dynmg+BMA":
			bma = vals
		}
	}
	// Normalisation anchor: unopt at the middle cache size is 1.0.
	if unopt[1] != 1.0 {
		t.Fatalf("unopt@mid = %v, want 1.0 (normalisation)", unopt[1])
	}
	// The unoptimized system must improve with cache size.
	if !(unopt[0] <= unopt[1] && unopt[1] <= unopt[2]) {
		t.Errorf("unopt not monotone in cache size: %v", unopt)
	}
	// dynmg+BMA must beat unopt at the middle and large sizes (the
	// paper itself records one exception at the smallest cache).
	for i := 1; i < len(bma); i++ {
		if bma[i] < unopt[i] {
			t.Errorf("dynmg+BMA (%v) below unopt (%v) at size %d", bma[i], unopt[i], i)
		}
	}
}

func TestHWCost(t *testing.T) {
	rows := RunHWCost()
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		rel := (r.AreaUm2 - r.PaperUm2) / r.PaperUm2
		if rel < -0.10 || rel > 0.10 {
			t.Errorf("%s deviates %.1f%% from paper", r.Block, rel*100)
		}
	}
	out := RenderHWCost(rows)
	if !strings.Contains(out, "arbiter") || !strings.Contains(out, "hit buffer") {
		t.Fatalf("render malformed:\n%s", out)
	}
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != 10 {
		t.Fatalf("ids=%v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ids not sorted: %v", ids)
		}
	}
}

func TestTraceCaching(t *testing.T) {
	r := NewRunner(Options{})
	op := workload.LogitOp{Model: workload.Llama3_70B, SeqLen: 256}
	a, err := r.Trace(op)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Trace(op)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("trace not cached")
	}
}
