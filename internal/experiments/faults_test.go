package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/workload"
)

func faultGridConfig() cluster.ScenarioConfig {
	return cluster.ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "faults/grid", Seed: 11, NumRequests: 10,
			Models:       []workload.ModelConfig{workload.Llama3_70B},
			MinPromptLen: 16, MaxPromptLen: 48,
			MinDecode: 2, MaxDecode: 4,
			MeanInterArrival: 10000, MaxBatch: 2,
			Sched: serving.SchedulerConfig{Policy: serving.SchedChunked, ChunkTokens: 16, KVCapTokens: 200},
		},
		NumSessions: 4,
	}
}

// TestFaultGridParallelDeterminism: the MTBF × MTTR × recovery matrix
// returns bit-identical cells at worker widths 1 and GOMAXPROCS, the
// paired runs of each regime face the identical generated schedule,
// and the table renders every regime.
func TestFaultGridParallelDeterminism(t *testing.T) {
	base := sim.DefaultConfig()
	base.L2SizeBytes = 1 << 20
	mtbfs := []float64{120000, 400000}
	mttrs := []float64{60000}
	slo := serving.SLO{TTFTCycles: 600000}
	pol := cluster.Policy{Kind: cluster.LeastOutstanding}

	run := func(par int) *FaultGridResult {
		g, err := FaultGrid(faultGridConfig(), mtbfs, mttrs, 7, 3, 5000, 3, pol, DynMGBMA, slo,
			Options{Base: &base, Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range g.Cells {
			for i := range row {
				row[i].Redispatch.Metrics.StripStepCache()
				row[i].Drop.Metrics.StripStepCache()
			}
		}
		return g
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Fatal("fault grid results depend on worker count")
	}

	var failures int64
	for i := range mtbfs {
		for j := range mttrs {
			c := serial.Cells[i][j]
			// Both recovery policies of a cell face the same generated
			// failures — identical incident counts and downtime schedules.
			if c.Redispatch.Metrics.Failures != c.Drop.Metrics.Failures {
				t.Fatalf("cell [%d][%d]: recovery policies saw different schedules: %d vs %d failures",
					i, j, c.Redispatch.Metrics.Failures, c.Drop.Metrics.Failures)
			}
			if c.Redispatch.Metrics.Dropped != 0 {
				t.Fatalf("cell [%d][%d]: redispatch dropped %d requests", i, j, c.Redispatch.Metrics.Dropped)
			}
			if c.Redispatch.Goodput.SLO != slo || c.Drop.Goodput.SLO != slo {
				t.Fatalf("cell [%d][%d] judged under the wrong SLO", i, j)
			}
			failures += c.Redispatch.Metrics.Failures
		}
	}
	if failures == 0 {
		t.Fatal("no generated regime produced a failure — grid parameters too gentle")
	}

	rendered := serial.Render()
	for _, want := range []string{"mtbf", "redispatch", "drop", "120000", "400000"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rendered grid missing %q:\n%s", want, rendered)
		}
	}
}

// TestFaultGridValidation: empty axes and invalid generator
// parameters fail loudly.
func TestFaultGridValidation(t *testing.T) {
	base := sim.DefaultConfig()
	base.L2SizeBytes = 1 << 20
	pol := cluster.Policy{Kind: cluster.LeastOutstanding}
	slo := serving.SLO{TTFTCycles: 600000}
	if _, err := FaultGrid(faultGridConfig(), nil, []float64{1000}, 7, 3, 0, 2, pol, DynMGBMA, slo, Options{Base: &base}); err == nil {
		t.Error("empty MTBF list accepted")
	}
	if _, err := FaultGrid(faultGridConfig(), []float64{1000}, nil, 7, 3, 0, 2, pol, DynMGBMA, slo, Options{Base: &base}); err == nil {
		t.Error("empty MTTR list accepted")
	}
	if _, err := FaultGrid(faultGridConfig(), []float64{0}, []float64{1000}, 7, 3, 0, 2, pol, DynMGBMA, slo, Options{Base: &base}); err == nil {
		t.Error("zero MTBF accepted")
	}
	if _, err := FaultGrid(faultGridConfig(), []float64{1000}, []float64{1000}, 7, 0, 0, 2, pol, DynMGBMA, slo, Options{Base: &base}); err == nil {
		t.Error("zero incident count accepted")
	}
	if _, err := FaultGrid(faultGridConfig(), []float64{1000}, []float64{1000}, 7, 3, -1, 2, pol, DynMGBMA, slo, Options{Base: &base}); err == nil {
		t.Error("negative detection latency accepted")
	}
}
