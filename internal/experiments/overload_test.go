package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/workload"
)

func overloadGridConfig() cluster.ScenarioConfig {
	return cluster.ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "overload/grid", Seed: 9, NumRequests: 8,
			Models:       []workload.ModelConfig{workload.Llama3_70B},
			MinPromptLen: 16, MaxPromptLen: 48,
			MinDecode: 2, MaxDecode: 4,
			MeanInterArrival: 15000, MaxBatch: 2,
			Arrival: serving.ArrivalConfig{Kind: serving.ArrivalBurst, Period: 80000, Duty: 0.4, Factor: 6},
			Sched:   serving.SchedulerConfig{Policy: serving.SchedChunked, ChunkTokens: 16, KVCapTokens: 120},
		},
		NumSessions: 4,
	}
}

// TestOverloadGridParallelDeterminism: the rate × combo matrix returns
// bit-identical cells (fleet metrics AND goodput reports) at worker
// widths 1 and GOMAXPROCS — the overload acceptance criterion's
// grid-level counterpart.
func TestOverloadGridParallelDeterminism(t *testing.T) {
	base := sim.DefaultConfig()
	base.L2SizeBytes = 1 << 20
	rates := []float64{1, 2}
	combos := DefaultOverloadCombos(60)
	slo := serving.SLO{TTFTCycles: 400000}
	pol := cluster.Policy{Kind: cluster.LeastOutstanding}

	run := func(par int) *OverloadGridResult {
		g, err := OverloadGrid(overloadGridConfig(), rates, combos, 2, pol, DynMGBMA, slo,
			Options{Base: &base, Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range g.Cells {
			for i := range row {
				row[i].Metrics.StripStepCache()
			}
		}
		return g
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Fatal("overload grid results depend on worker count")
	}

	// Shape and scaling sanity: denser arrivals never lengthen the
	// regenerated population, and every combo ran its configuration.
	for i, rate := range rates {
		for j, combo := range combos {
			c := serial.Cells[i][j]
			if c.Metrics.Requests != 8 {
				t.Fatalf("cell x%g/%s served %d requests", rate, combo.Label, c.Metrics.Requests)
			}
			if !combo.Shed.Enabled() && (c.Metrics.Shed != 0 || c.Metrics.Dropped != 0) {
				t.Fatalf("shed-less combo %s shed work: %+v", combo.Label, c.Metrics.Overload)
			}
			if c.Goodput.SLO != slo {
				t.Fatalf("cell x%g/%s judged under %+v", rate, combo.Label, c.Goodput.SLO)
			}
		}
	}

	rendered := serial.Render()
	for _, combo := range combos {
		if !strings.Contains(rendered, combo.Label) {
			t.Fatalf("rendered grid missing combo %q:\n%s", combo.Label, rendered)
		}
	}
	if !strings.Contains(rendered, "goodput") {
		t.Fatalf("rendered grid missing the goodput column:\n%s", rendered)
	}
}

// TestOverloadGridValidation: empty axes and bad rates fail loudly.
func TestOverloadGridValidation(t *testing.T) {
	base := sim.DefaultConfig()
	base.L2SizeBytes = 1 << 20
	pol := cluster.Policy{Kind: cluster.LeastOutstanding}
	combos := DefaultOverloadCombos(60)
	if _, err := OverloadGrid(overloadGridConfig(), nil, combos, 2, pol, DynMGBMA, serving.SLO{}, Options{Base: &base}); err == nil {
		t.Error("empty rate list accepted")
	}
	if _, err := OverloadGrid(overloadGridConfig(), []float64{1}, nil, 2, pol, DynMGBMA, serving.SLO{}, Options{Base: &base}); err == nil {
		t.Error("empty combo list accepted")
	}
	if _, err := OverloadGrid(overloadGridConfig(), []float64{0}, combos, 2, pol, DynMGBMA, serving.SLO{}, Options{Base: &base}); err == nil {
		t.Error("zero rate multiplier accepted")
	}
}
