// The serving-scenario grid: the serving engine run across the
// paper's throttle/arbiter policy matrix, the way RunFig7/8/9 run the
// single-operator cells. A serving cell is one complete
// continuous-batching scenario under one policy; cells are
// independent and deterministic, so the grid fans out across the same
// bounded worker pool as the figure harnesses with results in stable
// matrix order.

package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/pool"
	"repro/internal/serving"
	"repro/internal/sim"
)

// ServeCellSpec names one serving simulation: a scenario under a
// policy, optionally with a per-cell base configuration override.
type ServeCellSpec struct {
	Scenario serving.Scenario
	Pol      Policy
	// Base optionally overrides the grid's base configuration for
	// this cell (hardware sweeps under serving load).
	Base *sim.Config
}

// RunServeCells executes every serving cell across the bounded worker
// pool (Options.Parallel wide) and returns the metrics in input
// order. Options.Scale divides the L2 size exactly like the figure
// harnesses; prompt lengths are explicit in each Scenario, which the
// caller scales when building it. Unlike RunCells there is no shared
// trace cache: a serving run composes a fresh multi-stream trace per
// token step because the batch composition changes as requests are
// admitted and retired.
func RunServeCells(cells []ServeCellSpec, opts Options) ([]*serving.Metrics, error) {
	results := make([]*serving.Metrics, len(cells))
	err := pool.ForEach(len(cells), opts.parallel(), func(i int) error {
		c := &cells[i]
		cfg := opts.base()
		if c.Base != nil {
			cfg = *c.Base
		}
		cfg.L2SizeBytes /= opts.scale()
		cfg.Throttle = c.Pol.Throttle
		cfg.Arbiter = c.Pol.Arbiter
		ropts := serving.RunOptions{StepCache: opts.StepCache, HWProf: opts.HWProf}
		col := opts.Trace.Collector()
		if col != nil {
			// A serving cell is a 1-node fleet for trace purposes.
			ropts.Recorder = col.Node(0)
			ropts.SampleEvery = col.SampleEvery()
		}
		m, err := serving.RunWith(cfg, c.Scenario, ropts)
		if err != nil {
			return fmt.Errorf("serve cell %s %s: %w", c.Scenario.Name, c.Pol.Label, err)
		}
		label := c.Scenario.Name + "-" + c.Pol.Label
		if col != nil {
			if err := opts.Trace.Export(label, col); err != nil {
				return fmt.Errorf("serve cell %s %s: %w", c.Scenario.Name, c.Pol.Label, err)
			}
		}
		if m.HW != nil {
			if err := opts.writeHWReport(label, m.HW.Render(label)); err != nil {
				return fmt.Errorf("serve cell %s %s: hwprof-out: %w", c.Scenario.Name, c.Pol.Label, err)
			}
		}
		if opts.Log != nil {
			logServeCell(opts, c, m)
		}
		results[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

var serveLogMu sync.Mutex

func logServeCell(opts Options, c *ServeCellSpec, m *serving.Metrics) {
	serveLogMu.Lock()
	defer serveLogMu.Unlock()
	fmt.Fprintf(opts.Log,
		"%-20s %-12s tokens=%-5d steps=%-4d makespan=%-10d tok/kcyc=%.4f p50=%.0f p99=%.0f preempt=%d pfx-rate=%.2f pfx-saved=%d memo=%d/%d optrace=%d/%d resets=%d\n",
		c.Scenario.Name, c.Pol.Label, m.Tokens, m.Steps, m.Makespan,
		m.TokensPerKCycle, m.TokenLatency.P50, m.TokenLatency.P99,
		m.Preemptions, m.PrefixHitRate, m.PrefillTokensSaved,
		m.StepCache.MemoHits, m.StepCache.MemoHits+m.StepCache.MemoMisses,
		m.StepCache.OpCacheHits, m.StepCache.OpCacheHits+m.StepCache.OpCacheMisses,
		m.StepCache.SimResets)
}

// ServeGridResult is one scenario evaluated across a policy list.
type ServeGridResult struct {
	Scenario serving.Scenario
	Policies []Policy
	Metrics  []*serving.Metrics // parallel to Policies
}

// ServeGrid runs one serving scenario across every policy in the
// matrix and collects the serving metrics per policy. The scenario's
// fixed-seed arrival process and the deterministic engine make every
// cell reproducible; the parallel fan-out preserves matrix order.
// Options.Scale divides the L2 size (see RunServeCells).
func ServeGrid(scn serving.Scenario, policies []Policy, opts Options) (*ServeGridResult, error) {
	cells := make([]ServeCellSpec, len(policies))
	for i, p := range policies {
		cells[i] = ServeCellSpec{Scenario: scn, Pol: p}
	}
	metrics, err := RunServeCells(cells, opts)
	if err != nil {
		return nil, err
	}
	return &ServeGridResult{Scenario: scn, Policies: policies, Metrics: metrics}, nil
}

// Render formats the grid as an aligned per-policy table of the
// headline serving metrics. Cells run with the hardware profiler gain
// a bottleneck-class column.
func (g *ServeGridResult) Render() string {
	hw := false
	for _, m := range g.Metrics {
		if m.HW != nil {
			hw = true
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d requests, %d tokens, batch %d\n\n",
		g.Scenario.Name, len(g.Scenario.Requests), g.Scenario.TotalTokens(), g.Scenario.MaxBatch)
	fmt.Fprintf(&b, "%-14s %12s %10s %10s %10s %10s %10s %10s %10s",
		"policy", "tok/kcycle", "makespan", "lat-p50", "lat-p95", "lat-p99", "ttft-p95", "queue-p99", "occupancy")
	if hw {
		fmt.Fprintf(&b, "  %s", "bottleneck")
	}
	b.WriteByte('\n')
	for i, p := range g.Policies {
		m := g.Metrics[i]
		fmt.Fprintf(&b, "%-14s %12.4f %10d %10.0f %10.0f %10.0f %10.0f %10.0f %10.2f",
			p.Label, m.TokensPerKCycle, m.Makespan,
			m.TokenLatency.P50, m.TokenLatency.P95, m.TokenLatency.P99,
			m.TTFT.P95, m.QueueDelay.P99, m.MeanBatchOccupancy)
		if hw {
			class := "-"
			if m.HW != nil {
				class = m.HW.ClassName
			}
			fmt.Fprintf(&b, "  %s", class)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
