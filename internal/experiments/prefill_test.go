package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/serving"
	"repro/internal/sim"
)

func schedGridScenario(t *testing.T) serving.Scenario {
	t.Helper()
	scn, err := serving.NewScenario(serving.ScenarioConfig{
		Name: "sched-grid", Seed: 9, NumRequests: 5,
		MinPromptLen: 16, MaxPromptLen: 32,
		MinDecode: 2, MaxDecode: 3,
		MeanInterArrival: 0, MaxBatch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestSchedGridParallelDeterminism is the chunked-vs-prefill-first
// determinism gate across -parallel widths: the full scheduler ×
// policy matrix run serially and at GOMAXPROCS must produce
// bit-identical metrics in identical order, so a chunk-size sweep's
// conclusions never depend on the fan-out.
func TestSchedGridParallelDeterminism(t *testing.T) {
	scn := schedGridScenario(t)
	scheds := ChunkSweep([]int{16, 32}, 0)
	pols := []Policy{
		{Label: "unopt", Throttle: "none"},
		{Label: "dynmg", Throttle: "dynmg"},
	}
	base := sim.DefaultConfig()
	run := func(par int) *SchedGridResult {
		g, err := SchedGrid(scn, scheds, pols, Options{
			Base: &base, Scale: 32, Parallel: par,
			StepCache: serving.StepCacheNoMemo, // no cross-run memo coupling
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range g.Metrics {
			for _, m := range row {
				m.StripStepCache()
			}
		}
		return g
	}
	serial := run(1)
	wide := run(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(serial.Metrics, wide.Metrics) {
		t.Fatal("sched grid metrics differ between -parallel 1 and GOMAXPROCS")
	}
	// The decode-only row skips prefill; both prefill rows do the whole
	// prompt work; chunked rows split it into more passes.
	var promptTotal int64
	for _, r := range scn.Requests {
		promptTotal += int64(r.PromptLen)
	}
	for j := range pols {
		if got := serial.Metrics[0][j].PrefillTokens; got != 0 {
			t.Errorf("decode-only cell prefilled %d tokens", got)
		}
		pf, ch := serial.Metrics[1][j], serial.Metrics[2][j]
		if pf.PrefillTokens != promptTotal || ch.PrefillTokens != promptTotal {
			t.Errorf("prefill totals %d/%d, want %d", pf.PrefillTokens, ch.PrefillTokens, promptTotal)
		}
		if ch.PrefillSteps <= pf.PrefillSteps {
			t.Errorf("chunked/16 prefill steps %d not above prefill-first %d", ch.PrefillSteps, pf.PrefillSteps)
		}
	}
}

// TestChunkSweepLabels pins the sweep construction and the grid's
// scheduler labels.
func TestChunkSweepLabels(t *testing.T) {
	scheds := ChunkSweep([]int{16, 64}, 2048)
	want := []string{"decode-only/kv2048", "prefill-first/kv2048", "chunked/16/kv2048", "chunked/64/kv2048"}
	if len(scheds) != len(want) {
		t.Fatalf("sweep has %d entries, want %d", len(scheds), len(want))
	}
	for i, s := range scheds {
		if got := SchedLabel(s); got != want[i] {
			t.Errorf("label %d = %q, want %q", i, got, want[i])
		}
		if s.KVCapTokens != 2048 {
			t.Errorf("entry %d capacity %d, want 2048", i, s.KVCapTokens)
		}
	}
	if got := SchedLabel(serving.SchedulerConfig{}); got != "decode-only" {
		t.Errorf("zero-value label %q", got)
	}
}
