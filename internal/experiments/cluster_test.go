package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serving"
	"repro/internal/sim"
)

func clusterTestScenario(t *testing.T) cluster.Scenario {
	t.Helper()
	scn, err := cluster.NewScenario(cluster.ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "grid/test", Seed: 5, NumRequests: 6,
			MinPromptLen: 16, MaxPromptLen: 32,
			MinDecode: 2, MaxDecode: 2,
			MeanInterArrival: 4000, MaxBatch: 2,
		},
		NumSessions: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestClusterGridParallelDeterminism: the router × node-count matrix
// returns bit-identical fleet metrics in matrix order at any worker
// count — the two nested levels of parallelism (cells on the pool,
// node engines inside each cell) never change a number.
func TestClusterGridParallelDeterminism(t *testing.T) {
	scn := clusterTestScenario(t)
	base := sim.DefaultConfig()
	base.L2SizeBytes = 1 << 20
	nodeCounts := []int{1, 2}
	routers := []cluster.Policy{{Kind: cluster.RoundRobin}, {Kind: cluster.SessionAffinity}}

	serial, err := ClusterGrid(scn, nodeCounts, routers, DynMGBMA, Options{Base: &base, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ClusterGrid(scn, nodeCounts, routers, DynMGBMA, Options{Base: &base, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	// StepCache counters are diagnostics outside the bit-identity
	// contract (cells share the process-wide step memo).
	for _, row := range serial.Metrics {
		for _, m := range row {
			m.StripStepCache()
		}
	}
	for _, row := range parallel.Metrics {
		for _, m := range row {
			m.StripStepCache()
		}
	}
	if !reflect.DeepEqual(serial.Metrics, parallel.Metrics) {
		t.Fatal("cluster grid results depend on worker count")
	}

	rendered := serial.Render()
	for _, r := range routers {
		if !strings.Contains(rendered, r.String()) {
			t.Fatalf("rendered grid missing router %q:\n%s", r, rendered)
		}
	}
	if !strings.Contains(rendered, DynMGBMA.Label) {
		t.Fatalf("rendered grid missing cache policy label:\n%s", rendered)
	}
}

// TestRunClusterCellsBaseOverride: a per-cell base config override is
// honoured (hardware sweeps under fleet load).
func TestRunClusterCellsBaseOverride(t *testing.T) {
	scn := clusterTestScenario(t)
	narrow := sim.DefaultConfig()
	narrow.NumCores = 2
	wide := sim.DefaultConfig()

	cells := []ClusterCellSpec{
		{Scenario: scn, Nodes: 2, Router: cluster.Policy{Kind: cluster.RoundRobin}, Pol: Unopt, Base: &narrow},
		{Scenario: scn, Nodes: 2, Router: cluster.Policy{Kind: cluster.RoundRobin}, Pol: Unopt, Base: &wide},
	}
	res, err := RunClusterCells(cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Makespan <= res[1].Makespan {
		t.Fatalf("2-core fleet makespan %d not above the 16-core %d",
			res[0].Makespan, res[1].Makespan)
	}
}
