// The overload grid: goodput-vs-load curves for the overload-control
// study. One fleet workload family is regenerated at a sweep of
// arrival-rate multipliers (the x-axis of a goodput curve) and run
// under a matrix of overload-control combos — preemption policy on
// every node × shedding/retry/forwarding at the router — with
// goodput-under-SLO as the headline metric. As load climbs past
// saturation, raw throughput plateaus while goodput collapses; the
// grid shows how much of the collapse each combo recovers.

package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/pool"
	"repro/internal/serving"
	"repro/internal/sim"
)

// OverloadCombo is one overload-control configuration under test:
// the per-node preemption policy plus the router's shedding
// configuration. The zero value is uncontrolled — head-of-line
// blocking on the nodes, never-shed at the router.
type OverloadCombo struct {
	Label   string
	Preempt serving.PreemptPolicy
	Shed    cluster.OverloadConfig
}

// DefaultOverloadCombos returns the stock combo ladder: uncontrolled,
// preemption alone, shedding alone, shedding with forwarding, and
// both together. sat is the per-node saturation threshold the
// shedding combos use.
func DefaultOverloadCombos(sat int64) []OverloadCombo {
	shed := cluster.OverloadConfig{
		SaturationTokens: sat,
		MaxRetries:       cluster.DefaultMaxRetries,
		BackoffBase:      cluster.DefaultBackoffBase,
	}
	fwd := shed
	fwd.Forward = true
	return []OverloadCombo{
		{Label: "none"},
		{Label: "preempt", Preempt: serving.PreemptNewest},
		{Label: "shed", Shed: shed},
		{Label: "shed+fwd", Shed: fwd},
		{Label: "preempt+shed+fwd", Preempt: serving.PreemptNewest, Shed: fwd},
	}
}

// OverloadCellSpec names one overload simulation: the base workload
// generator configuration, an arrival-rate multiplier that divides
// its MeanInterArrival, a fleet shape, an overload combo, a cache
// policy and the SLO the goodput is judged against.
type OverloadCellSpec struct {
	// Config is the base fleet workload generator configuration; the
	// cell regenerates the scenario with MeanInterArrival / Rate, so
	// the same seed explores the same request population under denser
	// arrivals. Its Sched must already satisfy the combo's preemption
	// requirements (a prefill scheduler and a finite KV capacity).
	Config cluster.ScenarioConfig
	// Rate is the arrival-rate multiplier (> 0; 1 = the base rate).
	Rate   float64
	Nodes  int
	Router cluster.Policy
	Combo  OverloadCombo
	// Pol is the cache-level (throttle, arbiter) policy every node
	// runs.
	Pol Policy
	// SLO is the per-request deadline pair goodput is measured under.
	SLO serving.SLO
	// Base optionally overrides the grid's base configuration.
	Base *sim.Config
}

// OverloadCellResult is one cell's outcome: the full fleet metrics
// plus the goodput-under-SLO report.
type OverloadCellResult struct {
	Metrics *cluster.Metrics
	Goodput serving.SLOReport
}

// RunOverloadCells executes every overload cell across the bounded
// worker pool and returns results in input order. The parallelism
// split and determinism guarantees match RunClusterCells: cells fan
// out on the outer pool, node engines inside each cell, and results
// are bit-identical at any Options.Parallel.
func RunOverloadCells(cells []OverloadCellSpec, opts Options) ([]OverloadCellResult, error) {
	outer := opts.parallel()
	if outer > len(cells) {
		outer = len(cells)
	}
	inner := 1
	if outer > 0 && opts.parallel()/outer > 1 {
		inner = opts.parallel() / outer
	}
	results := make([]OverloadCellResult, len(cells))
	err := pool.ForEach(len(cells), outer, func(i int) error {
		c := &cells[i]
		if c.Rate <= 0 {
			return fmt.Errorf("overload cell %d: rate multiplier must be positive, got %g", i, c.Rate)
		}
		scfg := c.Config
		scfg.MeanInterArrival /= c.Rate
		scfg.Sched.Preempt = c.Combo.Preempt
		scfg.Name = fmt.Sprintf("%s/x%g", c.Config.Name, c.Rate)
		scn, err := cluster.NewScenario(scfg)
		if err != nil {
			return fmt.Errorf("overload cell %s %s: %w", scfg.Name, c.Combo.Label, err)
		}
		cfg := opts.base()
		if c.Base != nil {
			cfg = *c.Base
		}
		cfg.L2SizeBytes /= opts.scale()
		cfg.Throttle = c.Pol.Throttle
		cfg.Arbiter = c.Pol.Arbiter
		col := opts.Trace.Collector()
		m, err := cluster.Run(cfg, scn, c.Nodes, c.Router,
			cluster.Options{Parallel: inner, StepCache: opts.StepCache, Overload: c.Combo.Shed, Telemetry: col, HWProf: opts.HWProf})
		if err != nil {
			return fmt.Errorf("overload cell %s nodes=%d %s %s: %w",
				scfg.Name, c.Nodes, c.Router, c.Combo.Label, err)
		}
		// scfg.Name already carries the rate multiplier.
		label := fmt.Sprintf("%s-n%d-%s", scfg.Name, c.Nodes, c.Combo.Label)
		if col != nil {
			if err := opts.Trace.Export(label, col); err != nil {
				return fmt.Errorf("overload cell %s %s: %w", scfg.Name, c.Combo.Label, err)
			}
		}
		if m.HW != nil {
			if err := opts.writeHWReport(label, m.HW.Render()); err != nil {
				return fmt.Errorf("overload cell %s %s: hwprof-out: %w", scfg.Name, c.Combo.Label, err)
			}
		}
		results[i] = OverloadCellResult{Metrics: m, Goodput: m.Goodput(c.SLO)}
		if opts.Log != nil {
			logOverloadCell(opts, c, &results[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

var overloadLogMu sync.Mutex

func logOverloadCell(opts Options, c *OverloadCellSpec, r *OverloadCellResult) {
	overloadLogMu.Lock()
	defer overloadLogMu.Unlock()
	m := r.Metrics
	var preempts int64
	for _, nm := range m.PerNode {
		preempts += nm.Preemptions
	}
	fmt.Fprintf(opts.Log,
		"%-20s x%-5g %-18s goodput=%.4f tok/kcyc=%.4f met=%d/%d shed=%d fwd=%d dropped=%d preempts=%d pfx-rate=%.2f pfx-saved=%d\n",
		c.Config.Name, c.Rate, c.Combo.Label,
		r.Goodput.GoodputPerKCycle, m.FleetTokensPerKCycle,
		r.Goodput.MetSLO, m.Requests, m.Shed, m.Forwarded, m.Dropped, preempts,
		m.PrefixHitRate, m.PrefillTokensSaved)
}

// OverloadGridResult is one workload family evaluated across an
// arrival-rate × overload-combo matrix.
type OverloadGridResult struct {
	Config cluster.ScenarioConfig
	Rates  []float64
	Combos []OverloadCombo
	Nodes  int
	Router cluster.Policy
	Pol    Policy
	SLO    serving.SLO
	// Cells[i][j] is Rates[i] under Combos[j].
	Cells [][]OverloadCellResult
}

// OverloadGrid sweeps arrival rate × overload-control combo for one
// fleet workload family and collects fleet metrics plus goodput in
// matrix order — the goodput-vs-load curves of the overload study.
// Deterministic at any Options.Parallel.
func OverloadGrid(cfg cluster.ScenarioConfig, rates []float64, combos []OverloadCombo,
	nodes int, router cluster.Policy, pol Policy, slo serving.SLO, opts Options) (*OverloadGridResult, error) {
	if len(rates) == 0 || len(combos) == 0 {
		return nil, fmt.Errorf("overload grid: empty rate or combo list")
	}
	cells := make([]OverloadCellSpec, 0, len(rates)*len(combos))
	for _, rate := range rates {
		for _, combo := range combos {
			cells = append(cells, OverloadCellSpec{
				Config: cfg, Rate: rate, Nodes: nodes, Router: router,
				Combo: combo, Pol: pol, SLO: slo,
			})
		}
	}
	results, err := RunOverloadCells(cells, opts)
	if err != nil {
		return nil, err
	}
	out := &OverloadGridResult{
		Config: cfg, Rates: rates, Combos: combos,
		Nodes: nodes, Router: router, Pol: pol, SLO: slo,
	}
	out.Cells = make([][]OverloadCellResult, len(rates))
	for i := range rates {
		out.Cells[i] = results[i*len(combos) : (i+1)*len(combos)]
	}
	return out, nil
}

// Render formats the grid as an aligned per-cell table of the
// goodput-vs-load curves.
func (g *OverloadGridResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: %d requests, %d nodes, router %s, cache policy %s, SLO ttft<=%d tbt<=%.0f\n\n",
		g.Config.Name, g.Config.NumRequests, g.Nodes, g.Router, g.Pol.Label,
		g.SLO.TTFTCycles, g.SLO.TBTCycles)
	fmt.Fprintf(&b, "%-6s %-18s %12s %12s %8s %8s %8s %8s %10s\n",
		"rate", "combo", "goodput", "tok/kcycle", "met-slo", "dropped", "shed", "preempt", "e2e-p99")
	for i, rate := range g.Rates {
		for j, combo := range g.Combos {
			r := g.Cells[i][j]
			m := r.Metrics
			var preempts int64
			for _, nm := range m.PerNode {
				preempts += nm.Preemptions
			}
			fmt.Fprintf(&b, "%-6g %-18s %12.4f %12.4f %8d %8d %8d %8d %10.0f\n",
				rate, combo.Label, r.Goodput.GoodputPerKCycle, m.FleetTokensPerKCycle,
				r.Goodput.MetSLO, m.Dropped, m.Shed, preempts, m.E2ELatency.P99)
		}
	}
	return b.String()
}
