// The prefill-scheduler grid: one serving scenario run across a
// scheduler × cache-policy matrix — decode-only vs prefill-first vs
// chunked at a sweep of chunk sizes — the harness that answers the
// chunked-prefill question (how chunk size trades time-to-first-token
// against decode interference) on the paper's simulated hardware.
// Cells are independent and deterministic, so the grid fans out across
// the shared bounded worker pool with results in stable matrix order.

package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/pool"
	"repro/internal/serving"
	"repro/internal/sim"
)

// SchedCellSpec names one scheduler-grid simulation: a scenario under
// a scheduler configuration and a cache policy, optionally with a
// per-cell base configuration override. The cell runs the scenario
// with its Sched field replaced by Sched — the same population under
// different co-scheduling disciplines.
type SchedCellSpec struct {
	Scenario serving.Scenario
	Sched    serving.SchedulerConfig
	Pol      Policy
	// Base optionally overrides the grid's base configuration for
	// this cell (hardware sweeps under prefill load).
	Base *sim.Config
}

// SchedLabel names one scheduler configuration the way the grid
// renders it: "decode-only", "prefill-first", "chunked/32", with a
// "/kv<N>" suffix when KV capacity is bounded.
func SchedLabel(s serving.SchedulerConfig) string {
	label := s.Policy.String()
	if s.Policy == serving.SchedChunked {
		label = fmt.Sprintf("chunked/%d", s.ChunkTokens)
	}
	if s.KVCapTokens > 0 {
		label += fmt.Sprintf("/kv%d", s.KVCapTokens)
	}
	return label
}

// ChunkSweep builds the stock scheduler list of a chunk-size sweep:
// decode-only (the prefilled-elsewhere baseline), prefill-first (the
// monolithic schedule), and one chunked configuration per chunk size,
// all under the same KV capacity (0 = unlimited).
func ChunkSweep(chunks []int, kvcap int64) []serving.SchedulerConfig {
	out := []serving.SchedulerConfig{
		{Policy: serving.SchedDecodeOnly, KVCapTokens: kvcap},
		{Policy: serving.SchedPrefillFirst, KVCapTokens: kvcap},
	}
	for _, c := range chunks {
		out = append(out, serving.SchedulerConfig{
			Policy: serving.SchedChunked, ChunkTokens: c, KVCapTokens: kvcap,
		})
	}
	return out
}

// RunSchedCells executes every scheduler cell across the bounded
// worker pool (Options.Parallel wide) and returns the metrics in
// input order. Options.Scale divides the L2 size exactly like the
// figure and serving harnesses.
func RunSchedCells(cells []SchedCellSpec, opts Options) ([]*serving.Metrics, error) {
	results := make([]*serving.Metrics, len(cells))
	err := pool.ForEach(len(cells), opts.parallel(), func(i int) error {
		c := &cells[i]
		cfg := opts.base()
		if c.Base != nil {
			cfg = *c.Base
		}
		cfg.L2SizeBytes /= opts.scale()
		cfg.Throttle = c.Pol.Throttle
		cfg.Arbiter = c.Pol.Arbiter
		scn := c.Scenario
		scn.Sched = c.Sched
		m, err := serving.RunWith(cfg, scn, serving.RunOptions{StepCache: opts.StepCache})
		if err != nil {
			return fmt.Errorf("sched cell %s %s %s: %w", scn.Name, SchedLabel(c.Sched), c.Pol.Label, err)
		}
		if opts.Log != nil {
			logSchedCell(opts, c, m)
		}
		results[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

var schedLogMu sync.Mutex

func logSchedCell(opts Options, c *SchedCellSpec, m *serving.Metrics) {
	schedLogMu.Lock()
	defer schedLogMu.Unlock()
	fmt.Fprintf(opts.Log,
		"%-20s %-18s %-12s tokens=%-5d prefill=%-5d makespan=%-10d tok/kcyc=%.4f ttft-p50=%.0f ttft-p99=%.0f memo=%d/%d\n",
		c.Scenario.Name, SchedLabel(c.Sched), c.Pol.Label, m.Tokens, m.PrefillTokens,
		m.Makespan, m.TokensPerKCycle, m.TTFT.P50, m.TTFT.P99,
		m.StepCache.MemoHits, m.StepCache.MemoHits+m.StepCache.MemoMisses)
}

// SchedGridResult is one scenario evaluated across a scheduler ×
// cache-policy matrix.
type SchedGridResult struct {
	Scenario serving.Scenario
	Scheds   []serving.SchedulerConfig
	Policies []Policy
	// Metrics[i][j] is Scheds[i] under Policies[j].
	Metrics [][]*serving.Metrics
}

// SchedGrid runs one serving scenario across every (scheduler, cache
// policy) cell of the matrix and collects the serving metrics in
// matrix order. The scenario's own Sched field is ignored — each cell
// substitutes its row's scheduler. Deterministic at any
// Options.Parallel; Options.Scale divides the L2 size.
func SchedGrid(scn serving.Scenario, scheds []serving.SchedulerConfig, policies []Policy, opts Options) (*SchedGridResult, error) {
	if len(scheds) == 0 || len(policies) == 0 {
		return nil, fmt.Errorf("sched grid: empty scheduler or policy list")
	}
	cells := make([]SchedCellSpec, 0, len(scheds)*len(policies))
	for _, s := range scheds {
		for _, p := range policies {
			cells = append(cells, SchedCellSpec{Scenario: scn, Sched: s, Pol: p})
		}
	}
	metrics, err := RunSchedCells(cells, opts)
	if err != nil {
		return nil, err
	}
	out := &SchedGridResult{Scenario: scn, Scheds: scheds, Policies: policies}
	out.Metrics = make([][]*serving.Metrics, len(scheds))
	for i := range scheds {
		out.Metrics[i] = metrics[i*len(policies) : (i+1)*len(policies)]
	}
	return out, nil
}

// Render formats the grid as an aligned per-cell table of the headline
// serving metrics, TTFT percentiles included.
func (g *SchedGridResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d requests, %d tokens, batch %d\n\n",
		g.Scenario.Name, len(g.Scenario.Requests), g.Scenario.TotalTokens(), g.Scenario.MaxBatch)
	fmt.Fprintf(&b, "%-18s %-14s %12s %10s %10s %10s %10s %10s %10s\n",
		"scheduler", "policy", "tok/kcycle", "makespan", "ttft-p50", "ttft-p95", "ttft-p99", "lat-p99", "queue-p99")
	for i, s := range g.Scheds {
		for j, p := range g.Policies {
			m := g.Metrics[i][j]
			fmt.Fprintf(&b, "%-18s %-14s %12.4f %10d %10.0f %10.0f %10.0f %10.0f %10.0f\n",
				SchedLabel(s), p.Label, m.TokensPerKCycle, m.Makespan,
				m.TTFT.P50, m.TTFT.P95, m.TTFT.P99,
				m.TokenLatency.P99, m.QueueDelay.P99)
		}
	}
	return b.String()
}
