// The fault grid: availability-vs-recovery curves for the
// fault-tolerance study. One fleet workload is run under a matrix of
// generated failure regimes — MTBF × MTTR, each cell's crash schedule
// drawn deterministically from a fixed seed — and each regime is
// evaluated twice: recovering in-flight requests by redispatch versus
// dropping them with their node. Goodput-under-SLO per cell is the
// headline: as failures grow more frequent (MTBF down) or longer
// (MTTR up), the grid shows how much of the lost service each
// recovery policy buys back.

package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/pool"
	"repro/internal/serving"
	"repro/internal/sim"
)

// FaultCellSpec names one fault simulation: the fleet workload, a
// fully-specified fault configuration and the SLO goodput is judged
// against.
type FaultCellSpec struct {
	Config cluster.ScenarioConfig
	Nodes  int
	Router cluster.Policy
	Faults cluster.FaultConfig
	// Pol is the cache-level (throttle, arbiter) policy every node
	// runs.
	Pol Policy
	// SLO is the per-request deadline pair goodput is measured under.
	SLO serving.SLO
	// Base optionally overrides the grid's base configuration.
	Base *sim.Config
}

// FaultCellResult is one cell's outcome: the full fleet metrics plus
// the goodput-under-SLO report.
type FaultCellResult struct {
	Metrics *cluster.Metrics
	Goodput serving.SLOReport
}

// RunFaultCells executes every fault cell across the bounded worker
// pool and returns results in input order. The parallelism split and
// determinism guarantees match RunClusterCells: cells fan out on the
// outer pool, node engines inside each cell, and results are
// bit-identical at any Options.Parallel.
func RunFaultCells(cells []FaultCellSpec, opts Options) ([]FaultCellResult, error) {
	outer := opts.parallel()
	if outer > len(cells) {
		outer = len(cells)
	}
	inner := 1
	if outer > 0 && opts.parallel()/outer > 1 {
		inner = opts.parallel() / outer
	}
	results := make([]FaultCellResult, len(cells))
	err := pool.ForEach(len(cells), outer, func(i int) error {
		c := &cells[i]
		scn, err := cluster.NewScenario(c.Config)
		if err != nil {
			return fmt.Errorf("fault cell %s: %w", c.Config.Name, err)
		}
		cfg := opts.base()
		if c.Base != nil {
			cfg = *c.Base
		}
		cfg.L2SizeBytes /= opts.scale()
		cfg.Throttle = c.Pol.Throttle
		cfg.Arbiter = c.Pol.Arbiter
		col := opts.Trace.Collector()
		m, err := cluster.Run(cfg, scn, c.Nodes, c.Router,
			cluster.Options{Parallel: inner, StepCache: opts.StepCache, Faults: c.Faults, Telemetry: col, HWProf: opts.HWProf})
		if err != nil {
			return fmt.Errorf("fault cell %s nodes=%d %s [%s]: %w",
				c.Config.Name, c.Nodes, c.Router, c.Faults, err)
		}
		label := fmt.Sprintf("%s-n%d-%s", c.Config.Name, c.Nodes, recoveryLabel(c.Faults))
		if col != nil {
			if err := opts.Trace.Export(label, col); err != nil {
				return fmt.Errorf("fault cell %s: %w", c.Config.Name, err)
			}
		}
		if m.HW != nil {
			if err := opts.writeHWReport(label, m.HW.Render()); err != nil {
				return fmt.Errorf("fault cell %s: hwprof-out: %w", c.Config.Name, err)
			}
		}
		results[i] = FaultCellResult{Metrics: m, Goodput: m.Goodput(c.SLO)}
		if opts.Log != nil {
			logFaultCell(opts, c, &results[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

func recoveryLabel(f cluster.FaultConfig) string {
	if f.Drop {
		return "drop"
	}
	return "redispatch"
}

var faultLogMu sync.Mutex

func logFaultCell(opts Options, c *FaultCellSpec, r *FaultCellResult) {
	faultLogMu.Lock()
	defer faultLogMu.Unlock()
	m := r.Metrics
	fmt.Fprintf(opts.Log,
		"%-20s %-10s goodput=%.4f met=%d/%d failures=%d redisp=%d dropped=%d lost=%d downtime=%d\n",
		c.Config.Name, recoveryLabel(c.Faults),
		r.Goodput.GoodputPerKCycle, r.Goodput.MetSLO, m.Requests,
		m.Failures, m.Redispatched, m.Dropped, m.LostTokens, m.DowntimeCycles)
}

// FaultGridCell is one failure regime evaluated under both recovery
// policies.
type FaultGridCell struct {
	Redispatch FaultCellResult
	Drop       FaultCellResult
}

// FaultGridResult is one workload evaluated across an MTBF × MTTR
// matrix of generated failure regimes, each cell under both recovery
// policies.
type FaultGridResult struct {
	Config cluster.ScenarioConfig
	// MTBFs and MTTRs are the regime axes in cycles (mean time between
	// failures / mean time to repair of the generated schedules).
	MTBFs  []float64
	MTTRs  []float64
	Seed   uint64
	Count  int
	Detect int64
	Nodes  int
	Router cluster.Policy
	Pol    Policy
	SLO    serving.SLO
	// Cells[i][j] is MTBFs[i] × MTTRs[j].
	Cells [][]FaultGridCell
}

// FaultGrid sweeps MTBF × MTTR × recovery policy for one fleet
// workload: every regime's crash schedule is generated from the same
// seed (so the drop and redispatch runs of a cell face the identical
// failures), detection latency is held fixed, and goodput-under-SLO
// is collected per cell. Deterministic at any Options.Parallel.
func FaultGrid(cfg cluster.ScenarioConfig, mtbfs, mttrs []float64, seed uint64, count int, detect int64,
	nodes int, router cluster.Policy, pol Policy, slo serving.SLO, opts Options) (*FaultGridResult, error) {
	if len(mtbfs) == 0 || len(mttrs) == 0 {
		return nil, fmt.Errorf("fault grid: empty MTBF or MTTR list")
	}
	cells := make([]FaultCellSpec, 0, 2*len(mtbfs)*len(mttrs))
	for _, mtbf := range mtbfs {
		for _, mttr := range mttrs {
			for _, drop := range []bool{false, true} {
				ft := cluster.FaultConfig{
					Gen:           &cluster.FaultGen{Seed: seed, MTBF: mtbf, MTTR: mttr, Count: count},
					DetectLatency: detect,
					Drop:          drop,
				}
				if err := ft.Validate(); err != nil {
					return nil, fmt.Errorf("fault grid mtbf=%g mttr=%g: %w", mtbf, mttr, err)
				}
				scfg := cfg
				scfg.Name = fmt.Sprintf("%s/mtbf%g-mttr%g", cfg.Name, mtbf, mttr)
				cells = append(cells, FaultCellSpec{
					Config: scfg, Nodes: nodes, Router: router,
					Faults: ft, Pol: pol, SLO: slo, Base: opts.Base,
				})
			}
		}
	}
	results, err := RunFaultCells(cells, opts)
	if err != nil {
		return nil, err
	}
	out := &FaultGridResult{
		Config: cfg, MTBFs: mtbfs, MTTRs: mttrs, Seed: seed, Count: count, Detect: detect,
		Nodes: nodes, Router: router, Pol: pol, SLO: slo,
	}
	out.Cells = make([][]FaultGridCell, len(mtbfs))
	for i := range mtbfs {
		out.Cells[i] = make([]FaultGridCell, len(mttrs))
		for j := range mttrs {
			k := 2 * (i*len(mttrs) + j)
			out.Cells[i][j] = FaultGridCell{Redispatch: results[k], Drop: results[k+1]}
		}
	}
	return out, nil
}

// Render formats the grid as an aligned per-regime table comparing
// both recovery policies' goodput.
func (g *FaultGridResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: %d requests, %d nodes, router %s, cache policy %s, gen seed %d count %d detect %d, SLO ttft<=%d tbt<=%.0f\n\n",
		g.Config.Name, g.Config.NumRequests, g.Nodes, g.Router, g.Pol.Label,
		g.Seed, g.Count, g.Detect, g.SLO.TTFTCycles, g.SLO.TBTCycles)
	fmt.Fprintf(&b, "%-10s %-10s %8s %12s %12s %8s %8s %8s %10s\n",
		"mtbf", "mttr", "failures", "redispatch", "drop", "redisp", "dropped", "lost", "downtime")
	for i, mtbf := range g.MTBFs {
		for j, mttr := range g.MTTRs {
			c := g.Cells[i][j]
			re, dr := c.Redispatch.Metrics, c.Drop.Metrics
			fmt.Fprintf(&b, "%-10g %-10g %8d %12.4f %12.4f %8d %8d %8d %10d\n",
				mtbf, mttr, re.Failures,
				c.Redispatch.Goodput.GoodputPerKCycle, c.Drop.Goodput.GoodputPerKCycle,
				re.Redispatched, dr.Dropped, dr.LostTokens, re.DowntimeCycles)
		}
	}
	return b.String()
}
