// The prefix grid: TTFT-vs-router curves for the session prefix-cache
// study. One fleet workload family is regenerated at a sweep of
// session locality (how many distinct conversations share the request
// population) × per-node prefix-cache capacity, and each workload is
// run under every router under test. Affinity routers keep a session
// on the node that retains its prefix, so follow-up turns skip most of
// their prefill; load-balancing routers migrate sessions and re-prefill
// their whole context. The grid quantifies that trade as TTFT
// percentiles against prefix-hit statistics.

package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/pool"
	"repro/internal/sim"
)

// PrefixCellSpec names one prefix-study simulation: the base fleet
// workload generator configuration with the session count and per-node
// prefix-cache capacity overridden, a fleet shape, and a router.
type PrefixCellSpec struct {
	// Config is the base fleet workload generator configuration. The
	// cell regenerates the scenario with NumSessions = Sessions and
	// Sched.PrefixCacheTokens = CacheTokens, so the same seed explores
	// the same request population at every locality/capacity point. Its
	// Sched must already run a prefill scheduler when any cell enables
	// the cache.
	Config cluster.ScenarioConfig
	// Sessions is the number of distinct sessions the population is
	// drawn from (0 keeps the base config's session structure).
	Sessions int
	// CacheTokens is the per-node prefix-cache capacity in KV tokens
	// (0 = cache off, the bit-identical baseline path).
	CacheTokens int64
	Nodes       int
	Router      cluster.Policy
	// Pol is the cache-level (throttle, arbiter) policy every node runs.
	Pol Policy
	// Base optionally overrides the grid's base configuration.
	Base *sim.Config
}

// PrefixCellResult is one cell's outcome: the full fleet metrics (the
// TTFT distribution and the fleet prefix-cache counters are the
// headline columns).
type PrefixCellResult struct {
	Metrics *cluster.Metrics
}

// RunPrefixCells executes every prefix cell across the bounded worker
// pool and returns results in input order. The parallelism split and
// determinism guarantees match RunClusterCells: cells fan out on the
// outer pool, node engines inside each cell, and results are
// bit-identical at any Options.Parallel.
func RunPrefixCells(cells []PrefixCellSpec, opts Options) ([]PrefixCellResult, error) {
	outer := opts.parallel()
	if outer > len(cells) {
		outer = len(cells)
	}
	inner := 1
	if outer > 0 && opts.parallel()/outer > 1 {
		inner = opts.parallel() / outer
	}
	results := make([]PrefixCellResult, len(cells))
	err := pool.ForEach(len(cells), outer, func(i int) error {
		c := &cells[i]
		scfg := c.Config
		if c.Sessions > 0 {
			scfg.NumSessions = c.Sessions
			scfg.ScenarioConfig.NumSessions = 0 // the cluster layer forwards it
		}
		scfg.Sched.PrefixCacheTokens = c.CacheTokens
		scfg.Name = fmt.Sprintf("%s/s%d-c%d", c.Config.Name, scfg.NumSessions, c.CacheTokens)
		scn, err := cluster.NewScenario(scfg)
		if err != nil {
			return fmt.Errorf("prefix cell %s: %w", scfg.Name, err)
		}
		cfg := opts.base()
		if c.Base != nil {
			cfg = *c.Base
		}
		cfg.L2SizeBytes /= opts.scale()
		cfg.Throttle = c.Pol.Throttle
		cfg.Arbiter = c.Pol.Arbiter
		col := opts.Trace.Collector()
		m, err := cluster.Run(cfg, scn, c.Nodes, c.Router,
			cluster.Options{Parallel: inner, StepCache: opts.StepCache, Telemetry: col, HWProf: opts.HWProf})
		if err != nil {
			return fmt.Errorf("prefix cell %s nodes=%d %s: %w", scfg.Name, c.Nodes, c.Router, err)
		}
		// scfg.Name already carries the session/cache point.
		label := fmt.Sprintf("%s-n%d-%s", scfg.Name, c.Nodes, c.Router)
		if col != nil {
			if err := opts.Trace.Export(label, col); err != nil {
				return fmt.Errorf("prefix cell %s %s: %w", scfg.Name, c.Router, err)
			}
		}
		if m.HW != nil {
			if err := opts.writeHWReport(label, m.HW.Render()); err != nil {
				return fmt.Errorf("prefix cell %s %s: hwprof-out: %w", scfg.Name, c.Router, err)
			}
		}
		results[i] = PrefixCellResult{Metrics: m}
		if opts.Log != nil {
			logPrefixCell(opts, c, &results[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

var prefixLogMu sync.Mutex

func logPrefixCell(opts Options, c *PrefixCellSpec, r *PrefixCellResult) {
	prefixLogMu.Lock()
	defer prefixLogMu.Unlock()
	m := r.Metrics
	fmt.Fprintf(opts.Log,
		"%-20s s=%-3d cache=%-8d %-18s ttft-p50=%-9.0f ttft-p95=%-9.0f hits=%-4d rate=%.2f saved=%d\n",
		c.Config.Name, c.Sessions, c.CacheTokens, c.Router, m.TTFT.P50, m.TTFT.P95,
		m.PrefixHits, m.PrefixHitRate, m.PrefillTokensSaved)
}

// PrefixGridResult is one workload family evaluated across a session
// locality × cache capacity × router matrix.
type PrefixGridResult struct {
	Config   cluster.ScenarioConfig
	Sessions []int
	Caches   []int64
	Routers  []cluster.Policy
	Nodes    int
	Pol      Policy
	// Cells[i][j][k] is Sessions[i] × Caches[j] under Routers[k].
	Cells [][][]PrefixCellResult
}

// PrefixGrid sweeps session locality × prefix-cache capacity × router
// for one fleet workload family and collects fleet metrics in matrix
// order — the TTFT-vs-router curves of the prefix-reuse study.
// Deterministic at any Options.Parallel.
func PrefixGrid(cfg cluster.ScenarioConfig, sessions []int, caches []int64,
	routers []cluster.Policy, nodes int, pol Policy, opts Options) (*PrefixGridResult, error) {
	if len(sessions) == 0 || len(caches) == 0 || len(routers) == 0 {
		return nil, fmt.Errorf("prefix grid: empty session, cache or router list")
	}
	cells := make([]PrefixCellSpec, 0, len(sessions)*len(caches)*len(routers))
	for _, s := range sessions {
		for _, c := range caches {
			for _, rt := range routers {
				cells = append(cells, PrefixCellSpec{
					Config: cfg, Sessions: s, CacheTokens: c,
					Nodes: nodes, Router: rt, Pol: pol,
				})
			}
		}
	}
	results, err := RunPrefixCells(cells, opts)
	if err != nil {
		return nil, err
	}
	out := &PrefixGridResult{
		Config: cfg, Sessions: sessions, Caches: caches, Routers: routers,
		Nodes: nodes, Pol: pol,
	}
	out.Cells = make([][][]PrefixCellResult, len(sessions))
	for i := range sessions {
		out.Cells[i] = make([][]PrefixCellResult, len(caches))
		for j := range caches {
			base := (i*len(caches) + j) * len(routers)
			out.Cells[i][j] = results[base : base+len(routers)]
		}
	}
	return out, nil
}

// Render formats the grid as an aligned per-cell table of the
// TTFT-vs-router curves.
func (g *PrefixGridResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: %d requests, depth-%d sessions, %d nodes, cache policy %s\n\n",
		g.Config.Name, g.Config.NumRequests, g.Config.SessionDepth, g.Nodes, g.Pol.Label)
	fmt.Fprintf(&b, "%-9s %-10s %-18s %10s %10s %10s %6s %6s %8s %12s\n",
		"sessions", "cache", "router", "ttft-p50", "ttft-p95", "e2e-p95", "hits", "rate", "saved", "tok/kcycle")
	for i, s := range g.Sessions {
		for j, c := range g.Caches {
			for k, rt := range g.Routers {
				m := g.Cells[i][j][k].Metrics
				fmt.Fprintf(&b, "%-9d %-10d %-18s %10.0f %10.0f %10.0f %6d %6.2f %8d %12.4f\n",
					s, c, rt, m.TTFT.P50, m.TTFT.P95, m.E2ELatency.P95,
					m.PrefixHits, m.PrefixHitRate, m.PrefillTokensSaved, m.FleetTokensPerKCycle)
			}
		}
	}
	return b.String()
}
