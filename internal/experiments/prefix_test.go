package experiments

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/workload"
)

func prefixGridConfig() cluster.ScenarioConfig {
	return cluster.ScenarioConfig{
		ScenarioConfig: serving.ScenarioConfig{
			Name: "prefix/grid", Seed: 13, NumRequests: 8,
			Models:       []workload.ModelConfig{workload.Llama3_70B},
			MinPromptLen: 16, MaxPromptLen: 48,
			MinDecode: 2, MaxDecode: 4,
			MeanInterArrival: 60000, MaxBatch: 2,
			SessionDepth: 3,
			Sched:        serving.SchedulerConfig{Policy: serving.SchedChunked, ChunkTokens: 16},
		},
	}
}

// TestPrefixGridParallelDeterminism: the sessions × cache × router
// matrix returns bit-identical cells at worker widths 1 and
// GOMAXPROCS — the TTFT-vs-router curves cannot depend on -parallel.
// Plus shape/sanity checks: cache-off cells report zero prefix
// activity, cache-on affinity cells actually hit, and the rendered
// table names every router.
func TestPrefixGridParallelDeterminism(t *testing.T) {
	base := sim.DefaultConfig()
	base.L2SizeBytes = 1 << 20
	sessions := []int{2, 4}
	caches := []int64{0, 4096}
	routers := []cluster.Policy{{Kind: cluster.SessionAffinity}, {Kind: cluster.PrefixAffinity}}

	run := func(par int) *PrefixGridResult {
		g, err := PrefixGrid(prefixGridConfig(), sessions, caches, routers, 2, DynMGBMA,
			Options{Base: &base, Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		for _, plane := range g.Cells {
			for _, row := range plane {
				for i := range row {
					row[i].Metrics.StripStepCache()
				}
			}
		}
		return g
	}
	serial := run(1)
	parallel := run(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Fatal("prefix grid results depend on worker count")
	}

	sawHit := false
	for i, s := range sessions {
		for j, c := range caches {
			for k, rt := range routers {
				m := serial.Cells[i][j][k].Metrics
				if m.Requests != 8 {
					t.Fatalf("cell s%d/c%d/%s served %d requests", s, c, rt, m.Requests)
				}
				if c == 0 && (m.PrefixHits != 0 || m.PrefixMisses != 0 || m.PrefillTokensSaved != 0) {
					t.Fatalf("cache-off cell s%d/%s reported prefix activity: %d/%d/%d",
						s, rt, m.PrefixHits, m.PrefixMisses, m.PrefillTokensSaved)
				}
				if c > 0 && m.PrefixHits > 0 {
					sawHit = true
				}
			}
		}
	}
	if !sawHit {
		t.Fatal("no cache-on cell hit the prefix cache — the grid exercises no reuse")
	}

	rendered := serial.Render()
	for _, rt := range routers {
		if !strings.Contains(rendered, rt.String()) {
			t.Fatalf("render omits router %s:\n%s", rt, rendered)
		}
	}
}
