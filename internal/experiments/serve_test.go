package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/serving"
	"repro/internal/sim"
)

func serveTestScenario(t *testing.T) serving.Scenario {
	t.Helper()
	scn, err := serving.NewScenario(serving.ScenarioConfig{
		Name: "grid/test", Seed: 5, NumRequests: 4,
		MinPromptLen: 16, MaxPromptLen: 32,
		MinDecode: 2, MaxDecode: 2,
		MeanInterArrival: 4000, MaxBatch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// TestServeGridParallelDeterminism: the serving grid returns
// bit-identical metrics in matrix order at any worker count —
// extending the PR 1 parallel-determinism guarantee to the serving
// scenario.
func TestServeGridParallelDeterminism(t *testing.T) {
	scn := serveTestScenario(t)
	base := sim.DefaultConfig()
	base.L2SizeBytes = 1 << 20
	policies := []Policy{Unopt, DynMG, DynMGBMA}

	serial, err := ServeGrid(scn, policies, Options{Base: &base, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ServeGrid(scn, policies, Options{Base: &base, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	// StepCache counters are diagnostics outside the bit-identity
	// contract (cells share the process-wide step memo).
	for _, m := range serial.Metrics {
		m.StripStepCache()
	}
	for _, m := range parallel.Metrics {
		m.StripStepCache()
	}
	if !reflect.DeepEqual(serial.Metrics, parallel.Metrics) {
		t.Fatal("serving grid results depend on worker count")
	}

	rendered := serial.Render()
	for _, p := range policies {
		if !strings.Contains(rendered, p.Label) {
			t.Fatalf("rendered grid missing policy %q:\n%s", p.Label, rendered)
		}
	}
}

// TestRunServeCellsBaseOverride: a per-cell base config override is
// honoured (hardware sweeps under serving load).
func TestRunServeCellsBaseOverride(t *testing.T) {
	scn := serveTestScenario(t)
	narrow := sim.DefaultConfig()
	narrow.NumCores = 2
	wide := sim.DefaultConfig()

	cells := []ServeCellSpec{
		{Scenario: scn, Pol: Unopt, Base: &narrow},
		{Scenario: scn, Pol: Unopt, Base: &wide},
	}
	res, err := RunServeCells(cells, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Makespan <= res[1].Makespan {
		t.Fatalf("2-core serving makespan %d not above the 16-core %d",
			res[0].Makespan, res[1].Makespan)
	}
}
