// Package experiments reproduces every table and figure of the
// paper's evaluation (Section 6): the Fig. 7 throttling/arbitration/
// cumulative speedup panels, the Fig. 8 mechanism breakdown, the
// Fig. 9 cache-size sensitivity study, and the Section 6.1 hardware
// cost table. Each experiment renders the same rows/series the paper
// plots, normalised the same way.
//
// Experiments accept a Scale: sequence lengths and cache sizes are
// divided by it, preserving every working-set-to-cache ratio of the
// paper while shrinking simulation time. Scale 1 is paper scale.
package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"

	"repro/internal/arbiter"
	"repro/internal/dataflow"
	"repro/internal/hwcost"
	"repro/internal/hwprof"
	"repro/internal/memtrace"
	"repro/internal/pool"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Options controls experiment execution.
type Options struct {
	// Scale divides the paper's sequence lengths and cache sizes.
	// 1 = paper scale; 8 keeps every WS/cache ratio with ~8x less
	// work; benches use larger scales still.
	Scale int
	// Log, when non-nil, receives one progress line per run.
	Log io.Writer
	// Base overrides the base system configuration (defaults to
	// sim.DefaultConfig / Table 5).
	Base *sim.Config
	// Parallel bounds how many independent simulations the figure
	// harnesses run concurrently (0 = GOMAXPROCS). Every Engine run is
	// single-threaded and deterministic, and results are collected in
	// matrix order, so the output is bit-identical at any setting.
	Parallel int
	// StepCache selects the serving/cluster token-step path for the
	// serving and cluster grids (default on). All cells of a grid share
	// the process-wide step memo, so overlapping cells — the same fleet
	// scenario across router policies or node counts — reuse each
	// other's simulated steps. Simulated metrics are bit-identical at
	// any setting.
	StepCache serving.StepCacheMode
	// Trace configures telemetry recording for the serving and cluster
	// grids: each cell runs with its own collector and writes its own
	// artifact files, `%` placeholders in the Spec paths expanded to
	// the cell's label. nil (or a Spec with no output paths) disables
	// recording — the cells run on the exact bit-inert unrecorded
	// paths. The single-operator figure harnesses (RunCells) have no
	// request lifecycle and ignore it.
	Trace *telemetry.Spec
	// HWProf configures hardware-counter attribution for the serving
	// and cluster grids (see internal/hwprof): every cell's engines
	// capture per-step counter deltas, the cell metrics carry the
	// profiles, and the grid tables report each cell's bottleneck
	// class. The zero value disables it (bit-inert). The
	// single-operator figure harnesses ignore it, like Trace.
	HWProf hwprof.Spec
	// HWProfOut, when non-empty, writes each cell's rendered
	// ProfileReport to this path, `%` placeholders expanded to the
	// cell label exactly like the Trace paths. Ignored unless
	// HWProf.Enabled.
	HWProfOut string
}

// writeHWReport writes one cell's rendered profile report to the
// HWProfOut path (no-op when unset).
func (o Options) writeHWReport(label, report string) error {
	if o.HWProfOut == "" {
		return nil
	}
	return os.WriteFile(telemetry.CellPath(o.HWProfOut, label), []byte(report), 0o644)
}

func (o Options) scale() int {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

func (o Options) base() sim.Config {
	if o.Base != nil {
		return *o.Base
	}
	return sim.DefaultConfig()
}

func (o Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// Policy is one (throttle, arbiter) cell of the evaluation matrix.
type Policy struct {
	Label    string
	Throttle string
	Arbiter  arbiter.Kind
}

// The paper's policy set.
var (
	Unopt       = Policy{Label: "unopt", Throttle: "none", Arbiter: arbiter.FCFS}
	Dyncta      = Policy{Label: "dyncta", Throttle: "dyncta", Arbiter: arbiter.FCFS}
	LCS         = Policy{Label: "lcs", Throttle: "lcs", Arbiter: arbiter.FCFS}
	DynMG       = Policy{Label: "dynmg", Throttle: "dynmg", Arbiter: arbiter.FCFS}
	Cobrra      = Policy{Label: "cobrra", Throttle: "none", Arbiter: arbiter.COBRRA}
	DynMGCobrra = Policy{Label: "dynmg+cobrra", Throttle: "dynmg", Arbiter: arbiter.COBRRA}
	DynMGB      = Policy{Label: "dynmg+B", Throttle: "dynmg", Arbiter: arbiter.Balanced}
	DynMGMA     = Policy{Label: "dynmg+MA", Throttle: "dynmg", Arbiter: arbiter.MA}
	DynMGBMA    = Policy{Label: "dynmg+BMA", Throttle: "dynmg", Arbiter: arbiter.BMA}
)

// Runner executes simulation cells with trace caching (a trace
// depends only on the operator shape, not on the policy). Runners are
// safe for the concurrent use RunCells makes of them: the trace cache
// and the progress log are mutex-guarded, and generated traces are
// read-only while simulations run.
type Runner struct {
	opts   Options
	mu     sync.Mutex
	traces map[string]*memtrace.Trace
}

// NewRunner builds a Runner.
func NewRunner(opts Options) *Runner {
	return &Runner{opts: opts, traces: make(map[string]*memtrace.Trace)}
}

// Trace returns (building on first use) the trace for an operator.
func (r *Runner) Trace(op workload.LogitOp) (*memtrace.Trace, error) {
	key := op.Name()
	r.mu.Lock()
	defer r.mu.Unlock()
	if tr, ok := r.traces[key]; ok {
		return tr, nil
	}
	amap, err := workload.NewAddressMap(op, 0)
	if err != nil {
		return nil, err
	}
	mapping, _, err := dataflow.FindMapping(op, 64)
	if err != nil {
		return nil, err
	}
	tr, err := dataflow.Generate(op, amap, mapping, 64)
	if err != nil {
		return nil, err
	}
	r.traces[key] = tr
	return tr, nil
}

// CellSpec names one simulation of an evaluation matrix.
type CellSpec struct {
	Op      workload.LogitOp
	Pol     Policy
	L2Bytes int // 0 = the base configuration's size
	// Base optionally overrides the Runner's base configuration for
	// this cell (parameter sweeps).
	Base *sim.Config
}

// RunCells executes every cell across a bounded worker pool
// (Options.Parallel wide) and returns the results in input order.
// Traces are generated once per distinct operator before the fan-out,
// then shared read-only across workers.
func (r *Runner) RunCells(cells []CellSpec) ([]sim.Result, error) {
	for i := range cells {
		if _, err := r.Trace(cells[i].Op); err != nil {
			return nil, err
		}
	}
	results := make([]sim.Result, len(cells))
	err := pool.ForEach(len(cells), r.opts.parallel(), func(i int) error {
		res, err := r.runCell(&cells[i])
		if err != nil {
			c := &cells[i]
			return fmt.Errorf("cell %s %s L2=%d: %w", c.Op.Name(), c.Pol.Label, c.L2Bytes, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

func (r *Runner) runCell(c *CellSpec) (sim.Result, error) {
	tr, err := r.Trace(c.Op)
	if err != nil {
		return sim.Result{}, err
	}
	cfg := r.opts.base()
	if c.Base != nil {
		cfg = *c.Base
	}
	cfg.Throttle = c.Pol.Throttle
	cfg.Arbiter = c.Pol.Arbiter
	if c.L2Bytes > 0 {
		cfg.L2SizeBytes = c.L2Bytes
	}
	eng, err := sim.New(cfg, tr, c.Op.Model.G)
	if err != nil {
		return sim.Result{}, err
	}
	res, err := eng.Run()
	if err != nil {
		return sim.Result{}, err
	}
	r.logCell(c.Op, c.Pol, cfg.L2SizeBytes, res)
	return res, nil
}

func (r *Runner) logCell(op workload.LogitOp, pol Policy, l2 int, res sim.Result) {
	if r.opts.Log == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(r.opts.Log, "%-14s %-12s L2=%-8d cycles=%-10d L2hit=%.3f mshrHit=%.3f util=%.3f tcs=%.3f bw=%.1fGB/s\n",
		op.Name(), pol.Label, l2, res.Cycles,
		res.Metrics.L2HitRate, res.Metrics.MSHRHitRate, res.Metrics.MSHREntryUtil,
		res.Metrics.CacheStallFrac, res.Metrics.DRAMBandwidthGB)
}

// Cell runs one (operator, policy, cache size) simulation.
func (r *Runner) Cell(op workload.LogitOp, pol Policy, l2Bytes int) (sim.Result, error) {
	return r.runCell(&CellSpec{Op: op, Pol: pol, L2Bytes: l2Bytes})
}

// seqLabel renders a sequence length the way the paper labels its x
// axes ("4K", "8K", ...), annotated with the scale when scaled.
func seqLabel(seq int) string {
	if seq%1024 == 0 {
		return fmt.Sprintf("%dK", seq/1024)
	}
	return fmt.Sprintf("%d", seq)
}

// Fig7Result holds the three panels of Fig. 7 for one model:
// throttling speedups vs unoptimized, arbitration speedups vs dynmg,
// and cumulative speedups vs unoptimized.
type Fig7Result struct {
	Model       workload.ModelConfig
	SeqLens     []int
	Throttling  []stats.Series // dyncta, lcs, dynmg          (vs unopt)
	Arbitration []stats.Series // cobrra, B, MA, BMA + dynmg  (vs dynmg)
	Cumulative  []stats.Series // dynmg, +B, +MA, +BMA        (vs unopt)
}

// RunFig7 reproduces Fig. 7(a–c) for Llama3-70B or (d–f) for
// Llama3-405B: sequence lengths {4K, 8K, 16K}/Scale on the Table 5
// system.
func RunFig7(model workload.ModelConfig, opts Options) (*Fig7Result, error) {
	s := opts.scale()
	seqs := []int{4096 / s, 8192 / s, 16384 / s}
	cfgBase := opts.base()
	cfgBase.L2SizeBytes /= s
	opts.Base = &cfgBase

	r := NewRunner(opts)
	out := &Fig7Result{Model: model, SeqLens: seqs}

	policies := []Policy{Unopt, Dyncta, LCS, DynMG, DynMGCobrra, DynMGB, DynMGMA, DynMGBMA}
	var cells []CellSpec
	for _, seq := range seqs {
		op := workload.LogitOp{Model: model, SeqLen: seq}
		for _, p := range policies {
			cells = append(cells, CellSpec{Op: op, Pol: p})
		}
	}
	results, err := r.RunCells(cells)
	if err != nil {
		return nil, fmt.Errorf("fig7 %s: %w", model.Name, err)
	}
	cycles := make(map[string]map[int]int64) // label -> seq -> cycles
	for _, p := range policies {
		cycles[p.Label] = make(map[int]int64)
	}
	for i, c := range cells {
		cycles[c.Pol.Label][c.Op.SeqLen] = results[i].Cycles
	}

	series := func(label, base string) stats.Series {
		sr := stats.Series{Label: label}
		for _, seq := range seqs {
			sr.Points = append(sr.Points, stats.Point{
				X: seqLabel(seq * s),
				Y: stats.Speedup(cycles[base][seq], cycles[label][seq]),
			})
		}
		return sr
	}
	out.Throttling = []stats.Series{
		series("dyncta", "unopt"), series("lcs", "unopt"), series("dynmg", "unopt"),
	}
	out.Arbitration = []stats.Series{
		series("dynmg+cobrra", "dynmg"), series("dynmg+B", "dynmg"),
		series("dynmg+MA", "dynmg"), series("dynmg+BMA", "dynmg"),
	}
	out.Cumulative = []stats.Series{
		series("dynmg", "unopt"), series("dynmg+B", "unopt"),
		series("dynmg+MA", "unopt"), series("dynmg+BMA", "unopt"),
	}
	return out, nil
}

// Fig8Row is one policy's bar group in Fig. 8.
type Fig8Row struct {
	Policy        string
	RelPerf       float64 // performance normalised to unoptimized
	MSHREntryUtil float64
	L2HitRate     float64
	MSHRHitRate   float64
	DRAMBwGBs     float64
}

// RunFig8 reproduces the Fig. 8 mechanism comparison: Llama3-70B at
// 8K/Scale on the Table 5 system, all policies.
func RunFig8(opts Options) ([]Fig8Row, error) {
	s := opts.scale()
	cfgBase := opts.base()
	cfgBase.L2SizeBytes /= s
	opts.Base = &cfgBase
	r := NewRunner(opts)
	op := workload.LogitOp{Model: workload.Llama3_70B, SeqLen: 8192 / s}

	policies := []Policy{Unopt, Dyncta, LCS, DynMG, DynMGB, DynMGMA, DynMGBMA}
	cells := make([]CellSpec, len(policies))
	for i, p := range policies {
		cells[i] = CellSpec{Op: op, Pol: p}
	}
	results, err := r.RunCells(cells)
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	var rows []Fig8Row
	var unoptCycles int64
	for i, p := range policies {
		res := results[i]
		if p.Label == "unopt" {
			unoptCycles = res.Cycles
		}
		rows = append(rows, Fig8Row{
			Policy:        p.Label,
			RelPerf:       stats.Speedup(unoptCycles, res.Cycles),
			MSHREntryUtil: res.Metrics.MSHREntryUtil,
			L2HitRate:     res.Metrics.L2HitRate,
			MSHRHitRate:   res.Metrics.MSHRHitRate,
			DRAMBwGBs:     res.Metrics.DRAMBandwidthGB,
		})
	}
	return rows, nil
}

// RenderFig8 formats the Fig. 8 rows as an aligned table.
func RenderFig8(rows []Fig8Row) string {
	out := fmt.Sprintf("%-14s %10s %10s %10s %10s %12s\n",
		"policy", "perf", "mshr-util", "L2-hit", "mshr-hit", "dram-GB/s")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %10.3f %10.3f %10.3f %10.3f %12.2f\n",
			r.Policy, r.RelPerf, r.MSHREntryUtil, r.L2HitRate, r.MSHRHitRate, r.DRAMBwGBs)
	}
	return out
}

// Fig9Result holds one model's cache-size sensitivity panel.
type Fig9Result struct {
	Model      workload.ModelConfig
	SeqLen     int
	CacheSizes []int
	// Series are normalised against unoptimized at the middle (32 MB)
	// cache size, exactly like the paper.
	Series []stats.Series
}

// RunFig9 reproduces Fig. 9: a 32K/Scale sequence across L2 sizes
// {16, 32, 64} MB / Scale, all throttling and arbitration policies,
// normalised to unoptimized at 32 MB/Scale.
func RunFig9(model workload.ModelConfig, opts Options) (*Fig9Result, error) {
	s := opts.scale()
	seq := 32768 / s
	caches := []int{16 << 20 / s, 32 << 20 / s, 64 << 20 / s}
	r := NewRunner(opts)
	op := workload.LogitOp{Model: model, SeqLen: seq}

	policies := []Policy{Unopt, Dyncta, LCS, Cobrra, DynMG, DynMGCobrra, DynMGBMA}
	var cells []CellSpec
	for _, c := range caches {
		for _, p := range policies {
			cells = append(cells, CellSpec{Op: op, Pol: p, L2Bytes: c})
		}
	}
	results, err := r.RunCells(cells)
	if err != nil {
		return nil, fmt.Errorf("fig9 %s: %w", model.Name, err)
	}
	cycles := make(map[string]map[int]int64)
	for _, p := range policies {
		cycles[p.Label] = make(map[int]int64)
	}
	for i, c := range cells {
		cycles[c.Pol.Label][c.L2Bytes] = results[i].Cycles
	}
	base := cycles["unopt"][caches[1]] // unoptimized @ 32 MB/Scale
	out := &Fig9Result{Model: model, SeqLen: seq, CacheSizes: caches}
	for _, p := range policies {
		sr := stats.Series{Label: p.Label}
		for _, c := range caches {
			sr.Points = append(sr.Points, stats.Point{
				X: fmt.Sprintf("%dMB", c*s>>20),
				Y: stats.Speedup(base, cycles[p.Label][c]),
			})
		}
		out.Series = append(out.Series, sr)
	}
	return out, nil
}

// HWCostRow is one synthesized block of the Section 6.1 table.
type HWCostRow struct {
	Block    string
	AreaUm2  float64
	PaperUm2 float64
}

// RunHWCost evaluates the hardware cost model against the paper's
// synthesis results.
func RunHWCost() []HWCostRow {
	t := hwcost.FreePDK15()
	arb := hwcost.ArbiterArea(hwcost.DefaultArbiterParams(), t)
	hb := hwcost.HitBufferArea(hwcost.DefaultHitBufferParams(), t)
	return []HWCostRow{
		{Block: "arbiter (incl. request queue)", AreaUm2: arb.Total, PaperUm2: hwcost.PaperArbiterUm2},
		{Block: "hit buffer", AreaUm2: hb.Total, PaperUm2: hwcost.PaperHitBufferUm2},
	}
}

// RenderHWCost formats the hardware cost table.
func RenderHWCost(rows []HWCostRow) string {
	out := fmt.Sprintf("%-32s %14s %14s %8s\n", "block", "model µm²", "paper µm²", "delta")
	for _, r := range rows {
		delta := (r.AreaUm2 - r.PaperUm2) / r.PaperUm2 * 100
		out += fmt.Sprintf("%-32s %14.2f %14.2f %+7.1f%%\n", r.Block, r.AreaUm2, r.PaperUm2, delta)
	}
	return out
}

// IDs returns the known experiment identifiers in stable order.
func IDs() []string {
	ids := []string{"fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f", "fig8", "fig9a", "fig9b", "hwcost"}
	sort.Strings(ids)
	return ids
}
