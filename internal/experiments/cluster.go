// The cluster-scale grid: the routed multi-node fleet simulator run
// across a router-policy × node-count matrix, the way ServeGrid runs
// one scenario across the throttle/arbiter matrix. A cluster cell is
// one complete fleet simulation; cells are independent and
// deterministic, so the grid fans out across the shared bounded
// worker pool with results in stable matrix order — and each cell's
// own node fan-out is bit-reproducible at any width, so nesting the
// two levels of parallelism never changes a number.

package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/pool"
	"repro/internal/sim"
)

// ClusterCellSpec names one fleet simulation: a scenario on a node
// count under a router policy and a cache policy, optionally with a
// per-cell base configuration override.
type ClusterCellSpec struct {
	Scenario cluster.Scenario
	Nodes    int
	Router   cluster.Policy
	// Pol is the cache-level (throttle, arbiter) policy every node
	// runs.
	Pol Policy
	// Overload is the router's overload-control configuration (zero
	// value: disabled — the pre-overload router).
	Overload cluster.OverloadConfig
	// Faults is the cell's node-failure schedule (zero value: a
	// fault-free fleet — the exact pre-fault simulation).
	Faults cluster.FaultConfig
	// Base optionally overrides the grid's base configuration for this
	// cell (hardware sweeps under fleet load).
	Base *sim.Config
}

// RunClusterCells executes every cluster cell across the bounded
// worker pool and returns the metrics in input order. Options.Scale
// divides the L2 size exactly like the figure and serving harnesses.
// The Options.Parallel budget is split between the two nested
// fan-outs — cells on the outer pool, node engines inside each cell —
// so a wide grid never oversubscribes the CPU with cells × nodes
// goroutines; both levels are order-stable, so the split never
// changes a number.
func RunClusterCells(cells []ClusterCellSpec, opts Options) ([]*cluster.Metrics, error) {
	outer := opts.parallel()
	if outer > len(cells) {
		outer = len(cells)
	}
	inner := 1
	if outer > 0 && opts.parallel()/outer > 1 {
		inner = opts.parallel() / outer
	}
	results := make([]*cluster.Metrics, len(cells))
	err := pool.ForEach(len(cells), outer, func(i int) error {
		c := &cells[i]
		cfg := opts.base()
		if c.Base != nil {
			cfg = *c.Base
		}
		cfg.L2SizeBytes /= opts.scale()
		cfg.Throttle = c.Pol.Throttle
		cfg.Arbiter = c.Pol.Arbiter
		col := opts.Trace.Collector()
		m, err := cluster.Run(cfg, c.Scenario, c.Nodes, c.Router,
			cluster.Options{Parallel: inner, StepCache: opts.StepCache, Overload: c.Overload, Faults: c.Faults, Telemetry: col, HWProf: opts.HWProf})
		if err != nil {
			return fmt.Errorf("cluster cell %s nodes=%d %s %s: %w",
				c.Scenario.Name, c.Nodes, c.Router, c.Pol.Label, err)
		}
		label := fmt.Sprintf("%s-n%d-%s-%s", c.Scenario.Name, c.Nodes, c.Router, c.Pol.Label)
		if col != nil {
			if err := opts.Trace.Export(label, col); err != nil {
				return fmt.Errorf("cluster cell %s nodes=%d %s %s: %w",
					c.Scenario.Name, c.Nodes, c.Router, c.Pol.Label, err)
			}
		}
		if m.HW != nil {
			if err := opts.writeHWReport(label, m.HW.Render()); err != nil {
				return fmt.Errorf("cluster cell %s nodes=%d %s %s: hwprof-out: %w",
					c.Scenario.Name, c.Nodes, c.Router, c.Pol.Label, err)
			}
		}
		if opts.Log != nil {
			logClusterCell(opts, c, m)
		}
		results[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

var clusterLogMu sync.Mutex

func logClusterCell(opts Options, c *ClusterCellSpec, m *cluster.Metrics) {
	clusterLogMu.Lock()
	defer clusterLogMu.Unlock()
	var preempts int64
	for _, nm := range m.PerNode {
		preempts += nm.Preemptions
	}
	fmt.Fprintf(opts.Log,
		"%-20s n=%-3d %-18s %-12s tok/kcyc=%.4f imb=%.3f e2e-p99=%.0f preempt=%d shed=%d fwd=%d drop=%d pfx-rate=%.2f pfx-saved=%d memo=%d/%d optrace=%d/%d resets=%d\n",
		c.Scenario.Name, c.Nodes, c.Router, c.Pol.Label,
		m.FleetTokensPerKCycle, m.LoadImbalance, m.E2ELatency.P99,
		preempts, m.Shed, m.Forwarded, m.Dropped, m.PrefixHitRate, m.PrefillTokensSaved,
		m.StepCache.MemoHits, m.StepCache.MemoHits+m.StepCache.MemoMisses,
		m.StepCache.OpCacheHits, m.StepCache.OpCacheHits+m.StepCache.OpCacheMisses,
		m.StepCache.SimResets)
}

// ClusterGridResult is one scenario evaluated across a node-count ×
// router-policy matrix under one cache policy.
type ClusterGridResult struct {
	Scenario   cluster.Scenario
	NodeCounts []int
	Routers    []cluster.Policy
	Pol        Policy
	// Overload is the router overload-control configuration every
	// cell ran (zero value: disabled).
	Overload cluster.OverloadConfig
	// Faults is the node-failure schedule every cell ran (zero value:
	// fault-free).
	Faults cluster.FaultConfig
	// Metrics[i][j] is NodeCounts[i] under Routers[j].
	Metrics [][]*cluster.Metrics
}

// ClusterGrid runs one fleet scenario across every (node count,
// router policy) cell of the matrix under a single cache policy and
// collects the fleet metrics in matrix order. Deterministic at any
// Options.Parallel; Options.Scale divides the L2 size (see
// RunClusterCells).
func ClusterGrid(scn cluster.Scenario, nodeCounts []int, routers []cluster.Policy, pol Policy, opts Options) (*ClusterGridResult, error) {
	return ClusterGridWith(scn, nodeCounts, routers, pol, cluster.OverloadConfig{}, opts)
}

// ClusterGridWith is ClusterGrid with router-level overload control
// (saturation shedding, retry/backoff, forwarding) applied to every
// cell.
func ClusterGridWith(scn cluster.Scenario, nodeCounts []int, routers []cluster.Policy, pol Policy,
	ov cluster.OverloadConfig, opts Options) (*ClusterGridResult, error) {
	return ClusterGridFaulty(scn, nodeCounts, routers, pol, ov, cluster.FaultConfig{}, opts)
}

// ClusterGridFaulty is ClusterGridWith with a node-failure schedule
// injected into every cell. Fault node indices are fleet-relative, so
// the schedule must be valid for every count in nodeCounts (callers
// sweeping a single count, as the CLI's -faults mode does, only need
// it valid there).
func ClusterGridFaulty(scn cluster.Scenario, nodeCounts []int, routers []cluster.Policy, pol Policy,
	ov cluster.OverloadConfig, ft cluster.FaultConfig, opts Options) (*ClusterGridResult, error) {
	if len(nodeCounts) == 0 || len(routers) == 0 {
		return nil, fmt.Errorf("cluster grid: empty node-count or router list")
	}
	cells := make([]ClusterCellSpec, 0, len(nodeCounts)*len(routers))
	for _, n := range nodeCounts {
		for _, r := range routers {
			cells = append(cells, ClusterCellSpec{Scenario: scn, Nodes: n, Router: r, Pol: pol, Overload: ov, Faults: ft})
		}
	}
	metrics, err := RunClusterCells(cells, opts)
	if err != nil {
		return nil, err
	}
	out := &ClusterGridResult{Scenario: scn, NodeCounts: nodeCounts, Routers: routers, Pol: pol, Overload: ov, Faults: ft}
	out.Metrics = make([][]*cluster.Metrics, len(nodeCounts))
	for i := range nodeCounts {
		out.Metrics[i] = metrics[i*len(routers) : (i+1)*len(routers)]
	}
	return out, nil
}

// Render formats the grid as an aligned per-cell table of the
// headline fleet metrics. Cells run with the hardware profiler gain a
// bottleneck-class column.
func (g *ClusterGridResult) Render() string {
	hw := false
	for _, row := range g.Metrics {
		for _, m := range row {
			if m.HW != nil {
				hw = true
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d requests, %d tokens, batch %d/node, cache policy %s\n\n",
		g.Scenario.Name, len(g.Scenario.Requests), g.Scenario.TotalTokens(),
		g.Scenario.MaxBatch, g.Pol.Label)
	fmt.Fprintf(&b, "%-6s %-18s %12s %10s %10s %10s %10s %10s %10s %10s",
		"nodes", "router", "tok/kcycle", "makespan", "e2e-p50", "e2e-p95", "e2e-p99", "ttft-p95", "queue-p99", "imbalance")
	if hw {
		fmt.Fprintf(&b, "  %s", "bottleneck")
	}
	b.WriteByte('\n')
	for i, n := range g.NodeCounts {
		for j, r := range g.Routers {
			m := g.Metrics[i][j]
			fmt.Fprintf(&b, "%-6d %-18s %12.4f %10d %10.0f %10.0f %10.0f %10.0f %10.0f %10.3f",
				n, r.String(), m.FleetTokensPerKCycle, m.Makespan,
				m.E2ELatency.P50, m.E2ELatency.P95, m.E2ELatency.P99,
				m.TTFT.P95, m.QueueDelay.P99, m.LoadImbalance)
			if hw {
				class := "-"
				if m.HW != nil {
					class = m.HW.ClassName
				}
				fmt.Fprintf(&b, "  %s", class)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
