// Package arbiter implements the LLC-slice request arbitration
// policies of Section 4 of the paper:
//
//   - FCFS      — the unoptimized baseline: oldest request first.
//   - Balanced  — "B": per-core progress counters; serve the core
//     with the smallest served count (Section 4.1).
//   - MA        — "MSHR-aware": predict cache hits via a hit_buffer
//     FIFO and MSHR hits via MSHR_snapshot + sent_reqs, prioritise
//     inferred cache hits, then inferred MSHR hits, tie-breaking
//     FCFS (Section 4.3, Fig. 5).
//   - BMA       — MA with Balanced tie-breaking.
//   - COBRRA    — the prior-work baseline (Bagchi et al., TECS 2024):
//     request-over-response priority with alternation when the
//     response queue fills; FCFS request selection; bypass disabled
//     for fairness per Section 3.2 of the LLaMCAT paper.
//
// The package owns the speculative structures (HitBuffer, SentReqs)
// the slice updates, so the policies and their hardware state live
// together.
package arbiter

import (
	"fmt"
	"math"

	"repro/internal/memreq"
	"repro/internal/ring"
)

// Kind names an arbitration policy.
type Kind uint8

// Arbitration policy kinds.
const (
	FCFS Kind = iota
	Balanced
	MA
	BMA
	COBRRA
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case FCFS:
		return "fcfs"
	case Balanced:
		return "B"
	case MA:
		return "MA"
	case BMA:
		return "BMA"
	case COBRRA:
		return "cobrra"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind maps a policy name to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "fcfs", "default", "unopt":
		return FCFS, nil
	case "B", "b", "balanced":
		return Balanced, nil
	case "MA", "ma":
		return MA, nil
	case "BMA", "bma":
		return BMA, nil
	case "cobrra":
		return COBRRA, nil
	}
	return 0, fmt.Errorf("arbiter: unknown policy %q", s)
}

// RespArb selects the request-vs-response arbitration flavour a
// policy wants (Section 3.3).
type RespArb uint8

// Request-response arbitration flavours.
const (
	// RespQueueFirst processes a response whenever one is pending —
	// the flavour the paper demonstrates its results with.
	RespQueueFirst RespArb = iota
	// ReqFirstAlternate prioritises requests and alternates only when
	// the response queue is full — COBRRA's approach.
	ReqFirstAlternate
)

// HitBuffer is the FIFO of recent cache-hit line addresses (Fig. 4).
// The slice pushes a line each time a lookup hits; the arbiter
// consults it to speculate that a queued request will hit. Alongside
// the FIFO it maintains a line→occurrence count index so the
// arbiter's per-request membership test is O(1) instead of a scan —
// the hardware CAM's parallel compare, done in software as a map.
type HitBuffer struct {
	fifo   *ring.Ring[uint64]
	counts map[uint64]int16
}

// NewHitBuffer returns a hit buffer holding up to n recent hits.
func NewHitBuffer(n int) *HitBuffer {
	return &HitBuffer{fifo: ring.New[uint64](n), counts: make(map[uint64]int16, n)}
}

// Push records a determined cache hit, evicting the oldest record when
// full (FIFO replacement, as hardware would).
func (h *HitBuffer) Push(line uint64) {
	if h.fifo.Full() {
		old, _ := h.fifo.Pop()
		if n := h.counts[old]; n <= 1 {
			delete(h.counts, old)
		} else {
			h.counts[old] = n - 1
		}
	}
	h.fifo.Push(line)
	h.counts[line]++
}

// Contains reports whether line is in the buffer.
func (h *HitBuffer) Contains(line uint64) bool {
	return h.counts[line] > 0
}

// Reset empties the buffer, keeping the FIFO and index allocations.
func (h *HitBuffer) Reset() {
	h.fifo.Clear()
	clear(h.counts)
}

// Len returns the number of recorded hits.
func (h *HitBuffer) Len() int { return h.fifo.Len() }

// sentReq is one in-flight selection awaiting MSHR visibility.
type sentReq struct {
	line    uint64
	specHit bool
	expire  int64 // cycle at which the request is visible in MSHR
}

// SentReqs tracks requests selected in the last hit-latency +
// mshr-latency cycles — the window during which a selected request is
// not yet visible in MSHR_snapshot (Section 4.3.1). Entries whose
// spec_hit bit is set are masked out when estimating MSHR state, since
// cache hits never touch the MSHR. Expire times are monotonic (push
// cycle + constant latency), so the cached front expiry lets the
// per-cycle expiry check run without touching the FIFO.
type SentReqs struct {
	fifo        *ring.Ring[sentReq]
	frontExpire int64
}

// NewSentReqs returns a sent_reqs FIFO with capacity n (it needs to
// hold at most hit-latency + mshr-latency selections).
func NewSentReqs(n int) *SentReqs {
	return &SentReqs{fifo: ring.New[sentReq](n), frontExpire: int64(math.MaxInt64)}
}

// Push records a selected request; expire is the cycle the request
// becomes visible in the real MSHR (now + hit-latency + mshr-latency).
func (s *SentReqs) Push(line uint64, specHit bool, expire int64) {
	if s.fifo.Full() {
		s.fifo.Pop()
		s.refreshFront()
	}
	s.fifo.Push(sentReq{line: line, specHit: specHit, expire: expire})
	if expire < s.frontExpire {
		s.frontExpire = expire
	}
}

func (s *SentReqs) refreshFront() {
	if head, ok := s.fifo.Peek(); ok {
		s.frontExpire = head.expire
	} else {
		s.frontExpire = int64(math.MaxInt64)
	}
}

// Reset empties the FIFO, keeping its allocation.
func (s *SentReqs) Reset() {
	s.fifo.Clear()
	s.frontExpire = int64(math.MaxInt64)
}

// Expire drops entries whose visibility window has passed.
func (s *SentReqs) Expire(now int64) {
	if s.frontExpire > now {
		return
	}
	for {
		head, ok := s.fifo.Peek()
		if !ok || head.expire > now {
			s.refreshFront()
			return
		}
		s.fifo.Pop()
	}
}

// ContainsMiss reports whether line is tracked by an entry that was
// *not* speculated to be a cache hit — i.e. a request that will open
// or merge into an MSHR entry. It runs on the arbiter's per-request
// hot path, so it walks the FIFO's raw segments instead of paying a
// closure call per entry.
func (s *SentReqs) ContainsMiss(line uint64) bool {
	a, b := s.fifo.Segments()
	for i := range a {
		if !a[i].specHit && a[i].line == line {
			return true
		}
	}
	for i := range b {
		if !b[i].specHit && b[i].line == line {
			return true
		}
	}
	return false
}

// PendingMisses counts tracked non-spec-hit entries for distinct
// lines not already in the snapshot; used to estimate MSHR entries
// about to be consumed.
func (s *SentReqs) PendingMisses(inSnapshot func(uint64) bool) int {
	n := 0
	seen := [8]uint64{}
	distinct := 0
	s.fifo.Scan(func(_ int, v sentReq) bool {
		if v.specHit || inSnapshot(v.line) {
			return true
		}
		for i := 0; i < distinct; i++ {
			if seen[i] == v.line {
				return true
			}
		}
		if distinct < len(seen) {
			seen[distinct] = v.line
			distinct++
		}
		n++
		return true
	})
	return n
}

// Len returns the number of tracked selections.
func (s *SentReqs) Len() int { return s.fifo.Len() }

// Context is the slice state a policy consults during selection. All
// functions are cheap views over the slice's real structures — the
// "direct wire connection" of Fig. 4.
type Context struct {
	Now int64
	// Served is the per-core progress counter array of this slice
	// (cnt0..cntN in Fig. 4), reset per operator.
	Served []int64
	// InMSHR reports whether a line is present in the real-time
	// MSHR_snapshot.
	InMSHR func(line uint64) bool
	// TargetsFree reports the remaining merge capacity for a line's
	// MSHR entry (full capacity when no entry matches). Fig. 5 shows
	// the snapshot carrying an "addr num" pair: the arbiter can see
	// entry occupancy, so MA avoids selecting a request that would
	// fail reservation and stall the pipeline. Nil means unknown.
	TargetsFree func(line uint64) int
	// MSHRView, when non-nil, fuses InMSHR and TargetsFree into one
	// CAM scan: whether the line has an entry and its remaining merge
	// capacity. The MA/BMA hot path prefers it; the separate funcs
	// remain for callers (and tests) that provide only one view.
	MSHRView func(line uint64) (present bool, targetsFree int)
	// HitBuf and Sent are the speculative structures.
	HitBuf *HitBuffer
	Sent   *SentReqs
}

// Policy selects which queued request the slice serves next.
type Policy interface {
	// Kind identifies the policy.
	Kind() Kind
	// Select returns the index (into queue order, 0 = oldest) of the
	// chosen request and the speculative cache-hit bit to record in
	// sent_reqs. The queue is non-empty.
	Select(q *ring.Ring[*memreq.Request], ctx *Context) (idx int, specHit bool)
	// RespArb reports the request-response arbitration flavour.
	RespArb() RespArb
}

// New constructs the policy implementation for kind.
func New(kind Kind) Policy {
	switch kind {
	case FCFS:
		return fcfsPolicy{}
	case Balanced:
		return balancedPolicy{}
	case MA:
		return maPolicy{balancedTie: false}
	case BMA:
		return maPolicy{balancedTie: true}
	case COBRRA:
		return cobrraPolicy{}
	default:
		return fcfsPolicy{}
	}
}

// fcfsPolicy serves the oldest request: the unoptimized arbiter.
type fcfsPolicy struct{}

func (fcfsPolicy) Kind() Kind       { return FCFS }
func (fcfsPolicy) RespArb() RespArb { return RespQueueFirst }

func (fcfsPolicy) Select(q *ring.Ring[*memreq.Request], ctx *Context) (int, bool) {
	r := q.At(0)
	return 0, ctx.HitBuf != nil && ctx.HitBuf.Contains(r.Line)
}

// balancedPolicy is "B": smallest per-core served count wins;
// FCFS among requests of the same core (Section 4.1).
type balancedPolicy struct{}

func (balancedPolicy) Kind() Kind       { return Balanced }
func (balancedPolicy) RespArb() RespArb { return RespQueueFirst }

func (balancedPolicy) Select(q *ring.Ring[*memreq.Request], ctx *Context) (int, bool) {
	best := 0
	bestServed := int64(-1)
	segA, segB := q.Segments()
	idx := 0
	for _, seg := range [2][]*memreq.Request{segA, segB} {
		for _, r := range seg {
			served := int64(0)
			if r.Core >= 0 && r.Core < len(ctx.Served) {
				served = ctx.Served[r.Core]
			}
			if bestServed < 0 || served < bestServed {
				best, bestServed = idx, served
			}
			idx++
		}
	}
	r := q.At(best)
	return best, ctx.HitBuf != nil && ctx.HitBuf.Contains(r.Line)
}

// maPolicy implements MA and BMA: rank requests by speculated class
// (cache hit < MSHR hit < other), tie-breaking FCFS (MA) or balanced
// (BMA). Section 4.3.3.
type maPolicy struct {
	balancedTie bool
}

func (p maPolicy) Kind() Kind {
	if p.balancedTie {
		return BMA
	}
	return MA
}

func (maPolicy) RespArb() RespArb { return RespQueueFirst }

func (p maPolicy) Select(q *ring.Ring[*memreq.Request], ctx *Context) (int, bool) {
	const (
		classHit   = 0
		classMSHR  = 1
		classOther = 2
		classStall = 3 // in MSHR but target list full: selection would stall
	)
	// Single-request fast path: the selection is forced, only the
	// speculative hit bit matters. Queues drain to one entry often in
	// low-contention phases, so this skips the class ranking entirely.
	if q.Len() == 1 {
		return 0, ctx.HitBuf.Contains(q.At(0).Line)
	}
	best := -1
	bestClass := classStall + 1
	bestServed := int64(-1)
	bestSpec := false
	segA, segB := q.Segments()
	idx := 0
	for _, seg := range [2][]*memreq.Request{segA, segB} {
		for _, r := range seg {
			i := idx
			idx++
			specHit := ctx.HitBuf.Contains(r.Line)
			class := classOther
			switch {
			case specHit:
				class = classHit
			default:
				var inMSHR bool
				free := 1
				if ctx.MSHRView != nil {
					inMSHR, free = ctx.MSHRView(r.Line)
				} else if ctx.InMSHR(r.Line) {
					inMSHR = true
					if ctx.TargetsFree != nil {
						free = ctx.TargetsFree(r.Line)
					}
				}
				switch {
				case inMSHR:
					class = classMSHR
					if free <= 0 {
						class = classStall
					}
				case ctx.Sent.ContainsMiss(r.Line):
					class = classMSHR
				}
			}
			better := false
			if class < bestClass {
				better = true
			} else if class == bestClass && p.balancedTie {
				served := int64(0)
				if r.Core >= 0 && r.Core < len(ctx.Served) {
					served = ctx.Served[r.Core]
				}
				if served < bestServed {
					better = true
				}
			}
			if best < 0 || better {
				best = i
				bestClass = class
				bestSpec = specHit
				if r.Core >= 0 && r.Core < len(ctx.Served) {
					bestServed = ctx.Served[r.Core]
				} else {
					bestServed = 0
				}
			}
		}
	}
	return best, bestSpec
}

// cobrraPolicy models the COBRRA baseline's arbitration component:
// FCFS request selection plus request-first response alternation. The
// original also bypasses cache fills; bypass is disabled here exactly
// as the paper disables it for all policies (Section 3.2, step 5).
type cobrraPolicy struct{}

func (cobrraPolicy) Kind() Kind       { return COBRRA }
func (cobrraPolicy) RespArb() RespArb { return ReqFirstAlternate }

func (cobrraPolicy) Select(q *ring.Ring[*memreq.Request], ctx *Context) (int, bool) {
	r := q.At(0)
	return 0, ctx.HitBuf != nil && ctx.HitBuf.Contains(r.Line)
}
