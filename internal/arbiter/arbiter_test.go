package arbiter

import (
	"testing"
	"testing/quick"

	"repro/internal/memreq"
	"repro/internal/ring"
)

func queueOf(reqs ...*memreq.Request) *ring.Ring[*memreq.Request] {
	q := ring.New[*memreq.Request](16)
	for _, r := range reqs {
		q.Push(r)
	}
	return q
}

func req(core int, line uint64) *memreq.Request {
	return &memreq.Request{Core: core, Line: line}
}

func emptyCtx(numCores int) *Context {
	return &Context{
		Served: make([]int64, numCores),
		InMSHR: func(uint64) bool { return false },
		HitBuf: NewHitBuffer(8),
		Sent:   NewSentReqs(8),
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"fcfs": FCFS, "default": FCFS, "unopt": FCFS,
		"B": Balanced, "balanced": Balanced,
		"MA": MA, "ma": MA, "BMA": BMA, "cobrra": COBRRA,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q)=%v,%v want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
	for _, k := range []Kind{FCFS, Balanced, MA, BMA, COBRRA} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

func TestHitBufferFIFO(t *testing.T) {
	h := NewHitBuffer(2)
	h.Push(1)
	h.Push(2)
	if !h.Contains(1) || !h.Contains(2) {
		t.Fatal("pushed lines missing")
	}
	h.Push(3) // evicts 1
	if h.Contains(1) {
		t.Fatal("oldest entry not evicted")
	}
	if !h.Contains(2) || !h.Contains(3) {
		t.Fatal("recent entries lost")
	}
	if h.Len() != 2 {
		t.Fatalf("Len=%d", h.Len())
	}
}

func TestSentReqsExpiry(t *testing.T) {
	s := NewSentReqs(4)
	s.Push(10, false, 5)
	s.Push(20, true, 6)
	s.Push(30, false, 7)
	if !s.ContainsMiss(10) || !s.ContainsMiss(30) {
		t.Fatal("tracked misses missing")
	}
	if s.ContainsMiss(20) {
		t.Fatal("spec-hit entry must be masked out of MSHR estimation")
	}
	s.Expire(5)
	if s.ContainsMiss(10) {
		t.Fatal("expired entry still visible")
	}
	if !s.ContainsMiss(30) {
		t.Fatal("unexpired entry dropped")
	}
	if s.Len() != 2 {
		t.Fatalf("Len=%d after expiry", s.Len())
	}
}

func TestSentReqsPendingMisses(t *testing.T) {
	s := NewSentReqs(8)
	s.Push(1, false, 100)
	s.Push(1, false, 100) // same line: one pending entry
	s.Push(2, true, 100)  // spec hit: masked
	s.Push(3, false, 100)
	inSnap := func(line uint64) bool { return line == 3 } // already in MSHR
	if got := s.PendingMisses(inSnap); got != 1 {
		t.Fatalf("PendingMisses=%d want 1 (line 1 only)", got)
	}
}

func TestFCFSPicksOldest(t *testing.T) {
	p := New(FCFS)
	q := queueOf(req(0, 100), req(1, 200))
	idx, _ := p.Select(q, emptyCtx(4))
	if idx != 0 {
		t.Fatalf("FCFS picked %d", idx)
	}
	if p.Kind() != FCFS || p.RespArb() != RespQueueFirst {
		t.Fatal("FCFS identity wrong")
	}
}

func TestBalancedPicksLeastServed(t *testing.T) {
	p := New(Balanced)
	ctx := emptyCtx(4)
	ctx.Served[0] = 10
	ctx.Served[1] = 3
	ctx.Served[2] = 7
	q := queueOf(req(0, 1), req(2, 2), req(1, 3))
	idx, _ := p.Select(q, ctx)
	if idx != 2 {
		t.Fatalf("Balanced picked index %d (core %d), want the core with fewest served", idx, q.At(idx).Core)
	}
	// Tie: first in queue order wins.
	ctx.Served[0] = 3
	idx, _ = p.Select(q, ctx)
	if idx != 0 {
		t.Fatalf("Balanced tie-break picked %d, want oldest", idx)
	}
}

func TestMAPriorities(t *testing.T) {
	p := New(MA)
	ctx := emptyCtx(4)
	ctx.HitBuf.Push(300)                                 // line 300: inferred cache hit
	ctx.InMSHR = func(l uint64) bool { return l == 200 } // line 200: MSHR hit

	// Queue: other, MSHR-hit, cache-hit (oldest first).
	q := queueOf(req(0, 100), req(1, 200), req(2, 300))
	idx, spec := p.Select(q, ctx)
	if idx != 2 || !spec {
		t.Fatalf("MA picked %d spec=%v, want inferred cache hit first", idx, spec)
	}
	// Without the cache hit, MSHR hit wins.
	q = queueOf(req(0, 100), req(1, 200))
	idx, spec = p.Select(q, ctx)
	if idx != 1 || spec {
		t.Fatalf("MA picked %d spec=%v, want MSHR hit", idx, spec)
	}
	// sent_reqs misses count as MSHR hits too.
	ctx.Sent.Push(100, false, 50)
	q = queueOf(req(3, 400), req(0, 100))
	idx, _ = p.Select(q, ctx)
	if idx != 1 {
		t.Fatalf("MA ignored sent_reqs: picked %d", idx)
	}
	// But spec-hit entries in sent_reqs must not.
	ctx2 := emptyCtx(4)
	ctx2.Sent.Push(500, true, 50)
	q = queueOf(req(0, 600), req(1, 500))
	idx, _ = p.Select(q, ctx2)
	if idx != 0 {
		t.Fatalf("MA treated masked sent entry as MSHR hit: picked %d", idx)
	}
}

func TestMAFCFSTieBreak(t *testing.T) {
	p := New(MA)
	ctx := emptyCtx(4)
	ctx.Served[0] = 100 // would matter for BMA, not MA
	q := queueOf(req(0, 1), req(1, 2))
	idx, _ := p.Select(q, ctx)
	if idx != 0 {
		t.Fatalf("MA tie-break must be FCFS, picked %d", idx)
	}
}

func TestBMABalancedTieBreak(t *testing.T) {
	p := New(BMA)
	ctx := emptyCtx(4)
	ctx.Served[0] = 100
	ctx.Served[1] = 1
	q := queueOf(req(0, 1), req(1, 2))
	idx, _ := p.Select(q, ctx)
	if idx != 1 {
		t.Fatalf("BMA tie-break must be balanced, picked %d", idx)
	}
	// Class still dominates the tie-break.
	ctx.HitBuf.Push(1)
	idx, spec := p.Select(q, ctx)
	if idx != 0 || !spec {
		t.Fatalf("BMA class ordering broken: %d %v", idx, spec)
	}
}

func TestCOBRRAIdentity(t *testing.T) {
	p := New(COBRRA)
	if p.RespArb() != ReqFirstAlternate {
		t.Fatal("COBRRA must use request-first alternation")
	}
	q := queueOf(req(1, 9), req(0, 8))
	idx, _ := p.Select(q, emptyCtx(4))
	if idx != 0 {
		t.Fatalf("COBRRA request selection must be FCFS, picked %d", idx)
	}
}

// Select must always return a valid index for any queue content.
func TestSelectValidIndexProperty(t *testing.T) {
	kinds := []Kind{FCFS, Balanced, MA, BMA, COBRRA}
	check := func(kindRaw uint8, cores []uint8, lines []uint8, hitLines []uint8) bool {
		if len(cores) == 0 {
			return true
		}
		if len(lines) < len(cores) {
			return true
		}
		p := New(kinds[int(kindRaw)%len(kinds)])
		ctx := emptyCtx(8)
		for _, h := range hitLines {
			ctx.HitBuf.Push(uint64(h % 16))
		}
		q := ring.New[*memreq.Request](len(cores))
		for i := range cores {
			q.Push(req(int(cores[i]%8), uint64(lines[i]%16)))
		}
		idx, _ := p.Select(q, ctx)
		return idx >= 0 && idx < q.Len()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
