package workload

import (
	"testing"
	"testing/quick"
)

func TestModelValidate(t *testing.T) {
	if err := Llama3_70B.Validate(); err != nil {
		t.Fatalf("Llama3_70B invalid: %v", err)
	}
	if err := Llama3_405B.Validate(); err != nil {
		t.Fatalf("Llama3_405B invalid: %v", err)
	}
	bad := []ModelConfig{
		{Name: "h", H: 0, G: 1, D: 1, ElemBytes: 2, OutBytes: 4},
		{Name: "g", H: 1, G: 0, D: 1, ElemBytes: 2, OutBytes: 4},
		{Name: "d", H: 1, G: 1, D: 0, ElemBytes: 2, OutBytes: 4},
		{Name: "e", H: 1, G: 1, D: 1, ElemBytes: 0, OutBytes: 4},
		{Name: "o", H: 1, G: 1, D: 1, ElemBytes: 2, OutBytes: 0},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %q validated, want error", m.Name)
		}
	}
}

func TestPaperShapes(t *testing.T) {
	// Section 6.2.2: Llama3-70B has H=8, G=8, D=128; 405B has G=16.
	if Llama3_70B.H != 8 || Llama3_70B.G != 8 || Llama3_70B.D != 128 {
		t.Fatalf("70B shape wrong: %+v", Llama3_70B)
	}
	if Llama3_405B.H != 8 || Llama3_405B.G != 16 || Llama3_405B.D != 128 {
		t.Fatalf("405B shape wrong: %+v", Llama3_405B)
	}
}

func TestLogitSizes(t *testing.T) {
	op := LogitOp{Model: Llama3_70B, SeqLen: 8192}
	// K: 8 groups x 8192 tokens x 128 dims x 2B = 16 MiB — the paper's
	// "8K sequence matches the 16 MB cache" working set.
	if got := op.KBytes(); got != 16<<20 {
		t.Fatalf("KBytes=%d want %d", got, 16<<20)
	}
	if got := op.QBytes(); got != 8*8*128*2 {
		t.Fatalf("QBytes=%d", got)
	}
	if got := op.OutBytes(); got != 8*8*8192*4 {
		t.Fatalf("OutBytes=%d", got)
	}
	if got := op.TotalKReadBytes(); got != op.KBytes()*8 {
		t.Fatalf("TotalKReadBytes=%d (GQA reuse factor must be G)", got)
	}
	if op.Name() != "logit/llama3-70b/L8192" {
		t.Fatalf("Name=%q", op.Name())
	}
}

func TestAddressMapLayout(t *testing.T) {
	op := LogitOp{Model: Llama3_70B, SeqLen: 256}
	m, err := NewAddressMap(op, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	// Regions ordered and aligned.
	if m.KBase%4096 != 0 || m.QBase%4096 != 0 || m.OutBase%4096 != 0 {
		t.Fatal("regions not 4 KiB aligned")
	}
	if !(m.KBase < m.QBase && m.QBase < m.OutBase && m.OutBase < m.Limit) {
		t.Fatalf("regions out of order: %+v", m)
	}
	// No overlap: end of K fits before QBase, etc.
	if m.KBase+uint64(op.KBytes()) > m.QBase {
		t.Fatal("K overlaps Q")
	}
	if m.QBase+uint64(op.QBytes()) > m.OutBase {
		t.Fatal("Q overlaps Out")
	}
	if m.OutBase+uint64(op.OutBytes()) > m.Limit {
		t.Fatal("Out exceeds Limit")
	}
}

func TestAddressMapIndexing(t *testing.T) {
	op := LogitOp{Model: Llama3_70B, SeqLen: 64}
	m, err := NewAddressMap(op, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive d elements are contiguous.
	if m.KAddr(0, 0, 1)-m.KAddr(0, 0, 0) != 2 {
		t.Fatal("K d-stride wrong")
	}
	// Consecutive tokens are one row (D elements) apart.
	if m.KAddr(0, 1, 0)-m.KAddr(0, 0, 0) != uint64(op.Model.D*2) {
		t.Fatal("K token stride wrong")
	}
	// Consecutive groups are L rows apart.
	if m.KAddr(1, 0, 0)-m.KAddr(0, 0, 0) != uint64(op.SeqLen*op.Model.D*2) {
		t.Fatal("K group stride wrong")
	}
	// Out: scores of one query head over the sequence are contiguous.
	if m.OutAddr(0, 0, 1)-m.OutAddr(0, 0, 0) != 4 {
		t.Fatal("Out l-stride wrong")
	}
}

// Every valid tensor index lands in its own region.
func TestRegionProperty(t *testing.T) {
	op := LogitOp{Model: Llama3_405B, SeqLen: 128}
	m, err := NewAddressMap(op, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	check := func(hRaw, gRaw, lRaw, dRaw uint16) bool {
		h := int(hRaw) % op.Model.H
		g := int(gRaw) % op.Model.G
		l := int(lRaw) % op.SeqLen
		d := int(dRaw) % op.Model.D
		return m.Region(m.KAddr(h, l, d)) == "K" &&
			m.Region(m.QAddr(h, g, d)) == "Q" &&
			m.Region(m.OutAddr(h, g, l)) == "Out"
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if m.Region(0) != "" {
		t.Fatal("address below KBase should be unmapped")
	}
	if m.Region(m.Limit+1) != "" {
		t.Fatal("address above Limit should be unmapped")
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := NewAddressMap(LogitOp{Model: Llama3_70B, SeqLen: 0}, 0); err == nil {
		t.Fatal("SeqLen=0 accepted")
	}
	bad := LogitOp{Model: ModelConfig{Name: "bad"}, SeqLen: 16}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid model accepted")
	}
}
