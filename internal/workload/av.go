// The AV operator — the second KV-cache-bound kernel of the decode
// stage: Out[h][g][d] = Σ_l AttProb[h][g][l] · V[h][l][d]. The paper
// evaluates the Logit operator (Q·Kᵀ); AV streams the V half of the
// KV cache with the same GQA sharing structure (all G query heads of
// a group read the same V rows), so the CAT mechanisms apply to it
// unchanged. It is provided as an extension workload.

package workload

import "fmt"

// AVOp is one decode-step execution of the attention-value operator
// over a KV cache of SeqLen tokens.
type AVOp struct {
	Model  ModelConfig
	SeqLen int
}

// Validate checks the operator shape.
func (op AVOp) Validate() error {
	if err := op.Model.Validate(); err != nil {
		return err
	}
	if op.SeqLen <= 0 {
		return fmt.Errorf("workload: SeqLen must be positive, got %d", op.SeqLen)
	}
	return nil
}

// Name identifies the operator instance, e.g. "av/llama3-70b/L8192".
func (op AVOp) Name() string {
	return fmt.Sprintf("av/%s/L%d", op.Model.Name, op.SeqLen)
}

// VBytes returns the size of the cached V tensor: H × L × D elements
// — identical in shape to K.
func (op AVOp) VBytes() int64 {
	return int64(op.Model.H) * int64(op.SeqLen) * int64(op.Model.D) * int64(op.Model.ElemBytes)
}

// ProbBytes returns the size of the attention probabilities:
// H × G × L fp32 values (the softmax of the Logit output).
func (op AVOp) ProbBytes() int64 {
	return int64(op.Model.H) * int64(op.Model.G) * int64(op.SeqLen) * int64(op.Model.OutBytes)
}

// OutBytes returns the size of the attended output: H × G × D fp32
// accumulators.
func (op AVOp) OutBytes() int64 {
	return int64(op.Model.H) * int64(op.Model.G) * int64(op.Model.D) * int64(op.Model.OutBytes)
}

// AVAddressMap lays out V, AttProb and the output accumulators.
type AVAddressMap struct {
	VBase    uint64
	ProbBase uint64
	OutBase  uint64
	Limit    uint64
	op       AVOp
}

// NewAVAddressMap lays the tensors out contiguously from base, 4 KiB
// aligned like NewAddressMap.
func NewAVAddressMap(op AVOp, base uint64) (*AVAddressMap, error) {
	if err := op.Validate(); err != nil {
		return nil, err
	}
	m := &AVAddressMap{op: op}
	cur := alignUp(base, regionAlign)
	m.VBase = cur
	cur = alignUp(cur+uint64(op.VBytes()), regionAlign)
	m.ProbBase = cur
	cur = alignUp(cur+uint64(op.ProbBytes()), regionAlign)
	m.OutBase = cur
	cur = alignUp(cur+uint64(op.OutBytes()), regionAlign)
	m.Limit = cur
	return m, nil
}

// VAddr returns the byte address of V[h][l][d], layout [H][L][D].
func (m *AVAddressMap) VAddr(h, l, d int) uint64 {
	op := m.op
	idx := (int64(h)*int64(op.SeqLen)+int64(l))*int64(op.Model.D) + int64(d)
	return m.VBase + uint64(idx*int64(op.Model.ElemBytes))
}

// ProbAddr returns the byte address of AttProb[h][g][l], layout
// [H][G][L].
func (m *AVAddressMap) ProbAddr(h, g, l int) uint64 {
	op := m.op
	idx := (int64(h)*int64(op.Model.G)+int64(g))*int64(op.SeqLen) + int64(l)
	return m.ProbBase + uint64(idx*int64(op.Model.OutBytes))
}

// OutAddr returns the byte address of Out[h][g][d], layout [H][G][D].
func (m *AVAddressMap) OutAddr(h, g, d int) uint64 {
	op := m.op
	idx := (int64(h)*int64(op.Model.G)+int64(g))*int64(op.Model.D) + int64(d)
	return m.OutBase + uint64(idx*int64(op.Model.OutBytes))
}

// Region reports which tensor an address belongs to.
func (m *AVAddressMap) Region(addr uint64) string {
	switch {
	case addr >= m.VBase && addr < m.VBase+uint64(m.op.VBytes()):
		return "V"
	case addr >= m.ProbBase && addr < m.ProbBase+uint64(m.op.ProbBytes()):
		return "Prob"
	case addr >= m.OutBase && addr < m.OutBase+uint64(m.op.OutBytes()):
		return "Out"
	default:
		return ""
	}
}

// Op returns the operator this map was built for.
func (m *AVAddressMap) Op() AVOp { return m.op }
