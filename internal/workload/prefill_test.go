package workload

import "testing"

func TestPrefillOpValidate(t *testing.T) {
	ok := PrefillOp{Model: Llama3_70B, KVLen: 64, ChunkLen: 16}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid op rejected: %v", err)
	}
	cases := []PrefillOp{
		{Model: Llama3_70B, KVLen: 0, ChunkLen: 16},
		{Model: Llama3_70B, KVLen: 64, ChunkLen: 0},
		{Model: Llama3_70B, KVLen: 16, ChunkLen: 32}, // chunk beyond prefix
	}
	for _, op := range cases {
		if err := op.Validate(); err == nil {
			t.Errorf("op %+v accepted, want error", op)
		}
	}
}

func TestPrefillSizes(t *testing.T) {
	op := PrefillOp{Model: Llama3_70B, KVLen: 128, ChunkLen: 32}
	m := op.Model
	wantK := int64(m.H) * 128 * int64(m.D) * int64(m.ElemBytes)
	if got := op.KBytes(); got != wantK {
		t.Errorf("KBytes = %d, want %d", got, wantK)
	}
	// K is identical in shape to the Logit operator over the same
	// prefix — the shared-KV-cache property.
	logit := LogitOp{Model: m, SeqLen: 128}
	if op.KBytes() != logit.KBytes() {
		t.Errorf("prefill KBytes %d != logit KBytes %d", op.KBytes(), logit.KBytes())
	}
	wantQ := int64(32) * int64(m.H) * int64(m.G) * int64(m.D) * int64(m.ElemBytes)
	if got := op.QBytes(); got != wantQ {
		t.Errorf("QBytes = %d, want %d", got, wantQ)
	}
	wantOut := int64(m.H) * int64(m.G) * 32 * 128 * int64(m.OutBytes)
	if got := op.OutBytes(); got != wantOut {
		t.Errorf("OutBytes = %d, want %d", got, wantOut)
	}
	if got, want := op.TotalKReadBytes(), wantK*int64(m.G)*32; got != want {
		t.Errorf("TotalKReadBytes = %d, want %d", got, want)
	}
}

func TestPrefillAddressMap(t *testing.T) {
	op := PrefillOp{Model: Llama3_70B, KVLen: 64, ChunkLen: 16}
	m, err := NewPrefillAddressMap(op, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if m.KBase%regionAlign != 0 || m.QBase%regionAlign != 0 || m.OutBase%regionAlign != 0 {
		t.Errorf("region bases not %d-aligned: %d %d %d", regionAlign, m.KBase, m.QBase, m.OutBase)
	}
	if m.KBase < 12345 {
		t.Errorf("KBase %d below requested base", m.KBase)
	}
	// Regions are disjoint and classified correctly.
	if got := m.Region(m.KAddr(0, 0, 0)); got != "K" {
		t.Errorf("K[0][0][0] classified as %q", got)
	}
	if got := m.Region(m.QAddr(0, 0, 0, 0)); got != "Q" {
		t.Errorf("Q[0][0][0][0] classified as %q", got)
	}
	if got := m.Region(m.OutAddr(0, 0, 0, 0)); got != "Out" {
		t.Errorf("Out[0][0][0][0] classified as %q", got)
	}
	// Last elements stay in their regions.
	mdl := op.Model
	if got := m.Region(m.KAddr(mdl.H-1, op.KVLen-1, mdl.D-1)); got != "K" {
		t.Errorf("last K element classified as %q", got)
	}
	if got := m.Region(m.OutAddr(mdl.H-1, mdl.G-1, op.ChunkLen-1, op.KVLen-1)); got != "Out" {
		t.Errorf("last Out element classified as %q", got)
	}
	if m.Limit <= m.OutBase {
		t.Errorf("Limit %d not past OutBase %d", m.Limit, m.OutBase)
	}
}

// TestPrefillKMatchesLogitK pins the cross-phase KV-cache sharing
// property: for the same base and prefix length, every K address of
// the prefill map equals the corresponding Logit-map K address.
func TestPrefillKMatchesLogitK(t *testing.T) {
	pre := PrefillOp{Model: Llama3_70B, KVLen: 48, ChunkLen: 48}
	dec := LogitOp{Model: Llama3_70B, SeqLen: 48}
	pm, err := NewPrefillAddressMap(pre, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := NewAddressMap(dec, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	for _, hld := range [][3]int{{0, 0, 0}, {3, 17, 64}, {7, 47, 127}} {
		h, l, d := hld[0], hld[1], hld[2]
		if pa, da := pm.KAddr(h, l, d), dm.KAddr(h, l, d); pa != da {
			t.Errorf("K[%d][%d][%d]: prefill %#x != logit %#x", h, l, d, pa, da)
		}
	}
}
