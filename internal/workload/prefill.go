// The prefill operator — the compute-heavy attention-score pass over
// the prompt that precedes decode. Where the decode-stage Logit
// operator scores ONE new query token against the whole KV cache,
// prefill scores a CHUNK of C prompt tokens against the KVLen-token
// prefix that ends with the chunk (causal attention over the prompt so
// far). Each cached K row therefore serves C query tokens instead of
// one, which is exactly what makes prefill compute-bound where decode
// is memory-bound: the arithmetic intensity per K byte scales with the
// chunk length. Chunked-prefill schedulers (Sarathi-Serve style) pick
// C to trade time-to-first-token against decode-latency interference;
// C = PromptLen is the monolithic prefill pass of prefill-first
// schedulers.
//
// The K tensor layout is identical to LogitOp's K ([H][L][D] from the
// same aligned base), so a prefill pass touches the same KV-cache
// region the stream's later decode steps read — the cross-phase reuse
// a real KV cache exhibits.

package workload

import "fmt"

// PrefillOp is one prefill pass: ChunkLen query tokens (the tail of
// the KVLen-token prompt prefix) scored against all KVLen cached keys.
type PrefillOp struct {
	Model ModelConfig
	// KVLen is the number of cached tokens attended over — the prompt
	// prefix length through the end of this chunk.
	KVLen int
	// ChunkLen is the number of query tokens in this pass (C). A
	// monolithic prefill has ChunkLen == KVLen == PromptLen.
	ChunkLen int
}

// Validate checks the operator shape. Causality bounds the chunk by
// the prefix: the chunk's queries are the last ChunkLen of the KVLen
// tokens.
func (op PrefillOp) Validate() error {
	if err := op.Model.Validate(); err != nil {
		return err
	}
	if op.KVLen <= 0 {
		return fmt.Errorf("workload: prefill KVLen must be positive, got %d", op.KVLen)
	}
	if op.ChunkLen <= 0 {
		return fmt.Errorf("workload: prefill ChunkLen must be positive, got %d", op.ChunkLen)
	}
	if op.ChunkLen > op.KVLen {
		return fmt.Errorf("workload: prefill ChunkLen %d exceeds KVLen %d (chunk queries are part of the prefix)",
			op.ChunkLen, op.KVLen)
	}
	return nil
}

// Name identifies the operator instance, e.g.
// "prefill/llama3-70b/L512c64".
func (op PrefillOp) Name() string {
	return fmt.Sprintf("prefill/%s/L%dc%d", op.Model.Name, op.KVLen, op.ChunkLen)
}

// KBytes returns the size of the cached K tensor: H × KVLen × D
// elements — identical to the Logit operator over the same prefix.
func (op PrefillOp) KBytes() int64 {
	return int64(op.Model.H) * int64(op.KVLen) * int64(op.Model.D) * int64(op.Model.ElemBytes)
}

// QBytes returns the size of the chunk's Q activations:
// ChunkLen × H × G × D elements.
func (op PrefillOp) QBytes() int64 {
	return int64(op.ChunkLen) * int64(op.Model.H) * int64(op.Model.G) *
		int64(op.Model.D) * int64(op.Model.ElemBytes)
}

// OutBytes returns the size of the chunk's AttScore output:
// H × G × ChunkLen × KVLen fp32 scores.
func (op PrefillOp) OutBytes() int64 {
	return int64(op.Model.H) * int64(op.Model.G) * int64(op.ChunkLen) *
		int64(op.KVLen) * int64(op.Model.OutBytes)
}

// TotalKReadBytes returns the bytes of K read counting every use:
// every K row serves G query heads × ChunkLen chunk tokens. Dividing
// by KBytes gives the reuse factor G × ChunkLen — the arithmetic-
// intensity advantage of prefill over decode (whose factor is G).
func (op PrefillOp) TotalKReadBytes() int64 {
	return op.KBytes() * int64(op.Model.G) * int64(op.ChunkLen)
}

// PrefillAddressMap assigns non-overlapping physical regions to the
// prefill tensors. The K region layout matches AddressMap's K for the
// same base and prefix length, so prefill and decode phases of one
// stream share their KV-cache addresses.
type PrefillAddressMap struct {
	KBase   uint64
	QBase   uint64
	OutBase uint64
	Limit   uint64 // one past the last mapped byte
	op      PrefillOp
}

// NewPrefillAddressMap lays out K, Q and AttScore contiguously from
// base, 4 KiB aligned like NewAddressMap.
func NewPrefillAddressMap(op PrefillOp, base uint64) (*PrefillAddressMap, error) {
	if err := op.Validate(); err != nil {
		return nil, err
	}
	m := &PrefillAddressMap{op: op}
	cur := alignUp(base, regionAlign)
	m.KBase = cur
	cur = alignUp(cur+uint64(op.KBytes()), regionAlign)
	m.QBase = cur
	cur = alignUp(cur+uint64(op.QBytes()), regionAlign)
	m.OutBase = cur
	cur = alignUp(cur+uint64(op.OutBytes()), regionAlign)
	m.Limit = cur
	return m, nil
}

// KAddr returns the byte address of K[h][l][d] — the same [H][L][D]
// row-major layout as AddressMap.KAddr, so one token's head-row is
// contiguous.
func (m *PrefillAddressMap) KAddr(h, l, d int) uint64 {
	op := m.op
	idx := (int64(h)*int64(op.KVLen)+int64(l))*int64(op.Model.D) + int64(d)
	return m.KBase + uint64(idx*int64(op.Model.ElemBytes))
}

// QAddr returns the byte address of Q[c][h][g][d], layout [C][H][G][D]:
// one chunk token's full head set is contiguous, the activation layout
// the attention kernel receives from the preceding projection.
func (m *PrefillAddressMap) QAddr(c, h, g, d int) uint64 {
	op := m.op
	idx := ((int64(c)*int64(op.Model.H)+int64(h))*int64(op.Model.G)+int64(g))*int64(op.Model.D) + int64(d)
	return m.QBase + uint64(idx*int64(op.Model.ElemBytes))
}

// OutAddr returns the byte address of AttScore[h][g][c][l], layout
// [H][G][C][KVLen]: one chunk token's score row over the prefix is
// contiguous, matching the Logit output layout per query.
func (m *PrefillAddressMap) OutAddr(h, g, c, l int) uint64 {
	op := m.op
	idx := ((int64(h)*int64(op.Model.G)+int64(g))*int64(op.ChunkLen)+int64(c))*int64(op.KVLen) + int64(l)
	return m.OutBase + uint64(idx*int64(op.Model.OutBytes))
}

// Region reports which tensor an address belongs to: "K", "Q", "Out"
// or "" when unmapped.
func (m *PrefillAddressMap) Region(addr uint64) string {
	switch {
	case addr >= m.KBase && addr < m.KBase+uint64(m.op.KBytes()):
		return "K"
	case addr >= m.QBase && addr < m.QBase+uint64(m.op.QBytes()):
		return "Q"
	case addr >= m.OutBase && addr < m.OutBase+uint64(m.op.OutBytes()):
		return "Out"
	default:
		return ""
	}
}

// Op returns the operator this map was built for.
func (m *PrefillAddressMap) Op() PrefillOp { return m.op }
