// Package workload describes the LLM inference operators the LLaMCAT
// paper evaluates: the decode-stage Logit operator (Q·Kᵀ) under
// Group-Query Attention, with the tensor shapes of Llama3-70B and
// Llama3-405B (Section 6.2.2).
//
// The package owns the physical address map of the tensors involved so
// that every other component (trace generation, caches, DRAM) agrees
// on where bytes live.
package workload

import "fmt"

// ModelConfig is the GQA-relevant shape of a transformer model.
type ModelConfig struct {
	Name      string
	H         int // number of KV head groups
	G         int // query heads per group (group size)
	D         int // head dimension
	ElemBytes int // bytes per K/V element (fp16 = 2)
	OutBytes  int // bytes per attention-score element (fp32 = 4)
}

// The two evaluation models of the paper (Section 6.2.2). Llama3-70B
// has 64 query heads in 8 groups; Llama3-405B has 128 query heads in 8
// groups. Both use a 128-wide head dimension with fp16 KV tensors.
var (
	Llama3_70B = ModelConfig{
		Name: "llama3-70b", H: 8, G: 8, D: 128, ElemBytes: 2, OutBytes: 4,
	}
	Llama3_405B = ModelConfig{
		Name: "llama3-405b", H: 8, G: 16, D: 128, ElemBytes: 2, OutBytes: 4,
	}
)

// Validate checks the shape for internal consistency.
func (m ModelConfig) Validate() error {
	switch {
	case m.H <= 0:
		return fmt.Errorf("workload: model %q: H must be positive, got %d", m.Name, m.H)
	case m.G <= 0:
		return fmt.Errorf("workload: model %q: G must be positive, got %d", m.Name, m.G)
	case m.D <= 0:
		return fmt.Errorf("workload: model %q: D must be positive, got %d", m.Name, m.D)
	case m.ElemBytes <= 0:
		return fmt.Errorf("workload: model %q: ElemBytes must be positive, got %d", m.Name, m.ElemBytes)
	case m.OutBytes <= 0:
		return fmt.Errorf("workload: model %q: OutBytes must be positive, got %d", m.Name, m.OutBytes)
	}
	return nil
}

// LogitOp is one decode-step execution of the Logit operator
// AttScore[h][g][l] = Σ_d Q[h][g][d] · K[h][l][d] over a KV cache of
// SeqLen tokens. This is the paper's benchmark operator: it reads the
// whole cached K tensor once per query head and is the KV-cache-bound
// kernel of the decode stage.
type LogitOp struct {
	Model  ModelConfig
	SeqLen int // L: number of cached tokens attended over
}

// Validate checks the operator shape.
func (op LogitOp) Validate() error {
	if err := op.Model.Validate(); err != nil {
		return err
	}
	if op.SeqLen <= 0 {
		return fmt.Errorf("workload: SeqLen must be positive, got %d", op.SeqLen)
	}
	return nil
}

// Name identifies the operator instance, e.g. "logit/llama3-70b/L8192".
func (op LogitOp) Name() string {
	return fmt.Sprintf("logit/%s/L%d", op.Model.Name, op.SeqLen)
}

// KBytes returns the size of the cached K tensor: H × L × D elements.
// This is the dominant working set of the operator.
func (op LogitOp) KBytes() int64 {
	return int64(op.Model.H) * int64(op.SeqLen) * int64(op.Model.D) * int64(op.Model.ElemBytes)
}

// QBytes returns the size of the Q activations: H × G × D elements.
func (op LogitOp) QBytes() int64 {
	return int64(op.Model.H) * int64(op.Model.G) * int64(op.Model.D) * int64(op.Model.ElemBytes)
}

// OutBytes returns the size of the AttScore output: H × G × L elements.
func (op LogitOp) OutBytes() int64 {
	return int64(op.Model.H) * int64(op.Model.G) * int64(op.SeqLen) * int64(op.Model.OutBytes)
}

// TotalKReadBytes returns the bytes of K read counting every use
// (without any reuse): H × G × L × D. Dividing by KBytes gives the
// ideal reuse factor G delivered by GQA sharing.
func (op LogitOp) TotalKReadBytes() int64 {
	return op.KBytes() * int64(op.Model.G)
}

// AddressMap assigns non-overlapping physical regions to the operator
// tensors. Regions are aligned to 4 KiB so that tensor boundaries never
// share a cache line or DRAM row.
type AddressMap struct {
	KBase   uint64
	QBase   uint64
	OutBase uint64
	Limit   uint64 // one past the last mapped byte
	op      LogitOp
}

const regionAlign = 4096

func alignUp(x uint64, a uint64) uint64 {
	return (x + a - 1) / a * a
}

// NewAddressMap lays out K, Q and AttScore contiguously from base.
func NewAddressMap(op LogitOp, base uint64) (*AddressMap, error) {
	if err := op.Validate(); err != nil {
		return nil, err
	}
	m := &AddressMap{op: op}
	cur := alignUp(base, regionAlign)
	m.KBase = cur
	cur = alignUp(cur+uint64(op.KBytes()), regionAlign)
	m.QBase = cur
	cur = alignUp(cur+uint64(op.QBytes()), regionAlign)
	m.OutBase = cur
	cur = alignUp(cur+uint64(op.OutBytes()), regionAlign)
	m.Limit = cur
	return m, nil
}

// KAddr returns the byte address of K[h][l][d]. Layout is row-major
// [H][L][D], so that one token's head-row (D elements) is contiguous —
// the layout KV-cache implementations use for dense attention reads.
func (m *AddressMap) KAddr(h, l, d int) uint64 {
	op := m.op
	idx := (int64(h)*int64(op.SeqLen)+int64(l))*int64(op.Model.D) + int64(d)
	return m.KBase + uint64(idx*int64(op.Model.ElemBytes))
}

// QAddr returns the byte address of Q[h][g][d], layout [H][G][D].
func (m *AddressMap) QAddr(h, g, d int) uint64 {
	op := m.op
	idx := (int64(h)*int64(op.Model.G)+int64(g))*int64(op.Model.D) + int64(d)
	return m.QBase + uint64(idx*int64(op.Model.ElemBytes))
}

// OutAddr returns the byte address of AttScore[h][g][l], layout
// [H][G][L]: scores of one query head over the sequence are contiguous.
func (m *AddressMap) OutAddr(h, g, l int) uint64 {
	op := m.op
	idx := (int64(h)*int64(op.Model.G)+int64(g))*int64(op.SeqLen) + int64(l)
	return m.OutBase + uint64(idx*int64(op.Model.OutBytes))
}

// Region reports which tensor an address belongs to: "K", "Q", "Out"
// or "" when unmapped.
func (m *AddressMap) Region(addr uint64) string {
	switch {
	case addr >= m.KBase && addr < m.KBase+uint64(m.op.KBytes()):
		return "K"
	case addr >= m.QBase && addr < m.QBase+uint64(m.op.QBytes()):
		return "Q"
	case addr >= m.OutBase && addr < m.OutBase+uint64(m.op.OutBytes()):
		return "Out"
	default:
		return ""
	}
}

// Op returns the operator this map was built for.
func (m *AddressMap) Op() LogitOp { return m.op }
