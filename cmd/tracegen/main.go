// Command tracegen generates and inspects memory traces — the
// analytical half of the hybrid simulation framework (Fig. 6 of the
// paper): Timeloop-equivalent mapping selection, optional handwritten
// mappings, and trace serialisation.
//
//	tracegen -model 70b -seq 4096 -o logit70b.trace
//	tracegen -model 405b -seq 1024
//	tracegen -model 70b -seq 1024 -mapping my_mapping.txt -o out.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/dataflow"
	"repro/internal/memreq"
	"repro/internal/memtrace"
	"repro/internal/workload"
)

func main() {
	var (
		model      = flag.String("model", "70b", "model: 70b or 405b")
		seq        = flag.Int("seq", 4096, "sequence length")
		out        = flag.String("o", "", "output trace file (default: print stats only)")
		mapping    = flag.String("mapping", "", "handwritten mapping file (see internal/dataflow)")
		candidates = flag.Bool("candidates", false, "show the selected mapping and its analytical metrics")
	)
	flag.Parse()
	if err := run(*model, *seq, *out, *mapping, *candidates); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(model string, seq int, out, mappingFile string, candidates bool) error {
	var m workload.ModelConfig
	switch model {
	case "70b":
		m = workload.Llama3_70B
	case "405b":
		m = workload.Llama3_405B
	default:
		return fmt.Errorf("unknown model %q (want 70b or 405b)", model)
	}
	op := workload.LogitOp{Model: m, SeqLen: seq}

	if candidates {
		best, ev, err := dataflow.FindMapping(op, memreq.LineBytes)
		if err != nil {
			return err
		}
		fmt.Printf("selected mapping (K-share distance %.0f, %d K lines/block, %d blocks):\n%s\n",
			ev.KShareDistance, ev.TBKLines, ev.NumTBs, best)
	}

	var (
		tr  *memtrace.Trace
		err error
	)
	if mappingFile != "" {
		text, rerr := os.ReadFile(mappingFile)
		if rerr != nil {
			return rerr
		}
		tr, err = llamcat.TraceWithMapping(op, string(text))
	} else {
		tr, err = llamcat.Trace(op)
	}
	if err != nil {
		return err
	}

	fmt.Printf("operator       %s\n", op.Name())
	fmt.Printf("K tensor       %d bytes\n", op.KBytes())
	fmt.Printf("thread blocks  %d\n", len(tr.Blocks))
	fmt.Printf("instructions   %d (%d memory)\n", tr.TotalInsts(), tr.TotalMemInsts())
	fmt.Printf("footprint      %d bytes\n", tr.Footprint(memreq.LineBytes))

	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := tr.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("wrote          %s\n", out)
	return f.Sync()
}
