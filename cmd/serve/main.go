// Command serve runs serving scenarios: many concurrent decode
// requests under a continuous-batching scheduler, evaluated across
// the paper's throttle/arbiter policy matrix. This is the workload an
// inference server actually presents to the cache hierarchy — mixed
// sequence lengths, streams arriving and retiring, per-stream address
// spaces contending in the LLC and DRAM — and the serving metrics the
// figures do not report: aggregate tokens/kilocycle, token-latency
// percentiles and queueing delay.
//
//	serve                                  # stock 8-request scenario, unopt vs dynmg+BMA
//	serve -policies unopt,dynmg,dynmg+BMA  # wider policy matrix
//	serve -streams 16 -batch 8 -rate 15000 # heavier traffic
//	serve -model mix -av                   # mixed 70B/405B, Logit+AV per token
//	serve -sched chunked -chunk 32         # on-node chunked prefill before decode
//	serve -sched prefill-first -kvcap 4096 # monolithic prefill, bounded KV cache
//	serve -arrival burst:40000:0.25:6 -sched chunked -chunk 32 -kvcap 256 -preempt newest
//	serve -sessions 2 -session-depth 3 -sched chunked -prefix-cache 4096
//	serve -slo-ttft 200000 -slo-tbt 30000  # per-request deadlines, goodput report
//	serve -json                            # machine-readable metrics incl. TTFT
//	serve -dumptrace step0.trace           # write the first composed step trace
//
// Workload flags (-streams, -seqmin/-seqmax, -tokmin/-tokmax, -rate,
// -seed, -arrival) shape the fixed-seed request population and its
// arrival-rate shape (bursty, ramping, diurnal or trace-replayed
// modulation of the Poisson process); session flags (-sessions,
// -session-depth) group requests into multi-turn conversations whose
// follow-up turns extend the previous turn's context; scheduler flags
// (-sched, -chunk, -kvcap, -preempt, -prefix-cache) select the
// prefill/decode co-scheduling policy, the prefill chunk size, the
// KV-capacity admission bound, the recompute-on-preempt victim policy
// under KV pressure, and the session prefix-cache capacity that lets
// follow-up turns skip re-prefilling their shared context; SLO flags
// (-slo-ttft, -slo-tbt) set per-request deadlines and add
// goodput-under-SLO reports to the output;
// trace flags (-av, -dumptrace) control per-step trace composition;
// telemetry flags (-trace-out, -events-out, -timeseries-out,
// -sample-every) record the deterministic request-lifecycle event
// stream per policy cell as a Perfetto-loadable Chrome trace, a JSONL
// event log and a CSV gauge time series (with more than one policy the
// paths need a % cell placeholder);
// -hwprof attributes every step's hardware-counter delta to its
// phase (prefill, decode, recompute after preempt/redispatch), to the
// streams co-scheduled in the step and to -sample-every wall-clock
// buckets, classifies the node's bottleneck (memory-bound,
// compute-bound, stalled, idle) and prints the profile report after
// the table (or to -hwprof-out; hw counter tracks also flow into the
// telemetry exporters);
// -scale divides the prompt-length range and the L2 size together,
// preserving the working-set-to-cache ratio exactly like the figure
// harnesses; -stepcache selects the token-step fast path (on =
// signature memo + resettable simulator, nomemo = no memoized replay,
// off = the naive reference pipeline); -json switches the report from
// the aligned table to a JSON document of the full per-cell metrics
// (TTFT percentiles included) for downstream tooling;
// -cpuprofile/-memprofile capture pprof profiles of the run. Runs are
// deterministic for a fixed flag set (modulo the step-cache hit-rate
// diagnostics, which depend on process history).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/experiments"
	"repro/internal/hwprof"
	"repro/internal/profiling"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// cliOpts carries the parsed flag set into run. The *Set booleans
// record which optional flags were passed explicitly (main fills them
// via flag.Visit) so run can reject explicit zeroes without treating
// the defaults as errors — and stays unit-testable without a flag
// set.
type cliOpts struct {
	streams, batch                 int
	sessions, sessionDepth         int
	prefixCache                    int64
	model                          string
	seqmin, seqmax, tokmin, tokmax int
	rate                           float64
	seed                           uint64
	av                             bool
	scale                          int
	sched                          string
	chunk                          int
	kvcap                          int64
	arrival, preempt               string
	sloTTFT                        int64
	sloTBT                         float64
	sloTTFTSet, sloTBTSet          bool
	policies                       string
	parallel                       int
	verbose, jsonOut               bool
	dumptrace, stepcache           string
	traceOut, eventsOut            string
	timeseriesOut                  string
	sampleEvery                    int64
	hwprof                         bool
	hwprofOut                      string
}

func main() {
	var o cliOpts
	flag.IntVar(&o.streams, "streams", 8, "number of decode requests in the scenario")
	flag.IntVar(&o.batch, "batch", 4, "continuous-batching capacity (concurrent streams)")
	flag.IntVar(&o.sessions, "sessions", 0, "distinct sessions the requests are drawn from (0 = one per request)")
	flag.IntVar(&o.sessionDepth, "session-depth", 1, "turns per conversation: >1 chains session requests so follow-ups extend the previous turn's context")
	flag.Int64Var(&o.prefixCache, "prefix-cache", 0, "session prefix-cache capacity in KV tokens (0 = off; needs a prefill -sched)")
	flag.StringVar(&o.model, "model", "70b", "request model mix: 70b, 405b or mix")
	flag.IntVar(&o.seqmin, "seqmin", 0, "min prompt length (0 = 512/scale)")
	flag.IntVar(&o.seqmax, "seqmax", 0, "max prompt length (0 = 2048/scale)")
	flag.IntVar(&o.tokmin, "tokmin", 4, "min tokens decoded per request")
	flag.IntVar(&o.tokmax, "tokmax", 8, "max tokens decoded per request")
	flag.Float64Var(&o.rate, "rate", 30000, "mean inter-arrival gap in cycles (0 = all arrive at cycle 0)")
	flag.Uint64Var(&o.seed, "seed", 1, "arrival-process seed")
	flag.BoolVar(&o.av, "av", false, "append the AV operator to every token step")
	flag.IntVar(&o.scale, "scale", 8, "divide default prompt lengths and the L2 size by this factor")
	flag.StringVar(&o.sched, "sched", "decode-only", "prefill scheduler: decode-only, prefill-first or chunked")
	flag.IntVar(&o.chunk, "chunk", 32, "prefill chunk size in tokens (chunked scheduler only)")
	flag.Int64Var(&o.kvcap, "kvcap", 0, "KV-cache capacity in tokens, gating admission (0 = unlimited)")
	flag.StringVar(&o.arrival, "arrival", "poisson", "arrival shape: poisson, burst:PERIOD:DUTY:FACTOR, ramp:PERIOD:FACTOR, diurnal:PERIOD:FACTOR or trace:PERIOD:M1,M2,...")
	flag.StringVar(&o.preempt, "preempt", "off", "KV preemption victim policy: off, newest or fewest-tokens (needs a prefill -sched and -kvcap)")
	flag.Int64Var(&o.sloTTFT, "slo-ttft", 0, "TTFT SLO deadline in cycles (0 = no TTFT deadline)")
	flag.Float64Var(&o.sloTBT, "slo-tbt", 0, "mean time-between-tokens SLO deadline in cycles (0 = no TBT deadline)")
	flag.StringVar(&o.policies, "policies", "unopt,dynmg+BMA", "comma-separated policy list, e.g. unopt,dyncta,dynmg,dynmg+BMA")
	flag.IntVar(&o.parallel, "parallel", 0, "concurrent policy cells (0 = GOMAXPROCS)")
	flag.BoolVar(&o.verbose, "v", false, "stream per-cell progress to stderr")
	flag.BoolVar(&o.jsonOut, "json", false, "emit machine-readable JSON metrics instead of the table")
	flag.StringVar(&o.dumptrace, "dumptrace", "", "write the first step's composed multi-stream trace to this file")
	flag.StringVar(&o.stepcache, "stepcache", "on", "token-step fast path: on, nomemo or off (the naive reference)")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a Chrome trace-event JSON (Perfetto) trace per cell; with >1 policy the path needs a % cell placeholder")
	flag.StringVar(&o.eventsOut, "events-out", "", "write a JSONL lifecycle-event log per cell (same % placeholder rule)")
	flag.StringVar(&o.timeseriesOut, "timeseries-out", "", "write a CSV gauge time series per cell (needs -sample-every; same % placeholder rule)")
	flag.Int64Var(&o.sampleEvery, "sample-every", 0, "sample telemetry gauges every N cycles (0 = off; needs an output path)")
	flag.BoolVar(&o.hwprof, "hwprof", false, "attribute hardware counters per phase/request/bucket and classify the bottleneck (-sample-every sets the bucket width)")
	flag.StringVar(&o.hwprofOut, "hwprof-out", "", "write the per-cell hardware profile report to this file instead of stdout (needs -hwprof; same % placeholder rule)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	o.sloTTFTSet = flagSet("slo-ttft")
	o.sloTBTSet = flagSet("slo-tbt")

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	err = run(o)

	// Flush the profiles before the error exit below: os.Exit skips
	// defers, which would truncate them.
	stopCPU()
	if merr := profiling.WriteHeap(*memprofile); merr != nil {
		fmt.Fprintln(os.Stderr, "serve:", merr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// flagSet reports whether the named flag was passed explicitly, so a
// contradictory combination (-chunk without -sched chunked) or an
// explicit zero (-slo-ttft 0) errors instead of being silently
// treated as the default.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func modelMix(name string) ([]workload.ModelConfig, error) {
	switch name {
	case "70b":
		return []workload.ModelConfig{workload.Llama3_70B}, nil
	case "405b":
		return []workload.ModelConfig{workload.Llama3_405B}, nil
	case "mix":
		return []workload.ModelConfig{workload.Llama3_70B, workload.Llama3_405B}, nil
	}
	return nil, fmt.Errorf("unknown model mix %q", name)
}

func run(o cliOpts) error {
	mode, err := serving.ParseStepCacheMode(o.stepcache)
	if err != nil {
		return err
	}
	schedPol, err := serving.ParseSchedPolicy(o.sched)
	if err != nil {
		return err
	}
	preemptPol, err := serving.ParsePreemptPolicy(o.preempt)
	if err != nil {
		return err
	}
	arrival, err := serving.ParseArrival(o.arrival)
	if err != nil {
		return err
	}
	// Validate the workload shape up front with flag-level messages
	// instead of letting a deep generator or engine error report it.
	// An SLO deadline flag passed explicitly must be positive — an
	// explicit zero is a contradiction (asking for a deadline and
	// disabling it at once), not a disabled deadline.
	switch {
	case o.streams <= 0:
		return fmt.Errorf("-streams must be positive, got %d", o.streams)
	case o.batch <= 0:
		return fmt.Errorf("-batch must be positive, got %d", o.batch)
	case o.sessions < 0:
		return fmt.Errorf("-sessions must be non-negative, got %d", o.sessions)
	case o.sessionDepth < 0:
		return fmt.Errorf("-session-depth must be non-negative, got %d", o.sessionDepth)
	case o.prefixCache < 0:
		return fmt.Errorf("-prefix-cache must be non-negative, got %d", o.prefixCache)
	case o.tokmin <= 0 || o.tokmax < o.tokmin:
		return fmt.Errorf("decode range [-tokmin %d, -tokmax %d] invalid", o.tokmin, o.tokmax)
	case o.rate < 0:
		return fmt.Errorf("-rate must be non-negative, got %v", o.rate)
	case o.kvcap < 0:
		return fmt.Errorf("-kvcap must be non-negative, got %d", o.kvcap)
	case o.sloTTFT < 0 || (o.sloTTFTSet && o.sloTTFT == 0):
		return fmt.Errorf("-slo-ttft must be a positive cycle deadline, got %d", o.sloTTFT)
	case o.sloTBT < 0 || (o.sloTBTSet && o.sloTBT == 0):
		return fmt.Errorf("-slo-tbt must be a positive cycle deadline, got %v", o.sloTBT)
	}
	slo := serving.SLO{TTFTCycles: o.sloTTFT, TBTCycles: o.sloTBT}
	sched := serving.SchedulerConfig{Policy: schedPol, KVCapTokens: o.kvcap, Preempt: preemptPol,
		PrefixCacheTokens: o.prefixCache}
	if schedPol == serving.SchedChunked {
		sched.ChunkTokens = o.chunk
	} else if flagSet("chunk") {
		return fmt.Errorf("-chunk only applies to -sched chunked (got -sched %s)", schedPol)
	}
	if err := sched.Validate(); err != nil {
		return err
	}
	if o.scale <= 0 {
		o.scale = 1
	}
	models, err := modelMix(o.model)
	if err != nil {
		return err
	}
	// Computed defaults clamp to the mapping floor like
	// serving.DefaultScenario, so any -scale works; explicitly passed
	// values are validated as given.
	if o.seqmin == 0 {
		if o.seqmin = 512 / o.scale; o.seqmin < 16 {
			o.seqmin = 16
		}
	}
	if o.seqmax == 0 {
		if o.seqmax = 2048 / o.scale; o.seqmax < o.seqmin {
			o.seqmax = o.seqmin
		}
	}
	scn, err := serving.NewScenario(serving.ScenarioConfig{
		Name:             fmt.Sprintf("%s/%dreq/seed%d", o.model, o.streams, o.seed),
		Seed:             o.seed,
		NumRequests:      o.streams,
		Models:           models,
		MinPromptLen:     o.seqmin,
		MaxPromptLen:     o.seqmax,
		MinDecode:        o.tokmin,
		MaxDecode:        o.tokmax,
		MeanInterArrival: o.rate,
		Arrival:          arrival,
		MaxBatch:         o.batch,
		IncludeAV:        o.av,
		NumSessions:      o.sessions,
		SessionDepth:     o.sessionDepth,
		Sched:            sched,
	})
	if err != nil {
		return err
	}

	var pols []experiments.Policy
	for _, s := range strings.Split(o.policies, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		p, err := llamcat.ParsePolicy(s)
		if err != nil {
			return err
		}
		pols = append(pols, experiments.Policy{Label: s, Throttle: p.Throttle, Arbiter: p.Arbiter})
	}
	if len(pols) == 0 {
		return fmt.Errorf("empty policy list")
	}

	// Telemetry output validation happens before any simulation: a
	// typo'd directory or a missing % placeholder fails immediately.
	// -hwprof consumes the -sample-every grid directly (bucketed
	// utilization), so sampling without a telemetry output path is
	// legal when profiling is on.
	trace := &telemetry.Spec{
		TraceOut:          o.traceOut,
		EventsOut:         o.eventsOut,
		TimeseriesOut:     o.timeseriesOut,
		SampleEvery:       o.sampleEvery,
		AllowBareSampling: o.hwprof,
	}
	if err := trace.Validate(len(pols) > 1); err != nil {
		return err
	}
	if o.hwprofOut != "" && !o.hwprof {
		return fmt.Errorf("-hwprof-out needs -hwprof")
	}
	if err := telemetry.ValidateOutPath("-hwprof-out", o.hwprofOut, len(pols) > 1); err != nil {
		return err
	}

	base := sim.DefaultConfig()

	if o.dumptrace != "" {
		if err := writeFirstStep(scn, base, o.dumptrace); err != nil {
			return err
		}
	}

	// Scale is applied by the grid runner (L2 size / scale), matching
	// the figure harnesses.
	opts := experiments.Options{Base: &base, Scale: o.scale, Parallel: o.parallel, StepCache: mode, Trace: trace,
		HWProf: hwprofSpec(o.hwprof, o.sampleEvery), HWProfOut: o.hwprofOut}
	if o.verbose {
		opts.Log = os.Stderr
	}
	grid, err := experiments.ServeGrid(scn, pols, opts)
	if err != nil {
		return err
	}
	if o.jsonOut {
		return writeJSON(grid, sched, o.scale, slo)
	}
	fmt.Print(grid.Render())
	if slo.Enabled() {
		for i, p := range grid.Policies {
			fmt.Printf("\ngoodput under SLO [%s]\n%s", p.Label, serving.Goodput(grid.Metrics[i], slo))
		}
	}
	// With no -hwprof-out the full per-cell profile reports follow the
	// table on stdout (the grid runner wrote them to files otherwise).
	if o.hwprof && o.hwprofOut == "" {
		for i, p := range grid.Policies {
			if hw := grid.Metrics[i].HW; hw != nil {
				fmt.Printf("\n%s", hw.Render(p.Label))
			}
		}
	}
	return nil
}

// hwprofSpec builds the hardware-profiling spec from the flags: the
// attribution buckets ride the -sample-every telemetry grid so the
// profile's utilization time-series lines up row-for-row with the
// gauge time-series (0 = one whole-run bucket).
func hwprofSpec(enabled bool, sampleEvery int64) hwprof.Spec {
	return hwprof.Spec{Enabled: enabled, SampleEvery: sampleEvery}
}

// jsonCell is one policy cell of the -json document.
type jsonCell struct {
	Policy  string           `json:"policy"`
	Metrics *serving.Metrics `json:"metrics"`
	// Counters re-exports the cell's raw whole-run hardware counters
	// at the top level, so scripts consuming profiles read them without
	// digging through the metrics document.
	Counters *stats.Counters `json:"counters"`
	// Goodput is present when an SLO deadline was set.
	Goodput *serving.SLOReport `json:"goodput,omitempty"`
}

// jsonDoc is the -json report: the scenario identity plus every
// policy cell's full serving metrics (TTFT percentiles included).
type jsonDoc struct {
	Scenario  string     `json:"scenario"`
	Requests  int        `json:"requests"`
	Scale     int        `json:"scale"`
	Scheduler string     `json:"scheduler"`
	Cells     []jsonCell `json:"cells"`
}

// writeJSON emits the grid as an indented JSON document on stdout.
func writeJSON(grid *experiments.ServeGridResult, sched serving.SchedulerConfig, scale int, slo serving.SLO) error {
	doc := jsonDoc{
		Scenario:  grid.Scenario.Name,
		Requests:  len(grid.Scenario.Requests),
		Scale:     scale,
		Scheduler: experiments.SchedLabel(sched),
	}
	for i, p := range grid.Policies {
		cell := jsonCell{Policy: p.Label, Metrics: grid.Metrics[i], Counters: &grid.Metrics[i].Counters}
		if slo.Enabled() {
			rep := serving.Goodput(grid.Metrics[i], slo)
			cell.Goodput = &rep
		}
		doc.Cells = append(doc.Cells, cell)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// writeFirstStep composes the scenario's first token step (the batch
// admitted at the earliest non-empty boundary) and serialises its
// interleaved multi-stream trace for inspection with cmd/tracegen
// tooling.
func writeFirstStep(scn serving.Scenario, cfg sim.Config, path string) error {
	states, err := serving.FirstStep(scn)
	if err != nil {
		return err
	}
	tr, _, err := serving.ComposeStep(states, scn.IncludeAV, cfg.LineBytes)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := tr.WriteTo(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: wrote %d-stream step trace (%d blocks) to %s\n",
		len(states), len(tr.Blocks), path)
	return nil
}
