// Command serve runs serving scenarios: many concurrent decode
// requests under a continuous-batching scheduler, evaluated across
// the paper's throttle/arbiter policy matrix. This is the workload an
// inference server actually presents to the cache hierarchy — mixed
// sequence lengths, streams arriving and retiring, per-stream address
// spaces contending in the LLC and DRAM — and the serving metrics the
// figures do not report: aggregate tokens/kilocycle, token-latency
// percentiles and queueing delay.
//
//	serve                                  # stock 8-request scenario, unopt vs dynmg+BMA
//	serve -policies unopt,dynmg,dynmg+BMA  # wider policy matrix
//	serve -streams 16 -batch 8 -rate 15000 # heavier traffic
//	serve -model mix -av                   # mixed 70B/405B, Logit+AV per token
//	serve -dumptrace step0.trace           # write the first composed step trace
//
// Workload flags (-streams, -seqmin/-seqmax, -tokmin/-tokmax, -rate,
// -seed) shape the fixed-seed request population; trace flags (-av,
// -dumptrace) control per-token trace composition; -scale divides the
// prompt-length range and the L2 size together, preserving the
// working-set-to-cache ratio exactly like the figure harnesses;
// -stepcache selects the token-step fast path (on = signature memo +
// resettable simulator, nomemo = no memoized replay, off = the naive
// reference pipeline); -cpuprofile/-memprofile capture pprof profiles
// of the run. Runs are deterministic for a fixed flag set (modulo the
// step-cache hit-rate diagnostics, which depend on process history).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		streams    = flag.Int("streams", 8, "number of decode requests in the scenario")
		batch      = flag.Int("batch", 4, "continuous-batching capacity (concurrent streams)")
		model      = flag.String("model", "70b", "request model mix: 70b, 405b or mix")
		seqmin     = flag.Int("seqmin", 0, "min prompt length (0 = 512/scale)")
		seqmax     = flag.Int("seqmax", 0, "max prompt length (0 = 2048/scale)")
		tokmin     = flag.Int("tokmin", 4, "min tokens decoded per request")
		tokmax     = flag.Int("tokmax", 8, "max tokens decoded per request")
		rate       = flag.Float64("rate", 30000, "mean inter-arrival gap in cycles (0 = all arrive at cycle 0)")
		seed       = flag.Uint64("seed", 1, "arrival-process seed")
		av         = flag.Bool("av", false, "append the AV operator to every token step")
		scale      = flag.Int("scale", 8, "divide default prompt lengths and the L2 size by this factor")
		policies   = flag.String("policies", "unopt,dynmg+BMA", "comma-separated policy list, e.g. unopt,dyncta,dynmg,dynmg+BMA")
		parallel   = flag.Int("parallel", 0, "concurrent policy cells (0 = GOMAXPROCS)")
		verbose    = flag.Bool("v", false, "stream per-cell progress to stderr")
		dumptrace  = flag.String("dumptrace", "", "write the first step's composed multi-stream trace to this file")
		stepcache  = flag.String("stepcache", "on", "token-step fast path: on, nomemo or off (the naive reference)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	err = run(*streams, *batch, *model, *seqmin, *seqmax, *tokmin, *tokmax,
		*rate, *seed, *av, *scale, *policies, *parallel, *verbose, *dumptrace, *stepcache)

	// Flush the profiles before the error exit below: os.Exit skips
	// defers, which would truncate them.
	stopCPU()
	if merr := profiling.WriteHeap(*memprofile); merr != nil {
		fmt.Fprintln(os.Stderr, "serve:", merr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func modelMix(name string) ([]workload.ModelConfig, error) {
	switch name {
	case "70b":
		return []workload.ModelConfig{workload.Llama3_70B}, nil
	case "405b":
		return []workload.ModelConfig{workload.Llama3_405B}, nil
	case "mix":
		return []workload.ModelConfig{workload.Llama3_70B, workload.Llama3_405B}, nil
	}
	return nil, fmt.Errorf("unknown model mix %q", name)
}

func run(streams, batch int, model string, seqmin, seqmax, tokmin, tokmax int,
	rate float64, seed uint64, av bool, scale int, policyList string,
	parallel int, verbose bool, dumptrace, stepcache string) error {
	mode, err := serving.ParseStepCacheMode(stepcache)
	if err != nil {
		return err
	}
	// Validate the workload shape up front with flag-level messages
	// instead of letting a deep generator or engine error report it.
	switch {
	case streams <= 0:
		return fmt.Errorf("-streams must be positive, got %d", streams)
	case batch <= 0:
		return fmt.Errorf("-batch must be positive, got %d", batch)
	case tokmin <= 0 || tokmax < tokmin:
		return fmt.Errorf("decode range [-tokmin %d, -tokmax %d] invalid", tokmin, tokmax)
	case rate < 0:
		return fmt.Errorf("-rate must be non-negative, got %v", rate)
	}
	if scale <= 0 {
		scale = 1
	}
	models, err := modelMix(model)
	if err != nil {
		return err
	}
	// Computed defaults clamp to the mapping floor like
	// serving.DefaultScenario, so any -scale works; explicitly passed
	// values are validated as given.
	if seqmin == 0 {
		if seqmin = 512 / scale; seqmin < 16 {
			seqmin = 16
		}
	}
	if seqmax == 0 {
		if seqmax = 2048 / scale; seqmax < seqmin {
			seqmax = seqmin
		}
	}
	scn, err := serving.NewScenario(serving.ScenarioConfig{
		Name:             fmt.Sprintf("%s/%dreq/seed%d", model, streams, seed),
		Seed:             seed,
		NumRequests:      streams,
		Models:           models,
		MinPromptLen:     seqmin,
		MaxPromptLen:     seqmax,
		MinDecode:        tokmin,
		MaxDecode:        tokmax,
		MeanInterArrival: rate,
		MaxBatch:         batch,
		IncludeAV:        av,
	})
	if err != nil {
		return err
	}

	var pols []experiments.Policy
	for _, s := range strings.Split(policyList, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		p, err := llamcat.ParsePolicy(s)
		if err != nil {
			return err
		}
		pols = append(pols, experiments.Policy{Label: s, Throttle: p.Throttle, Arbiter: p.Arbiter})
	}
	if len(pols) == 0 {
		return fmt.Errorf("empty policy list")
	}

	base := sim.DefaultConfig()

	if dumptrace != "" {
		if err := writeFirstStep(scn, base, dumptrace); err != nil {
			return err
		}
	}

	// Scale is applied by the grid runner (L2 size / scale), matching
	// the figure harnesses.
	opts := experiments.Options{Base: &base, Scale: scale, Parallel: parallel, StepCache: mode}
	if verbose {
		opts.Log = os.Stderr
	}
	grid, err := experiments.ServeGrid(scn, pols, opts)
	if err != nil {
		return err
	}
	fmt.Print(grid.Render())
	return nil
}

// writeFirstStep composes the scenario's first token step (the batch
// admitted at the earliest non-empty boundary) and serialises its
// interleaved multi-stream trace for inspection with cmd/tracegen
// tooling.
func writeFirstStep(scn serving.Scenario, cfg sim.Config, path string) error {
	states, err := serving.FirstStep(scn)
	if err != nil {
		return err
	}
	tr, _, err := serving.ComposeStep(states, scn.IncludeAV, cfg.LineBytes)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := tr.WriteTo(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: wrote %d-stream step trace (%d blocks) to %s\n",
		len(states), len(tr.Blocks), path)
	return nil
}
